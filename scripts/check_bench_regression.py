#!/usr/bin/env python3
"""Bench-regression guard for scripts/verify.sh.

Compares a fresh BENCH_core.json against the checked-in baseline on the
guarded benchmarks and fails when wall time per op regresses more than the
threshold. The guard is about catching accidental hot-path regressions in
review, not about enforcing absolute numbers: both files must come from the
SAME machine (the fresh run happens inside verify.sh moments earlier), so a
>15% ns_per_op swing on a pinned-iteration-count benchmark is a code change,
not noise. Skip with verify.sh --skip-bench-guard on busy/shared hardware.

Usage:
  check_bench_regression.py BASELINE FRESH --bench NAME [--bench NAME ...]
      [--max-regression 0.15]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    table = {}
    for record in doc.get("benchmarks", []):
        # Registered names may carry gbench suffixes ("/iterations:1");
        # index by the bare prefix so guard names stay stable.
        bare = record["name"].split("/")[0]
        table.setdefault(bare, record)
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--bench", action="append", required=True,
                        dest="benches")
    parser.add_argument("--max-regression", type=float, default=0.15)
    opts = parser.parse_args()

    baseline = load_benchmarks(opts.baseline)
    fresh = load_benchmarks(opts.fresh)

    failures = []
    for name in opts.benches:
        if name not in baseline:
            failures.append(f"{name}: missing from baseline {opts.baseline} "
                            "(regenerate the checked-in BENCH_core.json)")
            continue
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run {opts.fresh} "
                            "(benchmark renamed or filtered out?)")
            continue
        base_ns = float(baseline[name]["ns_per_op"])
        fresh_ns = float(fresh[name]["ns_per_op"])
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + opts.max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base_ns:.0f} -> {fresh_ns:.0f} ns/op "
                f"({(ratio - 1.0) * 100:+.1f}%, limit "
                f"+{opts.max_regression * 100:.0f}%)")
        print(f"  {name}: {base_ns:.0f} -> {fresh_ns:.0f} ns/op "
              f"({(ratio - 1.0) * 100:+.1f}%) {verdict}")

    if failures:
        print("bench guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("  (intentional? re-capture the baseline: "
              "./build/bench/micro_core from the repo root, commit "
              "BENCH_core.json — or pass --skip-bench-guard)",
              file=sys.stderr)
        return 1
    print("  bench guard OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
