#!/usr/bin/env python3
"""Line-coverage summary for the protocol core (src/gossip, src/store).

Workflow (docs/testing.md):

    cmake --preset coverage
    cmake --build --preset coverage -j --target gossip_tests store_tests
    ctest --preset coverage
    python3 scripts/coverage_report.py

Walks the coverage build tree for .gcda files, asks gcov for JSON
intelligence per translation unit, and aggregates executed/executable
lines per source file under the watched prefixes. A line is counted
covered if ANY translation unit executed it (headers are hit from many
TUs). Exits 1 when --min-line-coverage is given and the aggregate falls
short, so the report can gate a CI leg.
"""
from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir: str) -> list[str]:
    found = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                found.append(os.path.join(root, name))
    return sorted(found)


def gcov_json(gcda: str, build_dir: str) -> dict | None:
    # -t streams uncompressed JSON to stdout; run inside the object dir so
    # gcov finds the .gcno next to the .gcda.
    result = subprocess.run(
        ["gcov", "-t", "--json-format", os.path.basename(gcda)],
        cwd=os.path.dirname(gcda),
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        print(f"warning: gcov failed for {gcda}: {result.stderr.strip()}",
              file=sys.stderr)
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError:
        print(f"warning: unparseable gcov output for {gcda}", file=sys.stderr)
        return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-cov",
                        help="coverage build tree (default: build-cov)")
    parser.add_argument("--prefix", action="append", default=None,
                        help="watched source prefix, repeatable "
                             "(default: src/gossip src/store)")
    parser.add_argument("--min-line-coverage", type=float, default=None,
                        help="fail (exit 1) when aggregate %% falls below")
    args = parser.parse_args()
    prefixes = args.prefix or ["src/gossip", "src/store"]
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    gcda_files = find_gcda(args.build_dir)
    if not gcda_files:
        print(f"no .gcda files under {args.build_dir}; build the coverage "
              "preset and run the tests first", file=sys.stderr)
        return 2

    # path -> {line_no -> executed?}; OR across translation units.
    lines_by_file: dict[str, dict[int, bool]] = {}
    for gcda in gcda_files:
        data = gcov_json(gcda, args.build_dir)
        if data is None:
            continue
        for unit in data.get("files", []):
            path = os.path.normpath(
                os.path.relpath(os.path.join(repo_root, unit["file"]),
                                repo_root))
            if not any(path.startswith(prefix + os.sep) or path == prefix
                       for prefix in prefixes):
                continue
            per_line = lines_by_file.setdefault(path, {})
            for line in unit.get("lines", []):
                number = line["line_number"]
                per_line[number] = per_line.get(number, False) or \
                    line.get("count", 0) > 0
    if not lines_by_file:
        print("no instrumented sources matched "
              f"{', '.join(prefixes)}", file=sys.stderr)
        return 2

    width = max(len(path) for path in lines_by_file) + 2
    print(f"{'file':<{width}} {'lines':>7} {'hit':>7} {'cover':>7}")
    total_lines = 0
    total_hit = 0
    for path in sorted(lines_by_file):
        per_line = lines_by_file[path]
        executable = len(per_line)
        hit = sum(1 for covered in per_line.values() if covered)
        total_lines += executable
        total_hit += hit
        pct = 100.0 * hit / executable if executable else 100.0
        print(f"{path:<{width}} {executable:>7} {hit:>7} {pct:>6.1f}%")
    aggregate = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"{'TOTAL':<{width}} {total_lines:>7} {total_hit:>7} "
          f"{aggregate:>6.1f}%")

    if args.min_line_coverage is not None and \
            aggregate < args.min_line_coverage:
        print(f"FAIL: aggregate line coverage {aggregate:.1f}% is below "
              f"the required {args.min_line_coverage:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
