#!/usr/bin/env bash
# Full verify flow: tier-1 tests in Release, then an ASan+UBSan build that
# re-runs the test suite and a micro_core smoke pass (one quick iteration of
# every hot-path bench) under the sanitizers.
#
# Usage: scripts/verify.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_SAN=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SAN=1

echo "==> tier-1: Release build + ctest"
cmake --preset release
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

if [[ "${SKIP_SAN}" == "1" ]]; then
  echo "==> sanitizers skipped (--skip-sanitizers)"
  exit 0
fi

echo "==> sanitizers: ASan+UBSan build + ctest + micro_core --smoke"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"
ctest --preset asan-ubsan -j "${JOBS}"
./build-asan/bench/micro_core --smoke

echo "==> verify OK"
