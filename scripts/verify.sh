#!/usr/bin/env bash
# Full verify flow: Release build, then the static-analysis leg
# (updp2p-lint + clang-tidy, docs/static-analysis.md), then tier-1 tests in
# Release (including the multi-process live harness, label
# `integration-live`), then an ASan+UBSan build that
# re-runs the test suite and a micro_core smoke pass (one quick iteration of
# every hot-path bench) under the sanitizers, then a TSan build that runs
# the concurrency-bearing suites (sweep pool, sharded rounds, sharded bus,
# golden determinism — including ShardInvariance at 8 threads) plus the
# event-loop/timer-wheel runtime suites.
#
# After the Release ctest leg a bench-regression guard re-runs the guarded
# hot-path benchmarks (BM_SimulatedUpdate10k, BM_SimulatedUpdate10kWire,
# BM_BuildForwardListInto, BM_StoreAppend, BM_StoreReplay10k) and compares
# ns/op against the checked-in BENCH_core.json; a >15% regression fails the
# verify. The Wire row guards the zero-copy serialized path specifically —
# it is the one a codec or frame-path change degrades first; the Store rows
# guard the durable append (paid per receipt before the ack) and the
# crash-recovery replay pipeline. Opt out with --skip-bench-guard on busy
# or differently-provisioned machines.
#
# The deterministic chaos harness (docs/testing.md) runs its test suite as
# part of tier-1 (ctest label `chaos`). --chaos-seeds N adds a deeper leg:
# an N-seed sweep of every builtin scenario through the real updp2p-chaos
# binary, with the sweep parallelised across cores — any property
# violation fails the verify and prints the failing (scenario, seed) pair
# to replay.
#
# Usage: scripts/verify.sh [--skip-sanitizers] [--skip-bench-guard]
#                          [--update-lint-baseline] [--chaos-seeds N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
SKIP_SAN=0
SKIP_BENCH_GUARD=0
UPDATE_LINT_BASELINE=0
CHAOS_SEEDS=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-sanitizers) SKIP_SAN=1 ;;
    --skip-bench-guard) SKIP_BENCH_GUARD=1 ;;
    --update-lint-baseline) UPDATE_LINT_BASELINE=1 ;;
    --chaos-seeds) shift; CHAOS_SEEDS="${1:?--chaos-seeds needs a count}" ;;
    --chaos-seeds=*) CHAOS_SEEDS="${1#*=}" ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

echo "==> tier-1: Release build"
cmake --preset release
cmake --build --preset release -j "${JOBS}"

# Lint leg (docs/static-analysis.md). Runs before the test suites and the
# sanitizer legs so convention breaks fail fast; --skip-sanitizers does NOT
# skip it. updp2p-lint enforces the project rules (determinism,
# rng-discipline, iteration-order, wire-taint, probe-trust, shard-guard,
# assert-discipline, suppression-reason); findings are gated by
# tools/lint/lint-baseline.txt (stale entries fail — fixed code keeps its
# baseline honest) and the SARIF artifact lands at build/lint.sarif for CI
# consumers, shape-checked by scripts/check_lint_baseline.py. clang-tidy
# runs the curated .clang-tidy set over compile_commands.json when the
# binary exists, and is skipped with a notice otherwise (the container
# image has no clang frontend).
if [[ "${UPDATE_LINT_BASELINE}" == "1" ]]; then
  echo "==> lint: regenerating tools/lint/lint-baseline.txt"
  ./build/tools/lint/updp2p-lint --root . \
    --write-baseline tools/lint/lint-baseline.txt
fi
echo "==> lint: updp2p-lint over src/ bench/ examples/ (SARIF: build/lint.sarif)"
./build/tools/lint/updp2p-lint --root . \
  --baseline tools/lint/lint-baseline.txt \
  --format sarif --output build/lint.sarif
python3 scripts/check_lint_baseline.py build/lint.sarif
if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> lint: clang-tidy (curated .clang-tidy) over compile_commands.json"
  mapfile -t TIDY_SOURCES < <(find src tools -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet "${TIDY_SOURCES[@]}"
  else
    clang-tidy -p build --quiet "${TIDY_SOURCES[@]}"
  fi
else
  echo "==> lint: clang-tidy not found; skipping (.clang-tidy is the config)"
fi

echo "==> tier-1: Release ctest"
ctest --preset release -j "${JOBS}"

if [[ "${CHAOS_SEEDS}" -gt 0 ]]; then
  echo "==> chaos: ${CHAOS_SEEDS}-seed sweep over every builtin scenario"
  while read -r scenario _; do
    ./build/examples/updp2p-chaos --scenario "${scenario}" \
      --sweep-seeds "${CHAOS_SEEDS}" --threads "${JOBS}" \
      --data-root "build/chaos-sweep/${scenario}"
  done < <(./build/examples/updp2p-chaos --list)
fi

if [[ "${SKIP_BENCH_GUARD}" == "1" ]]; then
  echo "==> bench guard skipped (--skip-bench-guard)"
else
  echo "==> bench guard: guarded hot-path benches vs checked-in BENCH_core.json"
  ./build/bench/micro_core --json=build/BENCH_guard.json \
    "--benchmark_filter=^BM_SimulatedUpdate10k\$|^BM_SimulatedUpdate10kWire\$|^BM_BuildForwardListInto\$|^BM_StoreAppend\$|^BM_StoreReplay10k\$" \
    >/dev/null
  python3 scripts/check_bench_regression.py BENCH_core.json \
    build/BENCH_guard.json --bench BM_SimulatedUpdate10k \
    --bench BM_SimulatedUpdate10kWire \
    --bench BM_BuildForwardListInto \
    --bench BM_StoreAppend --bench BM_StoreReplay10k --max-regression 0.15
fi

if [[ "${SKIP_SAN}" == "1" ]]; then
  echo "==> sanitizers skipped (--skip-sanitizers)"
  exit 0
fi

echo "==> sanitizers: ASan+UBSan build + ctest + micro_core --smoke"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"
ctest --preset asan-ubsan -j "${JOBS}"
./build-asan/bench/micro_core --smoke

echo "==> sanitizers: TSan build + concurrency suites"
# The tsan test preset filters to the suites that actually spawn threads or
# drive the live event loop: the work-stealing sweep pool, the sharded
# round engine and bus, the golden-determinism suite (ShardInvariance
# drives 8 shard threads), the runtime layer (timer wheel, PeerRuntime,
# loopback golden, inproc/UDP transports — the UDP suite exercises real
# kernel socket I/O under TSan), and the durable-store suites (PeerRuntime
# owns a ReplicaStore, so the WAL/snapshot/recovery + fuzz paths run under
# all three sanitizer legs).
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}" \
  --target sim_tests net_tests runtime_tests store_tests chaos_tests
ctest --preset tsan -j "${JOBS}"

echo "==> verify OK"
