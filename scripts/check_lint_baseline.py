#!/usr/bin/env python3
"""Schema-shape validator for updp2p-lint's SARIF output.

Not a full SARIF 2.1.0 schema validation (no jsonschema dependency in the
image) — checks the invariants downstream consumers rely on:

  * top level: $schema mentioning sarif-2.1.0, version == "2.1.0",
    non-empty runs list
  * each run: tool.driver.name, a rules list where every rule has an id
    and a shortDescription.text
  * each result: ruleId (present in the driver's rules), level in the
    SARIF vocabulary, message.text, and at least one location with
    physicalLocation.artifactLocation.uri and region.startLine >= 1

Usage: check_lint_baseline.py <lint.sarif>
Exits 0 when the shape holds, 1 with a diagnostic per violation.
"""

import json
import sys

SARIF_LEVELS = {"none", "note", "warning", "error"}


def fail(errors):
    for error in errors:
        print(f"check_lint_baseline: {error}", file=sys.stderr)
    return 1


def check(doc):
    errors = []
    schema = doc.get("$schema", "")
    if "sarif-2.1.0" not in schema:
        errors.append(f"$schema does not name sarif-2.1.0: {schema!r}")
    if doc.get("version") != "2.1.0":
        errors.append(f"version is {doc.get('version')!r}, expected '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs must be a non-empty list")
        return errors

    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            errors.append(f"{where}: tool.driver.name missing")
        rules = driver.get("rules", [])
        rule_ids = set()
        for rule_index, rule in enumerate(rules):
            rwhere = f"{where}.tool.driver.rules[{rule_index}]"
            rule_id = rule.get("id")
            if not rule_id:
                errors.append(f"{rwhere}: id missing")
            else:
                rule_ids.add(rule_id)
            if not rule.get("shortDescription", {}).get("text"):
                errors.append(f"{rwhere}: shortDescription.text missing")

        for result_index, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{result_index}]"
            rule_id = result.get("ruleId")
            if not rule_id:
                errors.append(f"{rwhere}: ruleId missing")
            elif rule_ids and rule_id not in rule_ids:
                errors.append(
                    f"{rwhere}: ruleId {rule_id!r} not in the driver's rules")
            level = result.get("level")
            if level not in SARIF_LEVELS:
                errors.append(f"{rwhere}: level {level!r} not in "
                              f"{sorted(SARIF_LEVELS)}")
            if not result.get("message", {}).get("text"):
                errors.append(f"{rwhere}: message.text missing")
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                errors.append(f"{rwhere}: locations must be a non-empty list")
                continue
            physical = locations[0].get("physicalLocation", {})
            uri = physical.get("artifactLocation", {}).get("uri")
            if not uri:
                errors.append(
                    f"{rwhere}: physicalLocation.artifactLocation.uri missing")
            start_line = physical.get("region", {}).get("startLine")
            if not isinstance(start_line, int) or start_line < 1:
                errors.append(
                    f"{rwhere}: physicalLocation.region.startLine must be a "
                    f"positive integer, got {start_line!r}")
    return errors


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail([f"cannot parse {argv[1]}: {error}"])
    errors = check(doc)
    if errors:
        return fail(errors)
    print(f"check_lint_baseline: {argv[1]} is shape-valid SARIF 2.1.0")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
