// Shared output helpers for the reproduction benches. Every bench binary
// prints (1) the experiment's parameters, (2) the series/rows of the paper
// figure or table it regenerates, and (3) where applicable the value the
// paper reports, so EXPERIMENTS.md can be filled by reading bench output.
#pragma once

#include <sched.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace updp2p::bench {

inline void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref
            << "\n================================================================\n";
}

/// Renders one trajectory per row: label, headline numbers, then the
/// discrete (F_aware -> messages/R_on0) marks like the paper's plot points.
inline void print_series(const std::string& title,
                         const std::vector<common::Series>& series_list) {
  common::TextTable table(title);
  table.header({"configuration", "final msgs/R_on[0]", "final F_aware",
                "points (F_aware->msgs/R_on[0])"});
  for (const auto& series : series_list) {
    table.row()
        .cell(series.label)
        .cell(series.empty() ? 0.0 : series.final_y(), 3)
        .cell(series.empty() ? 0.0 : series.final_x(), 4)
        .cell(common::format_trajectory(series.x, series.y, 2));
  }
  table.print(std::cout);
}

// --- machine-readable microbench output ------------------------------------
//
// micro_core emits BENCH_core.json so performance runs can be diffed by
// tooling instead of eyeballed: one record per benchmark (ns/op, RSS delta,
// plus — where the bench counts protocol traffic — messages/sec), run
// metadata (git SHA, CPU, threads, timestamp), and the process peak RSS.

/// One benchmark's result in BENCH_core.json.
struct CoreBenchRecord {
  std::string name;
  double ns_per_op = 0.0;
  double messages_per_sec = 0.0;  ///< 0 when the bench counts no messages
  /// Mean wire bytes per protocol message (0 when the bench counts no
  /// traffic). With the chunked flooding-list codec this is the headline
  /// bandwidth number: it shrinks when lists compress, even where msg
  /// counts stay fixed. Methodology in docs/benchmarks.md.
  double bytes_per_msg = 0.0;
  /// Worker threads this benchmark ran with (shard_threads for the
  /// simulator benches, 1 for single-threaded ones) — NOT the machine's
  /// thread count, which lives in the meta block.
  unsigned threads = 1;
  /// Growth of the process peak RSS while this benchmark ran. Peak RSS is
  /// monotone, so the delta attributes footprint growth to the benchmark
  /// that caused it (0 for benches running inside already-paid memory).
  std::int64_t rss_delta_kb = 0;
};

/// Peak resident set size of this process in kilobytes (Linux ru_maxrss).
inline std::int64_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::int64_t>(usage.ru_maxrss);
}

/// Current (not peak) resident set size in kilobytes, from /proc/self/statm;
/// 0 when the file is unavailable (non-Linux).
inline std::int64_t current_rss_kb() {
  std::ifstream statm("/proc/self/statm");
  long long pages_total = 0, pages_resident = 0;
  if (!(statm >> pages_total >> pages_resident)) return 0;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<std::int64_t>(pages_resident) * page_kb;
}

/// Provenance of one benchmark run: enough to tell two BENCH_core.json
/// files apart without relying on the file's git history.
struct BenchRunMeta {
  std::string git_sha = "unknown";
  std::string cpu_model = "unknown";
  /// Hardware threads the machine is configured with. Deliberately NOT
  /// std::thread::hardware_concurrency(): that call respects the process
  /// CPU affinity mask, so a run pinned to one core used to report
  /// hardware_threads: 1 and made scaling rows unreadable.
  unsigned hardware_threads = 0;
  /// CPUs this process was actually allowed to run on (affinity mask),
  /// which is what bounds the parallel benches' real concurrency.
  unsigned usable_threads = 0;
  std::string timestamp_utc;  ///< ISO 8601, UTC
};

/// Best-effort collection of run metadata (every field degrades to a
/// placeholder rather than failing).
inline BenchRunMeta collect_run_meta() {
  BenchRunMeta meta;
  const long configured = sysconf(_SC_NPROCESSORS_CONF);
  meta.hardware_threads = configured > 0
                              ? static_cast<unsigned>(configured)
                              : std::thread::hardware_concurrency();
  cpu_set_t affinity;
  CPU_ZERO(&affinity);
  if (sched_getaffinity(0, sizeof(affinity), &affinity) == 0) {
    meta.usable_threads = static_cast<unsigned>(CPU_COUNT(&affinity));
  }
  if (meta.usable_threads == 0) {
    meta.usable_threads = std::thread::hardware_concurrency();
  }

  if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buffer[64] = {};
    if (std::fgets(buffer, sizeof(buffer), pipe)) {
      std::string sha(buffer);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
      if (sha.size() == 40) meta.git_sha = sha;
    }
    ::pclose(pipe);
  }

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        auto model = line.substr(colon + 1);
        const auto start = model.find_first_not_of(' ');
        meta.cpu_model = start == std::string::npos ? model
                                                    : model.substr(start);
      }
      break;
    }
  }

  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc)) {
    char stamp[32];
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    meta.timestamp_utc = stamp;
  }
  return meta;
}

/// Minimal JSON string escaping (quotes and backslashes; metadata strings
/// contain nothing wilder).
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Writes `records` plus run metadata and the process peak RSS as JSON to
/// `path`. Returns false when the file cannot be written.
inline bool write_core_bench_json(const std::string& path,
                                  const std::vector<CoreBenchRecord>& records,
                                  const BenchRunMeta& meta) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"meta\": {\n"
      << "    \"git_sha\": \"" << json_escape(meta.git_sha) << "\",\n"
      << "    \"cpu_model\": \"" << json_escape(meta.cpu_model) << "\",\n"
      << "    \"hardware_threads\": " << meta.hardware_threads << ",\n"
      << "    \"usable_threads\": " << meta.usable_threads << ",\n"
      << "    \"timestamp_utc\": \"" << json_escape(meta.timestamp_utc)
      << "\"\n  },\n";
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CoreBenchRecord& record = records[i];
    out << "    {\"name\": \"" << json_escape(record.name)
        << "\", \"ns_per_op\": " << record.ns_per_op
        << ", \"messages_per_sec\": " << record.messages_per_sec
        << ", \"bytes_per_msg\": " << record.bytes_per_msg
        << ", \"threads\": " << record.threads
        << ", \"rss_delta_kb\": " << record.rss_delta_kb << "}";
    out << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"peak_rss_kb\": " << peak_rss_kb() << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace updp2p::bench
