// Shared output helpers for the reproduction benches. Every bench binary
// prints (1) the experiment's parameters, (2) the series/rows of the paper
// figure or table it regenerates, and (3) where applicable the value the
// paper reports, so EXPERIMENTS.md can be filled by reading bench output.
#pragma once

#include <sys/resource.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace updp2p::bench {

inline void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref
            << "\n================================================================\n";
}

/// Renders one trajectory per row: label, headline numbers, then the
/// discrete (F_aware -> messages/R_on0) marks like the paper's plot points.
inline void print_series(const std::string& title,
                         const std::vector<common::Series>& series_list) {
  common::TextTable table(title);
  table.header({"configuration", "final msgs/R_on[0]", "final F_aware",
                "points (F_aware->msgs/R_on[0])"});
  for (const auto& series : series_list) {
    table.row()
        .cell(series.label)
        .cell(series.empty() ? 0.0 : series.final_y(), 3)
        .cell(series.empty() ? 0.0 : series.final_x(), 4)
        .cell(common::format_trajectory(series.x, series.y, 2));
  }
  table.print(std::cout);
}

// --- machine-readable microbench output ------------------------------------
//
// micro_core emits BENCH_core.json so performance runs can be diffed by
// tooling instead of eyeballed: one record per benchmark (ns/op plus, where
// the bench counts protocol traffic, messages/sec) and the process peak RSS.

/// One benchmark's result in BENCH_core.json.
struct CoreBenchRecord {
  std::string name;
  double ns_per_op = 0.0;
  double messages_per_sec = 0.0;  ///< 0 when the bench counts no messages
};

/// Peak resident set size of this process in kilobytes (Linux ru_maxrss).
inline std::int64_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::int64_t>(usage.ru_maxrss);
}

/// Writes `records` (plus the current peak RSS) as JSON to `path`.
/// Returns false when the file cannot be written.
inline bool write_core_bench_json(const std::string& path,
                                  const std::vector<CoreBenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CoreBenchRecord& record = records[i];
    out << "    {\"name\": \"" << record.name << "\", \"ns_per_op\": "
        << record.ns_per_op << ", \"messages_per_sec\": "
        << record.messages_per_sec << "}";
    out << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"peak_rss_kb\": " << peak_rss_kb() << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace updp2p::bench
