// Shared output helpers for the reproduction benches. Every bench binary
// prints (1) the experiment's parameters, (2) the series/rows of the paper
// figure or table it regenerates, and (3) where applicable the value the
// paper reports, so EXPERIMENTS.md can be filled by reading bench output.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace updp2p::bench {

inline void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref
            << "\n================================================================\n";
}

/// Renders one trajectory per row: label, headline numbers, then the
/// discrete (F_aware -> messages/R_on0) marks like the paper's plot points.
inline void print_series(const std::string& title,
                         const std::vector<common::Series>& series_list) {
  common::TextTable table(title);
  table.header({"configuration", "final msgs/R_on[0]", "final F_aware",
                "points (F_aware->msgs/R_on[0])"});
  for (const auto& series : series_list) {
    table.row()
        .cell(series.label)
        .cell(series.empty() ? 0.0 : series.final_y(), 3)
        .cell(series.empty() ? 0.0 : series.final_x(), 4)
        .cell(common::format_trajectory(series.x, series.y, 2));
  }
  table.print(std::cout);
}

}  // namespace updp2p::bench
