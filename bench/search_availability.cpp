// Reproduces the §2 motivation arithmetic and exercises the P-Grid
// substrate under low availability.
//
// Paper §2: "if we need a 99.9% success guarantee for a search and only 10%
// of the replicas are online on average, then a serial search will need
// about 65 attempts (since 0.9^65 ≈ 0.001)" — the replication-factor
// back-of-envelope that motivates hundreds-to-thousands of replicas.
#include <cmath>
#include <iostream>

#include "analysis/flooding_model.hpp"
#include "bench_util.hpp"
#include "churn/churn_model.hpp"
#include "common/rng.hpp"
#include "pgrid/pgrid.hpp"

using namespace updp2p;

namespace {

void serial_attempts_section() {
  common::TextTable table(
      "serial attempts for a 99.9% search success (paper's replication "
      "motivation)");
  table.header({"online probability", "attempts (analytic)",
                "expected attempts to reach 1 online (E_x, R=1000)"});
  for (const double p_online : {0.05, 0.10, 0.20, 0.30}) {
    const double attempts =
        std::ceil(std::log(0.001) / std::log(1.0 - p_online));
    table.row()
        .cell(p_online, 2)
        .cell(attempts, 0)
        .cell(analysis::expected_attempts_to_reach(1.0, 1'000, p_online), 2);
  }
  table.print(std::cout);
  std::cout << "  paper: ~65 attempts at 10% online for 99.9% success.\n";
}

void pgrid_section() {
  common::TextTable table(
      "P-Grid search under churn (1024 peers, depth 4, 5 refs/level, "
      "500 queries)");
  table.header({"availability", "success (1 try)", "success (<=10 tries)",
                "mean hops", "mean probes"});

  for (const double availability : {1.0, 0.5, 0.3, 0.1}) {
    pgrid::PGridConfig config;
    config.peers = 1'024;
    config.depth = 4;
    config.refs_per_level = 5;
    const auto network = pgrid::PGridNetwork::build(config);

    common::Rng rng(0xabcd);
    churn::StaticChurn churn(config.peers, availability);
    churn.reset(rng);
    const auto is_online = [&churn](common::PeerId peer) {
      return churn.is_online(peer);
    };

    std::size_t single = 0;
    std::size_t retried = 0;
    common::RunningStats hops;
    common::RunningStats probes;
    constexpr std::size_t kQueries = 500;
    for (std::size_t q = 0; q < kQueries; ++q) {
      // Random online origin, random key.
      const auto online_peers = churn.online().online_peers();
      const common::PeerId origin =
          online_peers[rng.pick_index(online_peers.size())];
      const auto key = pgrid::BitPath::from_key(
          "key-" + std::to_string(q), 64);
      const auto one = network.search(origin, key, is_online, rng);
      if (one.found) ++single;
      const auto many =
          network.search_with_retries(origin, key, is_online, rng, 10);
      if (many.found) ++retried;
      hops.add(static_cast<double>(many.hops));
      probes.add(static_cast<double>(many.attempts));
    }
    table.row()
        .cell(availability, 2)
        .cell(static_cast<double>(single) / kQueries, 3)
        .cell(static_cast<double>(retried) / kQueries, 3)
        .cell(hops.mean(), 2)
        .cell(probes.mean(), 2);
  }
  table.print(std::cout);
  std::cout << "  probabilistic search guarantees (paper §2 assumption):\n"
            << "  retries trade messages for success probability.\n";
}

}  // namespace

int main() {
  bench::print_banner("Search under low availability — §2 motivation + "
                      "P-Grid substrate",
                      "Why replica groups of hundreds exist at all");
  serial_attempts_section();
  pgrid_section();
  return 0;
}
