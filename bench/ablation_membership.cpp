// Membership dissemination via partial flooding lists — the name-dropper
// effect (paper §1/§7.2, citing Harchol-Balter et al. [14]).
//
// "By using the partial random list of replicas to which a rumor has been
// sent, we are also sending information about replicas hitherto unknown to
// certain nodes, thus gradually propagating global information."
//
// Peers start with tiny views (the §2 assumption: "each replica knows a
// minimal fraction of the complete set of replicas"); consecutive updates
// grow the views, which in turn improves the spread of later updates.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

double mean_view_size(const sim::RoundSimulator& simulator) {
  common::RunningStats sizes;
  for (std::uint32_t i = 0; i < simulator.population(); ++i) {
    sizes.add(static_cast<double>(
        simulator.node(common::PeerId(i)).view().size()));
  }
  return sizes.mean();
}

void run(bool with_list) {
  sim::RoundSimConfig config;
  config.population = 1'000;
  config.gossip.estimated_total_replicas = config.population;
  config.gossip.fanout_fraction = 0.03;
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.gossip.partial_list.mode = with_list
                                        ? gossip::PartialListMode::kUnbounded
                                        : gossip::PartialListMode::kNone;
  config.initial_view_size = 20;  // tiny initial knowledge
  config.reconnect_pull = false;
  config.round_timers = false;
  config.seed = 99;
  auto simulator = sim::make_push_phase_simulator(config, 0.5, 1.0);

  common::TextTable table(
      std::string("consecutive updates, partial list ") +
      (with_list ? "ON" : "OFF (control)"));
  table.header({"update #", "mean view size", "F_aware", "msgs/online peer"});
  table.row()
      .cell(std::string("start"))
      .cell(mean_view_size(*simulator), 1)
      .cell("-")
      .cell("-");
  for (int update = 1; update <= 5; ++update) {
    const auto metrics = simulator->propagate_update(
        std::nullopt, "item", "v" + std::to_string(update));
    table.row()
        .cell(static_cast<std::size_t>(update))
        .cell(mean_view_size(*simulator), 1)
        .cell(metrics.final_aware_fraction(), 4)
        .cell(metrics.messages_per_initial_online(), 2);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — membership growth through partial lists (name dropper)",
      "1000 peers, initial views of 20 (2%), 50% online, five consecutive "
      "updates");
  run(/*with_list=*/true);
  run(/*with_list=*/false);
  std::cout << "  with the list, views snowball toward global knowledge and\n"
            << "  update spread improves update over update; without it,\n"
            << "  views grow only by meeting direct senders.\n";
  return 0;
}
