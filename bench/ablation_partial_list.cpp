// Ablation: the partial flooding list R_f (§4.2, §5.6).
//
// Quantifies, by simulation and by the capped-list analysis, what the list
// buys: duplicate suppression and membership discovery, as a function of
// the cap l_max and the discard policy (random / head / tail). The paper
// predicts: awareness growth is unchanged by capping (extra messages are
// all duplicates), l_max = 0 degenerates to Gnutella-style duplication.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

sim::AggregateMetrics simulate(gossip::PartialListMode mode,
                               std::size_t max_entries) {
  sim::AggregateMetrics aggregate;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::RoundSimConfig config;
    config.population = 2'000;
    config.gossip.estimated_total_replicas = config.population;
    config.gossip.fanout_fraction = 0.02;
    config.gossip.forward_probability = analysis::pf_constant(1.0);
    config.gossip.partial_list.mode = mode;
    config.gossip.partial_list.max_entries = max_entries;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = 4242 + seed;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    aggregate.add(simulator->propagate_update());
  }
  return aggregate;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — partial flooding list",
      "Population 2000, 20% online, sigma=0.95, f_r=0.02, PF=1; 5 seeds");

  common::TextTable table("partial-list policies (simulation)");
  table.header({"policy", "msgs/peer", "duplicates/update", "F_aware",
                "rounds"});
  struct Row {
    const char* name;
    gossip::PartialListMode mode;
    std::size_t cap;
  };
  const Row rows[] = {
      {"no list (Gnutella-like)", gossip::PartialListMode::kNone, 0},
      {"unbounded list", gossip::PartialListMode::kUnbounded, 0},
      {"capped 100, drop random", gossip::PartialListMode::kDropRandom, 100},
      {"capped 100, drop head", gossip::PartialListMode::kDropHead, 100},
      {"capped 100, drop tail", gossip::PartialListMode::kDropTail, 100},
      {"capped 25, drop random", gossip::PartialListMode::kDropRandom, 25},
  };
  for (const Row& row : rows) {
    const auto aggregate = simulate(row.mode, row.cap);
    table.row()
        .cell(row.name)
        .cell(aggregate.messages_per_initial_online.mean(), 3)
        .cell(aggregate.duplicates.mean(), 1)
        .cell(aggregate.final_aware_fraction.mean(), 4)
        .cell(aggregate.rounds_to_quiescence.mean(), 1);
  }
  table.print(std::cout);

  // Capped-list analysis (normalised cap l_max = cap / R).
  common::TextTable model("capped-list analytical model");
  model.header({"l_max (normalised)", "msgs/peer", "F_aware"});
  for (const double cap : {0.0, 0.025, 0.1, 1.0}) {
    analysis::PushModelParams params;
    params.total_replicas = 2'000;
    params.initial_online = 400;
    params.sigma = 0.95;
    params.fanout_fraction = 0.02;
    params.use_partial_list = cap > 0.0;
    params.list_cap = cap > 0.0 ? cap : 1.0;
    const auto trajectory = analysis::evaluate_push(params);
    model.row()
        .cell(cap, 3)
        .cell(trajectory.messages_per_initial_online(), 3)
        .cell(trajectory.final_aware(), 4);
  }
  model.print(std::cout);
  std::cout << "  paper: capping the list costs duplicate messages only —\n"
            << "  F_aware stays unchanged (§4.2).\n";
  return 0;
}
