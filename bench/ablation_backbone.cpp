// Non-uniform availability / reliable backbone (paper §8 future work).
//
// "the effect of non-uniform online probability of peers needs to be
// explored. In such a scenario a relatively reliable network backbone would
// exist and thus would make possible further performance improvements."
//
// We compare populations with the SAME average availability but different
// composition: uniform vs a small highly-available backbone amid very flaky
// peers — with and without the §6 ack optimisation, which is the mechanism
// that lets peers discover and favour backbone members.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "bench_util.hpp"
#include "churn/heterogeneous.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

struct Scenario {
  std::string name;
  std::unique_ptr<churn::ChurnModel> (*make_churn)(std::size_t);
};

std::unique_ptr<churn::ChurnModel> uniform_churn(std::size_t population) {
  // ~28% availability, sigma 0.97 for everyone.
  return std::make_unique<churn::BernoulliChurn>(population, 0.28, 0.97,
                                                 0.0117);
}

std::unique_ptr<churn::ChurnModel> backbone_churn(std::size_t population) {
  // 10% backbone at 90% availability + 90% flaky at 21%:
  // average = 0.1*0.9 + 0.9*0.21 ≈ 0.28, same as the uniform case.
  return churn::make_backbone_churn(population, 0.10,
                                    /*backbone_availability=*/0.90,
                                    /*backbone_sigma=*/0.999,
                                    /*flaky_availability=*/0.21,
                                    /*flaky_sigma=*/0.95);
}

void run(common::TextTable& table, const std::string& name,
         std::unique_ptr<churn::ChurnModel> (*make)(std::size_t), bool acks) {
  sim::AggregateMetrics aggregate;
  common::RunningStats delivery_ratio;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::RoundSimConfig config;
    config.population = 1'000;
    config.gossip.estimated_total_replicas = config.population;
    config.gossip.fanout_fraction = 0.02;
    config.gossip.forward_probability = analysis::pf_constant(1.0);
    config.gossip.acks.enabled = acks;
    config.gossip.acks.suppression_rounds = 30;
    config.gossip.acks.preferred_weight = 8;  // steer hard toward ackers
    config.gossip.pull.no_update_timeout = 1'000'000;
    config.reconnect_pull = false;
    config.round_timers = true;
    config.seed = 555 + seed;
    sim::RoundSimulator simulator(config, make(config.population));
    // Warm-up update builds ack knowledge of the backbone; measure the 2nd.
    (void)simulator.propagate_update(std::nullopt, "item", "v1");
    const auto before = simulator.bus_stats();
    aggregate.add(simulator.propagate_update(std::nullopt, "item", "v2"));
    const auto after = simulator.bus_stats();
    const auto sent = after.messages_sent - before.messages_sent;
    const auto delivered =
        after.messages_delivered - before.messages_delivered;
    delivery_ratio.add(sent == 0 ? 0.0
                                 : static_cast<double>(delivered) /
                                       static_cast<double>(sent));
  }
  table.row()
      .cell(name + (acks ? " + acks" : ""))
      .cell(aggregate.messages_per_initial_online.mean(), 3)
      .cell(delivery_ratio.mean(), 3)
      .cell(aggregate.final_aware_fraction.mean(), 4)
      .cell(aggregate.rounds_to_quiescence.mean(), 1);
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — reliable backbone under non-uniform availability (§8)",
      "1000 peers, ~28% average availability in both compositions; "
      "2nd consecutive update, 5 seeds");

  common::TextTable table("uniform vs backbone availability");
  table.header({"population composition", "msgs/online peer",
                "delivery ratio", "F_aware", "rounds"});
  run(table, "uniform 28%", uniform_churn, /*acks=*/false);
  run(table, "uniform 28%", uniform_churn, /*acks=*/true);
  run(table, "10% backbone @90% + flaky @21%", backbone_churn, /*acks=*/false);
  run(table, "10% backbone @90% + flaky @21%", backbone_churn, /*acks=*/true);
  table.print(std::cout);

  std::cout
      << "  paper §8: a reliable backbone enables further improvements —\n"
      << "  acks steer pushes toward backbone peers, cutting messages\n"
      << "  wasted on offline targets.\n";
  return 0;
}
