// Reproduces Fig. 1(a) and Fig. 1(b): impact of the initial online
// population size on plain flooding (PF = 1, f_r = 0.01, σ = 0.95,
// R = 10 000).
//
// Paper's findings to reproduce:
//   (a) with R_on(0) = 100 (1 %) the rumor fails to spread;
//   (b) for 5–30 % the message overhead is roughly independent of the
//       online population and very high — around 80 messages per online
//       peer for this plain flooding configuration.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"

using namespace updp2p;

int main() {
  bench::print_banner(
      "Figure 1 — impact of the initial online population (plain flooding)",
      "Setup: R=10000, f_r=0.01, PF=1, sigma=0.95; "
      "y = total messages / R_on[0], x = F_aware");

  // --- Fig. 1(a): tiny online population, rumor dies -----------------------
  {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 100;
    params.sigma = 0.95;
    params.fanout_fraction = 0.01;
    params.pf = analysis::pf_constant(1.0);
    const auto trajectory = analysis::evaluate_push(params);
    bench::print_series("Fig. 1(a): R_on[0]/R = 100/10000",
                        {trajectory.to_series("R_on[0]=100 (1% online)")});
    std::cout << "  rumor died: " << (trajectory.died() ? "yes" : "no")
              << " (paper: spread fails without a significant initial online "
                 "population)\n";
  }

  // --- Fig. 1(b): 1 % to 100 % online --------------------------------------
  {
    std::vector<common::Series> series;
    for (const double online : {100.0, 500.0, 1'000.0, 3'000.0, 10'000.0}) {
      analysis::PushModelParams params;
      params.total_replicas = 10'000;
      params.initial_online = online;
      params.sigma = 0.95;
      params.fanout_fraction = 0.01;
      params.pf = analysis::pf_constant(1.0);
      series.push_back(analysis::evaluate_push(params).to_series(
          "R_on[0]/R = " + std::to_string(static_cast<int>(online)) +
          "/10000"));
    }
    bench::print_series("Fig. 1(b): varying R_on[0] between 1% and 100%",
                        series);
    std::cout
        << "  paper: overhead ~80 msgs/online peer, roughly independent of\n"
        << "  the online population once it is significant (>=5%).\n";
  }
  return 0;
}
