// Reproduces Fig. 4: impact of the forwarding-probability schedule PF(t)
// (σ = 0.9, R_on(0) = 1000, f_r = 0.01, R = 10 000).
//
// Paper's findings: decaying PF(t) eliminates many unnecessary messages
// (best strategy: reduce PF as rounds progress), but decaying too fast
// (0.7^t, 0.5^t) kills the rumor before it covers the population. The
// figure's y-range is 0..70 messages per online peer.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"

using namespace updp2p;

int main() {
  bench::print_banner("Figure 4 — varying PF(t)",
                      "Setup: R=10000, R_on[0]=1000, f_r=0.01, sigma=0.9");

  const std::vector<analysis::PfSchedule> schedules = {
      analysis::pf_constant(1.0),     analysis::pf_constant(0.8),
      analysis::pf_linear_decay(0.1), analysis::pf_geometric(0.9),
      analysis::pf_geometric(0.7),    analysis::pf_geometric(0.5),
  };

  std::vector<common::Series> series;
  common::TextTable summary("Fig. 4 summary");
  summary.header({"PF(t)", "msgs/R_on[0]", "final F_aware", "rounds(99%)",
                  "spread ok?"});
  for (const auto& schedule : schedules) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 1'000;
    params.sigma = 0.9;
    params.fanout_fraction = 0.01;
    params.pf = schedule;
    const auto trajectory = analysis::evaluate_push(params);
    series.push_back(trajectory.to_series(schedule.label));
    summary.row()
        .cell(schedule.label)
        .cell(trajectory.messages_per_initial_online(), 3)
        .cell(trajectory.final_aware(), 4)
        .cell(static_cast<std::size_t>(trajectory.rounds_to_fraction(0.99)))
        .cell(trajectory.died(0.95) ? "no (rumor died)" : "yes");
  }
  bench::print_series("Fig. 4: messages vs awareness for each PF(t)", series);
  summary.print(std::cout);
  std::cout << "  paper: PF decay saves messages; too-aggressive decay"
            << " (0.7^t, 0.5^t) fails to reach the population.\n";
  return 0;
}
