// Pull-phase evaluation (§4.3, §6) — analytical success probabilities plus
// event-driven simulation of reconnecting peers, eager vs lazy pull, and a
// Demers anti-entropy (pull-only) baseline.
#include <iostream>

#include "analysis/pull_model.hpp"
#include "baselines/anti_entropy.hpp"
#include "bench_util.hpp"
#include "sim/event_simulator.hpp"

using namespace updp2p;

namespace {

void analytical_section() {
  common::TextTable table(
      "P(update obtained in n pull attempts), R = 1000 (Eq. of Section 4.3)");
  table.header({"R_on", "F_aware", "n=1", "n=2", "n=3", "n=5", "n for 99.9%"});
  struct Row {
    double online;
    double aware;
  };
  for (const Row row : {Row{100, 0.5}, Row{100, 1.0}, Row{300, 1.0},
                        Row{100, 0.1}, Row{500, 0.9}}) {
    auto p = [&row](unsigned n) {
      return analysis::pull_success_probability(row.online, row.aware, 1'000,
                                                n);
    };
    table.row()
        .cell(row.online, 0)
        .cell(row.aware, 2)
        .cell(p(1), 4)
        .cell(p(2), 4)
        .cell(p(3), 4)
        .cell(p(5), 4)
        .cell(static_cast<std::size_t>(analysis::pull_attempts_for_confidence(
            row.online, row.aware, 1'000, 0.999)));
  }
  table.print(std::cout);
  std::cout << "  paper: a constant number of pull attempts suffices whp.\n";
}

struct PullVariantResult {
  double pull_msgs_per_reconnect;
  double aware_total;
  double stale_reads;
};

PullVariantResult run_event_sim(bool lazy, std::uint64_t seed) {
  sim::EventSimConfig config;
  config.population = 400;
  config.mean_online_time = 40.0;    // ~20% availability
  config.mean_offline_time = 160.0;
  config.round_duration = 1.0;
  config.gossip.estimated_total_replicas = config.population;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.forward_probability = analysis::pf_geometric(0.9);
  config.gossip.pull.lazy = lazy;
  config.gossip.pull.contacts_per_attempt = 3;
  config.gossip.pull.no_update_timeout = 50;
  config.seed = seed;

  sim::EventSimulator simulator(config);
  simulator.schedule_publish(10.0, "doc", "v1");
  // Periodic fresher versions keep the pull phase busy while churn cycles
  // peers through offline periods.
  simulator.schedule_publish(120.0, "doc", "v2");
  simulator.schedule_publish(240.0, "doc", "v3");

  std::size_t stale = 0;
  constexpr std::size_t kProbes = 50;
  for (std::size_t i = 0; i < kProbes; ++i) {
    simulator.run_until(10.0 + static_cast<double>(i) * 7.0);
    const auto answer =
        simulator.query("doc", 3, gossip::QueryRule::kLatestVersion);
    // A read is stale when it misses the newest already-published version.
    const auto& published = simulator.published();
    if (!published.empty() &&
        (!answer.has_value() || answer->id != published.back().id)) {
      ++stale;
    }
  }
  simulator.run_until(400.0);

  const auto& stats = simulator.stats();
  PullVariantResult result;
  result.pull_msgs_per_reconnect =
      stats.reconnects == 0 ? 0.0
                            : static_cast<double>(stats.pull_messages) /
                                  static_cast<double>(stats.reconnects);
  result.aware_total = simulator.aware_fraction_total(
      simulator.published().back().id);
  result.stale_reads =
      static_cast<double>(stale) / static_cast<double>(kProbes);
  return result;
}

void event_sim_section() {
  common::TextTable table(
      "eager vs lazy pull under session churn (event simulation, 400 peers, "
      "~20% availability, 3 consecutive updates)");
  table.header({"pull mode", "pull msgs/reconnect", "final awareness (all)",
                "stale-read fraction"});
  for (const bool lazy : {false, true}) {
    common::RunningStats msgs, aware, stale;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto result = run_event_sim(lazy, 500 + seed);
      msgs.add(result.pull_msgs_per_reconnect);
      aware.add(result.aware_total);
      stale.add(result.stale_reads);
    }
    table.row()
        .cell(lazy ? "lazy (§6)" : "eager (§3)")
        .cell(msgs.mean(), 2)
        .cell(aware.mean(), 4)
        .cell(stale.mean(), 4);
  }
  table.print(std::cout);
  std::cout << "  paper (§6): lazy pull saves the messages wasted finding an\n"
            << "  up-to-date online replica, at a query-freshness cost.\n";
}

void anti_entropy_section() {
  common::TextTable table(
      "pull-only anti-entropy baseline (Demers [9]): rounds & transfers to "
      "full consistency, 200 peers");
  table.header({"availability", "mode", "rounds", "sync sessions",
                "values moved", "final aware"});
  for (const double availability : {1.0, 0.3}) {
    for (const bool push_pull : {false, true}) {
      common::RunningStats rounds, sessions, values, aware;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        baselines::AntiEntropyConfig config;
        config.population = 200;
        config.push_pull = push_pull;
        config.seed = 900 + seed;
        auto churn = std::make_unique<churn::SessionChurn>(
            config.population, availability >= 1.0 ? 1e9 : 10.0,
            availability >= 1.0 ? 1.0 : 10.0 * (1.0 - availability) /
                                             availability);
        baselines::AntiEntropySystem system(config, std::move(churn));
        const auto metrics = system.propagate_until_consistent(200);
        rounds.add(static_cast<double>(metrics.rounds));
        sessions.add(static_cast<double>(metrics.sync_sessions));
        values.add(static_cast<double>(metrics.values_transferred));
        aware.add(metrics.final_aware_fraction);
      }
      table.row()
          .cell(availability, 2)
          .cell(push_pull ? "push-pull" : "pull")
          .cell(rounds.mean(), 1)
          .cell(sessions.mean(), 0)
          .cell(values.mean(), 0)
          .cell(aware.mean(), 4);
    }
  }
  table.print(std::cout);
  std::cout << "  anti-entropy converges without push but needs O(N log N)\n"
            << "  sync sessions per update — the hybrid's push phase does\n"
            << "  the bulk dissemination far cheaper.\n";
}

}  // namespace

int main() {
  bench::print_banner("Pull phase — Section 4.3 analysis, event simulation "
                      "and anti-entropy baseline",
                      "Hybrid push/pull vs pull-only reconciliation");
  analytical_section();
  event_sim_section();
  anti_entropy_section();
  return 0;
}
