// Microbenchmarks (google-benchmark) for the library's hot paths: version
// vector comparison/merge, store apply/delta, replica-view sampling,
// partial-list construction, full simulated push phases, and the
// analytical-model evaluation itself.
//
// Usage:
//   micro_core                  full run; writes BENCH_core.json (ns/op,
//                               messages/sec, peak RSS) to the working dir
//   micro_core --smoke          one quick pass over every bench, no JSON —
//                               the sanitizer-build sanity check
//   micro_core --json=<path>    override the JSON output path
// Any other flags pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"
#include "common/chunked_peer_set.hpp"
#include "common/rng.hpp"
#include "gossip/codec.hpp"
#include "gossip/node.hpp"
#include "gossip/partial_list.hpp"
#include "gossip/replica_view.hpp"
#include "sim/round_simulator.hpp"
#include "store/wal.hpp"
#include "version/store.hpp"

using namespace updp2p;

namespace {

version::VersionVector make_vector(std::size_t entries, std::uint64_t base) {
  version::VersionVector vv;
  for (std::size_t i = 0; i < entries; ++i) {
    vv.observe(common::PeerId(static_cast<std::uint32_t>(i)), base + i);
  }
  return vv;
}

void BM_VersionVectorCompare(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  const auto a = make_vector(entries, 5);
  auto b = make_vector(entries, 5);
  b.increment(common::PeerId(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VersionVectorCompare)->Arg(8)->Arg(64)->Arg(512);

void BM_VersionVectorMerge(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  const auto a = make_vector(entries, 5);
  const auto b = make_vector(entries, 9);
  for (auto _ : state) {
    version::VersionVector merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_VersionVectorMerge)->Arg(8)->Arg(64)->Arg(512);

void BM_StoreApplyChain(benchmark::State& state) {
  // Repeatedly apply a chain of dominating versions to one key.
  for (auto _ : state) {
    state.PauseTiming();
    version::VersionedStore store;
    version::LocalWriter writer(common::PeerId(1), common::Rng(7));
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(
          writer.write(store, "key", "payload", static_cast<double>(i)));
    }
  }
}
BENCHMARK(BM_StoreApplyChain);

void BM_StoreDelta(benchmark::State& state) {
  version::VersionedStore rich;
  version::LocalWriter writer(common::PeerId(1), common::Rng(7));
  for (int i = 0; i < 128; ++i) {
    (void)writer.write(rich, "key-" + std::to_string(i), "payload",
                       static_cast<double>(i));
  }
  const version::VersionVector empty_summary;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rich.missing_given(empty_summary));
  }
}
BENCHMARK(BM_StoreDelta);

void BM_ViewSample(benchmark::State& state) {
  const auto population = static_cast<std::uint32_t>(state.range(0));
  gossip::ReplicaView view{common::PeerId(0)};
  for (std::uint32_t i = 1; i < population; ++i) {
    view.add(common::PeerId(i));
  }
  common::Rng rng(99);
  const std::unordered_set<common::PeerId> exclude;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.sample(rng, 32, exclude));
  }
}
BENCHMARK(BM_ViewSample)->Arg(256)->Arg(4096);

void BM_ViewSampleInto(benchmark::State& state) {
  // The allocation-free path the simulators actually run: scratch output
  // vector plus the view's own epoch-stamped scratch sets.
  const auto population = static_cast<std::uint32_t>(state.range(0));
  gossip::ReplicaView view{common::PeerId(0)};
  for (std::uint32_t i = 1; i < population; ++i) {
    view.add(common::PeerId(i));
  }
  common::Rng rng(99);
  std::vector<common::PeerId> out;
  for (auto _ : state) {
    view.sample_into(rng, 32, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ViewSampleInto)->Arg(256)->Arg(4096);

void BM_BuildForwardList(benchmark::State& state) {
  gossip::PartialListConfig config;
  config.mode = gossip::PartialListMode::kDropRandom;
  config.max_entries = 128;
  common::ChunkedPeerSet received;
  std::vector<common::PeerId> targets;
  for (std::uint32_t i = 0; i < 256; ++i) received.insert(common::PeerId(i));
  for (std::uint32_t i = 200; i < 260; ++i) targets.emplace_back(i);
  common::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::build_forward_list(
        config, received, targets, common::PeerId(1000), rng));
  }
}
BENCHMARK(BM_BuildForwardList);

void BM_BuildForwardListInto(benchmark::State& state) {
  // The allocation-free path the node runs per handled push: merge the
  // received chunked list with the new targets and cap-sample, reusing one
  // arena ChunkedPeerSet (warm chunk buffers) across calls.
  gossip::PartialListConfig config;
  config.mode = gossip::PartialListMode::kDropRandom;
  config.max_entries = 128;
  common::ChunkedPeerSet received;
  std::vector<common::PeerId> targets;
  for (std::uint32_t i = 0; i < 256; ++i) received.insert(common::PeerId(i));
  for (std::uint32_t i = 200; i < 260; ++i) targets.emplace_back(i);
  common::Rng rng(3);
  common::ChunkedPeerSet out;
  for (auto _ : state) {
    gossip::build_forward_list_into(config, received, targets,
                                    common::PeerId(1000), rng, out);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_BuildForwardListInto);

void BM_AnalyticalPushModel(benchmark::State& state) {
  analysis::PushModelParams params;
  params.total_replicas = static_cast<double>(state.range(0));
  params.initial_online = params.total_replicas * 0.1;
  params.fanout_fraction = 100.0 / params.total_replicas;
  params.pf = analysis::pf_offset_geometric(0.8, 0.7, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::evaluate_push(params));
  }
}
BENCHMARK(BM_AnalyticalPushModel)->Arg(10'000)->Arg(1'000'000);

/// A push frame shaped like acceptance-scale traffic: a realistic value
/// plus a 100-entry flooding list (one array chunk of delta varints).
gossip::GossipPayload codec_bench_payload() {
  gossip::PushMessage push;
  version::VersionedValue value;
  value.key = "calendar/fri-10am";
  value.payload = "standup moved to 10:30 — war room";
  version::VersionIdFactory factory(common::PeerId(3), common::Rng(17));
  value.id = factory.mint(12.5);
  value.history.observe(common::PeerId(3), 7);
  value.history.observe(common::PeerId(900), 2);
  push.value = std::move(value);
  push.round = 4;
  for (std::uint32_t i = 0; i < 100; ++i) {
    push.flooding_list.insert(common::PeerId(13 * i));
  }
  return gossip::GossipPayload{std::move(push)};
}

// The wire pipeline, split by phase. The point of the split: a receiver
// classifying a duplicate pays ONLY the probe row; a first receipt pays
// probe + lazy-decode; the legacy path paid the round-trip row for every
// message. At the paper's ~80% duplicate rate the weighted per-message
// cost collapses toward the probe row.

void BM_CodecRoundTrip(benchmark::State& state) {
  const gossip::GossipPayload payload = codec_bench_payload();
  for (auto _ : state) {
    const gossip::WireBytes frame = gossip::encode(payload);
    auto decoded = gossip::decode(frame);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_CodecEncode(benchmark::State& state) {
  const gossip::GossipPayload payload = codec_bench_payload();
  gossip::WireBytes frame;  // warm, as the pooled runtime path runs it
  for (auto _ : state) {
    gossip::encode_into(payload, frame);
    benchmark::DoNotOptimize(frame.data());
  }
}
BENCHMARK(BM_CodecEncode);

void BM_CodecProbe(benchmark::State& state) {
  const gossip::WireBytes frame = gossip::encode(codec_bench_payload());
  for (auto _ : state) {
    auto probe = gossip::probe_frame(frame);
    benchmark::DoNotOptimize(probe);
  }
}
BENCHMARK(BM_CodecProbe);

void BM_CodecLazyDecode(benchmark::State& state) {
  const gossip::WireBytes frame = gossip::encode(codec_bench_payload());
  common::ChunkedPeerSet list;  // warm: parked chunks are reused
  for (auto _ : state) {
    auto push = gossip::decode_push_into(frame, list);
    benchmark::DoNotOptimize(push);
  }
}
BENCHMARK(BM_CodecLazyDecode);

/// Attaches the traffic counters the JSON reporter folds into its
/// messages_per_sec / bytes_per_msg / threads columns.
void set_traffic_counters(benchmark::State& state, std::uint64_t messages,
                          std::uint64_t bytes, unsigned threads) {
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(messages));
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(bytes));
  state.counters["threads"] = benchmark::Counter(static_cast<double>(threads));
}

void BM_StoreAppend(benchmark::State& state) {
  // The durable-store hot path: the per-receipt cost a durable peer pays
  // before its ack leaves — frame one WAL record (CRC-32C over seq+body),
  // one write(2), no fsync (the runtime default).
  const std::string path = "/tmp/updp2p_bench_append.wal";
  std::remove(path.c_str());
  auto wal = store::FrameWal::open_for_append(path, 0, 1, false, nullptr);
  if (!wal) {
    state.SkipWithError("cannot open bench WAL");
    return;
  }
  const gossip::WireBytes frame = gossip::encode(codec_bench_payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal->append(common::PeerId(1), 4, frame));
  }
  set_traffic_counters(state, static_cast<std::uint64_t>(state.iterations()),
                       wal->appended_bytes(), 1);
  wal.reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreAppend);

/// A 10k-record WAL image built once through the real appender: distinct
/// versions so every replayed frame mutates the node's store.
std::vector<std::byte> replay_bench_image() {
  const std::string path = "/tmp/updp2p_bench_replay.wal";
  std::remove(path.c_str());
  auto wal = store::FrameWal::open_for_append(path, 0, 1, false, nullptr);
  if (!wal) return {};
  gossip::WireBytes frame;
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    version::VersionedValue value;
    value.key = "key-" + std::to_string(i % 16);
    value.payload = "payload-" + std::to_string(i);
    version::VersionIdFactory factory(common::PeerId(1 + i % 30),
                                      common::Rng(i * 7 + 1));
    value.id = factory.mint(static_cast<double>(i));
    value.history.observe(common::PeerId(1 + i % 30), 1 + i);
    value.written_at = static_cast<double>(i);
    gossip::GossipPayload payload = gossip::PushMessage{
        gossip::SharedValue(std::move(value)), gossip::SharedPeerList{}, 0};
    gossip::encode_into(payload, frame);
    (void)wal->append(common::PeerId(1 + i % 30), 0, frame);
  }
  wal.reset();
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  std::remove(path.c_str());
  return bytes;
}

void BM_StoreReplay10k(benchmark::State& state) {
  // Crash-recovery replay at snapshot-cadence scale: scan 10k framed
  // records (length + CRC verification each), decode every frame, and
  // apply it through a fresh node's handle_frame — the exact pipeline a
  // restarting durable peer runs before it starts listening.
  const std::vector<std::byte> image = replay_bench_image();
  gossip::GossipConfig config;
  config.estimated_total_replicas = 50;
  config.fanout_fraction = 0.1;
  config.forward_probability = analysis::pf_constant(1.0);
  config.partial_list.mode = gossip::PartialListMode::kUnbounded;
  std::vector<common::PeerId> view;
  for (std::uint32_t i = 1; i < 50; ++i) view.emplace_back(i);
  std::uint64_t replayed = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gossip::ReplicaNode node(common::PeerId(0), config, common::StreamRng(7));
    node.bootstrap(view);
    std::vector<gossip::OutboundMessage> discard;
    state.ResumeTiming();
    const auto scan =
        store::scan_wal(image, 1, [&](const store::WalRecord& record) {
          discard.clear();
          if (node.handle_frame(record.from, record.frame, record.round,
                                discard)) {
            ++replayed;
          }
        });
    benchmark::DoNotOptimize(scan.records);
    bytes += image.size();
  }
  set_traffic_counters(state, replayed, bytes, 1);
}
BENCHMARK(BM_StoreReplay10k)->Unit(benchmark::kMillisecond);

void BM_SimulatedUpdate(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::RoundSimConfig config;
    config.population = population;
    config.gossip.estimated_total_replicas = population;
    config.gossip.fanout_fraction = 0.02;
    config.reconnect_pull = false;
    config.round_timers = false;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    state.ResumeTiming();
    const sim::RunMetrics metrics = simulator->propagate_update();
    messages += metrics.total_messages();
    bytes += metrics.total_bytes();
    benchmark::DoNotOptimize(&metrics);
  }
  set_traffic_counters(state, messages, bytes, 1);
}
BENCHMARK(BM_SimulatedUpdate)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_SimulatedUpdate10k(benchmark::State& state) {
  // The acceptance-scale run: 10k replicas, 20% online, fanout 100. One
  // iteration is a full propagate_update (roughly 175k protocol messages
  // over 8 rounds), so this measures the whole step_round pipeline —
  // delivery, handling, forward-list building, dispatch — at scale.
  // Runs the sharded engine at 8 shard threads (results are bit-identical
  // to sequential; see GoldenDeterminism.ShardInvariance).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::RoundSimConfig config;
    config.population = 10'000;
    config.gossip.estimated_total_replicas = 10'000;
    config.gossip.fanout_fraction = 0.01;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = 5;
    config.shard_threads = 8;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    state.ResumeTiming();
    const sim::RunMetrics metrics = simulator->propagate_update();
    messages += metrics.total_messages();
    bytes += metrics.total_bytes();
    benchmark::DoNotOptimize(&metrics);
  }
  set_traffic_counters(state, messages, bytes, 8);
}
BENCHMARK(BM_SimulatedUpdate10k)->Unit(benchmark::kMillisecond);

void BM_SimulatedUpdate10kWire(benchmark::State& state) {
  // The same acceptance-scale run with serialize_messages on: every
  // dispatched payload travels as real codec bytes and every delivery goes
  // through the frame path. The gap between this row and
  // BM_SimulatedUpdate10k is the whole cost of running the actual wire
  // protocol instead of the in-memory approximation; the zero-copy
  // pipeline (interned push frames + probe-classified duplicates) is what
  // keeps it small. Results are bit-identical to the in-memory row
  // (WireEquivalence suite).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::RoundSimConfig config;
    config.population = 10'000;
    config.gossip.estimated_total_replicas = 10'000;
    config.gossip.fanout_fraction = 0.01;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = 5;
    config.shard_threads = 8;
    config.serialize_messages = true;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    state.ResumeTiming();
    const sim::RunMetrics metrics = simulator->propagate_update();
    messages += metrics.total_messages();
    bytes += metrics.total_bytes();
    benchmark::DoNotOptimize(&metrics);
  }
  set_traffic_counters(state, messages, bytes, 8);
}
BENCHMARK(BM_SimulatedUpdate10kWire)->Unit(benchmark::kMillisecond);

void BM_SimulatedUpdateScaling(benchmark::State& state) {
  // Thread-count scaling sweep over the same 10k-replica run: Arg is the
  // shard_threads value. Because results are bit-identical at every value,
  // the rows differ ONLY in wall-clock — a direct read of parallel
  // speedup (or, on few-core hosts, of sharding overhead).
  const auto shard_threads = static_cast<unsigned>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::RoundSimConfig config;
    config.population = 10'000;
    config.gossip.estimated_total_replicas = 10'000;
    config.gossip.fanout_fraction = 0.01;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = 5;
    config.shard_threads = shard_threads;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    state.ResumeTiming();
    const sim::RunMetrics metrics = simulator->propagate_update();
    messages += metrics.total_messages();
    bytes += metrics.total_bytes();
    benchmark::DoNotOptimize(&metrics);
  }
  set_traffic_counters(state, messages, bytes, shard_threads);
}
BENCHMARK(BM_SimulatedUpdateScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedUpdateLarge(benchmark::State& state) {
  // Population-scale runs (100k default; 1M behind --large). The point is
  // twofold: wall-clock at population scale, and memory — the SoA/arena
  // work has to keep the 100k run's peak RSS under 1.7 GB (tracked via
  // this bench's rss_delta_kb in BENCH_core.json).
  const auto population = static_cast<std::size_t>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::RoundSimConfig config;
    config.population = population;
    config.gossip.estimated_total_replicas = population;
    // Fanout 100 at every scale, like the paper's large-population runs.
    config.gossip.fanout_fraction = 100.0 / static_cast<double>(population);
    // Partial bootstrap views: full membership knowledge at 100k+ nodes
    // would cost O(population²) memory (hundreds of KB of view state per
    // node). 300 peers per view keeps per-node state O(|view|) — the
    // regime the paper's partial-knowledge assumption describes — and is
    // 3x the fanout, so sampling never starves.
    config.initial_view_size = 300;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = 5;
    config.shard_threads = 8;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    state.ResumeTiming();
    const sim::RunMetrics metrics = simulator->propagate_update();
    messages += metrics.total_messages();
    bytes += metrics.total_bytes();
    benchmark::DoNotOptimize(&metrics);
  }
  set_traffic_counters(state, messages, bytes, 8);
}
void RegisterLargeBenches(bool include_million) {
  auto* bench = benchmark::RegisterBenchmark("BM_SimulatedUpdate100k",
                                             BM_SimulatedUpdateLarge)
                    ->Arg(100'000)
                    ->Unit(benchmark::kMillisecond)
                    ->Iterations(1);
  (void)bench;
  if (include_million) {
    benchmark::RegisterBenchmark("BM_SimulatedUpdate1M",
                                 BM_SimulatedUpdateLarge)
        ->Arg(1'000'000)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

/// Console output plus a record of every run for BENCH_core.json.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    // Peak-RSS growth since the previous report batch: attributed to the
    // first record of this batch (batches are per-benchmark, so this pins
    // footprint growth on the bench that caused it).
    const std::int64_t peak_now = bench::peak_rss_kb();
    std::int64_t delta = peak_now - last_peak_kb_;
    last_peak_kb_ = peak_now;
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      bench::CoreBenchRecord record;
      record.name = run.benchmark_name();
      record.ns_per_op = run.real_accumulated_time /
                         static_cast<double>(run.iterations) * 1e9;
      const auto messages = run.counters.find("messages");
      if (messages != run.counters.end() && run.real_accumulated_time > 0) {
        record.messages_per_sec =
            messages->second.value / run.real_accumulated_time;
      }
      const auto bytes = run.counters.find("bytes");
      if (messages != run.counters.end() && bytes != run.counters.end() &&
          messages->second.value > 0) {
        record.bytes_per_msg = bytes->second.value / messages->second.value;
      }
      const auto threads = run.counters.find("threads");
      if (threads != run.counters.end() && threads->second.value >= 1) {
        record.threads = static_cast<unsigned>(threads->second.value);
      }
      record.rss_delta_kb = delta;
      delta = 0;
      records.push_back(std::move(record));
    }
  }
  std::vector<bench::CoreBenchRecord> records;

 private:
  std::int64_t last_peak_kb_ = bench::peak_rss_kb();
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  std::string json_path = "BENCH_core.json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--large") {
      large = true;  // adds the 1M-replica run (several GB, minutes)
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  // Smoke mode: one quick pass over every bench — exercises all hot paths
  // (the sanitizer-build check) without paying for stable statistics.
  // The population-scale benches are skipped: at 100k+ replicas even one
  // iteration dominates a sanity pass.
  char min_time_flag[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time_flag);
  if (!smoke) RegisterLargeBenches(large);

  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::cout << "peak_rss_kb: " << updp2p::bench::peak_rss_kb() << "\n";
  if (!smoke) {
    const auto meta = updp2p::bench::collect_run_meta();
    if (!updp2p::bench::write_core_bench_json(json_path, reporter.records,
                                              meta)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << " (" << reporter.records.size()
              << " benchmarks)\n";
  }
  return 0;
}
