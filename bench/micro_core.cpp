// Microbenchmarks (google-benchmark) for the library's hot paths: version
// vector comparison/merge, store apply/delta, replica-view sampling,
// partial-list construction, one full simulated push round, and the
// analytical-model evaluation itself.
#include <benchmark/benchmark.h>

#include "analysis/push_model.hpp"
#include "common/rng.hpp"
#include "gossip/node.hpp"
#include "gossip/partial_list.hpp"
#include "gossip/replica_view.hpp"
#include "sim/round_simulator.hpp"
#include "version/store.hpp"

using namespace updp2p;

namespace {

version::VersionVector make_vector(std::size_t entries, std::uint64_t base) {
  version::VersionVector vv;
  for (std::size_t i = 0; i < entries; ++i) {
    vv.observe(common::PeerId(static_cast<std::uint32_t>(i)), base + i);
  }
  return vv;
}

void BM_VersionVectorCompare(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  const auto a = make_vector(entries, 5);
  auto b = make_vector(entries, 5);
  b.increment(common::PeerId(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VersionVectorCompare)->Arg(8)->Arg(64)->Arg(512);

void BM_VersionVectorMerge(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  const auto a = make_vector(entries, 5);
  const auto b = make_vector(entries, 9);
  for (auto _ : state) {
    version::VersionVector merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_VersionVectorMerge)->Arg(8)->Arg(64)->Arg(512);

void BM_StoreApplyChain(benchmark::State& state) {
  // Repeatedly apply a chain of dominating versions to one key.
  for (auto _ : state) {
    state.PauseTiming();
    version::VersionedStore store;
    version::LocalWriter writer(common::PeerId(1), common::Rng(7));
    state.ResumeTiming();
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(
          writer.write(store, "key", "payload", static_cast<double>(i)));
    }
  }
}
BENCHMARK(BM_StoreApplyChain);

void BM_StoreDelta(benchmark::State& state) {
  version::VersionedStore rich;
  version::LocalWriter writer(common::PeerId(1), common::Rng(7));
  for (int i = 0; i < 128; ++i) {
    (void)writer.write(rich, "key-" + std::to_string(i), "payload",
                       static_cast<double>(i));
  }
  const version::VersionVector empty_summary;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rich.missing_given(empty_summary));
  }
}
BENCHMARK(BM_StoreDelta);

void BM_ViewSample(benchmark::State& state) {
  const auto population = static_cast<std::uint32_t>(state.range(0));
  gossip::ReplicaView view{common::PeerId(0)};
  for (std::uint32_t i = 1; i < population; ++i) {
    view.add(common::PeerId(i));
  }
  common::Rng rng(99);
  const std::unordered_set<common::PeerId> exclude;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.sample(rng, 32, exclude));
  }
}
BENCHMARK(BM_ViewSample)->Arg(256)->Arg(4096);

void BM_BuildForwardList(benchmark::State& state) {
  gossip::PartialListConfig config;
  config.mode = gossip::PartialListMode::kDropRandom;
  config.max_entries = 128;
  std::vector<common::PeerId> received;
  std::vector<common::PeerId> targets;
  for (std::uint32_t i = 0; i < 256; ++i) received.emplace_back(i);
  for (std::uint32_t i = 200; i < 260; ++i) targets.emplace_back(i);
  common::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::build_forward_list(
        config, received, targets, common::PeerId(1000), rng));
  }
}
BENCHMARK(BM_BuildForwardList);

void BM_AnalyticalPushModel(benchmark::State& state) {
  analysis::PushModelParams params;
  params.total_replicas = static_cast<double>(state.range(0));
  params.initial_online = params.total_replicas * 0.1;
  params.fanout_fraction = 100.0 / params.total_replicas;
  params.pf = analysis::pf_offset_geometric(0.8, 0.7, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::evaluate_push(params));
  }
}
BENCHMARK(BM_AnalyticalPushModel)->Arg(10'000)->Arg(1'000'000);

void BM_SimulatedUpdate(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::RoundSimConfig config;
    config.population = population;
    config.gossip.estimated_total_replicas = population;
    config.gossip.fanout_fraction = 0.02;
    config.reconnect_pull = false;
    config.round_timers = false;
    auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.95);
    state.ResumeTiming();
    benchmark::DoNotOptimize(simulator->propagate_update());
  }
}
BENCHMARK(BM_SimulatedUpdate)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
