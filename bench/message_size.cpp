// Message-length analysis (§4.2): L_M(t) = U + R·α·l(t) with the partial
// list growing as l(t) = 1 − (1−f_r)^(t+1), and the capped variant
// l(t) = min(l_max, ·).
//
// The paper's plots ignore message size ("single messages can accommodate
// the messages of maximal size"); §4.2 nonetheless derives the growth law
// and the capping remedy. This bench (a) evaluates the analytical L_M(t)
// series, and (b) cross-checks the wire-size model against the byte counts
// of a simulation that encodes every message with the real binary codec.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "gossip/codec.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

void analytical_section() {
  common::TextTable table(
      "analytical message length per round (R=10000, f_r=0.01, U=100B, "
      "alpha=10B)");
  table.header({"round t", "l(t) uncapped", "L_M(t) bytes", "l(t) capped 0.05",
                "L_M(t) capped bytes"});
  analysis::PushModelParams params;
  params.total_replicas = 10'000;
  params.initial_online = 1'000;
  params.sigma = 0.95;
  params.fanout_fraction = 0.01;
  auto capped = params;
  capped.list_cap = 0.05;
  const auto uncapped_run = analysis::evaluate_push(params);
  const auto capped_run = analysis::evaluate_push(capped);
  const std::size_t rounds =
      std::min<std::size_t>({8, uncapped_run.rounds.size(),
                             capped_run.rounds.size()});
  for (std::size_t t = 0; t < rounds; ++t) {
    table.row()
        .cell(t)
        .cell(uncapped_run.rounds[t].list_length, 4)
        .cell(uncapped_run.rounds[t].message_bytes, 0)
        .cell(capped_run.rounds[t].list_length, 4)
        .cell(capped_run.rounds[t].message_bytes, 0);
  }
  table.print(std::cout);
  std::cout << "  paper: l(t) = 1-(1-f_r)^(t+1); capping trades duplicate\n"
            << "  messages for bounded per-message size.\n";
}

void wire_section() {
  common::TextTable table(
      "wire-size accounting vs real codec frames (simulation, 1000 peers)");
  table.header({"accounting", "total bytes", "bytes/push message"});
  for (const bool real_codec : {false, true}) {
    sim::RoundSimConfig config;
    config.population = 1'000;
    config.gossip.estimated_total_replicas = config.population;
    config.gossip.fanout_fraction = 0.015;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.serialize_messages = real_codec;
    config.seed = 99;
    auto simulator = sim::make_push_phase_simulator(config, 0.3, 1.0);
    const auto metrics = simulator->propagate_update();
    table.row()
        .cell(real_codec ? "binary codec (actual frames)"
                         : "encoded_size (no serialization)")
        .cell(static_cast<std::size_t>(metrics.total_bytes()))
        .cell(static_cast<double>(metrics.total_bytes()) /
                  static_cast<double>(std::max<std::uint64_t>(
                      metrics.total_push_messages(), 1)),
              1);
  }
  table.print(std::cout);
  std::cout << "  the rows are byte-identical by construction:\n"
            << "  gossip::encoded_size is an exact mirror of the encoder,\n"
            << "  so in-memory runs charge true wire bytes.\n";
}

// Wire cost of the flooding list alone, as a function of how much of the
// id space it covers. Encodes a push carrying the list through the real v2
// codec and subtracts the same push with an empty list, isolating the
// peerset bytes; the flat-u32 column is what a naive fixed-width array
// encoding would spend on the same members.
void compressed_list_section() {
  constexpr std::uint32_t kIdSpace = 10'000;
  common::TextTable table(
      "flooding-list wire cost: chunked delta-varint vs flat u32 "
      "(ids uniform in [0, 10000))");
  table.header({"members", "delta-varint bytes", "bytes/member", "flat u32",
                "ratio"});
  common::Rng rng(42);
  for (const std::size_t members :
       {std::size_t{32}, std::size_t{256}, std::size_t{1'024},
        std::size_t{4'096}, std::size_t{9'000}}) {
    common::ChunkedPeerSet set;
    while (set.size() < members) {
      set.insert(common::PeerId(
          static_cast<std::uint32_t>(rng.pick_index(kIdSpace))));
    }
    gossip::PushMessage push;
    push.flooding_list = std::move(set);
    const std::size_t with_list =
        gossip::encode(gossip::GossipPayload(push)).size();
    push.flooding_list = gossip::SharedPeerList();
    const std::size_t without_list =
        gossip::encode(gossip::GossipPayload(push)).size();
    const std::size_t list_bytes = with_list - without_list;
    const double flat = static_cast<double>(members) * 4.0;
    table.row()
        .cell(members)
        .cell(list_bytes)
        .cell(static_cast<double>(list_bytes) / static_cast<double>(members),
              2)
        .cell(static_cast<std::size_t>(flat))
        .cell(static_cast<double>(list_bytes) / flat, 2);
  }
  table.print(std::cout);
  std::cout << "  sparse lists pay ~2 varint bytes per id-gap; past ~6% of\n"
            << "  a 64Ki chunk the bitmap form caps the cost at 8KiB per\n"
            << "  chunk no matter how many more members pile in.\n";
}

}  // namespace

int main() {
  bench::print_banner("Message sizes — L_M(t) growth, capping, and real "
                      "codec frames (§4.2)",
                      "Partial-list growth law and its bandwidth cost");
  analytical_section();
  wire_section();
  compressed_list_section();
  return 0;
}
