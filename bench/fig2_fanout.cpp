// Reproduces Fig. 2: impact of varying the fanout fraction f_r
// (σ = 0.9, PF = 1, R_on(0) = 1000, R = 10 000).
//
// Paper's finding: a small fanout suffices — larger fanouts barely speed up
// propagation but create roughly eight to ten times more (duplicate)
// messages; y-axis range of the figure is 0..400 messages per online peer.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"

using namespace updp2p;

int main() {
  bench::print_banner("Figure 2 — varying f_r",
                      "Setup: R=10000, R_on[0]=1000, sigma=0.9, PF=1");

  std::vector<common::Series> series;
  double min_msgs = 0.0;
  double max_msgs = 0.0;
  for (const double f_r : {0.005, 0.01, 0.02, 0.05}) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 1'000;
    params.sigma = 0.9;
    params.fanout_fraction = f_r;
    params.pf = analysis::pf_constant(1.0);
    const auto trajectory = analysis::evaluate_push(params);
    series.push_back(
        trajectory.to_series("F_r = " + common::format_double(f_r, 3)));
    const double msgs = trajectory.messages_per_initial_online();
    min_msgs = min_msgs == 0.0 ? msgs : std::min(min_msgs, msgs);
    max_msgs = std::max(max_msgs, msgs);
  }
  bench::print_series("Fig. 2: messages vs awareness for each fanout", series);
  std::cout << "  overhead ratio largest/smallest fanout: "
            << common::format_double(max_msgs / min_msgs, 2)
            << "x  (paper: ~8-10x more duplicates with large fanout)\n";
  return 0;
}
