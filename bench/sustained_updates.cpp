// Sustained-update workload: probing the §2 assumption that "consecutive
// updates are distributed sparsely".
//
// A Zipf-skewed Poisson stream of updates and queries runs against the
// event-driven simulator at increasing update rates. Reported per rate:
// protocol traffic, fraction of fresh query answers (answer == newest
// published version of the key at query time), and answer-miss rate. The
// paper's probabilistic guarantees hold while updates are sparse relative
// to the push latency; the experiment shows how they erode as the rate
// grows — quantifying where the assumption matters.
#include <iostream>
#include <map>

#include "analysis/forward_probability.hpp"
#include "bench_util.hpp"
#include "sim/event_simulator.hpp"
#include "sim/workload.hpp"

using namespace updp2p;

namespace {

struct RateResult {
  double fresh_fraction = 0.0;
  double miss_fraction = 0.0;
  std::uint64_t push_messages = 0;
  std::uint64_t pull_messages = 0;
  std::size_t updates = 0;
  std::size_t queries = 0;
};

RateResult run_rate(double update_rate, std::uint64_t seed) {
  sim::EventSimConfig config;
  config.population = 200;
  config.mean_online_time = 60.0;
  config.mean_offline_time = 140.0;  // 30% availability
  config.gossip.estimated_total_replicas = config.population;
  config.gossip.fanout_fraction = 0.06;
  config.gossip.forward_probability = analysis::pf_geometric(0.9);
  config.gossip.pull.no_update_timeout = 25;
  config.seed = seed;
  sim::EventSimulator simulator(config);

  sim::WorkloadConfig workload_config;
  workload_config.key_count = 20;
  workload_config.zipf_exponent = 0.9;
  workload_config.update_rate = update_rate;
  workload_config.query_rate = 0.25;
  workload_config.seed = seed * 31;
  sim::WorkloadGenerator generator(workload_config);

  constexpr common::SimTime kHorizon = 600.0;
  const auto operations = generator.generate(kHorizon);

  // Latest published payload per key, updated as the stream executes.
  std::map<std::string, std::string> newest;
  RateResult result;

  for (const auto& op : operations) {
    simulator.run_until(op.at);
    if (op.kind == sim::Operation::Kind::kUpdate) {
      simulator.schedule_publish(op.at, op.key, op.payload);
      simulator.run_until(op.at);  // execute immediately
      newest[op.key] = op.payload;
      ++result.updates;
    } else {
      const auto it = newest.find(op.key);
      if (it == newest.end()) continue;  // nothing published yet: skip
      ++result.queries;
      const auto answer =
          simulator.query(op.key, 3, gossip::QueryRule::kLatestVersion);
      if (!answer.has_value()) {
        result.miss_fraction += 1.0;
      } else if (answer->payload == it->second) {
        result.fresh_fraction += 1.0;
      }
    }
  }
  simulator.run_until(kHorizon);

  const double evaluated = std::max<std::size_t>(result.queries, 1);
  result.fresh_fraction /= evaluated;
  result.miss_fraction /= evaluated;
  result.push_messages = simulator.stats().push_messages;
  result.pull_messages = simulator.stats().pull_messages;
  return result;
}

}  // namespace

int main() {
  bench::print_banner(
      "Sustained updates — stress on the sparse-updates assumption (§2)",
      "200 peers, 30% availability, Zipf(0.9) over 20 keys, 600 time units, "
      "query rate 0.25/u; 3 seeds per rate");

  common::TextTable table("update rate sweep");
  table.header({"updates/unit", "updates", "queries", "fresh answers",
                "missed answers", "push msgs", "pull msgs"});
  for (const double rate : {0.01, 0.05, 0.2, 0.8}) {
    common::RunningStats fresh, miss;
    RateResult last;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      last = run_rate(rate, 100 + seed);
      fresh.add(last.fresh_fraction);
      miss.add(last.miss_fraction);
    }
    table.row()
        .cell(rate, 2)
        .cell(last.updates)
        .cell(last.queries)
        .cell(fresh.mean(), 3)
        .cell(miss.mean(), 3)
        .cell(static_cast<std::size_t>(last.push_messages))
        .cell(static_cast<std::size_t>(last.pull_messages));
  }
  table.print(std::cout);
  std::cout << "  while updates are sparse w.r.t. push latency, answers are\n"
            << "  almost always fresh; freshness degrades gracefully (not\n"
            << "  catastrophically) as the rate grows — quasi-consistency\n"
            << "  with probabilistic guarantees, as designed.\n";
  return 0;
}
