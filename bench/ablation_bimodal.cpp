// Bimodal delivery behaviour (paper §8 future work).
//
// "we plan to use simulations, which will also help us investigate whether
// there is bimodal behavior [4, 13] even in the assumed environment of very
// low peer presence." Bimodal: the traditional all-or-nothing guarantee
// becomes "almost all or almost none" (paper, footnote 2).
//
// We run many independent simulations of a near-critical configuration and
// histogram the final awareness: the mass concentrates at the extremes,
// with (almost) nothing in between — confirming the conjecture.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"
#include "sim/sweep.hpp"

using namespace updp2p;

namespace {

void run_histogram(const std::string& label, double online_fraction,
                   double fanout_fraction, unsigned runs) {
  common::Histogram histogram(0.0, 1.0000001, 10);
  common::RunningStats awareness;
  const auto fractions = sim::sweep_seeds<double>(
      0, runs, [online_fraction, fanout_fraction](std::uint64_t seed) {
        sim::RoundSimConfig config;
        config.population = 400;
        config.gossip.estimated_total_replicas = config.population;
        config.gossip.fanout_fraction = fanout_fraction;
        config.gossip.forward_probability = analysis::pf_constant(1.0);
        config.reconnect_pull = false;
        config.round_timers = false;
        config.seed = seed * 2'654'435'761u;
        auto simulator =
            sim::make_push_phase_simulator(config, online_fraction, 1.0);
        return simulator->propagate_update().final_aware_fraction();
      });
  for (const double fraction : fractions) {
    histogram.add(fraction);
    awareness.add(fraction);
  }

  common::TextTable table(label);
  table.header({"final F_aware bucket", "runs", "bar"});
  for (std::size_t b = 0; b < histogram.bucket_count(); ++b) {
    const double lo = 0.1 * static_cast<double>(b);
    const std::size_t count = histogram.bucket(b);
    table.row()
        .cell("[" + common::format_double(lo, 1) + ", " +
              common::format_double(lo + 0.1, 1) + ")")
        .cell(count)
        .cell(std::string(count, '#'));
  }
  table.print(std::cout);
  // Bimodality measure: how empty is the valley between "almost none"
  // (<20%) and "almost all" (>=50%, where supercritical runs saturate)?
  std::size_t valley = 0;
  for (std::size_t b = 2; b < 5; ++b) valley += histogram.bucket(b);
  std::cout << "  mass in the valley [0.2, 0.5): "
            << common::format_double(
                   100.0 * static_cast<double>(valley) /
                       static_cast<double>(histogram.total()),
                   1)
            << "%  (mean awareness "
            << common::format_double(awareness.mean(), 3) << ")\n";
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — bimodal behaviour at low peer presence (paper §8)",
      "400 peers, sigma=1, PF=1, 100 runs each; histogram of final "
      "F_aware across runs");

  // Near-critical (branching factor ~2): the rumor either dies in the
  // first hops or, once established, covers almost everyone.
  run_histogram("near-critical: 20% online, f_r=0.025 (fanout 10)", 0.20,
                0.025, 100);
  // Clearly supercritical: extinction only by round-0 bad luck.
  run_histogram("supercritical: 20% online, f_r=0.05 (fanout 20)", 0.20, 0.05,
                100);
  // Subcritical: dies essentially always.
  run_histogram("subcritical: 5% online, f_r=0.015 (fanout 6)", 0.05, 0.015,
                100);

  std::cout << "  paper fn.2: \"all or nothing\" becomes \"almost all or\n"
            << "  almost none\" — the middle buckets stay (nearly) empty.\n";
  return 0;
}
