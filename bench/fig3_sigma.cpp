// Reproduces Fig. 3: impact of σ, the probability that an online peer stays
// online across a push round (PF = 1, R_on(0) = 1000, f_r = 0.01).
//
// Paper's findings: the algorithm is robust down to fairly low σ, and —
// "curiously" — the message overhead *decreases* significantly when many
// replicas fail to forward, the observation that motivated PF(t) < 1.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"

using namespace updp2p;

int main() {
  bench::print_banner("Figure 3 — varying sigma",
                      "Setup: R=10000, R_on[0]=1000, f_r=0.01, PF=1");

  std::vector<common::Series> series;
  for (const double sigma : {1.0, 0.95, 0.8, 0.7, 0.5}) {
    analysis::PushModelParams params;
    params.total_replicas = 10'000;
    params.initial_online = 1'000;
    params.sigma = sigma;
    params.fanout_fraction = 0.01;
    params.pf = analysis::pf_constant(1.0);
    series.push_back(analysis::evaluate_push(params).to_series(
        "Sigma = " + common::format_double(sigma, 2)));
  }
  bench::print_series("Fig. 3: messages vs awareness for each sigma", series);
  std::cout << "  paper: overhead drops as sigma decreases (fewer forwarders"
            << " => fewer duplicates);\n  spread remains nearly complete for"
            << " sigma >= 0.7 and collapses around sigma = 0.5.\n";
  return 0;
}
