// Reproduces Table 2: total messages per initially-online peer and push
// rounds (latency) for Gnutella-style flooding, flooding with the partial
// list, Haas et al.'s GOSSIP1(0.8, 2) and the paper's scheme with
// geometrically decaying PF(t).
//
// Paper-reported values:
//   Setting A ("whole population online", fanout 4):
//       Gnutella 4 / 7 rounds; Partial List 3.92 / 7; Haas G(0.8,2)
//       3.136 / 7; Our Scheme 2.215 / 8.
//   Setting B ("1/10 of a smaller group online", fanout 40):
//       Gnutella 40 / 5; Partial List 35.22 / 5; Haas G(0.8,2) 28.49 / 5;
//       Our Scheme 16.35 / 6.
//
// Some Table 2 parameters are typographically corrupted in the available
// text; we use the nearest self-consistent setting (A: R = R_on = 10^4,
// fanout 4; B: R = 10^3, R_on = 10^2, fanout 40 — both with σ = 1) and the
// PF decay base that reproduces the reported cost. Both the analytical
// model and an independent protocol simulation are reported.
#include <iostream>

#include "analysis/push_model.hpp"
#include "baselines/presets.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

struct SchemeSpec {
  std::string name;
  analysis::PfSchedule pf;
  bool partial_list;
  double paper_msgs;
  unsigned paper_rounds;
};

struct Setting {
  std::string title;
  double total;
  double online;
  std::size_t fanout;
  double our_pf_base;
};

void run_setting(const Setting& setting) {
  const std::vector<SchemeSpec> schemes = {
      {"Gnutella", analysis::pf_constant(1.0), false,
       setting.total >= 10'000 ? 4.0 : 40.0,
       setting.total >= 10'000 ? 7u : 5u},
      {"Using Partial List", analysis::pf_constant(1.0), true,
       setting.total >= 10'000 ? 3.92 : 35.22,
       setting.total >= 10'000 ? 7u : 5u},
      {"Haas et al. G(0.8,2)", analysis::pf_haas(0.8, 2), false,
       setting.total >= 10'000 ? 3.136 : 28.49,
       setting.total >= 10'000 ? 7u : 5u},
      {"Our Scheme PF(t)=" + common::format_double(setting.our_pf_base, 2) +
           "^t",
       analysis::pf_geometric(setting.our_pf_base), true,
       setting.total >= 10'000 ? 2.215 : 16.35,
       setting.total >= 10'000 ? 8u : 6u},
  };

  common::TextTable table(setting.title);
  table.header({"Scheme", "model msgs/peer", "model rounds", "sim msgs/peer",
                "sim rounds", "sim F_aware", "paper msgs", "paper rounds"});

  for (const auto& scheme : schemes) {
    // Analytical model.
    analysis::PushModelParams params;
    params.total_replicas = setting.total;
    params.initial_online = setting.online;
    params.sigma = 1.0;
    params.fanout_fraction =
        static_cast<double>(setting.fanout) / setting.total;
    params.pf = scheme.pf;
    params.use_partial_list = scheme.partial_list;
    const auto trajectory = analysis::evaluate_push(params);

    // Independent protocol simulation (averaged over a few seeds).
    sim::AggregateMetrics aggregate;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sim::RoundSimConfig config;
      config.population = static_cast<std::size_t>(setting.total);
      config.gossip.estimated_total_replicas = config.population;
      config.gossip.fanout_fraction = params.fanout_fraction;
      config.gossip.forward_probability = scheme.pf;
      config.gossip.partial_list.mode =
          scheme.partial_list ? gossip::PartialListMode::kUnbounded
                              : gossip::PartialListMode::kNone;
      config.initial_view_size = std::min<std::size_t>(
          config.population, 1'000);  // partial knowledge (paper §2)
      config.reconnect_pull = false;  // isolate the push phase
      config.round_timers = false;
      config.seed = seed * 7919;
      auto simulator = sim::make_push_phase_simulator(
          config, setting.online / setting.total, /*sigma=*/1.0);
      aggregate.add(simulator->propagate_update());
    }

    table.row()
        .cell(scheme.name)
        .cell(trajectory.messages_per_initial_online(), 3)
        .cell(static_cast<std::size_t>(trajectory.rounds_to_fraction(0.99)))
        .cell(aggregate.messages_per_initial_online.mean(), 3)
        .cell(aggregate.rounds_to_quiescence.mean(), 1)
        .cell(aggregate.final_aware_fraction.mean(), 4)
        .cell(scheme.paper_msgs, 3)
        .cell(static_cast<std::size_t>(scheme.paper_rounds));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner(
      "Table 2 — comparison with Gnutella, partial-list flooding and "
      "Haas et al.",
      "Metric: total push messages per initially-online peer; latency in "
      "push rounds");

  run_setting(Setting{"Setting A: R_on/R = 10^4/10^4 (all online), fanout 4",
                      10'000.0, 10'000.0, 4, 0.95});
  run_setting(Setting{"Setting B: R_on/R = 10^2/10^3 (10% online), fanout 40",
                      1'000.0, 100.0, 40, 0.85});

  std::cout
      << "  paper: partial list < Gnutella; Haas cuts another ~25%; our\n"
      << "  scheme is dramatically cheaper at the cost of ~1 extra round.\n";
  return 0;
}
