// Reproduces Fig. 5: scalability of the push scheme for total populations
// R = 10^4 .. 10^8 with R_on/R = 0.1, σ = 1, PF(t) = 0.8·0.7^t + 0.2 and
// f_r chosen such that each push expects to reach ten online peers
// (R·f_r = 100, so R_on·f_r = 10).
//
// Paper's finding: messages per initially-online peer stay decently low
// (around 20 with proper fanout) and *decrease* as the population grows
// with fixed parameters.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"

using namespace updp2p;

int main() {
  bench::print_banner(
      "Figure 5 — scalability",
      "Setup: R_on/R=0.1, sigma=1, PF(t)=0.8*0.7^t+0.2, R*f_r=100 "
      "(10 online peers expected per push)");

  std::vector<common::Series> series;
  common::TextTable summary("Fig. 5 summary");
  summary.header(
      {"total population R", "msgs/R_on[0]", "final F_aware", "rounds(99%)"});
  for (const double total : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    analysis::PushModelParams params;
    params.total_replicas = total;
    params.initial_online = 0.1 * total;
    params.sigma = 1.0;
    params.fanout_fraction = 100.0 / total;
    params.pf = analysis::pf_offset_geometric(0.8, 0.7, 0.2);
    const auto trajectory = analysis::evaluate_push(params);
    char label[64];
    std::snprintf(label, sizeof label, "Total population: %.0e", total);
    series.push_back(trajectory.to_series(label));
    summary.row()
        .cell(label)
        .cell(trajectory.messages_per_initial_online(), 3)
        .cell(trajectory.final_aware(), 4)
        .cell(static_cast<std::size_t>(trajectory.rounds_to_fraction(0.99)));
  }
  bench::print_series("Fig. 5: messages vs awareness for each population",
                      series);
  summary.print(std::cout);
  std::cout << "  paper: ~20 msgs per initially-online peer, decreasing with"
            << " increasing population (fixed parameters).\n";
  return 0;
}
