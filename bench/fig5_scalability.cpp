// Reproduces Fig. 5: scalability of the push scheme for total populations
// R = 10^4 .. 10^8 with R_on/R = 0.1, σ = 1, PF(t) = 0.8·0.7^t + 0.2 and
// f_r chosen such that each push expects to reach ten online peers
// (R·f_r = 100, so R_on·f_r = 10).
//
// Paper's finding: messages per initially-online peer stay decently low
// (around 20 with proper fanout) and *decrease* as the population grows
// with fixed parameters.
//
// On top of the recurrences, this bench cross-checks the two populations
// that are feasible to *execute* (10^4 and 10^5) on the sharded round
// simulator — the protocol's state machines run for real, across one
// shard per hardware thread, and must land near the model's numbers.
#include <chrono>
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

int main() {
  bench::print_banner(
      "Figure 5 — scalability",
      "Setup: R_on/R=0.1, sigma=1, PF(t)=0.8*0.7^t+0.2, R*f_r=100 "
      "(10 online peers expected per push)");

  std::vector<common::Series> series;
  common::TextTable summary("Fig. 5 summary");
  summary.header(
      {"total population R", "msgs/R_on[0]", "final F_aware", "rounds(99%)"});
  for (const double total : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    analysis::PushModelParams params;
    params.total_replicas = total;
    params.initial_online = 0.1 * total;
    params.sigma = 1.0;
    params.fanout_fraction = 100.0 / total;
    params.pf = analysis::pf_offset_geometric(0.8, 0.7, 0.2);
    const auto trajectory = analysis::evaluate_push(params);
    char label[64];
    std::snprintf(label, sizeof label, "Total population: %.0e", total);
    series.push_back(trajectory.to_series(label));
    summary.row()
        .cell(label)
        .cell(trajectory.messages_per_initial_online(), 3)
        .cell(trajectory.final_aware(), 4)
        .cell(static_cast<std::size_t>(trajectory.rounds_to_fraction(0.99)));
  }
  bench::print_series("Fig. 5: messages vs awareness for each population",
                      series);
  summary.print(std::cout);
  std::cout << "  paper: ~20 msgs per initially-online peer, decreasing with"
            << " increasing population (fixed parameters).\n";

  // Executable cross-check on the sharded round engine. 10^6+ replicas
  // are model-only (the paper evaluated recurrences there too); at 10^4
  // and 10^5 we run the real protocol. Views bootstrap with a partial
  // random sample (the name-dropper regime) instead of the model's full
  // membership so per-node state stays O(|view|); fanout still expects
  // R*f_r = 100 pushes per forward. Results are bit-identical at any
  // shard/thread count (GoldenDeterminism.ShardInvariance), so the
  // thread count below only changes wall-clock, never the numbers.
  common::TextTable check("Fig. 5 cross-check — sharded round simulator");
  check.header({"total population R", "shards", "msgs/R_on[0]",
                "final F_aware", "rounds", "wall ms"});
  for (const std::size_t total : {std::size_t{10'000}, std::size_t{100'000}}) {
    sim::RoundSimConfig config;
    config.population = total;
    config.gossip.estimated_total_replicas = total;
    config.gossip.fanout_fraction = 100.0 / static_cast<double>(total);
    config.gossip.forward_probability =
        analysis::pf_offset_geometric(0.8, 0.7, 0.2);
    config.initial_view_size = total >= 100'000 ? 500 : 1'000;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = 5;
    config.shard_threads = 0;  // one shard per hardware thread
    auto simulator = sim::make_push_phase_simulator(config,
                                                    /*online=*/0.1,
                                                    /*sigma=*/1.0);
    const auto start = std::chrono::steady_clock::now();
    const auto metrics = simulator->propagate_update();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    check.row()
        .cell("R = " + std::to_string(total))
        .cell(static_cast<std::size_t>(simulator->shard_count()))
        .cell(metrics.messages_per_initial_online(), 3)
        .cell(metrics.final_aware_fraction(), 4)
        .cell(metrics.rounds.size())
        .cell(wall_ms, 1);
  }
  check.print(std::cout);
  std::cout << "  simulation executes the real state machines; expect the\n"
            << "  same order of magnitude as the model rows above — lower\n"
            << "  coverage at 10^5 is the partial-view bootstrap (500-peer\n"
            << "  views vs the model's full membership assumption).\n";
  return 0;
}
