// Dissemination latency in continuous time.
//
// The paper measures latency in synchronous push rounds (marks on the
// Figs. 1–5 curves, the rounds column of Table 2). The event-driven engine
// lets us measure the real thing: the wall-clock time until 90% of the
// online population holds the update, under message latency jitter and
// session churn — including the latency price of decaying PF(t) schedules
// and of relying on pull alone.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "bench_util.hpp"
#include "sim/event_simulator.hpp"

using namespace updp2p;

namespace {

struct Variant {
  std::string name;
  analysis::PfSchedule pf;
  double fanout_fraction;
};

/// Time from publish until 90% of the online population is aware
/// (negative: never reached within the horizon).
double measure_latency(const Variant& variant, std::uint64_t seed) {
  sim::EventSimConfig config;
  config.population = 300;
  config.mean_online_time = 60.0;
  config.mean_offline_time = 140.0;  // 30% availability
  config.round_duration = 1.0;
  config.latency = std::make_shared<net::UniformLatency>(0.2, 0.8);
  config.gossip.estimated_total_replicas = config.population;
  config.gossip.fanout_fraction = variant.fanout_fraction;
  config.gossip.forward_probability = variant.pf;
  config.gossip.pull.no_update_timeout = 10;
  config.seed = seed;
  sim::EventSimulator simulator(config);

  constexpr double kPublishAt = 5.0;
  constexpr double kHorizon = 120.0;
  simulator.schedule_publish(kPublishAt, "item", "v1");
  simulator.run_until(kPublishAt);
  if (simulator.published().empty()) return -1.0;
  const auto id = simulator.published().front().id;

  for (double t = kPublishAt; t <= kHorizon; t += 0.5) {
    simulator.run_until(t);
    if (simulator.aware_fraction_online(id) >= 0.9) return t - kPublishAt;
  }
  return -1.0;
}

}  // namespace

int main() {
  bench::print_banner(
      "Dissemination latency distribution (event-driven, continuous time)",
      "300 peers, 30% availability, jittered latency U(0.2,0.8) per hop; "
      "time to 90% online awareness; 25 runs per variant");

  const std::vector<Variant> variants = {
      {"flooding PF=1, fanout 15", analysis::pf_constant(1.0), 0.05},
      {"PF(t)=0.9^t, fanout 15", analysis::pf_geometric(0.9), 0.05},
      {"PF(t)=0.8*0.7^t+0.2, fanout 15",
       analysis::pf_offset_geometric(0.8, 0.7, 0.2), 0.05},
      {"flooding PF=1, fanout 6 (near-critical)", analysis::pf_constant(1.0),
       0.02},
  };

  common::TextTable table("time to 90% online awareness");
  table.header({"variant", "reached", "p50", "p90", "max", "mean"});
  for (const auto& variant : variants) {
    std::vector<double> latencies;
    std::size_t reached = 0;
    constexpr int kRuns = 25;
    for (int run = 1; run <= kRuns; ++run) {
      const double latency =
          measure_latency(variant, 40'000 + static_cast<std::uint64_t>(run));
      if (latency >= 0.0) {
        ++reached;
        latencies.push_back(latency);
      }
    }
    common::RunningStats stats;
    for (const double v : latencies) stats.add(v);
    table.row()
        .cell(variant.name)
        .cell(std::to_string(reached) + "/" + std::to_string(kRuns))
        .cell(common::percentile(latencies, 0.5), 2)
        .cell(common::percentile(latencies, 0.9), 2)
        .cell(stats.max(), 2)
        .cell(stats.mean(), 2);
  }
  table.print(std::cout);
  std::cout << "  decaying PF(t) adds modest latency (the paper's ~1 extra\n"
            << "  round), while near-critical fanouts often need the slow\n"
            << "  pull path to reach 90% — the Fig. 1(a)/Fig. 4 trade-offs\n"
            << "  in real time.\n";
  return 0;
}
