// Model-vs-simulation validation (the check the paper defers to future
// work, §8: "To verify the correctness of the analysis … we plan to use
// simulations").
//
// The analytical recurrences (src/analysis) and the protocol simulator
// (src/sim executing real ReplicaNode state machines) are independent
// implementations; agreement between them validates both.
#include <iostream>

#include "analysis/push_model.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

struct Case {
  std::string name;
  double online_fraction;
  double sigma;
  double fanout_fraction;
  analysis::PfSchedule pf;
  bool partial_list;
};

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — analytical model vs protocol simulation",
      "Population 2000; simulation averaged over 5 seeds; both report "
      "push messages per initially-online peer and final F_aware");

  const std::vector<Case> cases = {
      {"plain flooding, 10% online, sigma=0.95", 0.10, 0.95, 0.02,
       analysis::pf_constant(1.0), true},
      {"plain flooding, 30% online, sigma=0.95", 0.30, 0.95, 0.02,
       analysis::pf_constant(1.0), true},
      {"decaying PF=0.9^t, 20% online, sigma=0.9", 0.20, 0.9, 0.02,
       analysis::pf_geometric(0.9), true},
      {"no partial list, 20% online, sigma=1", 0.20, 1.0, 0.02,
       analysis::pf_constant(1.0), false},
      {"Haas G(0.8,2), 20% online, sigma=1", 0.20, 1.0, 0.02,
       analysis::pf_haas(0.8, 2), false},
  };

  constexpr std::size_t kPopulation = 2'000;

  common::TextTable table("model vs simulation");
  table.header({"case", "model msgs/peer", "sim msgs/peer (mean±sd)",
                "model F_aware", "sim F_aware", "rel. error msgs"});

  for (const auto& c : cases) {
    analysis::PushModelParams params;
    params.total_replicas = kPopulation;
    params.initial_online = c.online_fraction * kPopulation;
    params.sigma = c.sigma;
    params.fanout_fraction = c.fanout_fraction;
    params.pf = c.pf;
    params.use_partial_list = c.partial_list;
    const auto trajectory = analysis::evaluate_push(params);

    sim::AggregateMetrics aggregate;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sim::RoundSimConfig config;
      config.population = kPopulation;
      config.gossip.estimated_total_replicas = kPopulation;
      config.gossip.fanout_fraction = c.fanout_fraction;
      config.gossip.forward_probability = c.pf;
      config.gossip.partial_list.mode =
          c.partial_list ? gossip::PartialListMode::kUnbounded
                         : gossip::PartialListMode::kNone;
      config.reconnect_pull = false;
      config.round_timers = false;
      config.seed = 1000 + seed;
      auto simulator =
          sim::make_push_phase_simulator(config, c.online_fraction, c.sigma);
      aggregate.add(simulator->propagate_update());
    }

    const double model_msgs = trajectory.messages_per_initial_online();
    const double sim_msgs = aggregate.messages_per_initial_online.mean();
    const double rel_error =
        model_msgs > 0.0 ? std::abs(sim_msgs - model_msgs) / model_msgs : 0.0;
    table.row()
        .cell(c.name)
        .cell(model_msgs, 3)
        .cell(common::format_double(sim_msgs, 3) + " ± " +
              common::format_double(
                  aggregate.messages_per_initial_online.stddev(), 3))
        .cell(trajectory.final_aware(), 4)
        .cell(aggregate.final_aware_fraction.mean(), 4)
        .cell(rel_error, 3);
  }
  table.print(std::cout);
  std::cout << "  agreement within a few percent validates both the\n"
            << "  recurrences of Section 4.2 and the protocol engine.\n";
  return 0;
}
