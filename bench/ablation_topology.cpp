// Ablation: topology knowledge under churn (paper §7.2).
//
// "The directional gossiping approach [20] exploits knowledge of the
// logical connectivity/topology … Unfortunately, this approach cannot be
// applied in the scenarios we address because replicas go online/offline
// frequently which changes the topology considerably so that topological
// knowledge cannot be exploited."
//
// Experiment: every peer is given perfect topology knowledge at time 0 —
// its fixed push-target set is drawn from the peers online *right now*
// (what a directional scheme would maintain). An update propagated
// immediately benefits enormously (every target online). As session churn
// rotates the online population, the knowledge rots; updates propagated
// later do no better than blind random choice — and lose random choice's
// per-push re-roll diversity. Re-learning the topology every churn period
// would cost exactly the maintenance traffic the paper avoids.
#include <iostream>

#include "analysis/forward_probability.hpp"
#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

constexpr std::size_t kPopulation = 1'000;
constexpr std::size_t kFanout = 12;
constexpr double kAvailability = 0.30;

std::unique_ptr<sim::RoundSimulator> make_simulator(
    gossip::TargetSelection selection, std::uint64_t seed) {
  sim::RoundSimConfig config;
  config.population = kPopulation;
  config.gossip.estimated_total_replicas = kPopulation;
  config.gossip.fanout_fraction =
      static_cast<double>(kFanout) / kPopulation;
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.gossip.target_selection = selection;
  config.gossip.pull.no_update_timeout = 1'000'000;  // isolate the push
  config.reconnect_pull = false;
  config.round_timers = false;
  config.seed = seed;
  // Session churn with ~30% stationary availability; mean online session
  // 20 rounds, offline ~47 rounds.
  auto churn = std::make_unique<churn::SessionChurn>(kPopulation, 20.0,
                                                     20.0 / kAvailability -
                                                         20.0);
  auto simulator =
      std::make_unique<sim::RoundSimulator>(config, std::move(churn));

  if (selection == gossip::TargetSelection::kFixedNeighbors) {
    // Perfect topology snapshot at time 0: each peer's fixed set is drawn
    // from the currently-online population.
    common::Rng rng(seed ^ 0xD1);
    const auto online = simulator->churn().online().online_peers();
    for (std::uint32_t i = 0; i < kPopulation; ++i) {
      std::vector<common::PeerId> fixed;
      fixed.reserve(kFanout);
      for (const std::uint32_t idx : rng.sample_without_replacement(
               static_cast<std::uint32_t>(online.size()), kFanout)) {
        fixed.push_back(online[idx]);
      }
      simulator->node(common::PeerId(i)).seed_fixed_neighbors(fixed);
    }
  }
  return simulator;
}

void run(common::TextTable& table, gossip::TargetSelection selection,
         common::Round delay) {
  common::RunningStats aware, msgs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto simulator = make_simulator(selection, 9'000 + seed);
    simulator->run_rounds(delay);  // let churn rotate the population
    const auto metrics = simulator->propagate_update();
    aware.add(metrics.final_aware_fraction());
    msgs.add(metrics.messages_per_initial_online());
  }
  table.row()
      .cell(selection == gossip::TargetSelection::kRandomPerPush
                ? "random per push (paper)"
                : "fixed set from t=0 topology")
      .cell(static_cast<std::size_t>(delay))
      .cell(aware.mean(), 4)
      .cell(aware.stddev(), 4)
      .cell(msgs.mean(), 2);
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — topology knowledge rots under churn (§7.2)",
      "1000 peers, 30% availability (session churn, ~20-round sessions), "
      "fanout 12, PF=1; update published after a delay; 8 seeds");

  common::TextTable table(
      "push coverage vs age of the topology snapshot");
  table.header({"target selection", "publish delay (rounds)", "F_aware",
                "F_aware sd", "msgs/online peer"});
  for (const common::Round delay : {0u, 10u, 40u, 120u}) {
    run(table, gossip::TargetSelection::kFixedNeighbors, delay);
  }
  run(table, gossip::TargetSelection::kRandomPerPush, 0);
  run(table, gossip::TargetSelection::kRandomPerPush, 120);
  table.print(std::cout);
  std::cout
      << "  fresh topology knowledge beats blind random (targets all\n"
      << "  online), but after ~1-2 session lengths it decays to (or\n"
      << "  below) the random baseline — maintaining it would cost the\n"
      << "  very traffic the paper's scheme avoids (§7.2).\n";
  return 0;
}
