// Ablation: the §6 optimisations — acknowledgement-based suppression and
// self-tuning of PF(t) from local duplicate/list-length observations.
//
// The paper describes these qualitatively; this bench quantifies them in
// simulation: acks suppress pushes to presumed-offline peers across
// consecutive updates, and the self-tuning controller cuts messages
// without an a-priori PF schedule.
#include <iostream>

#include "bench_util.hpp"
#include "sim/round_simulator.hpp"

using namespace updp2p;

namespace {

struct Variant {
  std::string name;
  bool acks;
  bool self_tuning;
  analysis::PfSchedule pf;
};

}  // namespace

int main() {
  bench::print_banner(
      "Ablation — Section 6 optimisations (acks, self-tuning PF)",
      "Population 2000, 20% online, sigma=0.97, f_r=0.02; three consecutive "
      "updates so ack knowledge can pay off; 5 seeds");

  const std::vector<Variant> variants = {
      {"baseline PF=1", false, false, analysis::pf_constant(1.0)},
      {"fixed schedule PF=0.9^t", false, false, analysis::pf_geometric(0.9)},
      {"self-tuning PF (duplicates+list)", false, true,
       analysis::pf_constant(1.0)},
      {"acks + suppression", true, false, analysis::pf_constant(1.0)},
      {"acks + self-tuning", true, true, analysis::pf_constant(1.0)},
  };

  common::TextTable table("Section 6 variants (3rd update of a sequence)");
  table.header({"variant", "msgs/peer", "duplicates/update", "F_aware",
                "rounds"});

  for (const auto& variant : variants) {
    sim::AggregateMetrics aggregate;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sim::RoundSimConfig config;
      config.population = 2'000;
      config.gossip.estimated_total_replicas = config.population;
      config.gossip.fanout_fraction = 0.02;
      config.gossip.forward_probability = variant.pf;
      config.gossip.self_tuning = variant.self_tuning;
      config.gossip.acks.enabled = variant.acks;
      config.gossip.acks.suppression_rounds = 10;
      config.reconnect_pull = false;
      config.round_timers = true;  // ack expiry needs timers
      config.gossip.pull.no_update_timeout = 1'000'000;  // no timeout pulls
      config.seed = 31337 + seed;
      auto simulator = sim::make_push_phase_simulator(config, 0.2, 0.97);
      // Two warm-up updates build ack knowledge; measure the third.
      (void)simulator->propagate_update(std::nullopt, "item", "v1");
      (void)simulator->propagate_update(std::nullopt, "item", "v2");
      aggregate.add(simulator->propagate_update(std::nullopt, "item", "v3"));
    }
    table.row()
        .cell(variant.name)
        .cell(aggregate.messages_per_initial_online.mean(), 3)
        .cell(aggregate.duplicates.mean(), 1)
        .cell(aggregate.final_aware_fraction.mean(), 4)
        .cell(aggregate.rounds_to_quiescence.mean(), 1);
  }
  table.print(std::cout);
  std::cout << "  paper (§6): duplicates and list length are sufficient\n"
            << "  local signals to tune PF; acks bias future pushes toward\n"
            << "  provably-online peers.\n";
  return 0;
}
