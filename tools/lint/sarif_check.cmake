# ctest glue for lint.sarif: run updp2p-lint in SARIF mode over the real
# tree (baseline applied, so the gate matches lint.tree) and validate the
# output's SARIF 2.1.0 shape with scripts/check_lint_baseline.py.
set(sarif "${OUT_DIR}/lint.tree.sarif")
execute_process(
  COMMAND "${LINT_BIN}" --root "${SOURCE_DIR}"
          --baseline "${SOURCE_DIR}/tools/lint/lint-baseline.txt"
          --format sarif --output "${sarif}"
  RESULT_VARIABLE lint_result
  OUTPUT_VARIABLE lint_stdout
  ERROR_VARIABLE lint_stderr)
if(NOT lint_result EQUAL 0)
  message(FATAL_ERROR
    "updp2p-lint failed (${lint_result}):\n${lint_stdout}${lint_stderr}")
endif()
execute_process(
  COMMAND "${PYTHON}" "${SOURCE_DIR}/scripts/check_lint_baseline.py" "${sarif}"
  RESULT_VARIABLE check_result
  OUTPUT_VARIABLE check_stdout
  ERROR_VARIABLE check_stderr)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR
    "SARIF shape check failed:\n${check_stdout}${check_stderr}")
endif()
