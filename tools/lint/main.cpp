// updp2p-lint — determinism-and-safety static analysis for this repo.
//
//   updp2p-lint [--root DIR] [--list-rules] [paths...]
//
// With no paths, scans src/, bench/ and examples/ under --root (default:
// current directory). Prints `path:line: rule-id: message` per finding and
// exits 1 when anything is flagged, 2 on usage/IO errors. Suppress a
// finding inline with `// lint-allow(rule-id): reason` — the reason is
// mandatory. See docs/static-analysis.md for the rule catalogue.

#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "updp2p_lint/engine.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: updp2p-lint [--root DIR] [--list-rules] [paths...]\n"
         "  --root DIR    repo root for rule scoping and default scan dirs\n"
         "                (default: .)\n"
         "  --list-rules  print the rule catalogue and exit\n"
         "  paths         files or directories to lint, relative to root;\n"
         "                default: src bench examples\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  updp2p::lint::EngineOptions options;
  options.root = ".";
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      options.root = argv[++i];
    } else if (arg.starts_with("--")) {
      std::cerr << "updp2p-lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      options.paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : updp2p::lint::make_all_rules()) {
      std::cout << rule->id() << "\n    " << rule->summary() << "\n";
    }
    return 0;
  }

  try {
    const updp2p::lint::RunResult result = updp2p::lint::run(options);
    updp2p::lint::report(result, std::cout);
    std::cerr << "updp2p-lint: " << result.findings.size() << " finding(s) in "
              << result.files_with_findings << " file(s), "
              << result.files_scanned << " file(s) scanned\n";
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
}
