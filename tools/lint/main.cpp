// updp2p-lint — determinism-and-safety static analysis for this repo.
//
//   updp2p-lint [--root DIR] [--list-rules] [--format text|sarif]
//               [--output FILE] [--baseline FILE] [--write-baseline FILE]
//               [paths...]
//
// With no paths, scans src/, bench/ and examples/ under --root (default:
// current directory). Prints `path:line: rule-id: message` per finding and
// exits 1 when anything is flagged, 2 on usage/IO errors. Suppress a
// finding inline with `// lint-allow(rule-id): reason` — the reason is
// mandatory — or list it in a baseline file (`rule-id path:line` lines;
// stale entries fail the run). `--format sarif` emits SARIF 2.1.0 to
// stdout or --output. See docs/static-analysis.md for the rule catalogue.

#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "updp2p_lint/baseline.hpp"
#include "updp2p_lint/engine.hpp"
#include "updp2p_lint/sarif.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: updp2p-lint [--root DIR] [--list-rules] [--format FMT]\n"
         "                   [--output FILE] [--baseline FILE]\n"
         "                   [--write-baseline FILE] [paths...]\n"
         "  --root DIR            repo root for rule scoping and default\n"
         "                        scan dirs (default: .)\n"
         "  --list-rules          print the rule catalogue and exit\n"
         "  --format text|sarif   report format (default: text)\n"
         "  --output FILE         write the report there instead of stdout\n"
         "  --baseline FILE       suppress the findings listed in FILE;\n"
         "                        entries matching nothing are stale and\n"
         "                        fail the run\n"
         "  --write-baseline FILE write current findings as a baseline\n"
         "                        and exit 0\n"
         "  paths                 files or directories to lint, relative\n"
         "                        to root; default: src bench examples\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  updp2p::lint::EngineOptions options;
  options.root = ".";
  bool list_rules = false;
  std::string format = "text";
  std::string output_file;
  std::string baseline_file;
  std::string write_baseline_file;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      options.root = argv[++i];
    } else if (arg == "--format") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      format = argv[++i];
      if (format != "text" && format != "sarif") {
        std::cerr << "updp2p-lint: unknown format '" << format << "'\n";
        return usage(std::cerr, 2);
      }
    } else if (arg == "--output") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      output_file = argv[++i];
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      baseline_file = argv[++i];
    } else if (arg == "--write-baseline") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      write_baseline_file = argv[++i];
    } else if (arg.starts_with("--")) {
      std::cerr << "updp2p-lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      options.paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : updp2p::lint::make_all_rules()) {
      std::cout << rule->id() << "\n    " << rule->summary() << "\n";
    }
    return 0;
  }

  try {
    updp2p::lint::RunResult result = updp2p::lint::run(options);

    if (!write_baseline_file.empty()) {
      std::ofstream out(write_baseline_file, std::ios::binary);
      if (!out) {
        std::cerr << "updp2p-lint: cannot write " << write_baseline_file
                  << "\n";
        return 2;
      }
      out << updp2p::lint::format_baseline(result.findings);
      std::cerr << "updp2p-lint: wrote " << result.findings.size()
                << " baseline entr" << (result.findings.size() == 1 ? "y" : "ies")
                << " to " << write_baseline_file << "\n";
      return 0;
    }

    // Baseline suppression with stale-entry detection.
    bool baseline_error = false;
    if (!baseline_file.empty()) {
      std::ifstream in(baseline_file, std::ios::binary);
      if (!in) {
        std::cerr << "updp2p-lint: cannot read baseline " << baseline_file
                  << "\n";
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      const updp2p::lint::Baseline baseline =
          updp2p::lint::parse_baseline(text.str());
      for (const std::string& bad : baseline.malformed) {
        std::cerr << "updp2p-lint: malformed baseline line: " << bad << "\n";
        baseline_error = true;
      }
      const auto stale =
          updp2p::lint::apply_baseline(baseline, result.findings);
      for (const auto& entry : stale) {
        std::cerr << "updp2p-lint: stale baseline entry (no matching "
                     "finding — fixed code keeps its baseline honest): "
                  << entry.rule_id << " " << entry.path << ":" << entry.line
                  << " (" << baseline_file << ":" << entry.source_line
                  << ")\n";
        baseline_error = true;
      }
    }

    std::string rendered;
    if (format == "sarif") {
      rendered = updp2p::lint::to_sarif(
          result.findings, updp2p::lint::sarif_rule_catalogue());
    } else {
      std::ostringstream text;
      updp2p::lint::report(result, text);
      rendered = text.str();
    }
    if (!output_file.empty()) {
      std::ofstream out(output_file, std::ios::binary);
      if (!out) {
        std::cerr << "updp2p-lint: cannot write " << output_file << "\n";
        return 2;
      }
      out << rendered;
      // The human-readable report still goes to stdout so CI logs show
      // the findings next to the artifact.
      if (format == "sarif") {
        std::ostringstream text;
        updp2p::lint::report(result, text);
        std::cout << text.str();
      }
    } else {
      std::cout << rendered;
    }

    std::cerr << "updp2p-lint: " << result.findings.size() << " finding(s) in "
              << result.files_with_findings << " file(s), "
              << result.files_scanned << " file(s) scanned\n";
    if (baseline_error) return 1;
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
}
