#include "updp2p_lint/baseline.hpp"

#include <algorithm>
#include <sstream>

namespace updp2p::lint {

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;

    // rule-id path:line
    const std::size_t space = line.find_first_of(" \t", b);
    if (space == std::string::npos) {
      baseline.malformed.push_back(line);
      continue;
    }
    BaselineEntry entry;
    entry.rule_id = line.substr(b, space - b);
    entry.source_line = line_number;
    std::size_t p = line.find_first_not_of(" \t", space);
    if (p == std::string::npos) {
      baseline.malformed.push_back(line);
      continue;
    }
    std::string loc = line.substr(p);
    while (!loc.empty() && (loc.back() == ' ' || loc.back() == '\t')) {
      loc.pop_back();
    }
    const std::size_t colon = loc.rfind(':');
    if (colon == std::string::npos || colon + 1 >= loc.size()) {
      baseline.malformed.push_back(line);
      continue;
    }
    entry.path = loc.substr(0, colon);
    try {
      entry.line = std::stoi(loc.substr(colon + 1));
    } catch (...) {
      baseline.malformed.push_back(line);
      continue;
    }
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

std::vector<BaselineEntry> apply_baseline(const Baseline& baseline,
                                          std::vector<Finding>& findings) {
  std::vector<BaselineEntry> stale;
  std::vector<bool> suppressed(findings.size(), false);
  for (const BaselineEntry& entry : baseline.entries) {
    bool matched = false;
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (suppressed[i]) continue;
      const Finding& f = findings[i];
      if (f.rule_id == entry.rule_id && f.path == entry.path &&
          f.line == entry.line) {
        suppressed[i] = true;
        matched = true;
        // Keep matching: several rules can flag one line only once each,
        // so a single (rule, path, line) key matches at most one finding
        // per rule — but be permissive about duplicates.
      }
    }
    if (!matched) stale.push_back(entry);
  }
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (!suppressed[i]) kept.push_back(std::move(findings[i]));
  }
  findings = std::move(kept);
  return stale;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  std::vector<const Finding*> sorted;
  sorted.reserve(findings.size());
  for (const Finding& f : findings) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const Finding* a, const Finding* b) {
              if (a->path != b->path) return a->path < b->path;
              if (a->line != b->line) return a->line < b->line;
              return a->rule_id < b->rule_id;
            });
  std::ostringstream out;
  out << "# updp2p-lint baseline: accepted findings, one `rule-id "
         "path:line` per line.\n"
         "# Stale entries fail the run — regenerate with "
         "`scripts/verify.sh --update-lint-baseline`.\n";
  for (const Finding* f : sorted) {
    out << f->rule_id << ' ' << f->path << ':' << f->line << '\n';
  }
  return out.str();
}

}  // namespace updp2p::lint
