#include "updp2p_lint/rule.hpp"

namespace updp2p::lint {

bool path_starts_with_any(std::string_view path,
                          std::initializer_list<std::string_view> prefixes) {
  for (const std::string_view prefix : prefixes) {
    if (path.substr(0, prefix.size()) == prefix) return true;
  }
  return false;
}

std::vector<Suppression> parse_suppressions(
    const std::vector<Comment>& comments) {
  std::vector<Suppression> out;
  constexpr std::string_view kMarker = "lint-allow";
  for (const Comment& comment : comments) {
    std::string_view text = comment.text;
    std::size_t at = 0;
    while ((at = text.find(kMarker, at)) != std::string_view::npos) {
      std::size_t p = at + kMarker.size();
      at = p;  // resume scanning after this marker either way
      while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
      if (p >= text.size() || text[p] != '(') {
        // "lint-allow" prose without a directive form; record as malformed
        // so a half-typed suppression never silently does nothing.
        out.push_back(Suppression{"", "", comment.line});
        continue;
      }
      const std::size_t close = text.find(')', p);
      if (close == std::string_view::npos) {
        out.push_back(Suppression{"", "", comment.line});
        continue;
      }
      std::string rule_id(text.substr(p + 1, close - p - 1));
      // Trim the rule id.
      while (!rule_id.empty() && (rule_id.front() == ' ')) rule_id.erase(0, 1);
      while (!rule_id.empty() && (rule_id.back() == ' ')) rule_id.pop_back();

      std::size_t r = close + 1;
      while (r < text.size() && (text[r] == ' ' || text[r] == '\t')) ++r;
      std::string reason;
      if (r < text.size() && text[r] == ':') {
        ++r;
        while (r < text.size() && (text[r] == ' ' || text[r] == '\t')) ++r;
        reason = std::string(text.substr(r));
        // A reason that is all whitespace is no reason.
        while (!reason.empty() &&
               (reason.back() == ' ' || reason.back() == '\t' ||
                reason.back() == '\r')) {
          reason.pop_back();
        }
      }
      out.push_back(Suppression{std::move(rule_id), std::move(reason),
                                comment.line});
      at = close;
    }
  }
  return out;
}

std::vector<std::unique_ptr<Rule>> make_all_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(make_determinism_rule());
  rules.push_back(make_rng_discipline_rule());
  rules.push_back(make_iteration_order_rule());
  rules.push_back(make_wire_taint_rule());
  rules.push_back(make_probe_trust_rule());
  rules.push_back(make_shard_guard_rule());
  rules.push_back(make_assert_discipline_rule());

  std::vector<std::string> ids;
  ids.reserve(rules.size() + 1);
  for (const auto& rule : rules) ids.emplace_back(rule->id());
  ids.emplace_back("suppression-reason");
  rules.push_back(make_suppression_reason_rule(std::move(ids)));
  return rules;
}

}  // namespace updp2p::lint
