#include "updp2p_lint/flow.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {

std::string to_lower(std::string_view text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return lower;
}

bool wire_vocab_name(std::string_view name) {
  const std::string lower = to_lower(name);
  // Same vocabulary the old wire-bounds window heuristic used; see the
  // rule catalogue for why "size"/"frame"/"header" are deliberately out.
  return lower.find("count") != std::string::npos ||
         lower.find("cardinality") != std::string::npos ||
         lower.find("chunk") != std::string::npos ||
         lower.find("probe") != std::string::npos ||
         lower.find("len") != std::string::npos ||
         lower.find("record") != std::string::npos;
}

bool optional_like_type(std::string_view type_text) {
  return type_text.find("optional") != std::string_view::npos;
}

bool byte_buffer_type(std::string_view type_text) {
  if (type_text.find("WireBytes") != std::string_view::npos) return true;
  const bool span_like =
      type_text.find("span") != std::string_view::npos ||
      type_text.find("string_view") != std::string_view::npos;
  const bool byte_elem =
      type_text.find("uint8_t") != std::string_view::npos ||
      type_text.find("byte") != std::string_view::npos ||
      type_text.find("char") != std::string_view::npos;
  return span_like && byte_elem;
}

namespace {

bool is_keyword(std::string_view text) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "else",   "for",      "while",   "do",      "switch",
      "case",     "default","return",   "break",   "continue","goto",
      "sizeof",   "alignof","decltype", "new",     "delete",  "static_assert",
      "catch",    "throw",  "co_await", "co_return","co_yield","requires",
      "noexcept", "const",  "constexpr","static",  "inline",  "virtual",
      "explicit", "using",  "typedef",  "template", "typename","operator",
      "class",    "struct", "enum",     "union",   "namespace","public",
      "private",  "protected", "friend", "extern",  "auto",    "this",
  };
  return kKeywords.count(text) > 0;
}

bool is_type_ish_punct(const Token& t) {
  return is_punct(t, "::") || is_punct(t, "<") || is_punct(t, ">") ||
         is_punct(t, "*") || is_punct(t, "&") || is_punct(t, "&&") ||
         is_punct(t, "[") || is_punct(t, "]") || is_punct(t, ">>");
}

/// Splits tokens[b, e) at top-level commas (nesting over ()/[]/{} and a
/// best-effort over template <>: only symmetric runs are paired).
std::vector<std::pair<std::size_t, std::size_t>> split_top_level(
    const std::vector<Token>& tokens, std::size_t b, std::size_t e,
    std::string_view separator) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  int depth = 0;
  std::size_t start = b;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth == 0 && t.text == separator) {
        parts.emplace_back(start, i);
        start = i + 1;
      }
    }
  }
  if (start < e) parts.emplace_back(start, e);
  return parts;
}

/// Parses one parameter declaration range into {name, type_text}.
FunctionParam parse_param(const std::vector<Token>& tokens, std::size_t b,
                          std::size_t e) {
  // Drop a default argument.
  for (std::size_t i = b; i < e; ++i) {
    if (is_punct(tokens[i], "=")) {
      e = i;
      break;
    }
  }
  FunctionParam param;
  std::size_t name_index = e;
  // The name is the last identifier not inside template brackets and not
  // a cv/ref keyword. `const char* argv[]` -> argv; `std::span<int> s` -> s.
  int angle = 0;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = tokens[i];
    if (is_punct(t, "<")) ++angle;
    if (is_punct(t, ">")) --angle;
    if (angle <= 0 && t.kind == TokenKind::kIdentifier && !is_keyword(t.text)) {
      name_index = i;
    }
  }
  for (std::size_t i = b; i < e; ++i) {
    if (i == name_index) continue;
    if (!param.type_text.empty()) param.type_text.push_back(' ');
    param.type_text += tokens[i].text;
  }
  if (name_index < e) param.name = tokens[name_index].text;
  return param;
}

std::vector<FunctionParam> parse_params(const std::vector<Token>& tokens,
                                        std::size_t open,
                                        std::size_t close) {
  std::vector<FunctionParam> params;
  if (close <= open + 1) return params;
  for (const auto& [b, e] : split_top_level(tokens, open + 1, close, ",")) {
    if (b < e) params.push_back(parse_param(tokens, b, e));
  }
  // `f(void)` declares nothing.
  if (params.size() == 1 && params[0].name == "void" &&
      params[0].type_text.empty()) {
    params.clear();
  }
  return params;
}

/// After a parameter list's ')', finds the body '{' of a function
/// definition, skipping cv/ref/noexcept/override/trailing-return and a
/// constructor init list. Returns tokens.size() when this is not a
/// definition (pure declaration, `= default`, ...).
std::size_t find_body_brace(const std::vector<Token>& tokens,
                            std::size_t after_close) {
  std::size_t j = after_close;
  const std::size_t n = tokens.size();
  bool in_init_list = false;
  bool after_arrow = false;
  while (j < n) {
    const Token& t = tokens[j];
    if (is_punct(t, "{")) {
      if (!in_init_list) return j;
      // Inside an init list a '{' directly after an identifier or '>' is
      // a brace initializer (`a_{1}`); after ')' / '}' it is the body.
      const Token* prev = prev_token(tokens, j);
      if (prev != nullptr &&
          (is_punct(*prev, ")") || is_punct(*prev, "}"))) {
        return j;
      }
      const std::size_t match = find_matching_paren(tokens, j);
      if (match >= n) return n;
      j = match + 1;
      continue;
    }
    if (is_punct(t, ";") || is_punct(t, "=")) return n;
    if (is_punct(t, ":")) {
      in_init_list = true;
      ++j;
      continue;
    }
    if (is_punct(t, "->")) {
      after_arrow = true;
      ++j;
      continue;
    }
    if (is_punct(t, "(")) {  // noexcept(...), init-list ctor args
      const std::size_t match = find_matching_paren(tokens, j);
      if (match >= n) return n;
      j = match + 1;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      // Specifiers and (after '->' or in an init list) type/member names.
      if (after_arrow || in_init_list || t.text == "const" ||
          t.text == "noexcept" || t.text == "override" || t.text == "final" ||
          t.text == "mutable" || t.text == "requires" || t.text == "try") {
        ++j;
        continue;
      }
      return n;  // `int f(x) y;` — not a definition we understand
    }
    if (t.kind == TokenKind::kPunct || t.kind == TokenKind::kNumber) {
      ++j;  // ::, <, >, &, &&, commas of an init list, ...
      continue;
    }
    ++j;
  }
  return n;
}

/// True when `[` at index i opens a lambda introducer rather than a
/// subscript: subscripts follow a value (identifier, number, ')' , ']').
bool is_lambda_intro(const std::vector<Token>& tokens, std::size_t i) {
  const Token* prev = prev_token(tokens, i);
  if (prev == nullptr) return true;
  if (prev->kind == TokenKind::kIdentifier && !is_keyword(prev->text)) {
    return false;
  }
  if (prev->kind == TokenKind::kNumber) return false;
  return !(is_punct(*prev, ")") || is_punct(*prev, "]"));
}

void collect_lambdas(const std::vector<Token>& tokens, std::size_t b,
                     std::size_t e, std::vector<LambdaInfo>& out) {
  for (std::size_t i = b; i < e; ++i) {
    if (!is_punct(tokens[i], "[") || !is_lambda_intro(tokens, i)) continue;
    const std::size_t intro_close = find_matching_paren(tokens, i);
    if (intro_close >= e) continue;
    std::size_t j = intro_close + 1;
    LambdaInfo lambda;
    if (j < e && is_punct(tokens[j], "(")) {
      const std::size_t close = find_matching_paren(tokens, j);
      if (close >= e) continue;
      lambda.params = parse_params(tokens, j, close);
      j = close + 1;
    }
    // Skip mutable/noexcept/-> return type up to the body.
    while (j < e && !is_punct(tokens[j], "{") && !is_punct(tokens[j], ";") &&
           !is_punct(tokens[j], ")") && !is_punct(tokens[j], ",")) {
      if (is_punct(tokens[j], "(")) {
        const std::size_t close = find_matching_paren(tokens, j);
        if (close >= e) break;
        j = close + 1;
        continue;
      }
      ++j;
    }
    if (j >= e || !is_punct(tokens[j], "{")) continue;
    lambda.body_begin = j;
    lambda.body_end = find_matching_paren(tokens, j);
    if (lambda.body_end >= e) continue;
    out.push_back(std::move(lambda));
    // Nested lambdas are found by the continuing scan (i keeps moving).
  }
}

}  // namespace

std::vector<FunctionInfo> find_functions(const std::vector<Token>& tokens) {
  std::vector<FunctionInfo> out;
  const std::size_t n = tokens.size();

  struct ClassScope {
    std::string name;
    int depth;  // brace depth inside the class body
  };
  std::vector<ClassScope> classes;
  int depth = 0;
  // Brace indices known to open a class body (mapped to the class name).
  std::map<std::size_t, std::string> class_braces;

  std::size_t i = 0;
  while (i < n) {
    const Token& t = tokens[i];
    if (t.preproc) {
      ++i;
      continue;
    }
    if (is_punct(t, "{")) {
      ++depth;
      const auto it = class_braces.find(i);
      if (it != class_braces.end()) {
        classes.push_back(ClassScope{it->second, depth});
      }
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      while (!classes.empty() && classes.back().depth >= depth) {
        classes.pop_back();
      }
      --depth;
      ++i;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "class" || t.text == "struct")) {
      // Skip template parameters (`template <class T>`).
      const Token* prev = prev_token(tokens, i);
      if (prev != nullptr && (is_punct(*prev, "<") || is_punct(*prev, ","))) {
        ++i;
        continue;
      }
      // Find the class name and the body '{' (or ';' for a forward decl).
      std::string name;
      std::size_t j = i + 1;
      while (j < n && !is_punct(tokens[j], "{") && !is_punct(tokens[j], ";") &&
             !is_punct(tokens[j], ":") && !is_punct(tokens[j], "(")) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            !is_keyword(tokens[j].text)) {
          name = tokens[j].text;
        }
        ++j;
      }
      if (j < n && is_punct(tokens[j], ":")) {  // base clause
        while (j < n && !is_punct(tokens[j], "{") && !is_punct(tokens[j], ";")) {
          ++j;
        }
      }
      if (j < n && is_punct(tokens[j], "{") && !name.empty()) {
        class_braces[j] = name;
      }
      i = i + 1;
      continue;
    }
    if (is_punct(t, "(")) {
      // Candidate function header: `name (` at namespace/class scope.
      const Token* name_tok = prev_token(tokens, i);
      if (name_tok == nullptr || name_tok->kind != TokenKind::kIdentifier ||
          is_keyword(name_tok->text)) {
        ++i;
        continue;
      }
      const Token* before_name = prev_token(tokens, i, 2);
      if (before_name != nullptr &&
          (is_punct(*before_name, ".") || is_punct(*before_name, "->"))) {
        ++i;
        continue;
      }
      const std::size_t close = find_matching_paren(tokens, i);
      if (close >= n) {
        ++i;
        continue;
      }
      const std::size_t body = find_body_brace(tokens, close + 1);
      if (body >= n) {
        i = close + 1;
        continue;
      }
      const std::size_t body_end = find_matching_paren(tokens, body);
      if (body_end >= n) {
        i = close + 1;
        continue;
      }

      FunctionInfo fn;
      fn.name = name_tok->text;
      fn.line = name_tok->line;
      fn.params = parse_params(tokens, i, close);
      fn.body_begin = body;
      fn.body_end = body_end;
      fn.body_end_line = tokens[body_end].line;
      // Qualified name: `Class :: name` before the identifier.
      std::size_t q = i - 1;
      bool dtor = false;
      if (q >= 1 && is_punct(tokens[q - 1], "~")) {
        dtor = true;
        --q;
      }
      if (q >= 2 && is_punct(tokens[q - 1], "::") &&
          tokens[q - 2].kind == TokenKind::kIdentifier) {
        fn.class_name = tokens[q - 2].text;
      } else if (!classes.empty()) {
        fn.class_name = classes.back().name;
      }
      fn.is_ctor_or_dtor = dtor || (!fn.class_name.empty() &&
                                    fn.name == fn.class_name);
      collect_lambdas(tokens, body + 1, body_end, fn.lambdas);
      out.push_back(std::move(fn));

      // Resume after the body; brace depth is unchanged by the skip.
      i = body_end + 1;
      continue;
    }
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Taint dataflow
// ---------------------------------------------------------------------------

namespace {

struct VarState {
  bool tainted = false;
  bool bounded = false;
  bool is_optional = false;
  bool is_byte_buffer = false;
  bool is_decode_result = false;
};

using Env = std::map<std::string, VarState>;

Env join(const Env& a, const Env& b) {
  Env out = a;
  for (const auto& [name, sb] : b) {
    auto [it, inserted] = out.try_emplace(name, sb);
    if (inserted) {
      // Present on one path only: taint survives, boundedness does not.
      it->second.bounded = false;
      continue;
    }
    VarState& sa = it->second;
    sa.tainted = sa.tainted || sb.tainted;
    sa.bounded = sa.bounded && sb.bounded;
    sa.is_optional = sa.is_optional || sb.is_optional;
    sa.is_byte_buffer = sa.is_byte_buffer || sb.is_byte_buffer;
    sa.is_decode_result = sa.is_decode_result || sb.is_decode_result;
  }
  for (auto& [name, sa] : out) {
    if (b.find(name) == b.end()) sa.bounded = false;
  }
  return out;
}

/// One `A op B` (or `!x` / `f(x)`) conjunct of a condition, classified
/// for its effect on variable bounds.
struct GuardAtom {
  enum class Kind {
    kNone,
    kWithin,   // truth implies vars are in bounds
    kExceeds,  // truth implies vars are OUT of bounds
    kFalsey,   // `!x`: truth implies x is null/failed
  };
  Kind kind = Kind::kNone;
  std::vector<std::string> vars;
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

class Analyzer {
 public:
  Analyzer(const std::vector<Token>& tokens, const FunctionInfo& fn,
           const TaintPolicy& policy, const StatementHook* hook)
      : toks_(tokens), fn_(fn), policy_(policy), hook_(hook) {}

  FunctionAnalysisResult run() {
    Env env;
    for (const FunctionParam& p : fn_.params) {
      if (p.name.empty()) continue;
      VarState state;
      state.is_optional = optional_like_type(p.type_text);
      state.is_byte_buffer = byte_buffer_type(p.type_text);
      if (policy_.name_seeds_taint && policy_.name_seeds_taint(p.name) &&
          !state.is_byte_buffer) {
        state.tainted = true;
      }
      env[p.name] = state;
    }
    analyze_block(fn_.body_begin + 1, fn_.body_end, env);

    for (std::size_t k = 0; k < fn_.params.size(); ++k) {
      const std::string& name = fn_.params[k].name;
      if (validated_.count(name)) result_.validated_params.push_back(k);
      if (asserted_.count(name)) result_.asserted_params.push_back(k);
    }
    return result_;
  }

 private:
  // --- expression evaluation ------------------------------------------------

  struct EvalResult {
    bool tainted = false;
    bool bounded = false;
  };

  static bool trusted_member_fn(std::string_view name) {
    return name == "size" || name == "empty" || name == "length" ||
           name == "capacity" || name == "data" || name == "begin" ||
           name == "end" || name == "count" || name == "contains" ||
           name == "has_value" || name == "value_or";
  }

  bool is_unary_star(std::size_t i) const {
    if (!is_punct(toks_[i], "*")) return false;
    const Token* prev = prev_token(toks_, i);
    if (prev == nullptr) return true;
    if (prev->kind == TokenKind::kIdentifier && !is_keyword(prev->text)) {
      return false;
    }
    if (prev->kind == TokenKind::kNumber) return false;
    return !(is_punct(*prev, ")") || is_punct(*prev, "]"));
  }

  EvalResult eval(std::size_t b, std::size_t e, const Env& env) const {
    EvalResult r;
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = toks_[i];
      if (is_unary_star(i) && i + 1 < e &&
          toks_[i + 1].kind == TokenKind::kIdentifier) {
        const auto it = env.find(toks_[i + 1].text);
        if (it != env.end()) {
          const VarState& v = it->second;
          if (v.bounded) {
            r.bounded = true;
          } else if (v.tainted ||
                     (v.is_optional && policy_.deref_optional_is_source)) {
            r.tainted = true;
          }
          ++i;  // the operand is handled
          continue;
        }
      }
      if (t.kind != TokenKind::kIdentifier) continue;

      // Calls: sources, trusted reads, everything else scans through.
      const Token* nxt = next_token(toks_, i);
      const bool is_call = nxt != nullptr && is_punct(*nxt, "(") &&
                           !is_keyword(t.text);
      if (is_call && !is_member_access(toks_, i)) {
        if (policy_.call_returns_taint && policy_.call_returns_taint(t.text)) {
          r.tainted = true;
          const std::size_t close = find_matching_paren(toks_, i + 1);
          i = std::min(close, e - 1);
          continue;
        }
        if (policy_.call_result_clean && policy_.call_result_clean(t.text)) {
          const std::size_t close = find_matching_paren(toks_, i + 1);
          i = std::min(close, e - 1);
          continue;
        }
      }
      if (is_call && is_member_access(toks_, i) &&
          trusted_member_fn(t.text)) {
        const std::size_t close = find_matching_paren(toks_, i + 1);
        i = std::min(close, e - 1);
        continue;
      }

      const auto it = env.find(t.text);
      if (it == env.end()) continue;
      const VarState& v = it->second;
      if (is_member_access(toks_, i)) continue;  // `x.count` taints via x

      // Field access off a tracked variable.
      if (i + 2 < e &&
          (is_punct(toks_[i + 1], ".") || is_punct(toks_[i + 1], "->")) &&
          toks_[i + 2].kind == TokenKind::kIdentifier) {
        const std::string& field = toks_[i + 2].text;
        const Token* after = next_token(toks_, i + 2);
        if (after != nullptr && is_punct(*after, "(") &&
            trusted_member_fn(field)) {
          i = std::min(find_matching_paren(toks_, i + 3), e - 1);
          continue;
        }
        if (v.bounded) {
          r.bounded = true;
        } else if (v.tainted) {
          const bool carries = !policy_.field_carries_taint ||
                               policy_.field_carries_taint(field);
          if (carries) r.tainted = true;
        }
        i += 2;
        continue;
      }

      // Byte-buffer subscript reads hostile bytes.
      if (v.is_byte_buffer && i + 1 < e && is_punct(toks_[i + 1], "[") &&
          policy_.byte_buffer_subscript_is_source) {
        r.tainted = true;
        continue;
      }
      if (v.bounded) {
        r.bounded = true;
      } else if (v.tainted) {
        r.tainted = true;
      }
    }
    return r;
  }

  // --- guard atoms ----------------------------------------------------------

  bool side_is_boundish(std::size_t b, std::size_t e) const {
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (policy_.is_bound_token && policy_.is_bound_token(t)) return true;
      const std::string lower = to_lower(t.text);
      if (lower.find("max") != std::string::npos ||
          lower.find("remaining") != std::string::npos ||
          lower.find("limit") != std::string::npos) {
        return true;
      }
      // `bytes.size()` / `span.size() - offset` style bounds.
      if ((t.text == "size" || t.text == "length") &&
          is_member_access(toks_, i)) {
        const Token* nxt = next_token(toks_, i);
        if (nxt != nullptr && is_punct(*nxt, "(")) return true;
      }
    }
    return false;
  }

  std::vector<std::string> side_vars(std::size_t b, std::size_t e,
                                     const Env& env) const {
    std::vector<std::string> vars;
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (is_member_access(toks_, i)) continue;
      if (env.find(t.text) != env.end()) vars.push_back(t.text);
    }
    return vars;
  }

  /// Top-level argument subranges of a call's `( ... )`.
  std::vector<std::pair<std::size_t, std::size_t>> call_args(
      std::size_t open, std::size_t close) const {
    if (close <= open + 1) return {};
    return split_top_level(toks_, open + 1, close, ",");
  }

  GuardAtom classify_atom(std::size_t b, std::size_t e, const Env& env) const {
    // Strip redundant wrapping parens.
    while (e > b + 1 && is_punct(toks_[b], "(") &&
           find_matching_paren(toks_, b) == e - 1) {
      ++b;
      --e;
    }
    GuardAtom atom;
    if (b >= e) return atom;

    // `!x` and `!f(x)`.
    if (is_punct(toks_[b], "!")) {
      if (b + 1 < e && toks_[b + 1].kind == TokenKind::kIdentifier) {
        const std::string& name = toks_[b + 1].text;
        if (b + 2 == e && env.count(name)) {
          atom.kind = GuardAtom::Kind::kFalsey;
          atom.vars.push_back(name);
          return atom;
        }
        // `!validates(x)` — failure branch means x out of bounds.
        if (b + 2 < e && is_punct(toks_[b + 2], "(") &&
            policy_.call_validates_arg) {
          const std::size_t close = find_matching_paren(toks_, b + 2);
          if (close == e - 1) {
            const auto args = call_args(b + 2, close);
            for (std::size_t k = 0; k < args.size(); ++k) {
              if (!policy_.call_validates_arg(name, k)) continue;
              for (const std::string& v :
                   side_vars(args[k].first, args[k].second, env)) {
                atom.vars.push_back(v);
              }
            }
            if (!atom.vars.empty()) atom.kind = GuardAtom::Kind::kExceeds;
            return atom;
          }
        }
      }
      return atom;
    }

    // `validates(x)` — truth means x in bounds.
    if (toks_[b].kind == TokenKind::kIdentifier && b + 1 < e &&
        is_punct(toks_[b + 1], "(") && policy_.call_validates_arg) {
      const std::size_t close = find_matching_paren(toks_, b + 1);
      if (close == e - 1) {
        const auto args = call_args(b + 1, close);
        for (std::size_t k = 0; k < args.size(); ++k) {
          if (!policy_.call_validates_arg(toks_[b].text, k)) continue;
          for (const std::string& v :
               side_vars(args[k].first, args[k].second, env)) {
            atom.vars.push_back(v);
          }
        }
        if (!atom.vars.empty()) atom.kind = GuardAtom::Kind::kWithin;
        return atom;
      }
    }

    // Comparison `A op B` at top level.
    int depth = 0;
    std::size_t op = kNpos;
    std::string_view op_text;
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth != 0) continue;
      if (t.text == "<" || t.text == "<=" || t.text == ">" ||
          t.text == ">=") {
        op = i;
        op_text = t.text;
        break;
      }
    }
    if (op == kNpos) return atom;

    const bool left_bound = side_is_boundish(b, op);
    const bool right_bound = side_is_boundish(op + 1, e);
    if (left_bound == right_bound) return atom;

    const std::size_t vb = left_bound ? op + 1 : b;
    const std::size_t ve = left_bound ? e : op;
    atom.vars = side_vars(vb, ve, env);
    if (atom.vars.empty()) return atom;
    // Direction relative to the variable side: `var < bound` is within,
    // `var > bound` exceeds; mirrored when the bound is on the left.
    const bool var_less = left_bound ? (op_text == ">" || op_text == ">=")
                                     : (op_text == "<" || op_text == "<=");
    atom.kind = var_less ? GuardAtom::Kind::kWithin : GuardAtom::Kind::kExceeds;
    return atom;
  }

  std::vector<GuardAtom> condition_atoms(std::size_t b, std::size_t e,
                                         const Env& env) const {
    std::vector<GuardAtom> atoms;
    // Split on both || and && at top level; for a bounds linter the
    // lenient reading (any conjunct/disjunct counts) errs toward silence.
    for (const auto& [ob, oe] : split_top_level(toks_, b, e, "||")) {
      for (const auto& [ab, ae] : split_top_level(toks_, ob, oe, "&&")) {
        GuardAtom atom = classify_atom(ab, ae, env);
        if (atom.kind != GuardAtom::Kind::kNone) atoms.push_back(atom);
      }
    }
    return atoms;
  }

  void bound_vars(Env& env, const std::vector<std::string>& vars,
                  bool via_assert) {
    for (const std::string& v : vars) {
      auto it = env.find(v);
      if (it == env.end()) continue;
      it->second.bounded = true;
      if (is_param(v)) {
        if (via_assert) {
          asserted_.insert(v);
        } else {
          validated_.insert(v);
        }
      }
    }
  }

  bool is_param(const std::string& name) const {
    for (const FunctionParam& p : fn_.params) {
      if (p.name == name) return true;
    }
    return false;
  }

  void cleanse_all(Env& env) {
    for (auto& [name, state] : env) {
      (void)name;
      if (state.tainted) {
        state.tainted = false;
        state.bounded = true;
      }
    }
  }

  // --- statements -----------------------------------------------------------

  /// Finds the end of a simple statement starting at `i`: the index of the
  /// terminating ';' at nesting level 0 (or `e`). Nested braces (lambdas,
  /// local structs, init lists) are skipped whole.
  std::size_t statement_end(std::size_t i, std::size_t e) const {
    int depth = 0;
    for (std::size_t j = i; j < e; ++j) {
      const Token& t = toks_[j];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth == 0 && t.text == ";") return j;
      if (depth < 0) return j;  // ran past the enclosing block
    }
    return e;
  }

  struct StmtOutcome {
    std::size_t next = 0;
    bool exits = false;  // return/throw/break/continue ends this path
  };

  StmtOutcome analyze_one(std::size_t i, std::size_t e, Env& env) {
    const Token& t = toks_[i];

    if (is_punct(t, "{")) {
      const std::size_t close = find_matching_paren(toks_, i);
      const bool exits = analyze_block(i + 1, std::min(close, e), env);
      return {std::min(close, e) + 1, exits};
    }
    if (t.kind == TokenKind::kIdentifier) {
      if (t.text == "if") return analyze_if(i, e, env);
      if (t.text == "while") return analyze_while(i, e, env);
      if (t.text == "for") return analyze_for(i, e, env);
      if (t.text == "do") return analyze_do(i, e, env);
      if (t.text == "switch") return analyze_switch(i, e, env);
      if (t.text == "else") {  // dangling else (shouldn't happen)
        return {i + 1, false};
      }
      if (t.text == "case" || t.text == "default") {
        std::size_t j = i;
        while (j < e && !is_punct(toks_[j], ":")) ++j;
        return {j + 1, false};
      }
    }

    // Simple statement.
    const std::size_t end = statement_end(i, e);
    fire_hook(i, end, env);
    const bool exits = transfer(i, end, env);
    return {end + 1, exits};
  }

  bool analyze_block(std::size_t b, std::size_t e, Env& env) {
    std::size_t i = b;
    bool exits = false;
    while (i < e) {
      if (is_punct(toks_[i], ";")) {  // stray empty statement
        ++i;
        continue;
      }
      const StmtOutcome out = analyze_one(i, e, env);
      exits = out.exits;
      if (out.next <= i) break;  // defensive: never loop forever
      i = out.next;
    }
    return exits;
  }

  StmtOutcome analyze_if(std::size_t i, std::size_t e, Env& env) {
    std::size_t j = i + 1;
    if (j < e && is_ident(toks_[j], "constexpr")) ++j;
    if (j >= e || !is_punct(toks_[j], "(")) return {i + 1, false};
    const std::size_t close = find_matching_paren(toks_, j);
    if (close >= e) return {e, false};
    std::size_t cb = j + 1;
    // if-init: `if (auto x = f(); cond)`.
    for (const auto& [pb, pe] :
         split_top_level(toks_, cb, close, ";")) {
      if (pe < close) {
        fire_hook(pb, pe, env);
        transfer(pb, pe, env);
        cb = pe + 1;
      }
    }
    const std::vector<GuardAtom> atoms = condition_atoms(cb, close, env);

    // Then branch.
    Env then_env = env;
    for (const GuardAtom& atom : atoms) {
      if (atom.kind == GuardAtom::Kind::kWithin) {
        bound_vars(then_env, atom.vars, /*via_assert=*/false);
      }
    }
    StmtOutcome then_out = analyze_one(close + 1, e, then_env);
    std::size_t after = then_out.next;

    // Else branch.
    bool has_else = false;
    Env else_env = env;
    StmtOutcome else_out{};
    if (after < e && is_ident(toks_[after], "else")) {
      has_else = true;
      for (const GuardAtom& atom : atoms) {
        if (atom.kind == GuardAtom::Kind::kExceeds) {
          bound_vars(else_env, atom.vars, /*via_assert=*/false);
        }
        if (atom.kind == GuardAtom::Kind::kFalsey) {
          apply_falsey_negation(else_env, atom);
        }
      }
      else_out = analyze_one(after + 1, e, else_env);
      after = else_out.next;
    }

    // Merge.
    if (then_out.exits && (!has_else || else_out.exits)) {
      if (!has_else) {
        // The guard pattern: `if (bad) return;` — after the if, every
        // exceeds-atom variable is in bounds and every checked decode
        // result is valid.
        for (const GuardAtom& atom : atoms) {
          if (atom.kind == GuardAtom::Kind::kExceeds) {
            bound_vars(env, atom.vars, /*via_assert=*/guard_exit_was_throw_);
          }
          if (atom.kind == GuardAtom::Kind::kFalsey) {
            apply_falsey_negation(env, atom);
          }
        }
        return {after, false};
      }
      env = join(then_env, else_env);
      return {after, true};
    }
    if (has_else && else_out.exits && !then_out.exits) {
      env = then_env;
      for (const GuardAtom& atom : atoms) {
        if (atom.kind == GuardAtom::Kind::kWithin) {
          bound_vars(env, atom.vars, /*via_assert=*/false);
        }
      }
      return {after, false};
    }
    if (!has_else) {
      env = join(env, then_env);
    } else {
      env = join(then_env, else_env);
    }
    return {after, false};
  }

  /// `!x` held false: x is non-null. If x is a checked full-decode result,
  /// all in-scope taint has now been validated.
  void apply_falsey_negation(Env& env, const GuardAtom& atom) {
    for (const std::string& v : atom.vars) {
      auto it = env.find(v);
      if (it == env.end()) continue;
      if (it->second.is_decode_result) cleanse_all(env);
    }
  }

  StmtOutcome analyze_while(std::size_t i, std::size_t e, Env& env) {
    std::size_t j = i + 1;
    if (j >= e || !is_punct(toks_[j], "(")) return {i + 1, false};
    const std::size_t close = find_matching_paren(toks_, j);
    if (close >= e) return {e, false};
    const std::vector<GuardAtom> atoms = condition_atoms(j + 1, close, env);
    Env body_env = env;
    for (const GuardAtom& atom : atoms) {
      if (atom.kind == GuardAtom::Kind::kWithin) {
        bound_vars(body_env, atom.vars, /*via_assert=*/false);
      }
    }
    const StmtOutcome body = analyze_one(close + 1, e, body_env);
    env = join(env, body_env);
    return {body.next, false};
  }

  StmtOutcome analyze_for(std::size_t i, std::size_t e, Env& env) {
    std::size_t j = i + 1;
    if (j >= e || !is_punct(toks_[j], "(")) return {i + 1, false};
    const std::size_t close = find_matching_paren(toks_, j);
    if (close >= e) return {e, false};

    // Range-for: `for (decl : range)`.
    std::size_t colon = kNpos;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      const Token& t = toks_[k];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<") {
        ++depth;
      }
      if (t.text == ")" || t.text == "]" || t.text == "}" || t.text == ">") {
        --depth;
      }
      if (depth == 0 && t.text == ":") {
        colon = k;
        break;
      }
    }
    Env body_env = env;
    if (colon != kNpos) {
      // Loop variable gets the range's taint.
      std::size_t name_index = kNpos;
      for (std::size_t k = j + 1; k < colon; ++k) {
        if (toks_[k].kind == TokenKind::kIdentifier &&
            !is_keyword(toks_[k].text)) {
          name_index = k;
        }
      }
      if (name_index != kNpos) {
        const EvalResult range = eval(colon + 1, close, env);
        VarState state;
        state.tainted = range.tainted;
        state.bounded = !range.tainted && range.bounded;
        body_env[toks_[name_index].text] = state;
      }
    } else {
      const auto parts = split_top_level(toks_, j + 1, close, ";");
      if (!parts.empty()) {
        fire_hook(parts[0].first, parts[0].second, body_env);
        transfer(parts[0].first, parts[0].second, body_env);
      }
      if (parts.size() > 1) {
        for (const GuardAtom& atom : condition_atoms(
                 parts[1].first, parts[1].second, body_env)) {
          if (atom.kind == GuardAtom::Kind::kWithin) {
            bound_vars(body_env, atom.vars, /*via_assert=*/false);
          }
        }
      }
    }
    const StmtOutcome body = analyze_one(close + 1, e, body_env);
    env = join(env, body_env);
    return {body.next, false};
  }

  StmtOutcome analyze_do(std::size_t i, std::size_t e, Env& env) {
    const StmtOutcome body = analyze_one(i + 1, e, env);
    std::size_t j = body.next;
    if (j < e && is_ident(toks_[j], "while")) {
      ++j;
      if (j < e && is_punct(toks_[j], "(")) {
        j = find_matching_paren(toks_, j) + 1;
      }
      if (j < e && is_punct(toks_[j], ";")) ++j;
    }
    return {j, false};
  }

  StmtOutcome analyze_switch(std::size_t i, std::size_t e, Env& env) {
    std::size_t j = i + 1;
    if (j >= e || !is_punct(toks_[j], "(")) return {i + 1, false};
    const std::size_t close = find_matching_paren(toks_, j);
    if (close + 1 >= e || !is_punct(toks_[close + 1], "{")) {
      return {close + 1, false};
    }
    const std::size_t body_close = find_matching_paren(toks_, close + 1);
    // Cases are walked linearly with a shared environment — conservative
    // (taint from one case bleeds into the next) but never unsound for a
    // "was it checked" question, since bounds from one case also require a
    // matching join to survive... keep it simple: analyze and join.
    Env body_env = env;
    analyze_block(close + 2, std::min(body_close, e), body_env);
    env = join(env, body_env);
    return {std::min(body_close, e) + 1, false};
  }

  // --- simple-statement transfer -------------------------------------------

  void fire_hook(std::size_t b, std::size_t e, const Env& env) {
    if (hook_ == nullptr || b >= e) return;
    StatementContext ctx{
        toks_, b, e,
        [this, &env](std::size_t rb, std::size_t re) {
          const EvalResult r = eval(rb, re, env);
          return r.tainted;
        }};
    (*hook_)(ctx);
  }

  /// Applies a simple statement's effect to the environment. Returns true
  /// for return/throw/break/continue.
  bool transfer(std::size_t b, std::size_t e, Env& env) {
    if (b >= e) return false;
    const Token& first = toks_[b];

    if (is_ident(first, "return") || is_ident(first, "co_return")) {
      const EvalResult r = eval(b + 1, e, env);
      if (r.tainted) result_.returns_tainted = true;
      // `return count <= kMax;` — a single within-comparison marks the
      // function as validating that parameter.
      const std::vector<GuardAtom> atoms = condition_atoms(b + 1, e, env);
      if (atoms.size() == 1 && atoms[0].kind == GuardAtom::Kind::kWithin) {
        for (const std::string& v : atoms[0].vars) {
          if (is_param(v)) validated_.insert(v);
        }
      }
      guard_exit_was_throw_ = false;
      return true;
    }
    if (is_ident(first, "throw")) {
      guard_exit_was_throw_ = true;
      return true;
    }
    if (is_ident(first, "break") || is_ident(first, "continue") ||
        is_ident(first, "goto")) {
      guard_exit_was_throw_ = false;
      return true;
    }

    // Assertion macros bound their condition for the rest of the path.
    if (first.kind == TokenKind::kIdentifier &&
        (first.text == "UPDP2P_ENSURE" || first.text == "UPDP2P_ASSERT" ||
         first.text == "assert") &&
        b + 1 < e && is_punct(toks_[b + 1], "(")) {
      const std::size_t close = find_matching_paren(toks_, b + 1);
      for (const GuardAtom& atom :
           condition_atoms(b + 2, std::min(close, e), env)) {
        if (atom.kind == GuardAtom::Kind::kWithin) {
          bound_vars(env, atom.vars, /*via_assert=*/true);
        }
      }
      return false;
    }

    // Calls with asserting summaries bound their arguments.
    apply_asserting_calls(b, e, env);

    // Assignment / declaration-with-initializer. Compound assignments
    // (`value |= bytes[i]`) propagate taint into the accumulator — the
    // varint/u64 decoders are exactly this shape.
    std::size_t eq = kNpos;
    std::size_t compound = kNpos;
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth != 0) continue;
      if (t.text == "=") {
        eq = i;
        break;
      }
      if (t.text.size() == 2 && t.text[1] == '=' && t.text[0] != '=' &&
          t.text[0] != '!' && t.text[0] != '<' && t.text[0] != '>') {
        compound = i;
        break;
      }
    }
    if (eq != kNpos && eq > b) {
      assign(b, eq, eq + 1, e, env);
      return false;
    }
    if (compound != kNpos && compound > b) {
      const EvalResult rhs = eval(compound + 1, e, env);
      if (rhs.tainted) {
        for (std::size_t i = b; i < compound; ++i) {
          if (toks_[i].kind != TokenKind::kIdentifier) continue;
          auto it = env.find(toks_[i].text);
          if (it != env.end()) {
            it->second.tainted = true;
            it->second.bounded = false;
          }
          break;
        }
      }
      return false;
    }

    // Declaration without `=`: ctor-paren/brace init or default init.
    declare_without_assign(b, e, env);
    return false;
  }

  void apply_asserting_calls(std::size_t b, std::size_t e, Env& env) {
    if (!policy_.call_asserts_arg) return;
    for (std::size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokenKind::kIdentifier) continue;
      if (i + 1 >= e || !is_punct(toks_[i + 1], "(")) continue;
      if (is_member_access(toks_, i) || is_keyword(toks_[i].text)) continue;
      const std::size_t close = find_matching_paren(toks_, i + 1);
      if (close >= e) continue;
      const auto args = call_args(i + 1, close);
      for (std::size_t k = 0; k < args.size(); ++k) {
        if (!policy_.call_asserts_arg(toks_[i].text, k)) continue;
        bound_vars(env, side_vars(args[k].first, args[k].second, env),
                   /*via_assert=*/true);
      }
    }
  }

  void assign(std::size_t lb, std::size_t le, std::size_t rb, std::size_t re,
              Env& env) {
    const EvalResult rhs = eval(rb, re, env);

    bool member_write = false;
    for (std::size_t i = lb; i < le; ++i) {
      if (is_punct(toks_[i], ".") || is_punct(toks_[i], "->") ||
          is_punct(toks_[i], "[")) {
        member_write = true;
        break;
      }
    }
    if (member_write) {
      // Writing into a field/slot of `x` taints x (weak update).
      for (std::size_t i = lb; i < le; ++i) {
        if (toks_[i].kind != TokenKind::kIdentifier) continue;
        auto it = env.find(toks_[i].text);
        if (it != env.end() && rhs.tainted) {
          it->second.tainted = true;
          it->second.bounded = false;
        }
        break;
      }
      return;
    }

    // `type name = rhs` or `name = rhs`: strong update.
    std::size_t name_index = kNpos;
    for (std::size_t i = lb; i < le; ++i) {
      if (toks_[i].kind == TokenKind::kIdentifier &&
          !is_keyword(toks_[i].text)) {
        name_index = i;
      }
    }
    if (name_index == kNpos) return;
    const std::string name = toks_[name_index].text;

    std::string type_text;
    for (std::size_t i = lb; i < name_index; ++i) {
      type_text += toks_[i].text;
      type_text.push_back(' ');
    }

    VarState state;
    state.tainted = rhs.tainted;
    state.bounded = !rhs.tainted && rhs.bounded;
    state.is_optional = optional_like_type(type_text);
    state.is_byte_buffer = byte_buffer_type(type_text);
    // `auto x = decode(...)` and optional-returning sources keep their
    // optional-ness invisible in the type; flags come from the RHS shape.
    std::size_t rfirst = rb;
    while (rfirst < re && is_punct(toks_[rfirst], "(")) ++rfirst;
    // Skip leading qualifiers `gossip ::`.
    while (rfirst + 2 < re && toks_[rfirst].kind == TokenKind::kIdentifier &&
           is_punct(toks_[rfirst + 1], "::")) {
      rfirst += 2;
    }
    if (rfirst < re && toks_[rfirst].kind == TokenKind::kIdentifier &&
        rfirst + 1 < re && is_punct(toks_[rfirst + 1], "(")) {
      const std::string& callee = toks_[rfirst].text;
      if (policy_.call_is_cleansing_decode &&
          policy_.call_is_cleansing_decode(callee)) {
        state.is_decode_result = true;
      }
    }
    // Byte-buffer slices stay byte buffers: `auto body = bytes.subspan(..)`.
    for (std::size_t i = rb; i + 2 < re; ++i) {
      const auto it = env.find(toks_[i].text);
      if (it == env.end() || !it->second.is_byte_buffer) continue;
      if ((is_punct(toks_[i + 1], ".") || is_punct(toks_[i + 1], "->")) &&
          toks_[i + 2].kind == TokenKind::kIdentifier) {
        const std::string& fn_name = toks_[i + 2].text;
        if (fn_name == "subspan" || fn_name == "first" || fn_name == "last" ||
            fn_name == "substr") {
          state.is_byte_buffer = true;
        }
      }
    }
    env[name] = state;
  }

  void declare_without_assign(std::size_t b, std::size_t e, Env& env) {
    if (b >= e) return;
    // `Type name;` — at least two tokens, all type-ish, last an identifier.
    const Token& last = toks_[e - 1];
    if (last.kind == TokenKind::kIdentifier && e - b >= 2 &&
        !is_keyword(last.text)) {
      bool type_like = true;
      for (std::size_t i = b; i + 1 < e; ++i) {
        const Token& t = toks_[i];
        if (t.kind == TokenKind::kIdentifier || is_type_ish_punct(t)) continue;
        type_like = false;
        break;
      }
      if (type_like && toks_[b].kind == TokenKind::kIdentifier &&
          env.find(toks_[b].text) == env.end()) {
        VarState state;
        std::string type_text;
        for (std::size_t i = b; i + 1 < e; ++i) {
          type_text += toks_[i].text;
          type_text.push_back(' ');
        }
        state.is_optional = optional_like_type(type_text);
        state.is_byte_buffer = byte_buffer_type(type_text);
        if (policy_.name_seeds_taint && policy_.name_seeds_taint(last.text) &&
            !state.is_byte_buffer) {
          state.tainted = true;  // uninitialised + wire-named: assume hostile
        }
        env[last.text] = state;
        return;
      }
    }
    // `Type name(args);` / `Type name{args};` ctor-style declaration: the
    // name is the identifier right before '(' or '{' whose predecessor is
    // type-ish (never `.`/`->`/`::` — those are calls).
    for (std::size_t i = b + 1; i + 1 < e; ++i) {
      if (toks_[i].kind != TokenKind::kIdentifier) continue;
      if (!is_punct(toks_[i + 1], "(") && !is_punct(toks_[i + 1], "{")) {
        continue;
      }
      const Token& prev = toks_[i - 1];
      if (is_punct(prev, ".") || is_punct(prev, "->") ||
          is_punct(prev, "::")) {
        continue;
      }
      const bool prev_type_ish =
          (prev.kind == TokenKind::kIdentifier && !is_keyword(prev.text)) ||
          is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&");
      if (!prev_type_ish) continue;
      const std::size_t close = find_matching_paren(toks_, i + 1);
      if (close >= e) return;
      const EvalResult init = eval(i + 2, close, env);
      VarState state;
      state.tainted = init.tainted;
      state.bounded = !init.tainted && init.bounded;
      env[toks_[i].text] = state;
      return;
    }
  }

  const std::vector<Token>& toks_;
  const FunctionInfo& fn_;
  const TaintPolicy& policy_;
  const StatementHook* hook_;
  FunctionAnalysisResult result_;
  std::set<std::string> validated_;
  std::set<std::string> asserted_;
  // Set by the most recent exiting statement: guards that exit by throwing
  // assert their bound (usable unconditionally at call sites).
  bool guard_exit_was_throw_ = false;
};

}  // namespace

FunctionAnalysisResult analyze_function(const std::vector<Token>& tokens,
                                        const FunctionInfo& fn,
                                        const TaintPolicy& policy,
                                        const StatementHook* hook) {
  if (fn.body_begin >= fn.body_end || fn.body_end >= tokens.size()) {
    return {};
  }
  Analyzer analyzer(tokens, fn, policy, hook);
  return analyzer.run();
}

}  // namespace updp2p::lint
