// Rule: determinism
//
// Protects the engine's headline guarantee: bit-identical RunMetrics at any
// shard/thread count (DESIGN.md §6). Every source of entropy in the
// deterministic core must flow through common::Rng / common::StreamRng; a
// single wall-clock read or std::random_device in gossip/sim code silently
// breaks the golden tests' meaning even when they still pass on one machine.
//
// Banned in the deterministic directories:
//   * std::random_device
//   * std::rand / std::srand
//   * std::chrono::{system_clock, steady_clock, high_resolution_clock}
//   * argless / null-arg time()  (time(), time(nullptr), time(NULL), time(0))
//
// Allowlisted directories (real time is the point there): src/runtime,
// src/net, examples/, bench/, tools/.

#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

constexpr std::string_view kDeterministicDirs[] = {
    "src/sim/",  "src/gossip/", "src/analysis/", "src/baselines/",
    "src/churn/", "src/version/", "src/pgrid/",  "src/common/",
    "src/chaos/",
};

bool in_deterministic_scope(std::string_view path) {
  for (const std::string_view dir : kDeterministicDirs) {
    if (path.substr(0, dir.size()) == dir) return true;
  }
  return false;
}

class DeterminismRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "determinism"; }
  [[nodiscard]] std::string_view summary() const override {
    return "wall clocks and ambient entropy are banned in the deterministic "
           "core; use common::Rng/StreamRng and the simulated round clock";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!in_deterministic_scope(file.path)) return;
    const auto& tokens = file.tokens();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || t.preproc) continue;

      if (t.text == "random_device") {
        out.push_back({file.path, t.line, std::string(id()),
                       "std::random_device is ambient entropy; seed a "
                       "common::Rng or key a common::StreamRng instead"});
        continue;
      }
      if (t.text == "system_clock" || t.text == "steady_clock" ||
          t.text == "high_resolution_clock") {
        out.push_back({file.path, t.line, std::string(id()),
                       "wall clock (" + t.text +
                           ") in deterministic code; time must come from "
                           "the simulated round counter"});
        continue;
      }
      if ((t.text == "rand" || t.text == "srand") &&
          !is_member_access(tokens, i)) {
        const Token* next = next_token(tokens, i);
        if (next != nullptr && is_punct(*next, "(")) {
          out.push_back({file.path, t.line, std::string(id()),
                         "std::" + t.text +
                             "() is hidden global RNG state; use "
                             "common::Rng/StreamRng"});
        }
        continue;
      }
      if (t.text == "time" && !is_member_access(tokens, i)) {
        // Only the C `time()` call: `time(` followed by `)`, nullptr,
        // NULL or 0. Leaves `x.time`, `time_point`, `round_time(now)` alone.
        const Token* open = next_token(tokens, i);
        const Token* arg = next_token(tokens, i, 2);
        if (open != nullptr && is_punct(*open, "(") && arg != nullptr &&
            (is_punct(*arg, ")") || is_ident(*arg, "nullptr") ||
             is_ident(*arg, "NULL") ||
             (arg->kind == TokenKind::kNumber && arg->text == "0"))) {
          out.push_back({file.path, t.line, std::string(id()),
                         "time() reads the wall clock; deterministic code "
                         "must use the simulated round counter"});
        }
        continue;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_determinism_rule() {
  return std::make_unique<DeterminismRule>();
}

}  // namespace updp2p::lint
