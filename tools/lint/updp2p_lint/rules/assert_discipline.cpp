// Rule: assert-discipline
//
// Library code checks invariants with UPDP2P_ENSURE (src/common/ensure.hpp),
// which stays active in release builds: simulation results silently
// corrupted by a violated invariant are worse than a crash, and every
// golden/bench run is a release build where raw assert() compiles to
// nothing. Raw assert() in src/ is therefore a no-op exactly where it
// matters. (static_assert is fine — it is a different token.)

#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

class AssertDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "assert-discipline";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "raw assert() is compiled out of release/golden builds; library "
           "code uses UPDP2P_ENSURE(expr, message)";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!path_starts_with_any(file.path, {"src/"})) return;
    const auto& tokens = file.tokens();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || t.text != "assert" ||
          t.preproc || is_member_access(tokens, i)) {
        continue;
      }
      const Token* next = next_token(tokens, i);
      if (next == nullptr || !is_punct(*next, "(")) continue;
      out.push_back({file.path, t.line, std::string(id()),
                     "raw assert() vanishes under NDEBUG (all release and "
                     "golden builds); use UPDP2P_ENSURE(expr, message) from "
                     "src/common/ensure.hpp"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_assert_discipline_rule() {
  return std::make_unique<AssertDisciplineRule>();
}

}  // namespace updp2p::lint
