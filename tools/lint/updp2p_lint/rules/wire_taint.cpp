// Rule: wire-taint
//
// Flow-aware successor to the old wire-bounds ±12-line window heuristic.
// A hostile varint must never command a multi-GB allocation: any value
// originating from wire or disk decode must pass a recognised bound check
// on every path before it sizes a container.
//
// Sources (per the TaintPolicy in flow.hpp):
//   - calls to functions the project index summarises as wire-derived
//     (get_varint, decode_*, probe_frame, ... — computed to a fixpoint,
//     so taint survives helper-call chains);
//   - subscript reads of byte-buffer parameters (`bytes[offset]`);
//   - derefs of unvalidated optionals (`*count`, the codec decode idiom);
//   - parameters and uninitialised locals named in the wire vocabulary
//     (count/cardinality/chunk/probe/len/record — same list the window
//     heuristic used, kept so the decode surface stays conservative).
//
// Bounds: a dominating comparison with early exit against kMaxWirePeerId,
// kMaxWireChunkKey, kArrayChunkMax, kChunkSpan, kMaxWalRecordBytes,
// kMaxSnapshotBytes, any identifier containing max/remaining/limit, or a
// `.size()` expression (`*count > bytes.size() - offset`); UPDP2P_ENSURE
// of the same shape; or a call whose summary says it validates/asserts
// the argument.
//
// Sinks: `.resize(x)` / `.reserve(x)`, `new T[x]`, and container
// subscripts `c[x]` where x is tainted-and-unbounded at that point.
//
// Scope is the decode surface: src/net/, src/gossip/codec.* and
// src/store/ (disk is hostile input too — bit rot and torn writes
// produce exactly the adversarial lengths a malicious datagram would).

#include "updp2p_lint/flow.hpp"
#include "updp2p_lint/index.hpp"
#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

bool in_wire_scope(std::string_view path) {
  return path_starts_with_any(path,
                              {"src/net/", "src/gossip/codec.", "src/store/"});
}

bool wire_bound_token(const Token& t) {
  return is_ident(t, "kMaxWirePeerId") || is_ident(t, "kMaxWireChunkKey") ||
         is_ident(t, "kArrayChunkMax") || is_ident(t, "kChunkSpan") ||
         is_ident(t, "kMaxWalRecordBytes") || is_ident(t, "kMaxSnapshotBytes");
}

class WireTaintRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "wire-taint"; }
  [[nodiscard]] std::string_view summary() const override {
    return "wire/disk-decoded values must pass a recognised bound check "
           "(kMax* caps or a dominating bytes.size() comparison) on every "
           "path before resize/reserve/new[]/subscript";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!in_wire_scope(file.path) || file.index == nullptr) return;
    const auto& tokens = file.tokens();
    const ProjectIndex& index = *file.index;

    TaintPolicy policy;
    policy.name_seeds_taint = [](const std::string& name) {
      return wire_vocab_name(name);
    };
    policy.call_returns_taint = [&index](const std::string& callee) {
      return index.returns_wire_derived(callee);
    };
    policy.call_validates_arg = [&index](const std::string& callee,
                                         std::size_t arg) {
      return index.validates_arg(callee, arg);
    };
    policy.call_asserts_arg = [&index](const std::string& callee,
                                       std::size_t arg) {
      return index.asserts_arg(callee, arg);
    };
    policy.is_bound_token = wire_bound_token;
    policy.deref_optional_is_source = true;
    policy.byte_buffer_subscript_is_source = true;
    // A tainted struct poisons only its wire-named fields: `scan.count`
    // is hostile, `scan.valid_bytes` (a validated prefix length the
    // scanner itself computed) is not.
    policy.field_carries_taint = [](const std::string& field) {
      return wire_vocab_name(field);
    };

    for (const FunctionInfo& fn : find_functions(tokens)) {
      StatementHook hook = [this, &tokens, &file, &out](
                               const StatementContext& stmt) {
        scan_sinks(stmt, tokens, file.path, out);
      };
      analyze_function(tokens, fn, policy, &hook);
    }
  }

 private:
  void scan_sinks(const StatementContext& stmt,
                  const std::vector<Token>& tokens, const std::string& path,
                  std::vector<Finding>& out) const {
    for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
      const Token& t = tokens[i];

      // `.resize(x)` / `.reserve(x)` member calls.
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "resize" || t.text == "reserve") &&
          is_member_access(tokens, i) && i + 1 < stmt.end &&
          is_punct(tokens[i + 1], "(")) {
        const std::size_t close = find_matching_paren(tokens, i + 1);
        if (close < stmt.end && stmt.range_tainted(i + 2, close)) {
          report(path, t.line, t.text + " sized by", out);
        }
        continue;
      }

      // `new T[x]`.
      if (is_ident(t, "new")) {
        std::size_t j = i + 1;
        while (j < stmt.end && !is_punct(tokens[j], "[") &&
               !is_punct(tokens[j], "(") && !is_punct(tokens[j], ";")) {
          ++j;
        }
        if (j < stmt.end && is_punct(tokens[j], "[")) {
          const std::size_t close = find_matching_paren(tokens, j);
          if (close < stmt.end && stmt.range_tainted(j + 1, close)) {
            report(path, t.line, "array new sized by", out);
          }
        }
        continue;
      }

      // Container subscript with a tainted index. Subscripts *of* the
      // byte buffer itself are reads (sources), not sinks — they are
      // bounded by the decode loop's `offset < bytes.size()` guard and
      // flagged here only if the index expression is itself tainted.
      if (is_punct(t, "[") && i > stmt.begin &&
          tokens[i - 1].kind == TokenKind::kIdentifier &&
          !tokens[i - 1].preproc) {
        const std::size_t close = find_matching_paren(tokens, i);
        if (close < stmt.end && stmt.range_tainted(i + 1, close)) {
          report(path, t.line, "subscript indexed by", out);
        }
        continue;
      }
    }
  }

  void report(const std::string& path, int line, const std::string& what,
              std::vector<Finding>& out) const {
    // One finding per line: the same tainted value often appears twice in
    // a statement (e.g. resize + fill).
    for (const Finding& f : out) {
      if (f.path == path && f.line == line && f.rule_id == id()) return;
    }
    out.push_back(
        {path, line, std::string(id()),
         what + " a wire-decoded value with no dominating bound check "
                "(kMaxWirePeerId / kMaxWireChunkKey / kArrayChunkMax / "
                "kChunkSpan / kMaxWalRecordBytes / kMaxSnapshotBytes or a "
                "bytes.size() comparison) on this path; bounds-check the "
                "decoded count/cardinality/length before it sizes anything, "
                "or lint-allow stating what bounds it"});
  }
};

}  // namespace

std::unique_ptr<Rule> make_wire_taint_rule() {
  return std::make_unique<WireTaintRule>();
}

}  // namespace updp2p::lint
