// Rule: suppression-reason
//
// Suppressions are part of the audit trail: `// lint-allow(rule-id): reason`
// must say WHY the flagged construct is safe (the order-insensitivity
// argument, the bound that replaces kMaxWirePeerId, ...). A bare
// suppression hides a violation without recording the justification, so it
// is itself a finding — as is a typo'd rule id, which would otherwise
// suppress nothing and rot silently.

#include "updp2p_lint/rule.hpp"

#include <algorithm>
#include <utility>

namespace updp2p::lint {
namespace {

class SuppressionReasonRule final : public Rule {
 public:
  explicit SuppressionReasonRule(std::vector<std::string> known_ids)
      : known_ids_(std::move(known_ids)) {}

  [[nodiscard]] std::string_view id() const override {
    return "suppression-reason";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "every lint-allow must name a real rule and carry a reason: "
           "// lint-allow(rule-id): why this is safe";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    for (const Suppression& s : file.suppressions) {
      if (s.rule_id.empty()) {
        out.push_back({file.path, s.line, std::string(id()),
                       "malformed lint-allow; the form is "
                       "// lint-allow(rule-id): reason"});
        continue;
      }
      if (std::find(known_ids_.begin(), known_ids_.end(), s.rule_id) ==
          known_ids_.end()) {
        out.push_back({file.path, s.line, std::string(id()),
                       "lint-allow names unknown rule '" + s.rule_id +
                           "'; it suppresses nothing (run --list-rules for "
                           "the catalogue)"});
        continue;
      }
      if (s.reason.empty()) {
        out.push_back({file.path, s.line, std::string(id()),
                       "lint-allow(" + s.rule_id +
                           ") has no reason; a suppression must record why "
                           "the construct is safe"});
      }
    }
  }

 private:
  std::vector<std::string> known_ids_;
};

}  // namespace

std::unique_ptr<Rule> make_suppression_reason_rule(
    std::vector<std::string> known_rule_ids) {
  return std::make_unique<SuppressionReasonRule>(std::move(known_rule_ids));
}

}  // namespace updp2p::lint
