// Rule: probe-trust
//
// The PR-7 lazy-decode contract (docs/protocol.md): `probe_frame(...)`
// parses just enough of a frame to route it — its result is trusted for
// monotone bookkeeping only. Counters, dedup lookups and routing may read
// probe fields freely; replica state mutation, store appends and encode
// paths must be dominated by a *full* decode (whose result is
// null-checked with an early exit) before any probe-derived value
// reaches them. A probe that skips the checksummed tail could otherwise
// install a corrupt version id into seen_versions_ or the WAL.
//
// Mechanically: the probe result variable (and everything read out of
// it) is tainted; a checked full decode (`auto push = decode_*(...); if
// (!push) return ...;`) cleanses the scope; findings fire when a still-
// tainted value is passed to a mutation-vocabulary call (handle_*,
// apply*, append*, absorb*, import*, insert, emplace, push_back, encode*,
// intern*, write*, put_*, merge*, store*) or assigned into a member
// (trailing-underscore or this->).

#include "updp2p_lint/flow.hpp"
#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

/// Read-only bookkeeping: results are trusted and the arguments do not
/// escape. Matches by prefix/substring over the call name.
bool bookkeeping_call(const std::string& name) {
  const std::string lower = to_lower(name);
  return lower.find("contains") != std::string::npos ||
         lower.find("count") != std::string::npos ||
         lower.find("find") != std::string::npos ||
         lower.find("knows") != std::string::npos ||
         lower.starts_with("note_") || lower.starts_with("has_") ||
         lower.starts_with("is_") || lower.starts_with("cancel") ||
         lower == "min" || lower == "max";
}

bool full_decode_call(const std::string& name) {
  const std::string lower = to_lower(name);
  return lower.starts_with("decode");
}

/// State-mutating vocabulary a probe-derived value must never reach
/// without a dominating full decode.
bool mutation_call(const std::string& name) {
  const std::string lower = to_lower(name);
  return lower.starts_with("handle_") || lower.starts_with("apply") ||
         lower.starts_with("append") || lower.starts_with("absorb") ||
         lower.starts_with("import") || lower.starts_with("encode") ||
         lower.starts_with("intern") || lower.starts_with("write") ||
         lower.starts_with("put_") || lower.starts_with("merge") ||
         lower.starts_with("store") || lower.starts_with("record_push") ||
         lower == "insert" || lower == "emplace" || lower == "push_back" ||
         lower == "emplace_back" || lower == "assign";
}

class ProbeTrustRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "probe-trust"; }
  [[nodiscard]] std::string_view summary() const override {
    return "probe_frame results may feed counters/dedup/routing only; "
           "state mutation, store appends and encode paths need a full "
           "decode dominating them";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!path_starts_with_any(file.path, {"src/"})) return;
    const auto& tokens = file.tokens();

    // Fast path: files that never call probe_frame have nothing to check.
    bool calls_probe = false;
    for (const Token& t : tokens) {
      if (is_ident(t, "probe_frame")) {
        calls_probe = true;
        break;
      }
    }
    if (!calls_probe) return;

    TaintPolicy policy;
    policy.call_returns_taint = [](const std::string& callee) {
      return callee == "probe_frame";
    };
    policy.call_result_clean = [](const std::string& callee) {
      return bookkeeping_call(callee);
    };
    policy.call_is_cleansing_decode = [](const std::string& callee) {
      return full_decode_call(callee);
    };
    // Every probe field is hostile until the full decode runs.
    policy.field_carries_taint = nullptr;

    for (const FunctionInfo& fn : find_functions(tokens)) {
      // probe_frame's own definition builds the probe; skip it.
      if (fn.name == "probe_frame") continue;
      StatementHook hook = [this, &tokens, &file, &out](
                               const StatementContext& stmt) {
        scan_sinks(stmt, tokens, file.path, out);
      };
      analyze_function(tokens, fn, policy, &hook);
    }
  }

 private:
  void scan_sinks(const StatementContext& stmt,
                  const std::vector<Token>& tokens, const std::string& path,
                  std::vector<Finding>& out) const {
    // Member assignment: `field_ = <probe-derived>` or `this->f = ...`.
    std::size_t eq = tokens.size();
    int depth = 0;
    for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth == 0 && t.text == "=") {
        eq = i;
        break;
      }
    }
    if (eq < stmt.end && eq > stmt.begin) {
      bool member_lhs = false;
      for (std::size_t i = stmt.begin; i < eq; ++i) {
        if (is_ident(tokens[i], "this") ||
            (tokens[i].kind == TokenKind::kIdentifier &&
             tokens[i].text.size() > 1 && tokens[i].text.back() == '_')) {
          member_lhs = true;
          break;
        }
      }
      if (member_lhs && stmt.range_tainted(eq + 1, stmt.end)) {
        report(path, tokens[stmt.begin].line,
               "a probe_frame-derived value is stored into replica state",
               out);
      }
    }

    // Mutation calls taking a probe-derived argument.
    for (std::size_t i = stmt.begin; i < stmt.end; ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || i + 1 >= stmt.end ||
          !is_punct(tokens[i + 1], "(")) {
        continue;
      }
      if (!mutation_call(t.text)) continue;
      const std::size_t close = find_matching_paren(tokens, i + 1);
      if (close < stmt.end && close > i + 2 &&
          stmt.range_tainted(i + 2, close)) {
        report(path, t.line,
               "a probe_frame-derived value reaches '" + t.text + "'", out);
      }
    }
  }

  void report(const std::string& path, int line, const std::string& what,
              std::vector<Finding>& out) const {
    for (const Finding& f : out) {
      if (f.path == path && f.line == line && f.rule_id == id()) return;
    }
    out.push_back(
        {path, line, std::string(id()),
         what + " without a dominating full decode; probe results are "
                "bookkeeping-only (docs/protocol.md) — decode the frame "
                "and null-check the result before mutating state"});
  }
};

}  // namespace

std::unique_ptr<Rule> make_probe_trust_rule() {
  return std::make_unique<ProbeTrustRule>();
}

}  // namespace updp2p::lint
