// Rule: shard-guard
//
// DESIGN.md §6's bit-identical-at-any-thread-count guarantee rests on
// shard-partitioned state being touched only from its owning shard (or
// under the documented lock). The PR-1 SweepPool stale-claim bug was
// exactly a cross-context access no compiler could see. This rule gives
// the convention teeth with a tiny annotation vocabulary:
//
//   // guarded-by(shard)        on a field: only functions that take the
//                               owning shard index may touch it
//   // guarded-by(mutex)        on a field: only functions that lock the
//                               named mutex (std::lock_guard/unique_lock/
//                               scoped_lock naming it) may touch it
//   // holds(shard): reason     on a function: asserts the context is
//                               held structurally (e.g. the sequential
//                               phase between rounds); the reason is
//                               mandatory, like lint-allow
//
// Annotations are collected project-wide (a header's annotation binds in
// every .cpp), accesses are checked in src/sim/ and src/net/. An access
// is in-context when the innermost function (or enclosing lambda chain)
// has a parameter matching the context (`shard`, `src_shard`,
// `shard_index`, ...), a lock statement naming the mutex appears in the
// body, a holds() assertion covers the function, or the function is a
// constructor/destructor (objects under construction are unshared).
// Bare names shadowed by a local or parameter are not field accesses.

#include <set>

#include "updp2p_lint/flow.hpp"
#include "updp2p_lint/index.hpp"
#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

bool in_shard_scope(std::string_view path) {
  return path_starts_with_any(path, {"src/sim/", "src/net/"});
}

bool param_matches_context(const std::string& name,
                           const std::string& context) {
  if (name == context) return true;
  if (name.size() > context.size() + 1 &&
      name.compare(name.size() - context.size() - 1, context.size() + 1,
                   "_" + context) == 0) {
    return true;  // src_shard, dst_shard, owner_shard
  }
  return name == context + "_index" || name == context + "_id";
}

bool is_lock_decl_ident(const Token& t) {
  return is_ident(t, "lock_guard") || is_ident(t, "unique_lock") ||
         is_ident(t, "scoped_lock") || is_ident(t, "shared_lock");
}

class ShardGuardRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "shard-guard"; }
  [[nodiscard]] std::string_view summary() const override {
    return "fields annotated // guarded-by(shard|mutex-name) may only be "
           "accessed from functions holding the matching shard index or "
           "lock (or carrying // holds(ctx): reason)";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!in_shard_scope(file.path) || file.index == nullptr) return;
    const auto& tokens = file.tokens();
    const ProjectIndex& index = *file.index;

    // Malformed holds() assertions are findings wherever they appear.
    const std::vector<HoldsAssertion>* holds = index.holds_in(file.path);
    if (holds != nullptr) {
      for (const HoldsAssertion& h : *holds) {
        if (h.reason.empty()) {
          out.push_back({file.path, h.line, std::string(id()),
                         "holds(" + h.context +
                             ") assertion without a reason; write "
                             "`// holds(" +
                             h.context + "): why the context is held`"});
        }
      }
    }

    if (index.guarded_fields().empty()) return;

    for (const FunctionInfo& fn : find_functions(tokens)) {
      if (fn.is_ctor_or_dtor) continue;
      check_function(file, index, tokens, fn, holds, out);
    }
  }

 private:
  void check_function(const FileContext& file, const ProjectIndex& index,
                      const std::vector<Token>& tokens,
                      const FunctionInfo& fn,
                      const std::vector<HoldsAssertion>* holds,
                      std::vector<Finding>& out) const {
    // Contexts asserted for the whole function by holds() comments (those
    // whose line falls just above the header or inside the body).
    std::set<std::string> asserted;
    if (holds != nullptr) {
      for (const HoldsAssertion& h : *holds) {
        if (h.reason.empty()) continue;
        if (h.line >= fn.line - 3 && h.line <= fn.body_end_line) {
          asserted.insert(h.context);
        }
      }
    }

    // Locks taken anywhere in the body (coarse: whole-function).
    std::set<std::string> locked;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (!is_lock_decl_ident(tokens[i])) continue;
      // `std::lock_guard<std::mutex> lock(impl_->mutex);` — the guarded
      // mutex names appear inside the constructor parens.
      std::size_t j = i + 1;
      int angle = 0;
      while (j < fn.body_end && !is_punct(tokens[j], "(")) {
        if (is_punct(tokens[j], "<")) ++angle;
        if (is_punct(tokens[j], ";")) break;
        ++j;
      }
      (void)angle;
      if (j >= fn.body_end || !is_punct(tokens[j], "(")) continue;
      const std::size_t close = find_matching_paren(tokens, j);
      for (std::size_t k = j + 1; k < close && k < fn.body_end; ++k) {
        if (tokens[k].kind == TokenKind::kIdentifier) {
          locked.insert(tokens[k].text);
        }
      }
    }

    // Names shadowed by locals/parameters: a bare `job` next to a local
    // `auto job = ...` is not the field.
    std::set<std::string> shadowed;
    for (const FunctionParam& p : fn.params) shadowed.insert(p.name);
    for (const LambdaInfo& lambda : fn.lambdas) {
      for (const FunctionParam& p : lambda.params) shadowed.insert(p.name);
    }
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      const Token& prev = tokens[i - 1];
      const bool decl_prefix =
          (prev.kind == TokenKind::kIdentifier && prev.text != "return") ||
          is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&");
      if (!decl_prefix) continue;
      if (i >= 2 && (is_punct(tokens[i - 2], ".") ||
                     is_punct(tokens[i - 2], "->") ||
                     is_punct(tokens[i - 2], "::"))) {
        continue;
      }
      const Token* nxt = next_token(tokens, i);
      if (nxt == nullptr) continue;
      if (is_punct(*nxt, "=") || is_punct(*nxt, ";") || is_punct(*nxt, "{") ||
          is_punct(*nxt, ":") || is_punct(*nxt, "(")) {
        shadowed.insert(t.text);
      }
    }

    // Walk every identifier in the body against the guarded-field table.
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      const auto guards = index.guards_for(t.text);
      if (guards.empty()) continue;

      const Token& prev = tokens[i - 1];
      const bool member_access =
          is_punct(prev, ".") || is_punct(prev, "->");
      if (is_punct(prev, "::")) continue;  // qualified: not a field access
      if (!member_access && shadowed.count(t.text) > 0) continue;
      // A declaration of a same-named local: `auto job = ...` is shadow
      // creation, not a field access.
      if (!member_access &&
          ((prev.kind == TokenKind::kIdentifier && !member_access) ||
           is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&"))) {
        const Token* nxt = next_token(tokens, i);
        if (nxt != nullptr &&
            (is_punct(*nxt, "=") || is_punct(*nxt, ";") ||
             is_punct(*nxt, "{") || is_punct(*nxt, "("))) {
          continue;
        }
      }

      bool ok = false;
      std::string wanted;
      for (const GuardedField* g : guards) {
        if (!wanted.empty()) wanted += "|";
        wanted += g->context;
        if (asserted.count(g->context) > 0 || locked.count(g->context) > 0) {
          ok = true;
          break;
        }
        // Parameter of the function or of any enclosing lambda.
        for (const FunctionParam& p : fn.params) {
          if (param_matches_context(p.name, g->context)) {
            ok = true;
            break;
          }
        }
        for (const LambdaInfo& lambda : fn.lambdas) {
          if (ok) break;
          if (i <= lambda.body_begin || i >= lambda.body_end) continue;
          for (const FunctionParam& p : lambda.params) {
            if (param_matches_context(p.name, g->context)) {
              ok = true;
              break;
            }
          }
        }
        if (ok) break;
      }
      if (ok) continue;

      report(file.path, t.line, t.text, wanted, out);
    }
  }

  void report(const std::string& path, int line, const std::string& field,
              const std::string& context, std::vector<Finding>& out) const {
    for (const Finding& f : out) {
      if (f.path == path && f.line == line && f.rule_id == id()) return;
    }
    out.push_back(
        {path, line, std::string(id()),
         "field '" + field + "' is guarded-by(" + context +
             ") but this function holds no matching shard index/lock; "
             "pass the owning shard (or take the lock), or assert the "
             "phase with `// holds(" +
             context + "): reason`"});
  }
};

}  // namespace

std::unique_ptr<Rule> make_shard_guard_rule() {
  return std::make_unique<ShardGuardRule>();
}

}  // namespace updp2p::lint
