// Rule: wire-bounds
//
// The PR-1 hardening: a hostile varint must never command a multi-GB
// allocation. Wire-decoded counts and peer ids have to be bounds-checked
// against kMaxWirePeerId (gossip/codec.hpp, 2^28) before they size a
// container. Scope is the decode surface: src/gossip/codec.* and src/net/.
//
// Detection: a member `.resize(...)` / `.reserve(...)` whose argument looks
// wire-derived — it dereferences an optional (`*count`, the codec's decode
// idiom) or names an identifier containing "count", "cardinality", "chunk"
// (the v2 chunked-peerset decode vocabulary), "probe"/"probed" (the
// lazy-decode entry points: probe_frame results are parsed from hostile
// bytes exactly like full decodes, so a probed length sizing a container
// needs the same bound), or "len"/"record" (the durable store's on-disk
// vocabulary: a WAL record's `len` field and a snapshot's counts are read
// from disk, and disk is hostile input — bit rot and torn writes produce
// exactly the adversarial lengths a malicious datagram would) — with no
// recognised bound token within ±12 lines. Recognised bounds are
// kMaxWirePeerId plus the chunk-level caps kMaxWireChunkKey, kArrayChunkMax
// and kChunkSpan (a chunk's declared cardinality can never exceed its id
// span), and the store-side caps kMaxWalRecordBytes / kMaxSnapshotBytes.
// Sizes that are bounded some other way (e.g. by the datagram's byte
// count) carry a lint-allow stating the bound.

#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

#include <algorithm>
#include <cctype>

namespace updp2p::lint {
namespace {

constexpr int kGuardWindowLines = 12;

bool in_wire_scope(std::string_view path) {
  // src/store/ decodes the same grammars FROM DISK — its record/snapshot
  // lengths are as hostile as a datagram's.
  return path_starts_with_any(path,
                              {"src/net/", "src/gossip/codec.", "src/store/"});
}

bool looks_wire_sized(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  // "probe"/"probed" covers the lazy-decode entry points (probe_frame and
  // friends): a probed header field is wire-derived hostile input just like
  // a fully decoded one. Deliberately NOT "frame" or "header" — those name
  // trusted local constants (kFrameHeaderBytes) all over src/net/.
  // "len"/"record" is the durable store's decode vocabulary (a WAL
  // record's length field, snapshot record counts). Deliberately NOT
  // "size" — that would match every `.size()` call in scope.
  return lower.find("count") != std::string::npos ||
         lower.find("cardinality") != std::string::npos ||
         lower.find("chunk") != std::string::npos ||
         lower.find("probe") != std::string::npos ||
         lower.find("len") != std::string::npos ||
         lower.find("record") != std::string::npos;
}

/// Identifiers accepted as evidence that a nearby size was bounds-checked.
bool is_bound_token(const Token& t) {
  return is_ident(t, "kMaxWirePeerId") || is_ident(t, "kMaxWireChunkKey") ||
         is_ident(t, "kArrayChunkMax") || is_ident(t, "kChunkSpan") ||
         is_ident(t, "kMaxWalRecordBytes") || is_ident(t, "kMaxSnapshotBytes");
}

/// A unary `*` token: preceded by nothing, an open paren/bracket, a comma,
/// an operator — i.e. not by an identifier/number/closing token (which
/// would make it binary multiplication).
bool is_unary_deref(const std::vector<Token>& tokens, std::size_t i) {
  if (!is_punct(tokens[i], "*")) return false;
  const Token* prev = prev_token(tokens, i);
  if (prev == nullptr) return true;
  if (prev->kind == TokenKind::kIdentifier ||
      prev->kind == TokenKind::kNumber) {
    return false;
  }
  return !(is_punct(*prev, ")") || is_punct(*prev, "]"));
}

class WireBoundsRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "wire-bounds"; }
  [[nodiscard]] std::string_view summary() const override {
    return "wire-decoded sizes must be checked against kMaxWirePeerId (or a "
           "stated bound) before resize/reserve in codec/net code";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!in_wire_scope(file.path)) return;
    const auto& tokens = file.tokens();

    // Lines on which a recognised bound token appears in code.
    std::vector<int> guard_lines;
    for (const Token& t : tokens) {
      if (is_bound_token(t)) guard_lines.push_back(t.line);
    }
    const auto guarded_near = [&guard_lines](int line) {
      for (const int g : guard_lines) {
        if (g >= line - kGuardWindowLines && g <= line + kGuardWindowLines) {
          return true;
        }
      }
      return false;
    };

    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier ||
          (t.text != "resize" && t.text != "reserve") ||
          !is_member_access(tokens, i)) {
        continue;
      }
      const Token* open = next_token(tokens, i);
      if (open == nullptr || !is_punct(*open, "(")) continue;
      const std::size_t open_index = i + 1;
      const std::size_t close = find_matching_paren(tokens, open_index);
      if (close >= tokens.size()) continue;

      bool wire_suspect = false;
      for (std::size_t p = open_index + 1; p < close && !wire_suspect; ++p) {
        if (is_unary_deref(tokens, p)) wire_suspect = true;
        if (tokens[p].kind == TokenKind::kIdentifier &&
            looks_wire_sized(tokens[p].text)) {
          wire_suspect = true;
        }
      }
      if (!wire_suspect || guarded_near(t.line)) continue;

      out.push_back(
          {file.path, t.line, std::string(id()),
           t.text + " sized by a wire-decoded value with no recognised "
                    "bound (kMaxWirePeerId / kMaxWireChunkKey / "
                    "kArrayChunkMax / kChunkSpan / kMaxWalRecordBytes / "
                    "kMaxSnapshotBytes) in sight; bounds-check the decoded "
                    "count/cardinality/length, or lint-allow stating "
                    "what bounds it"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_wire_bounds_rule() {
  return std::make_unique<WireBoundsRule>();
}

}  // namespace updp2p::lint
