// Rule: rng-discipline
//
// All randomness flows through common::Rng (SplitMix-seeded xoshiro-family
// engine) or common::StreamRng (counter-based Philox4x32-10, keyed by
// seed/stream/purpose — CHANGES.md PR 2). Raw standard-library engines and
// distributions anywhere else fork the randomness discipline: they are not
// counter-based, not stream-keyed, and their distributions are
// implementation-defined (libstdc++ vs libc++ produce different sequences),
// which would make "golden" numbers toolchain-dependent.
//
// Flagged everywhere except the sanctioned home, src/common/rng.{hpp,cpp}.

#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

bool is_rng_home(std::string_view path) {
  return path == "src/common/rng.hpp" || path == "src/common/rng.cpp";
}

bool is_banned_engine(std::string_view name) {
  static constexpr std::string_view kEngines[] = {
      "mt19937",      "mt19937_64",    "minstd_rand", "minstd_rand0",
      "ranlux24",     "ranlux48",      "ranlux24_base", "ranlux48_base",
      "knuth_b",      "default_random_engine",
  };
  for (const std::string_view engine : kEngines) {
    if (name == engine) return true;
  }
  return false;
}

bool is_std_distribution(std::string_view name) {
  constexpr std::string_view kSuffix = "_distribution";
  return name.size() > kSuffix.size() &&
         name.substr(name.size() - kSuffix.size()) == kSuffix;
}

class RngDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "rng-discipline";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "raw std engines/distributions outside src/common/rng.* fork the "
           "stream-keyed randomness discipline; use common::Rng/StreamRng";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (is_rng_home(file.path)) return;
    const auto& tokens = file.tokens();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || t.preproc) continue;
      // Member accesses (`obj.mt19937`) are not std uses; everything else —
      // bare or std:: qualified — counts, since `using std::mt19937` exists.
      if (is_member_access(tokens, i)) continue;
      if (is_banned_engine(t.text)) {
        out.push_back({file.path, t.line, std::string(id()),
                       "raw std engine " + t.text +
                           "; randomness must come from common::Rng / "
                           "common::StreamRng (src/common/rng.hpp)"});
      } else if (is_std_distribution(t.text)) {
        out.push_back({file.path, t.line, std::string(id()),
                       "std distribution " + t.text +
                           " is implementation-defined; use the RngOps "
                           "distribution toolkit in src/common/rng.hpp"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_rng_discipline_rule() {
  return std::make_unique<RngDisciplineRule>();
}

}  // namespace updp2p::lint
