// Rule: iteration-order
//
// Golden-feeding code (src/sim, src/gossip) must never let unordered
// container iteration order reach an accumulator, a message, or the wire:
// the order depends on the hash seed, libstdc++ version, and insertion
// history, so a range-for over an unordered_map that feeds RunMetrics or a
// codec breaks bit-identical goldens across machines without failing any
// test locally.
//
// Detection: collect the names declared as std::unordered_{map,set,
// multimap,multiset} in the file AND its companion header (foo.hpp next to
// foo.cpp — members are declared there), then flag any range-for whose
// range expression mentions one of those names or an unordered type
// directly. Order-insensitive folds (counting, summing) over unordered
// containers are legitimate — annotate them:
//   // lint-allow(iteration-order): count accumulation is order-insensitive

#include "updp2p_lint/rule.hpp"
#include "updp2p_lint/token_match.hpp"

#include <string>
#include <unordered_set>

namespace updp2p::lint {
namespace {

bool is_unordered_type(std::string_view name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

/// Skips a balanced template argument list starting at tokens[i] == "<".
/// Returns the index just past the matching ">". `>>` closes two levels.
std::size_t skip_template_args(const std::vector<Token>& tokens,
                               std::size_t i) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == "<") ++depth;
    if (tokens[i].text == ">") --depth;
    if (tokens[i].text == ">>") depth -= 2;
    if (depth <= 0 && (tokens[i].text == ">" || tokens[i].text == ">>")) {
      return i + 1;
    }
  }
  return tokens.size();
}

/// Collects identifiers declared with an unordered container type:
///   std::unordered_map<K, V> name ...
void collect_unordered_names(const std::vector<Token>& tokens,
                             std::unordered_set<std::string>& names) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        !is_unordered_type(tokens[i].text)) {
      continue;
    }
    std::size_t p = i + 1;
    if (p < tokens.size() && is_punct(tokens[p], "<")) {
      p = skip_template_args(tokens, p);
    }
    // Optional cv/ref decorations between the type and the name.
    while (p < tokens.size() &&
           (is_punct(tokens[p], "&") || is_punct(tokens[p], "*") ||
            is_ident(tokens[p], "const"))) {
      ++p;
    }
    if (p < tokens.size() && tokens[p].kind == TokenKind::kIdentifier) {
      names.insert(tokens[p].text);
    }
  }
}

class IterationOrderRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override {
    return "iteration-order";
  }
  [[nodiscard]] std::string_view summary() const override {
    return "range-for over unordered containers in golden-feeding code "
           "(src/sim, src/gossip) leaks hash-order into results";
  }

  void check(const FileContext& file, std::vector<Finding>& out) const override {
    if (!path_starts_with_any(file.path, {"src/sim/", "src/gossip/"})) return;

    std::unordered_set<std::string> unordered_names;
    collect_unordered_names(file.tokens(), unordered_names);
    collect_unordered_names(file.companion_tokens, unordered_names);

    const auto& tokens = file.tokens();
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!is_ident(tokens[i], "for") || !is_punct(tokens[i + 1], "(")) {
        continue;
      }
      const std::size_t open = i + 1;
      const std::size_t close = find_matching_paren(tokens, open);
      if (close >= tokens.size()) continue;

      // Find the range-for's top-level ':' (depth 1 relative to `open`;
      // `::` is a distinct token so namespaces cannot confuse this).
      std::size_t colon = tokens.size();
      int depth = 0;
      for (std::size_t p = open; p < close; ++p) {
        if (tokens[p].kind != TokenKind::kPunct) continue;
        const std::string_view t = tokens[p].text;
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        if (t == ":" && depth == 1) {
          colon = p;
          break;
        }
        if (t == ";") break;  // classic for loop, not a range-for
      }
      if (colon >= close) continue;

      for (std::size_t p = colon + 1; p < close; ++p) {
        const Token& t = tokens[p];
        if (t.kind != TokenKind::kIdentifier) continue;
        if (is_unordered_type(t.text) || unordered_names.contains(t.text)) {
          out.push_back(
              {file.path, tokens[i].line, std::string(id()),
               "range-for over unordered container ('" + t.text +
                   "') in golden-feeding code; iterate a sorted copy, use "
                   "an ordered container, or lint-allow with the "
                   "order-insensitivity argument"});
          break;
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_iteration_order_rule() {
  return std::make_unique<IterationOrderRule>();
}

}  // namespace updp2p::lint
