// Rule interface + per-file context for updp2p-lint.
//
// Adding a rule is one file under rules/ plus one fixture pair under
// tests/lint/fixtures/ (see docs/static-analysis.md "adding a rule"):
//   1. implement `class FooRule : public Rule` in rules/foo.cpp,
//   2. expose `std::unique_ptr<Rule> make_foo_rule();`,
//   3. register it in registry.cpp,
//   4. add a must-flag fixture and a near-miss fixture to the test table.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "updp2p_lint/lexer.hpp"

namespace updp2p::lint {

struct Finding {
  std::string path;     // repo-relative path with forward slashes
  int line = 0;         // 1-based
  std::string rule_id;  // e.g. "determinism"
  std::string message;
};

/// A parsed `lint-allow` directive from a comment:
///   // lint-allow(rule-id): reason text
/// Suppresses findings of `rule_id` on its own line and the next line, so
/// both trailing comments and a standalone comment above the code work.
/// A missing reason keeps the directive inert and is itself a finding
/// (rule `suppression-reason`).
struct Suppression {
  std::string rule_id;
  std::string reason;  // empty => malformed (no reason given)
  int line = 0;
};

class ProjectIndex;  // cross-file summaries + annotations (index.hpp)

struct FileContext {
  std::string path;   // repo-relative, forward slashes (scoping key)
  LexResult lexed;    // tokens + comments of the file itself
  std::vector<Suppression> suppressions;

  // Tokens of the companion header (foo.hpp/foo.h next to foo.cpp), when it
  // exists. Rules that need declarations — iteration-order resolves member
  // names declared in the header — look here; everything else ignores it.
  std::vector<Token> companion_tokens;

  // Set by the engine after every file is lexed, before rules run. The
  // flow-aware rules (wire-taint, probe-trust, shard-guard) read their
  // cross-file facts here; token-window rules ignore it.
  const ProjectIndex* index = nullptr;

  [[nodiscard]] const std::vector<Token>& tokens() const {
    return lexed.tokens;
  }
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view summary() const = 0;
  virtual void check(const FileContext& file,
                     std::vector<Finding>& out) const = 0;
};

/// True when `path` (repo-relative, '/'-separated) starts with any prefix.
bool path_starts_with_any(std::string_view path,
                          std::initializer_list<std::string_view> prefixes);

/// Parses all `lint-allow` directives out of a file's comments.
std::vector<Suppression> parse_suppressions(
    const std::vector<Comment>& comments);

// One factory per rule, each defined in its rules/*.cpp file.
std::unique_ptr<Rule> make_determinism_rule();
std::unique_ptr<Rule> make_rng_discipline_rule();
std::unique_ptr<Rule> make_iteration_order_rule();
std::unique_ptr<Rule> make_wire_taint_rule();
std::unique_ptr<Rule> make_probe_trust_rule();
std::unique_ptr<Rule> make_shard_guard_rule();
std::unique_ptr<Rule> make_assert_discipline_rule();
/// Validates suppression syntax; needs the registry's ids to spot typos.
std::unique_ptr<Rule> make_suppression_reason_rule(
    std::vector<std::string> known_rule_ids);

/// The full catalogue, in reporting order.
std::vector<std::unique_ptr<Rule>> make_all_rules();

}  // namespace updp2p::lint
