// Small token-stream matching helpers shared by the rules.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "updp2p_lint/lexer.hpp"

namespace updp2p::lint {

inline bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
inline bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// tokens[i - k], or nullptr off the front.
inline const Token* prev_token(const std::vector<Token>& tokens,
                               std::size_t i, std::size_t k = 1) {
  return i >= k ? &tokens[i - k] : nullptr;
}
/// tokens[i + k], or nullptr off the back.
inline const Token* next_token(const std::vector<Token>& tokens,
                               std::size_t i, std::size_t k = 1) {
  return i + k < tokens.size() ? &tokens[i + k] : nullptr;
}

/// Given `tokens[open]` == "(", returns the index of the matching ")", or
/// tokens.size() when unbalanced. Tracks (), [] and {} uniformly.
inline std::size_t find_matching_paren(const std::vector<Token>& tokens,
                                       std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    const std::string_view t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

/// True when the call at `ident_index` is a member access (`x.f`, `x->f`)
/// rather than a free or std-qualified use.
inline bool is_member_access(const std::vector<Token>& tokens,
                             std::size_t ident_index) {
  const Token* prev = prev_token(tokens, ident_index);
  return prev != nullptr &&
         (is_punct(*prev, ".") || is_punct(*prev, "->"));
}

/// True when the identifier is qualified as `std::name`.
inline bool is_std_qualified(const std::vector<Token>& tokens,
                             std::size_t ident_index) {
  const Token* colons = prev_token(tokens, ident_index);
  const Token* ns = prev_token(tokens, ident_index, 2);
  return colons != nullptr && ns != nullptr && is_punct(*colons, "::") &&
         is_ident(*ns, "std");
}

}  // namespace updp2p::lint
