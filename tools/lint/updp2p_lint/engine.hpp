// Engine: file discovery, per-file context assembly, suppression filtering
// and reporting for updp2p-lint.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "updp2p_lint/rule.hpp"

namespace updp2p::lint {

struct EngineOptions {
  std::filesystem::path root;          // repo root; scoping paths are
                                       // relative to this
  std::vector<std::string> paths;      // files or dirs, relative to root or
                                       // absolute; empty => default scan set
};

/// The directories scanned when no explicit paths are given.
inline constexpr std::string_view kDefaultScanDirs[] = {"src", "bench",
                                                        "examples"};

/// True for extensions the linter reads (.cpp/.cc/.cxx/.hpp/.hh/.h/.inl).
bool is_source_file(const std::filesystem::path& path);

/// Builds the lint context for one file: lexes it, parses suppressions and
/// lexes the companion header (same stem, .hpp/.hh/.h) when one exists.
/// `rel_path` is the '/'-separated path used for rule scoping.
FileContext make_file_context(const std::filesystem::path& file,
                              std::string rel_path);

struct RunResult {
  std::vector<Finding> findings;  // post-suppression, sorted
  int files_scanned = 0;
  int files_with_findings = 0;
};

/// Scans, runs every registered rule, applies valid suppressions, sorts.
/// Throws std::runtime_error on unreadable paths.
RunResult run(const EngineOptions& options);

/// Prints findings as `path:line: rule-id: message`, one per line.
void report(const RunResult& result, std::ostream& out);

}  // namespace updp2p::lint
