#include "updp2p_lint/index.hpp"

#include <utility>

#include "updp2p_lint/flow.hpp"
#include "updp2p_lint/token_match.hpp"

namespace updp2p::lint {
namespace {

/// Wire bound identifiers recognised project-wide (the caps the codec,
/// WAL and snapshot formats define). Shared with the wire-taint rule.
bool wire_bound_token(const Token& t) {
  return is_ident(t, "kMaxWirePeerId") || is_ident(t, "kMaxWireChunkKey") ||
         is_ident(t, "kArrayChunkMax") || is_ident(t, "kChunkSpan") ||
         is_ident(t, "kMaxWalRecordBytes") || is_ident(t, "kMaxSnapshotBytes");
}

/// Extracts `name(args...)` out of an annotation comment's text at `at`
/// (just past the marker). Returns the parenthesised payload, or "".
std::string paren_payload(std::string_view text, std::size_t at) {
  std::size_t p = at;
  while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
  if (p >= text.size() || text[p] != '(') return {};
  const std::size_t close = text.find(')', p);
  if (close == std::string_view::npos) return {};
  std::string payload(text.substr(p + 1, close - p - 1));
  while (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
  while (!payload.empty() && payload.back() == ' ') payload.pop_back();
  return payload;
}

/// The field name of the declaration at/after `line`: last identifier
/// before the first of `;` / `=` / `{` / `[` among tokens on that line
/// (trailing annotation) or the first following line with tokens.
std::string field_name_at(const std::vector<Token>& tokens, int line) {
  // Prefer tokens on the annotation's own line (trailing comment).
  for (const int target : {line, 0}) {
    std::string name;
    bool on_line = false;
    for (const Token& t : tokens) {
      if (target != 0) {
        if (t.line != target) continue;
      } else {
        if (t.line <= line) continue;  // the next declaration below
      }
      on_line = true;
      if (t.kind == TokenKind::kPunct &&
          (t.text == ";" || t.text == "=" || t.text == "{" ||
           t.text == "[")) {
        return name;
      }
      if (t.kind == TokenKind::kIdentifier) name = t.text;
    }
    if (on_line && !name.empty()) return name;
    if (target == 0) break;
  }
  return {};
}

}  // namespace

ProjectIndex ProjectIndex::build(const std::vector<FileContext>& files) {
  ProjectIndex index;

  // --- annotation tables ---------------------------------------------------
  for (const FileContext& file : files) {
    for (const Comment& comment : file.lexed.comments) {
      const std::string_view text = comment.text;
      std::size_t at = text.find("guarded-by");
      if (at != std::string_view::npos) {
        const std::string ctx =
            paren_payload(text, at + std::string_view("guarded-by").size());
        if (!ctx.empty()) {
          const std::string field =
              field_name_at(file.tokens(), comment.line);
          if (!field.empty()) {
            index.guarded_fields_.push_back(
                GuardedField{field, ctx, file.path, comment.line});
          }
        }
      }
      at = text.find("holds");
      if (at != std::string_view::npos) {
        const std::string ctx =
            paren_payload(text, at + std::string_view("holds").size());
        if (!ctx.empty()) {
          std::string reason;
          const std::size_t close = text.find(')', at);
          if (close != std::string_view::npos) {
            std::size_t r = close + 1;
            while (r < text.size() && (text[r] == ' ' || text[r] == '\t')) {
              ++r;
            }
            if (r < text.size() && text[r] == ':') {
              ++r;
              while (r < text.size() &&
                     (text[r] == ' ' || text[r] == '\t')) {
                ++r;
              }
              reason = std::string(text.substr(r));
              while (!reason.empty() &&
                     (reason.back() == ' ' || reason.back() == '\r')) {
                reason.pop_back();
              }
            }
          }
          index.holds_by_path_[file.path].push_back(
              HoldsAssertion{ctx, reason, comment.line});
        }
      }
    }
  }

  // --- function summaries (fixpoint) ---------------------------------------
  struct Indexed {
    const FileContext* file;
    FunctionInfo fn;
  };
  std::vector<Indexed> functions;
  for (const FileContext& file : files) {
    for (FunctionInfo& fn : find_functions(file.tokens())) {
      if (fn.name == "main" || fn.is_ctor_or_dtor) continue;
      functions.push_back(Indexed{&file, std::move(fn)});
    }
  }

  // The summary policy deliberately does NOT name-seed parameters: a
  // helper taking a `count` is only wire-derived if hostile bytes
  // actually flow into its return value, otherwise every call site with
  // a clean argument would be poisoned.
  for (int round = 0; round < 6; ++round) {
    bool changed = false;
    for (const Indexed& entry : functions) {
      TaintPolicy policy;
      policy.byte_buffer_subscript_is_source = true;
      policy.is_bound_token = wire_bound_token;
      policy.call_returns_taint = [&index](const std::string& callee) {
        return index.returns_wire_derived(callee);
      };
      policy.call_validates_arg = [&index](const std::string& callee,
                                           std::size_t arg) {
        return index.validates_arg(callee, arg);
      };
      policy.call_asserts_arg = [&index](const std::string& callee,
                                         std::size_t arg) {
        return index.asserts_arg(callee, arg);
      };

      const FunctionAnalysisResult result =
          analyze_function(entry.file->tokens(), entry.fn, policy, nullptr);
      FunctionSummary& summary = index.summaries_[entry.fn.name];
      if (result.returns_tainted && !summary.returns_wire_derived) {
        summary.returns_wire_derived = true;
        changed = true;
      }
      for (const std::size_t k : result.validated_params) {
        changed |= summary.validated_params.insert(k).second;
      }
      for (const std::size_t k : result.asserted_params) {
        changed |= summary.asserted_params.insert(k).second;
      }
    }
    if (!changed) break;
  }
  return index;
}

bool ProjectIndex::returns_wire_derived(const std::string& fn) const {
  const auto it = summaries_.find(fn);
  return it != summaries_.end() && it->second.returns_wire_derived;
}

bool ProjectIndex::validates_arg(const std::string& fn,
                                 std::size_t arg) const {
  const auto it = summaries_.find(fn);
  return it != summaries_.end() && it->second.validated_params.count(arg) > 0;
}

bool ProjectIndex::asserts_arg(const std::string& fn, std::size_t arg) const {
  const auto it = summaries_.find(fn);
  return it != summaries_.end() && it->second.asserted_params.count(arg) > 0;
}

std::vector<const GuardedField*> ProjectIndex::guards_for(
    const std::string& field) const {
  std::vector<const GuardedField*> out;
  for (const GuardedField& g : guarded_fields_) {
    if (g.field == field) out.push_back(&g);
  }
  return out;
}

const std::vector<HoldsAssertion>* ProjectIndex::holds_in(
    const std::string& path) const {
  const auto it = holds_by_path_.find(path);
  return it == holds_by_path_.end() ? nullptr : &it->second;
}

}  // namespace updp2p::lint
