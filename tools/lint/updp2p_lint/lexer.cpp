#include "updp2p_lint/lexer.hpp"

#include <cctype>

namespace updp2p::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// True when the newline at `at` is spliced away by a preceding backslash
/// (translation phase 2). Tolerates the `\<whitespace><newline>` and
/// `\<CR><LF>` forms GCC and Clang accept: a continuation that shifted the
/// following lines' diagnostics (or dropped their preproc flag) would make
/// every downstream rule report the wrong place.
bool is_spliced_newline(std::string_view source, std::size_t at) {
  std::size_t b = at;
  while (b > 0 && (source[b - 1] == '\r' || source[b - 1] == ' ' ||
                   source[b - 1] == '\t')) {
    --b;
  }
  return b > 0 && source[b - 1] == '\\';
}

/// Multi-character punctuators we keep intact. Only the ones rules care
/// about need to be exact; everything else may split into single chars.
/// `::` matters most: if it split into two `:` tokens the range-for rule
/// could mistake `std::foo` for the loop's range colon.
bool starts_punct2(std::string_view s) {
  static constexpr std::string_view kTwo[] = {
      "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
      "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
  };
  if (s.size() < 2) return false;
  const std::string_view head = s.substr(0, 2);
  for (const std::string_view p : kTwo) {
    if (head == p) return true;
  }
  return false;
}

}  // namespace

LexResult lex(std::string_view source) {
  LexResult result;
  std::size_t i = 0;
  const std::size_t n = source.size();
  int line = 1;
  bool at_line_start = true;   // only whitespace seen on this line so far
  bool preproc_line = false;   // inside a (possibly continued) # directive

  const auto advance_newline = [&] {
    ++line;
    at_line_start = true;
    // A backslash-continued directive stays a directive; `preproc_line` is
    // cleared by the newline handler below unless the caller saw a `\`.
  };

  while (i < n) {
    const char c = source[i];

    if (c == '\n') {
      // Line continuations keep preprocessor state alive across lines.
      const bool continued = is_spliced_newline(source, i);
      if (!continued) preproc_line = false;
      advance_newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Comments. A `//` comment whose line ends in a backslash splices into
    // the next physical line (phase-2 splicing happens before comment
    // recognition), so keep consuming — and keep counting lines — or every
    // diagnostic after it lands one line early and the spliced code line is
    // wrongly lexed as tokens.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      i += 2;
      std::size_t begin = i;
      while (i < n) {
        if (source[i] == '\n') {
          if (!is_spliced_newline(source, i)) break;
          advance_newline();
        }
        ++i;
      }
      result.comments.push_back(
          Comment{std::string(source.substr(begin, i - begin)), start_line});
      at_line_start = false;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      i += 2;
      std::size_t begin = i;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') advance_newline();
        ++i;
      }
      const std::size_t end = (i + 1 < n) ? i : n;
      result.comments.push_back(
          Comment{std::string(source.substr(begin, end - begin)), start_line});
      i = (i + 1 < n) ? i + 2 : n;
      at_line_start = false;
      continue;
    }

    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      preproc_line = true;
      result.tokens.push_back(Token{TokenKind::kPunct, "#", line, true});
      at_line_start = false;
      ++i;
      continue;
    }

    // Raw string literal: optional encoding prefix already consumed as part
    // of the identifier path below would be wrong, so detect R"( here with
    // lookahead for u8R / uR / UR / LR prefixes.
    {
      std::size_t p = i;
      if (p < n && (source[p] == 'u' || source[p] == 'U' || source[p] == 'L')) {
        if (source[p] == 'u' && p + 1 < n && source[p + 1] == '8') ++p;
        ++p;
      }
      if (p < n && source[p] == 'R' && p + 1 < n && source[p + 1] == '"') {
        const int start_line = line;
        p += 2;  // past R"
        std::size_t d_begin = p;
        while (p < n && source[p] != '(') {
          if (source[p] == '\n') advance_newline();  // malformed delimiter
          ++p;
        }
        std::string delim;
        delim.reserve(p - d_begin + 2);
        delim.push_back(')');
        delim.append(source.substr(d_begin, p - d_begin));
        delim.push_back('"');
        if (p < n) ++p;  // past (
        // Scan for )delim"
        while (p < n && source.compare(p, delim.size(), delim) != 0) {
          if (source[p] == '\n') advance_newline();
          ++p;
        }
        p = (p < n) ? p + delim.size() : n;
        result.tokens.push_back(Token{TokenKind::kString,
                                      std::string(source.substr(i, p - i)),
                                      start_line, preproc_line});
        i = p;
        at_line_start = false;
        continue;
      }
    }

    // String / char literals (with optional encoding prefix handled by the
    // identifier branch: u8"x" lexes prefix as identifier first — avoid that
    // by peeking for a quote right after a 1-2 char prefix).
    if (c == '"' || c == '\'' ||
        (is_ident_start(c) && i + 2 < n &&
         ((source[i + 1] == '"' || source[i + 1] == '\'') &&
          (c == 'u' || c == 'U' || c == 'L')))) {
      std::size_t p = i;
      if (source[p] != '"' && source[p] != '\'') ++p;  // skip prefix char
      const char quote = source[p];
      const int start_line = line;
      ++p;
      while (p < n && source[p] != quote) {
        if (source[p] == '\\' && p + 1 < n) {
          ++p;  // skip escaped char
          // A backslash-newline splice inside a literal (long #define
          // strings) is still a physical line: count it or every
          // diagnostic below the literal shifts up.
          if (source[p] == '\n') {
            advance_newline();
          } else if (source[p] == '\r' && p + 1 < n && source[p + 1] == '\n') {
            ++p;
            advance_newline();
          }
        } else if (source[p] == '\n') {
          advance_newline();  // unterminated; be forgiving
        }
        ++p;
      }
      p = (p < n) ? p + 1 : n;
      result.tokens.push_back(
          Token{quote == '"' ? TokenKind::kString : TokenKind::kChar,
                std::string(source.substr(i, p - i)), start_line,
                preproc_line});
      i = p;
      at_line_start = false;
      continue;
    }

    // u8 prefix before a quote ("u8" then '"').
    if (c == 'u' && i + 3 < n && source[i + 1] == '8' &&
        (source[i + 2] == '"' || source[i + 2] == '\'')) {
      // Re-enter the loop at the quote with the prefix folded in: simplest
      // is to lex from the quote and prepend.
      const std::size_t save = i;
      i += 2;
      // Fall through by looping once more would lose the prefix; lex here.
      const char quote = source[i];
      const int start_line = line;
      std::size_t p = i + 1;
      while (p < n && source[p] != quote) {
        if (source[p] == '\\' && p + 1 < n) {
          ++p;
          if (source[p] == '\n') advance_newline();
        } else if (source[p] == '\n') {
          advance_newline();
        }
        ++p;
      }
      p = (p < n) ? p + 1 : n;
      result.tokens.push_back(
          Token{quote == '"' ? TokenKind::kString : TokenKind::kChar,
                std::string(source.substr(save, p - save)), start_line,
                preproc_line});
      i = p;
      at_line_start = false;
      continue;
    }

    // Identifiers / keywords.
    if (is_ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && is_ident_char(source[p])) ++p;
      result.tokens.push_back(Token{TokenKind::kIdentifier,
                                    std::string(source.substr(i, p - i)), line,
                                    preproc_line});
      i = p;
      at_line_start = false;
      continue;
    }

    // Numbers (pp-number is permissive: digits, idents, ', and exponent
    // signs; good enough since rules never inspect numeric values).
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(source[i + 1]))) {
      std::size_t p = i + 1;
      while (p < n &&
             (is_ident_char(source[p]) || source[p] == '\'' ||
              source[p] == '.' ||
              ((source[p] == '+' || source[p] == '-') &&
               (source[p - 1] == 'e' || source[p - 1] == 'E' ||
                source[p - 1] == 'p' || source[p - 1] == 'P')))) {
        ++p;
      }
      result.tokens.push_back(Token{TokenKind::kNumber,
                                    std::string(source.substr(i, p - i)), line,
                                    preproc_line});
      i = p;
      at_line_start = false;
      continue;
    }

    // Punctuation.
    {
      const std::string_view rest = source.substr(i);
      std::size_t len = starts_punct2(rest) ? 2 : 1;
      // `->*` and `<=>` and `...` degrade gracefully to 2+1 or 1+1+1 tokens.
      result.tokens.push_back(Token{TokenKind::kPunct,
                                    std::string(rest.substr(0, len)), line,
                                    preproc_line});
      i += len;
      at_line_start = false;
      continue;
    }
  }

  result.line_count = line;
  return result;
}

}  // namespace updp2p::lint
