// Cross-file symbol index for updp2p-lint.
//
// Built once per run over every scanned file, before rules fire. Holds:
//   - per-function taint summaries, computed to a fixpoint with the flow
//     engine: "returns wire-derived data" (reads raw bytes out of a
//     byte-buffer parameter, or returns the result of a function that
//     does — this is how taint survives `decode_varint` -> `resize`),
//     and "validates/asserts its argument" (guards a parameter against a
//     recognised bound with an early exit or UPDP2P_ENSURE);
//   - the shard-guard annotation tables: `// guarded-by(ctx)` fields and
//     `// holds(ctx): reason` function assertions, so a field annotated
//     in a header is enforced in every translation unit that touches it.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "updp2p_lint/rule.hpp"

namespace updp2p::lint {

struct FunctionSummary {
  bool returns_wire_derived = false;
  std::set<std::size_t> validated_params;  // in-bounds iff call returns truthy
  std::set<std::size_t> asserted_params;   // in-bounds after any call
};

/// A `// guarded-by(ctx)` annotation bound to the field it precedes (or
/// trails on the same line).
struct GuardedField {
  std::string field;    // field identifier, e.g. "aware_" or "job"
  std::string context;  // "shard" or a mutex/lock variable name
  std::string path;     // file that declares (and annotates) the field
  int line = 0;         // line of the field declaration
};

/// A `// holds(ctx): reason` capability assertion bound to a function.
struct HoldsAssertion {
  std::string context;
  std::string reason;  // empty = malformed (shard-guard flags it)
  int line = 0;
};

class ProjectIndex {
 public:
  /// Builds the index over all scanned files. Summaries iterate to a
  /// fixpoint so taint flows through call chains of any depth.
  static ProjectIndex build(const std::vector<FileContext>& files);

  [[nodiscard]] bool returns_wire_derived(const std::string& fn) const;
  [[nodiscard]] bool validates_arg(const std::string& fn,
                                   std::size_t arg) const;
  [[nodiscard]] bool asserts_arg(const std::string& fn, std::size_t arg) const;

  [[nodiscard]] const std::vector<GuardedField>& guarded_fields() const {
    return guarded_fields_;
  }
  /// Guard contexts for a field name ("" when the field is unannotated).
  [[nodiscard]] std::vector<const GuardedField*> guards_for(
      const std::string& field) const;

  /// holds() assertions declared in `path` (keyed by comment line).
  [[nodiscard]] const std::vector<HoldsAssertion>* holds_in(
      const std::string& path) const;

 private:
  std::map<std::string, FunctionSummary> summaries_;
  std::vector<GuardedField> guarded_fields_;
  std::map<std::string, std::vector<HoldsAssertion>> holds_by_path_;
};

}  // namespace updp2p::lint
