// Known-findings baseline for updp2p-lint.
//
// A baseline file lists findings that are accepted for now, one per line:
//
//     rule-id path:line
//
// `#` starts a comment; blank lines are ignored. `--baseline FILE`
// suppresses exactly the listed findings. Every entry must still match a
// live finding — a stale entry (the finding was fixed, or the code
// moved) is an error, so the baseline can only shrink, never silently
// rot. Regenerate with `--write-baseline FILE` (or
// `scripts/verify.sh --update-lint-baseline`).
#pragma once

#include <string>
#include <vector>

#include "updp2p_lint/engine.hpp"

namespace updp2p::lint {

struct BaselineEntry {
  std::string rule_id;
  std::string path;
  int line = 0;
  int source_line = 0;  // line in the baseline file (for diagnostics)
};

struct Baseline {
  std::vector<BaselineEntry> entries;
  std::vector<std::string> malformed;  // unparseable lines (verbatim)
};

/// Parses baseline text. Never throws; bad lines land in `malformed`.
Baseline parse_baseline(const std::string& text);

/// Removes findings matched by the baseline (in place). Returns the
/// entries that matched nothing — stale, and an error for the caller.
std::vector<BaselineEntry> apply_baseline(const Baseline& baseline,
                                          std::vector<Finding>& findings);

/// Serialises findings in baseline format (sorted, with a header).
std::string format_baseline(const std::vector<Finding>& findings);

}  // namespace updp2p::lint
