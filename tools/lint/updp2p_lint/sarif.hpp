// SARIF 2.1.0 emitter for updp2p-lint findings.
//
// Hand-rolled JSON (the repo has no JSON dependency): one run, one tool
// driver carrying the full rule catalogue, one result per finding with
// ruleId / level / message.text / physicalLocation{artifactLocation.uri,
// region.startLine}. scripts/check_lint_baseline.py validates the shape
// in the verify lint leg.
#pragma once

#include <string>
#include <vector>

#include "updp2p_lint/engine.hpp"

namespace updp2p::lint {

struct SarifRule {
  std::string id;
  std::string summary;
};

/// Serialises findings as a SARIF 2.1.0 document (UTF-8, trailing \n).
std::string to_sarif(const std::vector<Finding>& findings,
                     const std::vector<SarifRule>& rules);

/// The registered rule catalogue as SARIF rule descriptors.
std::vector<SarifRule> sarif_rule_catalogue();

}  // namespace updp2p::lint
