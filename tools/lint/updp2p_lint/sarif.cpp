#include "updp2p_lint/sarif.hpp"

#include <cstdio>
#include <sstream>

namespace updp2p::lint {
namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<SarifRule> sarif_rule_catalogue() {
  std::vector<SarifRule> rules;
  for (const auto& rule : make_all_rules()) {
    rules.push_back(
        SarifRule{std::string(rule->id()), std::string(rule->summary())});
  }
  return rules;
}

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::vector<SarifRule>& rules) {
  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"updp2p-lint\",\n"
         "          \"informationUri\": \"docs/static-analysis.md\",\n"
         "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(rules[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
           "          \"ruleId\": \""
        << json_escape(f.rule_id)
        << "\",\n"
           "          \"level\": \"error\",\n"
           "          \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"},\n"
           "          \"locations\": [\n"
           "            {\n"
           "              \"physicalLocation\": {\n"
           "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.path)
        << "\", \"uriBaseId\": \"SRCROOT\"},\n"
           "                \"region\": {\"startLine\": "
        << f.line
        << "}\n"
           "              }\n"
           "            }\n"
           "          ]\n"
           "        }"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

}  // namespace updp2p::lint
