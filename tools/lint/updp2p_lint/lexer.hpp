// Token-aware lexing for updp2p-lint.
//
// The linter never wants to see the inside of a comment, a string literal,
// a char literal, or a raw string: `"steady_clock"` in a log message is not
// a determinism violation. This lexer walks the source once and produces
//   * a token stream of code-only tokens (identifiers, numbers, punctuation),
//   * the comment list (so suppression directives can be parsed), and
//   * a per-token flag for preprocessor lines (rules skip `#include <ctime>`).
//
// It is deliberately not a C++ parser — rules pattern-match over tokens.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace updp2p::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords, including `for`, `assert`, ...
  kNumber,      // numeric literals (pp-number: 0x1F, 1'000, 1.5e3, ...)
  kString,      // string literal, including raw strings; text is the literal
  kChar,        // character literal
  kPunct,       // one punctuator; `::` is a single token, `:` another
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;          // 1-based line of the token's first character
  bool preproc = false;  // token sits on a preprocessor-directive line
};

struct Comment {
  std::string text;  // body without the // or /* */ markers
  int line = 0;      // 1-based line where the comment starts
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int line_count = 0;
};

/// Lexes `source`. Never fails: unterminated constructs consume to EOF.
LexResult lex(std::string_view source);

}  // namespace updp2p::lint
