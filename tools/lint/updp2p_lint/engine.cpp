#include "updp2p_lint/engine.hpp"

#include "updp2p_lint/index.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace updp2p::lint {

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("updp2p-lint: cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

std::string to_generic(const fs::path& path) {
  return path.generic_string();
}

/// Paths never scanned even when a scan dir nests them (build trees).
bool is_skipped_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name.starts_with("build") || name == ".git";
}

void collect_files(const fs::path& at, std::vector<fs::path>& out) {
  if (fs::is_regular_file(at)) {
    if (is_source_file(at)) out.push_back(at);
    return;
  }
  if (!fs::is_directory(at)) {
    throw std::runtime_error("updp2p-lint: no such file or directory: " +
                             at.string());
  }
  for (fs::recursive_directory_iterator it(at), end; it != end; ++it) {
    if (it->is_directory() && is_skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && is_source_file(it->path())) {
      out.push_back(it->path());
    }
  }
}

}  // namespace

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".hh" || ext == ".h" || ext == ".inl";
}

FileContext make_file_context(const fs::path& file, std::string rel_path) {
  FileContext context;
  context.path = std::move(rel_path);
  context.lexed = lex(read_file(file));
  context.suppressions = parse_suppressions(context.lexed.comments);

  // Companion header: foo.cpp picks up foo.hpp/.hh/.h beside it so rules
  // can see member declarations (the iteration-order rule needs them).
  const std::string ext = file.extension().string();
  if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
    for (const char* header_ext : {".hpp", ".hh", ".h"}) {
      fs::path header = file;
      header.replace_extension(header_ext);
      if (fs::is_regular_file(header)) {
        context.companion_tokens = lex(read_file(header)).tokens;
        break;
      }
    }
  }
  return context;
}

RunResult run(const EngineOptions& options) {
  std::vector<fs::path> files;
  if (options.paths.empty()) {
    for (const std::string_view dir : kDefaultScanDirs) {
      const fs::path at = options.root / dir;
      if (fs::is_directory(at)) collect_files(at, files);
    }
  } else {
    for (const std::string& given : options.paths) {
      fs::path at(given);
      if (at.is_relative()) at = options.root / at;
      collect_files(at, files);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const auto rules = make_all_rules();
  const fs::path root = fs::weakly_canonical(options.root);

  // Pass 1: lex everything. The cross-file index (function taint
  // summaries, guarded-by annotations) must see every file before any
  // rule runs — a header's annotation constrains another file's code.
  RunResult result;
  std::vector<FileContext> contexts;
  contexts.reserve(files.size());
  for (const fs::path& file : files) {
    const fs::path canonical = fs::weakly_canonical(file);
    std::string rel = to_generic(canonical.lexically_relative(root));
    if (rel.empty() || rel.starts_with("..")) {
      rel = to_generic(canonical);  // outside root: scope by absolute path
    }
    contexts.push_back(make_file_context(file, std::move(rel)));
    ++result.files_scanned;
  }
  const ProjectIndex index = ProjectIndex::build(contexts);

  // Pass 2: rules.
  std::set<std::string> files_flagged;
  for (FileContext& context : contexts) {
    context.index = &index;

    std::vector<Finding> raw;
    for (const auto& rule : rules) rule->check(context, raw);

    // A valid suppression (known rule + reason) covers its own line and the
    // next line. Malformed suppressions never suppress — the
    // suppression-reason rule has already flagged them.
    for (Finding& finding : raw) {
      const bool suppressed = std::any_of(
          context.suppressions.begin(), context.suppressions.end(),
          [&finding](const Suppression& s) {
            return !s.reason.empty() && s.rule_id == finding.rule_id &&
                   (finding.line == s.line || finding.line == s.line + 1);
          });
      if (!suppressed) {
        files_flagged.insert(finding.path);
        result.findings.push_back(std::move(finding));
      }
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule_id < b.rule_id;
            });
  result.files_with_findings = static_cast<int>(files_flagged.size());
  return result;
}

void report(const RunResult& result, std::ostream& out) {
  for (const Finding& finding : result.findings) {
    out << finding.path << ':' << finding.line << ": " << finding.rule_id
        << ": " << finding.message << '\n';
  }
}

}  // namespace updp2p::lint
