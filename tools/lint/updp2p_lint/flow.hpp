// Flow analysis for updp2p-lint: function extraction, a structured
// statement walker, and an intra-procedural taint dataflow over it.
//
// There is no libclang here. The repo's own style rules (clang-format,
// no macros hiding braces, early-exit guards) keep the code structured
// enough that a token-level statement tree is faithful: `if`/`else`,
// loops and `switch` are walked as a tree, everything else is a simple
// statement. Dataflow facts are per-variable-name: Clean, Tainted
// (wire/disk-derived hostile input) and Bounded (a dominating comparison
// against a recognised cap or `bytes.size()` was passed on this path).
//
// Rules parameterise the analysis with a TaintPolicy (what seeds taint,
// what bounds it, what cleanses it) and observe every simple statement
// through a hook that can ask "is this token range tainted right now?".
// Cross-call facts (returns-wire-derived, bounds-its-argument) come from
// the ProjectIndex via the policy callbacks.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "updp2p_lint/lexer.hpp"

namespace updp2p::lint {

struct FunctionParam {
  std::string name;
  std::string type_text;  // declaration tokens minus the name, space-joined
};

/// A lambda nested in a function body (token indices into the same stream).
struct LambdaInfo {
  std::vector<FunctionParam> params;
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}'
};

struct FunctionInfo {
  std::string name;        // unqualified
  std::string class_name;  // `Foo` for Foo::bar definitions / in-class defs
  bool is_ctor_or_dtor = false;
  std::vector<FunctionParam> params;
  std::size_t body_begin = 0;  // token index of the body '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  int line = 0;                // line of the function name token
  int body_end_line = 0;
  std::vector<LambdaInfo> lambdas;  // all lambdas in the body, any depth
};

/// Extracts every function definition (free, member, qualified member)
/// from a lexed token stream. Heuristic but tuned for this repo's style;
/// a missed function is an unanalysed function, never a crash.
std::vector<FunctionInfo> find_functions(const std::vector<Token>& tokens);

/// What a rule plugs into the dataflow. Any callback may be null (= no).
struct TaintPolicy {
  // Parameter / uninitialised-local names that are born tainted
  // (the wire vocabulary: count, cardinality, chunk, probe, len, record).
  std::function<bool(const std::string& name)> name_seeds_taint;
  // Calls whose result is hostile input (per-function summaries:
  // decode_varint & friends, probe_frame).
  std::function<bool(const std::string& callee)> call_returns_taint;
  // Calls whose result is trusted AND whose arguments do not leak taint
  // into the result (read-only bookkeeping: contains/count/knows_*).
  std::function<bool(const std::string& callee)> call_result_clean;
  // Calls that are a *full decode*: once their result is null-checked with
  // an early exit, all taint in scope is considered validated.
  std::function<bool(const std::string& callee)> call_is_cleansing_decode;
  // f(x) returns truthy only when arg k passed a bound check (summary).
  std::function<bool(const std::string& callee, std::size_t arg)>
      call_validates_arg;
  // f(x) aborts/throws unless arg k is in bounds (UPDP2P_ENSURE guards).
  std::function<bool(const std::string& callee, std::size_t arg)>
      call_asserts_arg;
  // Identifiers accepted as a bound in comparisons (kMaxWirePeerId, ...).
  // `.size()` calls and identifiers containing "max"/"remaining" are
  // always accepted in addition to this.
  std::function<bool(const Token& t)> is_bound_token;
  // `*opt` where `opt` has an optional-ish declared type is a source.
  bool deref_optional_is_source = false;
  // `bytes[i]` where `bytes` is a byte-buffer is a source.
  bool byte_buffer_subscript_is_source = false;
  // `v.field` with `v` tainted stays tainted only if this returns true
  // (null = every field carries the taint).
  std::function<bool(const std::string& field)> field_carries_taint;
};

/// Passed to the statement hook: the statement's token range plus an
/// oracle over the *current* dataflow environment.
struct StatementContext {
  const std::vector<Token>& tokens;
  std::size_t begin;  // first token of the statement
  std::size_t end;    // one past the last token (excludes the ';')
  // True when any value in tokens[b, e) is tainted and not bounded here.
  std::function<bool(std::size_t b, std::size_t e)> range_tainted;
};

using StatementHook = std::function<void(const StatementContext&)>;

/// Per-function summary facts computed as a by-product of the walk.
struct FunctionAnalysisResult {
  bool returns_tainted = false;          // some `return expr;` was tainted
  std::vector<std::size_t> validated_params;  // bounded via early-exit guard
  std::vector<std::size_t> asserted_params;   // bounded via ENSURE/throw
};

/// Runs the taint walk over one function body. `hook` (nullable) fires
/// once per simple statement, guards already applied.
FunctionAnalysisResult analyze_function(const std::vector<Token>& tokens,
                                        const FunctionInfo& fn,
                                        const TaintPolicy& policy,
                                        const StatementHook* hook);

/// Shared vocabulary helpers.
std::string to_lower(std::string_view text);
bool wire_vocab_name(std::string_view name);  // count/cardinality/chunk/...
bool optional_like_type(std::string_view type_text);
bool byte_buffer_type(std::string_view type_text);

}  // namespace updp2p::lint
