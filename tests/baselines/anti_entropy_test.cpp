#include "baselines/anti_entropy.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace updp2p::baselines {
namespace {

std::unique_ptr<churn::ChurnModel> full_availability(std::size_t population) {
  return std::make_unique<churn::StaticChurn>(population, 1.0);
}

TEST(AntiEntropy, ConvergesWithEveryoneOnline) {
  AntiEntropyConfig config;
  config.population = 50;
  config.seed = 1;
  AntiEntropySystem system(config, full_availability(50));
  const auto metrics = system.propagate_until_consistent(100);
  EXPECT_DOUBLE_EQ(metrics.final_aware_fraction, 1.0);
  EXPECT_GT(metrics.rounds, 0u);
  EXPECT_LT(metrics.rounds, 30u);  // O(log N) epidemic spread
  EXPECT_GE(metrics.values_transferred, 49u);  // each peer got it once
}

TEST(AntiEntropy, PushPullConvergesFasterThanPull) {
  common::RunningStats pull_rounds, pushpull_rounds;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AntiEntropyConfig config;
    config.population = 100;
    config.seed = seed;
    config.push_pull = false;
    AntiEntropySystem pull_system(config, full_availability(100));
    pull_rounds.add(static_cast<double>(
        pull_system.propagate_until_consistent(200).rounds));
    config.push_pull = true;
    AntiEntropySystem pushpull_system(config, full_availability(100));
    pushpull_rounds.add(static_cast<double>(
        pushpull_system.propagate_until_consistent(200).rounds));
  }
  EXPECT_LT(pushpull_rounds.mean(), pull_rounds.mean());
}

TEST(AntiEntropy, ConvergesUnderChurn) {
  AntiEntropyConfig config;
  config.population = 80;
  config.seed = 3;
  auto churn = std::make_unique<churn::SessionChurn>(80, 10.0, 20.0);
  AntiEntropySystem system(config, std::move(churn));
  const auto metrics = system.propagate_until_consistent(400);
  // With churn, convergence among ALL peers (incl. currently offline ones)
  // still happens because offline peers sync when they return.
  EXPECT_GT(metrics.final_aware_fraction, 0.99);
}

TEST(AntiEntropy, MorePartnersFewerRounds) {
  AntiEntropyConfig one;
  one.population = 100;
  one.partners_per_round = 1;
  one.seed = 4;
  AntiEntropyConfig three = one;
  three.partners_per_round = 3;
  AntiEntropySystem system_one(one, full_availability(100));
  AntiEntropySystem system_three(three, full_availability(100));
  const auto m1 = system_one.propagate_until_consistent(200);
  const auto m3 = system_three.propagate_until_consistent(200);
  EXPECT_LE(m3.rounds, m1.rounds);
}

TEST(AntiEntropy, AwareFractionBeforeSeedIsZero) {
  AntiEntropyConfig config;
  config.population = 10;
  AntiEntropySystem system(config, full_availability(10));
  EXPECT_DOUBLE_EQ(system.aware_fraction(), 0.0);
}

TEST(AntiEntropy, StoreAccessor) {
  AntiEntropyConfig config;
  config.population = 10;
  AntiEntropySystem system(config, full_availability(10));
  (void)system.propagate_until_consistent(50);
  std::size_t holding = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (system.store(common::PeerId(i)).read("item").has_value()) ++holding;
  }
  EXPECT_EQ(holding, 10u);
}

}  // namespace
}  // namespace updp2p::baselines
