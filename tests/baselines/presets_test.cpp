#include "baselines/presets.hpp"

#include <gtest/gtest.h>

namespace updp2p::baselines {
namespace {

TEST(Presets, GnutellaIsFloodingWithoutList) {
  const auto scheme = gnutella(10'000, 4, /*ttl=*/7);
  EXPECT_EQ(scheme.name, "Gnutella");
  EXPECT_EQ(scheme.config.partial_list.mode, gossip::PartialListMode::kNone);
  EXPECT_EQ(scheme.config.absolute_fanout(), 4u);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(7), 1.0);   // within TTL
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(8), 0.0);  // beyond TTL
}

TEST(Presets, PartialListFlooding) {
  const auto scheme = partial_list_flooding(1'000, 40);
  EXPECT_EQ(scheme.config.partial_list.mode,
            gossip::PartialListMode::kUnbounded);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(99), 1.0);
  EXPECT_EQ(scheme.config.absolute_fanout(), 40u);
}

TEST(Presets, HaasGossip) {
  const auto scheme = haas_gossip(1'000, 40, 0.8, 2);
  EXPECT_EQ(scheme.config.partial_list.mode, gossip::PartialListMode::kNone);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(2), 1.0);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(3), 0.8);
  EXPECT_NE(scheme.name.find("Haas"), std::string::npos);
}

TEST(Presets, DattaScheme) {
  const auto scheme = datta_scheme(1'000, 40, 0.9);
  EXPECT_EQ(scheme.config.partial_list.mode,
            gossip::PartialListMode::kUnbounded);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(1), 0.9);
}

TEST(Presets, DattaOffsetScheme) {
  const auto scheme = datta_scheme_offset(1'000, 40, 0.8, 0.7, 0.2);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(0), 1.0);
  EXPECT_NEAR(scheme.config.forward_probability(100), 0.2, 1e-9);
}

TEST(Presets, BlindGossip) {
  const auto scheme = blind_gossip(1'000, 40, 0.6);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(0), 0.6);
  EXPECT_DOUBLE_EQ(scheme.config.forward_probability(50), 0.6);
  EXPECT_EQ(scheme.config.partial_list.mode, gossip::PartialListMode::kNone);
}

TEST(Presets, FanoutFractionRoundTrips) {
  for (const std::size_t fanout : {1u, 4u, 40u, 100u}) {
    const auto scheme = gnutella(10'000, fanout);
    EXPECT_EQ(scheme.config.absolute_fanout(), fanout);
  }
}

TEST(Presets, RejectsInvalidFanout) {
  EXPECT_DEATH((void)gnutella(100, 0), "fanout");
  EXPECT_DEATH((void)gnutella(100, 101), "fanout");
}

}  // namespace
}  // namespace updp2p::baselines
