// Regression tests pinning the paper's qualitative results (Figs. 1–5,
// Table 2) to the analytical model. If a refactor changes the recurrences,
// these tests catch the drift; EXPERIMENTS.md documents the quantitative
// comparison in full.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/flooding_model.hpp"
#include "analysis/push_model.hpp"

namespace updp2p::analysis {
namespace {

PushModelParams fig_base() {
  PushModelParams params;
  params.total_replicas = 10'000;
  params.initial_online = 1'000;
  params.sigma = 0.95;
  params.fanout_fraction = 0.01;
  params.pf = pf_constant(1.0);
  return params;
}

TEST(PaperResults, Fig1a_TinyOnlinePopulationKillsTheRumor) {
  auto params = fig_base();
  params.initial_online = 100;
  const auto trajectory = evaluate_push(params);
  EXPECT_TRUE(trajectory.died());
  EXPECT_LT(trajectory.final_aware(), 0.1);
}

TEST(PaperResults, Fig1b_OverheadRoughlyIndependentOfOnlinePopulation) {
  // Paper: "message overhead is relatively independent of the online
  // population … around 80 messages per online peer".
  std::vector<double> overheads;
  for (const double online : {500.0, 1'000.0, 3'000.0}) {
    auto params = fig_base();
    params.initial_online = online;
    const auto trajectory = evaluate_push(params);
    EXPECT_GT(trajectory.final_aware(), 0.97);
    overheads.push_back(trajectory.messages_per_initial_online());
  }
  for (const double overhead : overheads) {
    EXPECT_GT(overhead, 60.0);
    EXPECT_LT(overhead, 100.0);  // "around 80"
  }
  const auto [min_it, max_it] =
      std::minmax_element(overheads.begin(), overheads.end());
  EXPECT_LT(*max_it / *min_it, 1.25);  // "relatively independent"
}

TEST(PaperResults, Fig2_LargerFanoutManyMoreMessagesSameCoverage) {
  auto small = fig_base();
  small.sigma = 0.9;
  small.fanout_fraction = 0.005;
  auto large = small;
  large.fanout_fraction = 0.05;
  const auto small_traj = evaluate_push(small);
  const auto large_traj = evaluate_push(large);
  // Paper: "eight to ten times more duplicate messages" for the big fanout.
  const double ratio = large_traj.messages_per_initial_online() /
                       small_traj.messages_per_initial_online();
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 16.0);
  EXPECT_GT(large_traj.final_aware(), 0.99);
}

TEST(PaperResults, Fig3_LowerSigmaCutsOverheadUntilSpreadCollapses) {
  auto params = fig_base();
  params.sigma = 1.0;
  const double at_1 = evaluate_push(params).messages_per_initial_online();
  params.sigma = 0.8;
  const auto at_08 = evaluate_push(params);
  params.sigma = 0.5;
  const auto at_05 = evaluate_push(params);
  EXPECT_LT(at_08.messages_per_initial_online(), at_1);
  EXPECT_GT(at_08.final_aware(), 0.95);  // robust down to 0.8
  EXPECT_TRUE(at_05.died());             // collapses at 0.5
}

TEST(PaperResults, Fig4_DecayingPfOrderingMatchesPaper) {
  auto params = fig_base();
  params.sigma = 0.9;
  auto run = [&params](PfSchedule pf) {
    params.pf = std::move(pf);
    return evaluate_push(params);
  };
  const auto flood = run(pf_constant(1.0));
  const auto constant08 = run(pf_constant(0.8));
  const auto linear = run(pf_linear_decay(0.1));
  const auto geo09 = run(pf_geometric(0.9));
  const auto geo05 = run(pf_geometric(0.5));

  // Overhead ordering as plotted in Fig. 4.
  EXPECT_GT(flood.messages_per_initial_online(),
            constant08.messages_per_initial_online());
  EXPECT_GT(constant08.messages_per_initial_online(),
            geo09.messages_per_initial_online());
  EXPECT_GT(geo09.messages_per_initial_online(),
            geo05.messages_per_initial_online());
  // Moderate decay preserves the spread; aggressive decay kills it.
  EXPECT_GT(geo09.final_aware(), 0.95);
  EXPECT_GT(linear.final_aware(), 0.95);
  EXPECT_TRUE(geo05.died());
  // Fig. 4's y-range: flood tops out below ~70 msgs/peer.
  EXPECT_LT(flood.messages_per_initial_online(), 75.0);
}

TEST(PaperResults, Fig5_OverheadLowAndDecreasingWithPopulation) {
  std::vector<double> overheads;
  for (const double total : {1e4, 1e6, 1e8}) {
    PushModelParams params;
    params.total_replicas = total;
    params.initial_online = 0.1 * total;
    params.sigma = 1.0;
    params.fanout_fraction = 100.0 / total;
    params.pf = pf_offset_geometric(0.8, 0.7, 0.2);
    overheads.push_back(
        evaluate_push(params).messages_per_initial_online());
  }
  // Paper: "with the increase in total population, the number of messages
  // per online peer is decreasing", staying around 20–45.
  EXPECT_GT(overheads[0], overheads[1]);
  EXPECT_GT(overheads[1], overheads[2]);
  for (const double overhead : overheads) {
    EXPECT_GT(overhead, 10.0);
    EXPECT_LT(overhead, 50.0);
  }
}

TEST(PaperResults, Table2_SchemeOrderingBothSettings) {
  struct Setting {
    double total, online, fanout, our_base;
  };
  for (const auto& s : {Setting{10'000, 10'000, 4, 0.95},
                        Setting{1'000, 100, 40, 0.85}}) {
    PushModelParams params;
    params.total_replicas = s.total;
    params.initial_online = s.online;
    params.sigma = 1.0;
    params.fanout_fraction = s.fanout / s.total;

    params.use_partial_list = false;
    params.pf = pf_constant(1.0);
    const auto gnutella = evaluate_push(params);
    params.use_partial_list = true;
    const auto partial = evaluate_push(params);
    params.use_partial_list = false;
    params.pf = pf_haas(0.8, 2);
    const auto haas = evaluate_push(params);
    params.use_partial_list = true;
    params.pf = pf_geometric(s.our_base);
    const auto ours = evaluate_push(params);

    // Table 2 ordering: ours < Haas < partial-list < Gnutella.
    EXPECT_LT(partial.messages_per_initial_online(),
              gnutella.messages_per_initial_online());
    EXPECT_LT(haas.messages_per_initial_online(),
              partial.messages_per_initial_online());
    EXPECT_LT(ours.messages_per_initial_online(),
              haas.messages_per_initial_online());
    // Latency penalty of the decaying scheme is small (paper: ~1 round).
    EXPECT_LE(ours.rounds_to_fraction(0.99),
              gnutella.rounds_to_fraction(0.99) + 6);
    // Gnutella per-peer cost equals the fanout (§5.6 duplicate avoidance).
    EXPECT_NEAR(gnutella.messages_per_initial_online(),
                s.fanout * gnutella.final_aware(), s.fanout * 0.05);
  }
}

TEST(PaperResults, Motivation_SerialSearchAttempts) {
  // §2: 99.9% success at 10% availability needs ~65 serial attempts.
  const double attempts = std::ceil(std::log(0.001) / std::log(0.9));
  EXPECT_NEAR(attempts, 66.0, 1.0);
}

}  // namespace
}  // namespace updp2p::analysis
