// Cross-validation: the analytical recurrences (src/analysis) against the
// executable protocol (src/gossip driven by src/sim). These are independent
// implementations, so agreement is evidence both transcribe §4.2 correctly.
#include <gtest/gtest.h>

#include "analysis/push_model.hpp"
#include "sim/round_simulator.hpp"

namespace updp2p {
namespace {

struct AgreementCase {
  const char* name;
  double online_fraction;
  double sigma;
  double fanout_fraction;
  bool partial_list;
  double pf_base;  // 1.0 = constant flooding
};

class ModelVsSim : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(ModelVsSim, MessagesAndAwarenessAgree) {
  const auto& c = GetParam();
  constexpr std::size_t kPopulation = 1'500;
  constexpr int kSeeds = 4;

  analysis::PushModelParams params;
  params.total_replicas = kPopulation;
  params.initial_online = c.online_fraction * kPopulation;
  params.sigma = c.sigma;
  params.fanout_fraction = c.fanout_fraction;
  params.pf = c.pf_base < 1.0 ? analysis::pf_geometric(c.pf_base)
                              : analysis::pf_constant(1.0);
  params.use_partial_list = c.partial_list;
  const auto model = analysis::evaluate_push(params);

  sim::AggregateMetrics aggregate;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    sim::RoundSimConfig config;
    config.population = kPopulation;
    config.gossip.estimated_total_replicas = kPopulation;
    config.gossip.fanout_fraction = c.fanout_fraction;
    config.gossip.forward_probability = params.pf;
    config.gossip.partial_list.mode =
        c.partial_list ? gossip::PartialListMode::kUnbounded
                       : gossip::PartialListMode::kNone;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = static_cast<std::uint64_t>(seed) * 1'000'003;
    auto simulator =
        sim::make_push_phase_simulator(config, c.online_fraction, c.sigma);
    aggregate.add(simulator->propagate_update());
  }

  const double model_msgs = model.messages_per_initial_online();
  const double sim_msgs = aggregate.messages_per_initial_online.mean();
  // 12% tolerance: the model is a mean-field approximation and the
  // simulation is stochastic with finite population.
  EXPECT_NEAR(sim_msgs / model_msgs, 1.0, 0.12) << c.name;
  EXPECT_NEAR(aggregate.final_aware_fraction.mean(), model.final_aware(),
              0.08)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ModelVsSim,
    ::testing::Values(
        AgreementCase{"flood_full_online", 1.0, 1.0, 0.02, true, 1.0},
        AgreementCase{"flood_20pct_online", 0.2, 1.0, 0.02, true, 1.0},
        AgreementCase{"flood_sigma95", 0.3, 0.95, 0.02, true, 1.0},
        AgreementCase{"no_list_20pct", 0.2, 1.0, 0.02, false, 1.0},
        AgreementCase{"decay_pf09", 0.3, 0.95, 0.02, true, 0.9}),
    [](const ::testing::TestParamInfo<AgreementCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace updp2p
