// Integration of the P-Grid substrate with the gossip update protocol: the
// paper's deployment story — replica groups of a P-Grid partition keep
// their partition quasi-consistent via hybrid push/pull (§2, §3).
#include <gtest/gtest.h>

#include "analysis/forward_probability.hpp"
#include "pgrid/pgrid.hpp"
#include "sim/round_simulator.hpp"

namespace updp2p {
namespace {

using common::PeerId;

TEST(PGridGossip, ReplicaGroupPropagatesAnUpdate) {
  pgrid::PGridConfig grid_config;
  grid_config.peers = 256;
  grid_config.depth = 2;  // 4 partitions of 64
  grid_config.refs_per_level = 4;
  grid_config.seed = 3;
  const auto grid = pgrid::PGridNetwork::build(grid_config);

  const auto key = pgrid::BitPath::from_key("catalogue/item-1", 64);
  const auto& group = grid.replica_group(key);
  ASSERT_EQ(group.size(), 64u);

  // Simulate the update protocol inside the replica group.
  sim::RoundSimConfig config;
  config.population = group.size();
  config.gossip.estimated_total_replicas = group.size();
  config.gossip.fanout_fraction = 6.0 / 64.0;
  config.gossip.forward_probability = analysis::pf_geometric(0.9);
  config.gossip.pull.no_update_timeout = 8;
  config.max_rounds = 60;
  config.quiescence_rounds = 80;
  config.seed = 9;
  auto churn = std::make_unique<churn::BernoulliChurn>(64, 0.4, 0.99, 0.05);
  sim::RoundSimulator simulator(config, std::move(churn));

  const auto metrics =
      simulator.propagate_update(std::nullopt, "catalogue/item-1", "v2");
  EXPECT_GT(metrics.final_aware_fraction(), 0.9);

  // Eventually (almost) the whole group holds v2 thanks to pull.
  std::size_t holding = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto value = simulator.node(PeerId(i)).read("catalogue/item-1");
    if (value.has_value() && value->payload == "v2") ++holding;
  }
  EXPECT_GT(holding, 48u);
}

TEST(PGridGossip, SearchThenReadReturnsFreshValue) {
  pgrid::PGridConfig grid_config;
  grid_config.peers = 128;
  grid_config.depth = 2;
  grid_config.refs_per_level = 4;
  grid_config.seed = 4;
  const auto grid = pgrid::PGridNetwork::build(grid_config);
  const auto key = pgrid::BitPath::from_key("doc", 64);
  const auto& group = grid.replica_group(key);

  // Fully-online replica group: one publish, then search + read.
  sim::RoundSimConfig config;
  config.population = group.size();
  config.gossip.estimated_total_replicas = group.size();
  config.gossip.fanout_fraction = 5.0 / static_cast<double>(group.size());
  // Seed chosen so the blind push reaches the WHOLE group (most seeds do,
  // but coverage is not guaranteed — a miss would make the read below
  // depend on which replica the search happens to find).
  config.seed = 11;
  auto simulator = sim::make_push_phase_simulator(config, 1.0, 1.0);
  const auto metrics = simulator->propagate_update(std::nullopt, "doc", "fresh");
  ASSERT_DOUBLE_EQ(metrics.final_aware_fraction(), 1.0);

  // Route a search to the responsible partition, then read from the found
  // replica's simulated store (group index == simulator peer index).
  common::Rng rng(6);
  const auto result = grid.search(PeerId(0), key,
                                  [](PeerId) { return true; }, rng);
  ASSERT_TRUE(result.found);
  // Map the found grid peer to its replica-group slot.
  std::size_t slot = group.size();
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] == result.responsible) slot = i;
  }
  ASSERT_LT(slot, group.size());
  const auto value =
      simulator->node(PeerId(static_cast<std::uint32_t>(slot))).read("doc");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->payload, "fresh");
}

TEST(PGridGossip, EveryPartitionCanHostItsOwnGroup) {
  pgrid::PGridConfig grid_config;
  grid_config.peers = 64;
  grid_config.depth = 3;
  grid_config.refs_per_level = 2;
  grid_config.seed = 8;
  const auto grid = pgrid::PGridNetwork::build(grid_config);
  for (std::uint64_t p = 0; p < 8; ++p) {
    const pgrid::BitPath partition(p << 61, 3);
    const auto& group = grid.replica_group(partition);
    ASSERT_EQ(group.size(), 8u) << "partition " << partition.to_string();
    sim::RoundSimConfig config;
    config.population = group.size();
    config.gossip.estimated_total_replicas = group.size();
    config.gossip.fanout_fraction = 0.5;
    config.seed = 100 + p;
    auto simulator = sim::make_push_phase_simulator(config, 1.0, 1.0);
    const auto metrics = simulator->propagate_update();
    EXPECT_DOUBLE_EQ(metrics.final_aware_fraction(), 1.0)
        << "partition " << partition.to_string();
  }
}

}  // namespace
}  // namespace updp2p
