// Crash-recovery over real sockets (ISSUE 8 tentpole, end-to-end leg).
//
// Two sequential 7-peer UDP clusters, same topology, one variable — the
// durable store:
//
//   Phase A (pull-from-zero baseline): two victims run WITHOUT --data-dir.
//   They are SIGKILLed before the publish, restarted after the survivors
//   converge, and can only obtain the update through the §3 reconnect
//   pull. Their PULLBYTES (pull-response bytes received up to HAVE) is
//   the cost of recovering from nothing.
//
//   Phase B (recover from disk): the victims run WITH --data-dir, receive
//   the update live (it lands in their WAL before the ack leaves), are
//   SIGKILLed, and restart from snapshot + log. They report HAVE from
//   replayed state immediately, and their STATE digest must be
//   bit-identical to the digest they reported while alive.
//
// The headline assertion: every phase-B victim converges with STRICTLY
// fewer pull-response bytes than every phase-A victim — durability turns
// the reconnect pull from a full state transfer into (at most) an empty
// summary exchange.
//
// Synchronisation is status-file based like live_convergence_test; the
// only fixed sleep is a settle window on the setup path (never on an
// assertion path) that lets in-flight push retries exhaust before a
// victim restarts, so phase A's baseline cannot be contaminated by a late
// retransmit.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <netinet/in.h>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

constexpr int kPeerCount = 7;
constexpr int kVictims[] = {3, 5};
constexpr const char* kKey = "durable-key";
constexpr auto kDeadline = std::chrono::seconds(90);
constexpr auto kPollInterval = std::chrono::milliseconds(50);
// Push retries: 5 attempts, 80 ms initial, doubling — every in-flight
// retransmit to a dead victim is exhausted well within this window.
constexpr auto kRetrySettle = std::chrono::seconds(3);

std::optional<std::uint16_t> reserve_udp_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

bool is_victim(int id) {
  return id == kVictims[0] || id == kVictims[1];
}

struct PeerSpec {
  int id = 0;
  std::uint16_t port = 0;
  std::string status_path;
  std::string data_dir;  ///< empty = volatile peer
  bool publisher = false;
};

class RecoveryHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/updp2p-recovery-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    kill_all();
    // Best-effort scrub (data dirs may hold wal.log/snapshot.bin).
    for (const PeerSpec& peer : specs_) {
      (void)std::remove(peer.status_path.c_str());
      if (!peer.data_dir.empty()) {
        (void)std::remove((peer.data_dir + "/wal.log").c_str());
        (void)std::remove((peer.data_dir + "/snapshot.bin").c_str());
        (void)::rmdir(peer.data_dir.c_str());
      }
    }
    (void)::rmdir(dir_.c_str());
  }

  void kill_all() {
    for (pid_t& pid : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        pid = -1;
      }
    }
  }

  /// Fresh specs (new ports, clean status files) for one phase.
  /// `durable_victims` gives the victims a --data-dir.
  void make_specs(const std::string& phase, bool durable_victims) {
    kill_all();
    specs_.clear();
    pids_.assign(kPeerCount, -1);
    for (int i = 0; i < kPeerCount; ++i) {
      const auto port = reserve_udp_port();
      ASSERT_TRUE(port.has_value()) << "could not reserve a loopback port";
      PeerSpec spec;
      spec.id = i;
      spec.port = *port;
      spec.status_path =
          dir_ + "/" + phase + "-peer-" + std::to_string(i) + ".status";
      (void)std::remove(spec.status_path.c_str());
      if (durable_victims && is_victim(i)) {
        spec.data_dir = dir_ + "/" + phase + "-data-" + std::to_string(i);
      }
      spec.publisher = (i == 0);
      specs_.push_back(spec);
    }
  }

  [[nodiscard]] std::string peers_flag(int self) const {
    std::string flag;
    for (const PeerSpec& peer : specs_) {
      if (peer.id == self) continue;
      if (!flag.empty()) flag += ',';
      flag += std::to_string(peer.id) + ':' + std::to_string(peer.port);
    }
    return flag;
  }

  void spawn(const PeerSpec& spec) {
    std::vector<std::string> argv_storage = {
        UPDP2P_PEERD_PATH,
        "--self",          std::to_string(spec.id),
        "--port",          std::to_string(spec.port),
        "--peers",         peers_flag(spec.id),
        "--status",        spec.status_path,
        "--watch",         kKey,
        "--round-ms",      "150",
        "--retry-initial-ms", "80",
        "--population",    std::to_string(kPeerCount),
        "--seed",          "777777",
    };
    if (!spec.data_dir.empty()) {
      argv_storage.insert(argv_storage.end(), {"--data-dir", spec.data_dir});
    }
    if (spec.publisher) {
      // A fat payload so a pull response carrying the value dwarfs an
      // empty summary exchange — the strict byte comparison below has a
      // wide margin.
      argv_storage.insert(argv_storage.end(),
                          {"--publish-key", kKey, "--publish-value",
                           std::string(240, 'x'), "--publish-at-ms", "400"});
    }
    std::vector<char*> argv;
    argv.reserve(argv_storage.size() + 1);
    for (std::string& arg : argv_storage) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      std::freopen("/dev/null", "w", stdout);
      ::execv(argv[0], argv.data());
      std::perror("execv updp2p-peerd");
      std::_Exit(127);
    }
    pids_[static_cast<std::size_t>(spec.id)] = pid;
  }

  void kill_peer(int id) {
    const pid_t pid = pids_.at(static_cast<std::size_t>(id));
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    pids_[static_cast<std::size_t>(id)] = -1;
  }

  [[nodiscard]] static std::vector<std::string> read_lines(
      const std::string& path) {
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  [[nodiscard]] static std::optional<std::string> find_line(
      const std::string& path, const std::string& prefix) {
    std::optional<std::string> found;
    for (const std::string& line : read_lines(path)) {
      if (line.rfind(prefix, 0) == 0) found = line;
    }
    return found;
  }

  /// Second whitespace-separated token of the status line with `prefix`.
  [[nodiscard]] static std::optional<std::string> line_value(
      const std::string& path, const std::string& prefix) {
    const auto line = find_line(path, prefix);
    if (!line) return std::nullopt;
    std::istringstream parse(*line);
    std::string tag, value;
    parse >> tag >> value;
    if (value.empty()) return std::nullopt;
    return value;
  }

  template <typename Condition>
  [[nodiscard]] static bool poll_until(Condition&& condition) {
    const auto deadline = std::chrono::steady_clock::now() + kDeadline;
    while (!condition()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(kPollInterval);
    }
    return true;
  }

  void spawn_with_retry(int id, bool allow_reassign = true) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      spawn(specs_[static_cast<std::size_t>(id)]);
      if (poll_ready(id)) return;
      const bool child_died = pids_.at(static_cast<std::size_t>(id)) == -1;
      if (child_died && allow_reassign) {
        const auto port = reserve_udp_port();
        ASSERT_TRUE(port.has_value());
        specs_[static_cast<std::size_t>(id)].port = *port;
        continue;
      }
      if (child_died) {
        FAIL() << "restarted peer " << id << " exited before READY";
      }
      FAIL() << "peer " << id << " alive but never wrote READY";
    }
    FAIL() << "peer " << id << " failed to bind after 3 attempts";
  }

  [[nodiscard]] bool poll_ready(int id) {
    const std::string& path =
        specs_[static_cast<std::size_t>(id)].status_path;
    const std::string want =
        "READY " +
        std::to_string(specs_[static_cast<std::size_t>(id)].port);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (find_line(path, want).has_value()) return true;
      const pid_t pid = pids_.at(static_cast<std::size_t>(id));
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pids_[static_cast<std::size_t>(id)] = -1;
        return false;
      }
      std::this_thread::sleep_for(kPollInterval);
    }
    return false;
  }

  [[nodiscard]] bool wait_have(int id) {
    return poll_until([&] {
      return find_line(specs_[static_cast<std::size_t>(id)].status_path,
                       std::string("HAVE ") + kKey)
          .has_value();
    });
  }

  [[nodiscard]] bool wait_survivors_have() {
    return poll_until([&] {
      for (const PeerSpec& spec : specs_) {
        if (spec.publisher || is_victim(spec.id)) continue;
        if (!find_line(spec.status_path, std::string("HAVE ") + kKey)
                 .has_value()) {
          return false;
        }
      }
      return true;
    });
  }

  [[nodiscard]] std::uint64_t pull_bytes(int id) const {
    const auto value = line_value(
        specs_[static_cast<std::size_t>(id)].status_path, "PULLBYTES");
    EXPECT_TRUE(value.has_value()) << "peer " << id << " wrote no PULLBYTES";
    return value ? std::stoull(*value) : 0;
  }

  std::string dir_;
  std::vector<PeerSpec> specs_;
  std::vector<pid_t> pids_;
};

TEST_F(RecoveryHarness, DiskRecoveryBeatsPullFromZero) {
  // ---- Phase A: pull-from-zero baseline (victims volatile) ---------------
  make_specs("a", /*durable_victims=*/false);
  for (const PeerSpec& spec : specs_) {
    spawn_with_retry(spec.id);
    if (HasFatalFailure()) return;
  }
  // Victims die BEFORE the publish: they never see a push, so the restart
  // below can only converge through the pull phase — the true from-zero
  // recovery cost.
  for (const int victim : kVictims) {
    kill_peer(victim);
    if (HasFatalFailure()) return;
  }
  ASSERT_TRUE(poll_until([&] {
    return find_line(specs_[0].status_path, std::string("PUBLISHED ") + kKey)
        .has_value();
  })) << "phase A publisher never wrote PUBLISHED";
  ASSERT_TRUE(wait_survivors_have()) << "phase A survivors never converged";
  // Let every in-flight retransmit aimed at the dead victims exhaust so a
  // late push cannot subsidise the restarted peers' recovery.
  std::this_thread::sleep_for(kRetrySettle);

  for (const int victim : kVictims) {
    (void)std::remove(
        specs_[static_cast<std::size_t>(victim)].status_path.c_str());
    spawn_with_retry(victim, /*allow_reassign=*/false);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(wait_have(victim))
        << "phase A victim " << victim << " never recovered via pull";
  }
  std::uint64_t baseline_min = UINT64_MAX;
  for (const int victim : kVictims) {
    const std::uint64_t bytes = pull_bytes(victim);
    ASSERT_GT(bytes, 0u)
        << "phase A victim " << victim
        << " converged without pull bytes — baseline is not pull-from-zero";
    baseline_min = std::min(baseline_min, bytes);
  }

  // ---- Phase B: victims durable, killed mid-life, recovered from disk ----
  make_specs("b", /*durable_victims=*/true);
  for (const PeerSpec& spec : specs_) {
    spawn_with_retry(spec.id);
    if (HasFatalFailure()) return;
  }
  ASSERT_TRUE(poll_until([&] {
    return find_line(specs_[0].status_path, std::string("PUBLISHED ") + kKey)
        .has_value();
  })) << "phase B publisher never wrote PUBLISHED";
  // Victims must HAVE the update live — at which point it is already in
  // their WAL (append-before-ack) — before the SIGKILL.
  std::vector<std::string> live_state(kPeerCount);
  for (const int victim : kVictims) {
    ASSERT_TRUE(wait_have(victim))
        << "phase B victim " << victim << " never received the update live";
    const auto state = line_value(
        specs_[static_cast<std::size_t>(victim)].status_path, "STATE");
    ASSERT_TRUE(state.has_value());
    live_state[static_cast<std::size_t>(victim)] = *state;
    kill_peer(victim);
    if (HasFatalFailure()) return;
  }
  ASSERT_TRUE(wait_survivors_have()) << "phase B survivors never converged";
  std::this_thread::sleep_for(kRetrySettle);

  for (const int victim : kVictims) {
    (void)std::remove(
        specs_[static_cast<std::size_t>(victim)].status_path.c_str());
    spawn_with_retry(victim, /*allow_reassign=*/false);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(wait_have(victim))
        << "phase B victim " << victim << " never recovered from disk";
  }

  for (const int victim : kVictims) {
    const std::string& status =
        specs_[static_cast<std::size_t>(victim)].status_path;
    // The daemon recovered durable state (snapshot values or WAL frames).
    const auto recovered = find_line(status, "RECOVERED");
    ASSERT_TRUE(recovered.has_value())
        << "phase B victim " << victim << " did not report RECOVERED";
    std::istringstream parse(*recovered);
    std::string tag;
    std::uint64_t values = 0, replayed = 0;
    parse >> tag >> values >> replayed;
    EXPECT_GT(values + replayed, 0u)
        << "phase B victim " << victim << " recovered nothing from disk";

    // Replayed state is bit-identical to the state it died with.
    const auto state = line_value(status, "STATE");
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, live_state[static_cast<std::size_t>(victim)])
        << "phase B victim " << victim
        << " replayed to a different store digest than it died with";

    // The headline: recovery from disk costs strictly fewer pull bytes
    // than recovery from zero — for EVERY victim, against the CHEAPEST
    // phase-A baseline.
    const std::uint64_t bytes = pull_bytes(victim);
    EXPECT_LT(bytes, baseline_min)
        << "phase B victim " << victim << " pulled " << bytes
        << " bytes, not fewer than the pull-from-zero minimum "
        << baseline_min;
  }
}

}  // namespace
