// Crash-recovery over real sockets (ISSUE 8 tentpole, end-to-end leg).
//
// Two sequential 7-peer UDP clusters, same topology, one variable — the
// durable store:
//
//   Phase A (pull-from-zero baseline): two victims run WITHOUT --data-dir.
//   They are SIGKILLed before the publish, restarted after the survivors
//   converge, and can only obtain the update through the §3 reconnect
//   pull. Their PULLBYTES (pull-response bytes received up to HAVE) is
//   the cost of recovering from nothing.
//
//   Phase B (recover from disk): the victims run WITH --data-dir, receive
//   the update live (it lands in their WAL before the ack leaves), are
//   SIGKILLed, and restart from snapshot + log. They report HAVE from
//   replayed state immediately, and their STATE digest must be
//   bit-identical to the digest they reported while alive.
//
// The headline assertion: every phase-B victim converges with STRICTLY
// fewer pull-response bytes than every phase-A victim — durability turns
// the reconnect pull from a full state transfer into (at most) an empty
// summary exchange.
//
// Synchronisation is status-file based like live_convergence_test (the
// process mechanics live in tests/support/live_harness); the only fixed
// sleep is a settle window on the setup path (never on an assertion
// path) that lets in-flight push retries exhaust before a victim
// restarts, so phase A's baseline cannot be contaminated by a late
// retransmit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/live_harness.hpp"

namespace {

using updp2p::testsupport::find_line;
using updp2p::testsupport::line_value;
using updp2p::testsupport::LiveHarness;
using updp2p::testsupport::PeerSpec;

constexpr int kPeerCount = 7;
const std::vector<int> kVictims{3, 5};
constexpr const char* kKey = "durable-key";
// Push retries: 5 attempts, 80 ms initial, doubling — every in-flight
// retransmit to a dead victim is exhausted well within this window.
constexpr auto kRetrySettle = std::chrono::seconds(3);

class RecoveryHarness : public LiveHarness {
 protected:
  void SetUp() override {
    LiveHarness::SetUp();
    options_.peerd_path = UPDP2P_PEERD_PATH;
    options_.watch_key = kKey;
    options_.seed = 777777;
    // A fat payload so a pull response carrying the value dwarfs an
    // empty summary exchange — the strict byte comparison below has a
    // wide margin.
    options_.publish_value = std::string(240, 'x');
  }

  [[nodiscard]] bool wait_survivors_have() {
    return wait_have_all_except(kVictims);
  }

  [[nodiscard]] std::uint64_t pull_bytes(int id) const {
    const auto value = line_value(
        specs_[static_cast<std::size_t>(id)].status_path, "PULLBYTES");
    EXPECT_TRUE(value.has_value()) << "peer " << id << " wrote no PULLBYTES";
    return value ? std::stoull(*value) : 0;
  }
};

TEST_F(RecoveryHarness, DiskRecoveryBeatsPullFromZero) {
  // ---- Phase A: pull-from-zero baseline (victims volatile) ---------------
  make_specs("a");
  if (HasFatalFailure()) return;
  for (const PeerSpec& spec : specs_) {
    spawn_with_retry(spec.id);
    if (HasFatalFailure()) return;
  }
  // Victims die BEFORE the publish: they never see a push, so the restart
  // below can only converge through the pull phase — the true from-zero
  // recovery cost.
  for (const int victim : kVictims) {
    kill_peer(victim);
    if (HasFatalFailure()) return;
  }
  ASSERT_FALSE(wait_published().empty())
      << "phase A publisher never wrote PUBLISHED";
  ASSERT_TRUE(wait_survivors_have()) << "phase A survivors never converged";
  // Let every in-flight retransmit aimed at the dead victims exhaust so a
  // late push cannot subsidise the restarted peers' recovery.
  std::this_thread::sleep_for(kRetrySettle);

  for (const int victim : kVictims) {
    (void)std::remove(
        specs_[static_cast<std::size_t>(victim)].status_path.c_str());
    spawn_with_retry(victim, /*allow_reassign=*/false);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(wait_have(victim))
        << "phase A victim " << victim << " never recovered via pull";
  }
  std::uint64_t baseline_min = UINT64_MAX;
  for (const int victim : kVictims) {
    const std::uint64_t bytes = pull_bytes(victim);
    ASSERT_GT(bytes, 0u)
        << "phase A victim " << victim
        << " converged without pull bytes — baseline is not pull-from-zero";
    baseline_min = std::min(baseline_min, bytes);
  }

  // ---- Phase B: victims durable, killed mid-life, recovered from disk ----
  make_specs("b", /*durable=*/kVictims);
  if (HasFatalFailure()) return;
  for (const PeerSpec& spec : specs_) {
    spawn_with_retry(spec.id);
    if (HasFatalFailure()) return;
  }
  ASSERT_FALSE(wait_published().empty())
      << "phase B publisher never wrote PUBLISHED";
  // Victims must HAVE the update live — at which point it is already in
  // their WAL (append-before-ack) — before the SIGKILL.
  std::vector<std::string> live_state(kPeerCount);
  for (const int victim : kVictims) {
    ASSERT_TRUE(wait_have(victim))
        << "phase B victim " << victim << " never received the update live";
    const auto state = line_value(
        specs_[static_cast<std::size_t>(victim)].status_path, "STATE");
    ASSERT_TRUE(state.has_value());
    live_state[static_cast<std::size_t>(victim)] = *state;
    kill_peer(victim);
    if (HasFatalFailure()) return;
  }
  ASSERT_TRUE(wait_survivors_have()) << "phase B survivors never converged";
  std::this_thread::sleep_for(kRetrySettle);

  for (const int victim : kVictims) {
    (void)std::remove(
        specs_[static_cast<std::size_t>(victim)].status_path.c_str());
    spawn_with_retry(victim, /*allow_reassign=*/false);
    if (HasFatalFailure()) return;
    ASSERT_TRUE(wait_have(victim))
        << "phase B victim " << victim << " never recovered from disk";
  }

  for (const int victim : kVictims) {
    const std::string& status =
        specs_[static_cast<std::size_t>(victim)].status_path;
    // The daemon recovered durable state (snapshot values or WAL frames).
    const auto recovered = find_line(status, "RECOVERED");
    ASSERT_TRUE(recovered.has_value())
        << "phase B victim " << victim << " did not report RECOVERED";
    std::istringstream parse(*recovered);
    std::string tag;
    std::uint64_t values = 0, replayed = 0;
    parse >> tag >> values >> replayed;
    EXPECT_GT(values + replayed, 0u)
        << "phase B victim " << victim << " recovered nothing from disk";

    // Replayed state is bit-identical to the state it died with.
    const auto state = line_value(status, "STATE");
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, live_state[static_cast<std::size_t>(victim)])
        << "phase B victim " << victim
        << " replayed to a different store digest than it died with";

    // The headline: recovery from disk costs strictly fewer pull bytes
    // than recovery from zero — for EVERY victim, against the CHEAPEST
    // phase-A baseline.
    const std::uint64_t bytes = pull_bytes(victim);
    EXPECT_LT(bytes, baseline_min)
        << "phase B victim " << victim << " pulled " << bytes
        << " bytes, not fewer than the pull-from-zero minimum "
        << baseline_min;
  }
}

}  // namespace
