// Multi-process live harness (ISSUE 3 tentpole, part 3).
//
// Spawns N updp2p-peerd daemons on 127.0.0.1 UDP ports, injects one update,
// SIGKILLs two peers while the push phase is in flight, restarts them with
// empty stores, and asserts that every peer — including the restarted ones —
// reports HAVE with the publisher's version digest. The restarted peers can
// only recover through the §3 pull phase (their stores are empty and the
// push wave has passed), so the test exercises exactly the paper's
// disconnect/reconnect story over real sockets.
//
// Synchronisation is status-file based: daemons append flushed lines
// (READY/PUBLISHED/HAVE) which the harness polls with a deadline — no
// fixed sleeps anywhere on the assertion path. The process mechanics live
// in tests/support/live_harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "support/live_harness.hpp"

namespace {

using updp2p::testsupport::find_line;
using updp2p::testsupport::LiveHarness;
using updp2p::testsupport::PeerSpec;

constexpr const char* kKey = "live-key";

class Harness : public LiveHarness {
 protected:
  void SetUp() override {
    LiveHarness::SetUp();
    options_.peerd_path = UPDP2P_PEERD_PATH;
    options_.watch_key = kKey;
    options_.seed = 424242;
    options_.publish_value = "live-payload";
  }
};

TEST_F(Harness, KilledPeersRecoverThroughPull) {
  make_specs();
  if (HasFatalFailure()) return;
  for (const PeerSpec& spec : specs_) {
    spawn_with_retry(spec.id);
    if (HasFatalFailure()) return;
  }

  // Wait for the publish to actually happen, then immediately take two
  // non-publisher peers down — the push phase is still in flight (retry
  // timers on the publisher side are still live at this point).
  const std::string published = wait_published();
  ASSERT_FALSE(published.empty()) << "publisher never wrote PUBLISHED";
  std::istringstream parse(published);
  std::string tag, key, digest;
  parse >> tag >> key >> digest;
  ASSERT_EQ(tag, "PUBLISHED");
  ASSERT_EQ(key, kKey);
  ASSERT_FALSE(digest.empty());

  const std::vector<int> victims{3, 5};
  for (const int victim : victims) {
    kill_peer(victim);
    if (HasFatalFailure()) return;
  }

  // Survivors converge through the remaining push wave (+ retries).
  ASSERT_TRUE(wait_have_all_except(victims))
      << "surviving peers never converged";

  // Restart the victims with EMPTY stores on the same identities/ports.
  // They missed the push entirely; only the pull phase can save them.
  for (const int victim : victims) {
    (void)std::remove(
        specs_[static_cast<std::size_t>(victim)].status_path.c_str());
    spawn_with_retry(victim, /*allow_reassign=*/false);
    if (HasFatalFailure()) return;
  }

  for (const int victim : victims) {
    ASSERT_TRUE(wait_have(victim))
        << "restarted peer " << victim
        << " never recovered the update via pull";
  }

  // Every HAVE digest matches the published version id exactly.
  for (const PeerSpec& spec : specs_) {
    if (spec.publisher) continue;
    const auto have =
        find_line(spec.status_path, std::string("HAVE ") + kKey);
    ASSERT_TRUE(have.has_value());
    std::istringstream parse_have(*have);
    std::string have_tag, have_key, have_digest;
    parse_have >> have_tag >> have_key >> have_digest;
    EXPECT_EQ(have_digest, digest) << "peer " << spec.id;
  }
}

}  // namespace
