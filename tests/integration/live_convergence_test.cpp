// Multi-process live harness (ISSUE 3 tentpole, part 3).
//
// Spawns N updp2p-peerd daemons on 127.0.0.1 UDP ports, injects one update,
// SIGKILLs two peers while the push phase is in flight, restarts them with
// empty stores, and asserts that every peer — including the restarted ones —
// reports HAVE with the publisher's version digest. The restarted peers can
// only recover through the §3 pull phase (their stores are empty and the
// push wave has passed), so the test exercises exactly the paper's
// disconnect/reconnect story over real sockets.
//
// Synchronisation is status-file based: daemons append flushed lines
// (READY/PUBLISHED/HAVE) which the harness polls with a deadline — no
// fixed sleeps anywhere on the assertion path.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <netinet/in.h>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

namespace {

constexpr int kPeerCount = 7;
constexpr const char* kKey = "live-key";
// Generous wall-clock bound; the loop exits the moment the condition holds.
constexpr auto kDeadline = std::chrono::seconds(90);
constexpr auto kPollInterval = std::chrono::milliseconds(50);

/// Reserves a free loopback UDP port by binding port 0 and closing the
/// socket. Racy in principle; the spawn path retries on bind failure.
std::optional<std::uint16_t> reserve_udp_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct PeerSpec {
  int id = 0;
  std::uint16_t port = 0;
  std::string status_path;
  bool publisher = false;
};

class Harness : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/updp2p-live-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    for (const pid_t pid : pids_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    }
    // Best-effort scrub of the scratch dir.
    for (const PeerSpec& peer : specs_) {
      (void)std::remove(peer.status_path.c_str());
    }
    (void)::rmdir(dir_.c_str());
  }

  void make_specs() {
    specs_.clear();
    for (int i = 0; i < kPeerCount; ++i) {
      const auto port = reserve_udp_port();
      ASSERT_TRUE(port.has_value()) << "could not reserve a loopback port";
      PeerSpec spec;
      spec.id = i;
      spec.port = *port;
      spec.status_path = dir_ + "/peer-" + std::to_string(i) + ".status";
      spec.publisher = (i == 0);
      specs_.push_back(spec);
    }
  }

  [[nodiscard]] std::string peers_flag(int self) const {
    std::string flag;
    for (const PeerSpec& peer : specs_) {
      if (peer.id == self) continue;
      if (!flag.empty()) flag += ',';
      flag += std::to_string(peer.id) + ':' + std::to_string(peer.port);
    }
    return flag;
  }

  /// fork+exec one daemon; stores the pid at index `spec.id`.
  void spawn(const PeerSpec& spec) {
    std::vector<std::string> argv_storage = {
        UPDP2P_PEERD_PATH,
        "--self",          std::to_string(spec.id),
        "--port",          std::to_string(spec.port),
        "--peers",         peers_flag(spec.id),
        "--status",        spec.status_path,
        "--watch",         kKey,
        "--round-ms",      "150",
        "--retry-initial-ms", "80",
        "--population",    std::to_string(kPeerCount),
        "--seed",          "424242",
    };
    if (spec.publisher) {
      argv_storage.insert(argv_storage.end(),
                          {"--publish-key", kKey, "--publish-value",
                           "live-payload", "--publish-at-ms", "400"});
    }
    std::vector<char*> argv;
    argv.reserve(argv_storage.size() + 1);
    for (std::string& arg : argv_storage) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: silence stdout so gtest output stays readable.
      std::freopen("/dev/null", "w", stdout);
      ::execv(argv[0], argv.data());
      std::perror("execv updp2p-peerd");
      std::_Exit(127);
    }
    if (pids_.size() <= static_cast<std::size_t>(spec.id)) {
      pids_.resize(static_cast<std::size_t>(spec.id) + 1, -1);
    }
    pids_[static_cast<std::size_t>(spec.id)] = pid;
  }

  void kill_peer(int id) {
    const pid_t pid = pids_.at(static_cast<std::size_t>(id));
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    pids_[static_cast<std::size_t>(id)] = -1;
  }

  [[nodiscard]] static std::vector<std::string> read_lines(
      const std::string& path) {
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  /// Last status line for `prefix` (e.g. "HAVE live-key "), if any.
  [[nodiscard]] static std::optional<std::string> find_line(
      const std::string& path, const std::string& prefix) {
    std::optional<std::string> found;
    for (const std::string& line : read_lines(path)) {
      if (line.rfind(prefix, 0) == 0) found = line;
    }
    return found;
  }

  /// Polls `condition` until true or the deadline passes.
  template <typename Condition>
  [[nodiscard]] static bool poll_until(Condition&& condition) {
    const auto deadline = std::chrono::steady_clock::now() + kDeadline;
    while (!condition()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(kPollInterval);
    }
    return true;
  }

  /// Spawns peer `id`, retrying on a fresh port only for the initial
  /// bring-up (`allow_reassign`); restarted victims must keep their port
  /// because the other peers' directories already point at it.
  void spawn_with_retry(int id, bool allow_reassign = true) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      spawn(specs_[static_cast<std::size_t>(id)]);
      if (poll_ready(id)) return;
      const bool child_died = pids_.at(static_cast<std::size_t>(id)) == -1;
      if (child_died && allow_reassign) {
        // Lost the reserve/bind race: re-reserve and try again.
        const auto port = reserve_udp_port();
        ASSERT_TRUE(port.has_value());
        specs_[static_cast<std::size_t>(id)].port = *port;
        continue;
      }
      if (child_died) {
        // Port was just freed by SIGKILL+waitpid, so a conflict here is a
        // real failure, not a race worth retrying on a different port.
        FAIL() << "restarted peer " << id << " exited before READY";
      }
      FAIL() << "peer " << id << " alive but never wrote READY";
    }
    FAIL() << "peer " << id << " failed to bind after 3 attempts";
  }

  /// Waits for the READY line; reaps (and marks pids_[id] = -1) if the
  /// child exits first.
  [[nodiscard]] bool poll_ready(int id) {
    const std::string& path =
        specs_[static_cast<std::size_t>(id)].status_path;
    const std::string want =
        "READY " +
        std::to_string(specs_[static_cast<std::size_t>(id)].port);
    // Shorter per-spawn deadline so bind-race retries stay cheap.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (find_line(path, want).has_value()) return true;
      const pid_t pid = pids_.at(static_cast<std::size_t>(id));
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        pids_[static_cast<std::size_t>(id)] = -1;
        return false;
      }
      std::this_thread::sleep_for(kPollInterval);
    }
    return false;
  }

  std::string dir_;
  std::vector<PeerSpec> specs_;
  std::vector<pid_t> pids_;
};

TEST_F(Harness, KilledPeersRecoverThroughPull) {
  make_specs();
  for (const PeerSpec& spec : specs_) {
    spawn_with_retry(spec.id);
    if (HasFatalFailure()) return;
  }

  // Wait for the publish to actually happen, then immediately take two
  // non-publisher peers down — the push phase is still in flight (retry
  // timers on the publisher side are still live at this point).
  const std::string& publisher_status = specs_[0].status_path;
  ASSERT_TRUE(poll_until([&] {
    return find_line(publisher_status, std::string("PUBLISHED ") + kKey)
        .has_value();
  })) << "publisher never wrote PUBLISHED";
  const std::string published =
      *find_line(publisher_status, std::string("PUBLISHED ") + kKey);
  std::istringstream parse(published);
  std::string tag, key, digest;
  parse >> tag >> key >> digest;
  ASSERT_EQ(tag, "PUBLISHED");
  ASSERT_EQ(key, kKey);
  ASSERT_FALSE(digest.empty());

  const int victims[] = {3, 5};
  for (const int victim : victims) {
    kill_peer(victim);
    if (HasFatalFailure()) return;
  }

  // Survivors converge through the remaining push wave (+ retries).
  ASSERT_TRUE(poll_until([&] {
    for (const PeerSpec& spec : specs_) {
      if (spec.publisher) continue;
      const bool killed = spec.id == victims[0] || spec.id == victims[1];
      if (killed) continue;
      if (!find_line(spec.status_path, std::string("HAVE ") + kKey)
               .has_value()) {
        return false;
      }
    }
    return true;
  })) << "surviving peers never converged";

  // Restart the victims with EMPTY stores on the same identities/ports.
  // They missed the push entirely; only the pull phase can save them.
  for (const int victim : victims) {
    (void)std::remove(
        specs_[static_cast<std::size_t>(victim)].status_path.c_str());
    spawn_with_retry(victim, /*allow_reassign=*/false);
    if (HasFatalFailure()) return;
  }

  ASSERT_TRUE(poll_until([&] {
    for (const int victim : victims) {
      if (!find_line(specs_[static_cast<std::size_t>(victim)].status_path,
                     std::string("HAVE ") + kKey)
               .has_value()) {
        return false;
      }
    }
    return true;
  })) << "restarted peers never recovered the update via pull";

  // Every HAVE digest matches the published version id exactly.
  for (const PeerSpec& spec : specs_) {
    if (spec.publisher) continue;
    const auto have =
        find_line(spec.status_path, std::string("HAVE ") + kKey);
    ASSERT_TRUE(have.has_value());
    std::istringstream parse_have(*have);
    std::string have_tag, have_key, have_digest;
    parse_have >> have_tag >> have_key >> have_digest;
    EXPECT_EQ(have_digest, digest) << "peer " << spec.id;
  }
}

}  // namespace
