// Integration: the hybrid protocol under realistic diurnal availability —
// day/night swings with stable per-peer habits (churn::DiurnalTraceGenerator
// feeding TraceChurn), publishing at the trough and querying at the peak.
#include <gtest/gtest.h>

#include "analysis/forward_probability.hpp"
#include "churn/heterogeneous.hpp"
#include "sim/round_simulator.hpp"

namespace updp2p {
namespace {

using common::PeerId;

TEST(Diurnal, UpdatePublishedAtNightReachesTheDayCrowd) {
  constexpr std::size_t kPopulation = 600;
  constexpr common::Round kPeriod = 48;

  churn::DiurnalTraceGenerator generator(kPopulation, kPeriod,
                                         /*day=*/0.5, /*night=*/0.1);
  auto schedule = generator.generate(3 * kPeriod, /*seed=*/11);

  // In the habit model, peers above the day-peak threshold never connect —
  // they can never learn anything. Awareness is measured against the
  // ever-online population.
  std::vector<bool> ever_online(kPopulation, false);
  for (const auto& round : schedule) {
    for (const PeerId peer : round) ever_online[peer.value()] = true;
  }
  const auto reachable = static_cast<double>(
      std::count(ever_online.begin(), ever_online.end(), true));

  sim::RoundSimConfig config;
  config.population = kPopulation;
  config.gossip.estimated_total_replicas = kPopulation;
  config.gossip.fanout_fraction = 0.10;  // supercritical even at the trough
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.gossip.pull.no_update_timeout = 8;
  config.max_rounds = 120;  // 2.5 day/night cycles
  config.quiescence_rounds = 3 * kPeriod;  // run the full window
  config.seed = 5;
  auto churn = std::make_unique<churn::TraceChurn>(kPopulation,
                                                   std::move(schedule));
  sim::RoundSimulator simulator(config, std::move(churn));

  // Round 0 is the trough (~10% online): the hardest time to publish.
  const std::size_t night_online = simulator.churn().online_count();
  EXPECT_LT(night_online, kPopulation / 5);

  // Publish from a fixed online night-owl. (A randomly seeded initiator
  // can — with ~0.5% probability — draw a fanout set that misses every
  // online peer and die at round 0; that fragility is the paper's Fig 1a
  // point and is covered by bench/ablation_bimodal, not this test.)
  const auto initiator = simulator.churn().online().online_peers().front();
  const auto metrics = simulator.propagate_update(initiator);
  const auto id = [&simulator] {
    for (std::uint32_t i = 0; i < kPopulation; ++i) {
      if (const auto v = simulator.node(PeerId(i)).read("item")) return v->id;
    }
    return version::VersionId{};
  }();

  // After 2.5 day/night cycles the day crowd — most of whom were offline
  // at publish time — has been reached via push-on-trough + pull-on-wake.
  std::size_t aware_total = 0;
  for (std::uint32_t i = 0; i < kPopulation; ++i) {
    if (simulator.node(PeerId(i)).knows_version(id)) ++aware_total;
  }
  EXPECT_GT(static_cast<double>(aware_total) / reachable, 0.85);
  EXPECT_GT(metrics.total_pull_messages(), 0u);
  // The always-on "habit backbone" (peers online even at the trough) is
  // fully covered.
  EXPECT_GT(metrics.final_aware_fraction(), 0.9);
}

TEST(Diurnal, BackboneChurnIntegratesWithSimulator) {
  auto churn = churn::make_backbone_churn(400, 0.15, 0.95, 0.999, 0.15, 0.95);
  sim::RoundSimConfig config;
  config.population = 400;
  config.gossip.estimated_total_replicas = 400;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.pull.no_update_timeout = 10;
  config.max_rounds = 60;
  config.quiescence_rounds = 80;
  config.seed = 6;
  sim::RoundSimulator simulator(config, std::move(churn));
  const auto metrics = simulator.propagate_update();
  // Mixed availability still converges among the online.
  EXPECT_GT(metrics.final_aware_fraction(), 0.85);
}

}  // namespace
}  // namespace updp2p
