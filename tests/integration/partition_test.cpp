// Failure injection: network partitions.
//
// Paper §3: "if two peers may not communicate with each other, they will
// simply perceive each other to be offline" — a partition is just mass
// pairwise unavailability. These tests cut the network during an update and
// verify the hybrid protocol's behaviour: the push covers the initiator's
// side; after the cut heals, the pull phase reconciles the other side.
#include <gtest/gtest.h>

#include "analysis/forward_probability.hpp"
#include "sim/round_simulator.hpp"

namespace updp2p {
namespace {

using common::PeerId;

constexpr std::size_t kPopulation = 300;
constexpr std::uint32_t kCut = 150;  // peers < kCut are side A

bool same_side(PeerId a, PeerId b) {
  return (a.value() < kCut) == (b.value() < kCut);
}

sim::RoundSimConfig partition_config() {
  sim::RoundSimConfig config;
  config.population = kPopulation;
  config.gossip.estimated_total_replicas = kPopulation;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.gossip.pull.contacts_per_attempt = 4;
  config.gossip.pull.no_update_timeout = 8;
  config.max_rounds = 40;
  config.quiescence_rounds = 50;
  config.seed = 404;
  return config;
}

std::size_t aware_on_side(const sim::RoundSimulator& simulator,
                          const version::VersionId& id, bool side_a) {
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < kPopulation; ++i) {
    if ((i < kCut) != side_a) continue;
    if (simulator.node(PeerId(i)).knows_version(id)) ++count;
  }
  return count;
}

version::VersionId published_id(const sim::RoundSimulator& simulator,
                                std::string_view key) {
  for (std::uint32_t i = 0; i < kPopulation; ++i) {
    if (const auto value = simulator.node(PeerId(i)).read(key)) {
      return value->id;
    }
  }
  return version::VersionId{};
}

TEST(Partition, PushStopsAtTheCut) {
  auto simulator = sim::make_push_phase_simulator(partition_config(), 1.0, 1.0);
  simulator->set_link_filter(same_side);
  (void)simulator->propagate_update(PeerId(0), "k", "v");
  const auto id = published_id(*simulator, "k");
  // Side A (initiator's side) is covered; side B is untouched.
  EXPECT_GT(aware_on_side(*simulator, id, true), 140u);
  EXPECT_EQ(aware_on_side(*simulator, id, false), 0u);
}

TEST(Partition, HealingLetsPullReconcile) {
  auto simulator = sim::make_push_phase_simulator(partition_config(), 1.0, 1.0);
  simulator->set_link_filter(same_side);
  (void)simulator->propagate_update(PeerId(0), "k", "v");
  const auto id = published_id(*simulator, "k");
  ASSERT_EQ(aware_on_side(*simulator, id, false), 0u);

  // Heal the cut; timer-driven pulls ("no update received within time T")
  // drag side B back into sync.
  simulator->set_link_filter(nullptr);
  simulator->run_rounds(60);
  EXPECT_GT(aware_on_side(*simulator, id, false), 140u);
}

TEST(Partition, ConcurrentWritesOnBothSidesConvergeAfterHeal) {
  auto config = partition_config();
  auto simulator = sim::make_push_phase_simulator(config, 1.0, 1.0);
  simulator->set_link_filter(same_side);
  (void)simulator->propagate_update(PeerId(0), "k", "from-side-a");
  (void)simulator->propagate_update(PeerId(200), "k", "from-side-b");

  simulator->set_link_filter(nullptr);
  simulator->run_rounds(80);

  // Every replica that has the key resolves the same winner — the
  // deterministic §4.4 rule applied to the reconciled concurrent pair.
  version::VersionId winner{};
  std::size_t holding = 0;
  for (std::uint32_t i = 0; i < kPopulation; ++i) {
    const auto value = simulator->node(PeerId(i)).read("k");
    if (!value.has_value()) continue;
    if (holding == 0) winner = value->id;
    EXPECT_EQ(value->id, winner) << "peer " << i;
    ++holding;
  }
  EXPECT_GT(holding, 280u);
  // Both concurrent versions survive in the maximal sets of synced peers.
  std::size_t with_both = 0;
  for (std::uint32_t i = 0; i < kPopulation; ++i) {
    if (simulator->node(PeerId(i)).store().versions("k").size() == 2) {
      ++with_both;
    }
  }
  EXPECT_GT(with_both, 250u);
}

TEST(Partition, LinkFilterCountsAsPartitioned) {
  auto simulator = sim::make_push_phase_simulator(partition_config(), 1.0, 1.0);
  simulator->set_link_filter(same_side);
  (void)simulator->propagate_update(PeerId(0), "k", "v");
  // Messages across the cut are lost like sends to offline peers (§3), but
  // the bus attributes them to their own counter.
  EXPECT_GT(simulator->bus_stats().messages_partitioned, 0u);
  EXPECT_EQ(simulator->bus_stats().messages_to_offline, 0u);
}

}  // namespace
}  // namespace updp2p
