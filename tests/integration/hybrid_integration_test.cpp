// End-to-end integration of the hybrid push/pull protocol: multiple
// updates, heavy churn, deletions, conflicting writers — asserting the
// paper's headline property: eventual quasi-consistency with probabilistic
// guarantees, achieved with push for bulk dissemination and pull for
// recovery.
#include <gtest/gtest.h>

#include "analysis/forward_probability.hpp"
#include "sim/event_simulator.hpp"
#include "sim/round_simulator.hpp"

namespace updp2p {
namespace {

using common::PeerId;

TEST(HybridIntegration, SequentialUpdatesConvergeUnderChurn) {
  sim::EventSimConfig config;
  config.population = 150;
  config.mean_online_time = 30.0;
  config.mean_offline_time = 90.0;  // 25% availability
  config.gossip.estimated_total_replicas = 150;
  config.gossip.fanout_fraction = 0.07;
  config.gossip.forward_probability = analysis::pf_geometric(0.9);
  config.gossip.pull.contacts_per_attempt = 3;
  config.gossip.pull.no_update_timeout = 20;
  config.seed = 7;
  sim::EventSimulator simulator(config);

  simulator.schedule_publish(5.0, "doc", "v1");
  simulator.schedule_publish(100.0, "doc", "v2");
  simulator.schedule_publish(200.0, "doc", "v3");
  simulator.run_until(900.0);

  ASSERT_EQ(simulator.published().size(), 3u);
  const auto& latest = simulator.published().back();
  // Nearly the whole population (online or not) converged to v3.
  EXPECT_GT(simulator.aware_fraction_total(latest.id), 0.9);
  // And queries against online replicas return v3.
  const auto result =
      simulator.query("doc", 5, gossip::QueryRule::kLatestVersion);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, "v3");
}

TEST(HybridIntegration, ConcurrentWritersCoexistThenResolve) {
  sim::EventSimConfig config;
  config.population = 100;
  config.mean_online_time = 1e6;  // no churn: isolate conflict handling
  config.mean_offline_time = 1.0;
  config.gossip.estimated_total_replicas = 100;
  config.gossip.fanout_fraction = 0.10;
  config.seed = 21;
  sim::EventSimulator simulator(config);

  // Two peers write the same key at (almost) the same instant.
  PeerId a = PeerId::invalid(), b = PeerId::invalid();
  for (std::uint32_t i = 0; i < 100 && !b.is_valid(); ++i) {
    if (!simulator.is_online(PeerId(i))) continue;
    if (!a.is_valid()) {
      a = PeerId(i);
    } else {
      b = PeerId(i);
    }
  }
  ASSERT_TRUE(b.is_valid());
  simulator.schedule_publish(1.0, "key", "from-a", a);
  simulator.schedule_publish(1.01, "key", "from-b", b);
  simulator.run_until(60.0);

  // Both versions coexist somewhere; every replica resolves the SAME winner.
  const auto winner =
      simulator.query("key", 10, gossip::QueryRule::kLatestVersion);
  ASSERT_TRUE(winner.has_value());
  std::size_t holding_winner = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto local = simulator.node(PeerId(i)).read("key");
    if (local.has_value()) {
      EXPECT_EQ(local->id, winner->id)
          << "replica " << i << " resolves a different winner";
      ++holding_winner;
    }
  }
  EXPECT_GT(holding_winner, 90u);
}

TEST(HybridIntegration, DeletionsConvergeAsWell) {
  sim::EventSimConfig config;
  config.population = 80;
  config.mean_online_time = 40.0;
  config.mean_offline_time = 60.0;
  config.gossip.estimated_total_replicas = 80;
  config.gossip.fanout_fraction = 0.1;
  config.gossip.pull.no_update_timeout = 15;
  config.seed = 13;
  sim::EventSimulator simulator(config);
  simulator.schedule_publish(1.0, "temp", "data");
  simulator.run_until(80.0);
  simulator.schedule_remove(80.0, "temp");
  simulator.run_until(500.0);

  std::size_t deleted = 0;
  std::size_t still_live = 0;
  for (std::uint32_t i = 0; i < 80; ++i) {
    const auto& store = simulator.node(PeerId(i)).store();
    if (store.is_deleted("temp")) {
      ++deleted;
    } else if (store.read("temp").has_value()) {
      ++still_live;
    }
  }
  EXPECT_GT(deleted, 70u);
  EXPECT_LT(still_live, 8u);
}

TEST(HybridIntegration, PushAloneMissesOfflinePeersPullFixesIt) {
  // The division of labour the paper's hybrid design rests on.
  sim::RoundSimConfig config;
  config.population = 200;
  config.gossip.estimated_total_replicas = 200;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.pull.no_update_timeout = 10;
  config.max_rounds = 100;
  config.quiescence_rounds = 120;  // run the whole window
  config.seed = 31;
  // 30% online; offline peers return at 3%/round.
  auto churn = std::make_unique<churn::BernoulliChurn>(200, 0.3, 0.99, 0.03);
  sim::RoundSimulator simulator(config, std::move(churn));

  const auto metrics = simulator.propagate_update(std::nullopt, "k", "v");
  const auto value_id = [&simulator] {
    for (std::uint32_t i = 0; i < 200; ++i) {
      if (const auto v = simulator.node(PeerId(i)).read("k")) return v->id;
    }
    return version::VersionId{};
  }();

  // Count whole-population awareness (online + offline).
  std::size_t aware_total = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    if (simulator.node(PeerId(i)).knows_version(value_id)) ++aware_total;
  }
  // Push reached the online population fast…
  EXPECT_GT(metrics.final_aware_fraction(), 0.9);
  // …and pull extended it far beyond the initially-online 30%.
  EXPECT_GT(static_cast<double>(aware_total) / 200.0, 0.6);
  EXPECT_GT(metrics.total_pull_messages(), 0u);
}

TEST(HybridIntegration, SelfTuningSurvivesWithoutSchedule) {
  // Self-tuning PF with no a-priori decay still spreads the update and uses
  // fewer messages than blind flooding.
  sim::RoundSimConfig flood_config;
  flood_config.population = 500;
  flood_config.gossip.estimated_total_replicas = 500;
  flood_config.gossip.fanout_fraction = 0.04;
  flood_config.reconnect_pull = false;
  flood_config.round_timers = false;
  flood_config.seed = 17;
  auto tuned_config = flood_config;
  tuned_config.gossip.self_tuning = true;

  auto flood = sim::make_push_phase_simulator(flood_config, 0.4, 0.98);
  auto tuned = sim::make_push_phase_simulator(tuned_config, 0.4, 0.98);
  const auto flood_metrics = flood->propagate_update();
  const auto tuned_metrics = tuned->propagate_update();

  EXPECT_GT(tuned_metrics.final_aware_fraction(), 0.9);
  EXPECT_LT(tuned_metrics.total_push_messages(),
            flood_metrics.total_push_messages());
}

}  // namespace
}  // namespace updp2p
