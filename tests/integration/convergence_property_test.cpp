// Property: N replicas exchanging pushes and pulls under ARBITRARY message
// interleavings, losses and reorderings converge to identical stores after
// a final clean reconciliation sweep — the strongest statement of the
// paper's eventual quasi-consistency, checked over many random schedules.
#include <gtest/gtest.h>

#include <deque>

#include "gossip/node.hpp"

namespace updp2p {
namespace {

using common::PeerId;
using common::Rng;
using gossip::OutboundMessage;
using gossip::ReplicaNode;

constexpr std::uint32_t kNodes = 4;

struct InFlight {
  PeerId from;
  OutboundMessage message;
};

class ConvergenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvergenceProperty, AnyScheduleConvergesAfterCleanSweep) {
  Rng rng(GetParam() * 1'000'003);

  gossip::GossipConfig config;
  config.estimated_total_replicas = kNodes;
  config.fanout_fraction = 0.5;
  config.pull.contacts_per_attempt = 2;
  config.pull.no_update_timeout = 1'000'000;  // pulls only when we say so

  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  std::vector<PeerId> everyone;
  for (std::uint32_t i = 0; i < kNodes; ++i) everyone.emplace_back(i);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(
        std::make_unique<ReplicaNode>(PeerId(i), config,
                                      common::StreamRng(rng(), i)));
    std::vector<PeerId> view;
    for (std::uint32_t j = 0; j < kNodes; ++j) {
      if (j != i) view.emplace_back(j);
    }
    nodes.back()->bootstrap(view);
  }

  // Random schedule: interleave writes, deletes, reconnect-pulls and
  // message deliveries in arbitrary order, dropping 30% and shuffling the
  // in-flight queue constantly.
  std::deque<InFlight> in_flight;
  common::Round now = 0;
  auto enqueue = [&in_flight](PeerId from, std::vector<OutboundMessage> out) {
    for (auto& message : out) {
      in_flight.push_back(InFlight{from, std::move(message)});
    }
  };

  for (int step = 0; step < 400; ++step, now += rng.bernoulli(0.4) ? 1 : 0) {
    const auto dice = rng.uniform_below(100);
    const PeerId actor(static_cast<std::uint32_t>(rng.uniform_below(kNodes)));
    if (dice < 25) {
      enqueue(actor, nodes[actor.value()]->publish(
                         "k" + std::to_string(rng.uniform_below(3)),
                         "v" + std::to_string(step), now));
    } else if (dice < 30) {
      enqueue(actor, nodes[actor.value()]->remove(
                         "k" + std::to_string(rng.uniform_below(3)), now));
    } else if (dice < 40) {
      enqueue(actor, nodes[actor.value()]->on_reconnect(now));
    } else if (!in_flight.empty()) {
      // Deliver a RANDOM in-flight message (arbitrary reordering).
      const std::size_t pick = rng.pick_index(in_flight.size());
      std::swap(in_flight[pick], in_flight.back());
      InFlight delivery = std::move(in_flight.back());
      in_flight.pop_back();
      if (rng.bernoulli(0.3)) continue;  // lost
      enqueue(delivery.message.to,
              nodes[delivery.message.to.value()]->handle_message(
                  delivery.from, delivery.message.payload, now));
    }
  }
  in_flight.clear();  // whatever is still flying is lost

  // Clean sweep: two rounds of loss-free pairwise pulls in both directions.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::uint32_t a = 0; a < kNodes; ++a) {
      for (std::uint32_t b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        ++now;
        // Direct pull a <- b.
        const gossip::PullRequest request{
            nodes[a]->store().summary(), nodes[a]->store().stored_ids(),
            nodes[a]->store().content_digest()};
        const auto responses = nodes[b]->handle_message(
            PeerId(a), gossip::GossipPayload{request}, now);
        for (const auto& response : responses) {
          if (std::holds_alternative<gossip::PullResponse>(response.payload)) {
            (void)nodes[a]->handle_message(PeerId(b), response.payload, now);
          }
        }
      }
    }
  }

  // All stores identical: same digest, same summaries, same winners.
  for (std::uint32_t i = 1; i < kNodes; ++i) {
    EXPECT_EQ(nodes[0]->store().content_digest(),
              nodes[i]->store().content_digest())
        << "store digests diverge at node " << i;
    EXPECT_EQ(nodes[0]->store().summary(), nodes[i]->store().summary());
  }
  for (const auto& key : nodes[0]->store().keys()) {
    const auto reference = nodes[0]->store().read(key);
    for (std::uint32_t i = 1; i < kNodes; ++i) {
      const auto other = nodes[i]->store().read(key);
      ASSERT_EQ(reference.has_value(), other.has_value()) << key;
      if (reference.has_value()) {
        EXPECT_EQ(reference->id, other->id) << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ConvergenceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace updp2p
