// Shared multi-process live-test harness.
//
// live_convergence_test and live_recovery_test both spawn real
// updp2p-peerd daemons on loopback UDP ports and synchronise on the
// daemons' status files. The mechanics — port reservation, fork/exec,
// READY polling with bind-race retries, SIGKILL + reap, deadline
// polling — are identical between them and live here once.
//
// Usage: derive a fixture from LiveHarness, fill `options_` (daemon
// binary path, watch key, seed, publish payload) before the first
// make_specs() call, then drive the cluster with spawn_with_retry /
// kill_peer / poll_until. All helpers use gtest assertions, so fatal
// failures propagate exactly as they would from a local helper; guard
// call sites with `if (HasFatalFailure()) return;` as before.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace updp2p::testsupport {

/// Reserves a free loopback UDP port by binding port 0 and closing the
/// socket. Racy in principle; spawn_with_retry retries on bind failure.
[[nodiscard]] std::optional<std::uint16_t> reserve_udp_port();

/// Non-empty lines of `path`, in file order. Missing file = empty.
[[nodiscard]] std::vector<std::string> read_lines(const std::string& path);

/// Last status line starting with `prefix` (e.g. "HAVE live-key"), if any.
[[nodiscard]] std::optional<std::string> find_line(const std::string& path,
                                                   const std::string& prefix);

/// Second whitespace-separated token of the last line with `prefix`.
[[nodiscard]] std::optional<std::string> line_value(const std::string& path,
                                                    const std::string& prefix);

/// One daemon's identity within a cluster phase.
struct PeerSpec {
  int id = 0;
  std::uint16_t port = 0;
  std::string status_path;
  std::string data_dir;  ///< empty = volatile peer (no --data-dir)
  bool publisher = false;
};

/// Knobs shared by every daemon the harness spawns. Fill before the
/// first make_specs(); peerd_path and watch_key are mandatory.
struct ClusterOptions {
  std::string peerd_path;
  std::string watch_key;
  int peer_count = 7;
  std::uint64_t seed = 0;
  int round_ms = 150;
  int retry_initial_ms = 80;
  std::string publish_value;
  int publish_at_ms = 400;
};

class LiveHarness : public ::testing::Test {
 protected:
  /// Generous wall-clock bound; poll loops exit the moment the
  /// condition holds.
  static constexpr std::chrono::seconds kDeadline{90};
  static constexpr std::chrono::milliseconds kPollInterval{50};

  void SetUp() override;

  /// SIGKILLs every child, scrubs status files and data dirs.
  void TearDown() override;

  /// SIGKILL + reap every live child (idempotent).
  void kill_all();

  /// Fresh specs (new ports, clean status files) for one cluster
  /// phase. Peer 0 publishes. `prefix` namespaces the status/data
  /// files so sequential phases never read each other's leftovers;
  /// peers listed in `durable` get a --data-dir.
  void make_specs(const std::string& prefix = "peer",
                  const std::vector<int>& durable = {});

  /// "id:port,..." for every peer except `self`.
  [[nodiscard]] std::string peers_flag(int self) const;

  /// fork+exec one daemon; stores the pid at index `spec.id`.
  void spawn(const PeerSpec& spec);

  /// SIGKILL + reap one peer; marks its pid slot free.
  void kill_peer(int id);

  /// Polls `condition` until true or kDeadline passes.
  template <typename Condition>
  [[nodiscard]] static bool poll_until(Condition&& condition) {
    const auto deadline = std::chrono::steady_clock::now() + kDeadline;
    while (!condition()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      sleep_poll_interval();
    }
    return true;
  }

  /// Spawns peer `id`, retrying on a fresh port only for the initial
  /// bring-up (`allow_reassign`); restarted victims must keep their
  /// port because the other peers' directories already point at it.
  void spawn_with_retry(int id, bool allow_reassign = true);

  /// Waits for the READY line; reaps (and marks pids_[id] = -1) if the
  /// child exits first.
  [[nodiscard]] bool poll_ready(int id);

  /// True once peer `id` reports "HAVE <watch_key>".
  [[nodiscard]] bool wait_have(int id);

  /// True once every non-publisher peer NOT in `except` reports HAVE.
  [[nodiscard]] bool wait_have_all_except(const std::vector<int>& except);

  /// Blocks until peer 0 writes "PUBLISHED <watch_key>"; returns that
  /// line (empty string on deadline — assert on .empty() at the call
  /// site).
  [[nodiscard]] std::string wait_published();

  ClusterOptions options_;
  std::string dir_;
  std::vector<PeerSpec> specs_;
  std::vector<pid_t> pids_;

 private:
  static void sleep_poll_interval();
};

}  // namespace updp2p::testsupport
