#include "support/live_harness.hpp"

#include <sys/socket.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <netinet/in.h>
#include <sstream>
#include <thread>
#include <unistd.h>

namespace updp2p::testsupport {

std::optional<std::uint16_t> reserve_udp_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::optional<std::string> find_line(const std::string& path,
                                     const std::string& prefix) {
  std::optional<std::string> found;
  for (const std::string& line : read_lines(path)) {
    if (line.rfind(prefix, 0) == 0) found = line;
  }
  return found;
}

std::optional<std::string> line_value(const std::string& path,
                                      const std::string& prefix) {
  const auto line = find_line(path, prefix);
  if (!line) return std::nullopt;
  std::istringstream parse(*line);
  std::string tag, value;
  parse >> tag >> value;
  if (value.empty()) return std::nullopt;
  return value;
}

void LiveHarness::SetUp() {
  char tmpl[] = "/tmp/updp2p-live-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  dir_ = tmpl;
}

void LiveHarness::TearDown() {
  kill_all();
  // Best-effort scrub (data dirs may hold wal.log/snapshot.bin).
  for (const PeerSpec& peer : specs_) {
    (void)std::remove(peer.status_path.c_str());
    if (!peer.data_dir.empty()) {
      (void)std::remove((peer.data_dir + "/wal.log").c_str());
      (void)std::remove((peer.data_dir + "/snapshot.bin").c_str());
      (void)::rmdir(peer.data_dir.c_str());
    }
  }
  (void)::rmdir(dir_.c_str());
}

void LiveHarness::kill_all() {
  for (pid_t& pid : pids_) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
}

void LiveHarness::make_specs(const std::string& prefix,
                             const std::vector<int>& durable) {
  kill_all();
  specs_.clear();
  pids_.assign(static_cast<std::size_t>(options_.peer_count), -1);
  for (int i = 0; i < options_.peer_count; ++i) {
    const auto port = reserve_udp_port();
    ASSERT_TRUE(port.has_value()) << "could not reserve a loopback port";
    PeerSpec spec;
    spec.id = i;
    spec.port = *port;
    spec.status_path =
        dir_ + "/" + prefix + "-" + std::to_string(i) + ".status";
    (void)std::remove(spec.status_path.c_str());
    for (const int durable_id : durable) {
      if (durable_id == i) {
        spec.data_dir = dir_ + "/" + prefix + "-data-" + std::to_string(i);
      }
    }
    spec.publisher = (i == 0);
    specs_.push_back(spec);
  }
}

std::string LiveHarness::peers_flag(int self) const {
  std::string flag;
  for (const PeerSpec& peer : specs_) {
    if (peer.id == self) continue;
    if (!flag.empty()) flag += ',';
    flag += std::to_string(peer.id) + ':' + std::to_string(peer.port);
  }
  return flag;
}

void LiveHarness::spawn(const PeerSpec& spec) {
  std::vector<std::string> argv_storage = {
      options_.peerd_path,
      "--self",          std::to_string(spec.id),
      "--port",          std::to_string(spec.port),
      "--peers",         peers_flag(spec.id),
      "--status",        spec.status_path,
      "--watch",         options_.watch_key,
      "--round-ms",      std::to_string(options_.round_ms),
      "--retry-initial-ms", std::to_string(options_.retry_initial_ms),
      "--population",    std::to_string(options_.peer_count),
      "--seed",          std::to_string(options_.seed),
  };
  if (!spec.data_dir.empty()) {
    argv_storage.insert(argv_storage.end(), {"--data-dir", spec.data_dir});
  }
  if (spec.publisher) {
    argv_storage.insert(
        argv_storage.end(),
        {"--publish-key", options_.watch_key, "--publish-value",
         options_.publish_value, "--publish-at-ms",
         std::to_string(options_.publish_at_ms)});
  }
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& arg : argv_storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: silence stdout so gtest output stays readable.
    std::freopen("/dev/null", "w", stdout);
    ::execv(argv[0], argv.data());
    std::perror("execv updp2p-peerd");
    std::_Exit(127);
  }
  if (pids_.size() <= static_cast<std::size_t>(spec.id)) {
    pids_.resize(static_cast<std::size_t>(spec.id) + 1, -1);
  }
  pids_[static_cast<std::size_t>(spec.id)] = pid;
}

void LiveHarness::kill_peer(int id) {
  const pid_t pid = pids_.at(static_cast<std::size_t>(id));
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  pids_[static_cast<std::size_t>(id)] = -1;
}

void LiveHarness::spawn_with_retry(int id, bool allow_reassign) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    spawn(specs_[static_cast<std::size_t>(id)]);
    if (poll_ready(id)) return;
    const bool child_died = pids_.at(static_cast<std::size_t>(id)) == -1;
    if (child_died && allow_reassign) {
      // Lost the reserve/bind race: re-reserve and try again.
      const auto port = reserve_udp_port();
      ASSERT_TRUE(port.has_value());
      specs_[static_cast<std::size_t>(id)].port = *port;
      continue;
    }
    if (child_died) {
      // Port was just freed by SIGKILL+waitpid, so a conflict here is a
      // real failure, not a race worth retrying on a different port.
      FAIL() << "restarted peer " << id << " exited before READY";
    }
    FAIL() << "peer " << id << " alive but never wrote READY";
  }
  FAIL() << "peer " << id << " failed to bind after 3 attempts";
}

bool LiveHarness::poll_ready(int id) {
  const std::string& path = specs_[static_cast<std::size_t>(id)].status_path;
  const std::string want =
      "READY " + std::to_string(specs_[static_cast<std::size_t>(id)].port);
  // Shorter per-spawn deadline so bind-race retries stay cheap.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (find_line(path, want).has_value()) return true;
    const pid_t pid = pids_.at(static_cast<std::size_t>(id));
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      pids_[static_cast<std::size_t>(id)] = -1;
      return false;
    }
    sleep_poll_interval();
  }
  return false;
}

bool LiveHarness::wait_have(int id) {
  return poll_until([&] {
    return find_line(specs_[static_cast<std::size_t>(id)].status_path,
                     "HAVE " + options_.watch_key)
        .has_value();
  });
}

bool LiveHarness::wait_have_all_except(const std::vector<int>& except) {
  return poll_until([&] {
    for (const PeerSpec& spec : specs_) {
      if (spec.publisher) continue;
      bool skipped = false;
      for (const int id : except) skipped = skipped || id == spec.id;
      if (skipped) continue;
      if (!find_line(spec.status_path, "HAVE " + options_.watch_key)
               .has_value()) {
        return false;
      }
    }
    return true;
  });
}

std::string LiveHarness::wait_published() {
  const std::string prefix = "PUBLISHED " + options_.watch_key;
  const std::string& status = specs_[0].status_path;
  if (!poll_until([&] { return find_line(status, prefix).has_value(); })) {
    return {};
  }
  return *find_line(status, prefix);
}

void LiveHarness::sleep_poll_interval() {
  std::this_thread::sleep_for(kPollInterval);
}

}  // namespace updp2p::testsupport
