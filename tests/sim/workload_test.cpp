#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace updp2p::sim {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.key_count = 10;
  config.zipf_exponent = 1.0;
  config.update_rate = 0.5;
  config.query_rate = 1.0;
  config.seed = 9;
  return config;
}

TEST(Workload, OperationsAreTimeOrderedWithinHorizon) {
  WorkloadGenerator generator(base_config());
  const auto operations = generator.generate(200.0);
  ASSERT_FALSE(operations.empty());
  common::SimTime previous = 0.0;
  for (const auto& op : operations) {
    EXPECT_GE(op.at, previous);
    EXPECT_LT(op.at, 200.0);
    previous = op.at;
  }
}

TEST(Workload, RatesApproximatelyRespected) {
  WorkloadGenerator generator(base_config());
  const auto operations = generator.generate(2'000.0);
  std::size_t updates = 0, queries = 0;
  for (const auto& op : operations) {
    (op.kind == Operation::Kind::kUpdate ? updates : queries) += 1;
  }
  EXPECT_NEAR(static_cast<double>(updates), 1'000.0, 120.0);
  EXPECT_NEAR(static_cast<double>(queries), 2'000.0, 180.0);
}

TEST(Workload, ZipfSkewsTowardHotKeys) {
  auto config = base_config();
  config.zipf_exponent = 1.2;
  WorkloadGenerator generator(config);
  std::map<std::string, int> counts;
  for (const auto& op : generator.generate(3'000.0)) counts[op.key]++;
  // Rank 0 must clearly dominate the coldest key.
  EXPECT_GT(counts[WorkloadGenerator::key_name(0)],
            4 * std::max(1, counts[WorkloadGenerator::key_name(9)]));
}

TEST(Workload, UniformWhenExponentZero) {
  auto config = base_config();
  config.zipf_exponent = 0.0;
  config.query_rate = 5.0;
  config.update_rate = 0.0;
  WorkloadGenerator generator(config);
  std::map<std::string, int> counts;
  const auto operations = generator.generate(4'000.0);
  for (const auto& op : operations) counts[op.key]++;
  const double expected =
      static_cast<double>(operations.size()) / 10.0;
  for (const auto& [key, count] : counts) {
    EXPECT_NEAR(count, expected, expected * 0.25) << key;
  }
}

TEST(Workload, UpdatePayloadsCarryMonotoneRevisions) {
  auto config = base_config();
  config.query_rate = 0.0;
  WorkloadGenerator generator(config);
  std::map<std::string, std::uint64_t> last_rev;
  for (const auto& op : generator.generate(1'000.0)) {
    const auto pos = op.payload.rfind("#rev");
    ASSERT_NE(pos, std::string::npos);
    const auto rev = std::stoull(op.payload.substr(pos + 4));
    EXPECT_GT(rev, last_rev[op.key]);
    last_rev[op.key] = rev;
  }
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadGenerator a(base_config());
  WorkloadGenerator b(base_config());
  const auto ops_a = a.generate(100.0);
  const auto ops_b = b.generate(100.0);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].at, ops_b[i].at);
    EXPECT_EQ(ops_a[i].key, ops_b[i].key);
  }
}

TEST(Workload, ZeroRatesYieldNothing) {
  auto config = base_config();
  config.update_rate = 0.0;
  config.query_rate = 0.0;
  WorkloadGenerator generator(config);
  EXPECT_TRUE(generator.generate(100.0).empty());
}

TEST(Zipf, RanksStayInRangeAndSkew) {
  common::Rng rng(11);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50'000; ++i) {
    const auto rank = rng.zipf(20, 1.0);
    ASSERT_LT(rank, 20u);
    ++counts[rank];
  }
  // Monotone-ish decay: rank 0 > rank 4 > rank 19.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[19]);
  // Rank 0 frequency ≈ 1 / H_20 ≈ 0.278 for s=1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 50'000.0, 0.278, 0.03);
}

TEST(Zipf, DegenerateCases) {
  common::Rng rng(12);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
  EXPECT_EQ(rng.zipf(0, 1.0), 0u);
}

}  // namespace
}  // namespace updp2p::sim
