// Golden-seed determinism suite.
//
// The hot-path work (dense peer sets, shared arenas, the sharded bus,
// incremental metrics, pooled sweeps) is pure mechanics: it must not
// change a single RNG draw or metric. These tests pin complete runs of
// the round simulator, the event simulator and a seed sweep to FNV-1a
// fingerprints. Any behavioural drift — a reordered sample, a skipped
// bernoulli draw, a different merge order — changes a fingerprint and
// fails loudly. The constants were re-captured when per-node RNGs moved
// to counter-based streams, again when sampling switched to pick-time
// rejection, and again when flooding lists moved to the compressed
// ChunkedPeerSet (views no longer keep an insertion-ordered member
// vector: sparse views rank-select in ascending-id order, dense views
// rejection-sample the id space directly, and a duplicate push no longer
// merges its flooding list — all three change which peers the same rolls
// land on. The bus's canonical (to, from, seq) delivery order — what
// ShardInvariance guards — was untouched). The in-memory fingerprints
// (PlainPushPhase, EventSimulator) were re-captured once more when
// OutboundMessage::size_bytes switched from the heuristic wire_size model
// to the exact codec length (gossip::encoded_size): only the bytes words
// moved — message counts, awareness and RNG draws are pinned unchanged,
// and the serialize-mode goldens (FullFeatureRun, ShardInvariance), which
// always charged exact frame sizes, kept their constants across the
// zero-copy wire-path rewrite.
//
// On top of the pinned single-thread goldens, ShardInvariance asserts the
// core promise of the sharded engine: the SAME fingerprint at 1, 2 and 8
// shard threads. Sharding may only change who executes the work, never
// what the work computes.
//
// If a future change *intentionally* alters protocol behaviour, re-capture
// the constants below from a build of that change (see docs/benchmarks.md,
// "Performance methodology").
#include "churn/churn_model.hpp"
#include "sim/event_simulator.hpp"
#include "sim/round_simulator.hpp"
#include "sim/sweep.hpp"

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

namespace updp2p {
namespace {

/// FNV-1a over explicit 64-bit words; doubles contribute their exact bits.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void add(double d) { add(std::bit_cast<std::uint64_t>(d)); }
};

std::uint64_t fingerprint(const sim::RunMetrics& metrics) {
  Fnv f;
  f.add(metrics.population);
  f.add(metrics.initial_online);
  f.add(metrics.rounds.size());
  for (const auto& r : metrics.rounds) {
    f.add(static_cast<std::uint64_t>(r.round));
    f.add(r.online);
    f.add(r.aware_online);
    f.add(r.messages);
    f.add(r.push_messages);
    f.add(r.pull_messages);
    f.add(r.ack_messages);
    f.add(r.query_messages);
    f.add(r.duplicates);
    f.add(r.bytes);
  }
  return f.h;
}

sim::RoundSimConfig plain_push_config() {
  sim::RoundSimConfig config;
  config.population = 400;
  config.gossip.estimated_total_replicas = 400;
  config.gossip.fanout_fraction = 0.02;
  config.reconnect_pull = false;
  config.round_timers = false;
  // Seed chosen for a live multi-round spread under the current draw
  // sequence. Blind pushing means ~6% of seeds die in round 0 (every
  // initial push lands on an offline peer — legitimate §4 behaviour, but a
  // dead run pins none of the forwarding machinery).
  config.seed = 7;
  return config;
}

TEST(GoldenDeterminism, PlainPushPhase) {
  auto simulator = sim::make_push_phase_simulator(plain_push_config(),
                                                  /*online=*/0.3,
                                                  /*sigma=*/0.95);
  const auto metrics = simulator->propagate_update();
  EXPECT_EQ(metrics.rounds.size(), 13u);
  EXPECT_EQ(metrics.total_messages(), 624u);
  EXPECT_DOUBLE_EQ(metrics.final_aware_fraction(), 0.89333333333333331);
  EXPECT_EQ(simulator->bus_stats().messages_sent, 624u);
  EXPECT_EQ(fingerprint(metrics), 4236387408679231809ULL);
}

TEST(GoldenDeterminism, FullFeatureRun) {
  // Exercises every hot path at once: self-tuning forwards, capped
  // kDropRandom flooding lists, acks with suppression and preferred
  // weighting, periodic pulls, partial initial views, the wire codec on
  // every message, random loss, and churn with rejoins.
  sim::RoundSimConfig config;
  config.population = 300;
  config.gossip.estimated_total_replicas = 300;
  config.gossip.fanout_fraction = 0.03;
  config.gossip.self_tuning = true;
  config.gossip.partial_list.mode = gossip::PartialListMode::kDropRandom;
  config.gossip.partial_list.max_entries = 64;
  config.gossip.acks.enabled = true;
  config.gossip.acks.suppression_rounds = 5;
  config.gossip.acks.preferred_weight = 3;
  config.gossip.pull.contacts_per_attempt = 2;
  config.gossip.pull.no_update_timeout = 8;
  config.initial_view_size = 25;
  config.serialize_messages = true;
  config.message_loss = 0.05;
  config.max_rounds = 60;
  config.seed = 99;
  auto churn = std::make_unique<churn::BernoulliChurn>(300, 0.5, 0.95, 0.1);
  sim::RoundSimulator simulator(config, std::move(churn));

  const auto metrics = simulator.propagate_update();
  EXPECT_EQ(metrics.rounds.size(), 61u);
  EXPECT_EQ(metrics.total_messages(), 5115u);
  EXPECT_DOUBLE_EQ(metrics.final_aware_fraction(), 1.0);
  EXPECT_EQ(simulator.bus_stats().messages_sent, 6397u);
  EXPECT_EQ(simulator.bus_stats().messages_delivered, 4469u);
  EXPECT_EQ(simulator.bus_stats().messages_dropped, 273u);
  EXPECT_EQ(fingerprint(metrics), 6120119791987765793ULL);
}

TEST(GoldenDeterminism, EventSimulator) {
  sim::EventSimConfig config;
  config.population = 150;
  config.gossip.estimated_total_replicas = 150;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.pull.lazy = true;
  config.mean_online_time = 50.0;
  config.mean_offline_time = 150.0;
  config.initial_view_size = 20;
  config.seed = 77;
  sim::EventSimulator es(config);
  es.schedule_publish(1.0, "k1", "v1");
  es.schedule_remove(30.0, "k1");
  es.schedule_loss_window(10.0, 20.0, 0.5);
  es.run_until(120.0);

  const auto& stats = es.stats();
  EXPECT_EQ(stats.messages_sent, 952u);
  EXPECT_EQ(stats.messages_delivered, 369u);
  EXPECT_EQ(es.online_count(), 30u);
  Fnv f;
  f.add(stats.messages_sent);
  f.add(stats.messages_delivered);
  f.add(stats.messages_to_offline);
  f.add(stats.messages_lost);
  f.add(stats.push_messages);
  f.add(stats.pull_messages);
  f.add(stats.ack_messages);
  f.add(stats.query_messages);
  f.add(stats.bytes_sent);
  f.add(stats.reconnects);
  f.add(es.online_count());
  f.add(es.aware_fraction_total(es.published().front().id));
  EXPECT_EQ(f.h, 10263162818406648865ULL);
}

TEST(GoldenDeterminism, ShardInvariance) {
  // Bit-identical results at any shard/thread count: run the full-feature
  // configuration (loss, churn, codec, acks, pulls) at 1, 2 and 8 shard
  // threads and require identical fingerprints AND identical bus totals.
  const auto run = [](unsigned shard_threads) {
    sim::RoundSimConfig config;
    config.population = 300;
    config.gossip.estimated_total_replicas = 300;
    config.gossip.fanout_fraction = 0.03;
    config.gossip.self_tuning = true;
    config.gossip.partial_list.mode = gossip::PartialListMode::kDropRandom;
    config.gossip.partial_list.max_entries = 64;
    config.gossip.acks.enabled = true;
    config.gossip.acks.suppression_rounds = 5;
    config.gossip.acks.preferred_weight = 3;
    config.gossip.pull.contacts_per_attempt = 2;
    config.gossip.pull.no_update_timeout = 8;
    config.initial_view_size = 25;
    config.serialize_messages = true;
    config.message_loss = 0.05;
    config.max_rounds = 60;
    config.seed = 99;
    config.shard_threads = shard_threads;
    auto churn = std::make_unique<churn::BernoulliChurn>(300, 0.5, 0.95, 0.1);
    sim::RoundSimulator simulator(config, std::move(churn));
    const auto metrics = simulator.propagate_update();
    if (shard_threads == 1) {
      // The sequential sharded run must reproduce the *pinned*
      // FullFeatureRun behaviour, not merely a self-consistent one.
      EXPECT_EQ(fingerprint(metrics), 6120119791987765793ULL);
    }
    Fnv f;
    f.add(fingerprint(metrics));
    f.add(simulator.bus_stats().messages_sent);
    f.add(simulator.bus_stats().messages_delivered);
    f.add(simulator.bus_stats().messages_dropped);
    f.add(simulator.bus_stats().messages_to_offline);
    f.add(simulator.bus_stats().bytes_sent);
    return f.h;
  };

  const std::uint64_t sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

TEST(GoldenDeterminism, SeedSweepAggregate) {
  // The sweep pool hands indices out in scheduling-dependent order; the
  // deterministic by-seed merge must make the aggregate independent of it.
  const auto body = [](std::uint64_t seed) {
    auto config = plain_push_config();
    config.seed = seed;
    auto simulator = sim::make_push_phase_simulator(config, 0.3, 0.95);
    return simulator->propagate_update();
  };
  const auto aggregate = sim::sweep_aggregate(5'000, 5, body, 4);
  // All five seeds spread for multiple rounds under the current draw
  // sequence; the pin is about scheduling-independence, not the values.
  EXPECT_DOUBLE_EQ(aggregate.messages_per_initial_online.mean(),
                   4.6566666666666663);
  EXPECT_DOUBLE_EQ(aggregate.final_aware_fraction.mean(),
                   0.80180563997508691);
  EXPECT_DOUBLE_EQ(aggregate.rounds_to_quiescence.mean(),
                   8.8000000000000007);
  EXPECT_DOUBLE_EQ(aggregate.duplicates.mean(), 56.399999999999999);
  EXPECT_DOUBLE_EQ(aggregate.pull_messages.mean(), 0.0);
}

}  // namespace
}  // namespace updp2p
