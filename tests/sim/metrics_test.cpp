#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace updp2p::sim {
namespace {

RunMetrics sample_run() {
  RunMetrics run;
  run.population = 100;
  run.initial_online = 20;
  RoundMetrics r0;
  r0.round = 0;
  r0.online = 20;
  r0.aware_online = 2;
  r0.push_messages = 10;
  r0.messages = 10;
  r0.bytes = 1'000;
  RoundMetrics r1;
  r1.round = 1;
  r1.online = 19;
  r1.aware_online = 10;
  r1.push_messages = 30;
  r1.pull_messages = 4;
  r1.duplicates = 3;
  r1.messages = 34;
  r1.bytes = 3'000;
  RoundMetrics r2;
  r2.round = 2;
  r2.online = 19;
  r2.aware_online = 10;  // no growth
  r2.messages = 0;
  run.rounds = {r0, r1, r2};
  return run;
}

TEST(RunMetrics, Totals) {
  const auto run = sample_run();
  EXPECT_EQ(run.total_messages(), 44u);
  EXPECT_EQ(run.total_push_messages(), 40u);
  EXPECT_EQ(run.total_pull_messages(), 4u);
  EXPECT_EQ(run.total_duplicates(), 3u);
  EXPECT_EQ(run.total_bytes(), 4'000u);
}

TEST(RunMetrics, AwareFraction) {
  const auto run = sample_run();
  EXPECT_NEAR(run.final_aware_fraction(), 10.0 / 19.0, 1e-12);
}

TEST(RunMetrics, MessagesPerInitialOnline) {
  const auto run = sample_run();
  EXPECT_DOUBLE_EQ(run.messages_per_initial_online(), 2.0);
}

TEST(RunMetrics, RoundsToQuiescenceIsLastGrowthRound) {
  const auto run = sample_run();
  EXPECT_EQ(run.rounds_to_quiescence(), 1u);
}

TEST(RunMetrics, EmptyRunIsSafe) {
  RunMetrics run;
  EXPECT_EQ(run.total_messages(), 0u);
  EXPECT_EQ(run.final_aware_fraction(), 0.0);
  EXPECT_EQ(run.messages_per_initial_online(), 0.0);
  EXPECT_EQ(run.rounds_to_quiescence(), 0u);
}

TEST(RunMetrics, SeriesIsCumulativePerInitialOnline) {
  const auto series = sample_run().to_series("x");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series.y[0], 0.5, 1e-12);
  EXPECT_NEAR(series.y[1], 2.0, 1e-12);
  EXPECT_NEAR(series.x[1], 10.0 / 19.0, 1e-12);
}

TEST(AggregateMetrics, AveragesRuns) {
  AggregateMetrics aggregate;
  aggregate.add(sample_run());
  aggregate.add(sample_run());
  EXPECT_EQ(aggregate.messages_per_initial_online.count(), 2u);
  EXPECT_DOUBLE_EQ(aggregate.messages_per_initial_online.mean(), 2.0);
  EXPECT_DOUBLE_EQ(aggregate.rounds_to_quiescence.mean(), 1.0);
  EXPECT_DOUBLE_EQ(aggregate.duplicates.mean(), 3.0);
}

}  // namespace
}  // namespace updp2p::sim
