// Wire-equivalence suite: the zero-copy serialized path (interned
// SharedFrames on the bus, probe-classified duplicates, streamed
// first-receipt decodes) must be OBSERVABLY IDENTICAL to delivering the
// in-memory payloads — same deliveries, same duplicate counts, same
// awareness curve, same per-node protocol state, at every shard count.
// This is the acceptance gate for the lazy-decode trust contract: if the
// probe path ever classified a message differently from a full decode, or
// the streaming decoder ever produced a different flooding list, these
// fingerprints would split.
#include "churn/churn_model.hpp"
#include "sim/round_simulator.hpp"

#include <bit>
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

namespace updp2p {
namespace {

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void add(double d) { add(std::bit_cast<std::uint64_t>(d)); }
};

/// The full-feature configuration of the golden suite: self-tuning
/// forwards, capped flooding lists, acks, pulls, loss and churn with
/// rejoins — every message kind and every duplicate/first-receipt path is
/// live on the wire.
sim::RoundSimConfig full_feature_config(bool serialize,
                                        unsigned shard_threads) {
  sim::RoundSimConfig config;
  config.population = 300;
  config.gossip.estimated_total_replicas = 300;
  config.gossip.fanout_fraction = 0.03;
  config.gossip.self_tuning = true;
  config.gossip.partial_list.mode = gossip::PartialListMode::kDropRandom;
  config.gossip.partial_list.max_entries = 64;
  config.gossip.acks.enabled = true;
  config.gossip.acks.suppression_rounds = 5;
  config.gossip.acks.preferred_weight = 3;
  config.gossip.pull.contacts_per_attempt = 2;
  config.gossip.pull.no_update_timeout = 8;
  config.initial_view_size = 25;
  config.serialize_messages = serialize;
  config.message_loss = 0.05;
  config.max_rounds = 60;
  config.seed = 99;
  config.shard_threads = shard_threads;
  return config;
}

/// Everything observable about a run, folded: per-round metrics (messages
/// by kind, duplicates, bytes, awareness), merged bus totals, and the
/// complete per-node protocol statistics.
std::uint64_t run_fingerprint(bool serialize, unsigned shard_threads) {
  auto churn = std::make_unique<churn::BernoulliChurn>(300, 0.5, 0.95, 0.1);
  sim::RoundSimulator simulator(full_feature_config(serialize, shard_threads),
                                std::move(churn));
  const auto metrics = simulator.propagate_update();

  Fnv f;
  f.add(metrics.rounds.size());
  for (const auto& r : metrics.rounds) {
    f.add(static_cast<std::uint64_t>(r.round));
    f.add(r.online);
    f.add(r.aware_online);
    f.add(r.push_messages);
    f.add(r.pull_messages);
    f.add(r.ack_messages);
    f.add(r.query_messages);
    f.add(r.duplicates);
    f.add(r.bytes);
  }
  const net::BusStats bus = simulator.bus_stats();
  f.add(bus.messages_sent);
  f.add(bus.messages_delivered);
  f.add(bus.messages_to_offline);
  f.add(bus.messages_dropped);
  f.add(bus.bytes_sent);
  for (std::uint32_t i = 0; i < 300; ++i) {
    const gossip::NodeStats& stats =
        simulator.node(common::PeerId(i)).stats();
    f.add(stats.pushes_received);
    f.add(stats.duplicate_pushes);
    f.add(stats.pushes_forwarded);
    f.add(stats.forwards_suppressed);
    f.add(stats.updates_learned_push);
    f.add(stats.updates_learned_pull);
    f.add(stats.pull_requests_sent);
    f.add(stats.pull_requests_received);
    f.add(stats.pull_responses_received);
    f.add(stats.acks_sent);
    f.add(stats.acks_received);
    f.add(stats.members_discovered);
    f.add(stats.bytes_sent);
  }
  return f.h;
}

TEST(WireEquivalence, SerializedRunIsBitIdenticalAtEveryShardCount) {
  const std::uint64_t in_memory = run_fingerprint(false, 1);
  for (const unsigned shards : {1u, 2u, 8u}) {
    EXPECT_EQ(run_fingerprint(true, shards), in_memory)
        << "serialize=true, shards=" << shards;
    EXPECT_EQ(run_fingerprint(false, shards), in_memory)
        << "serialize=false, shards=" << shards;
  }
}

TEST(WireEquivalence, PlainPushPhaseMatchesWithoutAcksOrPulls) {
  // The duplicate-heavy regime: blind pushing, no acks, no pulls — the
  // probe-only duplicate path carries almost all wire-mode deliveries.
  const auto run = [](bool serialize) {
    sim::RoundSimConfig config;
    config.population = 400;
    config.gossip.estimated_total_replicas = 400;
    config.gossip.fanout_fraction = 0.05;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.serialize_messages = serialize;
    config.seed = 7;
    auto simulator = sim::make_push_phase_simulator(config, 0.6, 0.98);
    const auto metrics = simulator->propagate_update();
    Fnv f;
    f.add(metrics.rounds.size());
    std::uint64_t duplicates = 0;
    for (const auto& r : metrics.rounds) {
      f.add(r.aware_online);
      f.add(r.push_messages);
      f.add(r.duplicates);
      f.add(r.bytes);
      duplicates += r.duplicates;
    }
    // The regime check: this configuration must actually produce the ~80%
    // duplicate traffic of paper §4.1 the wire path optimises for.
    EXPECT_GT(duplicates, 100u);
    return f.h;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace updp2p
