#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/round_simulator.hpp"
#include "sim/sweep_pool.hpp"

namespace updp2p::sim {
namespace {

TEST(Sweep, ResultsOrderedBySeed) {
  const auto results = sweep_seeds<std::uint64_t>(
      100, 16, [](std::uint64_t seed) { return seed; }, 4);
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 101 + i);
  }
}

TEST(Sweep, RunsEveryBodyExactlyOnce) {
  std::atomic<int> calls{0};
  (void)sweep_seeds<int>(0, 32, [&calls](std::uint64_t) {
    return ++calls;
  });
  EXPECT_EQ(calls.load(), 32);
}

TEST(Sweep, SingleThreadFallback) {
  const auto results = sweep_seeds<std::uint64_t>(
      0, 4, [](std::uint64_t seed) { return seed * 2; }, 1);
  EXPECT_EQ(results, (std::vector<std::uint64_t>{2, 4, 6, 8}));
}

TEST(Sweep, DeterministicRegardlessOfThreadCount) {
  const auto body = [](std::uint64_t seed) {
    RoundSimConfig config;
    config.population = 300;
    config.gossip.estimated_total_replicas = 300;
    config.gossip.fanout_fraction = 0.05;
    config.reconnect_pull = false;
    config.round_timers = false;
    config.seed = seed;
    auto simulator = make_push_phase_simulator(config, 0.3, 1.0);
    return simulator->propagate_update();
  };
  const auto serial = sweep_aggregate(7'000, 6, body, 1);
  const auto parallel = sweep_aggregate(7'000, 6, body, 8);
  EXPECT_DOUBLE_EQ(serial.messages_per_initial_online.mean(),
                   parallel.messages_per_initial_online.mean());
  EXPECT_DOUBLE_EQ(serial.final_aware_fraction.mean(),
                   parallel.final_aware_fraction.mean());
}

TEST(Sweep, AggregateCountsRuns) {
  const auto aggregate = sweep_aggregate(0, 5, [](std::uint64_t) {
    RunMetrics metrics;
    metrics.initial_online = 10;
    RoundMetrics round;
    round.push_messages = 20;
    round.online = 10;
    round.aware_online = 10;
    metrics.rounds.push_back(round);
    return metrics;
  });
  EXPECT_EQ(aggregate.messages_per_initial_online.count(), 5u);
  EXPECT_DOUBLE_EQ(aggregate.messages_per_initial_online.mean(), 2.0);
}

TEST(Sweep, BackToBackJobsRunEachIndexExactlyOnce) {
  // Regression: a worker lingering in the pool's drain loop after job N
  // completed must not claim indices from (or over-count completions of)
  // job N+1. Tiny jobs published back-to-back maximise that overlap.
  auto& pool = SweepPool::shared();
  std::vector<std::atomic<unsigned>> hits(16);
  for (int job = 0; job < 500; ++job) {
    const unsigned count = 1 + static_cast<unsigned>(job % 16);
    for (auto& h : hits) h.store(0);
    pool.run(count, 0,
             [&hits](unsigned index) { hits[index].fetch_add(1); });
    for (unsigned i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), i < count ? 1u : 0u)
          << "job " << job << " index " << i;
    }
  }
}

TEST(Sweep, RejectsZeroRuns) {
  EXPECT_DEATH((void)sweep_seeds<int>(0, 0, [](std::uint64_t) { return 0; }),
               "at least one");
}

}  // namespace
}  // namespace updp2p::sim
