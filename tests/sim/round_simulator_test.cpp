#include "sim/round_simulator.hpp"

#include <gtest/gtest.h>

namespace updp2p::sim {
namespace {

using common::PeerId;

RoundSimConfig base_config(std::size_t population = 200) {
  RoundSimConfig config;
  config.population = population;
  config.gossip.estimated_total_replicas = population;
  config.gossip.fanout_fraction = 0.05;
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.seed = 12345;
  return config;
}

TEST(RoundSimulator, FullyOnlineFloodReachesEveryone) {
  auto config = base_config();
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 1.0, 1.0);
  const auto metrics = simulator->propagate_update();
  EXPECT_DOUBLE_EQ(metrics.final_aware_fraction(), 1.0);
  EXPECT_EQ(metrics.initial_online, 200u);
  EXPECT_GT(metrics.total_push_messages(), 0u);
}

TEST(RoundSimulator, AwarenessIsMonotoneWithoutChurn) {
  auto simulator = make_push_phase_simulator(base_config(), 0.5, 1.0);
  const auto metrics = simulator->propagate_update();
  std::size_t previous = 0;
  for (const auto& round : metrics.rounds) {
    EXPECT_GE(round.aware_online, previous) << "round " << round.round;
    previous = round.aware_online;
  }
}

TEST(RoundSimulator, DeterministicForSameSeed) {
  auto a = make_push_phase_simulator(base_config(), 0.3, 0.95);
  auto b = make_push_phase_simulator(base_config(), 0.3, 0.95);
  const auto ma = a->propagate_update();
  const auto mb = b->propagate_update();
  EXPECT_EQ(ma.total_push_messages(), mb.total_push_messages());
  EXPECT_EQ(ma.final_aware_fraction(), mb.final_aware_fraction());
  EXPECT_EQ(ma.rounds.size(), mb.rounds.size());
}

TEST(RoundSimulator, DifferentSeedsDiffer) {
  auto config_a = base_config();
  config_a.seed = 1;
  auto config_b = base_config();
  config_b.seed = 2;
  auto a = make_push_phase_simulator(config_a, 0.3, 0.95);
  auto b = make_push_phase_simulator(config_b, 0.3, 0.95);
  EXPECT_NE(a->propagate_update().total_push_messages(),
            b->propagate_update().total_push_messages());
}

TEST(RoundSimulator, InitiatorMustBeOnline) {
  auto config = base_config(50);
  auto churn = std::make_unique<churn::TraceChurn>(
      50, std::vector<std::vector<PeerId>>{{PeerId(0), PeerId(1)}});
  RoundSimulator simulator(config, std::move(churn));
  EXPECT_DEATH((void)simulator.propagate_update(PeerId(5)), "online");
}

TEST(RoundSimulator, NoListMeansMoreDuplicates) {
  auto with_list = base_config();
  with_list.gossip.partial_list.mode = gossip::PartialListMode::kUnbounded;
  with_list.reconnect_pull = false;
  with_list.round_timers = false;
  auto without_list = with_list;
  without_list.gossip.partial_list.mode = gossip::PartialListMode::kNone;

  auto a = make_push_phase_simulator(with_list, 0.5, 1.0);
  auto b = make_push_phase_simulator(without_list, 0.5, 1.0);
  const auto ma = a->propagate_update();
  const auto mb = b->propagate_update();
  EXPECT_LT(ma.total_push_messages(), mb.total_push_messages());
  EXPECT_NEAR(ma.final_aware_fraction(), mb.final_aware_fraction(), 0.05);
}

TEST(RoundSimulator, OfflinePeersCatchUpViaPullOnReconnect) {
  auto config = base_config(200);
  config.gossip.fanout_fraction = 0.08;  // supercritical at 30% online
  config.gossip.pull.contacts_per_attempt = 3;
  config.gossip.pull.no_update_timeout = 1'000;  // only reconnect pulls
  config.reconnect_pull = true;
  config.round_timers = true;
  config.max_rounds = 80;
  config.quiescence_rounds = 100;  // don't stop early; run the full window
  // 30% online initially; offline peers come online at 2% per round.
  auto churn =
      std::make_unique<churn::BernoulliChurn>(200, 0.30, 0.995, 0.02);
  RoundSimulator simulator(config, std::move(churn));
  const auto metrics = simulator.propagate_update();
  EXPECT_GT(metrics.total_pull_messages(), 0u);
  // Nearly all *currently online* peers know the update at the end,
  // including those that were offline during the push.
  EXPECT_GT(metrics.final_aware_fraction(), 0.9);
}

TEST(RoundSimulator, RunRoundsAdvancesTime) {
  auto simulator = make_push_phase_simulator(base_config(), 0.5, 1.0);
  const auto before = simulator->current_round();
  simulator->run_rounds(5);
  EXPECT_EQ(simulator->current_round(), before + 5);
}

TEST(RoundSimulator, SmallInitialViewStillSpreads) {
  auto config = base_config(300);
  config.initial_view_size = 30;  // partial membership knowledge (§2)
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 1.0, 1.0);
  const auto metrics = simulator->propagate_update();
  EXPECT_GT(metrics.final_aware_fraction(), 0.95);
}

TEST(RoundSimulator, MessageLossSlowsButRarelyStopsSpread) {
  auto config = base_config();
  config.message_loss = 0.3;
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 1.0, 1.0);
  const auto metrics = simulator->propagate_update();
  EXPECT_GT(metrics.final_aware_fraction(), 0.9);
  EXPECT_GT(simulator->bus_stats().messages_dropped, 0u);
}

TEST(RoundSimulator, BusStatsConsistent) {
  auto config = base_config();
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 0.4, 0.95);
  (void)simulator->propagate_update();
  const auto& stats = simulator->bus_stats();
  EXPECT_EQ(stats.messages_sent, stats.messages_delivered +
                                     stats.messages_to_offline +
                                     stats.messages_dropped +
                                     simulator->population() * 0);
  EXPECT_GT(stats.messages_to_offline, 0u);  // 60% offline targets exist
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(RoundSimulator, TrackedAwarenessMatchesNodeState) {
  auto config = base_config(100);
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 1.0, 1.0);
  (void)simulator->propagate_update(PeerId(3), "k", "v");
  const auto value = simulator->node(PeerId(3)).read("k");
  ASSERT_TRUE(value.has_value());
  // Probabilistic guarantee: nearly everyone, and the two accessors agree.
  EXPECT_GT(simulator->aware_fraction(value->id), 0.9);
  EXPECT_EQ(simulator->aware_online(value->id),
            static_cast<std::size_t>(
                simulator->aware_fraction(value->id) * 100.0 + 0.5));
  // Cross-check against node state directly.
  std::size_t aware = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (simulator->node(PeerId(i)).knows_version(value->id)) ++aware;
  }
  EXPECT_EQ(simulator->aware_online(value->id), aware);
}

TEST(RoundSimulator, ConcurrentKeysPropagateIndependently) {
  auto config = base_config(200);
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 1.0, 1.0);
  const auto first = simulator->propagate_update(PeerId(0), "alpha", "a1");
  const auto second = simulator->propagate_update(PeerId(1), "beta", "b1");
  EXPECT_GT(first.final_aware_fraction(), 0.9);
  EXPECT_GT(second.final_aware_fraction(), 0.9);
  // Both keys readable at an arbitrary peer.
  const auto& node = simulator->node(PeerId(100));
  EXPECT_TRUE(node.read("alpha").has_value());
  EXPECT_TRUE(node.read("beta").has_value());
}

TEST(RoundSimulator, NodeBytesMatchBusBytes) {
  auto config = base_config(150);
  config.reconnect_pull = false;
  config.round_timers = false;
  auto simulator = make_push_phase_simulator(config, 0.5, 1.0);
  (void)simulator->propagate_update();
  std::uint64_t node_bytes = 0;
  for (std::uint32_t i = 0; i < 150; ++i) {
    node_bytes += simulator->node(PeerId(i)).stats().bytes_sent;
  }
  EXPECT_EQ(node_bytes, simulator->bus_stats().bytes_sent);
}

TEST(RoundSimulator, WireSerializationPreservesBehaviour) {
  // Same seed, with and without full codec round-trips: identical protocol
  // outcome, byte counters now reflect actual encoded frames.
  auto plain_config = base_config();
  plain_config.reconnect_pull = false;
  plain_config.round_timers = false;
  auto wire_config = plain_config;
  wire_config.serialize_messages = true;

  auto plain = make_push_phase_simulator(plain_config, 0.4, 0.95);
  auto wire = make_push_phase_simulator(wire_config, 0.4, 0.95);
  const auto plain_metrics = plain->propagate_update();
  const auto wire_metrics = wire->propagate_update();
  EXPECT_EQ(plain_metrics.total_push_messages(),
            wire_metrics.total_push_messages());
  EXPECT_EQ(plain_metrics.final_aware_fraction(),
            wire_metrics.final_aware_fraction());
  EXPECT_GT(wire_metrics.total_bytes(), 0u);
}

TEST(RoundSimulator, RejectsMismatchedChurnPopulation) {
  auto config = base_config(100);
  EXPECT_DEATH(RoundSimulator(config,
                              std::make_unique<churn::StaticChurn>(50, 0.5)),
               "population");
}

}  // namespace
}  // namespace updp2p::sim
