#include "sim/event_simulator.hpp"

#include <gtest/gtest.h>

namespace updp2p::sim {
namespace {

using common::PeerId;

EventSimConfig base_config() {
  EventSimConfig config;
  config.population = 100;
  config.mean_online_time = 50.0;
  config.mean_offline_time = 50.0;  // 50% availability
  config.round_duration = 1.0;
  config.gossip.estimated_total_replicas = 100;
  config.gossip.fanout_fraction = 0.08;
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.gossip.pull.contacts_per_attempt = 2;
  config.gossip.pull.no_update_timeout = 15;
  config.seed = 99;
  return config;
}

TEST(EventSimulator, TimeAdvancesMonotonically) {
  EventSimulator simulator(base_config());
  EXPECT_DOUBLE_EQ(simulator.now(), 0.0);
  simulator.run_until(10.0);
  EXPECT_DOUBLE_EQ(simulator.now(), 10.0);
  simulator.run_until(25.0);
  EXPECT_DOUBLE_EQ(simulator.now(), 25.0);
}

TEST(EventSimulator, PublishRecordsUpdate) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(5.0, "key", "value");
  EXPECT_TRUE(simulator.published().empty());
  simulator.run_until(6.0);
  ASSERT_EQ(simulator.published().size(), 1u);
  EXPECT_EQ(simulator.published()[0].key, "key");
  EXPECT_DOUBLE_EQ(simulator.published()[0].published_at, 5.0);
}

TEST(EventSimulator, UpdateSpreadsAmongOnlinePeers) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "value");
  simulator.run_until(60.0);
  ASSERT_FALSE(simulator.published().empty());
  EXPECT_GT(simulator.aware_fraction_online(simulator.published()[0].id),
            0.85);
  EXPECT_GT(simulator.stats().push_messages, 0u);
}

TEST(EventSimulator, OfflinePeersEventuallyCatchUpViaPull) {
  auto config = base_config();
  config.mean_online_time = 20.0;
  config.mean_offline_time = 60.0;  // 25% availability: heavy churn
  EventSimulator simulator(config);
  simulator.schedule_publish(1.0, "key", "value");
  simulator.run_until(900.0);
  ASSERT_FALSE(simulator.published().empty());
  // Across the WHOLE population, not just online peers.
  EXPECT_GT(simulator.aware_fraction_total(simulator.published()[0].id), 0.9);
  EXPECT_GT(simulator.stats().pull_messages, 0u);
  EXPECT_GT(simulator.stats().reconnects, 0u);
}

TEST(EventSimulator, QueryFindsPublishedValue) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "value");
  simulator.run_until(60.0);
  const auto result =
      simulator.query("key", 5, gossip::QueryRule::kLatestVersion);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, "value");
}

TEST(EventSimulator, QueryUnknownKeyIsEmpty) {
  EventSimulator simulator(base_config());
  simulator.run_until(5.0);
  EXPECT_FALSE(
      simulator.query("nothing", 5, gossip::QueryRule::kMajority).has_value());
}

TEST(EventSimulator, NewerVersionWinsQueries) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "v1");
  simulator.run_until(50.0);
  simulator.schedule_publish(50.0, "key", "v2");
  simulator.run_until(120.0);
  const auto result =
      simulator.query("key", 7, gossip::QueryRule::kLatestVersion);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, "v2");
}

TEST(EventSimulator, RemoveTombstonesValue) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "value");
  simulator.run_until(40.0);
  simulator.schedule_remove(40.0, "key");
  simulator.run_until(150.0);
  EXPECT_FALSE(
      simulator.query("key", 7, gossip::QueryRule::kLatestVersion)
          .has_value());
}

TEST(EventSimulator, ExplicitPublisherUsedWhenOnline) {
  auto config = base_config();
  config.mean_online_time = 1e9;  // everyone stays in the initial state
  config.mean_offline_time = 1.0;
  EventSimulator simulator(config);
  // Find an online peer.
  PeerId online_peer = PeerId::invalid();
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (simulator.is_online(PeerId(i))) {
      online_peer = PeerId(i);
      break;
    }
  }
  ASSERT_TRUE(online_peer.is_valid());
  simulator.schedule_publish(1.0, "key", "v", online_peer);
  simulator.run_until(2.0);
  ASSERT_EQ(simulator.published().size(), 1u);
  EXPECT_EQ(simulator.published()[0].publisher, online_peer);
}

TEST(EventSimulator, LazyPullReducesPullTraffic) {
  auto eager_config = base_config();
  eager_config.gossip.pull.lazy = false;
  auto lazy_config = base_config();
  lazy_config.gossip.pull.lazy = true;
  // Disable the staleness timer so only reconnect behaviour differs.
  eager_config.gossip.pull.no_update_timeout = 1'000'000;
  lazy_config.gossip.pull.no_update_timeout = 1'000'000;

  EventSimulator eager(eager_config);
  EventSimulator lazy(lazy_config);
  for (auto* simulator : {&eager, &lazy}) {
    simulator->schedule_publish(1.0, "key", "v");
    simulator->run_until(300.0);
  }
  EXPECT_LT(lazy.stats().pull_messages, eager.stats().pull_messages);
}

TEST(EventSimulator, StatsAreConsistent) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "v");
  simulator.run_until(100.0);
  const auto& stats = simulator.stats();
  // Some messages may still be in flight when the clock stops.
  EXPECT_GE(stats.messages_sent,
            stats.messages_delivered + stats.messages_to_offline);
  EXPECT_LE(stats.messages_sent,
            stats.messages_delivered + stats.messages_to_offline + 20);
  EXPECT_EQ(stats.messages_sent,
            stats.push_messages + stats.pull_messages + stats.ack_messages +
                stats.query_messages);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(EventSimulator, SchedulingInThePastDies) {
  EventSimulator simulator(base_config());
  simulator.run_until(10.0);
  EXPECT_DEATH(simulator.schedule_publish(5.0, "key", "v"), "past");
}

TEST(EventSimulator, DeterministicForSameSeed) {
  auto run_once = []() {
    EventSimulator simulator(base_config());
    simulator.schedule_publish(1.0, "key", "v");
    simulator.run_until(80.0);
    return std::make_tuple(simulator.stats().messages_sent,
                           simulator.stats().push_messages,
                           simulator.stats().reconnects,
                           simulator.online_count());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EventSimulator, HigherLatencySlowsDissemination) {
  auto fast_config = base_config();
  fast_config.latency = std::make_shared<net::ConstantLatency>(0.1);
  auto slow_config = base_config();
  slow_config.latency = std::make_shared<net::ConstantLatency>(3.0);

  auto measure = [](EventSimConfig config) {
    EventSimulator simulator(std::move(config));
    simulator.schedule_publish(1.0, "key", "v");
    simulator.run_until(8.0);  // early snapshot
    return simulator.published().empty()
               ? 0.0
               : simulator.aware_fraction_online(simulator.published()[0].id);
  };
  EXPECT_GT(measure(fast_config), measure(slow_config));
}

TEST(EventSimulator, MessageBasedQueryMatchesOmniscientQuery) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "value");
  simulator.run_until(60.0);

  // Find an online issuer.
  common::PeerId issuer = common::PeerId::invalid();
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (simulator.is_online(PeerId(i))) {
      issuer = PeerId(i);
      break;
    }
  }
  ASSERT_TRUE(issuer.is_valid());
  const auto nonce =
      simulator.begin_query(issuer, "key", gossip::QueryRule::kLatestVersion, 4);
  ASSERT_NE(nonce, 0u);
  simulator.run_until(simulator.now() + 10.0);  // requests + replies travel
  const auto outcome = simulator.poll_query(issuer, nonce);
  EXPECT_TRUE(outcome.complete);
  ASSERT_TRUE(outcome.value.has_value());
  EXPECT_EQ(outcome.value->payload, "value");
}

TEST(EventSimulator, OfflineIssuerCannotQuery) {
  EventSimulator simulator(base_config());
  common::PeerId offline_peer = common::PeerId::invalid();
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (!simulator.is_online(PeerId(i))) {
      offline_peer = PeerId(i);
      break;
    }
  }
  ASSERT_TRUE(offline_peer.is_valid());
  EXPECT_EQ(simulator.begin_query(offline_peer, "key",
                                  gossip::QueryRule::kHybrid, 3),
            0u);
}

TEST(EventSimulator, BlackoutStopsDeliveryThenRecovers) {
  EventSimulator simulator(base_config());
  // Total blackout while the push would spread.
  simulator.schedule_loss_window(0.5, 40.0, 1.0);
  simulator.schedule_publish(1.0, "key", "v");
  simulator.run_until(30.0);
  ASSERT_FALSE(simulator.published().empty());
  const auto id = simulator.published()[0].id;
  // Only the publisher knows it: every delivery was lost.
  EXPECT_LT(simulator.aware_fraction_total(id), 0.05);
  EXPECT_GT(simulator.stats().messages_lost, 0u);

  // After the window, pull traffic (staleness timers) heals the network.
  simulator.run_until(400.0);
  EXPECT_GT(simulator.aware_fraction_online(id), 0.7);
}

TEST(EventSimulator, PartialBrownoutSlowsButDoesNotStopSpread) {
  auto config = base_config();
  // Seed chosen so the push phase survives the brownout's early losses:
  // under 50% loss a fair share of seeds die before spreading at all
  // (legitimate §4 behaviour, but a dead run can't show "slowed, not
  // stopped").
  config.seed = 13;
  EventSimulator simulator(config);
  simulator.schedule_loss_window(0.5, 200.0, 0.5);
  simulator.schedule_publish(1.0, "key", "v");
  simulator.run_until(150.0);
  ASSERT_FALSE(simulator.published().empty());
  // Mid-brownout the update has reached a real fraction of the online
  // population (exact value is seed/draw-order sensitive; the invariant is
  // "spread continues under 50% loss", not a particular trajectory)...
  const double mid_brownout =
      simulator.aware_fraction_online(simulator.published()[0].id);
  EXPECT_GT(mid_brownout, 0.15);
  EXPECT_DOUBLE_EQ(simulator.current_loss(), 0.5);
  simulator.run_until(201.0);
  EXPECT_DOUBLE_EQ(simulator.current_loss(), 0.0);
  // ...and it kept spreading through the tail of the window.
  EXPECT_GT(simulator.aware_fraction_online(simulator.published()[0].id),
            mid_brownout);
}

TEST(EventSimulator, NodeByteCountersAccumulate) {
  EventSimulator simulator(base_config());
  simulator.schedule_publish(1.0, "key", "v");
  simulator.run_until(60.0);
  std::uint64_t node_bytes = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    node_bytes += simulator.node(PeerId(i)).stats().bytes_sent;
  }
  EXPECT_EQ(node_bytes, simulator.stats().bytes_sent);
}

TEST(EventSimulator, OnlineCountTracksAvailability) {
  auto config = base_config();
  config.population = 2'000;
  EventSimulator simulator(config);
  simulator.run_until(200.0);
  const double fraction = static_cast<double>(simulator.online_count()) /
                          static_cast<double>(simulator.population());
  EXPECT_NEAR(fraction, 0.5, 0.07);
}

}  // namespace
}  // namespace updp2p::sim
