#include "version/version_vector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace updp2p::version {
namespace {

using common::PeerId;

TEST(VersionVector, EmptyVectorsAreEqual) {
  VersionVector a, b;
  EXPECT_EQ(a.compare(b), Causality::kEqual);
  EXPECT_TRUE(a.covered_by(b));
}

TEST(VersionVector, IncrementCreatesDominance) {
  VersionVector a, b;
  a.increment(PeerId(1));
  EXPECT_EQ(a.compare(b), Causality::kDominates);
  EXPECT_EQ(b.compare(a), Causality::kDominatedBy);
  EXPECT_TRUE(b.covered_by(a));
  EXPECT_FALSE(a.covered_by(b));
}

TEST(VersionVector, ConcurrentWhenBothAdvanced) {
  VersionVector a, b;
  a.increment(PeerId(1));
  b.increment(PeerId(2));
  EXPECT_EQ(a.compare(b), Causality::kConcurrent);
  EXPECT_EQ(b.compare(a), Causality::kConcurrent);
  EXPECT_FALSE(a.covered_by(b));
}

TEST(VersionVector, IncrementReturnsNewCounter) {
  VersionVector vv;
  EXPECT_EQ(vv.increment(PeerId(5)), 1u);
  EXPECT_EQ(vv.increment(PeerId(5)), 2u);
  EXPECT_EQ(vv.get(PeerId(5)), 2u);
  EXPECT_EQ(vv.get(PeerId(6)), 0u);
}

TEST(VersionVector, ObserveTakesMaximum) {
  VersionVector vv;
  vv.observe(PeerId(1), 5);
  vv.observe(PeerId(1), 3);
  EXPECT_EQ(vv.get(PeerId(1)), 5u);
  vv.observe(PeerId(1), 9);
  EXPECT_EQ(vv.get(PeerId(1)), 9u);
}

TEST(VersionVector, ObserveZeroStaysImplicit) {
  VersionVector vv;
  vv.observe(PeerId(1), 0);
  EXPECT_TRUE(vv.empty());
  EXPECT_EQ(vv.entry_count(), 0u);
}

TEST(VersionVector, MergeIsComponentwiseMax) {
  VersionVector a, b;
  a.observe(PeerId(1), 3);
  a.observe(PeerId(2), 1);
  b.observe(PeerId(1), 1);
  b.observe(PeerId(3), 7);
  a.merge(b);
  EXPECT_EQ(a.get(PeerId(1)), 3u);
  EXPECT_EQ(a.get(PeerId(2)), 1u);
  EXPECT_EQ(a.get(PeerId(3)), 7u);
}

TEST(VersionVector, MergedVectorCoversBothInputs) {
  VersionVector a, b;
  a.observe(PeerId(1), 3);
  b.observe(PeerId(2), 2);
  VersionVector merged = a;
  merged.merge(b);
  EXPECT_TRUE(a.covered_by(merged));
  EXPECT_TRUE(b.covered_by(merged));
}

TEST(VersionVector, TotalEvents) {
  VersionVector vv;
  vv.observe(PeerId(1), 3);
  vv.observe(PeerId(9), 4);
  EXPECT_EQ(vv.total_events(), 7u);
}

TEST(VersionVector, ToStringContainsEntries) {
  VersionVector vv;
  vv.observe(PeerId(1), 3);
  EXPECT_EQ(vv.to_string(), "{1:3}");
}

TEST(VersionVector, ComparisonWithDisjointSupport) {
  VersionVector a, b;
  a.observe(PeerId(1), 1);
  a.observe(PeerId(2), 1);
  b.observe(PeerId(2), 1);
  EXPECT_EQ(a.compare(b), Causality::kDominates);
}

TEST(VersionVector, CausalityToString) {
  EXPECT_STREQ(to_string(Causality::kEqual), "equal");
  EXPECT_STREQ(to_string(Causality::kConcurrent), "concurrent");
}

// --- property tests over random operation sequences -------------------------

class VersionVectorProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  VersionVector random_vector(common::Rng& rng) {
    VersionVector vv;
    const auto entries = rng.uniform_below(6);
    for (std::uint64_t i = 0; i < entries; ++i) {
      vv.observe(PeerId(static_cast<std::uint32_t>(rng.uniform_below(4))),
                 rng.uniform_below(5) + 1);
    }
    return vv;
  }
};

TEST_P(VersionVectorProperty, CompareIsAntisymmetric) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = random_vector(rng);
    const auto b = random_vector(rng);
    const auto ab = a.compare(b);
    const auto ba = b.compare(a);
    switch (ab) {
      case Causality::kEqual: EXPECT_EQ(ba, Causality::kEqual); break;
      case Causality::kDominates: EXPECT_EQ(ba, Causality::kDominatedBy); break;
      case Causality::kDominatedBy: EXPECT_EQ(ba, Causality::kDominates); break;
      case Causality::kConcurrent: EXPECT_EQ(ba, Causality::kConcurrent); break;
    }
  }
}

TEST_P(VersionVectorProperty, MergeIsIdempotentCommutativeAssociative) {
  common::Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_vector(rng);
    const auto b = random_vector(rng);
    const auto c = random_vector(rng);

    VersionVector aa = a;
    aa.merge(a);
    EXPECT_EQ(aa, a);  // idempotent

    VersionVector ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);  // commutative

    VersionVector ab_c = ab, a_bc = a, bc = b;
    ab_c.merge(c);
    bc.merge(c);
    a_bc.merge(bc);
    EXPECT_EQ(ab_c, a_bc);  // associative
  }
}

TEST_P(VersionVectorProperty, MergeIsLeastUpperBound) {
  common::Rng rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 200; ++i) {
    const auto a = random_vector(rng);
    const auto b = random_vector(rng);
    VersionVector merged = a;
    merged.merge(b);
    EXPECT_TRUE(a.covered_by(merged));
    EXPECT_TRUE(b.covered_by(merged));
    // Least: merged has no counter above max(a, b).
    for (const auto& [peer, counter] : merged.entries()) {
      EXPECT_EQ(counter, std::max(a.get(peer), b.get(peer)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionVectorProperty,
                         ::testing::Values(1, 2, 3, 7, 1234));

}  // namespace
}  // namespace updp2p::version
