#include "version/version_id.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace updp2p::version {
namespace {

using common::PeerId;
using common::Rng;

TEST(VersionId, DefaultIsNull) {
  VersionId id;
  EXPECT_TRUE(id.is_null());
}

TEST(VersionId, MintedIdsAreNotNull) {
  VersionIdFactory factory(PeerId(1), Rng(42));
  EXPECT_FALSE(factory.mint(0.0).is_null());
}

TEST(VersionId, MintedIdsAreUnique) {
  VersionIdFactory factory(PeerId(1), Rng(42));
  std::unordered_set<VersionId> seen;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(factory.mint(1.5)).second) << "dup at " << i;
  }
}

TEST(VersionId, DistinctPeersMintDistinctIds) {
  VersionIdFactory a(PeerId(1), Rng(42));
  VersionIdFactory b(PeerId(2), Rng(42));
  EXPECT_NE(a.mint(0.0), b.mint(0.0));
}

TEST(VersionId, DeterministicGivenSeed) {
  VersionIdFactory a(PeerId(1), Rng(42));
  VersionIdFactory b(PeerId(1), Rng(42));
  EXPECT_EQ(a.mint(3.0), b.mint(3.0));
}

TEST(VersionId, ToStringIs32Hex) {
  VersionIdFactory factory(PeerId(9), Rng(1));
  EXPECT_EQ(factory.mint(0.0).to_string().size(), 32u);
}

}  // namespace
}  // namespace updp2p::version
