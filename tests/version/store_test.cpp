#include "version/store.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace updp2p::version {
namespace {

using common::PeerId;
using common::Rng;

class StoreTest : public ::testing::Test {
 protected:
  VersionedStore store_;
  LocalWriter alice_{PeerId(1), Rng(11)};
  LocalWriter bob_{PeerId(2), Rng(22)};
};

TEST_F(StoreTest, LocalWriteIsReadable) {
  alice_.write(store_, "key", "v1", 0.0);
  const auto value = store_.read("key");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->payload, "v1");
  EXPECT_EQ(store_.key_count(), 1u);
  EXPECT_EQ(store_.version_count(), 1u);
}

TEST_F(StoreTest, UnknownKeyReadsNothing) {
  EXPECT_FALSE(store_.read("missing").has_value());
  EXPECT_TRUE(store_.versions("missing").empty());
  EXPECT_FALSE(store_.is_deleted("missing"));
}

TEST_F(StoreTest, SequentialWritesReplace) {
  alice_.write(store_, "key", "v1", 0.0);
  alice_.write(store_, "key", "v2", 1.0);
  EXPECT_EQ(store_.version_count(), 1u);
  EXPECT_EQ(store_.read("key")->payload, "v2");
}

TEST_F(StoreTest, ApplyDuplicateDetected) {
  const auto value = alice_.write(store_, "key", "v1", 0.0);
  EXPECT_EQ(store_.apply(value), ApplyOutcome::kDuplicate);
}

TEST_F(StoreTest, ApplyObsoleteRejected) {
  const auto v1 = alice_.write(store_, "key", "v1", 0.0);
  alice_.write(store_, "key", "v2", 1.0);
  VersionedStore fresh;
  fresh.apply(store_.read("key").value());
  EXPECT_EQ(fresh.apply(v1), ApplyOutcome::kObsolete);
  EXPECT_EQ(fresh.version_count(), 1u);
}

TEST_F(StoreTest, ConcurrentWritesCoexist) {
  // Alice and Bob write independently (no store sharing beforehand).
  VersionedStore bob_store;
  const auto from_alice = alice_.write(store_, "key", "alice", 0.0);
  const auto from_bob = bob_.write(bob_store, "key", "bob", 0.0);
  EXPECT_EQ(store_.apply(from_bob), ApplyOutcome::kCoexisting);
  EXPECT_EQ(store_.versions("key").size(), 2u);
  // Both replicas converge to the same deterministic winner (§4.4).
  EXPECT_EQ(bob_store.apply(from_alice), ApplyOutcome::kCoexisting);
  EXPECT_EQ(store_.read("key")->id, bob_store.read("key")->id);
}

TEST_F(StoreTest, DominatingWriteCollapsesConcurrents) {
  VersionedStore bob_store;
  alice_.write(store_, "key", "alice", 0.0);
  const auto from_bob = bob_.write(bob_store, "key", "bob", 0.0);
  store_.apply(from_bob);
  ASSERT_EQ(store_.versions("key").size(), 2u);
  // Alice writes again having seen both: the new version dominates both.
  alice_.write(store_, "key", "merged", 1.0);
  EXPECT_EQ(store_.versions("key").size(), 1u);
  EXPECT_EQ(store_.read("key")->payload, "merged");
}

TEST_F(StoreTest, TombstoneHidesValue) {
  alice_.write(store_, "key", "v1", 0.0);
  alice_.erase(store_, "key", 1.0);
  EXPECT_FALSE(store_.read("key").has_value());
  EXPECT_TRUE(store_.is_deleted("key"));
  EXPECT_EQ(store_.versions("key").size(), 1u);
  EXPECT_TRUE(store_.versions("key").front().tombstone);
}

TEST_F(StoreTest, WriteAfterDeleteRevives) {
  alice_.write(store_, "key", "v1", 0.0);
  alice_.erase(store_, "key", 1.0);
  alice_.write(store_, "key", "v2", 2.0);
  EXPECT_FALSE(store_.is_deleted("key"));
  EXPECT_EQ(store_.read("key")->payload, "v2");
}

TEST_F(StoreTest, TombstoneGcAfterRetention) {
  alice_.write(store_, "key", "v1", 0.0);
  alice_.erase(store_, "key", 10.0);
  EXPECT_EQ(store_.gc_tombstones(15.0, /*retention=*/100.0), 0u);
  EXPECT_EQ(store_.key_count(), 1u);
  EXPECT_EQ(store_.gc_tombstones(200.0, /*retention=*/100.0), 1u);
  EXPECT_EQ(store_.key_count(), 0u);
}

TEST_F(StoreTest, GcKeepsLiveVersions) {
  alice_.write(store_, "kept", "v1", 0.0);
  EXPECT_EQ(store_.gc_tombstones(1e9, 1.0), 0u);
  EXPECT_TRUE(store_.read("kept").has_value());
}

TEST_F(StoreTest, SummaryCoversEveryWrite) {
  const auto v1 = alice_.write(store_, "a", "1", 0.0);
  const auto v2 = bob_.write(store_, "b", "2", 0.0);
  EXPECT_TRUE(v1.history.covered_by(store_.summary()));
  EXPECT_TRUE(v2.history.covered_by(store_.summary()));
}

TEST_F(StoreTest, MissingGivenEmptySummaryReturnsEverything) {
  alice_.write(store_, "a", "1", 0.0);
  alice_.write(store_, "b", "2", 0.0);
  EXPECT_EQ(store_.missing_given(VersionVector{}).size(), 2u);
}

TEST_F(StoreTest, MissingGivenOwnSummaryReturnsNothing) {
  alice_.write(store_, "a", "1", 0.0);
  alice_.write(store_, "b", "2", 0.0);
  EXPECT_TRUE(store_.missing_given(store_.summary()).empty());
}

TEST_F(StoreTest, DeltaTransferMakesStoresEquivalent) {
  alice_.write(store_, "a", "1", 0.0);
  alice_.write(store_, "b", "2", 0.0);
  VersionedStore other;
  bob_.write(other, "c", "3", 0.0);

  // Bidirectional anti-entropy exchange.
  for (auto& value : store_.missing_given(other.summary())) {
    other.apply(std::move(value));
  }
  for (auto& value : other.missing_given(store_.summary())) {
    store_.apply(std::move(value));
  }
  EXPECT_EQ(store_.summary(), other.summary());
  EXPECT_EQ(store_.key_count(), 3u);
  EXPECT_EQ(other.key_count(), 3u);
  EXPECT_EQ(store_.read("c")->payload, "3");
  EXPECT_EQ(other.read("a")->payload, "1");
}

TEST_F(StoreTest, StoredIdsCoverEveryVersion) {
  alice_.write(store_, "a", "1", 0.0);
  VersionedStore bob_store;
  const auto from_bob = bob_.write(bob_store, "a", "2", 0.0);
  store_.apply(from_bob);  // concurrent pair stored
  const auto ids = store_.stored_ids();
  EXPECT_EQ(ids.size(), 2u);
}

TEST_F(StoreTest, MissingForShipsExactlyWhatRemoteLacks) {
  const auto v1 = alice_.write(store_, "a", "1", 0.0);
  const auto v2 = alice_.write(store_, "b", "2", 0.0);
  const std::vector<VersionId> remote_have{v1.id};
  const auto delta = store_.missing_for(remote_have);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.front().id, v2.id);
  // Remote with everything gets nothing.
  EXPECT_TRUE(store_.missing_for(store_.stored_ids()).empty());
}

TEST_F(StoreTest, CoveredButUnstoredSiblingStillConverges) {
  // The blind spot of summary-only sync, found by fuzzing:
  //   A stores X with history {1:2, 2:1};
  //   B stores Y {1:1, 2:1} and Z {1:2} — summary also {1:2, 2:1}.
  // Equal summaries, different stores: summary-based deltas ship nothing,
  // id-based deltas reconcile.
  VersionedStore a, b;
  auto put = [](VersionedStore& store, const char* payload,
                std::initializer_list<std::pair<int, int>> history,
                std::uint64_t seed) {
    VersionedValue value;
    value.key = "k";
    value.payload = payload;
    for (const auto& [peer, counter] : history) {
      value.history.observe(common::PeerId(static_cast<std::uint32_t>(peer)),
                            static_cast<std::uint64_t>(counter));
    }
    VersionIdFactory factory(common::PeerId(9), common::Rng(seed));
    value.id = factory.mint(0.0);
    store.apply(value);
    return value;
  };
  put(a, "X", {{1, 2}, {2, 1}}, 1);
  put(b, "Y", {{1, 1}, {2, 1}}, 2);
  put(b, "Z", {{1, 2}}, 3);
  ASSERT_EQ(a.summary(), b.summary());
  // Summary-only sync is blind here.
  EXPECT_TRUE(a.missing_given(b.summary()).empty());
  EXPECT_TRUE(b.missing_given(a.summary()).empty());
  // Id-based sync reconciles both directions.
  for (auto& value : a.missing_for(b.stored_ids())) b.apply(std::move(value));
  for (auto& value : b.missing_for(a.stored_ids())) a.apply(std::move(value));
  EXPECT_EQ(a.read("k")->id, b.read("k")->id);
  EXPECT_EQ(a.versions("k").size(), b.versions("k").size());
}

TEST_F(StoreTest, ContentDigestTracksStoreState) {
  const common::Digest128 empty = store_.content_digest();
  const auto v1 = alice_.write(store_, "a", "1", 0.0);
  const auto after_v1 = store_.content_digest();
  EXPECT_NE(after_v1, empty);
  // Superseding v1 removes it and adds v2: digest changes again.
  alice_.write(store_, "a", "2", 1.0);
  EXPECT_NE(store_.content_digest(), after_v1);
  // Re-applying an obsolete version leaves the digest untouched.
  const auto unchanged = store_.content_digest();
  store_.apply(v1);
  EXPECT_EQ(store_.content_digest(), unchanged);
}

TEST_F(StoreTest, EqualContentsMeanEqualDigests) {
  VersionedStore other;
  const auto v1 = alice_.write(store_, "a", "1", 0.0);
  const auto v2 = bob_.write(store_, "b", "2", 0.0);
  // Apply the same versions in the opposite order: same digest.
  other.apply(v2);
  other.apply(v1);
  EXPECT_EQ(store_.content_digest(), other.content_digest());
}

TEST_F(StoreTest, GcUpdatesContentDigest) {
  alice_.write(store_, "a", "1", 0.0);
  const auto before_delete = store_.content_digest();
  alice_.erase(store_, "a", 1.0);
  (void)store_.gc_tombstones(1'000.0, 10.0);
  // Tombstone collected: the store is empty again but NOT equal to the
  // pre-delete state (v1 is gone too).
  EXPECT_NE(store_.content_digest(), before_delete);
  EXPECT_EQ(store_.content_digest(), common::Digest128{});
}

TEST_F(StoreTest, TombstoneResurrectionSemantics) {
  // The classic death-certificate trade-off (Demers [9], paper §3): once a
  // tombstone is garbage-collected, a stale replica can resurrect the old
  // value through reconciliation. Retention must therefore exceed the
  // maximum disconnection time — this test documents both sides.
  VersionedStore stale;
  const auto old_value = alice_.write(store_, "key", "v1", 0.0);
  stale.apply(old_value);  // the stale replica holds only v1

  alice_.erase(store_, "key", 10.0);

  // (a) Before GC, the tombstone dominates: reconciliation kills v1 at the
  // stale replica instead of resurrecting it here.
  for (auto& value : store_.missing_for(stale.stored_ids())) {
    stale.apply(std::move(value));
  }
  EXPECT_TRUE(stale.is_deleted("key"));

  // (b) After GC on a *fresh* store, the old version applies as brand new
  // — resurrection, exactly what adequate retention prevents.
  VersionedStore gced;
  gced.apply(store_.versions("key").front());     // tombstone only
  EXPECT_EQ(gced.gc_tombstones(1'000.0, 100.0), 1u);
  EXPECT_EQ(gced.apply(old_value), ApplyOutcome::kApplied);
  EXPECT_TRUE(gced.read("key").has_value());      // resurrected
}

TEST_F(StoreTest, KeysListsAll) {
  alice_.write(store_, "x", "1", 0.0);
  alice_.write(store_, "y", "2", 0.0);
  const auto keys = store_.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST_F(StoreTest, ApplyOutcomeToString) {
  EXPECT_STREQ(to_string(ApplyOutcome::kApplied), "applied");
  EXPECT_STREQ(to_string(ApplyOutcome::kCoexisting), "coexisting");
}

// Property: random gossip of writes among stores converges when all deltas
// are exchanged (eventual consistency of the store layer alone).
class StoreConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreConvergence, AllPairsReconciliationConverges) {
  Rng rng(GetParam());
  constexpr int kStores = 5;
  std::vector<VersionedStore> stores(kStores);
  std::vector<LocalWriter> writers;
  for (int i = 0; i < kStores; ++i) {
    writers.emplace_back(PeerId(static_cast<std::uint32_t>(i)),
                         rng.split_for(static_cast<std::uint64_t>(i)));
  }
  // Random concurrent writes.
  for (int step = 0; step < 40; ++step) {
    const auto who = rng.pick_index(kStores);
    const auto key = "k" + std::to_string(rng.uniform_below(4));
    writers[who].write(stores[who], key, "p" + std::to_string(step),
                       static_cast<double>(step));
  }
  // Repeated full mesh reconciliation (2 sweeps guarantee convergence).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int i = 0; i < kStores; ++i) {
      for (int j = 0; j < kStores; ++j) {
        if (i == j) continue;
        for (auto& value : stores[j].missing_for(stores[i].stored_ids())) {
          stores[i].apply(std::move(value));
        }
      }
    }
  }
  for (int i = 1; i < kStores; ++i) {
    EXPECT_EQ(stores[0].summary(), stores[i].summary());
    for (const auto& key : stores[0].keys()) {
      ASSERT_TRUE(stores[i].read(key).has_value() ||
                  stores[i].is_deleted(key));
      EXPECT_EQ(stores[0].read(key)->id, stores[i].read(key)->id)
          << "divergent winner for " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreConvergence,
                         ::testing::Values(1, 17, 23, 99, 2026));

}  // namespace
}  // namespace updp2p::version
