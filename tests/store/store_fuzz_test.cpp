// Durable-store decoder robustness (same adversaries as the wire codec's
// fuzz suite): the WAL scanner and snapshot decoder must survive pure
// random noise, truncations of valid images, and single-bit flips —
// returning a diagnosed prefix / nullopt, never UB, never an allocation
// commanded by a hostile length. Run under ASan/UBSan in the sanitizer
// verify leg.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/rng.hpp"
#include "gossip/codec.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace updp2p::store {
namespace {

version::VersionedValue fuzz_value(common::Rng& rng) {
  version::VersionedValue value;
  value.key = "key-" + std::to_string(rng.uniform_int(0, 9));
  value.payload = std::string(
      static_cast<std::size_t>(rng.uniform_int(0, 40)), 'p');
  version::VersionIdFactory factory(
      common::PeerId(static_cast<std::uint32_t>(rng.uniform_int(0, 50))),
      common::Rng(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20))));
  value.id = factory.mint(rng.uniform01() * 50.0);
  value.history.observe(
      common::PeerId(static_cast<std::uint32_t>(rng.uniform_int(0, 50))),
      static_cast<std::uint64_t>(rng.uniform_int(1, 9)));
  value.written_at = rng.uniform01() * 100.0;
  return value;
}

/// The WAL invariant: scanning arbitrary bytes yields a valid prefix of
/// coherent records (chained sequence, in-bounds spans) and a tail
/// diagnosis — scan_wal must hold this for ANY input.
void check_wal_invariant(std::span<const std::byte> bytes) {
  std::uint64_t delivered = 0;
  std::uint64_t last_seq = 0;
  const auto scan = scan_wal(bytes, std::nullopt, [&](const WalRecord& r) {
    ++delivered;
    if (delivered > 1) {
      EXPECT_EQ(r.seq, last_seq + 1);
    }
    last_seq = r.seq;
    // The span must lie fully inside the scanned buffer.
    ASSERT_GE(reinterpret_cast<const char*>(r.frame.data()),
              reinterpret_cast<const char*>(bytes.data()));
    ASSERT_LE(reinterpret_cast<const char*>(r.frame.data() + r.frame.size()),
              reinterpret_cast<const char*>(bytes.data() + bytes.size()));
  });
  EXPECT_EQ(scan.records, delivered);
  EXPECT_LE(scan.valid_bytes, bytes.size());
  EXPECT_EQ(scan.valid_bytes + scan.discarded_bytes, bytes.size());
}

/// The snapshot invariant: decode either rejects or yields data whose
/// re-encode decodes again (the decoder only produces encodable values).
void check_snapshot_invariant(std::span<const std::byte> bytes) {
  const auto decoded = decode_snapshot(bytes);
  if (!decoded) return;
  const auto reencoded = encode_snapshot(*decoded);
  EXPECT_TRUE(decode_snapshot(reencoded).has_value());
}

gossip::WireBytes valid_snapshot_image(common::Rng& rng) {
  SnapshotData data;
  data.last_seq = static_cast<std::uint64_t>(rng.uniform_int(0, 10000));
  for (int i = 0; i < 8; ++i) {
    data.membership.insert(common::PeerId(
        static_cast<std::uint32_t>(rng.uniform_int(0, 5000))));
  }
  const int values = rng.uniform_int(0, 5);
  for (int i = 0; i < values; ++i) data.values.push_back(fuzz_value(rng));
  return encode_snapshot(data);
}

std::vector<std::byte> valid_wal_image(common::Rng& rng) {
  const std::string path = ::testing::TempDir() + "/updp2p_fuzz_wal.log";
  std::remove(path.c_str());
  std::string error;
  auto wal = FrameWal::open_for_append(path, 0, 1, false, &error);
  EXPECT_TRUE(wal.has_value()) << error;
  const int records = rng.uniform_int(1, 6);
  gossip::WireBytes frame;
  for (int i = 0; i < records; ++i) {
    gossip::GossipPayload payload = gossip::PushMessage{
        gossip::SharedValue(fuzz_value(rng)), gossip::SharedPeerList{},
        static_cast<common::Round>(i)};
    gossip::encode_into(payload, frame);
    EXPECT_TRUE(wal->append(common::PeerId(1), 0, frame).has_value());
  }
  wal.reset();
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bytes[i] = static_cast<std::byte>(raw[i]);
  }
  std::remove(path.c_str());
  return bytes;
}

class StoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreFuzz, RandomNoise) {
  common::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> noise(
        static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : noise) {
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    check_wal_invariant(noise);
    check_snapshot_invariant(noise);
  }
}

TEST_P(StoreFuzz, TruncationsOfValidImages) {
  common::Rng rng(GetParam());
  const auto wal_image = valid_wal_image(rng);
  for (std::size_t cut = 0; cut <= wal_image.size(); ++cut) {
    check_wal_invariant(std::span<const std::byte>(wal_image.data(), cut));
  }
  const auto snap_image = valid_snapshot_image(rng);
  for (std::size_t cut = 0; cut <= snap_image.size(); ++cut) {
    check_snapshot_invariant(
        std::span<const std::byte>(snap_image.data(), cut));
  }
}

TEST_P(StoreFuzz, BitFlipsOfValidImages) {
  common::Rng rng(GetParam());
  auto wal_image = valid_wal_image(rng);
  for (std::size_t i = 0; i < wal_image.size(); ++i) {
    for (int bit : {0, 3, 7}) {
      wal_image[i] ^= static_cast<std::byte>(1u << bit);
      check_wal_invariant(wal_image);
      wal_image[i] ^= static_cast<std::byte>(1u << bit);
    }
  }
  auto snap_image = valid_snapshot_image(rng);
  for (std::size_t i = 0; i < snap_image.size(); ++i) {
    for (int bit : {0, 3, 7}) {
      snap_image[i] ^= static_cast<std::byte>(1u << bit);
      check_snapshot_invariant(snap_image);
      snap_image[i] ^= static_cast<std::byte>(1u << bit);
    }
  }
}

TEST_P(StoreFuzz, HostileLengthsInWalHeaders) {
  // Adversarial header fields straddling the bounds: every combination
  // must stop the scan without reading past the buffer.
  common::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::byte> bytes(kWalHeaderBytes +
                                 static_cast<std::size_t>(
                                     rng.uniform_int(0, 64)));
    const std::uint32_t hostile_lens[] = {
        0u, 1u, 7u, 8u, kMaxWalRecordBytes - 1, kMaxWalRecordBytes,
        0xFFFFFFFFu,
        static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30))};
    for (const std::uint32_t len : hostile_lens) {
      for (int i = 0; i < 4; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((len >> (8 * i)) & 0xFF);
      }
      check_wal_invariant(bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         ::testing::Values(0x5eedULL, 0xD15CULL, 0xF00DULL));

}  // namespace
}  // namespace updp2p::store
