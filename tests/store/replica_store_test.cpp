// ReplicaStore end-to-end: a "lived" node's state vs a node rebuilt from
// snapshot + WAL replay must be BIT-IDENTICAL (content digest, summary
// vector, version count, membership) — the core durability contract.
#include "store/replica_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "gossip/codec.hpp"
#include "gossip/node.hpp"

namespace updp2p::store {
namespace {

using common::PeerId;

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/snapshot.bin").c_str());
  return dir;
}

gossip::GossipConfig test_config() {
  gossip::GossipConfig config;
  config.estimated_total_replicas = 50;
  config.fanout_fraction = 0.1;
  config.forward_probability = analysis::pf_constant(1.0);
  config.partial_list.mode = gossip::PartialListMode::kUnbounded;
  config.pull.contacts_per_attempt = 2;
  config.pull.no_update_timeout = 10;
  return config;
}

gossip::ReplicaNode make_node(std::uint32_t id) {
  gossip::ReplicaNode node(PeerId(id), test_config(),
                           common::StreamRng(1000 + id));
  std::vector<PeerId> view;
  for (std::uint32_t i = 0; i < 50; ++i) {
    if (i != id) view.emplace_back(i);
  }
  node.bootstrap(view);
  return node;
}

/// Encodes a push frame for `value` as peer `from` would send it.
gossip::WireBytes push_frame(version::VersionedValue value,
                             common::Round round) {
  gossip::GossipPayload payload = gossip::PushMessage{
      gossip::SharedValue(std::move(value)), gossip::SharedPeerList{}, round};
  gossip::WireBytes bytes;
  gossip::encode_into(payload, bytes);
  return bytes;
}

version::VersionedValue make_value(std::uint64_t seed) {
  version::VersionedValue value;
  value.key = "key-" + std::to_string(seed % 5);
  value.payload = "payload-" + std::to_string(seed);
  version::VersionIdFactory factory(
      PeerId(static_cast<std::uint32_t>(1 + seed % 30)),
      common::Rng(seed * 7 + 1));
  value.id = factory.mint(static_cast<double>(seed));
  value.history.observe(PeerId(static_cast<std::uint32_t>(1 + seed % 30)),
                        1 + seed);
  value.written_at = static_cast<double>(seed);
  return value;
}

/// Asserts the durability contract: `recovered` stands exactly where
/// `lived` stands.
void expect_bit_identical(const gossip::ReplicaNode& lived,
                          const gossip::ReplicaNode& recovered) {
  EXPECT_EQ(recovered.store().content_digest(), lived.store().content_digest());
  EXPECT_EQ(recovered.store().summary(), lived.store().summary());
  EXPECT_EQ(recovered.store().version_count(), lived.store().version_count());
  EXPECT_EQ(recovered.view().membership(), lived.view().membership());
}

/// Drives `count` distinct pushes into `node`, appending each first
/// receipt to `store` exactly the way PeerRuntime does (append before the
/// ack leaves).
void drive_pushes(gossip::ReplicaNode& node, ReplicaStore& store,
                  std::size_t count) {
  std::vector<gossip::OutboundMessage> out;
  for (std::size_t i = 0; i < count; ++i) {
    const auto frame = push_frame(make_value(i + 1),
                                  static_cast<common::Round>(i));
    const PeerId from(static_cast<std::uint32_t>(1 + i % 30));
    out.clear();
    ASSERT_TRUE(node.handle_frame(from, frame,
                                  static_cast<common::Round>(i), out));
    ASSERT_TRUE(store
                    .append_frame(from, static_cast<common::Round>(i), frame)
                    .has_value());
  }
}

gossip::ReplicaNode recover_node(std::uint32_t id, const StoreConfig& config) {
  auto node = make_node(id);
  std::string error;
  auto store = ReplicaStore::open(config, &error);
  EXPECT_TRUE(store.has_value()) << error;
  SnapshotData snapshot = store->take_snapshot_state();
  node.import_durable_state(snapshot.membership, std::move(snapshot.values));
  std::vector<gossip::OutboundMessage> discard;
  store->replay([&](const ReplicaStore::RecoveredFrame& record) {
    discard.clear();
    EXPECT_TRUE(
        node.handle_frame(record.from, record.frame, record.round, discard));
  });
  return node;
}

TEST(ReplicaStoreTest, ReplayFromLogAloneIsBitIdentical) {
  StoreConfig config;
  config.data_dir = fresh_dir("rs_log_only");
  config.snapshot_every_records = 0;  // log only, no compaction

  auto lived = make_node(0);
  {
    std::string error;
    auto store = ReplicaStore::open(config, &error);
    ASSERT_TRUE(store.has_value()) << error;
    drive_pushes(lived, *store, 12);
    EXPECT_EQ(store->stats().records_appended, 12u);
  }  // "crash": the store handle goes away, nothing was snapshotted

  const auto recovered = recover_node(0, config);
  expect_bit_identical(lived, recovered);
}

TEST(ReplicaStoreTest, SnapshotPlusTailIsBitIdentical) {
  StoreConfig config;
  config.data_dir = fresh_dir("rs_snap_tail");
  config.snapshot_every_records = 0;

  auto lived = make_node(0);
  {
    std::string error;
    auto store = ReplicaStore::open(config, &error);
    ASSERT_TRUE(store.has_value()) << error;
    drive_pushes(lived, *store, 8);
    // Compact: snapshot the node's current state, truncating the log…
    ASSERT_TRUE(store->write_snapshot(lived.view().membership(),
                                      lived.store().all_versions(), &error))
        << error;
    EXPECT_EQ(store->stats().snapshots_written, 1u);
    // …then keep living: these land in the post-snapshot log tail.
    std::vector<gossip::OutboundMessage> out;
    for (std::size_t i = 100; i < 106; ++i) {
      const auto frame = push_frame(make_value(i),
                                    static_cast<common::Round>(i));
      out.clear();
      ASSERT_TRUE(lived.handle_frame(PeerId(3), frame,
                                     static_cast<common::Round>(i), out));
      ASSERT_TRUE(store
                      ->append_frame(PeerId(3),
                                     static_cast<common::Round>(i), frame)
                      .has_value());
    }
  }

  const auto recovered = recover_node(0, config);
  expect_bit_identical(lived, recovered);
}

TEST(ReplicaStoreTest, StaleLogAfterSnapshotReplaysIdempotently) {
  // Crash window between snapshot write and log truncation: the full log
  // (records the snapshot already covers) is still on disk. Replaying the
  // superseded records through the duplicate-tolerant live path must
  // change nothing.
  StoreConfig config;
  config.data_dir = fresh_dir("rs_stale_log");
  config.snapshot_every_records = 0;

  auto lived = make_node(0);
  {
    std::string error;
    auto store = ReplicaStore::open(config, &error);
    ASSERT_TRUE(store.has_value()) << error;
    drive_pushes(lived, *store, 10);
    // Write the snapshot file DIRECTLY (bypassing write_snapshot) so the
    // log is left un-truncated — exactly the crash-window state.
    SnapshotData data;
    data.last_seq = store->next_seq() - 1;
    data.membership = lived.view().membership();
    data.values = lived.store().all_versions();
    ASSERT_TRUE(
        write_snapshot_file(store->snapshot_path(), data, &error))
        << error;
  }

  const auto recovered = recover_node(0, config);
  expect_bit_identical(lived, recovered);
}

TEST(ReplicaStoreTest, CorruptSnapshotSalvagesLog) {
  // The snapshot is destroyed but the log survives: recovery must not
  // crash, must report the corruption, and must still replay every log
  // record (self-declared sequence base).
  StoreConfig config;
  config.data_dir = fresh_dir("rs_corrupt_snap");
  config.snapshot_every_records = 0;

  auto lived = make_node(0);
  {
    std::string error;
    auto store = ReplicaStore::open(config, &error);
    ASSERT_TRUE(store.has_value()) << error;
    drive_pushes(lived, *store, 9);
  }
  {
    std::ofstream out(config.data_dir + "/snapshot.bin",
                      std::ios::binary | std::ios::trunc);
    out << "UPSN garbage that will not checksum";
  }

  std::string error;
  auto store = ReplicaStore::open(config, &error);
  ASSERT_TRUE(store.has_value()) << error;
  EXPECT_TRUE(store->stats().snapshot_corrupt);
  EXPECT_EQ(store->stats().records_recovered, 9u);

  auto node = make_node(0);
  SnapshotData snapshot = store->take_snapshot_state();
  node.import_durable_state(snapshot.membership, std::move(snapshot.values));
  std::vector<gossip::OutboundMessage> discard;
  store->replay([&](const ReplicaStore::RecoveredFrame& record) {
    discard.clear();
    EXPECT_TRUE(
        node.handle_frame(record.from, record.frame, record.round, discard));
  });
  // All 9 pushes lived in the log, so even without the snapshot the state
  // is fully rebuilt here.
  expect_bit_identical(lived, node);
}

TEST(ReplicaStoreTest, TornTailLosesAtMostTheLastRecord) {
  StoreConfig config;
  config.data_dir = fresh_dir("rs_torn");
  config.snapshot_every_records = 0;

  auto lived = make_node(0);
  {
    std::string error;
    auto store = ReplicaStore::open(config, &error);
    ASSERT_TRUE(store.has_value()) << error;
    drive_pushes(lived, *store, 5);
  }
  // Tear the tail: chop 5 bytes off the log.
  const std::string wal_path = config.data_dir + "/wal.log";
  std::uintmax_t size = 0;
  {
    std::ifstream in(wal_path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good());
    size = static_cast<std::uintmax_t>(in.tellg());
  }
  ASSERT_EQ(::truncate(wal_path.c_str(),
                       static_cast<off_t>(size - 5)), 0);

  std::string error;
  auto store = ReplicaStore::open(config, &error);
  ASSERT_TRUE(store.has_value()) << error;
  EXPECT_EQ(store->stats().records_recovered, 4u);
  EXPECT_GT(store->stats().wal_discarded_bytes, 0u);
  EXPECT_NE(store->stats().recovery_tail, WalTail::kCleanEnd);
  // The reopened log was truncated to the valid prefix and appending
  // continues at the torn record's sequence.
  EXPECT_EQ(store->next_seq(), 5u);
}

TEST(ReplicaStoreTest, CountTriggerCompactsAndRecoversFromSnapshot) {
  StoreConfig config;
  config.data_dir = fresh_dir("rs_count_trigger");
  config.snapshot_every_records = 4;

  auto lived = make_node(0);
  {
    std::string error;
    auto store = ReplicaStore::open(config, &error);
    ASSERT_TRUE(store.has_value()) << error;
    std::vector<gossip::OutboundMessage> out;
    for (std::size_t i = 0; i < 10; ++i) {
      const auto frame = push_frame(make_value(i + 1),
                                    static_cast<common::Round>(i));
      out.clear();
      ASSERT_TRUE(lived.handle_frame(PeerId(2), frame,
                                     static_cast<common::Round>(i), out));
      ASSERT_TRUE(store
                      ->append_frame(PeerId(2),
                                     static_cast<common::Round>(i), frame)
                      .has_value());
      if (store->snapshot_due()) {
        ASSERT_TRUE(store->write_snapshot(lived.view().membership(),
                                          lived.store().all_versions(),
                                          &error))
            << error;
      }
    }
    EXPECT_EQ(store->stats().snapshots_written, 2u);  // after 4 and 8
  }

  const auto recovered = recover_node(0, config);
  expect_bit_identical(lived, recovered);
}

}  // namespace
}  // namespace updp2p::store
