// FrameWal: append/scan roundtrip, torn-write robustness (the crash model
// is "the tail record may be any prefix of itself, or garbage"), and the
// reopen-continues-sequence discipline.
#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/types.hpp"

namespace updp2p::store {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::byte> make_frame(unsigned seed, std::size_t size) {
  std::vector<std::byte> frame(size);
  for (std::size_t i = 0; i < size; ++i) {
    frame[i] = static_cast<std::byte>((seed * 131 + i * 7 + 3) & 0xFF);
  }
  return frame;
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bytes[i] = static_cast<std::byte>(raw[i]);
  }
  return bytes;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Builds a log of `count` records at `path`, returning the frames.
std::vector<std::vector<std::byte>> build_log(const std::string& path,
                                              std::size_t count) {
  std::remove(path.c_str());
  std::string error;
  auto wal = FrameWal::open_for_append(path, 0, 1, false, &error);
  EXPECT_TRUE(wal.has_value()) << error;
  std::vector<std::vector<std::byte>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    frames.push_back(make_frame(static_cast<unsigned>(i), 20 + i * 13));
    const auto seq = wal->append(common::PeerId(100 + i),
                                 static_cast<common::Round>(i), frames.back());
    EXPECT_TRUE(seq.has_value());
    EXPECT_EQ(*seq, i + 1);
  }
  return frames;
}

TEST(WalTest, AppendScanRoundtrip) {
  const std::string path = temp_path("wal_roundtrip.log");
  const auto frames = build_log(path, 5);

  std::size_t index = 0;
  const auto scan =
      scan_wal_file(path, 1, [&](const WalRecord& record) {
        ASSERT_LT(index, frames.size());
        EXPECT_EQ(record.seq, index + 1);
        EXPECT_EQ(record.from, common::PeerId(100 + index));
        EXPECT_EQ(record.round, index);
        ASSERT_EQ(record.frame.size(), frames[index].size());
        EXPECT_TRUE(std::equal(record.frame.begin(), record.frame.end(),
                               frames[index].begin()));
        ++index;
      });
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records, 5u);
  EXPECT_EQ(scan->next_seq, 6u);
  EXPECT_EQ(scan->discarded_bytes, 0u);
  EXPECT_EQ(scan->tail, WalTail::kCleanEnd);
  EXPECT_EQ(index, 5u);
}

TEST(WalTest, MissingFileIsCleanEmptyLog) {
  const auto scan = scan_wal_file(temp_path("wal_never_written.log"), 7,
                                  nullptr);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records, 0u);
  EXPECT_EQ(scan->next_seq, 7u);
  EXPECT_EQ(scan->tail, WalTail::kCleanEnd);
}

TEST(WalTest, EveryTruncationOfTheTailRecovers) {
  // Crash model: the final write(2) may persist any prefix. For EVERY
  // truncation point inside the last record the first N-1 records must
  // survive and the tail must be diagnosed, never mis-parsed.
  const std::string path = temp_path("wal_torn.log");
  build_log(path, 3);
  const auto full = read_file(path);

  // Find where the last record begins: scan the first two records.
  const auto scan2 = scan_wal(full, 1, nullptr);
  ASSERT_EQ(scan2.records, 3u);
  std::uint64_t second_end = 0;
  {
    std::size_t seen = 0;
    scan_wal(full, 1, [&](const WalRecord& record) {
      if (++seen == 2) {
        second_end = static_cast<std::uint64_t>(
            record.frame.data() + record.frame.size() - full.data());
      }
    });
  }
  ASSERT_GT(second_end, 0u);

  // cut == second_end is a legitimately clean 2-record log; every cut
  // strictly inside the third record must be diagnosed as torn.
  for (std::size_t cut = second_end + 1; cut < full.size(); ++cut) {
    const std::span<const std::byte> torn(full.data(), cut);
    const auto scan = scan_wal(torn, 1, nullptr);
    EXPECT_EQ(scan.records, 2u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, second_end) << "cut at " << cut;
    EXPECT_NE(scan.tail, WalTail::kCleanEnd) << "cut at " << cut;
  }
}

TEST(WalTest, BitFlipAnywhereInTailRecordIsCaught) {
  const std::string path = temp_path("wal_bitflip.log");
  build_log(path, 3);
  auto bytes = read_file(path);
  const auto clean = scan_wal(bytes, 1, nullptr);
  ASSERT_EQ(clean.records, 3u);
  std::uint64_t second_end = 0;
  {
    std::size_t seen = 0;
    scan_wal(bytes, 1, [&](const WalRecord& record) {
      if (++seen == 2) {
        second_end = static_cast<std::uint64_t>(
            record.frame.data() + record.frame.size() - bytes.data());
      }
    });
  }

  for (std::size_t i = static_cast<std::size_t>(second_end);
       i < bytes.size(); ++i) {
    bytes[i] ^= std::byte{0x40};
    const auto scan = scan_wal(bytes, 1, nullptr);
    // The corrupted record must never be delivered: either its CRC (or
    // length/sequence sanity) stops the scan at the 2-record prefix, or —
    // when the flip hits the len field — the framing itself fails. Both
    // diagnose a non-clean tail.
    EXPECT_EQ(scan.records, 2u) << "flip at " << i;
    EXPECT_NE(scan.tail, WalTail::kCleanEnd) << "flip at " << i;
    bytes[i] ^= std::byte{0x40};
  }
}

TEST(WalTest, GarbagePastValidPrefixIsDiscarded) {
  const std::string path = temp_path("wal_garbage.log");
  build_log(path, 2);
  auto bytes = read_file(path);
  const std::size_t valid = bytes.size();
  for (std::size_t i = 0; i < 64; ++i) {
    bytes.push_back(static_cast<std::byte>(0xA5 ^ (i * 29)));
  }
  const auto scan = scan_wal(bytes, 1, nullptr);
  EXPECT_EQ(scan.records, 2u);
  EXPECT_EQ(scan.valid_bytes, valid);
  EXPECT_EQ(scan.discarded_bytes, 64u);
  EXPECT_NE(scan.tail, WalTail::kCleanEnd);
}

TEST(WalTest, HostileLengthNeverCommandsAllocation) {
  // A header whose len field claims ~kMaxWalRecordBytes on a tiny file:
  // the scan must reject it from the bound alone.
  std::vector<std::byte> bytes(kWalHeaderBytes, std::byte{0});
  const std::uint32_t hostile = kMaxWalRecordBytes;  // >= bound -> invalid
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((hostile >> (8 * i)) & 0xFF);
  }
  const auto scan = scan_wal(bytes, 1, nullptr);
  EXPECT_EQ(scan.records, 0u);
  EXPECT_EQ(scan.tail, WalTail::kBadLength);

  // Just under the bound but promising more body than the file holds:
  // torn-body, still zero records.
  const std::uint32_t big = kMaxWalRecordBytes - 1;
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((big >> (8 * i)) & 0xFF);
  }
  const auto scan2 = scan_wal(bytes, 1, nullptr);
  EXPECT_EQ(scan2.records, 0u);
  EXPECT_EQ(scan2.tail, WalTail::kTornBody);
}

TEST(WalTest, SequenceGapEndsThePrefix) {
  const std::string path = temp_path("wal_seqgap.log");
  build_log(path, 3);
  // Expecting the log to start at seq 2: the first record (seq 1) is a
  // stale leftover and the whole file must be rejected as unsplicable.
  const auto scan = scan_wal_file(path, 2, nullptr);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records, 0u);
  EXPECT_EQ(scan->tail, WalTail::kBadSequence);
}

TEST(WalTest, SelfDeclaredBaseSalvagesLogWithoutSnapshot) {
  // first_seq == nullopt (lost snapshot): the log's own first record
  // declares the base, continuity still enforced from there.
  const std::string path = temp_path("wal_selfbase.log");
  std::remove(path.c_str());
  std::string error;
  auto wal = FrameWal::open_for_append(path, 0, 41, false, &error);
  ASSERT_TRUE(wal.has_value()) << error;
  const auto frame = make_frame(9, 24);
  ASSERT_TRUE(wal->append(common::PeerId(1), 0, frame).has_value());
  ASSERT_TRUE(wal->append(common::PeerId(2), 1, frame).has_value());
  wal.reset();

  const auto scan = scan_wal_file(path, std::nullopt, nullptr);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records, 2u);
  EXPECT_EQ(scan->next_seq, 43u);
  EXPECT_EQ(scan->tail, WalTail::kCleanEnd);
}

TEST(WalTest, ReopenTruncatesTornTailAndContinuesSequence) {
  const std::string path = temp_path("wal_reopen.log");
  build_log(path, 3);
  auto bytes = read_file(path);
  // Simulate a crash mid-append: half the final record persisted.
  const auto scan_full = scan_wal(bytes, 1, nullptr);
  ASSERT_EQ(scan_full.records, 3u);
  write_file(path, std::span<const std::byte>(bytes.data(),
                                              bytes.size() - 7));

  const auto scan = scan_wal_file(path, 1, nullptr);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records, 2u);
  EXPECT_GT(scan->discarded_bytes, 0u);

  std::string error;
  auto wal = FrameWal::open_for_append(path, scan->valid_bytes,
                                       scan->next_seq, false, &error);
  ASSERT_TRUE(wal.has_value()) << error;
  const auto frame = make_frame(77, 30);
  const auto seq = wal->append(common::PeerId(7), 9, frame);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(*seq, 3u);  // the torn record's sequence is reused
  wal.reset();

  std::vector<std::uint64_t> seqs;
  const auto rescan = scan_wal_file(
      path, 1, [&](const WalRecord& record) { seqs.push_back(record.seq); });
  ASSERT_TRUE(rescan.has_value());
  EXPECT_EQ(rescan->tail, WalTail::kCleanEnd);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(WalTest, TruncateAllKeepsSequenceMonotone) {
  const std::string path = temp_path("wal_truncate.log");
  std::remove(path.c_str());
  std::string error;
  auto wal = FrameWal::open_for_append(path, 0, 1, false, &error);
  ASSERT_TRUE(wal.has_value()) << error;
  const auto frame = make_frame(3, 16);
  ASSERT_TRUE(wal->append(common::PeerId(1), 0, frame).has_value());
  ASSERT_TRUE(wal->append(common::PeerId(1), 1, frame).has_value());
  ASSERT_TRUE(wal->truncate_all());
  EXPECT_EQ(wal->next_seq(), 3u);  // numbering survives the truncation
  const auto seq = wal->append(common::PeerId(2), 2, frame);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(*seq, 3u);
  wal.reset();

  // Post-truncation log scans from its own base (the store passes
  // snapshot.last_seq + 1 == 3 here).
  const auto scan = scan_wal_file(path, 3, nullptr);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records, 1u);
  EXPECT_EQ(scan->tail, WalTail::kCleanEnd);
}

}  // namespace
}  // namespace updp2p::store
