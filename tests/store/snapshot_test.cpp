// Snapshot encode/decode roundtrip, atomic-replace semantics, and the
// corruption gates (CRC, magic, version, hostile counts, trailing bytes).
#include "store/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"

namespace updp2p::store {
namespace {

version::VersionedValue sample_value(std::uint64_t seed) {
  version::VersionedValue value;
  value.key = "key-" + std::to_string(seed % 7);
  value.payload = std::string(8 + seed % 23, static_cast<char>('a' + seed % 26));
  version::VersionIdFactory factory(
      common::PeerId(static_cast<std::uint32_t>(seed % 40)),
      common::Rng(seed + 1));
  value.id = factory.mint(static_cast<double>(seed));
  value.history.observe(common::PeerId(static_cast<std::uint32_t>(seed % 40)),
                        1 + seed % 5);
  value.history.observe(common::PeerId(7), 2);
  value.written_at = static_cast<double>(seed) * 0.25;
  return value;
}

SnapshotData sample_snapshot() {
  SnapshotData data;
  data.last_seq = 4242;
  for (std::uint32_t id : {0u, 3u, 17u, 900u, 4096u}) {
    data.membership.insert(common::PeerId(id));
  }
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    data.values.push_back(sample_value(seed));
  }
  data.values[2].tombstone = true;
  data.values[2].payload.clear();
  return data;
}

TEST(SnapshotTest, EncodeDecodeRoundtrip) {
  const SnapshotData data = sample_snapshot();
  const auto decoded = decode_snapshot(encode_snapshot(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->last_seq, data.last_seq);
  EXPECT_EQ(decoded->membership, data.membership);
  ASSERT_EQ(decoded->values.size(), data.values.size());
  for (std::size_t i = 0; i < data.values.size(); ++i) {
    EXPECT_EQ(decoded->values[i], data.values[i]) << "value " << i;
  }
}

TEST(SnapshotTest, EmptySnapshotRoundtrips) {
  const auto decoded = decode_snapshot(encode_snapshot(SnapshotData{}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->last_seq, 0u);
  EXPECT_TRUE(decoded->membership.empty());
  EXPECT_TRUE(decoded->values.empty());
}

TEST(SnapshotTest, EveryBitFlipIsRejected) {
  auto image = encode_snapshot(sample_snapshot());
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] ^= std::byte{0x01};
    EXPECT_FALSE(decode_snapshot(image).has_value()) << "flip at byte " << i;
    image[i] ^= std::byte{0x01};
  }
  EXPECT_TRUE(decode_snapshot(image).has_value());  // restored intact
}

TEST(SnapshotTest, EveryTruncationIsRejected) {
  const auto image = encode_snapshot(sample_snapshot());
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_FALSE(
        decode_snapshot(std::span<const std::byte>(image.data(), cut))
            .has_value())
        << "cut at " << cut;
  }
}

TEST(SnapshotTest, TrailingGarbageIsRejected) {
  auto image = encode_snapshot(sample_snapshot());
  image.push_back(std::byte{0x00});
  EXPECT_FALSE(decode_snapshot(image).has_value());
}

TEST(SnapshotTest, FileRoundtripAndMissingFileIsEmptyState) {
  const std::string path = ::testing::TempDir() + "/updp2p_snapshot.bin";
  std::remove(path.c_str());

  std::string error;
  const auto missing = read_snapshot_file(path, &error);
  ASSERT_TRUE(missing.has_value());  // no snapshot yet != corruption
  EXPECT_EQ(missing->values.size(), 0u);

  const SnapshotData data = sample_snapshot();
  ASSERT_TRUE(write_snapshot_file(path, data, &error)) << error;
  const auto back = read_snapshot_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->last_seq, data.last_seq);
  EXPECT_EQ(back->values.size(), data.values.size());

  // No temp residue: the tmp file was renamed into place.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SnapshotTest, CorruptFileIsDiagnosedNotCrashed) {
  const std::string path = ::testing::TempDir() + "/updp2p_snapshot_bad.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "UPSNthis is not a snapshot at all";
  }
  std::string error;
  const auto result = read_snapshot_file(path, &error);
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(SnapshotTest, AtomicReplaceKeepsOldSnapshotOnOverwrite) {
  // Overwriting with new contents fully replaces; a reader polling the
  // path between the two writes sees one version or the other (asserted
  // here by the absence of any intermediate truncated state on disk —
  // the tmp+rename discipline never opens `path` for writing).
  const std::string path = ::testing::TempDir() + "/updp2p_snapshot_seq.bin";
  std::remove(path.c_str());
  std::string error;
  SnapshotData first = sample_snapshot();
  first.last_seq = 1;
  ASSERT_TRUE(write_snapshot_file(path, first, &error)) << error;
  SnapshotData second = sample_snapshot();
  second.last_seq = 2;
  ASSERT_TRUE(write_snapshot_file(path, second, &error)) << error;
  const auto back = read_snapshot_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->last_seq, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace updp2p::store
