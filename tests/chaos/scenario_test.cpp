// Chaos scenario DSL: parsing, validation and round-trip serialization.
#include "chaos/scenario.hpp"

#include <gtest/gtest.h>

#include "chaos/scenarios.hpp"

namespace updp2p::chaos {
namespace {

common::PeerId peer(std::uint32_t id) { return common::PeerId(id); }

TEST(ScenarioParser, ParsesHeaderAndOps) {
  const char* script = R"(
# comment line
name storm
population 12
durable 0-3,7
round 0.25
tick 0.01
loss 0.1
latency 0.02 0.08
fanout 0.5
acks off
retry-attempts 6
retry-initial 0.3
snapshot-every 32
view 4
phase 2
  publish 0 alpha     # trailing comment
  partition 0-5 | 6-11
phase 4.5
  heal
  linkloss 0,1 6-8 0.4
  linkdelay * 11 0.2
  dup 0.25
  reorder 0.5 0.75
  offline 9-11
  online 9-11
  skew 2 1.5
  kill 3 wipe
  restart 3
  disk-fault 0-1 torn
  disk-ok 0-1
  snapshot 7
)";
  std::string error;
  const auto scenario = parse_scenario(script, &error);
  ASSERT_TRUE(scenario.has_value()) << error;

  EXPECT_EQ(scenario->name, "storm");
  EXPECT_EQ(scenario->population, 12u);
  EXPECT_EQ(scenario->durable,
            (std::vector<common::PeerId>{peer(0), peer(1), peer(2), peer(3),
                                         peer(7)}));
  EXPECT_DOUBLE_EQ(scenario->round, 0.25);
  EXPECT_DOUBLE_EQ(scenario->tick, 0.01);
  EXPECT_DOUBLE_EQ(scenario->base_loss, 0.1);
  EXPECT_DOUBLE_EQ(scenario->latency_lo, 0.02);
  EXPECT_DOUBLE_EQ(scenario->latency_hi, 0.08);
  EXPECT_DOUBLE_EQ(scenario->fanout, 0.5);
  EXPECT_FALSE(scenario->acks);
  EXPECT_EQ(scenario->retry_attempts, 6u);
  EXPECT_DOUBLE_EQ(scenario->retry_initial, 0.3);
  EXPECT_EQ(scenario->snapshot_every, 32u);
  EXPECT_EQ(scenario->view, 4u);

  ASSERT_EQ(scenario->phases.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario->phases[0].duration, 2.0);
  ASSERT_EQ(scenario->phases[0].ops.size(), 2u);
  EXPECT_EQ(scenario->phases[0].ops[0].kind, OpKind::kPublish);
  EXPECT_EQ(scenario->phases[0].ops[0].peer, peer(0));
  EXPECT_EQ(scenario->phases[0].ops[0].key, "alpha");
  const Op& split = scenario->phases[0].ops[1];
  EXPECT_EQ(split.kind, OpKind::kPartition);
  ASSERT_EQ(split.groups.size(), 2u);
  EXPECT_EQ(split.groups[0].size(), 6u);
  EXPECT_EQ(split.groups[1].size(), 6u);

  const std::vector<Op>& ops = scenario->phases[1].ops;
  ASSERT_EQ(ops.size(), 13u);
  EXPECT_EQ(ops[0].kind, OpKind::kHeal);
  EXPECT_EQ(ops[1].kind, OpKind::kLinkLoss);
  EXPECT_EQ(ops[1].peers, (std::vector<common::PeerId>{peer(0), peer(1)}));
  EXPECT_EQ(ops[1].dst,
            (std::vector<common::PeerId>{peer(6), peer(7), peer(8)}));
  EXPECT_DOUBLE_EQ(ops[1].a, 0.4);
  EXPECT_EQ(ops[2].kind, OpKind::kLinkDelay);
  EXPECT_EQ(ops[2].peers.size(), 12u);  // `*` expands to everyone
  EXPECT_EQ(ops[3].kind, OpKind::kDuplicate);
  EXPECT_EQ(ops[4].kind, OpKind::kReorder);
  EXPECT_DOUBLE_EQ(ops[4].b, 0.75);
  EXPECT_EQ(ops[5].kind, OpKind::kOffline);
  EXPECT_EQ(ops[6].kind, OpKind::kOnline);
  EXPECT_EQ(ops[7].kind, OpKind::kSkew);
  EXPECT_DOUBLE_EQ(ops[7].a, 1.5);
  EXPECT_EQ(ops[8].kind, OpKind::kKill);
  EXPECT_TRUE(ops[8].wipe);
  EXPECT_EQ(ops[9].kind, OpKind::kRestart);
  EXPECT_EQ(ops[10].kind, OpKind::kDiskFault);
  EXPECT_EQ(ops[10].disk, DiskFaultMode::kTorn);
  EXPECT_EQ(ops[11].kind, OpKind::kDiskOk);
  EXPECT_EQ(ops[12].kind, OpKind::kSnapshot);
}

TEST(ScenarioParser, PeerSetsDeduplicateAndSort) {
  std::string error;
  const auto scenario = parse_scenario(
      "population 10\nphase 1\n  offline 7,1,3-5,4\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->phases[0].ops[0].peers,
            (std::vector<common::PeerId>{peer(1), peer(3), peer(4), peer(5),
                                         peer(7)}));
}

TEST(ScenarioParser, RejectsMalformedScripts) {
  const char* bad[] = {
      "phase 1\n  offline 3\nname late\n",   // header after phases
      "population 4\nphase 1\n  offline 9\n",  // peer out of range
      "population 0\nphase 1\n  heal\n",       // empty population
      "loss 1.5\nphase 1\n  heal\n",           // probability > 1
      "phase 1\n  partition 0-3\n",            // single partition group
      "population 8\nphase 1\n  partition 0-4 | 3-7\n",  // overlap
      "phase 1\n  explode *\n",                // unknown op
      "phase 0\n  heal\n",                     // non-positive duration
      "population 8\nphase 1\n  offline 5-2\n",  // descending range
      "latency 0.2 0.1\nphase 1\n  heal\n",    // hi < lo
      "name only\n",                           // no phases
      "population 8\nphase 1\n  kill 1 wippe\n",  // bad kill modifier
      "population 8\nphase 1\n  disk-fault 1 sometimes\n",  // bad mode
  };
  for (const char* script : bad) {
    std::string error;
    EXPECT_FALSE(parse_scenario(script, &error).has_value()) << script;
    EXPECT_FALSE(error.empty()) << script;
  }
}

TEST(ScenarioParser, ReportsLineNumbers) {
  std::string error;
  ASSERT_FALSE(
      parse_scenario("population 8\nphase 1\n  offline 9\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(ScenarioRoundTrip, ExactForHandWrittenScenario) {
  const char* script = R"(population 9
durable 0-2
round 0.125
phase 1.5
  publish 8 config
  partition 0-4 | 5-8
phase 3
  heal
  kill 1 wipe
)";
  std::string error;
  const auto scenario = parse_scenario(script, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const std::string text = to_text(*scenario);
  const auto reparsed = parse_scenario(text, &error);
  ASSERT_TRUE(reparsed.has_value()) << error << "\n" << text;
  EXPECT_EQ(*scenario, *reparsed) << text;
}

TEST(ScenarioRoundTrip, ExactForEveryBuiltin) {
  const std::vector<Scenario> corpus = builtin_scenarios();
  ASSERT_GE(corpus.size(), 10u);
  for (const Scenario& scenario : corpus) {
    std::string error;
    const auto reparsed = parse_scenario(to_text(scenario), &error);
    ASSERT_TRUE(reparsed.has_value()) << scenario.name << ": " << error;
    EXPECT_EQ(scenario, *reparsed) << scenario.name;
  }
}

TEST(ScenarioCorpus, NamesAreUniqueAndFindable) {
  const std::vector<Scenario> corpus = builtin_scenarios();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_NE(corpus[i].name, corpus[j].name);
    }
    const auto found = find_scenario(corpus[i].name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, corpus[i]);
  }
  EXPECT_FALSE(find_scenario("no-such-scenario").has_value());
}

TEST(ScenarioCorpus, EveryScenarioEndsHealed) {
  // The eventual-delivery check assumes a fair final window: the last
  // phase of every builtin must heal the network and run for a while.
  for (const Scenario& scenario : builtin_scenarios()) {
    ASSERT_FALSE(scenario.phases.empty());
    const Phase& last = scenario.phases.back();
    bool heals = false;
    for (const Op& op : last.ops) heals = heals || op.kind == OpKind::kHeal;
    EXPECT_TRUE(heals) << scenario.name;
    EXPECT_GE(last.duration, 10.0) << scenario.name;
  }
}

}  // namespace
}  // namespace updp2p::chaos
