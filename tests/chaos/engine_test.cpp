// Chaos engine: property checks over the builtin corpus, bit-identical
// replay digests, and sweep thread-count invariance.
#include "chaos/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/scenarios.hpp"

namespace updp2p::chaos {
namespace {

std::string test_root(const std::string& leaf) {
  return ::testing::TempDir() + "updp2p-chaos-test-" + leaf;
}

Scenario load(const std::string& name) {
  auto scenario = find_scenario(name);
  EXPECT_TRUE(scenario.has_value()) << name;
  return *scenario;
}

TEST(ChaosEngine, CorpusPassesPropertyChecksAcrossSeeds) {
  const std::vector<std::uint64_t> seeds{1, 7, 15, 42};
  for (const Scenario& scenario : builtin_scenarios()) {
    ChaosOptions options;
    options.data_root = test_root("corpus-" + scenario.name);
    for (const std::uint64_t seed : seeds) {
      const ChaosReport report = run_scenario(scenario, seed, options);
      EXPECT_TRUE(report.passed())
          << scenario.name << " seed " << seed << ": "
          << (report.violations.empty() ? "" : report.violations.front());
      EXPECT_EQ(report.phases, scenario.phases.size());
    }
  }
}

TEST(ChaosEngine, SameSeedReplaysBitIdentically) {
  const Scenario scenario = load("combined-storm");
  ChaosOptions options;
  options.data_root = test_root("replay");
  const ChaosReport first = run_scenario(scenario, 7, options);
  const ChaosReport second = run_scenario(scenario, 7, options);
  EXPECT_EQ(first.trace_digest.to_hex(), second.trace_digest.to_hex());
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.published, second.published);
  EXPECT_EQ(first.network.datagrams_delivered,
            second.network.datagrams_delivered);
  EXPECT_EQ(first.injector.partition_drops, second.injector.partition_drops);
  EXPECT_EQ(first.trace, second.trace);
}

TEST(ChaosEngine, DifferentSeedsDiverge) {
  const Scenario scenario = load("combined-storm");
  ChaosOptions options;
  options.data_root = test_root("diverge");
  const ChaosReport a = run_scenario(scenario, 1, options);
  const ChaosReport b = run_scenario(scenario, 2, options);
  EXPECT_NE(a.trace_digest.to_hex(), b.trace_digest.to_hex());
}

TEST(ChaosEngine, SweepDigestsInvariantAcrossThreadCounts) {
  const Scenario scenario = load("kill-restart-durable");
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  ChaosOptions serial_options;
  serial_options.data_root = test_root("sweep-serial");
  serial_options.keep_trace = false;
  ChaosOptions threaded_options;
  threaded_options.data_root = test_root("sweep-threaded");
  threaded_options.keep_trace = false;

  const auto serial = run_seed_sweep(scenario, seeds, serial_options, 1);
  const auto threaded = run_seed_sweep(scenario, seeds, threaded_options, 8);
  ASSERT_EQ(serial.size(), seeds.size());
  ASSERT_EQ(threaded.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial[i].seed, seeds[i]);
    EXPECT_EQ(serial[i].trace_digest.to_hex(),
              threaded[i].trace_digest.to_hex())
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].violations, threaded[i].violations);
  }
}

TEST(ChaosEngine, PartitionActuallyDropsCrossGroupTraffic) {
  const Scenario scenario = load("partition-heal");
  ChaosOptions options;
  options.data_root = test_root("partition");
  const ChaosReport report = run_scenario(scenario, 7, options);
  EXPECT_TRUE(report.passed());
  EXPECT_GT(report.injector.partition_drops, 0u);
  EXPECT_EQ(report.network.dropped_policy,
            report.injector.partition_drops + report.injector.loss_drops +
                report.injector.mutation_drops);
}

TEST(ChaosEngine, DuplicateWindowFansOutCopies) {
  const Scenario scenario = load("duplicate-reorder");
  ChaosOptions options;
  options.data_root = test_root("dup");
  const ChaosReport report = run_scenario(scenario, 7, options);
  EXPECT_TRUE(report.passed());
  EXPECT_GT(report.injector.duplicated, 0u);
  EXPECT_GT(report.injector.delayed, 0u);
  EXPECT_EQ(report.network.datagrams_duplicated, report.injector.duplicated);
}

TEST(ChaosEngine, ChurnDropsOfflineTrafficAndRecovers) {
  const Scenario scenario = load("churn-burst");
  ChaosOptions options;
  options.data_root = test_root("churn");
  const ChaosReport report = run_scenario(scenario, 7, options);
  EXPECT_TRUE(report.passed());
  EXPECT_GT(report.network.dropped_offline, 0u);
  EXPECT_EQ(report.published, 2u);
}

TEST(ChaosEngine, KillRestartTracksLifecycles) {
  const Scenario scenario = load("kill-restart-durable");
  ChaosOptions options;
  options.data_root = test_root("killrestart");
  const ChaosReport report = run_scenario(scenario, 7, options);
  EXPECT_TRUE(report.passed());
  ASSERT_EQ(report.peers.size(), scenario.population);
  EXPECT_EQ(report.peers[1].restarts, 1u);
  EXPECT_EQ(report.peers[2].restarts, 1u);
  EXPECT_EQ(report.peers[1].wipes, 0u);
  for (const PeerSummary& peer : report.peers) {
    EXPECT_TRUE(peer.alive);
    EXPECT_TRUE(peer.online);
  }
  // Everyone converged: every live peer ends on the same content digest.
  for (const PeerSummary& peer : report.peers) {
    EXPECT_EQ(peer.state.to_hex(), report.peers[0].state.to_hex());
  }
}

TEST(ChaosEngine, WipedPeerRefillsFromPeersInsteadOfDisk) {
  const Scenario scenario = load("kill-restart-wiped");
  ChaosOptions options;
  options.data_root = test_root("wiped");
  const ChaosReport report = run_scenario(scenario, 7, options);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.peers[1].wipes, 1u);
  EXPECT_EQ(report.peers[1].state.to_hex(), report.peers[0].state.to_hex());
}

TEST(ChaosEngine, PublishOnDeadPeerIsABenignSkip) {
  std::string error;
  const auto scenario = parse_scenario(
      "population 4\n"
      "phase 1\n"
      "  offline 0\n"
      "  publish 0 ghost\n"
      "  publish 1 real\n"
      "phase 12\n"
      "  heal\n"
      "  online 0\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  ChaosOptions options;
  options.data_root = test_root("deadpublish");
  const ChaosReport report = run_scenario(*scenario, 3, options);
  // The offline publish must not count, must not create a tracked update,
  // and must not fail the run.
  EXPECT_TRUE(report.passed())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.published, 1u);
}

TEST(ChaosEngine, MutationIsPartOfTheReplayIdentity) {
  const Scenario scenario = load("canary-pull-recovery");
  ChaosOptions clean_options;
  clean_options.data_root = test_root("mut-clean");
  ChaosOptions mutated_options;
  mutated_options.data_root = test_root("mut-broken");
  mutated_options.mutation = Mutation::kDropPullResponses;
  const ChaosReport clean = run_scenario(scenario, 3, clean_options);
  const ChaosReport mutated = run_scenario(scenario, 3, mutated_options);
  EXPECT_TRUE(clean.passed());
  EXPECT_FALSE(mutated.passed());
  EXPECT_NE(clean.trace_digest.to_hex(), mutated.trace_digest.to_hex());
  EXPECT_GT(mutated.injector.mutation_drops, 0u);
  EXPECT_EQ(clean.injector.mutation_drops, 0u);
}

}  // namespace
}  // namespace updp2p::chaos
