// Canary + schedule shrinking: the seeded mutation MUST fail the property
// checker, and the shrinker must reduce the failing schedule to a tiny,
// runnable repro.
#include "chaos/shrink.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "chaos/scenarios.hpp"

namespace updp2p::chaos {
namespace {

constexpr std::uint64_t kCanarySeed = 3;

std::string test_root(const std::string& leaf) {
  return ::testing::TempDir() + "updp2p-chaos-shrink-" + leaf;
}

Scenario canary() {
  auto scenario = find_scenario("canary-pull-recovery");
  EXPECT_TRUE(scenario.has_value());
  return *scenario;
}

TEST(ChaosCanary, MutationDefeatsTheChecker) {
  ChaosOptions options;
  options.data_root = test_root("canary");
  options.mutation = Mutation::kDropPullResponses;
  const ChaosReport report = run_scenario(canary(), kCanarySeed, options);
  ASSERT_FALSE(report.passed())
      << "the drop-pull-responses canary must fail — if it passes, the "
         "property checker has lost its teeth";
  bool mentions_delivery = false;
  for (const std::string& violation : report.violations) {
    mentions_delivery = mentions_delivery ||
                        violation.find("eventual delivery") !=
                            std::string::npos;
  }
  EXPECT_TRUE(mentions_delivery);
}

TEST(ChaosShrink, PassingScenarioDoesNotReproduce) {
  ChaosOptions options;
  options.data_root = test_root("noop");
  const ShrinkResult result =
      shrink_scenario(canary(), kCanarySeed, options);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.runs, 1u);
  EXPECT_EQ(result.minimized, canary());
}

TEST(ChaosShrink, MinimizesCanaryToTinyRepro) {
  const Scenario scenario = canary();
  ChaosOptions options;
  options.data_root = test_root("minimize");
  options.mutation = Mutation::kDropPullResponses;
  const ShrinkResult result =
      shrink_scenario(scenario, kCanarySeed, options);

  ASSERT_TRUE(result.reproduced);
  EXPECT_LE(result.minimized.phases.size(), 3u);
  EXPECT_LT(result.minimized.phases.size(), scenario.phases.size());
  EXPECT_LE(result.runs, 200u);
  EXPECT_FALSE(result.violations.empty());

  // The minimized schedule still fails under the mutation...
  ChaosOptions verify_options;
  verify_options.data_root = test_root("verify-fail");
  verify_options.mutation = Mutation::kDropPullResponses;
  EXPECT_FALSE(
      run_scenario(result.minimized, kCanarySeed, verify_options).passed());

  // ...and passes without it, so it reproduces the BUG, not a schedule
  // that is merely too short to converge.
  ChaosOptions clean_options;
  clean_options.data_root = test_root("verify-clean");
  EXPECT_TRUE(
      run_scenario(result.minimized, kCanarySeed, clean_options).passed());

  // The minimized scenario serializes to a script the parser accepts
  // verbatim — that file is what the repro command replays.
  std::string error;
  const auto reparsed = parse_scenario(to_text(result.minimized), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, result.minimized);
}

TEST(ChaosShrink, ReproCommandNamesTheTriple) {
  const std::string command =
      repro_command("minimized.chaos", 42, Mutation::kDropPullResponses);
  EXPECT_EQ(command,
            "updp2p-chaos --scenario minimized.chaos --seed 42 "
            "--mutate drop-pull-responses");
  EXPECT_EQ(repro_command("s.chaos", 7, Mutation::kNone),
            "updp2p-chaos --scenario s.chaos --seed 7");
}

// End-to-end through the real binary: the command the shrinker prints is
// the command CI can run; a canary invocation must exit nonzero and name
// the violated property.
TEST(ChaosCanary, BinaryExitsNonzeroUnderMutation) {
  const std::string out_path = test_root("binary-out.txt");
  const std::string command =
      std::string(UPDP2P_CHAOS_BIN) +
      " --scenario canary-pull-recovery --seed " +
      std::to_string(kCanarySeed) +
      " --mutate drop-pull-responses --data-root " +
      test_root("binary-data") + " > " + out_path + " 2>&1";
  const int status = std::system(command.c_str());
  ASSERT_NE(status, -1);
  EXPECT_NE(status, 0) << "canary run must fail the process";

  std::ifstream in(out_path);
  const std::string output((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(output.find("VIOLATION"), std::string::npos) << output;
  EXPECT_NE(output.find("FAIL"), std::string::npos) << output;

  // The same invocation without the mutation passes.
  const std::string clean_command =
      std::string(UPDP2P_CHAOS_BIN) +
      " --scenario canary-pull-recovery --seed " +
      std::to_string(kCanarySeed) + " --data-root " +
      test_root("binary-clean") + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(clean_command.c_str()), 0);
}

}  // namespace
}  // namespace updp2p::chaos
