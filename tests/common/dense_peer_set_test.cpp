#include "common/dense_peer_set.hpp"

#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace updp2p::common {
namespace {

TEST(DensePeerSet, StartsEmpty) {
  DensePeerSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(PeerId(0)));
  EXPECT_FALSE(set.contains(PeerId(12'345)));
}

TEST(DensePeerSet, InsertReportsNovelty) {
  DensePeerSet set;
  EXPECT_TRUE(set.insert(PeerId(7)));
  EXPECT_FALSE(set.insert(PeerId(7)));
  EXPECT_TRUE(set.insert(PeerId(3)));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(PeerId(7)));
  EXPECT_TRUE(set.contains(PeerId(3)));
  EXPECT_FALSE(set.contains(PeerId(5)));
}

TEST(DensePeerSet, ClearIsReusableWithoutShrinking) {
  DensePeerSet set;
  set.insert(PeerId(100));
  const std::size_t capacity = set.capacity();
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(PeerId(100)));
  EXPECT_EQ(set.capacity(), capacity);  // O(1) clear keeps the stamp array
  EXPECT_TRUE(set.insert(PeerId(100)));
}

TEST(DensePeerSet, ReserveIdsAvoidsLaterGrowth) {
  DensePeerSet set;
  set.reserve_ids(1'000);
  const std::size_t capacity = set.capacity();
  ASSERT_GE(capacity, 1'000u);
  for (std::uint32_t id = 0; id < 1'000; ++id) set.insert(PeerId(id));
  EXPECT_EQ(set.capacity(), capacity);
  EXPECT_EQ(set.size(), 1'000u);
}

TEST(DensePeerSet, RejectsInvalidId) {
  DensePeerSet set;
  EXPECT_DEATH((void)set.insert(PeerId::invalid()), "valid");
}

// Epoch stamps wrap after 2^32 - 1 clears; exercising the wrap handling
// directly would take hours, so instead hammer many clear cycles and check
// no stale stamp ever leaks through an epoch boundary.
TEST(DensePeerSet, ManyClearCyclesNeverLeakStaleEntries) {
  DensePeerSet set;
  for (std::uint32_t cycle = 0; cycle < 10'000; ++cycle) {
    const PeerId peer(cycle % 97);
    EXPECT_TRUE(set.insert(peer));
    EXPECT_EQ(set.size(), 1u);
    set.clear();
    EXPECT_FALSE(set.contains(peer));
  }
}

// Property test: under a randomized stream of inserts, membership queries
// and epoch resets, DensePeerSet agrees with std::unordered_set exactly.
TEST(DensePeerSet, AgreesWithUnorderedSetUnderRandomOperations) {
  Rng rng(0xD15EA5E);
  DensePeerSet dense;
  std::unordered_set<std::uint32_t> reference;

  constexpr std::uint32_t kIdSpace = 600;  // dense ids with frequent reuse
  for (int step = 0; step < 50'000; ++step) {
    const std::uint32_t op = rng.uniform_below(100);
    const PeerId peer(rng.uniform_below(kIdSpace));
    if (op < 60) {
      const bool novel = dense.insert(peer);
      EXPECT_EQ(novel, reference.insert(peer.value()).second)
          << "insert disagreement at step " << step << " for id "
          << peer.value();
    } else if (op < 95) {
      EXPECT_EQ(dense.contains(peer),
                reference.contains(peer.value()))
          << "contains disagreement at step " << step << " for id "
          << peer.value();
    } else {
      dense.clear();  // O(1) epoch reset vs the reference's real clear
      reference.clear();
    }
    ASSERT_EQ(dense.size(), reference.size()) << "size drift at " << step;
    ASSERT_EQ(dense.empty(), reference.empty());
  }

  // Full sweep at the end: every id in the space agrees.
  for (std::uint32_t id = 0; id < kIdSpace; ++id) {
    EXPECT_EQ(dense.contains(PeerId(id)), reference.contains(id));
  }
}

}  // namespace
}  // namespace updp2p::common
