#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace updp2p::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStats, MatchesExactComputation) {
  RunningStats stats;
  const double values[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const double v : values) {
    stats.add(v);
    sum += v;
  }
  const double mean = sum / 5.0;
  double ss = 0.0;
  for (const double v : values) ss += (v - mean) * (v - mean);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), ss / 4.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(ss / 4.0), 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
  EXPECT_DOUBLE_EQ(stats.sum(), sum);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(RunningStats, Reset) {
  RunningStats stats;
  stats.add(9.0);
  stats.reset();
  EXPECT_TRUE(stats.empty());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Percentile, ExactValues) {
  std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 5.0);
}

TEST(Percentile, Empty) { EXPECT_EQ(percentile({}, 0.5), 0.0); }

TEST(Series, PushAndAccess) {
  Series s;
  s.label = "test";
  s.push(0.1, 1.0);
  s.push(0.5, 2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.final_x(), 0.5);
  EXPECT_DOUBLE_EQ(s.final_y(), 2.0);
}

}  // namespace
}  // namespace updp2p::common
