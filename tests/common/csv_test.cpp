#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace updp2p::common {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter(out).row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, SeriesRows) {
  Series series;
  series.label = "curve";
  series.push(0.5, 1.0);
  series.push(1.0, 2.0);
  std::ostringstream out;
  CsvWriter(out).series(series, 1);
  EXPECT_EQ(out.str(), "curve,0.5,1.0\ncurve,1.0,2.0\n");
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(write_csv_file(dir, "updp2p_csv_test",
                             {{"h1", "h2"}, {"1", "two,2"}}));
  std::ifstream in(dir + "/updp2p_csv_test.csv");
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "h1,h2\n1,\"two,2\"\n");
  std::remove((dir + "/updp2p_csv_test.csv").c_str());
}

TEST(Csv, WriteFileFailsGracefully) {
  // A regular file cannot serve as the target directory.
  const std::string blocker = ::testing::TempDir() + "/updp2p_blocker";
  std::ofstream(blocker) << "occupied";
  EXPECT_FALSE(write_csv_file(blocker, "x", {{"a"}}));
  std::remove(blocker.c_str());
}

TEST(Csv, WriteFileCreatesMissingDirectories) {
  const std::string dir = ::testing::TempDir() + "/updp2p_csv_nested/deeper";
  ASSERT_TRUE(write_csv_file(dir, "t", {{"a"}}));
  std::ifstream in(dir + "/t.csv");
  EXPECT_TRUE(in.good());
  std::remove((dir + "/t.csv").c_str());
}

}  // namespace
}  // namespace updp2p::common
