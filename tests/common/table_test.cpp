#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace updp2p::common {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(FormatTrajectory, PairsUp) {
  const std::string text = format_trajectory({0.1, 0.9}, {1.0, 2.0}, 1);
  EXPECT_EQ(text, "0.1->1.0  0.9->2.0");
}

TEST(FormatTrajectory, Empty) {
  EXPECT_EQ(format_trajectory({}, {}, 2), "");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table("demo");
  table.header({"name", "value"});
  table.row().cell("alpha").cell(std::size_t{7});
  table.row().cell("b").cell(1.25, 2);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
  // Each row terminates with newline; 1 title + 1 header + 1 rule + 2 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(TextTable, RowCount) {
  TextTable table("demo");
  EXPECT_EQ(table.row_count(), 0u);
  table.row().cell("x");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable table("ragged");
  table.header({"a", "b"});
  table.row().cell("only-one");
  std::ostringstream out;
  table.print(out);  // must not crash or misalign
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace updp2p::common
