// ChunkedPeerSet: the compressed flooding-list representation. The tests
// lean on a std::set reference model — every operation must agree with
// plain set algebra — plus targeted checks of the canonical-form invariant
// (array <-> bitmap promotion at kArrayChunkMax) that equality and the
// wire encoding depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/chunked_peer_set.hpp"
#include "common/rng.hpp"

namespace updp2p::common {
namespace {

std::vector<PeerId> contents(const ChunkedPeerSet& set) {
  std::vector<PeerId> out;
  set.for_each([&out](PeerId peer) { out.push_back(peer); });
  return out;
}

void expect_matches(const ChunkedPeerSet& set,
                    const std::set<std::uint32_t>& reference) {
  ASSERT_EQ(set.size(), reference.size());
  std::vector<std::uint32_t> seen;
  set.for_each([&seen](PeerId peer) { seen.push_back(peer.value()); });
  // Ascending iteration is part of the contract.
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  std::vector<std::uint32_t> expected(reference.begin(), reference.end());
  EXPECT_EQ(seen, expected);
  for (const std::uint32_t id : expected) {
    EXPECT_TRUE(set.contains(PeerId(id))) << id;
  }
}

TEST(ChunkedPeerSet, BasicInsertContains) {
  ChunkedPeerSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(PeerId(5)));
  EXPECT_FALSE(set.insert(PeerId(5)));
  EXPECT_TRUE(set.insert(PeerId(70'000)));  // second chunk
  EXPECT_TRUE(set.insert(PeerId(0)));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(PeerId(5)));
  EXPECT_TRUE(set.contains(PeerId(70'000)));
  EXPECT_FALSE(set.contains(PeerId(6)));
  EXPECT_FALSE(set.contains(PeerId::invalid()));
  EXPECT_EQ(set.max_id(), 70'000u);
  const auto ids = contents(set);
  EXPECT_EQ(ids, (std::vector<PeerId>{PeerId(0), PeerId(5), PeerId(70'000)}));
}

TEST(ChunkedPeerSet, PromotesToBitmapAndBack) {
  ChunkedPeerSet set;
  // Fill one chunk past the array limit: representation must flip to a
  // bitmap exactly when cardinality exceeds kArrayChunkMax.
  for (std::uint32_t i = 0; i <= ChunkedPeerSet::kArrayChunkMax; ++i) {
    set.insert(PeerId(i * 2));  // spread out, still one chunk? (ids < 2^16)
  }
  // 2*(4096) = 8192 < 65536: single chunk.
  ASSERT_EQ(set.chunks().size(), 1u);
  EXPECT_TRUE(set.chunks().front().is_bitmap());
  EXPECT_EQ(set.size(), ChunkedPeerSet::kArrayChunkMax + 1u);
  for (std::uint32_t i = 0; i <= ChunkedPeerSet::kArrayChunkMax; ++i) {
    EXPECT_TRUE(set.contains(PeerId(i * 2)));
    EXPECT_FALSE(set.contains(PeerId(i * 2 + 1)));
  }
  // Dropping below the boundary must demote back to an array (canonical
  // form is a function of contents alone).
  set.keep_lowest(ChunkedPeerSet::kArrayChunkMax);
  ASSERT_EQ(set.chunks().size(), 1u);
  EXPECT_FALSE(set.chunks().front().is_bitmap());
  EXPECT_EQ(set.size(), std::size_t{ChunkedPeerSet::kArrayChunkMax});
}

TEST(ChunkedPeerSet, EqualityIsContentBased) {
  ChunkedPeerSet a;
  ChunkedPeerSet b;
  // Same contents, different insertion orders and histories.
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 6000; ++i) ids.push_back(i * 3);
  for (const std::uint32_t id : ids) a.insert(PeerId(id));
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) b.insert(PeerId(*it));
  EXPECT_TRUE(a == b);
  b.insert(PeerId(1));
  EXPECT_FALSE(a == b);
}

TEST(ChunkedPeerSet, AbsorbReportsExactlyTheDifference) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    ChunkedPeerSet mine;
    ChunkedPeerSet theirs;
    std::set<std::uint32_t> ref_mine;
    std::set<std::uint32_t> ref_theirs;
    const auto n = 1 + rng.uniform_below(6000);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.uniform_below(200'000));
      const auto b = static_cast<std::uint32_t>(rng.uniform_below(200'000));
      mine.insert(PeerId(a));
      ref_mine.insert(a);
      theirs.insert(PeerId(b));
      ref_theirs.insert(b);
    }
    std::vector<std::uint32_t> reported;
    mine.absorb(theirs, [&reported](PeerId peer) {
      reported.push_back(peer.value());
    });
    // Reported = theirs \ mine, ascending.
    std::vector<std::uint32_t> expected;
    for (const std::uint32_t id : ref_theirs) {
      if (!ref_mine.contains(id)) expected.push_back(id);
    }
    EXPECT_EQ(reported, expected);
    ref_mine.insert(ref_theirs.begin(), ref_theirs.end());
    expect_matches(mine, ref_mine);
  }
}

TEST(ChunkedPeerSet, SubtractMatchesReference) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    ChunkedPeerSet mine;
    ChunkedPeerSet theirs;
    std::set<std::uint32_t> ref_mine;
    std::set<std::uint32_t> ref_theirs;
    const auto n = 1 + rng.uniform_below(6000);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.uniform_below(150'000));
      mine.insert(PeerId(a));
      ref_mine.insert(a);
      // Half-overlapping universe exercises both hit and miss paths.
      const auto b = static_cast<std::uint32_t>(rng.uniform_below(150'000));
      if (rng.bernoulli(0.5)) {
        theirs.insert(PeerId(a));
        ref_theirs.insert(a);
      }
      theirs.insert(PeerId(b));
      ref_theirs.insert(b);
    }
    mine.subtract(theirs);
    for (const std::uint32_t id : ref_theirs) ref_mine.erase(id);
    expect_matches(mine, ref_mine);
  }
}

TEST(ChunkedPeerSet, SubtractGallopingSmallVsLargeArrays) {
  // Small array chunk minus large array chunk takes the galloping path.
  ChunkedPeerSet small;
  ChunkedPeerSet large;
  std::set<std::uint32_t> ref;
  for (std::uint32_t i = 0; i < 4000; ++i) large.insert(PeerId(i));
  for (const std::uint32_t id : {10u, 4'001u, 15u, 50'000u}) {
    small.insert(PeerId(id));
    ref.insert(id);
  }
  small.subtract(large);
  ref.erase(10u);
  ref.erase(15u);
  expect_matches(small, ref);
}

TEST(ChunkedPeerSet, KeepLowestAndHighest) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<std::uint32_t> ref;
    ChunkedPeerSet set;
    const auto n = 1 + rng.uniform_below(9000);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::uint32_t>(rng.uniform_below(140'000));
      set.insert(PeerId(id));
      ref.insert(id);
    }
    ChunkedPeerSet low = set;
    ChunkedPeerSet high = set;
    const std::size_t cap = 1 + rng.uniform_below(ref.size());
    low.keep_lowest(cap);
    high.keep_highest(cap);

    std::vector<std::uint32_t> sorted(ref.begin(), ref.end());
    std::set<std::uint32_t> expect_low(sorted.begin(),
                                       sorted.begin() +
                                           static_cast<std::ptrdiff_t>(cap));
    std::set<std::uint32_t> expect_high(
        sorted.end() - static_cast<std::ptrdiff_t>(cap), sorted.end());
    expect_matches(low, expect_low);
    expect_matches(high, expect_high);
  }
}

TEST(ChunkedPeerSet, KeepRandomSamplesUniformlyWithoutReplacement) {
  ChunkedPeerSet base;
  for (std::uint32_t i = 0; i < 10'000; ++i) base.insert(PeerId(i * 7));
  Rng rng(123);
  std::vector<std::uint64_t> hits(10'000, 0);
  for (int trial = 0; trial < 200; ++trial) {
    ChunkedPeerSet set = base;
    set.keep_random(rng, 500);
    ASSERT_EQ(set.size(), 500u);
    std::uint32_t prev = 0;
    bool first = true;
    set.for_each([&](PeerId peer) {
      EXPECT_EQ(peer.value() % 7, 0u);
      if (!first) {
        EXPECT_GT(peer.value(), prev);  // distinct + ascending
      }
      prev = peer.value();
      first = false;
      ++hits[peer.value() / 7];
    });
  }
  // Uniformity smoke check: every element expected ~10 times over 200
  // trials of 500/10k; none should be starved or wildly oversampled.
  const auto [min_it, max_it] = std::minmax_element(hits.begin(), hits.end());
  EXPECT_GT(*max_it, 0u);
  EXPECT_LT(*max_it, 40u);
}

TEST(ChunkedPeerSet, KeepRandomCapAtLeastSizeIsIdentity) {
  ChunkedPeerSet set{PeerId(1), PeerId(2), PeerId(3)};
  const ChunkedPeerSet before = set;
  Rng rng(5);
  set.keep_random(rng, 3);
  EXPECT_TRUE(set == before);
  set.keep_random(rng, 10);
  EXPECT_TRUE(set == before);
  set.keep_random(rng, 0);
  EXPECT_TRUE(set.empty());
}

TEST(ChunkedPeerSet, ClearReusesBuffersAndResets) {
  ChunkedPeerSet set;
  for (std::uint32_t i = 0; i < 5000; ++i) set.insert(PeerId(i));
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.chunks().size(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i) set.insert(PeerId(i + 65'536));
  std::set<std::uint32_t> ref;
  for (std::uint32_t i = 0; i < 100; ++i) ref.insert(i + 65'536);
  expect_matches(set, ref);
}

TEST(ChunkedPeerSet, WireEncodedBytesTracksForm) {
  ChunkedPeerSet sparse;
  sparse.insert(PeerId(100));
  sparse.insert(PeerId(101));
  sparse.insert(PeerId(400));
  // 1 (chunk count) + 1 (key) + 1 (form) + 1 (cardinality) +
  // varint(100)=1 + delta-1 varints: (101-100-1)=0 -> 1 byte,
  // (400-101-1)=298 -> 2 bytes.
  EXPECT_EQ(sparse.wire_encoded_bytes(), 8u);

  ChunkedPeerSet dense;
  for (std::uint32_t i = 0; i <= ChunkedPeerSet::kArrayChunkMax; ++i) {
    dense.insert(PeerId(i));
  }
  // Bitmap body is fixed 8 KiB + small header.
  const std::size_t bytes = dense.wire_encoded_bytes();
  EXPECT_GE(bytes, ChunkedPeerSet::kBitmapWords * 8);
  EXPECT_LE(bytes, ChunkedPeerSet::kBitmapWords * 8 + 8);
}

TEST(ChunkedPeerSet, AppendChunkBuildersEnforceCanonicalForm) {
  ChunkedPeerSet set;
  const std::vector<std::uint16_t> lows{1, 5, 9};
  EXPECT_TRUE(set.append_array_chunk(2, lows));
  // Keys must strictly increase.
  EXPECT_FALSE(set.append_array_chunk(2, lows));
  EXPECT_FALSE(set.append_array_chunk(1, lows));
  // Lows must strictly increase.
  const std::vector<std::uint16_t> bad{3, 3};
  EXPECT_FALSE(set.append_array_chunk(7, bad));
  // Empty and oversized arrays are rejected.
  EXPECT_FALSE(set.append_array_chunk(7, std::vector<std::uint16_t>{}));
  std::vector<std::uint16_t> too_many(ChunkedPeerSet::kArrayChunkMax + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] = static_cast<std::uint16_t>(i);
  }
  EXPECT_FALSE(set.append_array_chunk(7, too_many));

  // A bitmap chunk must carry more than kArrayChunkMax ids.
  std::vector<std::uint64_t> sparse_words(ChunkedPeerSet::kBitmapWords, 0);
  sparse_words[0] = 0xFF;
  EXPECT_FALSE(set.append_bitmap_chunk(9, sparse_words));
  std::vector<std::uint64_t> dense_words(ChunkedPeerSet::kBitmapWords, ~0ULL);
  EXPECT_TRUE(set.append_bitmap_chunk(9, dense_words));
  EXPECT_EQ(set.size(), 3u + ChunkedPeerSet::kChunkSpan);
  EXPECT_TRUE(set.contains(PeerId((2u << 16) | 5u)));
  EXPECT_TRUE(set.contains(PeerId(9u << 16)));

  // The builder-made set equals an insert-made set (canonical form).
  ChunkedPeerSet by_insert;
  for (const std::uint16_t low : lows) {
    by_insert.insert(PeerId((2u << 16) | low));
  }
  for (std::uint32_t i = 0; i < ChunkedPeerSet::kChunkSpan; ++i) {
    by_insert.insert(PeerId((9u << 16) | i));
  }
  EXPECT_TRUE(set == by_insert);
}

TEST(ChunkedPeerSet, RandomisedModelCheck) {
  // Mixed-operation fuzz against the reference model.
  Rng rng(991);
  ChunkedPeerSet set;
  std::set<std::uint32_t> ref;
  for (int step = 0; step < 20'000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_below(300'000));
    switch (rng.uniform_below(4)) {
      case 0:
      case 1: {
        EXPECT_EQ(set.insert(PeerId(id)), ref.insert(id).second);
        break;
      }
      case 2:
        EXPECT_EQ(set.contains(PeerId(id)), ref.contains(id));
        break;
      default:
        if (!ref.empty() && rng.bernoulli(0.01)) {
          const std::size_t cap = 1 + rng.uniform_below(ref.size());
          set.keep_lowest(cap);
          std::vector<std::uint32_t> sorted(ref.begin(), ref.end());
          ref = std::set<std::uint32_t>(
              sorted.begin(),
              sorted.begin() + static_cast<std::ptrdiff_t>(cap));
        }
        break;
    }
  }
  expect_matches(set, ref);
}

}  // namespace
}  // namespace updp2p::common
