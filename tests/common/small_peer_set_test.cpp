#include "common/small_peer_set.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"

namespace updp2p::common {
namespace {

TEST(SmallPeerSet, StartsEmpty) {
  SmallPeerSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(PeerId(0)));
  EXPECT_FALSE(set.contains(PeerId(12345)));
}

TEST(SmallPeerSet, InsertReportsNovelty) {
  SmallPeerSet set;
  EXPECT_TRUE(set.insert(PeerId(7)));
  EXPECT_FALSE(set.insert(PeerId(7)));
  EXPECT_TRUE(set.insert(PeerId(8)));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(PeerId(7)));
  EXPECT_TRUE(set.contains(PeerId(8)));
  EXPECT_FALSE(set.contains(PeerId(9)));
}

TEST(SmallPeerSet, GrowsPastInitialCapacity) {
  SmallPeerSet set;
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(set.insert(PeerId(i)));
  }
  EXPECT_EQ(set.size(), 10'000u);
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(set.contains(PeerId(i)));
  }
  EXPECT_FALSE(set.contains(PeerId(10'000)));
  // Load factor stays <= 0.75 through growth.
  EXPECT_GE(set.capacity() * 3, set.size() * 4);
}

TEST(SmallPeerSet, ClearRetainsCapacity) {
  SmallPeerSet set;
  for (std::uint32_t i = 0; i < 100; ++i) set.insert(PeerId(i));
  const std::size_t capacity = set.capacity();
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.capacity(), capacity);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(set.contains(PeerId(i)));
  }
  EXPECT_TRUE(set.insert(PeerId(5)));
}

TEST(SmallPeerSet, ReserveAvoidsRehash) {
  SmallPeerSet set;
  set.reserve(1'000);
  const std::size_t capacity = set.capacity();
  for (std::uint32_t i = 0; i < 1'000; ++i) set.insert(PeerId(i));
  EXPECT_EQ(set.capacity(), capacity);
}

TEST(SmallPeerSet, SparseIdsMatchReferenceSet) {
  // Property: agree with std::unordered_set over random sparse ids.
  SmallPeerSet set;
  std::unordered_set<std::uint32_t> reference;
  Rng rng(42);
  for (int i = 0; i < 5'000; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_below(1u << 30));
    EXPECT_EQ(set.insert(PeerId(id)), reference.insert(id).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (int i = 0; i < 5'000; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_below(1u << 30));
    EXPECT_EQ(set.contains(PeerId(id)), reference.contains(id));
  }
}

}  // namespace
}  // namespace updp2p::common
