#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

namespace updp2p::common {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GE(differing, 30);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // Child and parent should not mirror each other.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitForIsDeterministicPerId) {
  const Rng parent(7);
  Rng a = parent.split_for(5);
  Rng b = parent.split_for(5);
  EXPECT_EQ(a(), b());
  Rng c = parent.split_for(6);
  Rng d = parent.split_for(5);
  EXPECT_NE(c(), d());
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, UniformBelowRange) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
  // bound 1 must always give 0
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, GeometricEdge) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, GeometricMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.geometric(0.25));
  }
  // mean of failures-before-success geometric = (1-p)/p = 3.
  EXPECT_NEAR(sum / kSamples, 3.0, 0.1);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(4.0));
  }
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(sum / kSamples, 200.0, 2.0);
}

TEST(Rng, PoissonZero) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::unordered_set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(10, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementOverask) {
  Rng rng(13);
  EXPECT_EQ(rng.sample_without_replacement(5, 50).size(), 5u);
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(13);
  EXPECT_TRUE(rng.sample_without_replacement(0, 5).empty());
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(14);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    for (const auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  }
  // Each element expected in 3/10 of the trials.
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = values;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, PickIndexInRange) {
  Rng rng(16);
  for (int i = 0; i < 1'000; ++i) EXPECT_LT(rng.pick_index(7), 7u);
}

// Property sweep: uniform_below is unbiased across bounds.
class RngUniformSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformSweep, MeanMatchesHalfBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 31 + 1);
  double sum = 0.0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.uniform_below(bound));
  }
  const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
  EXPECT_NEAR(sum / kSamples, expected, static_cast<double>(bound) * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformSweep,
                         ::testing::Values(2, 3, 10, 100, 1'000, 1'000'000));

// ---------------------------------------------------------------------------
// Counter-based streams (PhiloxStream / StreamRng).

TEST(PhiloxStream, BlockIsAPureFunction) {
  const PhiloxStream::Block ctr{1, 2, 3, 4};
  const auto a = PhiloxStream::block(0xdead, 0xbeef, ctr);
  const auto b = PhiloxStream::block(0xdead, 0xbeef, ctr);
  EXPECT_EQ(a, b);
  // Any counter or key change flips the whole block.
  EXPECT_NE(a, PhiloxStream::block(0xdead, 0xbeef, {1, 2, 3, 5}));
  EXPECT_NE(a, PhiloxStream::block(0xdeae, 0xbeef, ctr));
  EXPECT_NE(a, PhiloxStream::block(0xdead, 0xbef0, ctr));
}

TEST(PhiloxStream, BlockIsConstexpr) {
  constexpr auto block = PhiloxStream::block(1, 2, {3, 4, 5, 6});
  static_assert(block.size() == 4);
  EXPECT_NE(block[0] | block[1] | block[2] | block[3], 0u);
}

TEST(StreamRng, SameKeySameSequence) {
  StreamRng a(42, 7, 3);
  StreamRng b(42, 7, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(StreamRng, DistinctStreamsAreIndependent) {
  // Every (seed, stream, purpose) coordinate change yields a different
  // sequence — the property sharded simulations key their draws on.
  StreamRng base(42, 7, 3);
  StreamRng other_seed(43, 7, 3);
  StreamRng other_stream(42, 8, 3);
  StreamRng other_purpose(42, 7, 4);
  bool differs_seed = false, differs_stream = false, differs_purpose = false;
  for (int i = 0; i < 16; ++i) {
    const auto draw = base();
    differs_seed |= draw != other_seed();
    differs_stream |= draw != other_stream();
    differs_purpose |= draw != other_purpose();
  }
  EXPECT_TRUE(differs_seed);
  EXPECT_TRUE(differs_stream);
  EXPECT_TRUE(differs_purpose);
}

TEST(StreamRng, ConstructionIsPositionFree) {
  // Counter-based: a freshly keyed stream always starts at draw 0, no
  // matter when or where it is constructed. Re-keying mid-run (as the
  // simulator does per (recipient, round)) is therefore reproducible.
  StreamRng early(99, 5, 1);
  const auto first = early();
  const auto second = early();
  StreamRng late(99, 5, 1);
  EXPECT_EQ(late(), first);
  EXPECT_EQ(late(), second);
}

TEST(StreamRng, DeriveSeedIsPureAndNonAdvancing) {
  StreamRng rng(7, 1, 0);
  const auto seed_a = rng.derive_seed(123);
  const auto seed_b = rng.derive_seed(123);
  EXPECT_EQ(seed_a, seed_b);
  EXPECT_NE(seed_a, rng.derive_seed(124));
  // Deriving did not consume draws.
  StreamRng untouched(7, 1, 0);
  EXPECT_EQ(rng(), untouched());
}

TEST(StreamRng, SplitForIsDeterministic) {
  const StreamRng parent(11, 2, 0);
  StreamRng child_a = parent.split_for(5);
  StreamRng child_b = parent.split_for(5);
  StreamRng child_c = parent.split_for(6);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    const auto draw = child_a();
    EXPECT_EQ(draw, child_b());
    differs |= draw != child_c();
  }
  EXPECT_TRUE(differs);
}

TEST(StreamRng, Uniform01InRangeWithPlausibleMean) {
  StreamRng rng(1234, 0, 0);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(StreamRng, SharesDistributionAlgorithmsWithRng) {
  // The CRTP mixin gives StreamRng the full distribution surface; sanity
  // check a few against their contracts.
  StreamRng rng(555, 3, 1);
  for (int i = 0; i < 1'000; ++i) EXPECT_LT(rng.uniform_below(17), 17u);
  const auto sample = rng.sample_without_replacement(50, 10);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_EQ(std::unordered_set<std::uint32_t>(sample.begin(), sample.end())
                .size(),
            10u);
  std::vector<int> values{1, 2, 3, 4, 5};
  auto copy = values;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

}  // namespace
}  // namespace updp2p::common
