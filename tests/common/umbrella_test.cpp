// Compilation smoke test: the umbrella header pulls in a coherent API.
#include "updp2p.hpp"

#include <gtest/gtest.h>

namespace updp2p {
namespace {

TEST(Umbrella, EverythingIsReachable) {
  common::Rng rng(1);
  gossip::GossipConfig config;
  config.estimated_total_replicas = 10;
  config.fanout_fraction = 0.3;
  gossip::ReplicaNode node(common::PeerId(0), config,
                           common::StreamRng(rng(), 0));
  const std::vector<common::PeerId> view{common::PeerId(1), common::PeerId(2)};
  node.bootstrap(view);
  EXPECT_EQ(node.view().size(), 2u);

  analysis::PushModelParams params;
  EXPECT_GT(analysis::evaluate_push(params).total_messages(), 0.0);
}

}  // namespace
}  // namespace updp2p
