#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace updp2p::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::set_sink(&captured_);
    Logger::set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::set_sink(nullptr);
    Logger::set_level(LogLevel::kWarn);
  }
  std::ostringstream captured_;
};

TEST_F(LoggingTest, WritesLevelComponentAndMessage) {
  UPDP2P_LOG_INFO("push") << "forwarded " << 3 << " messages";
  const std::string text = captured_.str();
  EXPECT_NE(text.find("INFO"), std::string::npos);
  EXPECT_NE(text.find("[push]"), std::string::npos);
  EXPECT_NE(text.find("forwarded 3 messages"), std::string::npos);
}

TEST_F(LoggingTest, FiltersBelowActiveLevel) {
  Logger::set_level(LogLevel::kError);
  UPDP2P_LOG_INFO("x") << "hidden";
  UPDP2P_LOG_WARN("x") << "also hidden";
  EXPECT_TRUE(captured_.str().empty());
  UPDP2P_LOG_ERROR("x") << "visible";
  EXPECT_NE(captured_.str().find("visible"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  UPDP2P_LOG_ERROR("x") << "nope";
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LoggingTest, EnabledReflectsLevel) {
  Logger::set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
}

}  // namespace
}  // namespace updp2p::common
