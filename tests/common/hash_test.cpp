#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>

namespace updp2p::common {
namespace {

TEST(Fnv1a64, KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, Deterministic) {
  EXPECT_EQ(fnv1a64("updp2p"), fnv1a64("updp2p"));
  EXPECT_NE(fnv1a64("updp2p"), fnv1a64("updp2q"));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(HashCombine, SeedSensitive) {
  EXPECT_NE(hash_combine(1, 42), hash_combine(2, 42));
}

TEST(Digest128, DeterministicAndInputSensitive) {
  const std::array<std::uint64_t, 3> a{1, 2, 3};
  const std::array<std::uint64_t, 3> b{1, 2, 4};
  EXPECT_EQ(digest128(a), digest128(a));
  EXPECT_NE(digest128(a), digest128(b));
}

TEST(Digest128, OrderSensitive) {
  const std::array<std::uint64_t, 2> ab{1, 2};
  const std::array<std::uint64_t, 2> ba{2, 1};
  EXPECT_NE(digest128(ab), digest128(ba));
}

TEST(Digest128, EmptyInputIsStable) {
  EXPECT_EQ(digest128({}), digest128({}));
}

TEST(Digest128, HexFormat) {
  const auto digest = digest128(std::array<std::uint64_t, 1>{7});
  const std::string hex = digest.to_hex();
  EXPECT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(Digest128, NoCollisionsOverSequentialInputs) {
  std::unordered_set<Digest128> seen;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    const std::array<std::uint64_t, 2> words{i, i * 31};
    EXPECT_TRUE(seen.insert(digest128(words)).second) << "collision at " << i;
  }
}

TEST(Digest128, ComparisonIsTotal) {
  const auto a = digest128(std::array<std::uint64_t, 1>{1});
  const auto b = digest128(std::array<std::uint64_t, 1>{2});
  EXPECT_TRUE((a < b) || (b < a) || (a == b));
  EXPECT_EQ(a < b, !(b < a || a == b));
}

}  // namespace
}  // namespace updp2p::common
