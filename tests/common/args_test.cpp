#include "common/args.hpp"

#include <gtest/gtest.h>

namespace updp2p::common {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"binary"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const auto args = parse({});
  EXPECT_FALSE(args.has("anything"));
  EXPECT_TRUE(args.positional().empty());
  EXPECT_EQ(args.get_int("n", 7), 7);
}

TEST(Args, EqualsSyntax) {
  const auto args = parse({"--population=500", "--rate=0.25"});
  EXPECT_EQ(args.get_int("population", 0), 500);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.25);
}

TEST(Args, SpaceSyntax) {
  const auto args = parse({"--seed", "42", "--label", "hello"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
  EXPECT_EQ(args.get_string("label", ""), "hello");
}

TEST(Args, BareBooleanFlag) {
  const auto args = parse({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(Args, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=ON"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  // Unparseable keeps the fallback.
  EXPECT_TRUE(parse({"--x=maybe"}).get_bool("x", true));
}

TEST(Args, Positional) {
  const auto args = parse({"input.txt", "--n", "3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Args, MalformedNumbersFallBack) {
  const auto args = parse({"--n=abc", "--d=1.2.3"});
  EXPECT_EQ(args.get_int("n", -1), -1);
  EXPECT_DOUBLE_EQ(args.get_double("d", -2.5), -2.5);
}

TEST(Args, NegativeNumbers) {
  const auto args = parse({"--n=-17", "--d=-0.5"});
  EXPECT_EQ(args.get_int("n", 0), -17);
  EXPECT_DOUBLE_EQ(args.get_double("d", 0.0), -0.5);
}

TEST(Args, FlagNamesListed) {
  const auto args = parse({"--alpha=1", "--beta"});
  const auto names = args.flag_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(Args, LastOccurrenceWins) {
  const auto args = parse({"--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

}  // namespace
}  // namespace updp2p::common
