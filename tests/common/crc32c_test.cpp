// CRC-32C (Castagnoli) against published vectors, plus the chaining
// property the WAL's one-pass record checksum relies on.
#include "common/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

namespace updp2p::common {
namespace {

std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(Crc32cTest, CheckValue) {
  // The canonical CRC-32C check value (RFC 3720 appendix, "123456789").
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, Rfc3720AllZeroVector) {
  // RFC 3720 B.4: 32 bytes of zeros -> 0x8A9136AA.
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, Rfc3720AllOnesVector) {
  // RFC 3720 B.4: 32 bytes of 0xFF -> 0x62A8AB43.
  const std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, Rfc3720IncrementingVector) {
  // RFC 3720 B.4: bytes 0x00..0x1F -> 0x46DD794E.
  std::vector<std::byte> inc(32);
  for (std::size_t i = 0; i < inc.size(); ++i) {
    inc[i] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(crc32c(inc), 0x46DD794Eu);
}

TEST(Crc32cTest, ChainingEqualsConcatenation) {
  // crc(a || b) == crc(b, seed = crc(a)) — the property that lets the WAL
  // checksum seq + body in one pass without materialising the
  // concatenation.
  const auto a = bytes_of("durable ");
  const auto b = bytes_of("replica store");
  auto joined = a;
  joined.insert(joined.end(), b.begin(), b.end());
  EXPECT_EQ(crc32c(joined), crc32c(b, crc32c(a)));
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  auto base = bytes_of("0123456789abcdef0123456789abcdef");
  const std::uint32_t reference = crc32c(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      base[i] ^= static_cast<std::byte>(1u << bit);
      EXPECT_NE(crc32c(base), reference)
          << "flip at byte " << i << " bit " << bit << " went undetected";
      base[i] ^= static_cast<std::byte>(1u << bit);
    }
  }
}

TEST(Crc32cTest, UnalignedOffsetsAgreeWithAlignedScan) {
  // The slice-by-8 kernel has an alignment head + tail; every offset into
  // the same buffer must agree with a straight scan of that suffix.
  std::vector<std::byte> buffer(64);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::byte>(i * 37 + 11);
  }
  for (std::size_t offset = 0; offset < 16; ++offset) {
    const std::span<const std::byte> suffix(buffer.data() + offset,
                                            buffer.size() - offset);
    std::uint32_t byte_at_a_time = 0;
    for (const std::byte b : suffix) {
      byte_at_a_time = crc32c(std::span<const std::byte>(&b, 1),
                              byte_at_a_time);
    }
    EXPECT_EQ(crc32c(suffix), byte_at_a_time) << "offset " << offset;
  }
}

}  // namespace
}  // namespace updp2p::common
