// Codec robustness property tests (ISSUE 3 satellite): a peer must survive
// arbitrary bytes from the network. Three adversaries — pure random noise,
// truncations of valid frames, and single-bit flips of valid frames — and
// one invariant: decode() either returns nullopt or a payload that
// re-encodes without crashing. Never UB, never unbounded allocation.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "common/rng.hpp"
#include "gossip/codec.hpp"

namespace updp2p::gossip {
namespace {

version::VersionedValue make_value(common::Rng& rng) {
  version::VersionedValue value;
  value.key = "key-" + std::to_string(rng.uniform_int(0, 9));
  value.payload = std::string(
      static_cast<std::size_t>(rng.uniform_int(0, 40)), 'x');
  version::VersionIdFactory factory(
      common::PeerId(static_cast<std::uint32_t>(rng.uniform_int(0, 50))),
      common::Rng(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20))));
  value.id = factory.mint(1.0);
  value.history.observe(
      common::PeerId(static_cast<std::uint32_t>(rng.uniform_int(0, 50))),
      static_cast<std::uint64_t>(rng.uniform_int(1, 9)));
  value.written_at = rng.uniform01() * 100.0;
  return value;
}

/// One of each payload alternative, with light randomisation.
std::vector<GossipPayload> sample_payloads(common::Rng& rng) {
  std::vector<GossipPayload> payloads;

  PushMessage push;
  push.value = make_value(rng);
  push.round = static_cast<common::Round>(rng.uniform_int(0, 100));
  for (int i = 0; i < 3; ++i) {
    push.flooding_list.push_back(common::PeerId(
        static_cast<std::uint32_t>(rng.uniform_int(0, 99))));
  }
  payloads.emplace_back(std::move(push));

  PullRequest pull;
  pull.summary.observe(common::PeerId(2), 3);
  pull.summary.observe(common::PeerId(7), 1);
  pull.have.push_back(make_value(rng).id);
  pull.store_digest = common::Digest128{0xABCD, 0x1234};
  payloads.emplace_back(std::move(pull));

  PullResponse response;
  response.summary.observe(common::PeerId(1), 5);
  response.confident = rng.bernoulli(0.5);
  response.missing.push_back(make_value(rng));
  payloads.emplace_back(std::move(response));

  AckMessage ack;
  ack.acked = make_value(rng).id;
  payloads.emplace_back(ack);

  QueryRequest query;
  query.key = "key-q";
  query.nonce = 0x1122334455667788ULL;
  payloads.emplace_back(std::move(query));

  QueryReply reply;
  reply.key = "key-q";
  reply.nonce = 0x1122334455667788ULL;
  reply.versions.push_back(make_value(rng));
  reply.confident = true;
  payloads.emplace_back(std::move(reply));

  return payloads;
}

/// The fuzz invariant: decoding must not crash, and anything accepted must
/// survive a re-encode (i.e. the decoder only produces well-formed values).
void check_bytes(std::span<const std::byte> bytes) {
  const auto decoded = decode(bytes);
  if (decoded.has_value()) {
    const WireBytes reencoded = encode(*decoded);
    EXPECT_FALSE(reencoded.empty());
  }
}

TEST(CodecFuzz, RandomBytesNeverCrash) {
  common::Rng rng(0xC0DEC);
  WireBytes buffer;
  for (int trial = 0; trial < 50'000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 128));
    buffer.clear();
    for (std::size_t i = 0; i < len; ++i) {
      buffer.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
    }
    check_bytes(buffer);
  }
}

TEST(CodecFuzz, RandomBytesWithValidHeaderNeverCrash) {
  // Force the magic/version prefix so the fuzz reaches the per-kind body
  // parsers instead of dying at the frame check.
  common::Rng rng(0xFEED);
  WireBytes buffer;
  for (int trial = 0; trial < 50'000; ++trial) {
    buffer.clear();
    buffer.push_back(std::byte{0xD5});
    buffer.push_back(std::byte{0x2B});
    buffer.push_back(static_cast<std::byte>(kCodecVersion));
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, 96));
    for (std::size_t i = 0; i < len; ++i) {
      buffer.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
    }
    check_bytes(buffer);
  }
}

TEST(CodecFuzz, EveryTruncationIsRejectedCleanly) {
  common::Rng rng(0x7271);
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::span<const std::byte> prefix(wire.data(), len);
      // A strict prefix is never a valid frame (no trailing-garbage
      // ambiguity in this codec), and must never crash.
      EXPECT_FALSE(decode(prefix).has_value()) << "len " << len;
    }
  }
}

TEST(CodecFuzz, SingleBitFlipsNeverCrash) {
  common::Rng rng(0xB175);
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    for (std::size_t byte_idx = 0; byte_idx < wire.size(); ++byte_idx) {
      for (int bit = 0; bit < 8; ++bit) {
        WireBytes mutated = wire;
        mutated[byte_idx] ^= static_cast<std::byte>(1 << bit);
        check_bytes(mutated);
      }
    }
  }
}

TEST(CodecFuzz, RandomSlicesOfConcatenatedFramesNeverCrash) {
  // Datagram truncation/reassembly bugs often show up as mid-stream reads:
  // fuzz windows into a concatenation of several valid frames.
  common::Rng rng(0x51CE);
  WireBytes stream;
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto begin = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stream.size())));
    const auto len = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(stream.size() - begin)));
    check_bytes(std::span<const std::byte>(stream.data() + begin, len));
  }
}

TEST(CodecFuzz, HostileVarintLengthsDoNotAllocate) {
  // A frame claiming a multi-gigabyte string/list must be rejected before
  // any allocation of that size. Build: magic, version, kind=push, then a
  // huge key-length varint.
  WireBytes hostile;
  hostile.push_back(std::byte{0xD5});
  hostile.push_back(std::byte{0x2B});
  hostile.push_back(static_cast<std::byte>(kCodecVersion));
  hostile.push_back(std::byte{0});  // kind 0 (first alternative)
  put_varint(hostile, std::uint64_t{1} << 40);  // 1 TiB key, allegedly
  hostile.push_back(std::byte{'x'});
  EXPECT_FALSE(decode(hostile).has_value());
}

}  // namespace
}  // namespace updp2p::gossip
