// Codec robustness property tests (ISSUE 3 satellite): a peer must survive
// arbitrary bytes from the network. Three adversaries — pure random noise,
// truncations of valid frames, and single-bit flips of valid frames — and
// one invariant: decode() either returns nullopt or a payload that
// re-encodes without crashing. Never UB, never unbounded allocation.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "common/rng.hpp"
#include "gossip/codec.hpp"

namespace updp2p::gossip {
namespace {

version::VersionedValue make_value(common::Rng& rng) {
  version::VersionedValue value;
  value.key = "key-" + std::to_string(rng.uniform_int(0, 9));
  value.payload = std::string(
      static_cast<std::size_t>(rng.uniform_int(0, 40)), 'x');
  version::VersionIdFactory factory(
      common::PeerId(static_cast<std::uint32_t>(rng.uniform_int(0, 50))),
      common::Rng(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20))));
  value.id = factory.mint(1.0);
  value.history.observe(
      common::PeerId(static_cast<std::uint32_t>(rng.uniform_int(0, 50))),
      static_cast<std::uint64_t>(rng.uniform_int(1, 9)));
  value.written_at = rng.uniform01() * 100.0;
  return value;
}

/// One of each payload alternative, with light randomisation.
std::vector<GossipPayload> sample_payloads(common::Rng& rng) {
  std::vector<GossipPayload> payloads;

  PushMessage push;
  push.value = make_value(rng);
  push.round = static_cast<common::Round>(rng.uniform_int(0, 100));
  for (int i = 0; i < 3; ++i) {
    push.flooding_list.insert(common::PeerId(
        static_cast<std::uint32_t>(rng.uniform_int(0, 99))));
  }
  payloads.emplace_back(std::move(push));

  PullRequest pull;
  pull.summary.observe(common::PeerId(2), 3);
  pull.summary.observe(common::PeerId(7), 1);
  pull.have.push_back(make_value(rng).id);
  pull.store_digest = common::Digest128{0xABCD, 0x1234};
  payloads.emplace_back(std::move(pull));

  PullResponse response;
  response.summary.observe(common::PeerId(1), 5);
  response.confident = rng.bernoulli(0.5);
  response.missing.push_back(make_value(rng));
  payloads.emplace_back(std::move(response));

  AckMessage ack;
  ack.acked = make_value(rng).id;
  payloads.emplace_back(ack);

  QueryRequest query;
  query.key = "key-q";
  query.nonce = 0x1122334455667788ULL;
  payloads.emplace_back(std::move(query));

  QueryReply reply;
  reply.key = "key-q";
  reply.nonce = 0x1122334455667788ULL;
  reply.versions.push_back(make_value(rng));
  reply.confident = true;
  payloads.emplace_back(std::move(reply));

  return payloads;
}

/// The fuzz invariants, applied to every adversarial byte string:
///  1. decode() must not crash, and anything accepted must survive a
///     re-encode (the decoder only produces well-formed values) at exactly
///     the size encoded_size() predicts.
///  2. probe_frame() never *diverges* from decode(): whenever the full
///     decode succeeds, the probe must succeed too and report the same
///     kind and identifying fields. (The converse is deliberately free —
///     a probe may accept a frame whose unexamined tail is garbage; that
///     is the documented trust contract.)
///  3. decode_push_into() accepts exactly the frames decode() turns into a
///     PushMessage, yielding an identical value, round and flooding list,
///     and leaves the target set empty on every rejection.
void check_bytes(std::span<const std::byte> bytes) {
  const auto decoded = decode(bytes);
  const auto probe = probe_frame(bytes);
  if (decoded.has_value()) {
    const WireBytes reencoded = encode(*decoded);
    EXPECT_FALSE(reencoded.empty());
    EXPECT_EQ(encoded_size(*decoded), reencoded.size());

    ASSERT_TRUE(probe.has_value());
    if (const auto* push = std::get_if<PushMessage>(&*decoded)) {
      EXPECT_EQ(probe->kind, WireKind::kPush);
      EXPECT_EQ(probe->version, push->value->id);
    } else if (const auto* ack = std::get_if<AckMessage>(&*decoded)) {
      EXPECT_EQ(probe->kind, WireKind::kAck);
      EXPECT_EQ(probe->version, ack->acked);
    } else if (const auto* query = std::get_if<QueryRequest>(&*decoded)) {
      EXPECT_EQ(probe->kind, WireKind::kQueryRequest);
      EXPECT_EQ(probe->nonce, query->nonce);
    } else if (const auto* reply = std::get_if<QueryReply>(&*decoded)) {
      EXPECT_EQ(probe->kind, WireKind::kQueryReply);
      EXPECT_EQ(probe->nonce, reply->nonce);
    }
  }

  common::ChunkedPeerSet list;
  list.insert(common::PeerId(123));  // must be cleared on every path
  const auto streamed = decode_push_into(bytes, list);
  const auto* full_push =
      decoded ? std::get_if<PushMessage>(&*decoded) : nullptr;
  ASSERT_EQ(streamed.has_value(), full_push != nullptr);
  if (streamed) {
    EXPECT_EQ(streamed->value, *full_push->value);
    EXPECT_EQ(streamed->round, full_push->round);
    EXPECT_EQ(list, full_push->flooding_list.set());
  } else {
    EXPECT_TRUE(list.empty());
  }
}

TEST(CodecFuzz, RandomBytesNeverCrash) {
  common::Rng rng(0xC0DEC);
  WireBytes buffer;
  for (int trial = 0; trial < 50'000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 128));
    buffer.clear();
    for (std::size_t i = 0; i < len; ++i) {
      buffer.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
    }
    check_bytes(buffer);
  }
}

TEST(CodecFuzz, RandomBytesWithValidHeaderNeverCrash) {
  // Force the magic/version prefix so the fuzz reaches the per-kind body
  // parsers instead of dying at the frame check.
  common::Rng rng(0xFEED);
  WireBytes buffer;
  for (int trial = 0; trial < 50'000; ++trial) {
    buffer.clear();
    buffer.push_back(std::byte{0xD5});
    buffer.push_back(std::byte{0x2B});
    buffer.push_back(static_cast<std::byte>(kCodecVersion));
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(1, 96));
    for (std::size_t i = 0; i < len; ++i) {
      buffer.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
    }
    check_bytes(buffer);
  }
}

TEST(CodecFuzz, EveryTruncationIsRejectedCleanly) {
  common::Rng rng(0x7271);
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::span<const std::byte> prefix(wire.data(), len);
      // A strict prefix is never a valid frame (no trailing-garbage
      // ambiguity in this codec), and must never crash.
      EXPECT_FALSE(decode(prefix).has_value()) << "len " << len;
    }
  }
}

TEST(CodecFuzz, ProbeOfTruncatedFramesNeverDiverges) {
  // The lazy-decode trust contract, exhaustively: for EVERY truncation of a
  // valid frame, probe_frame must either reject the prefix or report
  // exactly what it reports on the full frame — it may never invent a
  // different kind, version or nonce. (check_bytes already covers the
  // probe-vs-decode side on these prefixes; this pins probe-vs-probe.)
  common::Rng rng(0x9B0B);
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    const auto full = probe_frame(wire);
    ASSERT_TRUE(full.has_value());
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const auto probe =
          probe_frame(std::span<const std::byte>(wire.data(), len));
      if (!probe.has_value()) continue;
      EXPECT_EQ(probe->kind, full->kind) << "len " << len;
      EXPECT_EQ(probe->version, full->version) << "len " << len;
      EXPECT_EQ(probe->nonce, full->nonce) << "len " << len;
    }
  }
}

TEST(CodecFuzz, SingleBitFlipsNeverCrash) {
  common::Rng rng(0xB175);
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    for (std::size_t byte_idx = 0; byte_idx < wire.size(); ++byte_idx) {
      for (int bit = 0; bit < 8; ++bit) {
        WireBytes mutated = wire;
        mutated[byte_idx] ^= static_cast<std::byte>(1 << bit);
        check_bytes(mutated);
      }
    }
  }
}

TEST(CodecFuzz, RandomSlicesOfConcatenatedFramesNeverCrash) {
  // Datagram truncation/reassembly bugs often show up as mid-stream reads:
  // fuzz windows into a concatenation of several valid frames.
  common::Rng rng(0x51CE);
  WireBytes stream;
  for (const GossipPayload& payload : sample_payloads(rng)) {
    const WireBytes wire = encode(payload);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto begin = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stream.size())));
    const auto len = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(stream.size() - begin)));
    check_bytes(std::span<const std::byte>(stream.data() + begin, len));
  }
}

// --- chunked peer-set decoder hostility (codec v2) --------------------------
//
// The flooding list travels as chunked delta-varint/bitmap runs, so the
// decoder has chunk *headers* to lie in: declared cardinalities, chunk keys,
// and form bytes. Each test appends a hand-built hostile peerset to a valid
// push frame prefix so the peerset parser is the only thing under test.

/// A valid push frame with an EMPTY flooding list, minus its final byte.
/// The empty peerset encodes as a single 0x00 chunk-count byte and sits at
/// the very end of a push frame, so appending bytes to this prefix yields a
/// frame whose only questionable content is the peerset.
WireBytes push_prefix_without_peerset() {
  common::Rng rng(0xCAFE);
  PushMessage push;
  push.value = make_value(rng);
  push.round = 7;
  WireBytes wire = encode(GossipPayload{push});
  wire.pop_back();
  return wire;
}

/// Appends one array-form (form 0) chunk: key, form, declared cardinality,
/// then the given varints (first low verbatim, then gap-1 deltas).
void append_array_chunk_bytes(WireBytes& out, std::uint64_t key,
                              std::uint64_t cardinality,
                              std::initializer_list<std::uint64_t> varints) {
  put_varint(out, key);
  out.push_back(std::byte{0});
  put_varint(out, cardinality);
  for (const std::uint64_t v : varints) put_varint(out, v);
}

/// Appends one bitmap-form (form 1) chunk with every word = `fill`.
void append_bitmap_chunk_bytes(WireBytes& out, std::uint64_t key,
                               std::uint64_t cardinality, std::uint64_t fill) {
  put_varint(out, key);
  out.push_back(std::byte{1});
  put_varint(out, cardinality);
  for (std::size_t w = 0; w < common::ChunkedPeerSet::kBitmapWords; ++w) {
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<std::byte>((fill >> shift) & 0xFF));
    }
  }
}

TEST(CodecFuzz, ChunkedSetRoundTripsSparseAndDenseChunks) {
  PushMessage push;
  common::Rng rng(0x0DD5);
  push.value = make_value(rng);
  // Sparse low chunk, a dense chunk that must promote to bitmap form, and a
  // far-away high-key chunk: all three chunk shapes on one wire.
  push.flooding_list.insert(common::PeerId(3));
  push.flooding_list.insert(common::PeerId(40'000));
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    push.flooding_list.insert(common::PeerId(65'536 + 13 * i));
  }
  push.flooding_list.insert(common::PeerId(200'000'000));
  const auto decoded = decode(encode(GossipPayload{push}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<PushMessage>(*decoded).flooding_list,
            push.flooding_list);
}

TEST(CodecFuzz, HostileChunkCountIsRejectedBeforeAnyWork) {
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, std::uint64_t{1} << 40);  // a trillion chunks, allegedly
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, OverlappingAndNonAscendingChunkKeysAreRejected) {
  {
    WireBytes frame = push_prefix_without_peerset();
    put_varint(frame, 2);
    append_array_chunk_bytes(frame, 5, 1, {10});
    append_array_chunk_bytes(frame, 5, 1, {11});  // same range twice
    EXPECT_FALSE(decode(frame).has_value());
  }
  {
    WireBytes frame = push_prefix_without_peerset();
    put_varint(frame, 2);
    append_array_chunk_bytes(frame, 5, 1, {10});
    append_array_chunk_bytes(frame, 3, 1, {11});  // keys ran backwards
    EXPECT_FALSE(decode(frame).has_value());
  }
}

TEST(CodecFuzz, ChunkKeyAtTheWireIdBoundIsRejected) {
  // A chunk keyed at kMaxWireChunkKey could express ids >= kMaxWirePeerId.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_array_chunk_bytes(frame, kMaxWireChunkKey, 1, {0});
  EXPECT_FALSE(decode(frame).has_value());

  // Near miss: the last legal key decodes fine and yields the expected id.
  WireBytes ok = push_prefix_without_peerset();
  put_varint(ok, 1);
  append_array_chunk_bytes(ok, kMaxWireChunkKey - 1, 1, {9});
  const auto decoded = decode(ok);
  ASSERT_TRUE(decoded.has_value());
  const auto& list = std::get<PushMessage>(*decoded).flooding_list;
  ASSERT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.contains(
      common::PeerId(static_cast<std::uint32_t>(kMaxWirePeerId) - 65'536 + 9)));
}

TEST(CodecFuzz, OversizedArrayCardinalityIsRejected) {
  // Canonical form caps array chunks at kArrayChunkMax entries; a larger
  // declaration is a lie (the set would have used a bitmap) and must not
  // drive a larger allocation.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_array_chunk_bytes(frame, 0,
                           common::ChunkedPeerSet::kArrayChunkMax + 1, {0});
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, ArrayCardinalityBeyondPayloadIsRejected) {
  // Declared 1000 entries, supplied 2 bytes: rejected by the bytes-remaining
  // check before the decoder ever loops or reserves.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_array_chunk_bytes(frame, 0, 1'000, {1, 1});
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, ArrayDeltasOverflowingTheChunkSpanAreRejected) {
  // first low 65'535, then one more entry: any further gap walks past the
  // 2^16 ids a chunk can hold.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_array_chunk_bytes(frame, 0, 2, {65'535, 0});
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, BitmapPopcountMismatchIsRejected) {
  // All-ones bitmap (popcount 65'536) under a header claiming 5'000.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_bitmap_chunk_bytes(frame, 0, 5'000, ~std::uint64_t{0});
  EXPECT_FALSE(decode(frame).has_value());

  // Truthful header on the same bitmap decodes.
  WireBytes ok = push_prefix_without_peerset();
  put_varint(ok, 1);
  append_bitmap_chunk_bytes(ok, 0, 65'536, ~std::uint64_t{0});
  const auto decoded = decode(ok);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<PushMessage>(*decoded).flooding_list.size(), 65'536u);
}

TEST(CodecFuzz, SparseBitmapChunkIsRejectedAsNonCanonical) {
  // One bit per word = popcount 1'024 <= kArrayChunkMax: canonical form
  // demands an array chunk, so even a truthful bitmap header is rejected.
  // This keeps decode(encode(s)) bit-identical and denies a 8 KiB-per-id
  // amplification vector.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_bitmap_chunk_bytes(frame, 0, 1'024, std::uint64_t{1});
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, UnknownChunkFormIsRejected) {
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  put_varint(frame, 0);               // key
  frame.push_back(std::byte{2});      // form 2 does not exist
  put_varint(frame, 1);               // cardinality
  put_varint(frame, 1);               // one low
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, EmptyChunkCardinalityIsRejected) {
  // Zero-cardinality chunks cannot exist in canonical form (empty chunks
  // are dropped before encoding) and would make set equality ambiguous.
  WireBytes frame = push_prefix_without_peerset();
  put_varint(frame, 1);
  append_array_chunk_bytes(frame, 0, 0, {});
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(CodecFuzz, HostileChunkHeaderBitFlipsNeverCrash) {
  // Flip every bit of a frame whose peerset has one array and one bitmap
  // chunk: the chunk headers themselves become the fuzz surface.
  PushMessage push;
  common::Rng rng(0xF1B5);
  push.value = make_value(rng);
  push.flooding_list.insert(common::PeerId(17));
  for (std::uint32_t i = 0; i < 4'200; ++i) {
    push.flooding_list.insert(common::PeerId(65'536 + i));
  }
  const WireBytes wire = encode(GossipPayload{push});
  // The bitmap body is 8 KiB of bulk data; flipping each of its bits
  // re-proves popcount checking ~65k times for little value. Fuzz the
  // header-dense prefix exhaustively and sample the rest.
  const std::size_t dense = std::min<std::size_t>(wire.size(), 160);
  for (std::size_t byte_idx = 0; byte_idx < dense; ++byte_idx) {
    for (int bit = 0; bit < 8; ++bit) {
      WireBytes mutated = wire;
      mutated[byte_idx] ^= static_cast<std::byte>(1 << bit);
      check_bytes(mutated);
    }
  }
  for (int trial = 0; trial < 2'000; ++trial) {
    WireBytes mutated = wire;
    const std::size_t byte_idx =
        dense + static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(wire.size() - dense - 1)));
    mutated[byte_idx] ^=
        static_cast<std::byte>(1 << rng.uniform_int(0, 7));
    check_bytes(mutated);
  }
}

TEST(CodecFuzz, HostileVarintLengthsDoNotAllocate) {
  // A frame claiming a multi-gigabyte string/list must be rejected before
  // any allocation of that size. Build: magic, version, kind=push, then a
  // huge key-length varint.
  WireBytes hostile;
  hostile.push_back(std::byte{0xD5});
  hostile.push_back(std::byte{0x2B});
  hostile.push_back(static_cast<std::byte>(kCodecVersion));
  hostile.push_back(std::byte{0});  // kind 0 (first alternative)
  put_varint(hostile, std::uint64_t{1} << 40);  // 1 TiB key, allegedly
  hostile.push_back(std::byte{'x'});
  EXPECT_FALSE(decode(hostile).has_value());
}

}  // namespace
}  // namespace updp2p::gossip
