#include "gossip/query.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "version/version_id.hpp"

namespace updp2p::gossip {
namespace {

using common::PeerId;

version::VersionedValue make_value(const std::string& payload,
                                   std::initializer_list<std::pair<int, int>>
                                       history,
                                   std::uint64_t id_seed) {
  version::VersionedValue value;
  value.key = "key";
  value.payload = payload;
  for (const auto& [peer, counter] : history) {
    value.history.observe(PeerId(static_cast<std::uint32_t>(peer)),
                          static_cast<std::uint64_t>(counter));
  }
  version::VersionIdFactory factory(PeerId(0), common::Rng(id_seed));
  value.id = factory.mint(0.0);
  return value;
}

QueryAnswer answer(std::uint32_t from, std::optional<version::VersionedValue> v,
                   bool confident = true) {
  return QueryAnswer{PeerId(from), std::move(v), confident};
}

TEST(Query, EmptyAnswersResolveToNothing) {
  const std::vector<QueryAnswer> answers;
  EXPECT_FALSE(resolve_query(answers, QueryRule::kLatestVersion).has_value());
}

TEST(Query, AllUnknownResolvesToNothing) {
  const std::vector<QueryAnswer> answers{answer(1, std::nullopt),
                                         answer(2, std::nullopt)};
  EXPECT_FALSE(resolve_query(answers, QueryRule::kMajority).has_value());
}

TEST(Query, LatestVersionPicksDominating) {
  const auto old_version = make_value("old", {{1, 1}}, 1);
  const auto new_version = make_value("new", {{1, 2}}, 2);
  const std::vector<QueryAnswer> answers{
      answer(1, old_version), answer(2, new_version), answer(3, old_version)};
  const auto result = resolve_query(answers, QueryRule::kLatestVersion);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, "new");
}

TEST(Query, MajorityPicksMostFrequent) {
  const auto a = make_value("a", {{1, 1}}, 1);
  const auto b = make_value("b", {{2, 1}}, 2);
  const std::vector<QueryAnswer> answers{answer(1, a), answer(2, a),
                                         answer(3, b)};
  const auto result = resolve_query(answers, QueryRule::kMajority);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload, "a");
}

TEST(Query, MajorityCanPickStaleVersion) {
  // The weakness of pure majority: three stale replicas outvote one fresh.
  const auto stale = make_value("stale", {{1, 1}}, 1);
  const auto fresh = make_value("fresh", {{1, 2}}, 2);
  const std::vector<QueryAnswer> answers{answer(1, stale), answer(2, stale),
                                         answer(3, stale), answer(4, fresh)};
  EXPECT_EQ(resolve_query(answers, QueryRule::kMajority)->payload, "stale");
  // The hybrid rule fixes exactly this (§4.4): dominated versions are
  // discarded before the vote.
  EXPECT_EQ(resolve_query(answers, QueryRule::kHybrid)->payload, "fresh");
}

TEST(Query, HybridVotesAmongConcurrentVersions) {
  const auto a = make_value("a", {{1, 1}}, 1);  // concurrent with b
  const auto b = make_value("b", {{2, 1}}, 2);
  const std::vector<QueryAnswer> answers{answer(1, a), answer(2, b),
                                         answer(3, b)};
  EXPECT_EQ(resolve_query(answers, QueryRule::kHybrid)->payload, "b");
}

TEST(Query, ConfidentAnswersPreferred) {
  const auto stale = make_value("stale", {{1, 1}}, 1);
  const auto fresh = make_value("fresh", {{1, 2}}, 2);
  const std::vector<QueryAnswer> answers{
      answer(1, stale, /*confident=*/true),
      answer(2, fresh, /*confident=*/false)};
  // Only the confident answer is considered first.
  EXPECT_EQ(resolve_query(answers, QueryRule::kLatestVersion)->payload,
            "stale");
}

TEST(Query, FallsBackToUnconfidentWhenNoConfidentAnswer) {
  const auto fresh = make_value("fresh", {{1, 2}}, 2);
  const std::vector<QueryAnswer> answers{
      answer(1, std::nullopt, /*confident=*/true),
      answer(2, fresh, /*confident=*/false)};
  EXPECT_EQ(resolve_query(answers, QueryRule::kLatestVersion)->payload,
            "fresh");
}

TEST(Query, AllRulesAgreeOnUnanimousAnswers) {
  const auto v = make_value("v", {{1, 3}}, 9);
  const std::vector<QueryAnswer> answers{answer(1, v), answer(2, v),
                                         answer(3, v)};
  for (const auto rule : {QueryRule::kLatestVersion, QueryRule::kMajority,
                          QueryRule::kHybrid}) {
    const auto result = resolve_query(answers, rule);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->payload, "v");
  }
}

TEST(Query, DeterministicTieBreakOnEqualVotes) {
  const auto a = make_value("a", {{1, 1}}, 1);
  const auto b = make_value("b", {{2, 1}}, 2);
  const std::vector<QueryAnswer> forward{answer(1, a), answer(2, b)};
  const std::vector<QueryAnswer> reversed{answer(2, b), answer(1, a)};
  EXPECT_EQ(resolve_query(forward, QueryRule::kMajority)->id,
            resolve_query(reversed, QueryRule::kMajority)->id);
}

TEST(Query, RuleNames) {
  EXPECT_STREQ(to_string(QueryRule::kLatestVersion), "latest-version");
  EXPECT_STREQ(to_string(QueryRule::kMajority), "majority");
  EXPECT_STREQ(to_string(QueryRule::kHybrid), "hybrid");
}

}  // namespace
}  // namespace updp2p::gossip
