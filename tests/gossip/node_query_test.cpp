// Tests for the message-based §4.4 query protocol on ReplicaNode.
#include <gtest/gtest.h>

#include "gossip/node.hpp"

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

GossipConfig query_config() {
  GossipConfig config;
  config.estimated_total_replicas = 50;
  config.fanout_fraction = 0.1;
  config.pull.no_update_timeout = 100;
  return config;
}

ReplicaNode make_node(std::uint32_t id, std::uint32_t population = 50) {
  ReplicaNode node(PeerId(id), query_config(), common::StreamRng(2'000 + id));
  std::vector<PeerId> view;
  for (std::uint32_t i = 0; i < population; ++i) {
    if (i != id) view.emplace_back(i);
  }
  node.bootstrap(view);
  return node;
}

TEST(NodeQuery, BeginQuerySendsRequests) {
  auto node = make_node(0);
  const auto started = node.begin_query("key", QueryRule::kHybrid, 3, 1);
  EXPECT_NE(started.nonce, 0u);
  EXPECT_EQ(started.messages.size(), 3u);
  for (const auto& message : started.messages) {
    const auto* request = std::get_if<QueryRequest>(&message.payload);
    ASSERT_NE(request, nullptr);
    EXPECT_EQ(request->key, "key");
    EXPECT_EQ(request->nonce, started.nonce);
  }
  EXPECT_EQ(node.stats().queries_issued, 1u);
}

TEST(NodeQuery, NoncesAreUnique) {
  auto node = make_node(0);
  const auto a = node.begin_query("k", QueryRule::kMajority, 1, 1);
  const auto b = node.begin_query("k", QueryRule::kMajority, 1, 1);
  EXPECT_NE(a.nonce, b.nonce);
}

TEST(NodeQuery, RequestAnsweredWithVersionsAndConfidence) {
  auto holder = make_node(1);
  (void)holder.publish("key", "value", 1);
  const auto out =
      holder.handle_message(PeerId(0), GossipPayload{QueryRequest{"key", 7}}, 2);
  ASSERT_EQ(out.size(), 1u);
  const auto* reply = std::get_if<QueryReply>(&out.front().payload);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->nonce, 7u);
  EXPECT_EQ(reply->key, "key");
  ASSERT_EQ(reply->versions.size(), 1u);
  EXPECT_EQ(reply->versions.front().payload, "value");
  EXPECT_TRUE(reply->confident);
  EXPECT_EQ(out.front().to, PeerId(0));
}

TEST(NodeQuery, UnknownKeyAnsweredEmpty) {
  auto node = make_node(1);
  const auto out =
      node.handle_message(PeerId(0), GossipPayload{QueryRequest{"nope", 9}}, 1);
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(std::get<QueryReply>(out.front().payload).versions.empty());
}

TEST(NodeQuery, UnconfidentResponderAlsoPulls) {
  auto config = query_config();
  config.pull.no_update_timeout = 2;
  ReplicaNode node(PeerId(1), config, common::StreamRng(5));
  std::vector<PeerId> view{PeerId(0), PeerId(2), PeerId(3), PeerId(4)};
  node.bootstrap(view);
  // Round 50: long since any activity -> unconfident.
  const auto out =
      node.handle_message(PeerId(0), GossipPayload{QueryRequest{"k", 1}}, 50);
  std::size_t replies = 0, pulls = 0;
  for (const auto& message : out) {
    replies += std::holds_alternative<QueryReply>(message.payload);
    pulls += std::holds_alternative<PullRequest>(message.payload);
  }
  EXPECT_EQ(replies, 1u);
  EXPECT_GT(pulls, 0u);
  // And the reply advertises the lack of confidence.
  for (const auto& message : out) {
    if (const auto* reply = std::get_if<QueryReply>(&message.payload)) {
      EXPECT_FALSE(reply->confident);
    }
  }
}

TEST(NodeQuery, EndToEndResolution) {
  auto issuer = make_node(0, 4);
  auto holder1 = make_node(1, 4);
  auto holder2 = make_node(2, 4);
  (void)holder1.publish("key", "v1", 1);
  // holder2 learns v1, then writes v2 on top.
  const auto push = holder1.publish("key2-warmup", "x", 1);  // unrelated
  (void)push;
  for (auto& value : holder1.store().missing_given(holder2.store().summary())) {
    holder2.store().apply(std::move(value));
  }
  (void)holder2.publish("key", "v2", 2);

  const auto started = issuer.begin_query("key", QueryRule::kLatestVersion,
                                          3, 3);
  // Deliver requests to their targets; feed replies back to the issuer.
  std::size_t answered = 0;
  for (const auto& request : started.messages) {
    ReplicaNode* target = nullptr;
    if (request.to == PeerId(1)) target = &holder1;
    if (request.to == PeerId(2)) target = &holder2;
    if (target == nullptr) continue;  // peer 3 does not exist here
    const auto replies =
        target->handle_message(PeerId(0), request.payload, 4);
    for (const auto& reply : replies) {
      if (std::holds_alternative<QueryReply>(reply.payload)) {
        (void)issuer.handle_message(request.to, reply.payload, 4);
        ++answered;
      }
    }
  }
  ASSERT_GE(answered, 2u);

  // All replies are in (or will time out); poll after the timeout window.
  const auto outcome = issuer.poll_query(started.nonce, 10);
  EXPECT_TRUE(outcome.complete);
  ASSERT_TRUE(outcome.value.has_value());
  EXPECT_EQ(outcome.value->payload, "v2");  // causally newest wins
}

TEST(NodeQuery, PollBeforeRepliesIsIncomplete) {
  auto node = make_node(0);
  const auto started = node.begin_query("key", QueryRule::kHybrid, 3, 5);
  const auto outcome = node.poll_query(started.nonce, 6);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.replies, 0u);
  EXPECT_EQ(outcome.asked, 3u);
}

TEST(NodeQuery, TimesOutWithPartialAnswers) {
  auto issuer = make_node(0);
  auto holder = make_node(1);
  (void)holder.publish("key", "value", 1);
  const auto started = issuer.begin_query("key", QueryRule::kHybrid, 3, 5);
  // Only one target answers.
  const auto replies = holder.handle_message(
      PeerId(0), GossipPayload{QueryRequest{"key", started.nonce}}, 6);
  (void)issuer.handle_message(PeerId(1), replies.front().payload, 6);
  // Before the timeout: incomplete. After: resolved with what arrived.
  EXPECT_FALSE(issuer.poll_query(started.nonce, 7).complete);
  const auto outcome = issuer.poll_query(started.nonce, 9);
  EXPECT_TRUE(outcome.complete);
  ASSERT_TRUE(outcome.value.has_value());
  EXPECT_EQ(outcome.value->payload, "value");
}

TEST(NodeQuery, ConsumedQueryPollsEmpty) {
  auto node = make_node(0);
  const auto started = node.begin_query("key", QueryRule::kHybrid, 2, 1);
  (void)node.poll_query(started.nonce, 100);  // times out -> consumed
  const auto again = node.poll_query(started.nonce, 100);
  EXPECT_TRUE(again.complete);
  EXPECT_FALSE(again.value.has_value());
  EXPECT_EQ(again.asked, 0u);
}

TEST(NodeQuery, LateAndForeignRepliesIgnored) {
  auto node = make_node(0);
  QueryReply bogus;
  bogus.key = "key";
  bogus.nonce = 424242;  // no such query
  (void)node.handle_message(PeerId(1), GossipPayload{bogus}, 1);
  EXPECT_EQ(node.stats().query_replies_received, 1u);  // counted, ignored

  // Mismatched key for a real nonce is ignored too.
  const auto started = node.begin_query("key", QueryRule::kHybrid, 2, 1);
  QueryReply wrong_key;
  wrong_key.key = "other";
  wrong_key.nonce = started.nonce;
  (void)node.handle_message(PeerId(1), GossipPayload{wrong_key}, 1);
  EXPECT_EQ(node.poll_query(started.nonce, 1).replies, 0u);
}

TEST(NodeQuery, LocalStoreParticipatesInVote) {
  // The issuer holds the only copy; zero network replies still resolve.
  auto node = make_node(0);
  (void)node.publish("key", "mine", 1);
  const auto started = node.begin_query("key", QueryRule::kMajority, 2, 2);
  const auto outcome = node.poll_query(started.nonce, 10);  // timed out
  EXPECT_TRUE(outcome.complete);
  ASSERT_TRUE(outcome.value.has_value());
  EXPECT_EQ(outcome.value->payload, "mine");
}

TEST(LocalWinner, EmptyAndTombstoneCases) {
  EXPECT_FALSE(local_winner({}).has_value());
  version::VersionedValue tombstone;
  tombstone.key = "k";
  tombstone.tombstone = true;
  tombstone.history.increment(PeerId(1));
  const std::vector<version::VersionedValue> only_tombstone{tombstone};
  EXPECT_FALSE(local_winner(only_tombstone).has_value());
}

TEST(LocalWinner, PicksCausallyFreshest) {
  version::VersionedValue old_version;
  old_version.key = "k";
  old_version.payload = "old";
  old_version.history.increment(PeerId(1));
  version::VersionedValue new_version = old_version;
  new_version.payload = "new";
  new_version.history.increment(PeerId(1));
  const std::vector<version::VersionedValue> versions{old_version,
                                                      new_version};
  const auto winner = local_winner(versions);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->payload, "new");
}

}  // namespace
}  // namespace updp2p::gossip
