#include "gossip/forward_policy.hpp"

#include <gtest/gtest.h>

namespace updp2p::gossip {
namespace {

GossipConfig base_config() {
  GossipConfig config;
  config.forward_probability = analysis::pf_geometric(0.9);
  return config;
}

TEST(ForwardDecider, FollowsScheduleWithoutSelfTuning) {
  auto config = base_config();
  config.self_tuning = false;
  ForwardDecider decider(config);
  EXPECT_DOUBLE_EQ(decider.probability(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(decider.probability(1, 0.0), 0.9);
  // Without self-tuning the list fraction is ignored.
  EXPECT_DOUBLE_EQ(decider.probability(1, 0.8), 0.9);
}

TEST(ForwardDecider, SelfTuningProbabilityIgnoresListCoverage) {
  // The two §6 signals are split: duplicates tune PF, list coverage tunes
  // the fanout. PF must not shrink with the list alone.
  auto config = base_config();
  config.self_tuning = true;
  config.forward_probability = analysis::pf_constant(1.0);
  ForwardDecider decider(config);
  EXPECT_DOUBLE_EQ(decider.probability(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(decider.probability(0, 0.9), 1.0);
}

TEST(ForwardDecider, SelfTuningRespectsFloor) {
  auto config = base_config();
  config.self_tuning = true;
  config.min_forward_probability = 0.05;
  config.duplicate_damping = 0.01;
  config.forward_probability = analysis::pf_constant(1.0);
  ForwardDecider decider(config);
  for (int i = 0; i < 200; ++i) decider.observe_push(true);
  EXPECT_GE(decider.probability(0, 0.0), 0.05);
  EXPECT_LE(decider.probability(0, 0.0), 0.06);
}

TEST(ForwardDecider, DuplicatesDampenProbability) {
  auto config = base_config();
  config.self_tuning = true;
  config.duplicate_damping = 0.5;
  config.forward_probability = analysis::pf_constant(1.0);
  ForwardDecider decider(config);
  const double before = decider.probability(0, 0.0);
  for (int i = 0; i < 20; ++i) decider.observe_push(/*duplicate=*/true);
  const double after = decider.probability(0, 0.0);
  EXPECT_LT(after, before);
  EXPECT_GT(decider.duplicate_rate(), 0.5);
}

TEST(ForwardDecider, FreshPushesRecoverTheRate) {
  auto config = base_config();
  config.self_tuning = true;
  ForwardDecider decider(config);
  for (int i = 0; i < 20; ++i) decider.observe_push(true);
  const double high = decider.duplicate_rate();
  for (int i = 0; i < 40; ++i) decider.observe_push(false);
  EXPECT_LT(decider.duplicate_rate(), high * 0.1);
}

TEST(ForwardDecider, ShouldForwardMatchesProbabilityStatistically) {
  auto config = base_config();
  config.forward_probability = analysis::pf_constant(0.3);
  ForwardDecider decider(config);
  common::Rng rng(5);
  int forwards = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) {
    if (decider.should_forward(rng, 0, 0.0)) ++forwards;
  }
  EXPECT_NEAR(static_cast<double>(forwards) / kTrials, 0.3, 0.01);
}

TEST(ForwardDecider, EffectiveFanoutPassthroughWithoutSelfTuning) {
  auto config = base_config();
  config.self_tuning = false;
  ForwardDecider decider(config);
  for (int i = 0; i < 20; ++i) decider.observe_push(true);
  EXPECT_EQ(decider.effective_fanout(10, 0.9), 10u);
}

TEST(ForwardDecider, EffectiveFanoutShrinksWithListCoverage) {
  auto config = base_config();
  config.self_tuning = true;
  ForwardDecider decider(config);
  EXPECT_EQ(decider.effective_fanout(10, 0.0), 10u);
  EXPECT_EQ(decider.effective_fanout(10, 0.5), 5u);
  EXPECT_EQ(decider.effective_fanout(10, 1.0), 1u);  // floor at 1
}

TEST(ForwardDecider, EffectiveFanoutUnaffectedByDuplicates) {
  // Duplicates gate PF, not the fanout (split-signal design).
  auto config = base_config();
  config.self_tuning = true;
  config.duplicate_damping = 0.5;
  ForwardDecider decider(config);
  for (int i = 0; i < 30; ++i) decider.observe_push(true);
  EXPECT_EQ(decider.effective_fanout(20, 0.0), 20u);
}

TEST(ForwardDecider, FanoutOfOneNeverShrinks) {
  auto config = base_config();
  config.self_tuning = true;
  ForwardDecider decider(config);
  EXPECT_EQ(decider.effective_fanout(1, 0.99), 1u);
}

TEST(ForwardDecider, ClampsScheduleOutput) {
  auto config = base_config();
  config.forward_probability =
      analysis::PfSchedule{"crazy", [](common::Round) { return 7.0; }};
  ForwardDecider decider(config);
  EXPECT_DOUBLE_EQ(decider.probability(0, 0.0), 1.0);
}

}  // namespace
}  // namespace updp2p::gossip
