#include "gossip/config.hpp"

#include "gossip/node.hpp"

#include <gtest/gtest.h>

namespace updp2p::gossip {
namespace {

TEST(GossipConfig, DefaultsAreValid) {
  GossipConfig config;
  config.validate();  // must not abort
  SUCCEED();
}

TEST(GossipConfig, AbsoluteFanoutRoundsToNearest) {
  GossipConfig config;
  config.estimated_total_replicas = 1'000;
  config.fanout_fraction = 0.0154;
  EXPECT_EQ(config.absolute_fanout(), 15u);
  config.fanout_fraction = 0.0156;
  EXPECT_EQ(config.absolute_fanout(), 16u);
}

TEST(GossipConfig, AbsoluteFanoutNeverZero) {
  GossipConfig config;
  config.estimated_total_replicas = 10;
  config.fanout_fraction = 0.001;  // 0.01 peers
  EXPECT_EQ(config.absolute_fanout(), 1u);
}

TEST(GossipConfig, ValidationCatchesEachBadField) {
  {
    GossipConfig config;
    config.fanout_fraction = 1.5;
    EXPECT_DEATH(config.validate(), "f_r");
  }
  {
    GossipConfig config;
    config.estimated_total_replicas = 0;
    EXPECT_DEATH(config.validate(), "population");
  }
  {
    GossipConfig config;
    config.duplicate_damping = 0.0;
    EXPECT_DEATH(config.validate(), "damping");
  }
  {
    GossipConfig config;
    config.min_forward_probability = 2.0;
    EXPECT_DEATH(config.validate(), "floor");
  }
  {
    GossipConfig config;
    config.pull.contacts_per_attempt = 0;
    EXPECT_DEATH(config.validate(), "at least one");
  }
}

TEST(GossipConfig, PreferredWeightAppliesToNodeView) {
  GossipConfig config;
  config.estimated_total_replicas = 10;
  config.fanout_fraction = 0.3;
  config.acks.preferred_weight = 5;
  gossip::ReplicaNode node(common::PeerId(0), config, common::StreamRng(1));
  EXPECT_EQ(node.view().preferred_weight(), 5u);
}

}  // namespace
}  // namespace updp2p::gossip
