#include "gossip/messages.hpp"

#include <gtest/gtest.h>

namespace updp2p::gossip {
namespace {

using common::PeerId;

WireSizeConfig wire() {
  WireSizeConfig config;
  config.header_bytes = 16;
  config.update_payload_bytes = 100;
  config.replica_entry_bytes = 10;
  return config;
}

version::VersionedValue value_with_history(int entries) {
  version::VersionedValue value;
  value.key = "key";  // 3 bytes
  for (int i = 0; i < entries; ++i) {
    value.history.increment(PeerId(static_cast<std::uint32_t>(i)));
  }
  return value;
}

TEST(WireSize, PushGrowsWithFloodingList) {
  // The flooding list is priced at its exact compressed encoding, not a
  // per-entry constant: consecutive ids cost one delta byte each.
  PushMessage small{value_with_history(1), {PeerId(1)}, 0};
  PushMessage large{value_with_history(1),
                    {PeerId(1), PeerId(2), PeerId(3)}, 0};
  const auto small_size = wire_size(GossipPayload{small}, wire());
  const auto large_size = wire_size(GossipPayload{large}, wire());
  EXPECT_EQ(large_size - small_size,
            large.flooding_list.set().wire_encoded_bytes() -
                small.flooding_list.set().wire_encoded_bytes());
  EXPECT_EQ(large_size - small_size, 2u);  // two extra gap-1 varints
}

TEST(WireSize, PushAccountsForEverything) {
  PushMessage push{value_with_history(2), {PeerId(1), PeerId(2)}, 3};
  // header 16 + payload 100 + key 3 + vv 2*10 + vid 16 + round 4, plus the
  // list's exact chunked encoding: chunk count 1 + key 1 + form 1 +
  // cardinality 1 + first low 1 + one gap byte = 6.
  EXPECT_EQ(push.flooding_list.set().wire_encoded_bytes(), 6u);
  EXPECT_EQ(wire_size(GossipPayload{push}, wire()),
            16u + 100u + 3u + 20u + 16u + 6u + sizeof(common::Round));
}

TEST(WireSize, DenseFloodingListCompressesBelowPerEntryPricing) {
  // §5's message-length analysis prices an uncapped list at alpha bytes per
  // entry; the chunked encoding beats that by construction once ids are
  // dense. 5'000 consecutive ids: ~1 byte each vs alpha = 10.
  PushMessage push{value_with_history(1), {}, 0};
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    push.flooding_list.insert(PeerId(i));
  }
  const auto list_bytes = push.flooding_list.set().wire_encoded_bytes();
  EXPECT_LT(list_bytes, 5'000u * 10u / 5u);  // >5x under per-entry pricing
  const auto with_list = wire_size(GossipPayload{push}, wire());
  PushMessage empty_list{value_with_history(1), {}, 0};
  EXPECT_EQ(with_list - wire_size(GossipPayload{empty_list}, wire()),
            list_bytes - empty_list.flooding_list.set().wire_encoded_bytes());
}

TEST(WireSize, PullRequestScalesWithSummaryAndHave) {
  PullRequest request;
  request.summary.increment(PeerId(1));
  request.summary.increment(PeerId(2));
  // header 16 + summary 2*10 + store digest 16.
  EXPECT_EQ(wire_size(GossipPayload{request}, wire()), 16u + 20u + 16u);
  request.have.emplace_back();
  EXPECT_EQ(wire_size(GossipPayload{request}, wire()), 16u + 20u + 16u + 16u);
}

TEST(WireSize, PullResponseSumsValues) {
  PullResponse response;
  response.missing.push_back(value_with_history(1));
  response.missing.push_back(value_with_history(1));
  response.summary.increment(PeerId(9));
  const auto size = wire_size(GossipPayload{response}, wire());
  // header 16 + summary 10 + 2*(100+3+10+16)
  EXPECT_EQ(size, 16u + 10u + 2u * (100u + 3u + 10u + 16u));
}

TEST(WireSize, AckIsTiny) {
  EXPECT_EQ(wire_size(GossipPayload{AckMessage{}}, wire()), 16u + 16u);
}

TEST(PayloadKind, NamesAllAlternatives) {
  EXPECT_STREQ(payload_kind(GossipPayload{PushMessage{}}), "push");
  EXPECT_STREQ(payload_kind(GossipPayload{PullRequest{}}), "pull-request");
  EXPECT_STREQ(payload_kind(GossipPayload{PullResponse{}}), "pull-response");
  EXPECT_STREQ(payload_kind(GossipPayload{AckMessage{}}), "ack");
}

}  // namespace
}  // namespace updp2p::gossip
