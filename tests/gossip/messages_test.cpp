#include "gossip/messages.hpp"

#include <gtest/gtest.h>

namespace updp2p::gossip {
namespace {

using common::PeerId;

WireSizeConfig wire() {
  WireSizeConfig config;
  config.header_bytes = 16;
  config.update_payload_bytes = 100;
  config.replica_entry_bytes = 10;
  return config;
}

version::VersionedValue value_with_history(int entries) {
  version::VersionedValue value;
  value.key = "key";  // 3 bytes
  for (int i = 0; i < entries; ++i) {
    value.history.increment(PeerId(static_cast<std::uint32_t>(i)));
  }
  return value;
}

TEST(WireSize, PushGrowsWithFloodingList) {
  PushMessage small{value_with_history(1), {PeerId(1)}, 0};
  PushMessage large{value_with_history(1),
                    {PeerId(1), PeerId(2), PeerId(3)}, 0};
  const auto small_size = wire_size(GossipPayload{small}, wire());
  const auto large_size = wire_size(GossipPayload{large}, wire());
  EXPECT_EQ(large_size - small_size, 2 * 10u);  // alpha per extra entry
}

TEST(WireSize, PushAccountsForEverything) {
  PushMessage push{value_with_history(2), {PeerId(1), PeerId(2)}, 3};
  // header 16 + payload 100 + key 3 + vv 2*10 + vid 16 + list 2*10 + round 4
  EXPECT_EQ(wire_size(GossipPayload{push}, wire()),
            16u + 100u + 3u + 20u + 16u + 20u + sizeof(common::Round));
}

TEST(WireSize, PullRequestScalesWithSummaryAndHave) {
  PullRequest request;
  request.summary.increment(PeerId(1));
  request.summary.increment(PeerId(2));
  // header 16 + summary 2*10 + store digest 16.
  EXPECT_EQ(wire_size(GossipPayload{request}, wire()), 16u + 20u + 16u);
  request.have.emplace_back();
  EXPECT_EQ(wire_size(GossipPayload{request}, wire()), 16u + 20u + 16u + 16u);
}

TEST(WireSize, PullResponseSumsValues) {
  PullResponse response;
  response.missing.push_back(value_with_history(1));
  response.missing.push_back(value_with_history(1));
  response.summary.increment(PeerId(9));
  const auto size = wire_size(GossipPayload{response}, wire());
  // header 16 + summary 10 + 2*(100+3+10+16)
  EXPECT_EQ(size, 16u + 10u + 2u * (100u + 3u + 10u + 16u));
}

TEST(WireSize, AckIsTiny) {
  EXPECT_EQ(wire_size(GossipPayload{AckMessage{}}, wire()), 16u + 16u);
}

TEST(PayloadKind, NamesAllAlternatives) {
  EXPECT_STREQ(payload_kind(GossipPayload{PushMessage{}}), "push");
  EXPECT_STREQ(payload_kind(GossipPayload{PullRequest{}}), "pull-request");
  EXPECT_STREQ(payload_kind(GossipPayload{PullResponse{}}), "pull-response");
  EXPECT_STREQ(payload_kind(GossipPayload{AckMessage{}}), "ack");
}

}  // namespace
}  // namespace updp2p::gossip
