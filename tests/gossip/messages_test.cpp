#include "gossip/messages.hpp"

#include <gtest/gtest.h>

#include "gossip/codec.hpp"

namespace updp2p::gossip {
namespace {

using common::PeerId;

version::VersionedValue value_with_history(int entries) {
  version::VersionedValue value;
  value.key = "key";  // 3 bytes
  for (int i = 0; i < entries; ++i) {
    value.history.increment(PeerId(static_cast<std::uint32_t>(i)));
  }
  return value;
}

// OutboundMessage::size_bytes is filled from encoded_size(), which must be
// the EXACT frame length — these tests pin the arithmetic against the real
// encoder for every payload alternative.

TEST(EncodedSize, MatchesEncodeForEveryKind) {
  PushMessage push{value_with_history(2), {PeerId(1), PeerId(2)}, 3};
  PullRequest request;
  request.summary.increment(PeerId(1));
  request.have.emplace_back();
  PullResponse response;
  response.summary.increment(PeerId(9));
  response.missing.push_back(value_with_history(1));
  response.missing.push_back(value_with_history(3));
  QueryRequest query{"some-key", 77};
  QueryReply reply{"some-key", 77, {value_with_history(1)}, true};
  for (const auto& payload :
       {GossipPayload{push}, GossipPayload{request}, GossipPayload{response},
        GossipPayload{AckMessage{}}, GossipPayload{query},
        GossipPayload{reply}}) {
    EXPECT_EQ(encoded_size(payload), encode(payload).size())
        << payload_kind(payload);
  }
}

TEST(EncodedSize, PushGrowsWithFloodingList) {
  // The flooding list is priced at its exact compressed encoding:
  // consecutive ids cost one delta byte each.
  PushMessage small{value_with_history(1), {PeerId(1)}, 0};
  PushMessage large{value_with_history(1),
                    {PeerId(1), PeerId(2), PeerId(3)}, 0};
  const auto small_size = encoded_size(GossipPayload{small});
  const auto large_size = encoded_size(GossipPayload{large});
  EXPECT_EQ(large_size - small_size,
            large.flooding_list.set().wire_encoded_bytes() -
                small.flooding_list.set().wire_encoded_bytes());
  EXPECT_EQ(large_size - small_size, 2u);  // two extra gap-1 varints
}

TEST(EncodedSize, DenseFloodingListCompressesBelowPerEntryPricing) {
  // §5's message-length analysis prices an uncapped list at alpha bytes per
  // entry; the chunked encoding beats that by construction once ids are
  // dense. 5'000 consecutive ids: ~1 byte each vs alpha = 10.
  PushMessage push{value_with_history(1), {}, 0};
  for (std::uint32_t i = 0; i < 5'000; ++i) {
    push.flooding_list.insert(PeerId(i));
  }
  const auto list_bytes = push.flooding_list.set().wire_encoded_bytes();
  EXPECT_LT(list_bytes, 5'000u * 10u / 5u);  // >5x under per-entry pricing
  const auto with_list = encoded_size(GossipPayload{push});
  EXPECT_EQ(with_list, encode(GossipPayload{push}).size());
  PushMessage empty_list{value_with_history(1), {}, 0};
  EXPECT_EQ(with_list - encoded_size(GossipPayload{empty_list}),
            list_bytes - empty_list.flooding_list.set().wire_encoded_bytes());
}

TEST(EncodedSize, AckIsTiny) {
  // frame header 4 + digest 16.
  EXPECT_EQ(encoded_size(GossipPayload{AckMessage{}}), 4u + 16u);
}

TEST(SharedValue, IdentityTracksTheSharedAllocation) {
  SharedValue a(value_with_history(1));
  SharedValue b = a;                     // shared: same identity
  SharedValue c(value_with_history(1));  // equal contents, distinct identity
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_NE(a.identity(), c.identity());
  // Default-constructed values all share the empty identity; that is
  // cache-safe because they also all encode identically.
  EXPECT_EQ(SharedValue().identity(), SharedValue().identity());
}

TEST(SharedPeerList, IdentityTracksTheSharedAllocation) {
  SharedPeerList a{PeerId(1), PeerId(2)};
  SharedPeerList b = a;
  SharedPeerList c{PeerId(1), PeerId(2)};
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_NE(a.identity(), c.identity());
}

TEST(PayloadKind, NamesAllAlternatives) {
  EXPECT_STREQ(payload_kind(GossipPayload{PushMessage{}}), "push");
  EXPECT_STREQ(payload_kind(GossipPayload{PullRequest{}}), "pull-request");
  EXPECT_STREQ(payload_kind(GossipPayload{PullResponse{}}), "pull-response");
  EXPECT_STREQ(payload_kind(GossipPayload{AckMessage{}}), "ack");
}

}  // namespace
}  // namespace updp2p::gossip
