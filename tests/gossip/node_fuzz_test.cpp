// Robustness fuzzing: a ReplicaNode must survive arbitrary message
// sequences — hostile, reordered, duplicated, or nonsensical — without
// crashing, and its core invariants must hold afterwards. Networks deliver
// garbage; protocols keep state machines sane anyway.
#include <gtest/gtest.h>

#include "gossip/codec.hpp"
#include "gossip/node.hpp"

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

GossipConfig fuzz_config(Rng& rng) {
  GossipConfig config;
  config.estimated_total_replicas = 64;
  config.fanout_fraction = 0.05 + rng.uniform01() * 0.2;
  config.self_tuning = rng.bernoulli(0.5);
  config.acks.enabled = rng.bernoulli(0.5);
  config.acks.suppression_rounds = 5;
  config.pull.lazy = rng.bernoulli(0.5);
  config.pull.no_update_timeout = 3 + static_cast<common::Round>(
                                          rng.uniform_below(10));
  config.partial_list.mode = static_cast<PartialListMode>(
      rng.uniform_below(5));
  config.partial_list.max_entries = 1 + rng.uniform_below(20);
  return config;
}

version::VersionedValue random_value(Rng& rng) {
  version::VersionedValue value;
  value.key = "k" + std::to_string(rng.uniform_below(4));
  value.payload = "p" + std::to_string(rng.uniform_below(1000));
  version::VersionIdFactory factory(
      PeerId(static_cast<std::uint32_t>(rng.uniform_below(64))), rng.split());
  value.id = factory.mint(rng.uniform01());
  const auto entries = rng.uniform_below(5);
  for (std::uint64_t i = 0; i < entries; ++i) {
    value.history.observe(
        PeerId(static_cast<std::uint32_t>(rng.uniform_below(64))),
        rng.uniform_below(8) + 1);
  }
  value.tombstone = rng.bernoulli(0.15);
  return value;
}

GossipPayload random_payload(Rng& rng) {
  switch (rng.uniform_below(6)) {
    case 0: {
      PushMessage push;
      push.value = random_value(rng);
      const auto list_size = rng.uniform_below(10);
      for (std::uint64_t i = 0; i < list_size; ++i) {
        push.flooding_list.insert(
            PeerId(static_cast<std::uint32_t>(rng.uniform_below(64))));
      }
      push.round = static_cast<common::Round>(rng.uniform_below(20));
      return push;
    }
    case 1: {
      PullRequest request;
      const auto entries = rng.uniform_below(6);
      for (std::uint64_t i = 0; i < entries; ++i) {
        request.summary.observe(
            PeerId(static_cast<std::uint32_t>(rng.uniform_below(64))),
            rng.uniform_below(10) + 1);
      }
      return request;
    }
    case 2: {
      PullResponse response;
      const auto values = rng.uniform_below(4);
      for (std::uint64_t i = 0; i < values; ++i) {
        response.missing.push_back(random_value(rng));
      }
      response.confident = rng.bernoulli(0.5);
      return response;
    }
    case 3: {
      version::VersionIdFactory factory(PeerId(1), rng.split());
      return AckMessage{factory.mint(0.0)};
    }
    case 4:
      return QueryRequest{"k" + std::to_string(rng.uniform_below(4)),
                          rng.uniform_below(100)};
    default: {
      QueryReply reply;
      reply.key = "k" + std::to_string(rng.uniform_below(4));
      reply.nonce = rng.uniform_below(100);  // usually unknown to the node
      const auto values = rng.uniform_below(3);
      for (std::uint64_t i = 0; i < values; ++i) {
        reply.versions.push_back(random_value(rng));
      }
      return reply;
    }
  }
}

class NodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeFuzz, SurvivesRandomMessageStorm) {
  Rng rng(GetParam());
  auto config = fuzz_config(rng);
  ReplicaNode node(PeerId(0), config, common::StreamRng(rng(), 0));
  std::vector<PeerId> view;
  for (std::uint32_t i = 1; i < 64; ++i) view.emplace_back(i);
  node.bootstrap(view);

  common::Round now = 0;
  for (int step = 0; step < 2'000; ++step) {
    const auto action = rng.uniform_below(100);
    if (action < 70) {
      const PeerId from(
          static_cast<std::uint32_t>(rng.uniform_below(64)) + 1);
      (void)node.handle_message(from, random_payload(rng), now);
    } else if (action < 78) {
      (void)node.publish("k" + std::to_string(rng.uniform_below(4)),
                         "local", now);
    } else if (action < 82) {
      (void)node.remove("k" + std::to_string(rng.uniform_below(4)), now);
    } else if (action < 88) {
      (void)node.on_reconnect(now);
    } else if (action < 92) {
      node.on_disconnect(now);
    } else if (action < 96) {
      (void)node.on_round_start(now);
    } else {
      const auto started = node.begin_query(
          "k" + std::to_string(rng.uniform_below(4)),
          static_cast<QueryRule>(rng.uniform_below(3)), 3, now);
      (void)node.poll_query(started.nonce, now + 1);
    }
    if (rng.bernoulli(0.3)) ++now;
  }

  // --- invariants after the storm -----------------------------------------
  // 1. Per-key maximal sets are pairwise concurrent (no dominated version
  //    survives).
  for (const auto& key : node.store().keys()) {
    const auto versions = node.store().versions(key);
    for (std::size_t i = 0; i < versions.size(); ++i) {
      for (std::size_t j = 0; j < versions.size(); ++j) {
        if (i == j) continue;
        EXPECT_NE(versions[i].history.compare(versions[j].history),
                  version::Causality::kDominates)
            << "dominated version retained for " << key;
      }
    }
    // 2. Every stored version is covered by the store summary.
    for (const auto& v : versions) {
      EXPECT_TRUE(v.history.covered_by(node.store().summary()));
    }
  }
  // 3. Monotone counters are self-consistent.
  const auto& stats = node.stats();
  EXPECT_LE(stats.duplicate_pushes, stats.pushes_received);
  // 4. The view never contains the node itself.
  EXPECT_FALSE(node.view().contains(PeerId(0)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class TwoNodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoNodeFuzz, PairwiseGossipConverges) {
  // Two nodes exchanging ALL their traffic (with random drops) must end up
  // with equivalent stores after a final clean pull exchange.
  Rng rng(GetParam() * 977);
  GossipConfig config;
  config.estimated_total_replicas = 2;
  config.fanout_fraction = 1.0;
  const std::uint64_t node_seed = rng();
  ReplicaNode a(PeerId(0), config, common::StreamRng(node_seed, 0));
  ReplicaNode b(PeerId(1), config, common::StreamRng(node_seed, 1));
  const std::vector<PeerId> va{PeerId(1)};
  const std::vector<PeerId> vb{PeerId(0)};
  a.bootstrap(va);
  b.bootstrap(vb);

  common::Round now = 0;
  for (int step = 0; step < 200; ++step, ++now) {
    ReplicaNode& writer = rng.bernoulli(0.5) ? a : b;
    auto out = writer.publish("k" + std::to_string(rng.uniform_below(3)),
                              "v" + std::to_string(step), now);
    // Deliver with 30% loss, plus any cascading reactions.
    std::vector<std::pair<PeerId, OutboundMessage>> queue;
    for (auto& message : out) queue.emplace_back(writer.id(), std::move(message));
    while (!queue.empty()) {
      auto [sender, message] = std::move(queue.back());
      queue.pop_back();
      if (rng.bernoulli(0.3)) continue;  // lost
      ReplicaNode& receiver = message.to == PeerId(0) ? a : b;
      auto reactions = receiver.handle_message(sender, message.payload, now);
      for (auto& reaction : reactions) {
        queue.emplace_back(receiver.id(), std::move(reaction));
      }
    }
  }

  // Clean final anti-entropy both ways.
  for (int round = 0; round < 2; ++round) {
    for (auto* puller : {&a, &b}) {
      ReplicaNode& pulled = puller == &a ? b : a;
      auto requests = puller->on_reconnect(now);
      for (const auto& request : requests) {
        auto responses =
            pulled.handle_message(puller->id(), request.payload, now);
        for (const auto& response : responses) {
          (void)puller->handle_message(pulled.id(), response.payload, now);
        }
      }
      ++now;
    }
  }
  EXPECT_EQ(a.store().summary(), b.store().summary());
  for (const auto& key : a.store().keys()) {
    const auto va2 = a.store().read(key);
    const auto vb2 = b.store().read(key);
    ASSERT_EQ(va2.has_value(), vb2.has_value()) << key;
    if (va2.has_value()) {
      EXPECT_EQ(va2->id, vb2->id) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoNodeFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace updp2p::gossip
