#include "gossip/partial_list.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/chunked_peer_set.hpp"

namespace updp2p::gossip {
namespace {

using common::ChunkedPeerSet;
using common::PeerId;
using common::Rng;

std::vector<PeerId> ids(std::initializer_list<std::uint32_t> values) {
  std::vector<PeerId> out;
  for (const auto v : values) out.emplace_back(v);
  return out;
}

ChunkedPeerSet set_of(std::initializer_list<std::uint32_t> values) {
  ChunkedPeerSet out;
  for (const auto v : values) out.insert(PeerId(v));
  return out;
}

TEST(PartialList, NoneModeYieldsEmptyList) {
  PartialListConfig config;
  config.mode = PartialListMode::kNone;
  Rng rng(1);
  EXPECT_TRUE(
      build_forward_list(config, set_of({1, 2}), ids({3}), PeerId(9), rng)
          .empty());
}

TEST(PartialList, UnboundedMergesReceivedSelfAndTargets) {
  PartialListConfig config;
  config.mode = PartialListMode::kUnbounded;
  Rng rng(1);
  const auto list =
      build_forward_list(config, set_of({1, 2}), ids({3, 4}), PeerId(9), rng);
  EXPECT_EQ(list, set_of({1, 2, 3, 4, 9}));
}

TEST(PartialList, Deduplicates) {
  PartialListConfig config;
  config.mode = PartialListMode::kUnbounded;
  Rng rng(1);
  const auto list =
      build_forward_list(config, set_of({1, 2, 9}), ids({2, 3}), PeerId(9), rng);
  EXPECT_EQ(list, set_of({1, 2, 3, 9}));
}

TEST(PartialList, DropTailKeepsLowestIds) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropTail;
  config.max_entries = 3;
  Rng rng(1);
  const auto list = build_forward_list(config, set_of({1, 2, 3, 4}), ids({5}),
                                       PeerId(9), rng);
  EXPECT_EQ(list, set_of({1, 2, 3}));
}

TEST(PartialList, DropHeadKeepsHighestIds) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropHead;
  config.max_entries = 3;
  Rng rng(1);
  const auto list = build_forward_list(config, set_of({1, 2, 3, 4}), ids({5}),
                                       PeerId(9), rng);
  // merged = {1 2 3 4 5 9} -> keep the 3 highest ids.
  EXPECT_EQ(list, set_of({4, 5, 9}));
}

TEST(PartialList, DropRandomKeepsCapSizedSubset) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropRandom;
  config.max_entries = 4;
  Rng rng(2);
  const auto received = set_of({1, 2, 3, 4, 5, 6, 7, 8});
  const auto list =
      build_forward_list(config, received, ids({10}), PeerId(9), rng);
  EXPECT_EQ(list.size(), 4u);
  // Every survivor came from the merged input (a set cannot hold dupes).
  auto merged = received;
  merged.insert(PeerId(9));
  merged.insert(PeerId(10));
  list.for_each(
      [&](PeerId peer) { EXPECT_TRUE(merged.contains(peer)) << peer.value(); });
}

TEST(PartialList, CapNotExceededNotTruncatedBelow) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropRandom;
  config.max_entries = 10;
  Rng rng(3);
  const auto list =
      build_forward_list(config, set_of({1, 2}), ids({3}), PeerId(9), rng);
  EXPECT_EQ(list.size(), 4u);  // under cap: everything kept
}

TEST(PartialList, BuildIntoReusesOutputSet) {
  PartialListConfig config;
  config.mode = PartialListMode::kUnbounded;
  Rng rng(1);
  ChunkedPeerSet out;
  build_forward_list_into(config, set_of({1, 2}), ids({3}), PeerId(9), rng,
                          out);
  EXPECT_EQ(out, set_of({1, 2, 3, 9}));
  // Re-use: the previous contents must not leak into the next build.
  build_forward_list_into(config, set_of({7}), ids({8}), PeerId(9), rng, out);
  EXPECT_EQ(out, set_of({7, 8, 9}));
}

TEST(PartialList, DropRandomIsUnbiasedish) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropRandom;
  config.max_entries = 2;
  Rng rng(4);
  std::unordered_map<PeerId, int> kept;
  constexpr int kTrials = 6'000;
  const auto received = set_of({1, 2, 3});
  for (int i = 0; i < kTrials; ++i) {
    build_forward_list(config, received, {}, PeerId(9), rng)
        .for_each([&](PeerId peer) { ++kept[peer]; });
  }
  // 4 candidates (1,2,3,self=9), 2 kept -> each expected kTrials/2.
  for (const auto& [peer, count] : kept) {
    EXPECT_NEAR(static_cast<double>(count) / kTrials, 0.5, 0.05)
        << "peer " << peer.value();
  }
}

TEST(PartialListMode, ToString) {
  EXPECT_STREQ(to_string(PartialListMode::kNone), "none");
  EXPECT_STREQ(to_string(PartialListMode::kDropRandom), "drop-random");
}

}  // namespace
}  // namespace updp2p::gossip
