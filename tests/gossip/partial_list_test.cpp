#include "gossip/partial_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

std::vector<PeerId> ids(std::initializer_list<std::uint32_t> values) {
  std::vector<PeerId> out;
  for (const auto v : values) out.emplace_back(v);
  return out;
}

TEST(PartialList, NoneModeYieldsEmptyList) {
  PartialListConfig config;
  config.mode = PartialListMode::kNone;
  Rng rng(1);
  EXPECT_TRUE(build_forward_list(config, ids({1, 2}), ids({3}), PeerId(9), rng)
                  .empty());
}

TEST(PartialList, UnboundedMergesReceivedSelfAndTargets) {
  PartialListConfig config;
  config.mode = PartialListMode::kUnbounded;
  Rng rng(1);
  const auto list =
      build_forward_list(config, ids({1, 2}), ids({3, 4}), PeerId(9), rng);
  EXPECT_EQ(list, ids({1, 2, 9, 3, 4}));
}

TEST(PartialList, Deduplicates) {
  PartialListConfig config;
  config.mode = PartialListMode::kUnbounded;
  Rng rng(1);
  const auto list =
      build_forward_list(config, ids({1, 2, 9}), ids({2, 3}), PeerId(9), rng);
  EXPECT_EQ(list, ids({1, 2, 9, 3}));
}

TEST(PartialList, DropTailKeepsOldestEntries) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropTail;
  config.max_entries = 3;
  Rng rng(1);
  const auto list =
      build_forward_list(config, ids({1, 2, 3, 4}), ids({5}), PeerId(9), rng);
  EXPECT_EQ(list, ids({1, 2, 3}));
}

TEST(PartialList, DropHeadKeepsNewestEntries) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropHead;
  config.max_entries = 3;
  Rng rng(1);
  const auto list =
      build_forward_list(config, ids({1, 2, 3, 4}), ids({5}), PeerId(9), rng);
  // merged = 1 2 3 4 9 5 -> keep last 3.
  EXPECT_EQ(list, ids({4, 9, 5}));
}

TEST(PartialList, DropRandomKeepsCapSizedSubset) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropRandom;
  config.max_entries = 4;
  Rng rng(2);
  const auto received = ids({1, 2, 3, 4, 5, 6, 7, 8});
  const auto list =
      build_forward_list(config, received, ids({10}), PeerId(9), rng);
  EXPECT_EQ(list.size(), 4u);
  std::unordered_set<PeerId> unique(list.begin(), list.end());
  EXPECT_EQ(unique.size(), 4u);
  // Every survivor came from the merged input.
  auto merged = received;
  merged.emplace_back(9);
  merged.emplace_back(10);
  for (const PeerId peer : list) {
    EXPECT_NE(std::find(merged.begin(), merged.end(), peer), merged.end());
  }
}

TEST(PartialList, CapNotExceededNotTruncatedBelow) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropRandom;
  config.max_entries = 10;
  Rng rng(3);
  const auto list =
      build_forward_list(config, ids({1, 2}), ids({3}), PeerId(9), rng);
  EXPECT_EQ(list.size(), 4u);  // under cap: everything kept
}

TEST(PartialList, DropRandomIsUnbiasedish) {
  PartialListConfig config;
  config.mode = PartialListMode::kDropRandom;
  config.max_entries = 2;
  Rng rng(4);
  std::unordered_map<PeerId, int> kept;
  constexpr int kTrials = 6'000;
  for (int i = 0; i < kTrials; ++i) {
    for (const PeerId peer :
         build_forward_list(config, ids({1, 2, 3}), {}, PeerId(9), rng)) {
      ++kept[peer];
    }
  }
  // 4 candidates (1,2,3,self=9), 2 kept -> each expected kTrials/2.
  for (const auto& [peer, count] : kept) {
    EXPECT_NEAR(static_cast<double>(count) / kTrials, 0.5, 0.05)
        << "peer " << peer.value();
  }
}

TEST(PartialListMode, ToString) {
  EXPECT_STREQ(to_string(PartialListMode::kNone), "none");
  EXPECT_STREQ(to_string(PartialListMode::kDropRandom), "drop-random");
}

}  // namespace
}  // namespace updp2p::gossip
