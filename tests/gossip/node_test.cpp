#include "gossip/node.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

GossipConfig test_config() {
  GossipConfig config;
  config.estimated_total_replicas = 100;
  config.fanout_fraction = 0.05;  // absolute fanout 5
  config.forward_probability = analysis::pf_constant(1.0);
  config.partial_list.mode = PartialListMode::kUnbounded;
  config.pull.contacts_per_attempt = 3;
  config.pull.no_update_timeout = 10;
  return config;
}

ReplicaNode make_node(std::uint32_t id, GossipConfig config = test_config(),
                      std::uint32_t population = 100) {
  ReplicaNode node(PeerId(id), std::move(config),
                   common::StreamRng(1000 + id));
  std::vector<PeerId> view;
  for (std::uint32_t i = 0; i < population; ++i) {
    if (i != id) view.emplace_back(i);
  }
  node.bootstrap(view);
  return node;
}

const PushMessage& as_push(const OutboundMessage& message) {
  return std::get<PushMessage>(message.payload);
}

TEST(ReplicaNode, PublishSendsFanoutPushes) {
  auto node = make_node(0);
  const auto out = node.publish("key", "v1", 0);
  EXPECT_EQ(out.size(), 5u);  // fanout = 100 * 0.05
  std::unordered_set<PeerId> targets;
  for (const auto& message : out) {
    ASSERT_TRUE(std::holds_alternative<PushMessage>(message.payload));
    const auto& push = as_push(message);
    EXPECT_EQ(push.round, 0u);
    EXPECT_EQ(push.value->payload, "v1");
    EXPECT_GT(message.size_bytes, 0u);
    targets.insert(message.to);
  }
  EXPECT_EQ(targets.size(), 5u);  // distinct targets
  EXPECT_EQ(node.stats().updates_originated, 1u);
  EXPECT_EQ(node.stats().pushes_forwarded, 5u);
  // Local read works immediately.
  EXPECT_EQ(node.read("key")->payload, "v1");
}

TEST(ReplicaNode, PublishFloodingListCoversSelfAndTargets) {
  auto node = make_node(0);
  const auto out = node.publish("key", "v1", 0);
  ASSERT_FALSE(out.empty());
  const auto& list = as_push(out.front()).flooding_list;
  EXPECT_TRUE(list.contains(PeerId(0)));
  for (const auto& message : out) {
    EXPECT_TRUE(list.contains(message.to));
  }
}

TEST(ReplicaNode, HandlePushForwardsWithIncrementedRound) {
  auto alice = make_node(0);
  auto bob = make_node(1);
  const auto from_alice = alice.publish("key", "v1", 0);
  const auto reactions =
      bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  ASSERT_FALSE(reactions.empty());
  for (const auto& message : reactions) {
    ASSERT_TRUE(std::holds_alternative<PushMessage>(message.payload));
    EXPECT_EQ(as_push(message).round, 1u);
  }
  EXPECT_EQ(bob.read("key")->payload, "v1");
  EXPECT_EQ(bob.stats().updates_learned_push, 1u);
}

TEST(ReplicaNode, ForwardTargetsExcludeFloodingListAndSender) {
  auto alice = make_node(0);
  auto bob = make_node(1);
  const auto from_alice = alice.publish("key", "v1", 0);
  const auto& received = as_push(from_alice.front());
  const auto reactions =
      bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  for (const auto& message : reactions) {
    EXPECT_FALSE(received.flooding_list.contains(message.to))
        << "pushed to already-covered peer " << message.to.value();
    EXPECT_NE(message.to, PeerId(0));
  }
}

TEST(ReplicaNode, ForwardedListIsUnionOfReceivedAndNewTargets) {
  auto alice = make_node(0);
  auto bob = make_node(1);
  const auto from_alice = alice.publish("key", "v1", 0);
  const auto& received = as_push(from_alice.front());
  const auto reactions =
      bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  ASSERT_FALSE(reactions.empty());
  const auto& forwarded_list = as_push(reactions.front()).flooding_list;
  // Everything alice advertised is still there...
  received.flooding_list.for_each([&](PeerId peer) {
    EXPECT_TRUE(forwarded_list.contains(peer)) << peer.value();
  });
  // ...plus bob and its new targets.
  EXPECT_TRUE(forwarded_list.contains(PeerId(1)));
  for (const auto& message : reactions) {
    EXPECT_TRUE(forwarded_list.contains(message.to));
  }
}

TEST(ReplicaNode, DuplicatePushIsNotForwardedTwice) {
  auto alice = make_node(0);
  auto bob = make_node(1);
  const auto from_alice = alice.publish("key", "v1", 0);
  const auto first =
      bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  EXPECT_FALSE(first.empty());
  const auto second =
      bob.handle_message(PeerId(2), from_alice.front().payload, 1);
  EXPECT_TRUE(second.empty());  // push at most once (§3 pseudocode)
  EXPECT_EQ(bob.stats().duplicate_pushes, 1u);
  EXPECT_EQ(bob.stats().pushes_received, 2u);
}

TEST(ReplicaNode, PfZeroSuppressesForwarding) {
  auto config = test_config();
  config.forward_probability = analysis::pf_constant(0.0);
  auto alice = make_node(0);  // publisher keeps PF irrelevant for round 0
  auto bob = make_node(1, config);
  const auto from_alice = alice.publish("key", "v1", 0);
  const auto reactions =
      bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  EXPECT_TRUE(reactions.empty());
  EXPECT_EQ(bob.stats().forwards_suppressed, 1u);
  EXPECT_EQ(bob.read("key")->payload, "v1");  // still applied locally
}

TEST(ReplicaNode, MembershipGrowsFromFloodingList) {
  auto alice = make_node(0, test_config(), 100);
  // Bob starts with a tiny view.
  ReplicaNode bob(PeerId(1), test_config(), common::StreamRng(77));
  const std::vector<PeerId> tiny{PeerId(0)};
  bob.bootstrap(tiny);
  EXPECT_EQ(bob.view().size(), 1u);
  const auto from_alice = alice.publish("key", "v1", 0);
  (void)bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  // Flooding list contained alice's 5 targets (+alice, already known).
  EXPECT_GT(bob.view().size(), 1u);
  EXPECT_GT(bob.stats().members_discovered, 0u);
}

TEST(ReplicaNode, AckSentToFirstPusherOnly) {
  auto config = test_config();
  config.acks.enabled = true;
  config.acks.ack_first_k = 1;
  auto alice = make_node(0, config);
  auto bob = make_node(1, config);
  const auto from_alice = alice.publish("key", "v1", 0);
  const auto first =
      bob.handle_message(PeerId(0), from_alice.front().payload, 1);
  const auto acks = std::count_if(
      first.begin(), first.end(), [](const OutboundMessage& message) {
        return std::holds_alternative<AckMessage>(message.payload) &&
               message.to == PeerId(0);
      });
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(bob.stats().acks_sent, 1u);
  // A duplicate from another peer gets no ack (k = 1).
  const auto second =
      bob.handle_message(PeerId(2), from_alice.front().payload, 1);
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(bob.stats().acks_sent, 1u);
}

TEST(ReplicaNode, AckMarksSenderPreferred) {
  auto config = test_config();
  config.acks.enabled = true;
  auto alice = make_node(0, config);
  (void)alice.publish("key", "v1", 0);
  (void)alice.handle_message(PeerId(5), GossipPayload{AckMessage{}}, 1);
  EXPECT_TRUE(alice.view().is_preferred(PeerId(5)));
  EXPECT_EQ(alice.stats().acks_received, 1u);
}

TEST(ReplicaNode, MissingAckPresumesTargetOffline) {
  auto config = test_config();
  config.acks.enabled = true;
  config.acks.suppression_rounds = 10;
  auto alice = make_node(0, config);
  const auto out = alice.publish("key", "v1", 0);
  ASSERT_FALSE(out.empty());
  const PeerId target = out.front().to;
  // No acks arrive; after the ack wait the target is presumed offline.
  (void)alice.on_round_start(1);
  EXPECT_FALSE(alice.view().is_presumed_offline(target, 1));
  (void)alice.on_round_start(3);
  EXPECT_TRUE(alice.view().is_presumed_offline(target, 3));
  EXPECT_FALSE(alice.view().is_presumed_offline(target, 14));
}

TEST(ReplicaNode, EagerReconnectPulls) {
  auto node = make_node(0);
  const auto out = node.on_reconnect(5);
  EXPECT_EQ(out.size(), 3u);  // contacts_per_attempt
  for (const auto& message : out) {
    EXPECT_TRUE(std::holds_alternative<PullRequest>(message.payload));
  }
  EXPECT_FALSE(node.confident(5));  // not synced yet
  EXPECT_EQ(node.stats().pull_requests_sent, 3u);
}

TEST(ReplicaNode, LazyReconnectWaitsForPush) {
  auto config = test_config();
  config.pull.lazy = true;
  auto node = make_node(1, config);
  EXPECT_TRUE(node.on_reconnect(5).empty());
  EXPECT_TRUE(node.lazy_pull_armed());

  // First push arms a targeted pull to the pusher.
  auto alice = make_node(0);
  const auto from_alice = alice.publish("key", "v1", 5);
  const auto reactions =
      node.handle_message(PeerId(0), from_alice.front().payload, 6);
  const auto pulls_to_alice = std::count_if(
      reactions.begin(), reactions.end(), [](const OutboundMessage& message) {
        return std::holds_alternative<PullRequest>(message.payload) &&
               message.to == PeerId(0);
      });
  EXPECT_EQ(pulls_to_alice, 1);
  EXPECT_FALSE(node.lazy_pull_armed());
}

TEST(ReplicaNode, PullRequestAnsweredWithDelta) {
  auto rich = make_node(0);
  (void)rich.publish("a", "1", 0);
  (void)rich.publish("b", "2", 0);
  auto poor = make_node(1);

  // poor pulls from rich.
  const auto requests = poor.on_reconnect(1);
  ASSERT_FALSE(requests.empty());
  const auto responses =
      rich.handle_message(PeerId(1), requests.front().payload, 1);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(std::holds_alternative<PullResponse>(responses.front().payload));
  const auto& response = std::get<PullResponse>(responses.front().payload);
  EXPECT_EQ(response.missing.size(), 2u);
  EXPECT_EQ(responses.front().to, PeerId(1));
  EXPECT_EQ(rich.stats().pull_requests_received, 1u);

  // poor applies the response and is now in sync and confident.
  (void)poor.handle_message(PeerId(0), responses.front().payload, 2);
  EXPECT_EQ(poor.read("a")->payload, "1");
  EXPECT_EQ(poor.read("b")->payload, "2");
  EXPECT_EQ(poor.stats().updates_learned_pull, 2u);
  EXPECT_TRUE(poor.confident(2));
}

TEST(ReplicaNode, InSyncPullShortCircuitsViaDigest) {
  auto rich = make_node(0);
  (void)rich.publish("a", "1", 0);
  auto peer = make_node(1);
  // First pull: full delta ships.
  auto requests = peer.on_reconnect(1);
  auto responses = rich.handle_message(PeerId(1), requests.front().payload, 1);
  EXPECT_FALSE(
      std::get<PullResponse>(responses.front().payload).missing.empty());
  (void)peer.handle_message(PeerId(0), responses.front().payload, 1);

  // Stores now identical: the next request's digest matches and the
  // response is empty without a delta computation.
  EXPECT_EQ(peer.store().content_digest(), rich.store().content_digest());
  requests = peer.on_reconnect(2);
  const auto& request = std::get<PullRequest>(requests.front().payload);
  EXPECT_EQ(request.store_digest, peer.store().content_digest());
  responses = rich.handle_message(PeerId(1), requests.front().payload, 2);
  EXPECT_TRUE(
      std::get<PullResponse>(responses.front().payload).missing.empty());
}

TEST(ReplicaNode, PullResponseOnlyShipsMissingVersions) {
  auto rich = make_node(0);
  (void)rich.publish("a", "1", 0);
  auto peer = make_node(1);
  // peer already has "a" via push.
  const auto push = rich.publish("b", "2", 0);
  // give peer everything first
  const auto requests = peer.on_reconnect(1);
  auto responses = rich.handle_message(PeerId(1), requests.front().payload, 1);
  (void)peer.handle_message(PeerId(0), responses.front().payload, 1);
  // a second pull ships nothing new
  const auto requests2 = peer.on_reconnect(2);
  responses = rich.handle_message(PeerId(1), requests2.front().payload, 2);
  EXPECT_TRUE(std::get<PullResponse>(responses.front().payload).missing.empty());
}

TEST(ReplicaNode, UnconfidentPulledPartyAlsoPulls) {
  auto config = test_config();
  config.pull.no_update_timeout = 2;
  auto node = make_node(0, config);
  // Node has been idle since round 0; at round 50 it is unconfident.
  EXPECT_FALSE(node.confident(50));
  PullRequest request;  // empty summary
  const auto reactions =
      node.handle_message(PeerId(1), GossipPayload{request}, 50);
  // One PullResponse to the requester + own pull requests (§3).
  std::size_t responses = 0;
  std::size_t pulls = 0;
  for (const auto& message : reactions) {
    if (std::holds_alternative<PullResponse>(message.payload)) ++responses;
    if (std::holds_alternative<PullRequest>(message.payload)) ++pulls;
  }
  EXPECT_EQ(responses, 1u);
  EXPECT_EQ(pulls, 3u);
  // The response advertises the responder's lack of confidence.
  for (const auto& message : reactions) {
    if (const auto* resp = std::get_if<PullResponse>(&message.payload)) {
      EXPECT_FALSE(resp->confident);
    }
  }
}

TEST(ReplicaNode, StaleTimerTriggersPull) {
  auto config = test_config();
  config.pull.no_update_timeout = 5;
  auto node = make_node(0, config);
  EXPECT_TRUE(node.on_round_start(3).empty());   // not stale yet
  const auto out = node.on_round_start(7);       // stale
  EXPECT_EQ(out.size(), 3u);
  for (const auto& message : out) {
    EXPECT_TRUE(std::holds_alternative<PullRequest>(message.payload));
  }
  // Immediately after pulling, the cooldown prevents re-pulling.
  EXPECT_TRUE(node.on_round_start(8).empty());
}

TEST(ReplicaNode, RemovePropagatesTombstone) {
  auto alice = make_node(0);
  auto bob = make_node(1);
  (void)alice.publish("key", "v1", 0);
  const auto removal = alice.remove("key", 1);
  ASSERT_FALSE(removal.empty());
  EXPECT_TRUE(as_push(removal.front()).value->tombstone);
  (void)bob.handle_message(PeerId(0), removal.front().payload, 2);
  EXPECT_FALSE(bob.read("key").has_value());
  EXPECT_TRUE(bob.store().is_deleted("key"));
}

TEST(ReplicaNode, ConfidenceDecaysWithoutActivity) {
  auto config = test_config();
  config.pull.no_update_timeout = 4;
  auto node = make_node(0, config);
  EXPECT_TRUE(node.confident(0));
  EXPECT_TRUE(node.confident(4));
  EXPECT_FALSE(node.confident(5));
}

TEST(ReplicaNode, DisconnectClearsPendingState) {
  auto config = test_config();
  config.acks.enabled = true;
  config.acks.suppression_rounds = 10;
  config.pull.lazy = true;
  auto node = make_node(0, config);
  (void)node.publish("key", "v1", 0);
  (void)node.on_reconnect(1);
  EXPECT_TRUE(node.lazy_pull_armed());
  node.on_disconnect(2);
  EXPECT_FALSE(node.lazy_pull_armed());
  // Pending acks were dropped: no suppression happens later.
  (void)node.on_round_start(10);
  EXPECT_EQ(node.view().presumed_offline_count(10), 0u);
}

TEST(ReplicaNode, SmallViewLimitsFanout) {
  ReplicaNode node(PeerId(0), test_config(), common::StreamRng(1));
  const std::vector<PeerId> tiny{PeerId(1), PeerId(2)};
  node.bootstrap(tiny);
  const auto out = node.publish("key", "v1", 0);
  EXPECT_EQ(out.size(), 2u);  // fanout 5, but only 2 known peers
}

TEST(ReplicaNode, FixedNeighborsReusedAcrossUpdates) {
  auto config = test_config();
  config.target_selection = TargetSelection::kFixedNeighbors;
  auto node = make_node(0, config);
  const std::vector<PeerId> fixed{PeerId(7), PeerId(8), PeerId(9)};
  node.seed_fixed_neighbors(fixed);

  for (int update = 0; update < 3; ++update) {
    const auto out =
        node.publish("k" + std::to_string(update), "v",
                     static_cast<common::Round>(update));
    ASSERT_EQ(out.size(), 3u);
    std::unordered_set<PeerId> targets;
    for (const auto& message : out) targets.insert(message.to);
    EXPECT_TRUE(targets.contains(PeerId(7)));
    EXPECT_TRUE(targets.contains(PeerId(8)));
    EXPECT_TRUE(targets.contains(PeerId(9)));
  }
}

TEST(ReplicaNode, FixedNeighborsDrawnLazilyWhenNotSeeded) {
  auto config = test_config();
  config.target_selection = TargetSelection::kFixedNeighbors;
  auto node = make_node(0, config);
  const auto first = node.publish("a", "v", 0);
  const auto second = node.publish("b", "v", 1);
  ASSERT_EQ(first.size(), second.size());
  std::unordered_set<PeerId> first_targets, second_targets;
  for (const auto& m : first) first_targets.insert(m.to);
  for (const auto& m : second) second_targets.insert(m.to);
  EXPECT_EQ(first_targets, second_targets);  // same set every time
}

TEST(ReplicaNode, SeedFixedNeighborsExcludesSelf) {
  auto config = test_config();
  config.target_selection = TargetSelection::kFixedNeighbors;
  auto node = make_node(0, config);
  const std::vector<PeerId> fixed{PeerId(0), PeerId(1)};
  node.seed_fixed_neighbors(fixed);
  const auto out = node.publish("k", "v", 0);
  for (const auto& message : out) EXPECT_NE(message.to, PeerId(0));
}

TEST(ReplicaNode, ConfigValidationRejectsBadFanout) {
  GossipConfig config;
  config.fanout_fraction = 0.0;
  EXPECT_DEATH(
      { ReplicaNode node(PeerId(0), config, common::StreamRng(1)); }, "f_r");
}

}  // namespace
}  // namespace updp2p::gossip
