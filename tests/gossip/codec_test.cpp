#include "gossip/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "version/version_id.hpp"

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

version::VersionedValue sample_value(std::uint64_t seed = 1) {
  version::VersionedValue value;
  value.key = "calendar/fri-10am";
  value.payload = "standup @ 10:30";
  version::VersionIdFactory factory(PeerId(3), Rng(seed));
  value.id = factory.mint(12.5);
  value.history.observe(PeerId(3), 7);
  value.history.observe(PeerId(900), 2);
  value.tombstone = false;
  value.written_at = 12.5;
  return value;
}

TEST(Codec, VarintRoundTrip) {
  for (const std::uint64_t value :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16'383ULL, 16'384ULL,
        0xFFFFFFFFULL, ~0ULL}) {
    WireBytes out;
    put_varint(out, value);
    std::size_t offset = 0;
    const auto back = get_varint(out, offset);
    ASSERT_TRUE(back.has_value()) << value;
    EXPECT_EQ(*back, value);
    EXPECT_EQ(offset, out.size());
  }
}

TEST(Codec, VarintRejectsTruncation) {
  WireBytes out;
  put_varint(out, ~0ULL);
  out.pop_back();
  std::size_t offset = 0;
  EXPECT_FALSE(get_varint(out, offset).has_value());
}

TEST(Codec, PushRoundTrip) {
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(42), PeerId(65'000)};
  push.round = 5;
  const auto bytes = encode(GossipPayload{push});
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<PushMessage>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->value, push.value);
  EXPECT_EQ(back->flooding_list, push.flooding_list);
  EXPECT_EQ(back->round, 5u);
}

TEST(Codec, PushWithTombstoneRoundTrip) {
  PushMessage push;
  version::VersionedValue tombstone = sample_value();
  tombstone.tombstone = true;
  tombstone.payload.clear();
  push.value = std::move(tombstone);
  const auto decoded = decode(encode(GossipPayload{push}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<PushMessage>(*decoded).value->tombstone);
}

TEST(Codec, PullRequestRoundTrip) {
  PullRequest request;
  request.summary.observe(PeerId(1), 10);
  request.summary.observe(PeerId(2), 20);
  version::VersionIdFactory factory(PeerId(5), Rng(8));
  request.have.push_back(factory.mint(1.0));
  request.have.push_back(factory.mint(2.0));
  request.store_digest = common::Digest128{0x1234, 0x5678};
  const auto decoded = decode(encode(GossipPayload{request}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<PullRequest>(*decoded);
  EXPECT_EQ(back.summary, request.summary);
  EXPECT_EQ(back.have, request.have);
  EXPECT_EQ(back.store_digest, request.store_digest);
}

TEST(Codec, EmptyPullRequestRoundTrip) {
  const auto decoded = decode(encode(GossipPayload{PullRequest{}}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<PullRequest>(*decoded).summary.empty());
}

TEST(Codec, PullResponseRoundTrip) {
  PullResponse response;
  response.summary.observe(PeerId(7), 3);
  response.confident = false;
  response.missing.push_back(sample_value(1));
  response.missing.push_back(sample_value(2));
  const auto decoded = decode(encode(GossipPayload{response}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<PullResponse>(*decoded);
  EXPECT_EQ(back.summary, response.summary);
  EXPECT_FALSE(back.confident);
  ASSERT_EQ(back.missing.size(), 2u);
  EXPECT_EQ(back.missing[0], response.missing[0]);
  EXPECT_EQ(back.missing[1], response.missing[1]);
}

TEST(Codec, AckRoundTrip) {
  version::VersionIdFactory factory(PeerId(9), Rng(4));
  AckMessage ack{factory.mint(1.0)};
  const auto decoded = decode(encode(GossipPayload{ack}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<AckMessage>(*decoded).acked, ack.acked);
}

TEST(Codec, QueryRequestRoundTrip) {
  QueryRequest request{"catalogue/item-7", 123'456'789};
  const auto decoded = decode(encode(GossipPayload{request}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<QueryRequest>(*decoded);
  EXPECT_EQ(back.key, request.key);
  EXPECT_EQ(back.nonce, request.nonce);
}

TEST(Codec, QueryReplyRoundTrip) {
  QueryReply reply;
  reply.key = "doc";
  reply.nonce = 42;
  reply.confident = false;
  reply.versions.push_back(sample_value(5));
  reply.versions.push_back(sample_value(6));
  const auto decoded = decode(encode(GossipPayload{reply}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<QueryReply>(*decoded);
  EXPECT_EQ(back.key, "doc");
  EXPECT_EQ(back.nonce, 42u);
  EXPECT_FALSE(back.confident);
  ASSERT_EQ(back.versions.size(), 2u);
  EXPECT_EQ(back.versions[0], reply.versions[0]);
}

TEST(Codec, EmptyQueryReplyRoundTrip) {
  QueryReply reply;
  reply.key = "missing";
  reply.nonce = 1;
  const auto decoded = decode(encode(GossipPayload{reply}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<QueryReply>(*decoded).versions.empty());
}

TEST(Codec, RejectsOutOfRangePeerIds) {
  // Decoded peer ids index population-sized dense arrays; ids at or above
  // kMaxWirePeerId must be rejected before they can command huge resizes.
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(static_cast<std::uint32_t>(kMaxWirePeerId))};
  EXPECT_FALSE(decode(encode(GossipPayload{push})).has_value());

  PullRequest request;
  request.summary.observe(PeerId(static_cast<std::uint32_t>(kMaxWirePeerId)),
                          1);
  EXPECT_FALSE(decode(encode(GossipPayload{request})).has_value());

  PushMessage in_range;
  in_range.value = sample_value();
  in_range.flooding_list = {
      PeerId(static_cast<std::uint32_t>(kMaxWirePeerId - 1))};
  EXPECT_TRUE(decode(encode(GossipPayload{in_range})).has_value());
}

TEST(Codec, RejectsBadMagic) {
  auto bytes = encode(GossipPayload{PullRequest{}});
  bytes[0] = std::byte{0x00};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsWrongVersion) {
  auto bytes = encode(GossipPayload{PullRequest{}});
  bytes[2] = std::byte{99};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsUnknownKind) {
  auto bytes = encode(GossipPayload{PullRequest{}});
  bytes[3] = std::byte{77};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsEmptyAndTinyInput) {
  EXPECT_FALSE(decode({}).has_value());
  const WireBytes tiny{std::byte{0xD5}, std::byte{0x2B}};
  EXPECT_FALSE(decode(tiny).has_value());
}

TEST(Codec, RejectsEveryTruncation) {
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(2)};
  push.round = 3;
  const auto bytes = encode(GossipPayload{push});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::byte> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, SurvivesRandomGarbage) {
  Rng rng(1234);
  for (int trial = 0; trial < 2'000; ++trial) {
    WireBytes garbage(rng.uniform_below(64));
    for (auto& byte : garbage) {
      byte = static_cast<std::byte>(rng.uniform_below(256));
    }
    // Must not crash; decoding may or may not succeed (random bytes can
    // accidentally be a valid tiny frame).
    (void)decode(garbage);
  }
}

TEST(Codec, SurvivesRandomCorruptionOfValidFrames) {
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(2), PeerId(3)};
  const auto bytes = encode(GossipPayload{push});
  Rng rng(777);
  for (int trial = 0; trial < 2'000; ++trial) {
    auto corrupted = bytes;
    const std::size_t index = rng.pick_index(corrupted.size());
    corrupted[index] = static_cast<std::byte>(rng.uniform_below(256));
    (void)decode(corrupted);  // must not crash / hang
  }
}

TEST(Codec, EncodedSizeIsCompact) {
  // A push with a 100-entry list stays close to the analytical wire model.
  PushMessage push;
  push.value = sample_value();
  for (std::uint32_t i = 0; i < 100; ++i) {
    push.flooding_list.insert(PeerId(i));
  }
  const auto bytes = encode(GossipPayload{push});
  // value (~70 B) + one chunk header + 100 delta varints (all gap 1, so one
  // byte each) + framing: well under 400 bytes.
  EXPECT_LT(bytes.size(), 400u);
}

// Property: encode∘decode == identity over randomized payloads.
class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RandomPayloadRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    PushMessage push;
    version::VersionedValue value;
    value.key = "k" + std::to_string(rng.uniform_below(1000));
    value.payload.assign(rng.uniform_below(200), 'x');
    version::VersionIdFactory factory(
        PeerId(static_cast<std::uint32_t>(rng.uniform_below(100))),
        rng.split());
    value.id = factory.mint(rng.uniform01());
    const auto entries = rng.uniform_below(10);
    for (std::uint64_t i = 0; i < entries; ++i) {
      value.history.observe(
          PeerId(static_cast<std::uint32_t>(rng.uniform_below(1'000'000))),
          rng.uniform_below(1'000'000) + 1);
    }
    value.tombstone = rng.bernoulli(0.2);
    value.written_at = rng.uniform01() * 1e6;
    push.value = std::move(value);
    push.round = static_cast<common::Round>(rng.uniform_below(100));
    const auto peers = rng.uniform_below(50);
    for (std::uint64_t i = 0; i < peers; ++i) {
      push.flooding_list.insert(
          PeerId(static_cast<std::uint32_t>(rng.uniform_below(1'000'000))));
    }
    const auto decoded = decode(encode(GossipPayload{push}));
    ASSERT_TRUE(decoded.has_value());
    const auto& back = std::get<PushMessage>(*decoded);
    EXPECT_EQ(back.value, push.value);
    EXPECT_EQ(back.flooding_list, push.flooding_list);
    EXPECT_EQ(back.round, push.round);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 42, 1000));

// --- zero-copy wire path ----------------------------------------------------

GossipPayload sample_push(std::uint64_t seed = 1) {
  PushMessage push;
  push.value = sample_value(seed);
  push.flooding_list = {PeerId(1), PeerId(42), PeerId(65'000)};
  push.round = 5;
  return GossipPayload{std::move(push)};
}

TEST(Codec, EncodedSizeMatchesEncodeExactly) {
  // The invariant OutboundMessage::size_bytes rests on, across payload
  // shapes: empty lists, multi-chunk lists, bitmap-dense lists, every kind.
  std::vector<GossipPayload> payloads;
  payloads.push_back(sample_push());
  payloads.emplace_back(PushMessage{});  // all-default fields
  PushMessage dense;
  dense.value = sample_value(2);
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    dense.flooding_list.insert(PeerId(65'536 + i));  // bitmap chunk
  }
  payloads.emplace_back(std::move(dense));
  PullRequest request;
  request.summary.observe(PeerId(1), 10);
  request.have.push_back(sample_value(3).id);
  payloads.emplace_back(std::move(request));
  PullResponse response;
  response.missing.push_back(sample_value(4));
  payloads.emplace_back(std::move(response));
  payloads.emplace_back(AckMessage{sample_value(5).id});
  payloads.emplace_back(QueryRequest{"k", 1 << 20});
  QueryReply reply;
  reply.key = "k";
  reply.nonce = 7;
  reply.versions.push_back(sample_value(6));
  payloads.emplace_back(std::move(reply));

  for (const GossipPayload& payload : payloads) {
    EXPECT_EQ(encoded_size(payload), encode(payload).size())
        << payload_kind(payload);
  }
}

TEST(Codec, EncodeIntoReusesWarmCapacity) {
  const GossipPayload payload = sample_push();
  const WireBytes reference = encode(payload);
  WireBytes warm;
  encode_into(payload, warm);
  EXPECT_EQ(warm, reference);
  const std::byte* data = warm.data();
  const std::size_t capacity = warm.capacity();
  encode_into(payload, warm);  // second fill must reuse the allocation
  EXPECT_EQ(warm, reference);
  EXPECT_EQ(warm.data(), data);
  EXPECT_EQ(warm.capacity(), capacity);
}

TEST(Codec, ProbeReadsKindAndIdentityWithoutFullDecode) {
  const GossipPayload push = sample_push();
  const auto push_probe = probe_frame(encode(push));
  ASSERT_TRUE(push_probe.has_value());
  EXPECT_EQ(push_probe->kind, WireKind::kPush);
  EXPECT_EQ(push_probe->version, std::get<PushMessage>(push).value->id);

  const AckMessage ack{sample_value(9).id};
  const auto ack_probe = probe_frame(encode(GossipPayload{ack}));
  ASSERT_TRUE(ack_probe.has_value());
  EXPECT_EQ(ack_probe->kind, WireKind::kAck);
  EXPECT_EQ(ack_probe->version, ack.acked);

  const auto query_probe =
      probe_frame(encode(GossipPayload{QueryRequest{"k", 99}}));
  ASSERT_TRUE(query_probe.has_value());
  EXPECT_EQ(query_probe->kind, WireKind::kQueryRequest);
  EXPECT_EQ(query_probe->nonce, 99u);

  EXPECT_FALSE(probe_frame({}).has_value());
}

TEST(Codec, ProbeSucceedsOnPushWithGarbageTail) {
  // The trust contract in one frame: the probed prefix is intact, the
  // flooding list is garbage. The probe must accept (duplicate
  // classification never reads the tail); the full decode must reject.
  WireBytes frame = encode(sample_push());
  frame.back() = std::byte{0xFF};  // corrupt the peerset chunk count region
  frame.push_back(std::byte{0xEE});
  const auto probe = probe_frame(frame);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->kind, WireKind::kPush);
  EXPECT_EQ(probe->version, std::get<PushMessage>(sample_push()).value->id);
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Codec, DecodePushIntoStreamsTheListAndClearsOnFailure) {
  const GossipPayload payload = sample_push();
  const WireBytes frame = encode(payload);
  common::ChunkedPeerSet list;
  list.insert(PeerId(7777));  // stale scratch contents must vanish
  const auto push = decode_push_into(frame, list);
  ASSERT_TRUE(push.has_value());
  const auto& expected = std::get<PushMessage>(payload);
  EXPECT_EQ(push->value, *expected.value);
  EXPECT_EQ(push->round, expected.round);
  EXPECT_EQ(list, expected.flooding_list.set());

  // Non-push frames and malformed frames both reject with a cleared list.
  const auto not_push =
      decode_push_into(encode(GossipPayload{PullRequest{}}), list);
  EXPECT_FALSE(not_push.has_value());
  EXPECT_TRUE(list.empty());
  WireBytes truncated = frame;
  truncated.pop_back();
  list.insert(PeerId(8888));
  EXPECT_FALSE(decode_push_into(truncated, list).has_value());
  EXPECT_TRUE(list.empty());
}

TEST(Codec, SharedFrameSharesOneBufferAcrossCopies) {
  SharedFrame empty;
  EXPECT_FALSE(empty);
  EXPECT_EQ(empty.size_bytes(), 0u);
  EXPECT_TRUE(empty.bytes().empty());

  SharedFrame frame(encode(sample_push()));
  ASSERT_TRUE(frame);
  const SharedFrame copy = frame;  // refcount bump, same bytes
  EXPECT_EQ(copy.bytes().data(), frame.bytes().data());
  EXPECT_EQ(copy.size_bytes(), frame.size_bytes());
}

TEST(Codec, FrameCacheInternsTheFanOut) {
  // A fan-out to N targets re-sends the SAME shared value/list/round: one
  // encode, N-1 cache hits, every hit aliasing one buffer.
  FrameCache cache;
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(2)};
  push.round = 9;
  const GossipPayload fanout{push};  // shares value + list with `push`

  const SharedFrame first = cache.intern(fanout);
  ASSERT_TRUE(first);
  EXPECT_EQ(cache.encodes(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  for (int target = 0; target < 5; ++target) {
    const SharedFrame again = cache.intern(fanout);
    EXPECT_EQ(again.bytes().data(), first.bytes().data());
  }
  EXPECT_EQ(cache.encodes(), 1u);
  EXPECT_EQ(cache.hits(), 5u);
  EXPECT_EQ(WireBytes(first.bytes().begin(), first.bytes().end()),
            encode(fanout));
}

TEST(Codec, FrameCacheMissesOnAnyKeyChange) {
  FrameCache cache;
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1)};
  push.round = 1;
  const GossipPayload original{push};
  (void)cache.intern(original);

  // Same contents, different shared allocation: identity keying must miss
  // (contents-equal but distinct objects may diverge later under COW).
  PushMessage rebuilt;
  rebuilt.value = sample_value();
  rebuilt.flooding_list = {PeerId(1)};
  rebuilt.round = 1;
  (void)cache.intern(GossipPayload{rebuilt});
  EXPECT_EQ(cache.encodes(), 2u);

  // Different round under the same value/list: miss, and the encoded
  // bytes must be the NEW round's bytes.
  PushMessage next_round = push;
  next_round.round = 2;
  const SharedFrame frame = cache.intern(GossipPayload{next_round});
  EXPECT_EQ(cache.encodes(), 3u);
  EXPECT_EQ(WireBytes(frame.bytes().begin(), frame.bytes().end()),
            encode(GossipPayload{next_round}));

  // Non-push payloads are never cached.
  (void)cache.intern(GossipPayload{AckMessage{}});
  (void)cache.intern(GossipPayload{AckMessage{}});
  EXPECT_EQ(cache.encodes(), 5u);
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace updp2p::gossip
