#include "gossip/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "version/version_id.hpp"

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

version::VersionedValue sample_value(std::uint64_t seed = 1) {
  version::VersionedValue value;
  value.key = "calendar/fri-10am";
  value.payload = "standup @ 10:30";
  version::VersionIdFactory factory(PeerId(3), Rng(seed));
  value.id = factory.mint(12.5);
  value.history.observe(PeerId(3), 7);
  value.history.observe(PeerId(900), 2);
  value.tombstone = false;
  value.written_at = 12.5;
  return value;
}

TEST(Codec, VarintRoundTrip) {
  for (const std::uint64_t value :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16'383ULL, 16'384ULL,
        0xFFFFFFFFULL, ~0ULL}) {
    WireBytes out;
    put_varint(out, value);
    std::size_t offset = 0;
    const auto back = get_varint(out, offset);
    ASSERT_TRUE(back.has_value()) << value;
    EXPECT_EQ(*back, value);
    EXPECT_EQ(offset, out.size());
  }
}

TEST(Codec, VarintRejectsTruncation) {
  WireBytes out;
  put_varint(out, ~0ULL);
  out.pop_back();
  std::size_t offset = 0;
  EXPECT_FALSE(get_varint(out, offset).has_value());
}

TEST(Codec, PushRoundTrip) {
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(42), PeerId(65'000)};
  push.round = 5;
  const auto bytes = encode(GossipPayload{push});
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<PushMessage>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->value, push.value);
  EXPECT_EQ(back->flooding_list, push.flooding_list);
  EXPECT_EQ(back->round, 5u);
}

TEST(Codec, PushWithTombstoneRoundTrip) {
  PushMessage push;
  version::VersionedValue tombstone = sample_value();
  tombstone.tombstone = true;
  tombstone.payload.clear();
  push.value = std::move(tombstone);
  const auto decoded = decode(encode(GossipPayload{push}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<PushMessage>(*decoded).value->tombstone);
}

TEST(Codec, PullRequestRoundTrip) {
  PullRequest request;
  request.summary.observe(PeerId(1), 10);
  request.summary.observe(PeerId(2), 20);
  version::VersionIdFactory factory(PeerId(5), Rng(8));
  request.have.push_back(factory.mint(1.0));
  request.have.push_back(factory.mint(2.0));
  request.store_digest = common::Digest128{0x1234, 0x5678};
  const auto decoded = decode(encode(GossipPayload{request}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<PullRequest>(*decoded);
  EXPECT_EQ(back.summary, request.summary);
  EXPECT_EQ(back.have, request.have);
  EXPECT_EQ(back.store_digest, request.store_digest);
}

TEST(Codec, EmptyPullRequestRoundTrip) {
  const auto decoded = decode(encode(GossipPayload{PullRequest{}}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<PullRequest>(*decoded).summary.empty());
}

TEST(Codec, PullResponseRoundTrip) {
  PullResponse response;
  response.summary.observe(PeerId(7), 3);
  response.confident = false;
  response.missing.push_back(sample_value(1));
  response.missing.push_back(sample_value(2));
  const auto decoded = decode(encode(GossipPayload{response}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<PullResponse>(*decoded);
  EXPECT_EQ(back.summary, response.summary);
  EXPECT_FALSE(back.confident);
  ASSERT_EQ(back.missing.size(), 2u);
  EXPECT_EQ(back.missing[0], response.missing[0]);
  EXPECT_EQ(back.missing[1], response.missing[1]);
}

TEST(Codec, AckRoundTrip) {
  version::VersionIdFactory factory(PeerId(9), Rng(4));
  AckMessage ack{factory.mint(1.0)};
  const auto decoded = decode(encode(GossipPayload{ack}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<AckMessage>(*decoded).acked, ack.acked);
}

TEST(Codec, QueryRequestRoundTrip) {
  QueryRequest request{"catalogue/item-7", 123'456'789};
  const auto decoded = decode(encode(GossipPayload{request}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<QueryRequest>(*decoded);
  EXPECT_EQ(back.key, request.key);
  EXPECT_EQ(back.nonce, request.nonce);
}

TEST(Codec, QueryReplyRoundTrip) {
  QueryReply reply;
  reply.key = "doc";
  reply.nonce = 42;
  reply.confident = false;
  reply.versions.push_back(sample_value(5));
  reply.versions.push_back(sample_value(6));
  const auto decoded = decode(encode(GossipPayload{reply}));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<QueryReply>(*decoded);
  EXPECT_EQ(back.key, "doc");
  EXPECT_EQ(back.nonce, 42u);
  EXPECT_FALSE(back.confident);
  ASSERT_EQ(back.versions.size(), 2u);
  EXPECT_EQ(back.versions[0], reply.versions[0]);
}

TEST(Codec, EmptyQueryReplyRoundTrip) {
  QueryReply reply;
  reply.key = "missing";
  reply.nonce = 1;
  const auto decoded = decode(encode(GossipPayload{reply}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<QueryReply>(*decoded).versions.empty());
}

TEST(Codec, RejectsOutOfRangePeerIds) {
  // Decoded peer ids index population-sized dense arrays; ids at or above
  // kMaxWirePeerId must be rejected before they can command huge resizes.
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(static_cast<std::uint32_t>(kMaxWirePeerId))};
  EXPECT_FALSE(decode(encode(GossipPayload{push})).has_value());

  PullRequest request;
  request.summary.observe(PeerId(static_cast<std::uint32_t>(kMaxWirePeerId)),
                          1);
  EXPECT_FALSE(decode(encode(GossipPayload{request})).has_value());

  PushMessage in_range;
  in_range.value = sample_value();
  in_range.flooding_list = {
      PeerId(static_cast<std::uint32_t>(kMaxWirePeerId - 1))};
  EXPECT_TRUE(decode(encode(GossipPayload{in_range})).has_value());
}

TEST(Codec, RejectsBadMagic) {
  auto bytes = encode(GossipPayload{PullRequest{}});
  bytes[0] = std::byte{0x00};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsWrongVersion) {
  auto bytes = encode(GossipPayload{PullRequest{}});
  bytes[2] = std::byte{99};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsUnknownKind) {
  auto bytes = encode(GossipPayload{PullRequest{}});
  bytes[3] = std::byte{77};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsEmptyAndTinyInput) {
  EXPECT_FALSE(decode({}).has_value());
  const WireBytes tiny{std::byte{0xD5}, std::byte{0x2B}};
  EXPECT_FALSE(decode(tiny).has_value());
}

TEST(Codec, RejectsEveryTruncation) {
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(2)};
  push.round = 3;
  const auto bytes = encode(GossipPayload{push});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::byte> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, SurvivesRandomGarbage) {
  Rng rng(1234);
  for (int trial = 0; trial < 2'000; ++trial) {
    WireBytes garbage(rng.uniform_below(64));
    for (auto& byte : garbage) {
      byte = static_cast<std::byte>(rng.uniform_below(256));
    }
    // Must not crash; decoding may or may not succeed (random bytes can
    // accidentally be a valid tiny frame).
    (void)decode(garbage);
  }
}

TEST(Codec, SurvivesRandomCorruptionOfValidFrames) {
  PushMessage push;
  push.value = sample_value();
  push.flooding_list = {PeerId(1), PeerId(2), PeerId(3)};
  const auto bytes = encode(GossipPayload{push});
  Rng rng(777);
  for (int trial = 0; trial < 2'000; ++trial) {
    auto corrupted = bytes;
    const std::size_t index = rng.pick_index(corrupted.size());
    corrupted[index] = static_cast<std::byte>(rng.uniform_below(256));
    (void)decode(corrupted);  // must not crash / hang
  }
}

TEST(Codec, EncodedSizeIsCompact) {
  // A push with a 100-entry list stays close to the analytical wire model.
  PushMessage push;
  push.value = sample_value();
  for (std::uint32_t i = 0; i < 100; ++i) {
    push.flooding_list.insert(PeerId(i));
  }
  const auto bytes = encode(GossipPayload{push});
  // value (~70 B) + one chunk header + 100 delta varints (all gap 1, so one
  // byte each) + framing: well under 400 bytes.
  EXPECT_LT(bytes.size(), 400u);
}

// Property: encode∘decode == identity over randomized payloads.
class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperty, RandomPayloadRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    PushMessage push;
    version::VersionedValue value;
    value.key = "k" + std::to_string(rng.uniform_below(1000));
    value.payload.assign(rng.uniform_below(200), 'x');
    version::VersionIdFactory factory(
        PeerId(static_cast<std::uint32_t>(rng.uniform_below(100))),
        rng.split());
    value.id = factory.mint(rng.uniform01());
    const auto entries = rng.uniform_below(10);
    for (std::uint64_t i = 0; i < entries; ++i) {
      value.history.observe(
          PeerId(static_cast<std::uint32_t>(rng.uniform_below(1'000'000))),
          rng.uniform_below(1'000'000) + 1);
    }
    value.tombstone = rng.bernoulli(0.2);
    value.written_at = rng.uniform01() * 1e6;
    push.value = std::move(value);
    push.round = static_cast<common::Round>(rng.uniform_below(100));
    const auto peers = rng.uniform_below(50);
    for (std::uint64_t i = 0; i < peers; ++i) {
      push.flooding_list.insert(
          PeerId(static_cast<std::uint32_t>(rng.uniform_below(1'000'000))));
    }
    const auto decoded = decode(encode(GossipPayload{push}));
    ASSERT_TRUE(decoded.has_value());
    const auto& back = std::get<PushMessage>(*decoded);
    EXPECT_EQ(back.value, push.value);
    EXPECT_EQ(back.flooding_list, push.flooding_list);
    EXPECT_EQ(back.round, push.round);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 42, 1000));

}  // namespace
}  // namespace updp2p::gossip
