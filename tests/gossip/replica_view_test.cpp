#include "gossip/replica_view.hpp"

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>

namespace updp2p::gossip {
namespace {

using common::PeerId;
using common::Rng;

TEST(ReplicaView, AddAndContains) {
  ReplicaView view{PeerId(0)};
  EXPECT_TRUE(view.empty());
  EXPECT_TRUE(view.add(PeerId(1)));
  EXPECT_FALSE(view.add(PeerId(1)));  // duplicate
  EXPECT_TRUE(view.contains(PeerId(1)));
  EXPECT_EQ(view.size(), 1u);
}

TEST(ReplicaView, NeverStoresSelf) {
  ReplicaView view{PeerId(0)};
  EXPECT_FALSE(view.add(PeerId(0)));
  EXPECT_FALSE(view.contains(PeerId(0)));
}

TEST(ReplicaView, MergeCountsNewMembers) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  const std::array<PeerId, 4> incoming{PeerId(0), PeerId(1), PeerId(2),
                                       PeerId(3)};
  EXPECT_EQ(view.merge(incoming), 2u);  // 2 and 3 are new; 0 is self
  EXPECT_EQ(view.size(), 3u);
}

TEST(ReplicaView, SampleReturnsDistinctMembers) {
  ReplicaView view{PeerId(0)};
  for (std::uint32_t i = 1; i <= 50; ++i) view.add(PeerId(i));
  Rng rng(1);
  const auto sample = view.sample(rng, 10, {});
  EXPECT_EQ(sample.size(), 10u);
  std::unordered_set<PeerId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const PeerId peer : sample) EXPECT_TRUE(view.contains(peer));
}

TEST(ReplicaView, SampleHonoursExclusions) {
  ReplicaView view{PeerId(0)};
  for (std::uint32_t i = 1; i <= 10; ++i) view.add(PeerId(i));
  Rng rng(2);
  std::unordered_set<PeerId> exclude{PeerId(1), PeerId(2), PeerId(3)};
  for (int trial = 0; trial < 50; ++trial) {
    for (const PeerId peer : view.sample(rng, 7, exclude)) {
      EXPECT_FALSE(exclude.contains(peer));
    }
  }
}

TEST(ReplicaView, SampleReturnsFewerWhenViewSmall) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  view.add(PeerId(2));
  Rng rng(3);
  EXPECT_EQ(view.sample(rng, 10, {}).size(), 2u);
}

TEST(ReplicaView, SampleEmptyCases) {
  ReplicaView view{PeerId(0)};
  Rng rng(4);
  EXPECT_TRUE(view.sample(rng, 5, {}).empty());
  view.add(PeerId(1));
  EXPECT_TRUE(view.sample(rng, 0, {}).empty());
  EXPECT_TRUE(view.sample(rng, 5, {PeerId(1)}).empty());
}

TEST(ReplicaView, PresumedOfflineSkippedUntilExpiry) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  view.add(PeerId(2));
  view.mark_presumed_offline(PeerId(1), /*until_round=*/10);
  // Queries advance monotonically, as rounds do in a run: expired deadlines
  // are purged lazily as `now` moves forward.
  EXPECT_TRUE(view.is_presumed_offline(PeerId(1), 5));
  EXPECT_EQ(view.presumed_offline_count(5), 1u);

  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto sample = view.sample(rng, 2, {}, /*now=*/5);
    ASSERT_EQ(sample.size(), 1u);
    EXPECT_EQ(sample[0], PeerId(2));
  }

  EXPECT_FALSE(view.is_presumed_offline(PeerId(1), 10));
  EXPECT_EQ(view.presumed_offline_count(10), 0u);
  // After expiry peer 1 is eligible again.
  bool seen1 = false;
  for (int trial = 0; trial < 30 && !seen1; ++trial) {
    for (const PeerId peer : view.sample(rng, 2, {}, /*now=*/10)) {
      seen1 |= peer == PeerId(1);
    }
  }
  EXPECT_TRUE(seen1);
}

TEST(ReplicaView, OfflineQueriesAreExactForRecordedMarks) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  view.mark_presumed_offline(PeerId(1), /*until_round=*/10);
  // The predicate is a pure read: a mark still recorded answers any `now`
  // exactly, including queries that rewind past its expiry.
  EXPECT_FALSE(view.is_presumed_offline(PeerId(1), 14));
  EXPECT_TRUE(view.is_presumed_offline(PeerId(1), 5));
  // Counting purges expired marks; a purged mark's expiry is forgotten, so
  // a rewound query then reads the peer as online (drivers are monotonic).
  EXPECT_EQ(view.presumed_offline_count(14), 0u);
  EXPECT_FALSE(view.is_presumed_offline(PeerId(1), 5));
}

TEST(ReplicaView, ClearPresumedOffline) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  view.mark_presumed_offline(PeerId(1), 100);
  view.clear_presumed_offline(PeerId(1));
  EXPECT_FALSE(view.is_presumed_offline(PeerId(1), 5));
}

TEST(ReplicaView, MarkPresumedOfflineKeepsLatestDeadline) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  view.mark_presumed_offline(PeerId(1), 10);
  view.mark_presumed_offline(PeerId(1), 5);  // earlier mark must not shorten
  EXPECT_TRUE(view.is_presumed_offline(PeerId(1), 7));
}

TEST(ReplicaView, PreferredPeersAreOversampled) {
  ReplicaView view{PeerId(0)};
  for (std::uint32_t i = 1; i <= 20; ++i) view.add(PeerId(i));
  view.mark_preferred(PeerId(1));
  EXPECT_TRUE(view.is_preferred(PeerId(1)));

  Rng rng(6);
  int preferred_hits = 0;
  int other_hits = 0;
  constexpr int kTrials = 4'000;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (const PeerId peer : view.sample(rng, 1, {})) {
      if (peer == PeerId(1)) {
        ++preferred_hits;
      } else if (peer == PeerId(2)) {
        ++other_hits;
      }
    }
  }
  // Peer 1 appears twice in the pool: roughly double the frequency.
  EXPECT_GT(preferred_hits, other_hits * 3 / 2);
}

TEST(ReplicaView, PreferredDoesNotDuplicateInOneSample) {
  ReplicaView view{PeerId(0)};
  view.add(PeerId(1));
  view.add(PeerId(2));
  view.mark_preferred(PeerId(1));
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = view.sample(rng, 2, {});
    std::unordered_set<PeerId> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
  }
}

}  // namespace
}  // namespace updp2p::gossip
