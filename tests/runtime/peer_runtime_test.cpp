// PeerRuntime behaviour over the deterministic inproc network: retry arming
// and cancellation, exponential backoff retransmission, attempt exhaustion,
// round cadence, and offline/online session semantics. Every test runs in
// virtual time — no sleeps, no clocks.
#include "runtime/peer_runtime.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/inproc_transport.hpp"

namespace updp2p::runtime {
namespace {

/// Two-peer fixture: everything travels through an InprocNetwork whose
/// latency/loss the individual tests pick.
struct Pair {
  explicit Pair(net::InprocNetworkConfig net_config = make_net_config(),
                RuntimeConfig runtime_config = make_runtime_config())
      : network(net_config),
        ta(network.attach(common::PeerId(0))),
        tb(network.attach(common::PeerId(1))),
        a(runtime_config, *ta),
        b(runtime_config, *tb) {
    const common::PeerId peer_a[] = {common::PeerId(1)};
    const common::PeerId peer_b[] = {common::PeerId(0)};
    a.bootstrap(peer_a);
    b.bootstrap(peer_b);
  }

  static net::InprocNetworkConfig make_net_config() {
    net::InprocNetworkConfig config;
    config.latency = std::make_shared<net::ConstantLatency>(0.01);
    return config;
  }

  static RuntimeConfig make_runtime_config() {
    RuntimeConfig config;
    config.gossip.fanout_fraction = 1.0;
    config.gossip.estimated_total_replicas = 2;
    config.gossip.acks.enabled = true;
    config.retry.initial_timeout = 0.2;
    config.retry.multiplier = 2.0;
    config.retry.max_timeout = 2.0;
    config.retry.jitter = 0.0;  // exact schedules for assertions
    config.retry.max_attempts = 4;
    config.round_duration = 1.0;
    return config;
  }

  void step_to(common::SimTime to, common::SimTime dt = 0.01) {
    while (now < to) {
      now = std::min(now + dt, to);
      network.advance_to(now);
      a.poll(now);
      b.poll(now);
    }
  }

  net::InprocNetwork network;
  std::unique_ptr<net::InprocTransport> ta;
  std::unique_ptr<net::InprocTransport> tb;
  PeerRuntime a;
  PeerRuntime b;
  common::SimTime now = 0.0;
};

TEST(PeerRuntime, PublishPropagatesAndAckCancelsRetry) {
  Pair pair;
  const auto id = pair.a.publish("key", "value");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(pair.a.pending_retries(), 1u);  // push awaiting its ack

  pair.step_to(0.1);
  EXPECT_TRUE(pair.b.node().knows_version(*id));
  EXPECT_EQ(pair.a.pending_retries(), 0u);
  EXPECT_EQ(pair.a.stats().retries_cancelled, 1u);
  EXPECT_EQ(pair.a.stats().retransmits, 0u);  // ack beat the timer
}

TEST(PeerRuntime, LostPushIsRetransmittedWithBackoff) {
  // Loss probability 1 on every link: nothing ever arrives, so the push
  // retransmits on the exact backoff schedule until the budget runs out.
  auto net_config = Pair::make_net_config();
  net_config.loss_probability = 1.0;
  Pair pair(net_config);

  const auto id = pair.a.publish("key", "value");
  ASSERT_TRUE(id.has_value());
  const std::uint64_t initial_out = pair.a.stats().datagrams_out;

  // Backoff (no jitter): retransmits at 0.2, 0.6 (+0.4), 1.4 (+0.8); the
  // fourth timer fire at 3.0 (+1.6) finds the budget spent and exhausts.
  pair.step_to(0.15);
  EXPECT_EQ(pair.a.stats().retransmits, 0u);
  pair.step_to(0.3);
  EXPECT_EQ(pair.a.stats().retransmits, 1u);
  pair.step_to(0.7);
  EXPECT_EQ(pair.a.stats().retransmits, 2u);
  pair.step_to(1.5);
  EXPECT_EQ(pair.a.stats().retransmits, 3u);  // max_attempts=4 → 3 retries
  EXPECT_EQ(pair.a.stats().retries_exhausted, 0u);
  EXPECT_EQ(pair.a.pending_retries(), 1u);  // final timer still pending
  pair.step_to(3.1);
  EXPECT_EQ(pair.a.stats().retries_exhausted, 1u);
  EXPECT_EQ(pair.a.pending_retries(), 0u);
  EXPECT_EQ(pair.a.stats().datagrams_out, initial_out + 3);

  // Budget is spent: no further retransmissions ever.
  pair.step_to(10.0);
  EXPECT_EQ(pair.a.stats().retransmits, 3u);
  EXPECT_FALSE(pair.b.node().knows_version(*id));
}

TEST(PeerRuntime, RetryDeliversThroughTransientLoss) {
  // The end-to-end story the retry layer exists for: a lossy link where a
  // retransmission (not the original send) delivers the push and its ack
  // cancels the retry. Which seeds produce that exact interleaving depends
  // on upstream RNG draw order, so scan a small deterministic seed range
  // and require the scenario to occur; every seed must also satisfy the
  // retry invariants.
  bool saw_retransmit_then_ack = false;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto net_config = Pair::make_net_config();
    net_config.loss_probability = 0.5;
    net_config.seed = seed;
    auto runtime_config = Pair::make_runtime_config();
    runtime_config.retry.max_attempts = 8;
    Pair pair(net_config, runtime_config);

    const auto id = pair.a.publish("key", "value");
    ASSERT_TRUE(id.has_value());
    pair.step_to(30.0);

    const RuntimeStats& stats = pair.a.stats();
    // Every armed retry reaches a terminal outcome (ack or exhaustion);
    // later rounds may arm more (re-pushes, pull-phase requests), so the
    // counts are lower bounds, not exact.
    EXPECT_GE(stats.retries_cancelled + stats.retries_exhausted, 1u)
        << "seed " << seed;
    // An acked push implies the peer actually received it.
    if (stats.retries_cancelled >= 1) {
      EXPECT_TRUE(pair.b.node().knows_version(*id)) << "seed " << seed;
    }
    if (stats.retransmits > 0 && stats.retries_cancelled >= 1) {
      saw_retransmit_then_ack = true;
    }
  }
  EXPECT_TRUE(saw_retransmit_then_ack)
      << "no seed in range exercised retransmit-then-ack";
}

TEST(PeerRuntime, PushWithoutAcksIsNotRetried) {
  auto runtime_config = Pair::make_runtime_config();
  runtime_config.gossip.acks.enabled = false;
  Pair pair(Pair::make_net_config(), runtime_config);
  ASSERT_TRUE(pair.a.publish("key", "value").has_value());
  EXPECT_EQ(pair.a.pending_retries(), 0u);
}

TEST(PeerRuntime, MaxAttemptsOneDisablesRetransmission) {
  auto net_config = Pair::make_net_config();
  net_config.loss_probability = 1.0;
  auto runtime_config = Pair::make_runtime_config();
  runtime_config.retry.max_attempts = 1;
  Pair pair(net_config, runtime_config);
  ASSERT_TRUE(pair.a.publish("key", "value").has_value());
  EXPECT_EQ(pair.a.pending_retries(), 0u);
  pair.step_to(5.0);
  EXPECT_EQ(pair.a.stats().retransmits, 0u);
}

TEST(PeerRuntime, GoOfflineDropsPendingRetries) {
  auto net_config = Pair::make_net_config();
  net_config.loss_probability = 1.0;
  Pair pair(net_config);
  ASSERT_TRUE(pair.a.publish("key", "value").has_value());
  EXPECT_EQ(pair.a.pending_retries(), 1u);
  pair.a.go_offline();
  EXPECT_EQ(pair.a.pending_retries(), 0u);
  EXPECT_FALSE(pair.a.online());
  // No zombie retransmits after the disconnect.
  pair.step_to(5.0);
  EXPECT_EQ(pair.a.stats().retransmits, 0u);
}

TEST(PeerRuntime, OfflinePeerCannotPublishOrQuery) {
  Pair pair;
  pair.a.go_offline();
  EXPECT_FALSE(pair.a.publish("key", "value").has_value());
  EXPECT_FALSE(pair.a.remove("key"));
  EXPECT_EQ(pair.a.begin_query("key", gossip::QueryRule::kLatestVersion, 1),
            0u);
}

TEST(PeerRuntime, ReconnectRecoversMissedUpdateViaPull) {
  Pair pair;
  pair.b.go_offline();
  const auto id = pair.a.publish("key", "missed-while-down");
  ASSERT_TRUE(id.has_value());
  // The push phase happens (and exhausts its retries) while b is gone.
  pair.step_to(6.0);
  EXPECT_FALSE(pair.b.node().knows_version(*id));

  pair.b.go_online();  // §3 reconnect: b pulls immediately
  pair.step_to(8.0);
  EXPECT_TRUE(pair.b.node().knows_version(*id));
}

TEST(PeerRuntime, RoundTimerTicksOnRoundBoundaries) {
  Pair pair;
  pair.step_to(3.5);
  EXPECT_EQ(pair.a.stats().rounds_ticked, 3u);
  EXPECT_EQ(pair.a.current_round(), common::Round{3});

  // A coarse poll that jumps several rounds catches up on all of them.
  pair.step_to(7.0, /*dt=*/3.0);
  EXPECT_EQ(pair.a.stats().rounds_ticked, 7u);
}

TEST(PeerRuntime, OfflineRoundsAreNotReplayedOnReconnect) {
  Pair pair;
  pair.a.go_offline();
  pair.step_to(5.0);
  const auto ticked_before = pair.a.stats().rounds_ticked;
  pair.a.go_online();
  pair.step_to(6.5);
  // Only the rounds after the reconnect tick — not the five missed ones.
  EXPECT_LE(pair.a.stats().rounds_ticked, ticked_before + 2);
}

TEST(PeerRuntime, DecodeErrorsAreCountedAndSkipped) {
  Pair pair;
  // Inject garbage straight through the transport (framed fine at the
  // transport layer, rubbish at the codec layer).
  const std::vector<std::byte> junk = {std::byte{0xde}, std::byte{0xad}};
  ASSERT_TRUE(pair.tb->send(common::PeerId(0), junk));
  pair.step_to(0.1);
  EXPECT_EQ(pair.a.stats().decode_errors, 1u);
}

TEST(PeerRuntime, QueryReplyCancelsQueryRetry) {
  Pair pair;
  const auto id = pair.a.publish("key", "value");
  ASSERT_TRUE(id.has_value());
  pair.step_to(0.2);

  const std::uint64_t nonce =
      pair.b.begin_query("key", gossip::QueryRule::kLatestVersion, 1);
  ASSERT_NE(nonce, 0u);
  EXPECT_GE(pair.b.pending_retries(), 1u);
  pair.step_to(0.4);
  EXPECT_EQ(pair.b.pending_retries(), 0u);
  EXPECT_GE(pair.b.stats().retries_cancelled, 1u);
  const auto outcome = pair.b.poll_query(nonce);
  EXPECT_TRUE(outcome.complete);
  ASSERT_TRUE(outcome.value.has_value());
  EXPECT_EQ(outcome.value->id, *id);
}

TEST(PeerRuntime, PollTimeMustBeMonotone) {
  Pair pair;
  pair.a.poll(1.0);
  EXPECT_DEATH(pair.a.poll(0.5), "monotone");
}

}  // namespace
}  // namespace updp2p::runtime
