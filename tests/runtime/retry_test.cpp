#include "runtime/retry.hpp"

#include <gtest/gtest.h>

namespace updp2p::runtime {
namespace {

TEST(RetryPolicy, BaseDelayGrowsExponentiallyThenCaps) {
  RetryPolicy policy;
  policy.initial_timeout = 0.5;
  policy.multiplier = 2.0;
  policy.max_timeout = 3.0;
  EXPECT_DOUBLE_EQ(policy.base_delay(0), 0.5);
  EXPECT_DOUBLE_EQ(policy.base_delay(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.base_delay(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.base_delay(3), 3.0);   // capped (would be 4.0)
  EXPECT_DOUBLE_EQ(policy.base_delay(10), 3.0);  // stays capped
  EXPECT_DOUBLE_EQ(policy.base_delay(60), 3.0);  // no overflow blowup
}

TEST(RetryPolicy, UnitMultiplierIsConstantBackoff) {
  RetryPolicy policy;
  policy.initial_timeout = 0.25;
  policy.multiplier = 1.0;
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.base_delay(attempt), 0.25);
  }
}

TEST(RetryPolicy, JitterStaysWithinSymmetricBand) {
  RetryPolicy policy;
  policy.initial_timeout = 1.0;
  policy.jitter = 0.2;
  common::StreamRng rng(7, 1, 2);
  for (int i = 0; i < 10'000; ++i) {
    const double d = policy.delay(0, rng);
    EXPECT_GE(d, 0.8);
    EXPECT_LE(d, 1.2);
  }
}

TEST(RetryPolicy, ZeroJitterIsDeterministicBase) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  common::StreamRng rng(7, 1, 2);
  EXPECT_DOUBLE_EQ(policy.delay(1, rng), policy.base_delay(1));
}

TEST(RetryPolicy, JitteredDelaysReproduceUnderSameStream) {
  RetryPolicy policy;
  const auto draw = [&policy] {
    common::StreamRng rng(42, 3, 0xBACC);
    std::vector<double> delays;
    for (unsigned attempt = 0; attempt < 6; ++attempt) {
      delays.push_back(policy.delay(attempt, rng));
    }
    return delays;
  };
  EXPECT_EQ(draw(), draw());
}

TEST(RetryPolicy, WorksWithBothRngEngines) {
  // The shared RngOps mixin means sequential and counter-based engines draw
  // through the same code path; both must satisfy the jitter band.
  RetryPolicy policy;
  common::Rng sequential(5);
  common::StreamRng counter(5, 0, 0);
  for (int i = 0; i < 100; ++i) {
    const double a = policy.delay(2, sequential);
    const double b = policy.delay(2, counter);
    const double base = policy.base_delay(2);
    EXPECT_GE(a, base * (1.0 - policy.jitter));
    EXPECT_LE(a, base * (1.0 + policy.jitter));
    EXPECT_GE(b, base * (1.0 - policy.jitter));
    EXPECT_LE(b, base * (1.0 + policy.jitter));
  }
}

TEST(RetryPolicy, BackoffCapIsExactAtAndPastSaturation) {
  RetryPolicy policy;
  policy.initial_timeout = 0.3;
  policy.multiplier = 2.0;
  policy.max_timeout = 10.0;
  // 0.3 · 2^5 = 9.6 is the last unsaturated wait; from attempt 6 on the
  // base is pinned to the cap exactly — no drift, no overflow.
  EXPECT_DOUBLE_EQ(policy.base_delay(5), 9.6);
  for (unsigned attempt = 6; attempt < 80; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.base_delay(attempt), 10.0);
  }
}

TEST(RetryPolicy, PropertyGridHoldsJitterBandAndMonotoneBase) {
  // Property sweep over a policy grid, all draws pinned to one StreamRng
  // stream: every sampled delay lies inside the symmetric jitter band
  // around its base, and the base sequence is monotone up to the cap.
  const double multipliers[] = {1.0, 1.5, 2.0, 3.0};
  const double jitters[] = {0.0, 0.05, 0.2, 0.5, 0.9};
  common::StreamRng rng(2026, 0, 0x7E57);
  for (const double multiplier : multipliers) {
    for (const double jitter : jitters) {
      RetryPolicy policy;
      policy.initial_timeout = 0.1;
      policy.multiplier = multiplier;
      policy.max_timeout = 2.5;
      policy.jitter = jitter;
      policy.validate();
      for (unsigned attempt = 0; attempt < 48; ++attempt) {
        const double base = policy.base_delay(attempt);
        EXPECT_LE(base, policy.max_timeout);
        if (attempt > 0) {
          EXPECT_GE(base, policy.base_delay(attempt - 1));
        }
        for (int draw = 0; draw < 64; ++draw) {
          const double d = policy.delay(attempt, rng);
          EXPECT_GE(d, base * (1.0 - jitter) - 1e-12)
              << "m=" << multiplier << " j=" << jitter << " a=" << attempt;
          EXPECT_LE(d, base * (1.0 + jitter) + 1e-12)
              << "m=" << multiplier << " j=" << jitter << " a=" << attempt;
        }
      }
    }
  }
}

TEST(RetryPolicy, DistinctStreamsProduceDistinctSchedules) {
  // The purpose/stream split is what keeps per-destination retry jitter
  // uncorrelated: two peers retrying the same attempt draw from different
  // streams and must not march in lockstep.
  RetryPolicy policy;
  common::StreamRng stream_a(42, 1, 0xBACC);
  common::StreamRng stream_b(42, 2, 0xBACC);
  bool diverged = false;
  for (unsigned attempt = 0; attempt < 16; ++attempt) {
    diverged =
        diverged || policy.delay(attempt, stream_a) !=
                        policy.delay(attempt, stream_b);
  }
  EXPECT_TRUE(diverged);
}

TEST(RetryPolicy, ValidateRejectsBadConfigs) {
  RetryPolicy policy;
  policy.initial_timeout = 0.0;
  EXPECT_DEATH(policy.validate(), "initial timeout");
  policy = {};
  policy.multiplier = 0.5;
  EXPECT_DEATH(policy.validate(), "multiplier");
  policy = {};
  policy.max_timeout = policy.initial_timeout / 2.0;
  EXPECT_DEATH(policy.validate(), "max timeout");
  policy = {};
  policy.jitter = 1.0;
  EXPECT_DEATH(policy.validate(), "jitter");
}

}  // namespace
}  // namespace updp2p::runtime
