// Golden determinism for the live runtime layer (ISSUE 3 acceptance): a
// LoopbackCluster run — full PeerRuntimes, real codec bytes, timer wheels,
// retry timers — over the deterministic inproc network must reproduce a
// pinned outcome exactly. If any of these numbers moves, the runtime's
// behaviour changed; re-pin deliberately, never casually.
#include <gtest/gtest.h>

#include "runtime/loopback_cluster.hpp"

namespace updp2p::runtime {
namespace {

LoopbackClusterConfig golden_config() {
  LoopbackClusterConfig config;
  config.population = 12;
  config.runtime.seed = 0x60D7E57;
  config.runtime.round_duration = 0.5;
  config.runtime.gossip.fanout_fraction = 0.3;
  config.runtime.gossip.estimated_total_replicas = 12;
  config.runtime.gossip.acks.enabled = true;
  config.runtime.retry.initial_timeout = 0.2;
  config.runtime.retry.max_attempts = 4;
  config.network.loss_probability = 0.15;
  config.network.latency = std::make_shared<net::UniformLatency>(0.01, 0.12);
  return config;
}

struct GoldenOutcome {
  bool converged = false;
  common::SimTime end_time = 0.0;
  std::size_t aware = 0;
  LoopbackCluster::ClusterTotals totals;
};

GoldenOutcome run_golden() {
  LoopbackCluster cluster(golden_config());
  // Two peers churn out mid-push and come back, exercising the offline-drop
  // and reconnect-pull paths inside the pinned run.
  const auto id =
      cluster.publish(common::PeerId(0), "golden-key", "golden-payload");
  EXPECT_TRUE(id.has_value());
  cluster.set_online(common::PeerId(4), false);
  cluster.set_online(common::PeerId(9), false);
  cluster.run_until(3.0);
  cluster.set_online(common::PeerId(4), true);
  cluster.set_online(common::PeerId(9), true);

  GoldenOutcome outcome;
  outcome.converged = cluster.run_until_aware(*id, 60.0);
  outcome.end_time = cluster.now();
  outcome.aware = cluster.aware_count(*id);
  outcome.totals = cluster.totals();
  return outcome;
}

TEST(LoopbackGolden, RunIsSelfConsistentAcrossRebuilds) {
  const GoldenOutcome first = run_golden();
  const GoldenOutcome second = run_golden();
  EXPECT_EQ(first.converged, second.converged);
  EXPECT_DOUBLE_EQ(first.end_time, second.end_time);
  EXPECT_EQ(first.aware, second.aware);
  EXPECT_EQ(first.totals.datagrams_out, second.totals.datagrams_out);
  EXPECT_EQ(first.totals.retransmits, second.totals.retransmits);
  EXPECT_EQ(first.totals.retries_cancelled, second.totals.retries_cancelled);
  EXPECT_EQ(first.totals.retries_exhausted, second.totals.retries_exhausted);
  EXPECT_EQ(first.totals.decode_errors, second.totals.decode_errors);
}

TEST(LoopbackGolden, PinnedOutcome) {
  const GoldenOutcome outcome = run_golden();
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.aware, 12u);
  // Pinned fingerprint of the whole run (see file comment). The run covers
  // every interesting path: retransmissions through loss, ack-cancelled
  // retries, exhausted budgets against the two offline peers, and the
  // reconnect pull that brings them back.
  EXPECT_EQ(outcome.totals.datagrams_out, 78u);
  EXPECT_EQ(outcome.totals.retransmits, 38u);
  EXPECT_EQ(outcome.totals.retries_cancelled, 12u);
  EXPECT_EQ(outcome.totals.retries_exhausted, 7u);
  EXPECT_EQ(outcome.totals.decode_errors, 0u);
  // Zero-copy invariants of the pooled send path: encodes land in recycled
  // buffers once the pool is warm, and a retransmission NEVER re-encodes —
  // it resends the exact bytes its PendingSend owns.
  EXPECT_GT(outcome.totals.frames_reused, 0u);
  EXPECT_EQ(outcome.totals.retransmit_reencodes, 0u);
  EXPECT_DOUBLE_EQ(outcome.end_time, 3.1999999999999993);
}

}  // namespace
}  // namespace updp2p::runtime
