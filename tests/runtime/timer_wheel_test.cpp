#include "runtime/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace updp2p::runtime {
namespace {

TEST(TimerWheel, FiresAtDeadline) {
  TimerWheel wheel(0.05);
  std::vector<double> fired;
  (void)wheel.schedule_at(0.2, [&](common::SimTime at) { fired.push_back(at); });
  wheel.advance(0.1);
  EXPECT_TRUE(fired.empty());
  wheel.advance(0.3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0], 0.2, 0.05 + 1e-9);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, FiresInDeadlineThenScheduleOrder) {
  TimerWheel wheel(0.05);
  std::vector<std::string> order;
  (void)wheel.schedule_at(0.30, [&](common::SimTime) { order.push_back("late"); });
  (void)wheel.schedule_at(0.10, [&](common::SimTime) { order.push_back("a"); });
  (void)wheel.schedule_at(0.10, [&](common::SimTime) { order.push_back("b"); });
  wheel.advance(1.0);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "late"}));
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel(0.05);
  int fired = 0;
  const auto id = wheel.schedule_at(0.1, [&](common::SimTime) { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already cancelled
  wheel.advance(1.0);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(0.05);
  wheel.advance(1.0);
  int fired = 0;
  (void)wheel.schedule_at(0.2, [&](common::SimTime) { ++fired; });
  wheel.advance(1.05);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, HandlesDeadlinesBeyondOneRevolution) {
  // slot_count 4 with tick 0.1 → a revolution is 0.4s; deadlines far past
  // that must wait for their actual tick, not fire at the first hash hit.
  TimerWheel wheel(0.1, 4);
  std::vector<std::string> order;
  (void)wheel.schedule_at(1.0, [&](common::SimTime) { order.push_back("far"); });
  (void)wheel.schedule_at(0.2, [&](common::SimTime) { order.push_back("near"); });
  wheel.advance(0.5);
  EXPECT_EQ(order, (std::vector<std::string>{"near"}));
  wheel.advance(2.0);
  EXPECT_EQ(order, (std::vector<std::string>{"near", "far"}));
}

TEST(TimerWheel, CallbackMayScheduleWithinSameAdvance) {
  TimerWheel wheel(0.05);
  std::vector<std::string> order;
  (void)wheel.schedule_at(0.1, [&](common::SimTime) {
    order.push_back("first");
    // Lands before the advance target: fires within this same advance.
    (void)wheel.schedule_at(0.3, [&](common::SimTime) { order.push_back("chained"); });
  });
  wheel.advance(0.5);
  EXPECT_EQ(order, (std::vector<std::string>{"first", "chained"}));
}

TEST(TimerWheel, CallbackMayCancelSibling) {
  TimerWheel wheel(0.05);
  std::vector<std::string> order;
  TimerWheel::TimerId second = TimerWheel::kInvalidTimer;
  (void)wheel.schedule_at(0.1, [&](common::SimTime) {
    order.push_back("killer");
    EXPECT_TRUE(wheel.cancel(second));
  });
  second = wheel.schedule_at(0.2, [&](common::SimTime) { order.push_back("victim"); });
  wheel.advance(1.0);
  EXPECT_EQ(order, (std::vector<std::string>{"killer"}));
}

TEST(TimerWheel, NextDeadlineTracksEarliestPending) {
  TimerWheel wheel(0.05);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  (void)wheel.schedule_at(0.4, [](common::SimTime) {});
  const auto a_id = wheel.schedule_at(0.15, [](common::SimTime) {});
  auto deadline = wheel.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_LE(*deadline, 0.2 + 1e-9);
  EXPECT_TRUE(wheel.cancel(a_id));
  deadline = wheel.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_GE(*deadline, 0.4 - 1e-9);
}

TEST(TimerWheel, ScheduleAfterUsesCurrentTime) {
  TimerWheel wheel(0.05);
  wheel.advance(2.0);
  int fired = 0;
  (void)wheel.schedule_after(0.5, [&](common::SimTime) { ++fired; });
  wheel.advance(2.4);
  EXPECT_EQ(fired, 0);
  wheel.advance(2.6);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, AdvanceMustBeMonotone) {
  TimerWheel wheel(0.05);
  wheel.advance(1.0);
  EXPECT_DEATH(wheel.advance(0.5), "monotone");
}

TEST(TimerWheel, ManyTimersAcrossSlots) {
  TimerWheel wheel(0.01, 8);
  int fired = 0;
  for (int i = 1; i <= 500; ++i) {
    (void)wheel.schedule_at(0.01 * i, [&](common::SimTime) { ++fired; });
  }
  EXPECT_EQ(wheel.pending(), 500u);
  wheel.advance(6.0);
  EXPECT_EQ(fired, 500);
  EXPECT_EQ(wheel.pending(), 0u);
}

}  // namespace
}  // namespace updp2p::runtime
