#include "runtime/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace updp2p::runtime {
namespace {

TEST(TimerWheel, FiresAtDeadline) {
  TimerWheel wheel(0.05);
  std::vector<double> fired;
  (void)wheel.schedule_at(0.2, [&](common::SimTime at) { fired.push_back(at); });
  wheel.advance(0.1);
  EXPECT_TRUE(fired.empty());
  wheel.advance(0.3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NEAR(fired[0], 0.2, 0.05 + 1e-9);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, FiresInDeadlineThenScheduleOrder) {
  TimerWheel wheel(0.05);
  std::vector<std::string> order;
  (void)wheel.schedule_at(0.30, [&](common::SimTime) { order.push_back("late"); });
  (void)wheel.schedule_at(0.10, [&](common::SimTime) { order.push_back("a"); });
  (void)wheel.schedule_at(0.10, [&](common::SimTime) { order.push_back("b"); });
  wheel.advance(1.0);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "late"}));
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel(0.05);
  int fired = 0;
  const auto id = wheel.schedule_at(0.1, [&](common::SimTime) { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already cancelled
  wheel.advance(1.0);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(0.05);
  wheel.advance(1.0);
  int fired = 0;
  (void)wheel.schedule_at(0.2, [&](common::SimTime) { ++fired; });
  wheel.advance(1.05);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, HandlesDeadlinesBeyondOneRevolution) {
  // slot_count 4 with tick 0.1 → a revolution is 0.4s; deadlines far past
  // that must wait for their actual tick, not fire at the first hash hit.
  TimerWheel wheel(0.1, 4);
  std::vector<std::string> order;
  (void)wheel.schedule_at(1.0, [&](common::SimTime) { order.push_back("far"); });
  (void)wheel.schedule_at(0.2, [&](common::SimTime) { order.push_back("near"); });
  wheel.advance(0.5);
  EXPECT_EQ(order, (std::vector<std::string>{"near"}));
  wheel.advance(2.0);
  EXPECT_EQ(order, (std::vector<std::string>{"near", "far"}));
}

TEST(TimerWheel, CallbackMayScheduleWithinSameAdvance) {
  TimerWheel wheel(0.05);
  std::vector<std::string> order;
  (void)wheel.schedule_at(0.1, [&](common::SimTime) {
    order.push_back("first");
    // Lands before the advance target: fires within this same advance.
    (void)wheel.schedule_at(0.3, [&](common::SimTime) { order.push_back("chained"); });
  });
  wheel.advance(0.5);
  EXPECT_EQ(order, (std::vector<std::string>{"first", "chained"}));
}

TEST(TimerWheel, CallbackMayCancelSibling) {
  TimerWheel wheel(0.05);
  std::vector<std::string> order;
  TimerWheel::TimerId second = TimerWheel::kInvalidTimer;
  (void)wheel.schedule_at(0.1, [&](common::SimTime) {
    order.push_back("killer");
    EXPECT_TRUE(wheel.cancel(second));
  });
  second = wheel.schedule_at(0.2, [&](common::SimTime) { order.push_back("victim"); });
  wheel.advance(1.0);
  EXPECT_EQ(order, (std::vector<std::string>{"killer"}));
}

TEST(TimerWheel, NextDeadlineTracksEarliestPending) {
  TimerWheel wheel(0.05);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  (void)wheel.schedule_at(0.4, [](common::SimTime) {});
  const auto a_id = wheel.schedule_at(0.15, [](common::SimTime) {});
  auto deadline = wheel.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_LE(*deadline, 0.2 + 1e-9);
  EXPECT_TRUE(wheel.cancel(a_id));
  deadline = wheel.next_deadline();
  ASSERT_TRUE(deadline.has_value());
  EXPECT_GE(*deadline, 0.4 - 1e-9);
}

TEST(TimerWheel, ScheduleAfterUsesCurrentTime) {
  TimerWheel wheel(0.05);
  wheel.advance(2.0);
  int fired = 0;
  (void)wheel.schedule_after(0.5, [&](common::SimTime) { ++fired; });
  wheel.advance(2.4);
  EXPECT_EQ(fired, 0);
  wheel.advance(2.6);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, AdvanceMustBeMonotone) {
  TimerWheel wheel(0.05);
  wheel.advance(1.0);
  EXPECT_DEATH(wheel.advance(0.5), "monotone");
}

TEST(TimerWheel, ManyTimersAcrossSlots) {
  TimerWheel wheel(0.01, 8);
  int fired = 0;
  for (int i = 1; i <= 500; ++i) {
    (void)wheel.schedule_at(0.01 * i, [&](common::SimTime) { ++fired; });
  }
  EXPECT_EQ(wheel.pending(), 500u);
  wheel.advance(6.0);
  EXPECT_EQ(fired, 500);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, TickWrapAroundAcrossManyRevolutions) {
  // 8 slots × 0.01s tick = 0.08s per revolution. One advance sweeps 200
  // revolutions; every slot index wraps dozens of times in between fires,
  // and the timers must still fire in absolute-deadline order.
  TimerWheel wheel(0.01, 8);
  std::vector<int> fired;
  for (int i = 0; i < 64; ++i) {
    (void)wheel.schedule_at(0.25 * (i + 1),
                            [&fired, i](common::SimTime) { fired.push_back(i); });
  }
  wheel.advance(16.0);
  ASSERT_EQ(fired.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);

  // A fresh timer scheduled after the heavy wrap still lands exactly on
  // its own tick, not on a stale revolution of the same slot.
  int late = 0;
  (void)wheel.schedule_after(0.05, [&](common::SimTime) { ++late; });
  wheel.advance(16.03);
  EXPECT_EQ(late, 0);
  wheel.advance(16.06);
  EXPECT_EQ(late, 1);
}

TEST(TimerWheel, CancelThenRearmSameDeadline) {
  TimerWheel wheel(0.05);
  int old_fired = 0;
  int new_fired = 0;
  const auto old_id =
      wheel.schedule_at(0.2, [&](common::SimTime) { ++old_fired; });
  ASSERT_TRUE(wheel.cancel(old_id));
  const auto new_id =
      wheel.schedule_at(0.2, [&](common::SimTime) { ++new_fired; });
  EXPECT_NE(new_id, old_id);
  // The stale id must not resurrect or hit the replacement timer.
  EXPECT_FALSE(wheel.cancel(old_id));
  wheel.advance(1.0);
  EXPECT_EQ(old_fired, 0);
  EXPECT_EQ(new_fired, 1);
  EXPECT_FALSE(wheel.cancel(new_id));  // already fired
}

TEST(TimerWheel, CallbackMayRearmItselfAtFixedCadence) {
  // The PeerRuntime round-tick pattern: each firing schedules the next.
  TimerWheel wheel(0.05);
  int rounds = 0;
  std::function<void(common::SimTime)> tick =
      [&](common::SimTime at) {
        ++rounds;
        if (rounds < 10) (void)wheel.schedule_at(at + 0.25, tick);
      };
  (void)wheel.schedule_at(0.25, tick);
  wheel.advance(10.0);
  EXPECT_EQ(rounds, 10);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, MassExpiryAtOneTickFiresInScheduleOrder) {
  constexpr int kTimers = 5000;
  TimerWheel wheel(0.05, 16);
  std::vector<int> order;
  order.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    (void)wheel.schedule_at(0.1,
                            [&order, i](common::SimTime) { order.push_back(i); });
  }
  EXPECT_EQ(wheel.pending(), static_cast<std::size_t>(kTimers));
  wheel.advance(0.2);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTimers));
  for (int i = 0; i < kTimers; ++i) {
    if (order[static_cast<std::size_t>(i)] != i) {
      FAIL() << "schedule order broken at index " << i;
    }
  }
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, MassExpiryWithMidFlightCancellations) {
  // Every even timer cancels its odd successor from inside its callback
  // while the same tick is still draining: the successor must not fire.
  constexpr int kTimers = 1000;
  TimerWheel wheel(0.05, 16);
  std::vector<TimerWheel::TimerId> ids(kTimers, TimerWheel::kInvalidTimer);
  std::vector<int> fired;
  for (int i = 0; i < kTimers; ++i) {
    ids[static_cast<std::size_t>(i)] =
        wheel.schedule_at(0.1, [&, i](common::SimTime) {
          fired.push_back(i);
          if (i % 2 == 0) {
            EXPECT_TRUE(wheel.cancel(ids[static_cast<std::size_t>(i) + 1]));
          }
        });
  }
  wheel.advance(0.2);
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kTimers) / 2);
  for (const int i : fired) EXPECT_EQ(i % 2, 0);
  EXPECT_EQ(wheel.pending(), 0u);
}

}  // namespace
}  // namespace updp2p::runtime
