// Tests for the self-organizing P-Grid construction (pairwise exchanges).
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "pgrid/pgrid.hpp"

namespace updp2p::pgrid {
namespace {

using common::PeerId;
using common::Rng;

PGridConfig config_64() {
  PGridConfig config;
  config.peers = 64;
  config.depth = 3;
  config.refs_per_level = 4;
  config.seed = 31;
  return config;
}

TEST(PGridExchange, EveryPeerReachesFullDepth) {
  const auto network = PGridNetwork::build_by_exchanges(config_64());
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    EXPECT_EQ(peer.path.length(), 3u) << "peer " << i;
    EXPECT_EQ(peer.routing.size(), 3u);
  }
}

TEST(PGridExchange, RoutingInvariantsHold) {
  const auto network = PGridNetwork::build_by_exchanges(config_64());
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    for (std::uint8_t l = 0; l < 3; ++l) {
      const auto& level = peer.routing[l];
      EXPECT_EQ(level.sibling_prefix, peer.path.sibling_at(l));
      for (const PeerId ref : level.refs) {
        EXPECT_NE(ref, peer.id);
        EXPECT_TRUE(
            level.sibling_prefix.is_prefix_of(network.peer(ref).path))
            << "peer " << i << " level " << static_cast<int>(l)
            << " ref " << ref.value();
      }
      EXPECT_LE(level.refs.size(), 4u);
    }
  }
}

TEST(PGridExchange, PartitionsReasonablyBalanced) {
  const auto network = PGridNetwork::build_by_exchanges(config_64());
  std::size_t occupied = 0;
  std::size_t total = 0;
  std::size_t largest = 0;
  std::size_t smallest = 64;
  for (std::uint64_t p = 0; p < 8; ++p) {
    const BitPath partition(p << 61, 3);
    const auto& group = network.replica_group(partition);
    if (!group.empty()) ++occupied;
    total += group.size();
    largest = std::max(largest, group.size());
    smallest = std::min(smallest, group.size());
  }
  // Randomized splitting is not perfectly even, but every partition should
  // exist and none should hog the population.
  EXPECT_EQ(occupied, 8u);
  EXPECT_EQ(total, 64u);
  EXPECT_LE(largest, 32u);
  EXPECT_GE(smallest, 1u);
}

TEST(PGridExchange, ReplicaListsShareThePath) {
  const auto network = PGridNetwork::build_by_exchanges(config_64());
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    for (const PeerId other : peer.replicas) {
      EXPECT_EQ(network.peer(other).path, peer.path);
      EXPECT_NE(other, peer.id);
    }
  }
}

TEST(PGridExchange, SearchWorksOnOrganicNetwork) {
  const auto network = PGridNetwork::build_by_exchanges(config_64());
  Rng rng(5);
  const auto all_online = [](PeerId) { return true; };
  std::size_t found = 0;
  constexpr int kQueries = 200;
  for (int q = 0; q < kQueries; ++q) {
    const auto key = BitPath::from_key("item-" + std::to_string(q), 64);
    if (network.replica_group(key).empty()) continue;  // unoccupied
    const PeerId origin(static_cast<std::uint32_t>(rng.uniform_below(64)));
    const auto result =
        network.search_with_retries(origin, key, all_online, rng, 5);
    if (result.found) {
      ++found;
      EXPECT_TRUE(network.peer(result.responsible).path.is_prefix_of(key));
    }
  }
  EXPECT_GT(found, kQueries * 9 / 10);
}

TEST(PGridExchange, DeterministicPerSeed) {
  const auto a = PGridNetwork::build_by_exchanges(config_64());
  const auto b = PGridNetwork::build_by_exchanges(config_64());
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.peer(PeerId(i)).path, b.peer(PeerId(i)).path);
  }
}

TEST(PGridExchange, FewMeetingsLeaveShortPathsButValidStructure) {
  // With very few meetings, stragglers are extended randomly — structure
  // invariants must still hold.
  auto config = config_64();
  const auto network = PGridNetwork::build_by_exchanges(config, 50);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    EXPECT_EQ(peer.path.length(), 3u);
    EXPECT_EQ(peer.routing.size(), 3u);
  }
}

TEST(PGridExchange, ScalesToLargerNetworks) {
  PGridConfig config;
  config.peers = 512;
  config.depth = 4;
  config.refs_per_level = 4;
  config.seed = 77;
  const auto network = PGridNetwork::build_by_exchanges(config);
  std::size_t occupied = 0;
  for (std::uint64_t p = 0; p < 16; ++p) {
    if (!network.replica_group(BitPath(p << 60, 4)).empty()) ++occupied;
  }
  EXPECT_EQ(occupied, 16u);
}

}  // namespace
}  // namespace updp2p::pgrid
