#include "pgrid/replicated_index.hpp"

#include <gtest/gtest.h>

#include "analysis/forward_probability.hpp"

namespace updp2p::pgrid {
namespace {

using common::PeerId;

ReplicatedIndexConfig small_config() {
  ReplicatedIndexConfig config;
  config.grid.peers = 128;
  config.grid.depth = 2;  // 4 partitions of 32
  config.grid.refs_per_level = 4;
  config.grid.seed = 2;
  config.gossip.fanout_fraction = 0.2;  // ~6 peers within a 32-group
  config.gossip.forward_probability = analysis::pf_constant(1.0);
  config.gossip.pull.no_update_timeout = 6;
  config.seed = 77;
  return config;
}

TEST(ReplicatedIndex, PutRoutesAndGossips) {
  ReplicatedIndex index(small_config());
  const auto outcome = index.put(PeerId(0), "users/alice", "profile-v1");
  ASSERT_TRUE(outcome.ok);
  index.step_rounds(10);
  const auto value = index.get(PeerId(5), "users/alice");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->payload, "profile-v1");
}

TEST(ReplicatedIndex, GroupReachesHighConsistency) {
  ReplicatedIndex index(small_config());
  (void)index.put(PeerId(0), "doc", "v1");
  index.step_rounds(15);
  const auto value = index.get(PeerId(1), "doc");
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(index.group_consistency("doc", value->id), 0.9);
}

TEST(ReplicatedIndex, GetUnknownKeyIsEmpty) {
  ReplicatedIndex index(small_config());
  EXPECT_FALSE(index.get(PeerId(0), "missing").has_value());
}

TEST(ReplicatedIndex, UpdateSupersedesOldValue) {
  ReplicatedIndex index(small_config());
  (void)index.put(PeerId(0), "doc", "v1");
  index.step_rounds(12);
  (void)index.put(PeerId(9), "doc", "v2");
  index.step_rounds(12);
  const auto value = index.get(PeerId(3), "doc");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->payload, "v2");
}

TEST(ReplicatedIndex, RemoveTombstonesAcrossGroup) {
  ReplicatedIndex index(small_config());
  (void)index.put(PeerId(0), "doc", "v1");
  index.step_rounds(12);
  const auto outcome = index.remove(PeerId(4), "doc");
  ASSERT_TRUE(outcome.ok);
  index.step_rounds(12);
  EXPECT_FALSE(index.get(PeerId(7), "doc").has_value());
}

TEST(ReplicatedIndex, OfflineOriginCannotAct) {
  ReplicatedIndex index(small_config());
  index.set_online(PeerId(0), false);
  EXPECT_FALSE(index.put(PeerId(0), "doc", "v1").ok);
  EXPECT_FALSE(index.get(PeerId(0), "doc").has_value());
}

TEST(ReplicatedIndex, OfflineReplicasCatchUpOnReturn) {
  ReplicatedIndex index(small_config());
  // Take a third of every group offline.
  for (std::uint32_t i = 0; i < 128; i += 3) {
    index.set_online(PeerId(i), false);
  }
  const auto put_outcome = index.put(PeerId(1), "doc", "v1");
  ASSERT_TRUE(put_outcome.ok);
  index.step_rounds(10);

  // They return; pull-on-reconnect + staleness pulls reconcile them.
  for (std::uint32_t i = 0; i < 128; i += 3) {
    index.set_online(PeerId(i), true);
  }
  index.step_rounds(25);
  const auto value = index.get(PeerId(1), "doc");
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(index.group_consistency("doc", value->id), 0.9);
}

TEST(ReplicatedIndex, KeysLandInTheirOwnPartitions) {
  ReplicatedIndex index(small_config());
  (void)index.put(PeerId(0), "key-A", "a");
  (void)index.put(PeerId(0), "key-B", "b");
  index.step_rounds(15);
  // A key's versions live only inside its replica group.
  const auto path_a = BitPath::from_key("key-A", 64);
  const auto& group_a = index.grid().replica_group(path_a);
  std::size_t outside_holders = 0;
  for (std::uint32_t i = 0; i < 128; ++i) {
    const bool in_group =
        std::find(group_a.begin(), group_a.end(), PeerId(i)) != group_a.end();
    if (!in_group && index.node(PeerId(i)).read("key-A").has_value()) {
      ++outside_holders;
    }
  }
  EXPECT_EQ(outside_holders, 0u);
}

TEST(ReplicatedIndex, QueryRulesAllWork) {
  ReplicatedIndex index(small_config());
  (void)index.put(PeerId(0), "doc", "v1");
  index.step_rounds(15);
  for (const auto rule :
       {gossip::QueryRule::kLatestVersion, gossip::QueryRule::kMajority,
        gossip::QueryRule::kHybrid}) {
    const auto value = index.get(PeerId(2), "doc", rule, 5);
    ASSERT_TRUE(value.has_value()) << gossip::to_string(rule);
    EXPECT_EQ(value->payload, "v1");
  }
}

TEST(ReplicatedIndex, RoutingUnderHeavyChurnMayFailGracefully) {
  ReplicatedIndex index(small_config());
  // Nearly everyone offline: routing often fails, but never crashes and
  // never fabricates a result.
  for (std::uint32_t i = 1; i < 128; ++i) {
    if (i % 10 != 0) index.set_online(PeerId(i), false);
  }
  unsigned successes = 0;
  for (int k = 0; k < 20; ++k) {
    if (index.put(PeerId(0), "k" + std::to_string(k), "v").ok) ++successes;
  }
  EXPECT_LT(successes, 20u);
}

TEST(ReplicatedIndex, DriveWithChurnModelStaysConsistent) {
  ReplicatedIndex index(small_config());
  const auto outcome = index.put(PeerId(0), "doc", "v1");
  ASSERT_TRUE(outcome.ok);
  index.step_rounds(8);  // push completes while everyone is online

  // Now churn the whole system for a while and verify the group heals.
  churn::SessionChurn churn(128, 15.0, 10.0);  // 60% availability
  common::Rng rng(3);
  churn.reset(rng);
  index.drive(churn, rng, 60);

  // Bring everyone back; pulls finish the reconciliation.
  for (std::uint32_t i = 0; i < 128; ++i) {
    index.set_online(PeerId(i), true);
  }
  index.step_rounds(20);
  const auto value = index.get(PeerId(2), "doc");
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(index.group_consistency("doc", value->id), 0.9);
}

TEST(ReplicatedIndex, DriveRejectsMismatchedPopulation) {
  ReplicatedIndex index(small_config());
  churn::StaticChurn churn(64, 0.5);  // wrong population
  common::Rng rng(1);
  EXPECT_DEATH(index.drive(churn, rng, 1), "population");
}

TEST(ReplicatedIndex, BusAccountsTraffic) {
  ReplicatedIndex index(small_config());
  (void)index.put(PeerId(0), "doc", "v1");
  index.step_rounds(10);
  EXPECT_GT(index.bus_stats().messages_sent, 0u);
  EXPECT_GT(index.bus_stats().bytes_sent, 0u);
}

}  // namespace
}  // namespace updp2p::pgrid
