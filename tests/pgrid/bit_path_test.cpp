#include "pgrid/bit_path.hpp"

#include <gtest/gtest.h>

namespace updp2p::pgrid {
namespace {

TEST(BitPath, DefaultIsEmpty) {
  BitPath path;
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.length(), 0u);
  EXPECT_EQ(path.to_string(), "");
}

TEST(BitPath, ParseRoundTrips) {
  for (const std::string text : {"0", "1", "0110", "10101010", ""}) {
    EXPECT_EQ(BitPath::parse(text).to_string(), text);
  }
}

TEST(BitPath, BitsAccessible) {
  const auto path = BitPath::parse("0110");
  EXPECT_FALSE(path.bit(0));
  EXPECT_TRUE(path.bit(1));
  EXPECT_TRUE(path.bit(2));
  EXPECT_FALSE(path.bit(3));
}

TEST(BitPath, AppendExtends) {
  const auto path = BitPath::parse("01");
  EXPECT_EQ(path.appended(true).to_string(), "011");
  EXPECT_EQ(path.appended(false).to_string(), "010");
  // Original unchanged (value semantics).
  EXPECT_EQ(path.to_string(), "01");
}

TEST(BitPath, PrefixTruncates) {
  const auto path = BitPath::parse("0110");
  EXPECT_EQ(path.prefix(2).to_string(), "01");
  EXPECT_EQ(path.prefix(0).to_string(), "");
  EXPECT_EQ(path.prefix(4), path);
}

TEST(BitPath, SiblingFlipsLastBit) {
  const auto path = BitPath::parse("0110");
  EXPECT_EQ(path.sibling_at(0).to_string(), "1");
  EXPECT_EQ(path.sibling_at(1).to_string(), "00");
  EXPECT_EQ(path.sibling_at(3).to_string(), "0111");
}

TEST(BitPath, IsPrefixOf) {
  const auto p = BitPath::parse("01");
  EXPECT_TRUE(p.is_prefix_of(BitPath::parse("0110")));
  EXPECT_TRUE(p.is_prefix_of(p));
  EXPECT_TRUE(BitPath().is_prefix_of(p));  // empty prefixes everything
  EXPECT_FALSE(p.is_prefix_of(BitPath::parse("00")));
  EXPECT_FALSE(BitPath::parse("0110").is_prefix_of(p));  // longer
}

TEST(BitPath, CommonPrefixLength) {
  EXPECT_EQ(BitPath::parse("0110").common_prefix_length(BitPath::parse("0111")),
            3u);
  EXPECT_EQ(BitPath::parse("10").common_prefix_length(BitPath::parse("01")),
            0u);
  EXPECT_EQ(BitPath::parse("01").common_prefix_length(BitPath::parse("0110")),
            2u);
}

TEST(BitPath, FromKeyIsDeterministicAndDepthBounded) {
  const auto a = BitPath::from_key("hello", 16);
  const auto b = BitPath::from_key("hello", 16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.length(), 16u);
  EXPECT_NE(BitPath::from_key("hello", 16), BitPath::from_key("world", 16));
}

TEST(BitPath, FromKeyPrefixConsistency) {
  // Deeper hash of the same key extends the shallower one.
  const auto shallow = BitPath::from_key("item", 4);
  const auto deep = BitPath::from_key("item", 12);
  EXPECT_TRUE(shallow.is_prefix_of(deep));
}

TEST(BitPath, EqualityIncludesLength) {
  EXPECT_NE(BitPath::parse("0"), BitPath::parse("00"));
  EXPECT_EQ(BitPath::parse("01"), BitPath::parse("01"));
}

TEST(BitPath, HashDistinguishesLengths) {
  std::hash<BitPath> hasher;
  EXPECT_NE(hasher(BitPath::parse("0")), hasher(BitPath::parse("00")));
}

TEST(BitPath, RejectsInvalidInput) {
  EXPECT_DEATH((void)BitPath::parse("012"), "binary");
  EXPECT_DEATH((void)BitPath::parse("0").bit(5), "range");
}

// Sweep: from_key distributes keys near-uniformly over partitions.
class BitPathDistribution : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(BitPathDistribution, KeysSpreadAcrossPartitions) {
  const std::uint8_t depth = GetParam();
  const std::size_t partitions = std::size_t{1} << depth;
  std::vector<int> counts(partitions, 0);
  constexpr int kKeys = 8'000;
  for (int i = 0; i < kKeys; ++i) {
    const auto path = BitPath::from_key("key-" + std::to_string(i), depth);
    ++counts[path.raw_bits() >> (64 - depth)];
  }
  const double expected = static_cast<double>(kKeys) / partitions;
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, BitPathDistribution,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace updp2p::pgrid
