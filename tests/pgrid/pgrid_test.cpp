#include "pgrid/pgrid.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace updp2p::pgrid {
namespace {

using common::PeerId;
using common::Rng;

PGridConfig small_config() {
  PGridConfig config;
  config.peers = 64;
  config.depth = 3;
  config.refs_per_level = 3;
  config.seed = 5;
  return config;
}

auto all_online = [](PeerId) { return true; };

TEST(PGrid, BuildBalancesPartitions) {
  const auto network = PGridNetwork::build(small_config());
  EXPECT_EQ(network.peer_count(), 64u);
  // 8 partitions × 8 replicas each.
  std::unordered_map<BitPath, int> sizes;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    EXPECT_EQ(peer.path.length(), 3u);
    ++sizes[peer.path];
  }
  EXPECT_EQ(sizes.size(), 8u);
  for (const auto& [path, count] : sizes) EXPECT_EQ(count, 8);
}

TEST(PGrid, ReplicaListsExcludeSelfAndShareThePath) {
  const auto network = PGridNetwork::build(small_config());
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    EXPECT_EQ(peer.replicas.size(), 7u);
    for (const PeerId other : peer.replicas) {
      EXPECT_NE(other, peer.id);
      EXPECT_EQ(network.peer(other).path, peer.path);
    }
  }
}

TEST(PGrid, RoutingTablesPointIntoSiblingSubtrees) {
  const auto network = PGridNetwork::build(small_config());
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& peer = network.peer(PeerId(i));
    ASSERT_EQ(peer.routing.size(), 3u);
    for (std::uint8_t level = 0; level < 3; ++level) {
      const auto& entry = peer.routing[level];
      EXPECT_EQ(entry.sibling_prefix, peer.path.sibling_at(level));
      EXPECT_FALSE(entry.refs.empty());
      for (const PeerId ref : entry.refs) {
        EXPECT_TRUE(
            entry.sibling_prefix.is_prefix_of(network.peer(ref).path));
      }
    }
  }
}

TEST(PGrid, SearchFindsResponsiblePeerWhenAllOnline) {
  const auto network = PGridNetwork::build(small_config());
  Rng rng(7);
  for (int q = 0; q < 200; ++q) {
    const auto key = BitPath::from_key("key" + std::to_string(q), 64);
    const PeerId origin(static_cast<std::uint32_t>(rng.uniform_below(64)));
    const auto result = network.search(origin, key, all_online, rng);
    ASSERT_TRUE(result.found) << "query " << q;
    EXPECT_TRUE(network.peer(result.responsible).path.is_prefix_of(key));
    EXPECT_LE(result.hops, 3u);
  }
}

TEST(PGrid, SearchFromResponsiblePeerIsZeroHops) {
  const auto network = PGridNetwork::build(small_config());
  Rng rng(8);
  const auto key = BitPath::from_key("x", 64);
  const auto origin = network.replica_group(key).front();
  const auto result = network.search(origin, key, all_online, rng);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.hops, 0u);
  EXPECT_EQ(result.responsible, origin);
}

TEST(PGrid, PartitionOfReturnsDepthPrefix) {
  const auto network = PGridNetwork::build(small_config());
  const auto key = BitPath::from_key("item", 64);
  EXPECT_EQ(network.partition_of(key), key.prefix(3));
}

TEST(PGrid, ReplicaGroupHoldsAllPartitionPeers) {
  const auto network = PGridNetwork::build(small_config());
  const auto key = BitPath::from_key("item", 64);
  const auto& group = network.replica_group(key);
  EXPECT_EQ(group.size(), 8u);
  for (const PeerId peer : group) {
    EXPECT_EQ(network.peer(peer).path, network.partition_of(key));
  }
}

TEST(PGrid, SearchFailsWhenRouteIsDark) {
  const auto network = PGridNetwork::build(small_config());
  Rng rng(9);
  const auto key = BitPath::from_key("item", 64);
  // Everyone offline except the (non-responsible) origin: routing must fail
  // rather than hang or fabricate a result.
  const auto& group = network.replica_group(key);
  const std::unordered_set<PeerId> responsible(group.begin(), group.end());
  PeerId origin = PeerId::invalid();
  for (std::uint32_t i = 0; i < 64; ++i) {
    if (!responsible.contains(PeerId(i))) {
      origin = PeerId(i);
      break;
    }
  }
  const auto result = network.search(
      origin, key, [origin](PeerId p) { return p == origin; }, rng);
  EXPECT_FALSE(result.found);
}

TEST(PGrid, RetriesImproveSuccessUnderChurn) {
  const auto network = PGridNetwork::build(PGridConfig{
      .peers = 256, .depth = 3, .refs_per_level = 3, .seed = 21});
  Rng rng(10);
  // 30% availability, fixed per query round.
  Rng availability_rng(11);
  std::vector<bool> online(256);
  for (std::size_t i = 0; i < 256; ++i) {
    online[i] = availability_rng.bernoulli(0.3);
  }
  const auto probe = [&online](PeerId p) { return online[p.value()]; };

  int single = 0;
  int with_retries = 0;
  constexpr int kQueries = 300;
  for (int q = 0; q < kQueries; ++q) {
    const auto key = BitPath::from_key("k" + std::to_string(q), 64);
    PeerId origin(static_cast<std::uint32_t>(rng.uniform_below(256)));
    while (!probe(origin)) {
      origin = PeerId(static_cast<std::uint32_t>(rng.uniform_below(256)));
    }
    if (network.search(origin, key, probe, rng).found) ++single;
    if (network.search_with_retries(origin, key, probe, rng, 8).found) {
      ++with_retries;
    }
  }
  EXPECT_GT(with_retries, single);
  EXPECT_GT(static_cast<double>(with_retries) / kQueries, 0.6);
}

TEST(PGrid, BuildRejectsInvalidConfigs) {
  EXPECT_DEATH((void)PGridNetwork::build(PGridConfig{
                   .peers = 4, .depth = 3, .refs_per_level = 1, .seed = 1}),
               "partition");
  EXPECT_DEATH((void)PGridNetwork::build(PGridConfig{
                   .peers = 8, .depth = 0, .refs_per_level = 1, .seed = 1}),
               "depth");
}

TEST(PGrid, DeterministicForSameSeed) {
  const auto a = PGridNetwork::build(small_config());
  const auto b = PGridNetwork::build(small_config());
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.peer(PeerId(i)).path, b.peer(PeerId(i)).path);
  }
}

}  // namespace
}  // namespace updp2p::pgrid
