#include "churn/churn_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace updp2p::churn {
namespace {

using common::PeerId;
using common::Rng;

TEST(OnlineSet, CountsTransitions) {
  OnlineSet set(4);
  EXPECT_EQ(set.online_count(), 0u);
  set.set(PeerId(0), true);
  set.set(PeerId(2), true);
  EXPECT_EQ(set.online_count(), 2u);
  set.set(PeerId(0), true);  // idempotent
  EXPECT_EQ(set.online_count(), 2u);
  set.set(PeerId(0), false);
  EXPECT_EQ(set.online_count(), 1u);
  EXPECT_FALSE(set.is_online(PeerId(0)));
  EXPECT_TRUE(set.is_online(PeerId(2)));
}

TEST(OnlineSet, FractionAndPeers) {
  OnlineSet set(10);
  set.set(PeerId(3), true);
  set.set(PeerId(7), true);
  EXPECT_DOUBLE_EQ(set.online_fraction(), 0.2);
  const auto peers = set.online_peers();
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0], PeerId(3));
  EXPECT_EQ(peers[1], PeerId(7));
}

TEST(StaticChurn, ExactInitialFraction) {
  StaticChurn churn(1'000, 0.25);
  Rng rng(1);
  churn.reset(rng);
  EXPECT_EQ(churn.online_count(), 250u);
  churn.advance(rng);
  EXPECT_EQ(churn.online_count(), 250u);  // static by definition
}

TEST(StaticChurn, AllAndNoneExtremes) {
  Rng rng(1);
  StaticChurn all(100, 1.0);
  all.reset(rng);
  EXPECT_EQ(all.online_count(), 100u);
  StaticChurn none(100, 0.0);
  none.reset(rng);
  EXPECT_EQ(none.online_count(), 0u);
}

TEST(BernoulliChurn, InitialFractionRespected) {
  BernoulliChurn churn(1'000, 0.10, 0.95, 0.0);
  Rng rng(2);
  churn.reset(rng);
  EXPECT_EQ(churn.online_count(), 100u);
}

TEST(BernoulliChurn, NoRejoinsMonotonicallyShrinks) {
  BernoulliChurn churn(2'000, 0.5, 0.9, 0.0);
  Rng rng(3);
  churn.reset(rng);
  std::size_t previous = churn.online_count();
  for (int round = 0; round < 10; ++round) {
    churn.advance(rng);
    EXPECT_LE(churn.online_count(), previous);
    previous = churn.online_count();
  }
  // After 10 rounds at sigma=0.9: expect ~0.5 * 0.9^10 ≈ 0.174.
  EXPECT_NEAR(static_cast<double>(previous) / 2'000.0, 0.5 * std::pow(0.9, 10),
              0.05);
}

TEST(BernoulliChurn, StationaryFractionFormula) {
  BernoulliChurn churn(100, 0.5, 0.9, 0.1);
  EXPECT_NEAR(churn.stationary_fraction(), 0.5, 1e-12);
  BernoulliChurn skewed(100, 0.5, 0.95, 0.05);
  EXPECT_NEAR(skewed.stationary_fraction(), 0.5, 1e-12);
  BernoulliChurn low(100, 0.5, 0.9, 0.0);
  EXPECT_EQ(low.stationary_fraction(), 0.0);
}

TEST(BernoulliChurn, ConvergesToStationaryFraction) {
  BernoulliChurn churn(20'000, 0.9, 0.95, 0.0125);
  // stationary = 0.0125 / (0.0125 + 0.05) = 0.2
  Rng rng(4);
  churn.reset(rng);
  for (int round = 0; round < 200; ++round) churn.advance(rng);
  EXPECT_NEAR(churn.online().online_fraction(), 0.2, 0.02);
}

TEST(SessionChurn, AvailabilityFromSessionLengths) {
  SessionChurn churn(10'000, /*mean_online=*/10.0, /*mean_offline=*/40.0);
  EXPECT_NEAR(churn.availability(), 0.2, 1e-9);
  Rng rng(5);
  churn.reset(rng);
  EXPECT_NEAR(churn.online().online_fraction(), 0.2, 0.02);
  common::RunningStats fraction;
  for (int round = 0; round < 100; ++round) {
    churn.advance(rng);
    fraction.add(churn.online().online_fraction());
  }
  EXPECT_NEAR(fraction.mean(), 0.2, 0.02);
}

TEST(TraceChurn, ReplaysSchedule) {
  std::vector<std::vector<PeerId>> schedule{
      {PeerId(0), PeerId(1)}, {PeerId(2)}, {}};
  TraceChurn churn(4, schedule);
  Rng rng(1);
  churn.reset(rng);
  EXPECT_TRUE(churn.is_online(PeerId(0)));
  EXPECT_TRUE(churn.is_online(PeerId(1)));
  EXPECT_FALSE(churn.is_online(PeerId(2)));
  churn.advance(rng);
  EXPECT_EQ(churn.online_count(), 1u);
  EXPECT_TRUE(churn.is_online(PeerId(2)));
  churn.advance(rng);
  EXPECT_EQ(churn.online_count(), 0u);
  // Past the schedule end: repeats last round.
  churn.advance(rng);
  EXPECT_EQ(churn.online_count(), 0u);
  // Reset rewinds.
  churn.reset(rng);
  EXPECT_EQ(churn.online_count(), 2u);
}

TEST(SessionProcess, StationaryStartFrequency) {
  SessionProcess process(25.0, 75.0);  // 25% availability
  EXPECT_NEAR(process.availability(), 0.25, 1e-12);
  Rng rng(6);
  int online = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    const auto [is_online, t] = process.start(rng);
    if (is_online) ++online;
    EXPECT_GT(t, 0.0);
  }
  EXPECT_NEAR(static_cast<double>(online) / kTrials, 0.25, 0.01);
}

TEST(SessionProcess, TransitionTimesMatchMeans) {
  SessionProcess process(10.0, 40.0);
  Rng rng(7);
  common::RunningStats online_sessions, offline_sessions;
  for (int i = 0; i < 20'000; ++i) {
    online_sessions.add(process.next_transition(rng, true, 0.0));
    offline_sessions.add(process.next_transition(rng, false, 0.0));
  }
  EXPECT_NEAR(online_sessions.mean(), 10.0, 0.3);
  EXPECT_NEAR(offline_sessions.mean(), 40.0, 1.0);
}

TEST(SessionProcess, TransitionIsInFuture) {
  SessionProcess process(10.0, 40.0);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(process.next_transition(rng, true, 123.0), 123.0);
  }
}

// Availability sweep: SessionChurn long-run fraction tracks the target.
class SessionAvailabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SessionAvailabilitySweep, LongRunFractionMatches) {
  const double availability = GetParam();
  const double mean_online = 10.0;
  const double mean_offline = mean_online * (1.0 - availability) / availability;
  SessionChurn churn(5'000, mean_online, std::max(1.0, mean_offline));
  Rng rng(99);
  churn.reset(rng);
  common::RunningStats fraction;
  for (int round = 0; round < 150; ++round) {
    churn.advance(rng);
    fraction.add(churn.online().online_fraction());
  }
  EXPECT_NEAR(fraction.mean(), churn.availability(), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Availabilities, SessionAvailabilitySweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.9));

}  // namespace
}  // namespace updp2p::churn
