#include "churn/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "churn/heterogeneous.hpp"

namespace updp2p::churn {
namespace {

using common::PeerId;

TraceSchedule sample_schedule() {
  return TraceSchedule{{PeerId(0), PeerId(2)}, {}, {PeerId(1)}};
}

TEST(TraceIo, WriteFormat) {
  std::ostringstream out;
  write_trace(out, sample_schedule());
  EXPECT_EQ(out.str(), "0,0,2\n1\n2,1\n");
}

TEST(TraceIo, RoundTrip) {
  std::stringstream buffer;
  write_trace(buffer, sample_schedule());
  const auto parsed = read_trace(buffer, 3);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0], sample_schedule()[0]);
  EXPECT_TRUE((*parsed)[1].empty());
  EXPECT_EQ((*parsed)[2], sample_schedule()[2]);
}

TEST(TraceIo, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_trace(in, 10);
  };
  EXPECT_FALSE(parse("").has_value());            // empty
  EXPECT_FALSE(parse("1,0\n").has_value());       // rounds not from 0
  EXPECT_FALSE(parse("0,0\n2,1\n").has_value());  // gap
  EXPECT_FALSE(parse("0,abc\n").has_value());     // non-numeric id
  EXPECT_FALSE(parse("zero,1\n").has_value());    // non-numeric round
  EXPECT_FALSE(parse("0,99\n").has_value());      // id out of range
  EXPECT_FALSE(parse("0,1x\n").has_value());      // trailing garbage
}

TEST(TraceIo, SkipsBlankLines) {
  std::istringstream in("0,1\n\n1,2\n");
  const auto parsed = read_trace(in, 5);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/updp2p_trace.csv";
  ASSERT_TRUE(save_trace(path, sample_schedule()));
  const auto loaded = load_trace(path, 3);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsNullopt) {
  EXPECT_FALSE(load_trace("/definitely/not/here.csv", 3).has_value());
}

TEST(TraceIo, GeneratedDiurnalTraceSurvivesRoundTrip) {
  DiurnalTraceGenerator generator(50, 12, 0.6, 0.2);
  const auto schedule = generator.generate(24, 3);
  std::stringstream buffer;
  write_trace(buffer, schedule);
  const auto parsed = read_trace(buffer, 50);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), schedule.size());
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    EXPECT_EQ((*parsed)[r], schedule[r]) << "round " << r;
  }
  // And it feeds TraceChurn directly.
  TraceChurn churn(50, *parsed);
  common::Rng rng(1);
  churn.reset(rng);
  EXPECT_EQ(churn.online_count(), schedule[0].size());
}

}  // namespace
}  // namespace updp2p::churn
