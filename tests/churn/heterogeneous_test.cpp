#include "churn/heterogeneous.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace updp2p::churn {
namespace {

using common::PeerId;
using common::Rng;

TEST(HeterogeneousChurn, PerPeerRatesRespected) {
  std::vector<HeterogeneousChurn::PeerRates> rates(2);
  rates[0] = {1.0, 1.0, 1.0};  // always online
  rates[1] = {0.0, 0.0, 0.0};  // never online
  HeterogeneousChurn churn(std::move(rates));
  Rng rng(1);
  churn.reset(rng);
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(churn.is_online(PeerId(0)));
    EXPECT_FALSE(churn.is_online(PeerId(1)));
    churn.advance(rng);
  }
}

TEST(HeterogeneousChurn, StationaryAvailabilityFormula) {
  std::vector<HeterogeneousChurn::PeerRates> rates(1);
  rates[0] = {0.5, 0.9, 0.1};  // a = 0.1 / (0.1 + 0.1) = 0.5
  HeterogeneousChurn churn(std::move(rates));
  EXPECT_NEAR(churn.stationary_availability(PeerId(0)), 0.5, 1e-12);
}

TEST(HeterogeneousChurn, LongRunMatchesStationaryPerClass) {
  auto churn = make_backbone_churn(4'000, 0.25, 0.9, 0.995, 0.1, 0.95);
  Rng rng(7);
  churn->reset(rng);
  common::RunningStats backbone_online, flaky_online;
  for (int round = 0; round < 300; ++round) {
    churn->advance(rng);
    std::size_t backbone = 0, flaky = 0;
    for (std::uint32_t i = 0; i < 4'000; ++i) {
      if (!churn->is_online(PeerId(i))) continue;
      (i < 1'000 ? backbone : flaky) += 1;
    }
    backbone_online.add(static_cast<double>(backbone) / 1'000.0);
    flaky_online.add(static_cast<double>(flaky) / 3'000.0);
  }
  EXPECT_NEAR(backbone_online.mean(), 0.9, 0.03);
  EXPECT_NEAR(flaky_online.mean(), 0.1, 0.03);
}

TEST(HeterogeneousChurn, BackboneGetsLowestIds) {
  auto churn = make_backbone_churn(100, 0.1, 0.95, 0.999, 0.2, 0.9);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_GT(churn->rates(PeerId(i)).initial_online_probability, 0.9);
  }
  for (std::uint32_t i = 10; i < 100; ++i) {
    EXPECT_LT(churn->rates(PeerId(i)).initial_online_probability, 0.5);
  }
}

TEST(HeterogeneousChurn, RejectsInvalidRates) {
  std::vector<HeterogeneousChurn::PeerRates> rates(1);
  rates[0].sigma = 1.5;
  EXPECT_DEATH(HeterogeneousChurn{std::move(rates)}, "sigma");
}

TEST(DiurnalTrace, AvailabilityOscillatesBetweenBounds) {
  DiurnalTraceGenerator generator(100, 24, 0.5, 0.1);
  double min_avail = 1.0, max_avail = 0.0;
  for (common::Round t = 0; t < 24; ++t) {
    const double a = generator.availability_at(t);
    EXPECT_GE(a, 0.1 - 1e-12);
    EXPECT_LE(a, 0.5 + 1e-12);
    min_avail = std::min(min_avail, a);
    max_avail = std::max(max_avail, a);
  }
  EXPECT_NEAR(min_avail, 0.1, 1e-6);   // trough at period boundary
  EXPECT_NEAR(max_avail, 0.5, 0.01);   // peak mid-period
}

TEST(DiurnalTrace, PeriodRepeats) {
  DiurnalTraceGenerator generator(100, 24, 0.6, 0.2);
  EXPECT_DOUBLE_EQ(generator.availability_at(3), generator.availability_at(27));
}

TEST(DiurnalTrace, GeneratedScheduleTracksWave) {
  DiurnalTraceGenerator generator(2'000, 48, 0.5, 0.1);
  const auto schedule = generator.generate(48, /*seed=*/3);
  ASSERT_EQ(schedule.size(), 48u);
  for (common::Round t = 0; t < 48; ++t) {
    const double target = generator.availability_at(t);
    const double actual =
        static_cast<double>(schedule[t].size()) / 2'000.0;
    EXPECT_NEAR(actual, target, 0.05) << "round " << t;
  }
}

TEST(DiurnalTrace, HabitsAreStable) {
  // A peer online at the trough stays online at every higher-availability
  // round (threshold semantics).
  DiurnalTraceGenerator generator(500, 24, 0.6, 0.2);
  const auto schedule = generator.generate(24, 9);
  std::vector<bool> online_at_trough(500, false);
  for (const PeerId p : schedule[0]) online_at_trough[p.value()] = true;
  // Round 12 is the peak; everyone from the trough must still be there.
  std::vector<bool> online_at_peak(500, false);
  for (const PeerId p : schedule[12]) online_at_peak[p.value()] = true;
  for (std::size_t i = 0; i < 500; ++i) {
    if (online_at_trough[i]) {
      EXPECT_TRUE(online_at_peak[i]) << i;
    }
  }
}

TEST(DiurnalTrace, DeterministicPerSeed) {
  DiurnalTraceGenerator generator(100, 24, 0.5, 0.1);
  const auto a = generator.generate(10, 42);
  const auto b = generator.generate(10, 42);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) EXPECT_EQ(a[t], b[t]);
  const auto c = generator.generate(10, 43);
  bool any_difference = false;
  for (std::size_t t = 0; t < a.size() && !any_difference; ++t) {
    any_difference = a[t] != c[t];
  }
  EXPECT_TRUE(any_difference);
}

TEST(DiurnalTrace, WorksWithTraceChurn) {
  DiurnalTraceGenerator generator(200, 24, 0.5, 0.1);
  TraceChurn churn(200, generator.generate(48, 5));
  Rng rng(1);
  churn.reset(rng);
  const auto trough = churn.online_count();
  for (int t = 0; t < 12; ++t) churn.advance(rng);
  const auto peak = churn.online_count();
  EXPECT_GT(peak, trough);
}

}  // namespace
}  // namespace updp2p::churn
