#include "net/frame.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace updp2p::net {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Frame, RoundTripPreservesSourceAndPayload) {
  const auto payload = bytes_of({1, 2, 3, 250, 0, 7});
  std::vector<std::byte> wire;
  frame_datagram(common::PeerId(1234), payload, wire);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

  const auto parsed = parse_frame(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->from, common::PeerId(1234));
  EXPECT_TRUE(std::equal(parsed->payload.begin(), parsed->payload.end(),
                         payload.begin(), payload.end()));
}

TEST(Frame, RoundTripEmptyPayload) {
  std::vector<std::byte> wire;
  frame_datagram(common::PeerId(0), {}, wire);
  const auto parsed = parse_frame(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->from, common::PeerId(0));
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(Frame, ReusesOutputBuffer) {
  std::vector<std::byte> wire = bytes_of({9, 9, 9, 9, 9, 9, 9, 9, 9, 9});
  frame_datagram(common::PeerId(7), bytes_of({42}), wire);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 1);
  EXPECT_EQ(wire.back(), std::byte{42});
}

TEST(Frame, RejectsShortBuffer) {
  std::vector<std::byte> wire;
  frame_datagram(common::PeerId(5), {}, wire);
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_FALSE(
        parse_frame(std::span<const std::byte>(wire.data(), len)).has_value())
        << "length " << len;
  }
}

TEST(Frame, RejectsBadMagic) {
  std::vector<std::byte> wire;
  frame_datagram(common::PeerId(5), {}, wire);
  auto bad = wire;
  bad[0] = std::byte{0x00};
  EXPECT_FALSE(parse_frame(bad).has_value());
  bad = wire;
  bad[1] = std::byte{0xFF};
  EXPECT_FALSE(parse_frame(bad).has_value());
}

TEST(Frame, RejectsUnknownVersionAndFlags) {
  std::vector<std::byte> wire;
  frame_datagram(common::PeerId(5), {}, wire);
  auto bad = wire;
  bad[2] = static_cast<std::byte>(kFrameVersion + 1);
  EXPECT_FALSE(parse_frame(bad).has_value());
  bad = wire;
  bad[3] = std::byte{1};  // reserved flags must be zero
  EXPECT_FALSE(parse_frame(bad).has_value());
}

TEST(Frame, RejectsOutOfRangeSourceId) {
  // Hand-build a header whose id field is kMaxFramePeerId (first rejected
  // value) — frame_datagram cannot produce it without an invalid PeerId.
  std::vector<std::byte> wire;
  frame_datagram(common::PeerId(0), {}, wire);
  const auto id = static_cast<std::uint32_t>(kMaxFramePeerId);
  for (int i = 0; i < 4; ++i) {
    wire[4 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((id >> (8 * i)) & 0xFF);
  }
  EXPECT_FALSE(parse_frame(wire).has_value());

  // One below the bound parses.
  const auto ok_id = static_cast<std::uint32_t>(kMaxFramePeerId - 1);
  for (int i = 0; i < 4; ++i) {
    wire[4 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((ok_id >> (8 * i)) & 0xFF);
  }
  const auto parsed = parse_frame(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->from.value(), ok_id);
}

TEST(Frame, RandomBytesNeverCrashAndValidFramesSurviveNoise) {
  common::Rng rng(0xF4A3);
  std::vector<std::byte> buffer;
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::size_t len = rng.uniform_int(0, 64);
    buffer.clear();
    for (std::size_t i = 0; i < len; ++i) {
      buffer.push_back(static_cast<std::byte>(rng.uniform_int(0, 255)));
    }
    // Must not crash; any accepted frame must satisfy the invariants.
    if (const auto parsed = parse_frame(buffer)) {
      EXPECT_LT(parsed->from.value(), kMaxFramePeerId);
      EXPECT_EQ(parsed->payload.size(), buffer.size() - kFrameHeaderBytes);
    }
  }
}

}  // namespace
}  // namespace updp2p::net
