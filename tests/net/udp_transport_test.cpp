// In-process UDP loopback tests: two transports on ephemeral 127.0.0.1
// ports exchanging real datagrams through the kernel. Waits use
// wait_readable (poll with timeout), never bare sleeps.
#include "net/udp_transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <csignal>
#include <string>

#include "net/frame.hpp"

namespace updp2p::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out;
  for (const char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

std::string text_of(const DatagramBytes& bytes) {
  std::string out;
  for (const std::byte b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

/// Opens a transport on an ephemeral port; aborts the test on failure.
std::unique_ptr<UdpTransport> open_ephemeral(common::PeerId self) {
  UdpTransportConfig config;
  config.self = self;
  config.bind_port = 0;
  std::string error;
  auto transport = UdpTransport::open(config, &error);
  EXPECT_NE(transport, nullptr) << error;
  return transport;
}

/// Drains until at least `want` datagrams arrive or ~2s passes.
std::size_t drain_some(UdpTransport& transport,
                       std::vector<InboundDatagram>& inbox,
                       std::size_t want) {
  for (int spins = 0; spins < 200 && inbox.size() < want; ++spins) {
    (void)transport.wait_readable(10);
    (void)transport.drain(inbox);
  }
  return inbox.size();
}

TEST(UdpTransport, RoundTripOverLoopback) {
  auto a = open_ephemeral(common::PeerId(1));
  auto b = open_ephemeral(common::PeerId(2));
  ASSERT_TRUE(a && b);
  a->add_route({common::PeerId(2), "127.0.0.1", b->bound_port()});
  b->add_route({common::PeerId(1), "127.0.0.1", a->bound_port()});

  ASSERT_TRUE(a->send(common::PeerId(2), bytes_of("ping")));
  std::vector<InboundDatagram> inbox;
  ASSERT_EQ(drain_some(*b, inbox, 1), 1u);
  EXPECT_EQ(inbox[0].from, common::PeerId(1));
  EXPECT_EQ(text_of(inbox[0].bytes), "ping");

  ASSERT_TRUE(b->send(common::PeerId(1), bytes_of("pong")));
  inbox.clear();
  ASSERT_EQ(drain_some(*a, inbox, 1), 1u);
  EXPECT_EQ(inbox[0].from, common::PeerId(2));
  EXPECT_EQ(text_of(inbox[0].bytes), "pong");

  EXPECT_EQ(a->stats().datagrams_sent, 1u);
  EXPECT_EQ(a->stats().datagrams_received, 1u);
}

TEST(UdpTransport, SendWithoutRouteFails) {
  auto a = open_ephemeral(common::PeerId(1));
  ASSERT_TRUE(a);
  EXPECT_FALSE(a->send(common::PeerId(42), bytes_of("void")));
  EXPECT_EQ(a->stats().send_no_route, 1u);
}

TEST(UdpTransport, GarbageDatagramIsRejectedNotDelivered) {
  auto a = open_ephemeral(common::PeerId(1));
  auto b = open_ephemeral(common::PeerId(2));
  ASSERT_TRUE(a && b);

  // Send raw unframed bytes straight at b's socket.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(b->bound_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const std::string garbage = "definitely not a frame";
  ASSERT_GT(::sendto(a->fd(), garbage.data(), garbage.size(), 0,
                     reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);

  std::vector<InboundDatagram> inbox;
  for (int spins = 0; spins < 100 && b->stats().frames_rejected == 0;
       ++spins) {
    (void)b->wait_readable(10);
    (void)b->drain(inbox);
  }
  EXPECT_TRUE(inbox.empty());
  EXPECT_EQ(b->stats().frames_rejected, 1u);
}

TEST(UdpTransport, OfflineWindowDropsKernelBufferedDatagrams) {
  auto a = open_ephemeral(common::PeerId(1));
  auto b = open_ephemeral(common::PeerId(2));
  ASSERT_TRUE(a && b);
  a->add_route({common::PeerId(2), "127.0.0.1", b->bound_port()});

  b->set_listening(false);
  ASSERT_TRUE(a->send(common::PeerId(2), bytes_of("smuggled?")));

  // Drain while offline: the datagram is read off the socket and dropped.
  std::vector<InboundDatagram> inbox;
  for (int spins = 0; spins < 100 && b->stats().dropped_offline == 0;
       ++spins) {
    (void)b->wait_readable(10);
    (void)b->drain(inbox);
  }
  EXPECT_EQ(b->stats().dropped_offline, 1u);
  EXPECT_TRUE(inbox.empty());

  // Back online: nothing left over from the offline window.
  b->set_listening(true);
  (void)b->wait_readable(20);
  EXPECT_EQ(b->drain(inbox), 0u);
}

TEST(UdpTransport, OpenReportsBindConflict) {
  auto a = open_ephemeral(common::PeerId(1));
  ASSERT_TRUE(a);
  UdpTransportConfig config;
  config.self = common::PeerId(2);
  config.bind_port = a->bound_port();  // already taken
  std::string error;
  auto clash = UdpTransport::open(config, &error);
  EXPECT_EQ(clash, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(UdpTransport, OpenRejectsOutOfRangeSelfId) {
  UdpTransportConfig config;
  config.self =
      common::PeerId(static_cast<std::uint32_t>(kMaxFramePeerId));
  std::string error;
  EXPECT_EQ(UdpTransport::open(config, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(UdpTransport, WaitReadableTimesOutQuietly) {
  auto a = open_ephemeral(common::PeerId(1));
  ASSERT_TRUE(a);
  EXPECT_FALSE(a->wait_readable(1));
  EXPECT_FALSE(a->wait_readable(0));
}

/// RAII SIGALRM storm: an interval timer interrupting every blocking
/// syscall every few milliseconds, installed WITHOUT SA_RESTART so
/// poll/sendto/recv actually return EINTR. Restores the previous
/// disposition on destruction.
class SignalStorm {
 public:
  SignalStorm() {
    struct sigaction action{};
    action.sa_handler = [](int) {};
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGALRM, &action, &previous_);
    itimerval interval{};
    interval.it_interval.tv_usec = 2000;
    interval.it_value.tv_usec = 2000;
    setitimer(ITIMER_REAL, &interval, nullptr);
  }
  ~SignalStorm() {
    itimerval off{};
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &previous_, nullptr);
  }

 private:
  struct sigaction previous_{};
};

// Regression: wait_readable used to treat poll()'s EINTR return as a
// timeout, so any signal (a harness reaping a child, an interval timer)
// silently cut the wait short. It must now hold the full deadline.
TEST(UdpTransport, WaitReadableSurvivesSignalInterruptions) {
  auto a = open_ephemeral(common::PeerId(1));
  ASSERT_TRUE(a);
  SignalStorm storm;

  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(a->wait_readable(250));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // ~125 interruptions landed inside this window; without the EINTR
  // retry the wait returns after the FIRST one (~2ms).
  EXPECT_GE(elapsed.count(), 200);

  // And a datagram still wakes the waiter under the storm.
  auto b = open_ephemeral(common::PeerId(2));
  ASSERT_TRUE(b);
  b->add_route({common::PeerId(1), "127.0.0.1", a->bound_port()});
  ASSERT_TRUE(b->send(common::PeerId(1), bytes_of("wake")));
  EXPECT_TRUE(a->wait_readable(2000));
  std::vector<InboundDatagram> inbox;
  ASSERT_EQ(drain_some(*a, inbox, 1), 1u);
  EXPECT_EQ(text_of(inbox[0].bytes), "wake");
}

// Regression: sendto is retried on EINTR and a kernel short write counts
// as send_short_writes (a drop), never as a silent success. Under the
// storm every datagram must still go out whole.
TEST(UdpTransport, SendDeliversEverythingUnderSignalStorm) {
  auto a = open_ephemeral(common::PeerId(1));
  auto b = open_ephemeral(common::PeerId(2));
  ASSERT_TRUE(a && b);
  a->add_route({common::PeerId(2), "127.0.0.1", b->bound_port()});
  SignalStorm storm;

  constexpr std::size_t kCount = 200;
  const std::vector<std::byte> payload = bytes_of(std::string(512, 'z'));
  std::size_t accepted = 0;
  std::vector<InboundDatagram> inbox;
  for (std::size_t i = 0; i < kCount; ++i) {
    if (a->send(common::PeerId(2), payload)) ++accepted;
    // Drain as we go so the receive buffer never overflows.
    (void)b->drain(inbox);
  }
  EXPECT_EQ(accepted, kCount);
  EXPECT_EQ(a->stats().send_errors, 0u);
  EXPECT_EQ(a->stats().send_short_writes, 0u);
  EXPECT_EQ(a->stats().datagrams_sent, kCount);
  EXPECT_EQ(drain_some(*b, inbox, kCount), kCount);
  for (const InboundDatagram& datagram : inbox) {
    EXPECT_EQ(datagram.bytes.size(), payload.size());
  }
}

}  // namespace
}  // namespace updp2p::net
