#include "net/latency.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace updp2p::net {
namespace {

TEST(ConstantLatency, AlwaysSameDelay) {
  ConstantLatency latency(0.5);
  common::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(latency.sample(rng), 0.5);
  }
}

TEST(UniformLatency, StaysWithinBounds) {
  UniformLatency latency(0.1, 0.3);
  common::Rng rng(2);
  common::RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    const double d = latency.sample(rng);
    EXPECT_GE(d, 0.1);
    EXPECT_LE(d, 0.3);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), 0.2, 0.002);
}

TEST(ExponentialLatency, BasePlusTail) {
  ExponentialLatency latency(0.05, 0.1);
  common::Rng rng(3);
  common::RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    const double d = latency.sample(rng);
    EXPECT_GE(d, 0.05);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), 0.15, 0.005);
}

TEST(LatencyModels, UsableThroughBasePointer) {
  std::unique_ptr<LatencyModel> model =
      std::make_unique<ConstantLatency>(1.0);
  common::Rng rng(4);
  EXPECT_DOUBLE_EQ(model->sample(rng), 1.0);
}

}  // namespace
}  // namespace updp2p::net
