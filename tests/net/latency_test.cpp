#include "net/latency.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace updp2p::net {
namespace {

TEST(ConstantLatency, AlwaysSameDelay) {
  ConstantLatency latency(0.5);
  common::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(latency.sample(rng), 0.5);
  }
}

TEST(UniformLatency, StaysWithinBounds) {
  UniformLatency latency(0.1, 0.3);
  common::Rng rng(2);
  common::RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    const double d = latency.sample(rng);
    EXPECT_GE(d, 0.1);
    EXPECT_LE(d, 0.3);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), 0.2, 0.002);
}

TEST(ExponentialLatency, BasePlusTail) {
  ExponentialLatency latency(0.05, 0.1);
  common::Rng rng(3);
  common::RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    const double d = latency.sample(rng);
    EXPECT_GE(d, 0.05);
    stats.add(d);
  }
  EXPECT_NEAR(stats.mean(), 0.15, 0.005);
}

TEST(LatencyModels, UsableThroughBasePointer) {
  std::unique_ptr<LatencyModel> model =
      std::make_unique<ConstantLatency>(1.0);
  common::Rng rng(4);
  EXPECT_DOUBLE_EQ(model->sample(rng), 1.0);
}

// --- counter-based engine (ISSUE 3 satellite): both overloads share one ---
// --- distribution implementation, and StreamRng draws are reproducible ---

TEST(LatencyModels, StreamRngOverloadThroughBasePointer) {
  std::unique_ptr<LatencyModel> model =
      std::make_unique<ConstantLatency>(0.25);
  common::StreamRng rng(4, 0, 0);
  EXPECT_DOUBLE_EQ(model->sample(rng), 0.25);
}

TEST(LatencyModels, StreamRngSequencesReproduceUnderSameKey) {
  UniformLatency uniform(0.1, 0.3);
  ExponentialLatency exponential(0.05, 0.1);
  const auto draw = [&](std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t purpose) {
    common::StreamRng rng(seed, stream, purpose);
    std::vector<double> samples;
    for (int i = 0; i < 64; ++i) samples.push_back(uniform.sample(rng));
    for (int i = 0; i < 64; ++i) samples.push_back(exponential.sample(rng));
    return samples;
  };
  // Identical (seed, stream, purpose) → identical sequence.
  EXPECT_EQ(draw(11, 22, 33), draw(11, 22, 33));
  // Perturbing any one key component changes the sequence.
  EXPECT_NE(draw(11, 22, 33), draw(12, 22, 33));
  EXPECT_NE(draw(11, 22, 33), draw(11, 23, 33));
  EXPECT_NE(draw(11, 22, 33), draw(11, 22, 34));
}

TEST(LatencyModels, StreamRngSamplesStayInDistributionBounds) {
  UniformLatency uniform(0.1, 0.3);
  ExponentialLatency exponential(0.05, 0.1);
  common::StreamRng rng(0xFACE, 17, 0x1A7E);
  common::RunningStats uniform_stats;
  for (int i = 0; i < 50'000; ++i) {
    const double d = uniform.sample(rng);
    ASSERT_GE(d, 0.1);
    ASSERT_LE(d, 0.3);
    uniform_stats.add(d);
  }
  EXPECT_NEAR(uniform_stats.mean(), 0.2, 0.002);
  common::RunningStats exp_stats;
  for (int i = 0; i < 100'000; ++i) {
    const double d = exponential.sample(rng);
    ASSERT_GE(d, 0.05);
    exp_stats.add(d);
  }
  EXPECT_NEAR(exp_stats.mean(), 0.15, 0.005);
}

TEST(LatencyModels, PinnedStreamRngSequence) {
  // Golden pin: these exact samples fell out of (seed=1, stream=2,
  // purpose=3) when the dual-engine port landed. Any change to the mixin,
  // Philox keying or uniform01 mapping shows up here.
  UniformLatency uniform(0.0, 1.0);
  common::StreamRng rng(1, 2, 3);
  const double expected[4] = {
      0.69241494111765978,
      0.97829426112408635,
      0.96014122369173538,
      0.94360612349676021,
  };
  for (const double want : expected) {
    EXPECT_DOUBLE_EQ(uniform.sample(rng), want);
  }
}

}  // namespace
}  // namespace updp2p::net
