#include "net/message_bus.hpp"

#include <gtest/gtest.h>

#include <string>

namespace updp2p::net {
namespace {

using common::PeerId;
using common::Rng;

using StringBus = MessageBus<std::string>;

auto always_online = [](PeerId) { return true; };

TEST(MessageBus, DeliversToOnlinePeers) {
  StringBus bus;
  Rng rng(1);
  bus.send(PeerId(1), PeerId(2), "hello", 10, 0);
  EXPECT_EQ(bus.pending_count(), 1u);
  const auto delivered = bus.deliver_round(always_online, rng);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].from, PeerId(1));
  EXPECT_EQ(delivered[0].to, PeerId(2));
  EXPECT_EQ(delivered[0].payload, "hello");
  EXPECT_EQ(delivered[0].size_bytes, 10u);
  EXPECT_EQ(bus.pending_count(), 0u);
}

TEST(MessageBus, DropsMessagesToOfflinePeers) {
  StringBus bus;
  Rng rng(1);
  bus.send(PeerId(1), PeerId(2), "a", 1, 0);
  bus.send(PeerId(1), PeerId(3), "b", 1, 0);
  const auto delivered = bus.deliver_round(
      [](PeerId to) { return to == PeerId(3); }, rng);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].payload, "b");
  EXPECT_EQ(bus.stats().messages_to_offline, 1u);
  EXPECT_EQ(bus.stats().messages_delivered, 1u);
}

TEST(MessageBus, StatsAccumulate) {
  StringBus bus;
  Rng rng(1);
  bus.send(PeerId(1), PeerId(2), "x", 100, 0);
  bus.send(PeerId(1), PeerId(2), "y", 50, 0);
  (void)bus.deliver_round(always_online, rng);
  EXPECT_EQ(bus.stats().messages_sent, 2u);
  EXPECT_EQ(bus.stats().bytes_sent, 150u);
  EXPECT_DOUBLE_EQ(bus.stats().delivery_ratio(), 1.0);
  bus.reset_stats();
  EXPECT_EQ(bus.stats().messages_sent, 0u);
}

TEST(MessageBus, EmptyRoundDeliversNothing) {
  StringBus bus;
  Rng rng(1);
  EXPECT_TRUE(bus.deliver_round(always_online, rng).empty());
  EXPECT_DOUBLE_EQ(bus.stats().delivery_ratio(), 1.0);  // vacuous
}

TEST(MessageBus, RandomLossApproximatesProbability) {
  StringBus bus(0.25);
  Rng rng(42);
  constexpr int kMessages = 20'000;
  for (int i = 0; i < kMessages; ++i) {
    bus.send(PeerId(1), PeerId(2), "m", 1, 0);
  }
  const auto delivered = bus.deliver_round(always_online, rng);
  const double loss_rate = 1.0 - static_cast<double>(delivered.size()) /
                                     static_cast<double>(kMessages);
  EXPECT_NEAR(loss_rate, 0.25, 0.01);
  EXPECT_EQ(bus.stats().messages_dropped + bus.stats().messages_delivered,
            static_cast<std::uint64_t>(kMessages));
}

TEST(MessageBus, LossZeroNeverDrops) {
  StringBus bus(0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) bus.send(PeerId(0), PeerId(1), "m", 1, 0);
  EXPECT_EQ(bus.deliver_round(always_online, rng).size(), 100u);
  EXPECT_EQ(bus.stats().messages_dropped, 0u);
}

TEST(MessageBus, LinkFilterBlocksSelectedLinks) {
  StringBus bus;
  Rng rng(1);
  bus.set_link_filter([](PeerId from, PeerId to) {
    return !(from == PeerId(1) && to == PeerId(2));
  });
  bus.send(PeerId(1), PeerId(2), "blocked", 1, 0);
  bus.send(PeerId(2), PeerId(1), "allowed", 1, 0);
  const auto delivered = bus.deliver_round(always_online, rng);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].payload, "allowed");
  // §3: peers across a cut perceive each other as offline, but the bus
  // attributes the loss to its own counter so experiments stay honest.
  EXPECT_EQ(bus.stats().messages_partitioned, 1u);
  EXPECT_EQ(bus.stats().messages_to_offline, 0u);
}

TEST(MessageBus, LinkFilterCanBeHealed) {
  StringBus bus;
  Rng rng(1);
  bus.set_link_filter([](PeerId, PeerId) { return false; });
  bus.send(PeerId(0), PeerId(1), "first", 1, 0);
  EXPECT_TRUE(bus.deliver_round(always_online, rng).empty());
  bus.set_link_filter(nullptr);
  bus.send(PeerId(0), PeerId(1), "second", 1, 1);
  EXPECT_EQ(bus.deliver_round(always_online, rng).size(), 1u);
}

TEST(MessageBus, MessagesQueueAcrossSends) {
  StringBus bus;
  Rng rng(1);
  bus.send(PeerId(0), PeerId(1), "first", 1, 0);
  bus.send(PeerId(0), PeerId(1), "second", 1, 0);
  const auto delivered = bus.deliver_round(always_online, rng);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].payload, "first");
  EXPECT_EQ(delivered[1].payload, "second");
}

// ---------------------------------------------------------------------------
// ShardedMessageBus: the two-phase, per-(src, dst)-cell bus behind the
// parallel round engine.

using ShardedStringBus = ShardedMessageBus<std::string>;

TEST(ShardedMessageBus, ShardOfPartitionsContiguously) {
  ShardedStringBus bus(/*shard_count=*/4, /*population=*/100);
  EXPECT_EQ(bus.shard_count(), 4u);
  EXPECT_EQ(bus.shard_of(PeerId(0)), 0u);
  EXPECT_EQ(bus.shard_of(PeerId(24)), 0u);
  EXPECT_EQ(bus.shard_of(PeerId(25)), 1u);
  EXPECT_EQ(bus.shard_of(PeerId(99)), 3u);
  // Ids past the population clamp into the last shard instead of indexing
  // out of bounds.
  EXPECT_EQ(bus.shard_of(PeerId(1'000)), 3u);
}

TEST(ShardedMessageBus, TwoPhaseDelivery) {
  ShardedStringBus bus(2, 10);
  bus.send(PeerId(0), PeerId(7), "early", 5, 0, /*seq=*/0);
  EXPECT_EQ(bus.pending_count(), 1u);
  bus.begin_round();
  EXPECT_EQ(bus.pending_count(), 0u);
  // Sends after begin_round queue for the NEXT round.
  bus.send(PeerId(1), PeerId(7), "late", 4, 1, /*seq=*/0);

  std::vector<ShardedStringBus::EnvelopeT> batch;
  bus.collect_into(bus.shard_of(PeerId(7)), batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, "early");
  EXPECT_EQ(batch[0].from, PeerId(0));
  EXPECT_EQ(batch[0].size_bytes, 5u);

  bus.begin_round();
  bus.collect_into(bus.shard_of(PeerId(7)), batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, "late");
}

TEST(ShardedMessageBus, CollectSortsCanonically) {
  // Envelopes arrive sorted by (to, from, seq) regardless of the send
  // order or which source shard they came from — the property that makes
  // delivery order independent of shard scheduling.
  ShardedStringBus bus(4, 40);
  bus.send_from_shard(bus.shard_of(PeerId(30)), PeerId(30), PeerId(3), "d",
                      1, 0, 0);
  bus.send_from_shard(bus.shard_of(PeerId(5)), PeerId(5), PeerId(2), "b2",
                      1, 0, 7);
  bus.send_from_shard(bus.shard_of(PeerId(5)), PeerId(5), PeerId(2), "b1",
                      1, 0, 3);
  bus.send_from_shard(bus.shard_of(PeerId(12)), PeerId(12), PeerId(2), "c",
                      1, 0, 0);
  bus.send_from_shard(bus.shard_of(PeerId(20)), PeerId(20), PeerId(1), "a",
                      1, 0, 0);
  bus.begin_round();

  std::vector<ShardedStringBus::EnvelopeT> batch;
  bus.collect_into(0, batch);  // peers 0..9 live in shard 0
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[0].payload, "a");   // to=1
  EXPECT_EQ(batch[1].payload, "b1");  // to=2, from=5, seq=3
  EXPECT_EQ(batch[2].payload, "b2");  // to=2, from=5, seq=7
  EXPECT_EQ(batch[3].payload, "c");   // to=2, from=12
  EXPECT_EQ(batch[4].payload, "d");   // to=3
}

TEST(ShardedMessageBus, StatsMergeAcrossShardSlots) {
  ShardedStringBus bus(2, 10);
  bus.send(PeerId(0), PeerId(9), "x", 10, 0, 0);  // shard 0's slot
  bus.send(PeerId(9), PeerId(0), "y", 20, 0, 0);  // shard 1's slot
  bus.shard_stats(0).messages_delivered = 1;
  bus.shard_stats(1).messages_dropped = 1;
  const auto merged = bus.stats();
  EXPECT_EQ(merged.messages_sent, 2u);
  EXPECT_EQ(merged.bytes_sent, 30u);
  EXPECT_EQ(merged.messages_delivered, 1u);
  EXPECT_EQ(merged.messages_dropped, 1u);
}

TEST(ShardedMessageBus, SingleShardDegenerateCase) {
  ShardedStringBus bus(1, 3);
  EXPECT_EQ(bus.shard_of(PeerId(0)), 0u);
  EXPECT_EQ(bus.shard_of(PeerId(2)), 0u);
  bus.send(PeerId(0), PeerId(1), "m", 1, 0, 0);
  bus.begin_round();
  std::vector<ShardedStringBus::EnvelopeT> batch;
  bus.collect_into(0, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, "m");
}

}  // namespace
}  // namespace updp2p::net
