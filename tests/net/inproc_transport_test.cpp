#include "net/inproc_transport.hpp"

#include <gtest/gtest.h>

#include <string>

namespace updp2p::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out;
  for (const char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

std::string text_of(const DatagramBytes& bytes) {
  std::string out;
  for (const std::byte b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

TEST(InprocNetwork, DeliversAfterLatency) {
  InprocNetworkConfig config;
  config.latency = std::make_shared<ConstantLatency>(0.1);
  InprocNetwork network(config);
  auto a = network.attach(common::PeerId(1));
  auto b = network.attach(common::PeerId(2));

  EXPECT_TRUE(a->send(common::PeerId(2), bytes_of("hi")));
  EXPECT_EQ(network.in_flight(), 1u);

  std::vector<InboundDatagram> inbox;
  network.advance_to(0.05);  // before the delay elapses
  EXPECT_EQ(b->drain(inbox), 0u);

  network.advance_to(0.1);
  ASSERT_EQ(b->drain(inbox), 1u);
  EXPECT_EQ(inbox[0].from, common::PeerId(1));
  EXPECT_EQ(text_of(inbox[0].bytes), "hi");
  EXPECT_EQ(network.stats().datagrams_delivered, 1u);
}

TEST(InprocNetwork, DeliveryOrderIsTimeThenSubmission) {
  // Uniform latency makes the two datagrams race; the schedule must still
  // be a pure function of the seed.
  InprocNetworkConfig config;
  config.latency = std::make_shared<UniformLatency>(0.01, 0.2);
  config.seed = 77;
  InprocNetwork network(config);
  auto a = network.attach(common::PeerId(1));
  auto b = network.attach(common::PeerId(2));
  auto c = network.attach(common::PeerId(3));

  ASSERT_TRUE(a->send(common::PeerId(3), bytes_of("from-a-0")));
  ASSERT_TRUE(b->send(common::PeerId(3), bytes_of("from-b-0")));
  ASSERT_TRUE(a->send(common::PeerId(3), bytes_of("from-a-1")));
  network.advance_to(1.0);

  std::vector<InboundDatagram> first;
  c->drain(first);
  ASSERT_EQ(first.size(), 3u);

  // An identically-seeded rebuild reproduces the exact arrival order.
  InprocNetwork network2(config);
  auto a2 = network2.attach(common::PeerId(1));
  auto b2 = network2.attach(common::PeerId(2));
  auto c2 = network2.attach(common::PeerId(3));
  ASSERT_TRUE(a2->send(common::PeerId(3), bytes_of("from-a-0")));
  ASSERT_TRUE(b2->send(common::PeerId(3), bytes_of("from-b-0")));
  ASSERT_TRUE(a2->send(common::PeerId(3), bytes_of("from-a-1")));
  network2.advance_to(1.0);

  std::vector<InboundDatagram> second;
  c2->drain(second);
  ASSERT_EQ(second.size(), 3u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(text_of(first[i].bytes), text_of(second[i].bytes)) << i;
    EXPECT_EQ(first[i].from, second[i].from) << i;
  }
}

TEST(InprocNetwork, LossIsDeterministicPerSeed) {
  InprocNetworkConfig config;
  config.loss_probability = 0.5;
  config.seed = 1234;
  config.latency = std::make_shared<ConstantLatency>(0.01);

  const auto run = [&config] {
    InprocNetwork network(config);
    auto a = network.attach(common::PeerId(1));
    auto b = network.attach(common::PeerId(2));
    for (int i = 0; i < 200; ++i) {
      (void)a->send(common::PeerId(2), bytes_of(std::to_string(i)));
    }
    network.advance_to(1.0);
    std::vector<InboundDatagram> inbox;
    b->drain(inbox);
    std::vector<std::string> texts;
    for (const auto& d : inbox) texts.push_back(text_of(d.bytes));
    return texts;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.size(), 50u);   // some survive
  EXPECT_LT(first.size(), 150u);  // some are lost
  EXPECT_EQ(first, second);
}

TEST(InprocNetwork, IndependentLinksDoNotPerturbEachOther) {
  // Counter-based per-link streams: traffic on link 1->3 must not change
  // what happens on link 1->2.
  InprocNetworkConfig config;
  config.loss_probability = 0.3;
  config.seed = 99;
  config.latency = std::make_shared<UniformLatency>(0.01, 0.1);

  const auto run = [&config](bool extra_traffic) {
    InprocNetwork network(config);
    auto a = network.attach(common::PeerId(1));
    auto b = network.attach(common::PeerId(2));
    auto c = network.attach(common::PeerId(3));
    std::vector<std::string> got;
    for (int i = 0; i < 100; ++i) {
      (void)a->send(common::PeerId(2), bytes_of("x" + std::to_string(i)));
      if (extra_traffic) {
        (void)a->send(common::PeerId(3), bytes_of("noise"));
      }
    }
    network.advance_to(1.0);
    std::vector<InboundDatagram> inbox;
    b->drain(inbox);
    for (const auto& d : inbox) got.push_back(text_of(d.bytes));
    (void)c;
    return got;
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(InprocNetwork, OfflineEndpointDropsInsteadOfQueueing) {
  InprocNetworkConfig config;
  config.latency = std::make_shared<ConstantLatency>(0.01);
  InprocNetwork network(config);
  auto a = network.attach(common::PeerId(1));
  auto b = network.attach(common::PeerId(2));

  b->set_listening(false);
  ASSERT_TRUE(a->send(common::PeerId(2), bytes_of("lost")));
  network.advance_to(0.5);
  b->set_listening(true);
  network.advance_to(1.0);

  std::vector<InboundDatagram> inbox;
  EXPECT_EQ(b->drain(inbox), 0u);  // never delivered later
  EXPECT_EQ(network.stats().dropped_offline, 1u);
  EXPECT_EQ(b->stats().dropped_offline, 1u);
}

TEST(InprocNetwork, SendToUnattachedPeerFails) {
  InprocNetwork network;
  auto a = network.attach(common::PeerId(1));
  EXPECT_FALSE(a->send(common::PeerId(9), bytes_of("void")));
  EXPECT_EQ(a->stats().send_no_route, 1u);
}

TEST(InprocNetwork, DetachedDestinationCountsDrop) {
  InprocNetworkConfig config;
  config.latency = std::make_shared<ConstantLatency>(0.1);
  InprocNetwork network(config);
  auto a = network.attach(common::PeerId(1));
  auto b = network.attach(common::PeerId(2));
  ASSERT_TRUE(a->send(common::PeerId(2), bytes_of("late")));
  b.reset();  // endpoint gone while the datagram is in flight
  network.advance_to(1.0);
  EXPECT_EQ(network.stats().dropped_detached, 1u);
}

TEST(InprocNetwork, EndpointSurvivesNetworkDestruction) {
  std::unique_ptr<InprocTransport> orphan;
  {
    InprocNetwork network;
    orphan = network.attach(common::PeerId(1));
  }
  EXPECT_FALSE(orphan->send(common::PeerId(2), bytes_of("nowhere")));
  std::vector<InboundDatagram> inbox;
  EXPECT_EQ(orphan->drain(inbox), 0u);
}

}  // namespace
}  // namespace updp2p::net
