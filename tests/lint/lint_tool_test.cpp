// Fixture-driven end-to-end tests for updp2p-lint.
//
// Each case installs fixture files from tests/lint/fixtures/ into a fresh
// temporary tree at the path that puts them in (or out of) a rule's scope,
// runs the real binary with --root pointing at that tree, and asserts the
// exact `path:line: rule-id` diagnostics and the exit code. Every rule has
// a must-flag fixture and a near-miss fixture; the suppression syntax has
// valid, bare (reason-less) and unknown-rule cases.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunOutput {
  int exit_code = -1;
  std::string text;  // stdout + stderr
};

class LintToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string pattern =
        (fs::temp_directory_path() / "updp2p_lint_XXXXXX").string();
    ASSERT_NE(::mkdtemp(pattern.data()), nullptr);
    root_ = pattern;
  }
  void TearDown() override {
    std::error_code ignored;
    fs::remove_all(root_, ignored);
  }

  /// Copies fixtures/<fixture> to <root>/<dest> (creating directories).
  void install(const std::string& fixture, const std::string& dest) {
    const fs::path from = fs::path(UPDP2P_LINT_FIXTURES) / fixture;
    const fs::path to = root_ / dest;
    fs::create_directories(to.parent_path());
    fs::copy_file(from, to, fs::copy_options::overwrite_existing);
  }

  /// Writes literal content to <root>/<dest> (for baseline files).
  void write_file(const std::string& dest, const std::string& content) {
    const fs::path to = root_ / dest;
    fs::create_directories(to.parent_path());
    FILE* f = std::fopen(to.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }

  RunOutput run_lint(const std::string& extra_args = "") const {
    const std::string command = std::string("\"") + UPDP2P_LINT_PATH +
                                "\" --root \"" + root_.string() + "\" " +
                                extra_args + " 2>&1";
    FILE* pipe = ::popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    RunOutput out;
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
      out.text.append(buffer.data(), got);
    }
    const int status = ::pclose(pipe);
    out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return out;
  }

  /// Asserts `dest:line: rule` appears in the output.
  static void expect_finding(const RunOutput& out, const std::string& dest,
                             int line, const std::string& rule) {
    const std::string needle =
        dest + ":" + std::to_string(line) + ": " + rule;
    EXPECT_NE(out.text.find(needle), std::string::npos)
        << "missing diagnostic '" << needle << "' in:\n"
        << out.text;
  }

  static void expect_clean(const RunOutput& out) {
    EXPECT_EQ(out.exit_code, 0) << out.text;
    EXPECT_NE(out.text.find("0 finding(s)"), std::string::npos) << out.text;
  }

  fs::path root_;
};

TEST_F(LintToolTest, DeterminismFlagsClocksAndEntropyInSim) {
  install("determinism_flagged.cpp", "src/sim/determinism_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/determinism_flagged.cpp", 5, "determinism");
  expect_finding(out, "src/sim/determinism_flagged.cpp", 10, "determinism");
  expect_finding(out, "src/sim/determinism_flagged.cpp", 11, "determinism");
}

TEST_F(LintToolTest, DeterminismAllowsRealTimeInRuntime) {
  install("determinism_allowlisted.cpp",
          "src/runtime/determinism_allowlisted.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, DeterminismIgnoresCommentsStringsAndLookalikes) {
  install("determinism_near_miss.cpp", "src/sim/determinism_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, RngDisciplineFlagsRawEngineAndDistribution) {
  install("rng_flagged.cpp", "src/gossip/rng_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/gossip/rng_flagged.cpp", 5, "rng-discipline");
  expect_finding(out, "src/gossip/rng_flagged.cpp", 6, "rng-discipline");
}

TEST_F(LintToolTest, RngDisciplineAllowsTheSanctionedHome) {
  install("rng_home.hpp", "src/common/rng.hpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, IterationOrderFlagsRangeForOverUnordered) {
  install("iteration_flagged.cpp", "src/sim/iteration_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/iteration_flagged.cpp", 11, "iteration-order");
  expect_finding(out, "src/sim/iteration_flagged.cpp", 20, "iteration-order");
}

TEST_F(LintToolTest, IterationOrderAllowsOrderedAndLookupUse) {
  install("iteration_near_miss.cpp", "src/sim/iteration_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, IterationOrderSeesDeclarationsInCompanionHeader) {
  install("iteration_header.hpp", "src/gossip/iteration_header.hpp");
  install("iteration_header.cpp", "src/gossip/iteration_header.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/gossip/iteration_header.cpp", 9,
                 "iteration-order");
}

TEST_F(LintToolTest, WireTaintFlagsUnguardedWireResize) {
  install("wire_flagged.cpp", "src/net/wire_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/net/wire_flagged.cpp", 10, "wire-taint");
}

TEST_F(LintToolTest, WireTaintAllowsGuardedAndNonWireSizes) {
  install("wire_near_miss.cpp", "src/net/wire_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireTaintFlagsChunkLevelSizes) {
  install("wire_chunk_flagged.cpp", "src/gossip/codec.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/gossip/codec.cpp", 14, "wire-taint");
  expect_finding(out, "src/gossip/codec.cpp", 19, "wire-taint");
}

TEST_F(LintToolTest, WireTaintAcceptsChunkLevelGuards) {
  install("wire_chunk_near_miss.cpp", "src/gossip/codec.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireTaintFlagsProbeDerivedSizes) {
  install("wire_probe_flagged.cpp", "src/net/wire_probe_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/net/wire_probe_flagged.cpp", 11, "wire-taint");
  expect_finding(out, "src/net/wire_probe_flagged.cpp", 16, "wire-taint");
}

TEST_F(LintToolTest, WireTaintAcceptsGuardedProbesAndFrameConstants) {
  install("wire_probe_near_miss.cpp", "src/net/wire_probe_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireTaintFlagsStoreRecordSizes) {
  install("store_record_flagged.cpp", "src/store/wal_replay.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/store/wal_replay.cpp", 12, "wire-taint");
  expect_finding(out, "src/store/wal_replay.cpp", 17, "wire-taint");
}

TEST_F(LintToolTest, WireTaintAcceptsStoreCapsAndValidatedPrefixes) {
  install("store_record_near_miss.cpp", "src/store/wal_replay.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireTaintOnlyAppliesToDecodeSurface) {
  // The identical unguarded resizes are out of scope outside
  // codec/net/store.
  install("wire_flagged.cpp", "src/sim/wire_flagged.cpp");
  install("store_record_flagged.cpp", "src/sim/store_record_flagged.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireTaintFollowsTaintAcrossCalls) {
  // The helper reads the byte buffer; the caller only sees its return
  // value. The cross-file summary must carry the taint to the resize.
  install("wire_flow_flagged.cpp", "src/net/wire_flow_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/net/wire_flow_flagged.cpp", 21, "wire-taint");
}

TEST_F(LintToolTest, WireTaintAcceptsFarChecksAndValidatorHelpers) {
  install("wire_flow_near_miss.cpp", "src/net/wire_flow_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, ProbeTrustFlagsStateMutationFromProbeFields) {
  install("probe_trust_flagged.cpp", "src/net/probe_trust_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/net/probe_trust_flagged.cpp", 22, "probe-trust");
  expect_finding(out, "src/net/probe_trust_flagged.cpp", 23, "probe-trust");
}

TEST_F(LintToolTest, ProbeTrustAllowsBookkeepingAndDecodedPaths) {
  install("probe_trust_near_miss.cpp", "src/net/probe_trust_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, ShardGuardFlagsAccessWithoutShardOrLock) {
  install("shard_guard_flagged.cpp", "src/sim/shard_guard_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/shard_guard_flagged.cpp", 16, "shard-guard");
  expect_finding(out, "src/sim/shard_guard_flagged.cpp", 21, "shard-guard");
  expect_finding(out, "src/sim/shard_guard_flagged.cpp", 22, "shard-guard");
}

TEST_F(LintToolTest, ShardGuardAcceptsShardParamLockHoldsAndCtor) {
  install("shard_guard_near_miss.cpp", "src/sim/shard_guard_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, SarifOutputIsSchemaShaped) {
  install("determinism_flagged.cpp", "src/sim/determinism_flagged.cpp");
  const RunOutput out = run_lint("--format sarif");
  EXPECT_EQ(out.exit_code, 1) << out.text;
  EXPECT_NE(out.text.find("sarif-2.1.0"), std::string::npos) << out.text;
  EXPECT_NE(out.text.find("\"version\": \"2.1.0\""), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("\"ruleId\": \"determinism\""), std::string::npos)
      << out.text;
  EXPECT_NE(out.text.find("\"startLine\": 5"), std::string::npos) << out.text;
  EXPECT_NE(out.text.find("\"uri\": \"src/sim/determinism_flagged.cpp\""),
            std::string::npos)
      << out.text;
}

TEST_F(LintToolTest, BaselineSuppressesKnownFindingsAndRejectsStale) {
  install("determinism_flagged.cpp", "src/sim/determinism_flagged.cpp");
  write_file("baseline.txt",
             "determinism src/sim/determinism_flagged.cpp:5\n"
             "determinism src/sim/determinism_flagged.cpp:10\n"
             "determinism src/sim/determinism_flagged.cpp:11\n");
  const std::string baseline_arg =
      "--baseline \"" + (root_ / "baseline.txt").string() + "\"";
  const RunOutput suppressed = run_lint(baseline_arg);
  EXPECT_EQ(suppressed.exit_code, 0) << suppressed.text;

  write_file("baseline.txt",
             "determinism src/sim/determinism_flagged.cpp:5\n"
             "determinism src/sim/determinism_flagged.cpp:10\n"
             "determinism src/sim/determinism_flagged.cpp:11\n"
             "determinism src/sim/determinism_flagged.cpp:99\n");
  const RunOutput stale = run_lint(baseline_arg);
  EXPECT_EQ(stale.exit_code, 1) << stale.text;
  EXPECT_NE(stale.text.find("stale baseline entry"), std::string::npos)
      << stale.text;
}

TEST_F(LintToolTest, AssertDisciplineFlagsRawAssert) {
  install("assert_flagged.cpp", "src/version/assert_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/version/assert_flagged.cpp", 5,
                 "assert-discipline");
}

TEST_F(LintToolTest, AssertDisciplineAllowsStaticAssertAndEnsure) {
  install("assert_near_miss.cpp", "src/version/assert_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, ValidSuppressionsSilenceFindings) {
  install("suppression_ok.cpp", "src/sim/suppression_ok.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, BareSuppressionIsAFindingAndSuppressesNothing) {
  install("suppression_bare.cpp", "src/sim/suppression_bare.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/suppression_bare.cpp", 6,
                 "suppression-reason");
  expect_finding(out, "src/sim/suppression_bare.cpp", 7, "determinism");
}

TEST_F(LintToolTest, UnknownRuleSuppressionIsAFinding) {
  install("suppression_unknown.cpp", "src/sim/suppression_unknown.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/suppression_unknown.cpp", 6,
                 "suppression-reason");
  expect_finding(out, "src/sim/suppression_unknown.cpp", 7, "determinism");
}

TEST_F(LintToolTest, CleanTreeExitsZero) {
  install("iteration_near_miss.cpp", "src/sim/a.cpp");
  install("wire_near_miss.cpp", "src/net/b.cpp");
  install("assert_near_miss.cpp", "src/version/c.cpp");
  expect_clean(run_lint());
}

}  // namespace
