// Fixture-driven end-to-end tests for updp2p-lint.
//
// Each case installs fixture files from tests/lint/fixtures/ into a fresh
// temporary tree at the path that puts them in (or out of) a rule's scope,
// runs the real binary with --root pointing at that tree, and asserts the
// exact `path:line: rule-id` diagnostics and the exit code. Every rule has
// a must-flag fixture and a near-miss fixture; the suppression syntax has
// valid, bare (reason-less) and unknown-rule cases.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunOutput {
  int exit_code = -1;
  std::string text;  // stdout + stderr
};

class LintToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string pattern =
        (fs::temp_directory_path() / "updp2p_lint_XXXXXX").string();
    ASSERT_NE(::mkdtemp(pattern.data()), nullptr);
    root_ = pattern;
  }
  void TearDown() override {
    std::error_code ignored;
    fs::remove_all(root_, ignored);
  }

  /// Copies fixtures/<fixture> to <root>/<dest> (creating directories).
  void install(const std::string& fixture, const std::string& dest) {
    const fs::path from = fs::path(UPDP2P_LINT_FIXTURES) / fixture;
    const fs::path to = root_ / dest;
    fs::create_directories(to.parent_path());
    fs::copy_file(from, to, fs::copy_options::overwrite_existing);
  }

  RunOutput run_lint() const {
    const std::string command = std::string("\"") + UPDP2P_LINT_PATH +
                                "\" --root \"" + root_.string() + "\" 2>&1";
    FILE* pipe = ::popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    RunOutput out;
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
      out.text.append(buffer.data(), got);
    }
    const int status = ::pclose(pipe);
    out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return out;
  }

  /// Asserts `dest:line: rule` appears in the output.
  static void expect_finding(const RunOutput& out, const std::string& dest,
                             int line, const std::string& rule) {
    const std::string needle =
        dest + ":" + std::to_string(line) + ": " + rule;
    EXPECT_NE(out.text.find(needle), std::string::npos)
        << "missing diagnostic '" << needle << "' in:\n"
        << out.text;
  }

  static void expect_clean(const RunOutput& out) {
    EXPECT_EQ(out.exit_code, 0) << out.text;
    EXPECT_NE(out.text.find("0 finding(s)"), std::string::npos) << out.text;
  }

  fs::path root_;
};

TEST_F(LintToolTest, DeterminismFlagsClocksAndEntropyInSim) {
  install("determinism_flagged.cpp", "src/sim/determinism_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/determinism_flagged.cpp", 5, "determinism");
  expect_finding(out, "src/sim/determinism_flagged.cpp", 10, "determinism");
  expect_finding(out, "src/sim/determinism_flagged.cpp", 11, "determinism");
}

TEST_F(LintToolTest, DeterminismAllowsRealTimeInRuntime) {
  install("determinism_allowlisted.cpp",
          "src/runtime/determinism_allowlisted.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, DeterminismIgnoresCommentsStringsAndLookalikes) {
  install("determinism_near_miss.cpp", "src/sim/determinism_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, RngDisciplineFlagsRawEngineAndDistribution) {
  install("rng_flagged.cpp", "src/gossip/rng_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/gossip/rng_flagged.cpp", 5, "rng-discipline");
  expect_finding(out, "src/gossip/rng_flagged.cpp", 6, "rng-discipline");
}

TEST_F(LintToolTest, RngDisciplineAllowsTheSanctionedHome) {
  install("rng_home.hpp", "src/common/rng.hpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, IterationOrderFlagsRangeForOverUnordered) {
  install("iteration_flagged.cpp", "src/sim/iteration_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/iteration_flagged.cpp", 11, "iteration-order");
  expect_finding(out, "src/sim/iteration_flagged.cpp", 20, "iteration-order");
}

TEST_F(LintToolTest, IterationOrderAllowsOrderedAndLookupUse) {
  install("iteration_near_miss.cpp", "src/sim/iteration_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, IterationOrderSeesDeclarationsInCompanionHeader) {
  install("iteration_header.hpp", "src/gossip/iteration_header.hpp");
  install("iteration_header.cpp", "src/gossip/iteration_header.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/gossip/iteration_header.cpp", 9,
                 "iteration-order");
}

TEST_F(LintToolTest, WireBoundsFlagsUnguardedWireResize) {
  install("wire_flagged.cpp", "src/net/wire_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/net/wire_flagged.cpp", 10, "wire-bounds");
}

TEST_F(LintToolTest, WireBoundsAllowsGuardedAndNonWireSizes) {
  install("wire_near_miss.cpp", "src/net/wire_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireBoundsFlagsChunkLevelSizes) {
  install("wire_chunk_flagged.cpp", "src/gossip/codec.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/gossip/codec.cpp", 14, "wire-bounds");
  expect_finding(out, "src/gossip/codec.cpp", 19, "wire-bounds");
}

TEST_F(LintToolTest, WireBoundsAcceptsChunkLevelGuards) {
  install("wire_chunk_near_miss.cpp", "src/gossip/codec.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireBoundsFlagsProbeDerivedSizes) {
  install("wire_probe_flagged.cpp", "src/net/wire_probe_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/net/wire_probe_flagged.cpp", 11, "wire-bounds");
  expect_finding(out, "src/net/wire_probe_flagged.cpp", 16, "wire-bounds");
}

TEST_F(LintToolTest, WireBoundsAcceptsGuardedProbesAndFrameConstants) {
  install("wire_probe_near_miss.cpp", "src/net/wire_probe_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireBoundsFlagsStoreRecordSizes) {
  install("store_record_flagged.cpp", "src/store/wal_replay.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/store/wal_replay.cpp", 12, "wire-bounds");
  expect_finding(out, "src/store/wal_replay.cpp", 17, "wire-bounds");
}

TEST_F(LintToolTest, WireBoundsAcceptsStoreCapsAndValidatedPrefixes) {
  install("store_record_near_miss.cpp", "src/store/wal_replay.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, WireBoundsOnlyAppliesToDecodeSurface) {
  // The identical unguarded resizes are out of scope outside
  // codec/net/store.
  install("wire_flagged.cpp", "src/sim/wire_flagged.cpp");
  install("store_record_flagged.cpp", "src/sim/store_record_flagged.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, AssertDisciplineFlagsRawAssert) {
  install("assert_flagged.cpp", "src/version/assert_flagged.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/version/assert_flagged.cpp", 5,
                 "assert-discipline");
}

TEST_F(LintToolTest, AssertDisciplineAllowsStaticAssertAndEnsure) {
  install("assert_near_miss.cpp", "src/version/assert_near_miss.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, ValidSuppressionsSilenceFindings) {
  install("suppression_ok.cpp", "src/sim/suppression_ok.cpp");
  expect_clean(run_lint());
}

TEST_F(LintToolTest, BareSuppressionIsAFindingAndSuppressesNothing) {
  install("suppression_bare.cpp", "src/sim/suppression_bare.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/suppression_bare.cpp", 6,
                 "suppression-reason");
  expect_finding(out, "src/sim/suppression_bare.cpp", 7, "determinism");
}

TEST_F(LintToolTest, UnknownRuleSuppressionIsAFinding) {
  install("suppression_unknown.cpp", "src/sim/suppression_unknown.cpp");
  const RunOutput out = run_lint();
  EXPECT_EQ(out.exit_code, 1) << out.text;
  expect_finding(out, "src/sim/suppression_unknown.cpp", 6,
                 "suppression-reason");
  expect_finding(out, "src/sim/suppression_unknown.cpp", 7, "determinism");
}

TEST_F(LintToolTest, CleanTreeExitsZero) {
  install("iteration_near_miss.cpp", "src/sim/a.cpp");
  install("wire_near_miss.cpp", "src/net/b.cpp");
  install("assert_near_miss.cpp", "src/version/c.cpp");
  expect_clean(run_lint());
}

}  // namespace
