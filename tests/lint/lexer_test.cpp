// Unit tests for the updp2p-lint lexer and suppression parser (linked
// against updp2p_lint_core directly, no subprocess).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "updp2p_lint/lexer.hpp"
#include "updp2p_lint/rule.hpp"

namespace updp2p::lint {
namespace {

bool has_ident(const LexResult& lexed, const std::string& text) {
  return std::any_of(lexed.tokens.begin(), lexed.tokens.end(),
                     [&text](const Token& t) {
                       return t.kind == TokenKind::kIdentifier &&
                              t.text == text;
                     });
}

TEST(LintLexer, StringsAndCommentsAreNotCode) {
  const LexResult lexed = lex(
      "int x = 0; // steady_clock in a comment\n"
      "const char* s = \"random_device in a string\";\n"
      "/* rand() in a block\n   comment */ int y = 1;\n");
  EXPECT_TRUE(has_ident(lexed, "x"));
  EXPECT_TRUE(has_ident(lexed, "y"));
  EXPECT_FALSE(has_ident(lexed, "steady_clock"));
  EXPECT_FALSE(has_ident(lexed, "random_device"));
  EXPECT_FALSE(has_ident(lexed, "rand"));
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 3);
}

TEST(LintLexer, RawStringsSwallowEverything) {
  const LexResult lexed =
      lex("auto s = R\"delim(srand(time(nullptr)) \")\" )delim\"; int z;\n");
  EXPECT_FALSE(has_ident(lexed, "srand"));
  EXPECT_TRUE(has_ident(lexed, "z"));
}

TEST(LintLexer, LineNumbersSurviveMultilineConstructs) {
  const LexResult lexed = lex("/* line 1\n line 2\n*/\nint after;\n");
  const auto it =
      std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                   [](const Token& t) { return t.text == "after"; });
  ASSERT_NE(it, lexed.tokens.end());
  EXPECT_EQ(it->line, 4);
}

TEST(LintLexer, ScopeResolutionIsOneToken) {
  const LexResult lexed = lex("std::chrono::seconds s{1};\n");
  const auto count_colons =
      std::count_if(lexed.tokens.begin(), lexed.tokens.end(),
                    [](const Token& t) { return t.text == "::"; });
  const auto count_single =
      std::count_if(lexed.tokens.begin(), lexed.tokens.end(),
                    [](const Token& t) { return t.text == ":"; });
  EXPECT_EQ(count_colons, 2);
  EXPECT_EQ(count_single, 0);
}

TEST(LintLexer, PreprocessorTokensAreMarked) {
  const LexResult lexed = lex("#include <ctime>\nint time_user;\n");
  for (const Token& t : lexed.tokens) {
    if (t.text == "ctime" || t.text == "include") {
      EXPECT_TRUE(t.preproc);
    }
    if (t.text == "time_user") {
      EXPECT_FALSE(t.preproc);
    }
  }
}

// Line-number pinning: diagnostics are only as good as the lexer's line
// accounting, so every phase-2 splice shape gets its own regression.

int line_of(const LexResult& lexed, const std::string& text) {
  const auto it =
      std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                   [&text](const Token& t) { return t.text == text; });
  return it == lexed.tokens.end() ? -1 : it->line;
}

TEST(LintLexer, PreprocContinuationKeepsLineCount) {
  const LexResult lexed = lex(
      "#define WIDE_MACRO(x) \\\n"
      "  do_something(x); \\\n"
      "  do_more(x)\n"
      "int after;\n");
  EXPECT_EQ(line_of(lexed, "after"), 4);
  // The continuation lines are still preprocessor territory.
  for (const Token& t : lexed.tokens) {
    if (t.text == "do_more") {
      EXPECT_TRUE(t.preproc);
    }
  }
}

TEST(LintLexer, PreprocContinuationToleratesTrailingWhitespaceAndCr) {
  // GCC and Clang both splice `\ \n` and `\<CR><LF>`; the flag and the
  // line counter must survive either shape.
  const LexResult lexed = lex(
      "#define A(x) \\  \n"
      "  first(x)\n"
      "#define B(x) \\\r\n"
      "  second(x)\n"
      "int after;\n");
  EXPECT_EQ(line_of(lexed, "after"), 5);
  for (const Token& t : lexed.tokens) {
    if (t.text == "first" || t.text == "second") {
      EXPECT_TRUE(t.preproc);
    }
  }
}

TEST(LintLexer, RawStringWithCommentSlashesKeepsLineCount) {
  const LexResult lexed = lex(
      "auto s = R\"(not // a comment\n"
      "still raw /* not a block */\n"
      ")\";\n"
      "int after;\n");
  EXPECT_EQ(line_of(lexed, "after"), 4);
  EXPECT_FALSE(has_ident(lexed, "comment"));
}

TEST(LintLexer, SingleLineRawStringWithSlashesDoesNotEatFollowingCode) {
  const LexResult lexed = lex("auto s = R\"(// nope)\"; int same_line;\n"
                              "int next_line;\n");
  EXPECT_EQ(line_of(lexed, "same_line"), 1);
  EXPECT_EQ(line_of(lexed, "next_line"), 2);
}

TEST(LintLexer, StringLiteralEscapedNewlineKeepsLineCount) {
  const LexResult lexed = lex(
      "const char* s = \"split \\\n"
      "string\";\n"
      "int after;\n");
  EXPECT_EQ(line_of(lexed, "after"), 3);
}

TEST(LintLexer, CommentContinuationSwallowsNextLine) {
  // A `//` comment ending in a backslash continues onto the next source
  // line; code there is commentary, not tokens.
  const LexResult lexed = lex(
      "int x; // trailing continuation \\\n"
      "int not_code;\n"
      "int after;\n");
  EXPECT_FALSE(has_ident(lexed, "not_code"));
  EXPECT_EQ(line_of(lexed, "after"), 3);
}

TEST(LintSuppressions, ParsesRuleIdAndReason) {
  const LexResult lexed =
      lex("int x; // lint-allow(iteration-order): order-free fold\n");
  const auto parsed = parse_suppressions(lexed.comments);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].rule_id, "iteration-order");
  EXPECT_EQ(parsed[0].reason, "order-free fold");
  EXPECT_EQ(parsed[0].line, 1);
}

TEST(LintSuppressions, MissingReasonYieldsEmptyReason) {
  const LexResult lexed = lex("// lint-allow(determinism)\n"
                              "// lint-allow(determinism):   \n");
  const auto parsed = parse_suppressions(lexed.comments);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].rule_id, "determinism");
  EXPECT_TRUE(parsed[0].reason.empty());
  EXPECT_TRUE(parsed[1].reason.empty());
}

TEST(LintSuppressions, HalfTypedDirectiveIsMalformed) {
  const LexResult lexed = lex("// lint-allow determinism: forgot parens\n");
  const auto parsed = parse_suppressions(lexed.comments);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].rule_id.empty());
}

}  // namespace
}  // namespace updp2p::lint
