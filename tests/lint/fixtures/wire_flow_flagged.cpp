// Fixture: taint across calls — read_total() lifts its result out of raw
// frame bytes, so the value is wire-derived even though the caller never
// touches the buffer itself. The helper's summary must carry the taint
// into ingest(), where the resize has no bound on any path.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

std::uint64_t read_total(std::span<const std::byte> bytes) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 4 && i < bytes.size(); ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

void ingest(std::span<const std::byte> bytes,
            std::vector<std::uint32_t>& out) {
  const std::uint64_t total = read_total(bytes);
  out.resize(total);
}
