// Fixture: lazy-decode probe sizing — a length lifted from a frame probe
// sizes a container with no recognised bound in sight. Probe results come
// from the same hostile bytes as full decodes; the rule must catch the
// probe vocabulary ("probe", "probed") on both resize and reserve.
#include <cstddef>
#include <cstdint>
#include <vector>

void stage_probed_frame(std::uint64_t probed_length,
                        std::vector<std::byte>& scratch) {
  scratch.resize(probed_length);
}

void stage_probe_batch(std::uint64_t probe_entries,
                       std::vector<std::uint32_t>& ids) {
  ids.reserve(probe_entries);
}
