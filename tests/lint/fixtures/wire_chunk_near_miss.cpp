// Fixture: the same chunk-level sizes are fine when a chunk-level bound
// (kArrayChunkMax / kMaxWireChunkKey) is checked nearby.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

inline constexpr std::uint64_t kArrayChunkMax = 4096;
inline constexpr std::uint64_t kMaxWireChunkKey = std::uint64_t{1} << 12;

void decode_chunk(const std::optional<std::uint64_t>& header,
                  std::vector<std::uint16_t>& lows) {
  if (!header || *header > kArrayChunkMax) return;
  const std::uint64_t cardinality = *header;
  lows.resize(cardinality);
}

void decode_chunk_table(std::uint64_t chunk_count,
                        std::vector<std::uint32_t>& keys) {
  if (chunk_count > kMaxWireChunkKey) return;
  keys.reserve(chunk_count);
}
