// Fixture: a bare lint-allow has no reason — it suppresses nothing and is
// itself a finding.
#include <chrono>

double wall_probe() {
  // lint-allow(determinism)
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
