// Fixture: wire-decoded count sizes a container with no bound in sight.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

void decode_peers(const std::optional<std::uint64_t>& count,
                  std::vector<std::uint32_t>& out) {
  if (!count) return;
  out.resize(*count);
}
