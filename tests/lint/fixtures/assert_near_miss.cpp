// Fixture: static_assert and UPDP2P_ENSURE are the sanctioned forms.
#define UPDP2P_ENSURE(expr, message) \
  do {                               \
    if (!(expr)) __builtin_trap();   \
  } while (false)

static_assert(sizeof(int) >= 4, "ILP32 or wider");

int checked_halve(int value) {
  UPDP2P_ENSURE(value % 2 == 0, "halving an odd value loses state");
  return value / 2;
}
