// Fixture: the same resize is fine with the kMaxWirePeerId guard visible,
// and sizes that are not wire-derived are never suspect.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

inline constexpr std::uint64_t kMaxWirePeerId = std::uint64_t{1} << 28;
inline constexpr std::size_t kFrameHeaderBytes = 8;

void decode_peers(const std::optional<std::uint64_t>& count,
                  std::vector<std::uint32_t>& out) {
  if (!count || *count >= kMaxWirePeerId) return;
  out.resize(*count);
}

void frame_scratch(const std::vector<std::byte>& payload,
                   std::vector<std::byte>& out) {
  out.reserve(kFrameHeaderBytes + payload.size());
}
