// Fixture: chunk-level decode sizing — a decoded chunk cardinality sizes a
// container with no recognised bound in sight. The rule must catch the
// chunked-peerset vocabulary ("cardinality", "chunk") even when the size
// was already unwrapped from its optional.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

void decode_chunk(const std::optional<std::uint64_t>& header,
                  std::vector<std::uint16_t>& lows) {
  if (!header) return;
  const std::uint64_t cardinality = *header;
  lows.resize(cardinality);
}

void decode_chunk_table(std::uint64_t chunk_count,
                        std::vector<std::uint32_t>& keys) {
  keys.reserve(chunk_count);
}
