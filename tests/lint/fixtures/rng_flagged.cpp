// Fixture: raw std engines and distributions outside src/common/rng.*.
#include <random>

int fork_the_discipline(unsigned seed) {
  std::mt19937 engine(seed);
  std::uniform_int_distribution<int> pick(0, 9);
  return pick(engine);
}
