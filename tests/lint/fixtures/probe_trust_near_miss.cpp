// Fixture: probe results feeding counters, dedup lookups and routing are
// the sanctioned uses; once a full decode's result is null-checked with
// an early exit, the frame's values may mutate state freely.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>

struct ProbeInfo {
  std::uint64_t version;
  std::uint32_t origin;
};

struct PushFrame {
  std::uint64_t version;
};

std::optional<ProbeInfo> probe_frame(std::span<const std::byte> bytes);
std::optional<PushFrame> decode_push(std::span<const std::byte> bytes);
void handle_update(std::uint64_t version);

class Replica {
 public:
  void on_frame(std::span<const std::byte> bytes) {
    const auto probe = probe_frame(bytes);
    if (!probe) return;
    if (seen_.contains(probe->version)) return;
    ++probe_count_;
    const auto push = decode_push(bytes);
    if (!push) return;
    last_version_ = push->version;
    handle_update(push->version);
  }

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t probe_count_ = 0;
  std::uint64_t last_version_ = 0;
};
