// Fixture (companion header): the unordered member is declared here; the
// violating range-for lives in the sibling .cpp.
#pragma once
#include <cstdint>
#include <unordered_map>

namespace fixture {
struct PendingAcks {
  std::unordered_map<std::uint32_t, std::uint32_t> pending_;
  std::uint64_t checksum() const;
};
}  // namespace fixture
