// Fixture: shard-guard — aware_ belongs to the owning shard and
// pending_jobs to jobs_mutex; total() reads aware_ with no shard index
// in scope (the PR-1 SweepPool stale-claim shape) and drain_jobs()
// touches pending_jobs without taking the lock.
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

class RoundState {
 public:
  void bump(std::size_t shard) { aware_[shard] += 1; }

  std::uint64_t total() {
    std::uint64_t sum = 0;
    for (std::uint64_t v : aware_) sum += v;
    return sum;
  }

  int drain_jobs() {
    const int drained = pending_jobs;
    pending_jobs = 0;
    return drained;
  }

 private:
  std::vector<std::uint64_t> aware_;  // guarded-by(shard)
  int pending_jobs = 0;               // guarded-by(jobs_mutex)
  std::mutex jobs_mutex;
};
