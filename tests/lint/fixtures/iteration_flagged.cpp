// Fixture: range-for over unordered containers in golden-feeding code.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Tracker {
  std::unordered_map<std::uint32_t, std::uint64_t> seen_rounds;

  std::uint64_t serialize_order_leak() const {
    std::uint64_t hash = 0;
    for (const auto& [peer, round] : seen_rounds) {
      hash = hash * 31 + peer + round;
    }
    return hash;
  }
};

int direct_temporary(const std::unordered_set<int>& live) {
  int first_seen = -1;
  for (const int peer : live) {
    first_seen = peer;
    break;
  }
  return first_seen;
}
