// Fixture: the same disk-derived sizes are fine when the store-side caps
// (kMaxWalRecordBytes / kMaxSnapshotBytes) are checked within the guard
// window — and sizing by a scan's already-validated byte counts
// (valid_bytes) must not trip the store vocabulary.
#include <cstddef>
#include <cstdint>
#include <vector>

inline constexpr std::uint32_t kMaxWalRecordBytes = 1u << 24;
inline constexpr std::uint64_t kMaxSnapshotBytes = std::uint64_t{1} << 30;

void stage_record_body(std::uint32_t record_len,
                       std::vector<std::byte>& scratch) {
  if (record_len >= kMaxWalRecordBytes) return;
  scratch.resize(record_len);
}

void stage_snapshot_records(std::uint64_t record_count,
                            std::vector<std::uint32_t>& values) {
  if (record_count > kMaxSnapshotBytes) return;
  values.reserve(record_count);
}

void keep_valid_prefix(std::size_t valid_bytes,
                       std::vector<std::byte>& log) {
  log.resize(valid_bytes);
}
