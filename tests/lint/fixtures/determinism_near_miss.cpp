// Fixture: near-misses the token-aware lexer must NOT flag.
// A comment mentioning std::random_device or steady_clock is prose, and so
// is a string literal; member calls and lookalike identifiers are not the
// banned constructs.
#include <string>

struct Stopwatch {
  double time(int scale) const { return 0.25 * scale; }
};

std::string describe() {
  // rand() and srand() are discussed here but never called.
  return "uses steady_clock and std::random_device for nothing";
}

double lookalikes(const Stopwatch& watch) {
  const char* raw = R"(system_clock::now() inside a raw string)";
  int time_point = 3;          // identifier prefix, not time()
  int rand_index = 7;          // identifier prefix, not rand()
  double measured = watch.time(2);  // member call named `time`
  return measured + time_point + rand_index + (raw != nullptr ? 1 : 0);
}
