// Fixture: the same probe-derived sizes are fine when a recognised bound
// is checked nearby — and sizing by trusted local frame constants
// (kFrameHeaderBytes) must never trip the probe vocabulary.
#include <cstddef>
#include <cstdint>
#include <vector>

inline constexpr std::uint64_t kMaxWirePeerId = std::uint64_t{1} << 28;
inline constexpr std::size_t kFrameHeaderBytes = 10;

void stage_probed_frame(std::uint64_t probed_length,
                        std::vector<std::byte>& scratch) {
  if (probed_length > kMaxWirePeerId) return;
  scratch.resize(probed_length);
}

void reserve_frame_header(std::vector<std::byte>& out, std::size_t payload) {
  out.reserve(kFrameHeaderBytes + payload);
}
