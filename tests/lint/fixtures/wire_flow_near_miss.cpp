// Fixture: the same cross-call taint is fine once a dominating check
// bounds it — whether the check sits far from the sink, or lives in a
// helper whose summary says "validates its argument".
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

inline constexpr std::uint64_t kMaxWirePeerId = std::uint64_t{1} << 28;

std::uint64_t read_total(std::span<const std::byte> bytes) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 4 && i < bytes.size(); ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

bool total_fits(std::uint64_t total) { return total <= kMaxWirePeerId; }

void ingest_far_check(std::span<const std::byte> bytes,
                      std::vector<std::uint32_t>& out) {
  const std::uint64_t total = read_total(bytes);
  if (total > bytes.size()) {
    return;
  }
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    checksum ^= static_cast<std::uint64_t>(bytes[i]);
  }
  (void)checksum;
  out.resize(total);
}

void ingest_validator_helper(std::span<const std::byte> bytes,
                             std::vector<std::uint32_t>& out) {
  const std::uint64_t total = read_total(bytes);
  if (!total_fits(total)) {
    return;
  }
  out.resize(total);
}
