// Fixture: raw assert() in library code vanishes in release builds.
#include <cassert>

int checked_halve(int value) {
  assert(value % 2 == 0);
  return value / 2;
}
