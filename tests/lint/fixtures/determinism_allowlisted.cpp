// Fixture: identical clock use is fine in the realtime allowlist
// (src/runtime, src/net, bench/, examples/) — real time is the point there.
#include <chrono>

double now_seconds() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
