// Fixture: ordered iteration and order-free lookups must NOT be flagged.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Tracker {
  std::map<std::uint32_t, std::uint64_t> ordered_rounds;
  std::unordered_map<std::uint32_t, std::uint64_t> index;

  std::uint64_t fold_ordered() const {
    std::uint64_t hash = 0;
    for (const auto& [peer, round] : ordered_rounds) {
      hash = hash * 31 + peer + round;
    }
    return hash;
  }

  std::uint64_t lookups(const std::vector<std::uint32_t>& peers) const {
    std::uint64_t total = 0;
    for (const std::uint32_t peer : peers) {
      const auto it = index.find(peer);
      if (it != index.end()) total += it->second;
    }
    return total;
  }
};
