// Fixture: range-for over a member whose unordered declaration is only
// visible in the companion header.
#include "iteration_header.hpp"

namespace fixture {

std::uint64_t PendingAcks::checksum() const {
  std::uint64_t hash = 0;
  for (const auto& [peer, round] : pending_) {
    hash = hash * 31 + peer + round;
  }
  return hash;
}

}  // namespace fixture
