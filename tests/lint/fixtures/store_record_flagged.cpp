// Fixture: durable-store record sizing — a WAL record length and a
// snapshot record count read from disk size containers with no recognised
// bound in sight. Disk bytes are hostile input (bit rot, torn writes), so
// the rule must catch the store vocabulary ("len", "record") under
// src/store/ on both resize and reserve.
#include <cstddef>
#include <cstdint>
#include <vector>

void stage_record_body(std::uint32_t record_len,
                       std::vector<std::byte>& scratch) {
  scratch.resize(record_len);
}

void stage_snapshot_records(std::uint64_t record_count,
                            std::vector<std::uint32_t>& values) {
  values.reserve(record_count);
}
