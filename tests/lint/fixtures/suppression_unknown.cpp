// Fixture: a typo'd rule id suppresses nothing and is flagged so it cannot
// rot silently.
#include <chrono>

double wall_probe() {
  // lint-allow(determinizm): reads the monotonic clock for a local probe
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
