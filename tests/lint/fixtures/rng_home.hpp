// Fixture: src/common/rng.hpp is the sanctioned home — engines and
// distribution machinery are allowed to live here.
#pragma once
#include <random>

namespace updp2p::common {
inline int reference_sample(unsigned seed) {
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  return unit(engine) < 0.5 ? 0 : 1;
}
}  // namespace updp2p::common
