// Fixture: probe-trust — probe_frame parses only enough of a hostile
// frame to route it; its fields must never be installed into replica
// state or handed to mutation paths without a full decode dominating.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

struct ProbeInfo {
  std::uint64_t version;
  std::uint32_t origin;
};

std::optional<ProbeInfo> probe_frame(std::span<const std::byte> bytes);
void handle_update(std::uint64_t version);

class Replica {
 public:
  void on_frame(std::span<const std::byte> bytes) {
    const auto probe = probe_frame(bytes);
    if (!probe) return;
    last_version_ = probe->version;
    handle_update(probe->version);
  }

 private:
  std::uint64_t last_version_ = 0;
};
