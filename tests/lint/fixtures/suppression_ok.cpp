// Fixture: well-formed suppressions silence findings — trailing on the
// same line and standalone on the line above both work.
#include <chrono>

double wall_probe() {
  const auto t = std::chrono::steady_clock::now();  // lint-allow(determinism): local profiling probe, never feeds goldens
  // lint-allow(determinism): second probe, also never feeds goldens
  const auto u = std::chrono::steady_clock::now();
  return static_cast<double>((u - t).count());
}
