// Fixture: every sanctioned way to touch guarded state — the owning
// shard index as a parameter (exact or `_shard`-suffixed), the named
// lock held via lock_guard, a holds() assertion for structurally
// sequential phases, construction (unshared), and locals that merely
// shadow a guarded field's name.
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

class SweepState {
 public:
  SweepState() { pending_jobs = 0; }

  void claim(std::size_t shard) { claims_[shard] += 1; }

  void merge_from(std::size_t src_shard) { claims_[src_shard] += 1; }

  // holds(shard): rounds are sequential here; no worker is running
  std::size_t chunk_count() { return claims_.size(); }

  void flush() {
    std::lock_guard<std::mutex> lock(jobs_mutex);
    pending_jobs += 1;
  }

  void unrelated_local() {
    int pending_jobs = 3;
    (void)pending_jobs;
  }

 private:
  std::vector<std::uint64_t> claims_;  // guarded-by(shard)
  int pending_jobs = 0;                // guarded-by(jobs_mutex)
  std::mutex jobs_mutex;
};
