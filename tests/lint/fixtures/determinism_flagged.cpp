// Fixture: every banned entropy/clock source in deterministic scope.
#include <chrono>

double now_seconds() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

unsigned roll() {
  srand(static_cast<unsigned>(time(nullptr)));
  return static_cast<unsigned>(rand());
}
