#include "analysis/flooding_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace updp2p::analysis {
namespace {

TEST(FloodingModel, ExpectedOnline) {
  EXPECT_DOUBLE_EQ(expected_online(10'000, 0.1), 1'000.0);
  EXPECT_DOUBLE_EQ(expected_online(500, 0.0), 0.0);
}

TEST(FloodingModel, ExpectedReached) {
  // E[reached in k attempts with x online of R] = x*k/R (§5.6).
  EXPECT_DOUBLE_EQ(expected_reached(100, 50, 1'000), 5.0);
}

TEST(FloodingModel, ExpectedAttemptsAsymptote) {
  // With R*p_on >> targets, E_x ≈ x / p_on.
  EXPECT_NEAR(expected_attempts_to_reach(10, 10'000, 0.1), 100.0, 0.5);
  EXPECT_NEAR(expected_attempts_to_reach(1, 1'000, 0.1), 10.0, 0.1);
}

TEST(FloodingModel, ExpectedAttemptsBlowUpWhenTooFewOnline) {
  // If the expected online count is far below the target, the correction
  // term dominates and the expectation explodes.
  const double scarce = expected_attempts_to_reach(50, 100, 0.1);
  EXPECT_GT(scarce, 1'000.0);
}

TEST(FloodingModel, ExpectedAttemptsInfiniteWhenNobodyOnline) {
  const double impossible = expected_attempts_to_reach(5, 10, 1e-9);
  EXPECT_TRUE(std::isinf(impossible) || impossible > 1e6);
}

TEST(FloodingModel, PureFloodingGeometricSum) {
  // 1 + k + k^2 for 2 rounds with k = 3 -> 13.
  EXPECT_DOUBLE_EQ(pure_flooding_messages(3.0, 2), 13.0);
  EXPECT_DOUBLE_EQ(pure_flooding_messages(1.0, 4), 5.0);
}

TEST(FloodingModel, RoundsToCoverLogarithm) {
  // fanout 4, everyone online, 10^4 peers: ceil(log_4 10^4) = 7 (§5.6 /
  // Table 2 Gnutella latency).
  EXPECT_EQ(flooding_rounds_to_cover(4.0, 1.0, 10'000), 7u);
  // fanout 40 at 10% online -> effective 4; covering 100 peers: ceil(log_4
  // 100) = 4.
  EXPECT_EQ(flooding_rounds_to_cover(40.0, 0.1, 100), 4u);
}

TEST(FloodingModel, SubcriticalFloodNeverCovers) {
  EXPECT_EQ(flooding_rounds_to_cover(5.0, 0.1, 1'000), 0u);
}

TEST(FloodingModel, DuplicateAvoidancePerPeerCost) {
  // §5.6: "there will be on an average f_r messages per online peer".
  EXPECT_DOUBLE_EQ(duplicate_avoidance_messages_per_peer(4.0), 4.0);
  EXPECT_DOUBLE_EQ(duplicate_avoidance_messages_per_peer(40.0), 40.0);
}

}  // namespace
}  // namespace updp2p::analysis
