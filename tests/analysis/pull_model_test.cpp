#include "analysis/pull_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace updp2p::analysis {
namespace {

TEST(PullModel, ZeroAttemptsNeverSucceed) {
  EXPECT_DOUBLE_EQ(pull_success_probability(100, 1.0, 1'000, 0), 0.0);
}

TEST(PullModel, MatchesClosedForm) {
  // P = 1 - (1 - R_on*F/R)^n (§4.3).
  const double p = pull_success_probability(100, 0.5, 1'000, 3);
  EXPECT_NEAR(p, 1.0 - std::pow(1.0 - 0.05, 3), 1e-12);
}

TEST(PullModel, MonotoneInAttempts) {
  double previous = 0.0;
  for (unsigned n = 1; n <= 20; ++n) {
    const double p = pull_success_probability(100, 0.5, 1'000, n);
    EXPECT_GT(p, previous);
    previous = p;
  }
  EXPECT_LT(previous, 1.0);
}

TEST(PullModel, NobodyAwareMeansZero) {
  EXPECT_DOUBLE_EQ(pull_success_probability(100, 0.0, 1'000, 50), 0.0);
}

TEST(PullModel, EveryoneOnlineAndAwareIsCertain) {
  EXPECT_DOUBLE_EQ(pull_success_probability(1'000, 1.0, 1'000, 1), 1.0);
}

TEST(PullModel, AttemptsForConfidenceInverts) {
  const unsigned n =
      pull_attempts_for_confidence(100, 1.0, 1'000, 0.999);
  // Paper §2-style arithmetic: 10% online needs ~65-66 attempts for 99.9%.
  EXPECT_GE(n, 60u);
  EXPECT_LE(n, 70u);
  // The returned n indeed achieves the confidence; n-1 does not.
  EXPECT_GE(pull_success_probability(100, 1.0, 1'000, n), 0.999);
  EXPECT_LT(pull_success_probability(100, 1.0, 1'000, n - 1), 0.999);
}

TEST(PullModel, AttemptsForConfidenceEdges) {
  EXPECT_EQ(pull_attempts_for_confidence(0, 1.0, 1'000, 0.99), 0u);
  EXPECT_EQ(pull_attempts_for_confidence(1'000, 1.0, 1'000, 0.99), 1u);
}

TEST(PullModel, ConstantAttemptsSufficeAtHighAwareness) {
  // Paper §4.3: "a constant number of pull attempts should give the update
  // information with high probability" once the push has spread.
  const unsigned n =
      pull_attempts_for_confidence(300, 0.95, 1'000, 0.99);
  EXPECT_LE(n, 14u);
}

TEST(PushCatchup, ZeroWhenNobodyPushes) {
  EXPECT_DOUBLE_EQ(push_catchup_probability(1'000, 0.0, 1.0, 1.0, 0.01, 0.0),
                   0.0);
  EXPECT_DOUBLE_EQ(push_catchup_probability(1'000, 0.1, 1.0, 0.0, 0.01, 0.0),
                   0.0);
}

TEST(PushCatchup, MatchesClosedForm) {
  // P = 1 - (1 - f_r*(1-l))^(R_on*f_new*sigma*PF) (§4.3).
  const double pushers = 1'000 * 0.1 * 0.9 * 0.8;
  const double reach = 0.01 * (1.0 - 0.3);
  const double expected = 1.0 - std::exp(pushers * std::log1p(-reach));
  EXPECT_NEAR(push_catchup_probability(1'000, 0.1, 0.9, 0.8, 0.01, 0.3),
              expected, 1e-12);
}

TEST(PushCatchup, LongerListLowersCatchup) {
  const double short_list =
      push_catchup_probability(1'000, 0.1, 1.0, 1.0, 0.01, 0.1);
  const double long_list =
      push_catchup_probability(1'000, 0.1, 1.0, 1.0, 0.01, 0.9);
  EXPECT_GT(short_list, long_list);
}

TEST(PushCatchup, FullReachIsCertain) {
  EXPECT_DOUBLE_EQ(push_catchup_probability(10, 1.0, 1.0, 1.0, 1.0, 0.0), 1.0);
}

}  // namespace
}  // namespace updp2p::analysis
