#include "analysis/forward_probability.hpp"

#include <gtest/gtest.h>

namespace updp2p::analysis {
namespace {

TEST(PfSchedule, ConstantIsConstant) {
  const auto pf = pf_constant(0.7);
  EXPECT_DOUBLE_EQ(pf(0), 0.7);
  EXPECT_DOUBLE_EQ(pf(100), 0.7);
  EXPECT_EQ(pf.label, "PF=0.70");
}

TEST(PfSchedule, LinearDecayClampsAtZero) {
  const auto pf = pf_linear_decay(0.1);
  EXPECT_DOUBLE_EQ(pf(0), 1.0);
  EXPECT_DOUBLE_EQ(pf(5), 0.5);
  EXPECT_DOUBLE_EQ(pf(10), 0.0);
  EXPECT_DOUBLE_EQ(pf(50), 0.0);
}

TEST(PfSchedule, GeometricDecay) {
  const auto pf = pf_geometric(0.9);
  EXPECT_DOUBLE_EQ(pf(0), 1.0);
  EXPECT_DOUBLE_EQ(pf(1), 0.9);
  EXPECT_NEAR(pf(10), 0.34867844, 1e-8);
}

TEST(PfSchedule, OffsetGeometricFloorsAtOffset) {
  const auto pf = pf_offset_geometric(0.8, 0.7, 0.2);
  EXPECT_DOUBLE_EQ(pf(0), 1.0);
  EXPECT_NEAR(pf(1), 0.76, 1e-12);
  EXPECT_NEAR(pf(50), 0.2, 1e-7);  // asymptote = offset
}

TEST(PfSchedule, HaasFloodsThenGossips) {
  const auto pf = pf_haas(0.8, 2);
  EXPECT_DOUBLE_EQ(pf(0), 1.0);
  EXPECT_DOUBLE_EQ(pf(1), 1.0);
  EXPECT_DOUBLE_EQ(pf(2), 1.0);
  EXPECT_DOUBLE_EQ(pf(3), 0.8);
  EXPECT_DOUBLE_EQ(pf(100), 0.8);
}

TEST(PfSchedule, GnutellaTtlAsHaasZero) {
  // TTL-limited flooding: PF=1 for TTL rounds then 0 (used by baselines).
  const auto pf = pf_haas(0.0, 7);
  EXPECT_DOUBLE_EQ(pf(7), 1.0);
  EXPECT_DOUBLE_EQ(pf(8), 0.0);
}

TEST(PfSchedule, LabelsAreDescriptive) {
  EXPECT_EQ(pf_geometric(0.9).label, "PF(t)=0.90^t");
  EXPECT_EQ(pf_linear_decay(0.1).label, "PF(t)=1-0.10t");
  EXPECT_EQ(pf_haas(0.8, 2).label, "G(0.80,2)");
  EXPECT_EQ(pf_offset_geometric(0.8, 0.7, 0.2).label,
            "PF(t)=0.80*0.70^t+0.20");
}

}  // namespace
}  // namespace updp2p::analysis
