#include "analysis/tuning.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace updp2p::analysis {
namespace {

TuningRequest typical() {
  TuningRequest request;
  request.total_replicas = 1'000;
  request.online_fraction = 0.2;
  request.sigma = 0.95;
  request.target_aware = 0.99;
  request.max_rounds99 = 30;
  return request;
}

TEST(Tuning, TypicalEnvironmentIsFeasible) {
  const auto result = recommend_parameters(typical());
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.fanout_fraction, 0.0);
  EXPECT_LE(result.fanout_fraction, 1.0);
  EXPECT_GE(result.predicted_aware, 0.99);
  EXPECT_LE(result.predicted_rounds99, 30u);
}

TEST(Tuning, RecommendationVerifiesInTheModel) {
  const auto request = typical();
  const auto result = recommend_parameters(request);
  ASSERT_TRUE(result.feasible);
  PushModelParams params;
  params.total_replicas = request.total_replicas;
  params.initial_online = request.online_fraction * request.total_replicas;
  params.sigma = request.sigma;
  params.fanout_fraction = result.fanout_fraction;
  params.pf = result.pf_decay_base >= 1.0
                  ? pf_constant(1.0)
                  : pf_geometric(result.pf_decay_base);
  const auto trajectory = evaluate_push(params);
  EXPECT_GE(trajectory.final_aware(), request.target_aware);
  EXPECT_NEAR(trajectory.messages_per_initial_online(),
              result.messages_per_online, 1e-9);
}

TEST(Tuning, DecayBeatsPlainFloodingOnCost) {
  // The optimizer should never recommend a configuration more expensive
  // than plain flooding at the same feasible fanout.
  const auto request = typical();
  const auto result = recommend_parameters(request);
  ASSERT_TRUE(result.feasible);
  PushModelParams flood;
  flood.total_replicas = request.total_replicas;
  flood.initial_online = request.online_fraction * request.total_replicas;
  flood.sigma = request.sigma;
  flood.fanout_fraction = result.fanout_fraction;
  const auto flooding = evaluate_push(flood);
  if (flooding.final_aware() >= request.target_aware) {
    EXPECT_LE(result.messages_per_online,
              flooding.messages_per_initial_online() + 1e-9);
  }
}

TEST(Tuning, HigherTargetCostsMore) {
  auto modest = typical();
  modest.target_aware = 0.90;
  auto strict = typical();
  strict.target_aware = 0.999;
  const auto cheap = recommend_parameters(modest);
  const auto expensive = recommend_parameters(strict);
  ASSERT_TRUE(cheap.feasible);
  ASSERT_TRUE(expensive.feasible);
  EXPECT_LE(cheap.messages_per_online, expensive.messages_per_online);
}

TEST(Tuning, InfeasibleEnvironmentReportedHonestly) {
  // Large population (so the fanout search cap of 4000 peers binds), almost
  // nobody online, heavy thinning, and a 3-round latency budget: no
  // configuration in range can deliver 99.9% coverage.
  TuningRequest impossible;
  impossible.total_replicas = 100'000;
  impossible.online_fraction = 0.001;
  impossible.sigma = 0.5;
  impossible.target_aware = 0.999;
  impossible.max_rounds99 = 3;
  const auto result = recommend_parameters(impossible);
  EXPECT_FALSE(result.feasible);
}

TEST(Tuning, TightLatencyBudgetForcesWiderFanout) {
  auto relaxed = typical();
  relaxed.max_rounds99 = 30;
  auto tight = typical();
  tight.max_rounds99 = 4;
  const auto slow = recommend_parameters(relaxed);
  const auto fast = recommend_parameters(tight);
  ASSERT_TRUE(slow.feasible);
  if (fast.feasible) {
    EXPECT_GE(fast.fanout_fraction, slow.fanout_fraction);
    EXPECT_LE(fast.predicted_rounds99, 4u);
  }
}

TEST(Tuning, SmallGroupsGetWholeGroupFanouts) {
  TuningRequest request;
  request.total_replicas = 20;
  request.online_fraction = 0.5;
  request.sigma = 1.0;
  request.target_aware = 0.95;
  const auto result = recommend_parameters(request);
  ASSERT_TRUE(result.feasible);
  // Fanout is a whole number of peers.
  const double fanout_peers = result.fanout_fraction * 20.0;
  EXPECT_NEAR(fanout_peers, std::round(fanout_peers), 1e-9);
}

}  // namespace
}  // namespace updp2p::analysis
