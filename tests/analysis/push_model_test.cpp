#include "analysis/push_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace updp2p::analysis {
namespace {

PushModelParams default_params() {
  PushModelParams params;
  params.total_replicas = 10'000;
  params.initial_online = 1'000;
  params.sigma = 0.95;
  params.fanout_fraction = 0.01;
  params.pf = pf_constant(1.0);
  return params;
}

TEST(PushModel, RoundZeroMatchesClosedForm) {
  const auto params = default_params();
  const auto trajectory = evaluate_push(params);
  ASSERT_FALSE(trajectory.rounds.empty());
  const auto& r0 = trajectory.rounds.front();
  EXPECT_EQ(r0.t, 0u);
  // M(0) = R * f_r (§4.2 Round 0).
  EXPECT_DOUBLE_EQ(r0.messages, 10'000 * 0.01);
  // f_new(0) = f_r; l(0) = f_r.
  EXPECT_DOUBLE_EQ(r0.new_aware, 0.01);
  EXPECT_DOUBLE_EQ(r0.aware, 0.01);
  EXPECT_DOUBLE_EQ(r0.list_length, 0.01);
  // L_M(0) = U + R*alpha*f_r = 100 + 10000*10*0.01.
  EXPECT_DOUBLE_EQ(r0.message_bytes, 100.0 + 1'000.0);
}

TEST(PushModel, RoundOneMatchesPaperExpression) {
  auto params = default_params();
  params.use_partial_list = true;
  const auto trajectory = evaluate_push(params);
  ASSERT_GE(trajectory.rounds.size(), 2u);
  const auto& r1 = trajectory.rounds[1];
  // M(1) = R_on(0)*f_r*sigma*PF(1) * R*f_r*(1-f_r)  (§4.2 Round 1).
  const double forwarders = 1'000 * 0.01 * 0.95 * 1.0;
  EXPECT_NEAR(r1.messages, forwarders * 10'000 * 0.01 * (1.0 - 0.01), 1e-9);
  // l(1) = 1-(1-f_r)^2.
  EXPECT_NEAR(r1.list_length, 1.0 - std::pow(0.99, 2), 1e-12);
}

TEST(PushModel, AwarenessIsMonotoneAndBounded) {
  const auto trajectory = evaluate_push(default_params());
  double previous = 0.0;
  for (const auto& r : trajectory.rounds) {
    EXPECT_GE(r.aware, previous);
    EXPECT_LE(r.aware, 1.0 + 1e-12);
    previous = r.aware;
  }
}

TEST(PushModel, CumulativeMessagesAreConsistent) {
  const auto trajectory = evaluate_push(default_params());
  double running = 0.0;
  for (const auto& r : trajectory.rounds) {
    running += r.messages;
    EXPECT_NEAR(r.cum_messages, running, 1e-9);
  }
  EXPECT_NEAR(trajectory.total_messages(), running, 1e-9);
}

TEST(PushModel, ListLengthFollowsInductionFormula) {
  // l(t) = 1 - (1-f_r)^(t+1) (§4.2 induction proof) when uncapped.
  const auto trajectory = evaluate_push(default_params());
  for (const auto& r : trajectory.rounds) {
    const double expected =
        1.0 - std::pow(1.0 - 0.01, static_cast<double>(r.t) + 1.0);
    EXPECT_NEAR(r.list_length, expected, 1e-9) << "round " << r.t;
  }
}

TEST(PushModel, PartialListReducesMessagesOnly) {
  auto with_list = default_params();
  with_list.use_partial_list = true;
  auto without_list = default_params();
  without_list.use_partial_list = false;
  const auto a = evaluate_push(with_list);
  const auto b = evaluate_push(without_list);
  EXPECT_LT(a.total_messages(), b.total_messages());
  // Awareness growth is identical (§4.2: extra messages are duplicates).
  EXPECT_NEAR(a.final_aware(), b.final_aware(), 1e-6);
}

TEST(PushModel, CappedListKeepsAwarenessUnchanged) {
  auto uncapped = default_params();
  auto capped = default_params();
  capped.list_cap = 0.05;
  const auto a = evaluate_push(uncapped);
  const auto b = evaluate_push(capped);
  EXPECT_NEAR(a.final_aware(), b.final_aware(), 1e-9);
  // Capping forwards less suppression info => more (duplicate) messages.
  EXPECT_GE(b.total_messages(), a.total_messages());
  // And caps the advertised list length.
  for (const auto& r : evaluate_push(capped).rounds) {
    EXPECT_LE(r.list_length, 0.05 + 1e-12);
  }
}

TEST(PushModel, ZeroCapEqualsNoList) {
  auto no_list = default_params();
  no_list.use_partial_list = false;
  auto zero_cap = default_params();
  zero_cap.list_cap = 0.0;
  EXPECT_NEAR(evaluate_push(no_list).total_messages(),
              evaluate_push(zero_cap).total_messages(), 1e-6);
}

TEST(PushModel, LowerSigmaMeansFewerMessages) {
  auto high = default_params();
  high.sigma = 1.0;
  auto low = default_params();
  low.sigma = 0.8;
  EXPECT_GT(evaluate_push(high).total_messages(),
            evaluate_push(low).total_messages());
}

TEST(PushModel, SubcriticalRumorDies) {
  auto params = default_params();
  params.initial_online = 100;  // Fig. 1(a) regime
  const auto trajectory = evaluate_push(params);
  EXPECT_TRUE(trajectory.died());
  EXPECT_LT(trajectory.final_aware(), 0.2);
}

TEST(PushModel, SupercriticalRumorSpreads) {
  const auto trajectory = evaluate_push(default_params());
  EXPECT_FALSE(trajectory.died());
  EXPECT_GT(trajectory.final_aware(), 0.99);
}

TEST(PushModel, DecayingPfReducesMessages) {
  auto flood = default_params();
  flood.sigma = 0.9;
  auto decay = flood;
  decay.pf = pf_geometric(0.9);
  const auto a = evaluate_push(flood);
  const auto b = evaluate_push(decay);
  EXPECT_LT(b.total_messages(), a.total_messages());
  EXPECT_GT(b.final_aware(), 0.95);  // still spreads
}

TEST(PushModel, AggressiveDecayKillsTheRumor) {
  auto params = default_params();
  params.sigma = 0.9;
  params.pf = pf_geometric(0.5);
  EXPECT_TRUE(evaluate_push(params).died());
}

TEST(PushModel, GnutellaDuplicateAvoidanceEquivalence) {
  // §5.6: with every aware peer forwarding once (PF=1, sigma=1, no list),
  // total messages per online peer ≈ the absolute fanout.
  PushModelParams params;
  params.total_replicas = 10'000;
  params.initial_online = 10'000;
  params.sigma = 1.0;
  params.fanout_fraction = 4.0 / 10'000;
  params.use_partial_list = false;
  const auto trajectory = evaluate_push(params);
  EXPECT_NEAR(trajectory.messages_per_initial_online(),
              params.absolute_fanout() * trajectory.final_aware(), 0.05);
}

TEST(PushModel, MessagesPerInitialOnlineNormalisation) {
  const auto trajectory = evaluate_push(default_params());
  EXPECT_NEAR(trajectory.messages_per_initial_online(),
              trajectory.total_messages() / 1'000.0, 1e-9);
}

TEST(PushModel, RoundsToFractionIsBeforeLastRound) {
  auto params = default_params();
  params.pf = pf_geometric(0.9);
  const auto trajectory = evaluate_push(params);
  EXPECT_LE(trajectory.rounds_to_fraction(0.99), trajectory.rounds_used());
  EXPECT_GT(trajectory.rounds_to_fraction(0.99), 0u);
}

TEST(PushModel, SeriesMatchesRounds) {
  const auto trajectory = evaluate_push(default_params());
  const auto series = trajectory.to_series("s");
  ASSERT_EQ(series.size(), trajectory.rounds.size());
  EXPECT_NEAR(series.final_x(), trajectory.final_aware(), 1e-12);
  EXPECT_NEAR(series.final_y(), trajectory.messages_per_initial_online(),
              1e-9);
}

TEST(PushModel, TotalBytesGrowWithListEnabled) {
  auto with_list = default_params();
  auto without_list = default_params();
  without_list.use_partial_list = false;
  // Per-message size with a list exceeds the bare update size.
  const auto a = evaluate_push(with_list);
  ASSERT_FALSE(a.rounds.empty());
  for (const auto& r : a.rounds) {
    EXPECT_GT(r.message_bytes, without_list.update_size_bytes - 1e-9);
  }
}

TEST(PushModel, RespectsMaxRounds) {
  auto params = default_params();
  params.initial_online = 100;  // dying rumor: long tail
  params.max_rounds = 5;
  EXPECT_LE(evaluate_push(params).rounds_used(), 5u);
}

// Parameter sweep: the epidemic threshold. Initial spread grows iff the
// round-1 branching factor R_on(0)*f_r*sigma exceeds 1.
struct ThresholdCase {
  double online;
  double f_r;
  double sigma;
  bool expect_spread;
};

class PushThreshold : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(PushThreshold, SpreadMatchesBranchingFactor) {
  const auto& c = GetParam();
  PushModelParams params;
  params.total_replicas = 10'000;
  params.initial_online = c.online;
  params.sigma = c.sigma;
  params.fanout_fraction = c.f_r;
  const auto trajectory = evaluate_push(params);
  if (c.expect_spread) {
    EXPECT_GT(trajectory.final_aware(), 0.9);
  } else {
    EXPECT_LT(trajectory.final_aware(), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PushThreshold,
    ::testing::Values(ThresholdCase{1'000, 0.01, 0.95, true},
                      ThresholdCase{100, 0.01, 0.95, false},
                      ThresholdCase{3'000, 0.001, 1.0, true},
                      ThresholdCase{500, 0.001, 1.0, false},
                      ThresholdCase{1'000, 0.02, 0.5, true},
                      ThresholdCase{1'000, 0.001, 0.5, false}));

}  // namespace
}  // namespace updp2p::analysis
