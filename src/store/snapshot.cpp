#include "store/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/crc32c.hpp"

namespace updp2p::store {

namespace {

constexpr std::byte kMagic[4] = {std::byte{'U'}, std::byte{'P'},
                                 std::byte{'S'}, std::byte{'N'}};

void put_u64le(gossip::WireBytes& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xFF));
  }
}

void put_u32le(gossip::WireBytes& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xFF));
  }
}

std::optional<std::uint64_t> get_u64le(std::span<const std::byte> bytes,
                                       std::size_t& offset) {
  if (bytes.size() - offset < 8) return std::nullopt;
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes[offset++]) << (8 * i);
  }
  return value;
}

}  // namespace

gossip::WireBytes encode_snapshot(const SnapshotData& data) {
  gossip::WireBytes out;
  out.reserve(64);
  for (const std::byte magic : kMagic) out.push_back(magic);
  out.push_back(static_cast<std::byte>(kSnapshotVersion));
  put_u64le(out, data.last_seq);
  gossip::encode_peer_set(out, data.membership);
  gossip::put_varint(out, data.values.size());
  for (const version::VersionedValue& value : data.values) {
    gossip::encode_value(out, value);
  }
  put_u32le(out, common::crc32c(out));
  return out;
}

std::optional<SnapshotData> decode_snapshot(std::span<const std::byte> bytes) {
  // Checksum gate first: body parsing below only ever sees bytes the CRC
  // vouches for (the fuzz suite still drives it on arbitrary input — the
  // parser must hold on its own, the CRC just makes corruption loud).
  if (bytes.size() < 4u + 1 + 8 + 4 || bytes.size() > kMaxSnapshotBytes) {
    return std::nullopt;
  }
  const std::span<const std::byte> body = bytes.first(bytes.size() - 4);
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(bytes[body.size() +
                                                   static_cast<std::size_t>(i)])
                  << (8 * i);
  }
  if (common::crc32c(body) != stored_crc) return std::nullopt;

  std::size_t offset = 0;
  for (const std::byte magic : kMagic) {
    if (body[offset++] != magic) return std::nullopt;
  }
  if (static_cast<std::uint8_t>(body[offset++]) != kSnapshotVersion) {
    return std::nullopt;
  }
  SnapshotData data;
  const auto last_seq = get_u64le(body, offset);
  if (!last_seq) return std::nullopt;
  data.last_seq = *last_seq;
  if (!gossip::decode_peer_set(body, offset, data.membership)) {
    return std::nullopt;
  }
  const auto value_count = gossip::get_varint(body, offset);
  // Each encoded value costs well over one byte; a declared count beyond
  // the remaining payload is hostile. Bounded before the reserve.
  if (!value_count || *value_count > body.size() - offset) {
    return std::nullopt;
  }
  data.values.reserve(*value_count);
  for (std::uint64_t i = 0; i < *value_count; ++i) {
    auto value = gossip::decode_value(body, offset);
    if (!value) return std::nullopt;
    data.values.push_back(std::move(*value));
  }
  if (offset != body.size()) return std::nullopt;  // trailing garbage
  return data;
}

bool write_snapshot_file(const std::string& path, const SnapshotData& data,
                         std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) *error = path + ": " + what + ": " +
                                   std::strerror(errno);
    return false;
  };
  const gossip::WireBytes image = encode_snapshot(data);
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return fail("open tmp");
  std::size_t written = 0;
  while (written < image.size()) {
    const ssize_t n = ::write(fd, image.data() + written,
                              image.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      (void)::unlink(tmp_path.c_str());
      return fail("write tmp");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    (void)::unlink(tmp_path.c_str());
    return fail("fsync tmp");
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp_path.c_str());
    return fail("close tmp");
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp_path.c_str());
    return fail("rename");
  }
  // fsync the directory so the rename itself is durable: without it a
  // crash can roll the directory entry back to the old snapshot, which is
  // consistent but stale — with it, the new snapshot is the recovery
  // point the log truncation that follows relies on.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return fail("open dir");
  const bool dir_ok = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  if (!dir_ok) return fail("fsync dir");
  return true;
}

std::optional<SnapshotData> read_snapshot_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return SnapshotData{};  // no snapshot yet: empty state
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (in.bad()) {
    if (error != nullptr) *error = path + ": read failed";
    return std::nullopt;
  }
  const auto* data = reinterpret_cast<const std::byte*>(raw.data());
  auto decoded =
      decode_snapshot(std::span<const std::byte>(data, raw.size()));
  if (!decoded && error != nullptr) {
    *error = path + ": snapshot corrupt (bad magic/version/CRC or "
             "malformed body)";
  }
  return decoded;
}

}  // namespace updp2p::store
