#include "store/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/crc32c.hpp"

namespace updp2p::store {

namespace {

std::uint32_t get_u32le(const std::byte* p) noexcept {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64le(const std::byte* p) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

void put_u32le(std::vector<std::byte>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xFF));
  }
}

void put_u64le(std::vector<std::byte>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((value >> (8 * i)) & 0xFF));
  }
}

/// CRC-32C over seq (LE) then body — what the record's crc field commits
/// to. Chaining via the seed keeps it one pass over the body.
std::uint32_t record_crc(std::uint64_t seq,
                         std::span<const std::byte> body) noexcept {
  std::byte seq_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seq_bytes[i] = static_cast<std::byte>((seq >> (8 * i)) & 0xFF);
  }
  return common::crc32c(body, common::crc32c(seq_bytes));
}

bool write_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* to_string(WalTail tail) noexcept {
  switch (tail) {
    case WalTail::kCleanEnd: return "clean-end";
    case WalTail::kTornHeader: return "torn-header";
    case WalTail::kTornBody: return "torn-body";
    case WalTail::kBadCrc: return "bad-crc";
    case WalTail::kBadLength: return "bad-length";
    case WalTail::kBadSequence: return "bad-sequence";
  }
  return "unknown";
}

WalScanResult scan_wal(
    std::span<const std::byte> bytes, std::optional<std::uint64_t> first_seq,
    const std::function<void(const WalRecord&)>& on_record) {
  WalScanResult result;
  result.next_seq = first_seq.value_or(1);
  bool expect_known = first_seq.has_value();
  std::size_t offset = 0;
  for (;;) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining == 0) break;  // clean end
    if (remaining < kWalHeaderBytes) {
      result.tail = WalTail::kTornHeader;
      break;
    }
    const std::byte* header = bytes.data() + offset;
    const std::uint32_t len = get_u32le(header);
    const std::uint32_t crc = get_u32le(header + 4);
    const std::uint64_t seq = get_u64le(header + 8);
    // Bound the length BEFORE trusting it for anything: below the
    // preamble it cannot frame a record, at or above kMaxWalRecordBytes
    // it is garbage (no legal frame approaches it) — either way the
    // prefix ends here. Nothing is ever allocated from `len`; the body is
    // a span into the scan buffer.
    if (len < kWalBodyPreambleBytes || len >= kMaxWalRecordBytes) {
      result.tail = WalTail::kBadLength;
      break;
    }
    if (remaining - kWalHeaderBytes < len) {
      result.tail = WalTail::kTornBody;
      break;
    }
    const std::span<const std::byte> body(header + kWalHeaderBytes, len);
    if (record_crc(seq, body) != crc) {
      result.tail = WalTail::kBadCrc;
      break;
    }
    if (!expect_known && result.records == 0) {
      // No snapshot told us the base: the first CRC-valid record declares
      // it, and continuity is enforced from there.
      result.next_seq = seq;
      expect_known = true;
    }
    if (seq != result.next_seq) {
      result.tail = WalTail::kBadSequence;
      break;
    }
    WalRecord record;
    record.seq = seq;
    record.from =
        common::PeerId(get_u32le(body.data()));
    record.round = get_u32le(body.data() + 4);
    record.frame = body.subspan(kWalBodyPreambleBytes);
    if (on_record) on_record(record);
    ++result.records;
    ++result.next_seq;
    offset += kWalHeaderBytes + len;
    result.valid_bytes = offset;
  }
  result.discarded_bytes = bytes.size() - result.valid_bytes;
  return result;
}

std::optional<WalScanResult> scan_wal_file(
    const std::string& path, std::optional<std::uint64_t> first_seq,
    const std::function<void(const WalRecord&)>& on_record) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Missing file == empty log (first boot). Report it as clean.
    WalScanResult result;
    result.next_seq = first_seq.value_or(1);
    return result;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  const auto* data = reinterpret_cast<const std::byte*>(raw.data());
  return scan_wal(std::span<const std::byte>(data, raw.size()), first_seq,
                  on_record);
}

FrameWal::FrameWal(FrameWal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_seq_(other.next_seq_),
      appended_bytes_(other.appended_bytes_),
      fsync_each_append_(other.fsync_each_append_),
      scratch_(std::move(other.scratch_)) {}

FrameWal& FrameWal::operator=(FrameWal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_seq_ = other.next_seq_;
    appended_bytes_ = other.appended_bytes_;
    fsync_each_append_ = other.fsync_each_append_;
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

FrameWal::~FrameWal() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<FrameWal> FrameWal::open_for_append(
    const std::string& path, std::uint64_t truncate_to,
    std::uint64_t next_seq, bool fsync_each_append, std::string* error) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = path + ": open: " + std::strerror(errno);
    }
    return std::nullopt;
  }
  // Drop anything past the valid prefix (the torn/corrupt tail a scan
  // diagnosed) so the next append extends valid bytes, not garbage.
  if (::ftruncate(fd, static_cast<off_t>(truncate_to)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    if (error != nullptr) {
      *error = path + ": truncate: " + std::strerror(errno);
    }
    ::close(fd);
    return std::nullopt;
  }
  FrameWal wal;
  wal.fd_ = fd;
  wal.next_seq_ = next_seq;
  wal.fsync_each_append_ = fsync_each_append;
  return wal;
}

std::optional<std::uint64_t> FrameWal::append(
    common::PeerId from, common::Round round,
    std::span<const std::byte> frame) {
  if (fd_ < 0) return std::nullopt;
  if (kWalBodyPreambleBytes + frame.size() >= kMaxWalRecordBytes) {
    return std::nullopt;  // cannot be framed; scan would reject it anyway
  }
  const std::uint64_t seq = next_seq_;
  const auto len =
      static_cast<std::uint32_t>(kWalBodyPreambleBytes + frame.size());
  scratch_.clear();
  scratch_.reserve(kWalHeaderBytes + len);
  put_u32le(scratch_, len);
  put_u32le(scratch_, 0);  // crc placeholder, patched below
  put_u64le(scratch_, seq);
  put_u32le(scratch_, from.value());
  put_u32le(scratch_, round);
  scratch_.insert(scratch_.end(), frame.begin(), frame.end());
  const std::uint32_t crc = record_crc(
      seq, std::span<const std::byte>(scratch_).subspan(kWalHeaderBytes));
  for (int i = 0; i < 4; ++i) {
    scratch_[4 + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xFF);
  }
  // One write(2) of the complete record: a crash tears at most the tail
  // record, which recovery truncates away.
  if (!write_all(fd_, scratch_.data(), scratch_.size())) return std::nullopt;
  if (fsync_each_append_ && ::fsync(fd_) != 0) return std::nullopt;
  ++next_seq_;
  appended_bytes_ += scratch_.size();
  return seq;
}

bool FrameWal::truncate_all() {
  if (fd_ < 0) return false;
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    return false;
  }
  return ::fsync(fd_) == 0;
}

bool FrameWal::sync() { return fd_ >= 0 && ::fsync(fd_) == 0; }

}  // namespace updp2p::store
