// Checksummed replica snapshots — the WAL's compaction point.
//
// A snapshot captures the durable protocol state of one peer in one file:
// the compressed membership set (the view's ChunkedPeerSet, in the exact
// chunked grammar push frames use on the wire) and every stored version
// (live + tombstones, in the codec's `value` grammar). Re-applying the
// values to an empty store reproduces items, summary vector and content
// digest bit-for-bit, and re-merging the membership set reproduces the
// view — so snapshot + log tail is a complete reconstruction.
//
// Layout (little-endian):
//
//   snapshot := magic "UPSN" | u8 version | u64 last_seq |
//               peerset | varint value_count | value* | u32 crc32c
//
// `last_seq` is the highest WAL sequence folded into the snapshot: log
// records at or below it are superseded, which is what licenses log
// truncation after a successful write. The trailing CRC-32C covers every
// byte before it; decode_snapshot verifies it FIRST, then parses with the
// same hostile-input discipline as the wire codec (every length bounded
// before any allocation). Writes are atomic: temp file + fsync + rename +
// directory fsync — a reader (or a recovery) observes either the old
// snapshot or the new one, never a torn hybrid.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/chunked_peer_set.hpp"
#include "gossip/codec.hpp"
#include "version/store.hpp"

namespace updp2p::store {

/// Upper bound (exclusive) on snapshot files we will read. Generous — a
/// snapshot holds one peer's store — but it keeps a corrupt or hostile
/// length from commanding unbounded work.
inline constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 30;

/// Current snapshot format version.
inline constexpr std::uint8_t kSnapshotVersion = 1;

struct SnapshotData {
  std::uint64_t last_seq = 0;  ///< WAL records <= this are superseded
  common::ChunkedPeerSet membership;
  std::vector<version::VersionedValue> values;
};

/// Serialises `data` (including the trailing CRC).
[[nodiscard]] gossip::WireBytes encode_snapshot(const SnapshotData& data);

/// Parses + CRC-verifies a snapshot image. nullopt on ANY malformation —
/// bad magic/version, truncation, checksum mismatch, hostile lengths.
/// Never UB, never an allocation commanded by an unvalidated length.
[[nodiscard]] std::optional<SnapshotData> decode_snapshot(
    std::span<const std::byte> bytes);

/// Atomically replaces `path` with the encoding of `data`: writes
/// `path`.tmp, fsyncs it, rename(2)s over `path`, fsyncs the directory.
[[nodiscard]] bool write_snapshot_file(const std::string& path,
                                       const SnapshotData& data,
                                       std::string* error);

/// Reads and decodes `path`. Distinguishes "no snapshot" (missing file —
/// returns an empty SnapshotData) from corruption (nullopt, with a
/// diagnostic in `error`): recovery continues from an empty state in the
/// first case and may still replay the log in the second.
[[nodiscard]] std::optional<SnapshotData> read_snapshot_file(
    const std::string& path, std::string* error);

}  // namespace updp2p::store
