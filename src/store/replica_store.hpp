// ReplicaStore — one peer's durable state: a frame WAL plus a snapshot,
// under one data directory.
//
// Layout on disk (inside StoreConfig::data_dir):
//
//   wal.log       append-only frame log (see wal.hpp)
//   snapshot.bin  checksummed compaction point (see snapshot.hpp)
//
// Lifecycle: open() reads the snapshot, scans the log's valid prefix and
// keeps the recovered records buffered; the owner applies the snapshot
// state (take_snapshot_state → ReplicaNode::import_durable_state), then
// replay()s the buffered frames through handle_frame, then appends new
// frames as they arrive. write_snapshot() atomically replaces the
// snapshot and truncates the log — sequence numbering continues across
// the truncation, so a stale tail can never splice onto a newer log.
//
// Recovery is tolerant by construction:
//  - torn/corrupt log tail → longest valid prefix, file truncated to it;
//  - corrupt snapshot      → empty base state, log still salvaged using
//    its own first record as the sequence base (values folded into the
//    lost snapshot are gone, but everything still in the log survives,
//    and anti-entropy pulls refill the rest);
//  - records at or below the snapshot's last_seq (a crash between
//    snapshot write and log truncation leaves them) are replayed anyway —
//    replay goes through the same duplicate-tolerant handle_frame path as
//    live traffic, so re-applying superseded records is a no-op.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace updp2p::store {

/// Fault-injection switchboard for crash/chaos harnesses. A harness shares
/// one instance with the store through StoreConfig::faults and flips the
/// flags mid-run; the store consults them at its two write points and
/// counts what actually fired. The same instance survives a simulated
/// restart (the harness passes it into the reopened store's config), so a
/// "broken disk" stays broken across process lifetimes. Never set in
/// production configs.
struct StoreFaults {
  bool fail_appends = false;    ///< append_frame reports I/O failure
  bool fail_snapshots = false;  ///< write_snapshot fails before writing
  /// Simulated crash between snapshot write and log truncation: the new
  /// snapshot lands durably but the stale log survives — the interleaving
  /// recovery's bad-sequence salvage path exists to absorb. write_snapshot
  /// reports failure (as a crashed process would never report at all);
  /// pair it with an immediate kill, before further appends extend the
  /// stale log.
  bool torn_snapshots = false;
  std::uint64_t appends_failed = 0;
  std::uint64_t snapshots_failed = 0;
  std::uint64_t snapshots_torn = 0;
};

struct StoreConfig {
  /// Data directory for this peer. Empty = durability disabled.
  std::string data_dir;
  /// Write a snapshot (and truncate the log) after this many appended
  /// records. 0 disables the count trigger.
  std::uint64_t snapshot_every_records = 256;
  /// Periodic snapshot cadence in runtime seconds (armed on the owner's
  /// timer wheel; a timer-triggered snapshot is skipped while the log is
  /// empty). 0 disables the timer trigger.
  common::SimTime snapshot_interval = 0.0;
  /// fsync(2) after every append. Off by default: the paper's failure
  /// model is process death (SIGKILL), against which a completed write(2)
  /// already survives; power-loss durability costs an fsync per receipt.
  bool fsync_appends = false;
  /// Optional fault injection (chaos/crash tests only). nullptr in every
  /// production path; shared so a harness can flip faults mid-run and
  /// carry them across simulated restarts.
  std::shared_ptr<StoreFaults> faults;

  [[nodiscard]] bool enabled() const noexcept { return !data_dir.empty(); }
};

struct StoreStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t records_since_snapshot = 0;
  // Recovery diagnostics, fixed at open():
  std::uint64_t records_recovered = 0;   ///< valid WAL records replayable
  std::uint64_t values_recovered = 0;    ///< values in the snapshot
  std::uint64_t wal_discarded_bytes = 0; ///< torn/corrupt tail dropped
  WalTail recovery_tail = WalTail::kCleanEnd;
  bool snapshot_corrupt = false;
};

class ReplicaStore {
 public:
  struct RecoveredFrame {
    common::PeerId from;
    common::Round round = 0;
    std::span<const std::byte> frame;  ///< valid only inside replay()'s cb
  };

  /// Opens (creating if needed) the data directory, reads the snapshot,
  /// scans the WAL and truncates its corrupt tail, and leaves the log
  /// open for appending. nullopt only on I/O errors (mkdir/open/truncate
  /// failures) — NEVER on corruption, which recovery absorbs.
  [[nodiscard]] static std::optional<ReplicaStore> open(StoreConfig config,
                                                       std::string* error);

  /// Moves out the snapshot's recovered base state (membership + values).
  /// Call once, before replay().
  [[nodiscard]] SnapshotData take_snapshot_state();

  /// Invokes `fn` for every recovered WAL record in append order, then
  /// frees the recovery buffer. Call once, after take_snapshot_state().
  void replay(const std::function<void(const RecoveredFrame&)>& fn);

  /// Appends one frame with its delivery context. Returns the record's
  /// sequence number, or nullopt on I/O failure (the caller keeps running
  /// volatile — durability degrades, the protocol does not stop).
  std::optional<std::uint64_t> append_frame(common::PeerId from,
                                            common::Round round,
                                            std::span<const std::byte> frame);

  /// True when the count trigger says the log has earned a compaction.
  [[nodiscard]] bool snapshot_due() const noexcept;

  /// Atomically writes `membership` + `values` as the new snapshot (its
  /// last_seq is the last appended record) and truncates the log.
  [[nodiscard]] bool write_snapshot(
      const common::ChunkedPeerSet& membership,
      std::vector<version::VersionedValue> values, std::string* error);

  /// fsync(2) the WAL (e.g. before an orderly shutdown).
  bool sync() { return wal_.sync(); }

  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const StoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return wal_.next_seq();
  }
  [[nodiscard]] const std::string& wal_path() const noexcept {
    return wal_path_;
  }
  [[nodiscard]] const std::string& snapshot_path() const noexcept {
    return snapshot_path_;
  }

 private:
  ReplicaStore() = default;

  struct RecordRef {
    common::PeerId from;
    common::Round round = 0;
    std::size_t offset = 0;  ///< frame offset into recovered_log_
    std::size_t size = 0;
  };

  StoreConfig config_;
  std::string wal_path_;
  std::string snapshot_path_;
  FrameWal wal_;
  StoreStats stats_;
  SnapshotData snapshot_state_;             ///< until take_snapshot_state()
  std::vector<std::byte> recovered_log_;    ///< valid WAL prefix, until replay()
  std::vector<RecordRef> recovered_records_;
};

}  // namespace updp2p::store
