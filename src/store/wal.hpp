// FrameWal — append-only write-ahead log of codec-v2 wire frames.
//
// A peer in this system is offline most of its life (10–30 % online, §2),
// and a SIGKILL must not cost it the updates it already holds: the WAL
// makes every state-changing receipt durable BEFORE the protocol
// acknowledges it, so a restarted peer replays its log through
// ReplicaNode::handle_frame and stands exactly where it died.
//
// Record layout (all integers little-endian):
//
//   record := u32 len | u32 crc32c | u64 seq | body
//   body   := u32 from | u32 round | frame
//
// `len` is the body length (8 + frame bytes) and `crc32c` covers seq+body,
// so a flipped bit anywhere after `len` is caught, and a lying `len` is
// caught by the CRC of whatever it framed. `seq` increases by exactly 1
// from the sequence the log was opened at; a gap or repeat marks the end
// of the valid prefix (e.g. blocks recycled by the filesystem). `frame`
// is the EXACT codec-v2 wire frame as received/sent — replay feeds these
// bytes to the same handle_frame entry point live traffic uses, which is
// what makes replayed state bit-identical to lived state. `from`/`round`
// are the delivery context the frame itself does not carry.
//
// Torn-tail contract: every append is one write(2) of a complete record,
// so a crash leaves at most one torn record at the tail. scan() accepts
// the longest valid prefix and reports why it stopped; open_for_append()
// truncates the file to that prefix and continues — corrupt bytes can
// cost the tail record, never the log.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace updp2p::store {

/// Upper bound (exclusive) on a record's `len` field. A record frames one
/// datagram-sized codec frame plus 8 context bytes; 16 MiB is orders of
/// magnitude above any legal frame and small enough that a hostile or
/// garbage length can never command a large allocation.
inline constexpr std::uint32_t kMaxWalRecordBytes = 1u << 24;

/// Fixed bytes before the body: len + crc + seq.
inline constexpr std::size_t kWalHeaderBytes = 16;
/// Fixed body preamble: from + round.
inline constexpr std::size_t kWalBodyPreambleBytes = 8;

/// One recovered record; `frame` aliases the scan buffer and is valid only
/// inside the scan callback.
struct WalRecord {
  std::uint64_t seq = 0;
  common::PeerId from;
  common::Round round = 0;
  std::span<const std::byte> frame;
};

/// Why a scan stopped (diagnostics; kCleanEnd is the healthy case).
enum class WalTail : std::uint8_t {
  kCleanEnd,     ///< file ends exactly on a record boundary
  kTornHeader,   ///< trailing partial header (crash mid-write)
  kTornBody,     ///< header promises more body than the file holds
  kBadCrc,       ///< checksum mismatch (bit rot or garbage tail)
  kBadLength,    ///< len below the preamble or >= kMaxWalRecordBytes
  kBadSequence,  ///< seq is not the expected successor
};

[[nodiscard]] const char* to_string(WalTail tail) noexcept;

struct WalScanResult {
  std::uint64_t records = 0;        ///< valid records delivered
  std::uint64_t next_seq = 1;       ///< successor of the last valid record
  std::uint64_t valid_bytes = 0;    ///< length of the valid prefix
  std::uint64_t discarded_bytes = 0;///< bytes past the valid prefix
  WalTail tail = WalTail::kCleanEnd;
};

/// Scans `bytes` as a WAL, invoking `on_record` for each valid record in
/// order. When `first_seq` is set the first record must carry exactly that
/// sequence; when nullopt the log's own first (CRC-valid) record declares
/// the base — the salvage path when the snapshot that knew the base was
/// itself lost. Later records must still chain +1. Stops at the first
/// invalid byte; never reads past the buffer, never allocates
/// proportional to a decoded length. Safe on arbitrary hostile input.
WalScanResult scan_wal(std::span<const std::byte> bytes,
                       std::optional<std::uint64_t> first_seq,
                       const std::function<void(const WalRecord&)>& on_record);

/// Reads `path` fully and scan_wal()s it. A missing file is an empty,
/// clean log. nullopt only on I/O errors (not on corruption — corruption
/// is handled by prefix acceptance).
std::optional<WalScanResult> scan_wal_file(
    const std::string& path, std::optional<std::uint64_t> first_seq,
    const std::function<void(const WalRecord&)>& on_record);

/// Append handle. One writer per file; the durable store serialises all
/// access through the runtime's single event loop.
class FrameWal {
 public:
  FrameWal() = default;
  FrameWal(const FrameWal&) = delete;
  FrameWal& operator=(const FrameWal&) = delete;
  FrameWal(FrameWal&& other) noexcept;
  FrameWal& operator=(FrameWal&& other) noexcept;
  ~FrameWal();

  /// Opens `path` for appending at `truncate_to` bytes (the valid prefix a
  /// scan established — everything past it is discarded) with the next
  /// record carrying `next_seq`. Creates the file when absent.
  [[nodiscard]] static std::optional<FrameWal> open_for_append(
      const std::string& path, std::uint64_t truncate_to,
      std::uint64_t next_seq, bool fsync_each_append, std::string* error);

  /// Appends one record (a single write(2) of the complete record) and
  /// returns its sequence number, or nullopt on I/O failure. With
  /// fsync_each_append the record is durable when this returns.
  std::optional<std::uint64_t> append(common::PeerId from,
                                      common::Round round,
                                      std::span<const std::byte> frame);

  /// Truncates the log to empty (all records superseded by a snapshot).
  /// Sequence numbering continues — seq is global to the store, not to
  /// one log incarnation, so a stale pre-truncation tail can never splice
  /// onto a newer log.
  bool truncate_all();

  /// fsync(2) the log file.
  bool sync();

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] std::uint64_t appended_bytes() const noexcept {
    return appended_bytes_;
  }

 private:
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_bytes_ = 0;
  bool fsync_each_append_ = false;
  std::vector<std::byte> scratch_;  ///< capacity-warm record build buffer
};

}  // namespace updp2p::store
