#include "store/replica_store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

namespace updp2p::store {

std::optional<ReplicaStore> ReplicaStore::open(StoreConfig config,
                                               std::string* error) {
  ReplicaStore store;
  store.config_ = std::move(config);
  if (::mkdir(store.config_.data_dir.c_str(), 0755) != 0 &&
      errno != EEXIST) {
    if (error != nullptr) {
      *error = store.config_.data_dir + ": mkdir: " + std::strerror(errno);
    }
    return std::nullopt;
  }
  store.wal_path_ = store.config_.data_dir + "/wal.log";
  store.snapshot_path_ = store.config_.data_dir + "/snapshot.bin";

  // 1. Snapshot: the base state. Corruption here is absorbed — we fall
  // back to an empty base and let the log (and later anti-entropy pulls)
  // rebuild what it can.
  std::string snapshot_error;
  auto snapshot = read_snapshot_file(store.snapshot_path_, &snapshot_error);
  if (!snapshot) {
    store.stats_.snapshot_corrupt = true;
    snapshot = SnapshotData{};
  }
  store.snapshot_state_ = std::move(*snapshot);
  store.stats_.values_recovered = store.snapshot_state_.values.size();

  // 2. WAL: read raw, keep the valid prefix buffered for replay(). With a
  // healthy snapshot the first record must carry last_seq+1; with a lost
  // snapshot the log's own first record declares the base (salvage).
  const std::optional<std::uint64_t> first_seq =
      store.stats_.snapshot_corrupt
          ? std::nullopt
          : std::make_optional(store.snapshot_state_.last_seq + 1);
  {
    std::ifstream in(store.wal_path_, std::ios::binary);
    if (in) {
      std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
      if (in.bad()) {
        if (error != nullptr) *error = store.wal_path_ + ": read failed";
        return std::nullopt;
      }
      store.recovered_log_.resize(raw.size());
      std::memcpy(store.recovered_log_.data(), raw.data(), raw.size());
    }
  }
  const WalScanResult scan = scan_wal(
      store.recovered_log_, first_seq, [&store](const WalRecord& record) {
        RecordRef ref;
        ref.from = record.from;
        ref.round = record.round;
        ref.offset = static_cast<std::size_t>(
            record.frame.data() - store.recovered_log_.data());
        ref.size = record.frame.size();
        store.recovered_records_.push_back(ref);
      });
  store.recovered_log_.resize(scan.valid_bytes);
  store.stats_.records_recovered = scan.records;
  store.stats_.wal_discarded_bytes = scan.discarded_bytes;
  store.stats_.recovery_tail = scan.tail;

  // 3. Reopen for append past the valid prefix. Sequence numbering is the
  // max of what the snapshot and the log have seen, so it never rewinds
  // even when a crash interleaved snapshot write and log truncation.
  const std::uint64_t next_seq =
      std::max(store.snapshot_state_.last_seq + 1, scan.next_seq);
  auto wal = FrameWal::open_for_append(store.wal_path_, scan.valid_bytes,
                                       next_seq, store.config_.fsync_appends,
                                       error);
  if (!wal) return std::nullopt;
  store.wal_ = std::move(*wal);
  return store;
}

SnapshotData ReplicaStore::take_snapshot_state() {
  return std::exchange(snapshot_state_, SnapshotData{});
}

void ReplicaStore::replay(
    const std::function<void(const RecoveredFrame&)>& fn) {
  for (const RecordRef& ref : recovered_records_) {
    RecoveredFrame frame;
    frame.from = ref.from;
    frame.round = ref.round;
    frame.frame = std::span<const std::byte>(
        recovered_log_.data() + ref.offset, ref.size);
    fn(frame);
  }
  recovered_records_.clear();
  recovered_records_.shrink_to_fit();
  recovered_log_.clear();
  recovered_log_.shrink_to_fit();
}

std::optional<std::uint64_t> ReplicaStore::append_frame(
    common::PeerId from, common::Round round,
    std::span<const std::byte> frame) {
  if (config_.faults && config_.faults->fail_appends) {
    ++config_.faults->appends_failed;
    return std::nullopt;  // indistinguishable from a real write failure
  }
  const auto seq = wal_.append(from, round, frame);
  if (!seq) return std::nullopt;
  ++stats_.records_appended;
  ++stats_.records_since_snapshot;
  stats_.bytes_appended += kWalHeaderBytes + kWalBodyPreambleBytes +
                           frame.size();
  return seq;
}

bool ReplicaStore::snapshot_due() const noexcept {
  return config_.snapshot_every_records > 0 &&
         stats_.records_since_snapshot >= config_.snapshot_every_records;
}

bool ReplicaStore::write_snapshot(
    const common::ChunkedPeerSet& membership,
    std::vector<version::VersionedValue> values, std::string* error) {
  if (config_.faults && config_.faults->fail_snapshots) {
    ++config_.faults->snapshots_failed;
    if (error != nullptr) *error = snapshot_path_ + ": injected snapshot fault";
    return false;
  }
  SnapshotData data;
  data.last_seq = wal_.next_seq() - 1;
  data.membership = membership;
  data.values = std::move(values);
  if (!write_snapshot_file(snapshot_path_, data, error)) return false;
  if (config_.faults && config_.faults->torn_snapshots) {
    // Injected crash point: the snapshot is durably in place but the log
    // keeps its (now entirely superseded) records. Recovery must discard
    // that stale tail via the bad-sequence check and stand on the snapshot.
    ++config_.faults->snapshots_torn;
    if (error != nullptr) {
      *error = wal_path_ + ": injected crash before log truncation";
    }
    return false;
  }
  // Snapshot is durably in place (rename + dir fsync): every log record is
  // now superseded, so the log can drop to empty. If THIS truncation is
  // what a crash interrupts, recovery replays the stale records through
  // the duplicate-tolerant live path — harmless.
  if (!wal_.truncate_all()) {
    if (error != nullptr) *error = wal_path_ + ": truncate failed";
    return false;
  }
  ++stats_.snapshots_written;
  stats_.records_since_snapshot = 0;
  return true;
}

}  // namespace updp2p::store
