#include "chaos/fault_injector.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "gossip/codec.hpp"

namespace updp2p::chaos {

const char* to_string(Mutation mutation) noexcept {
  switch (mutation) {
    case Mutation::kNone: return "none";
    case Mutation::kDropPullResponses: return "drop-pull-responses";
  }
  return "none";
}

Mutation mutation_from_string(std::string_view name) noexcept {
  if (name == "drop-pull-responses") return Mutation::kDropPullResponses;
  return Mutation::kNone;
}

FaultInjector::FaultInjector(std::size_t population)
    : population_(population),
      group_(population, -1),
      links_(population * population) {}

void FaultInjector::clear_network_faults() {
  std::fill(group_.begin(), group_.end(), -1);
  std::fill(links_.begin(), links_.end(), LinkOverride{});
  dup_p_ = 0.0;
  reorder_p_ = 0.0;
  reorder_extra_ = 0.0;
}

void FaultInjector::set_partition(
    const std::vector<std::vector<common::PeerId>>& groups) {
  // Unassigned peers keep -1 and thus share the implicit extra group.
  std::fill(group_.begin(), group_.end(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const common::PeerId id : groups[g]) {
      UPDP2P_ENSURE(id.value() < population_, "partition peer out of range");
      group_[id.value()] = static_cast<int>(g);
    }
  }
}

void FaultInjector::set_link_loss(common::PeerId from, common::PeerId to,
                                  double p) {
  link(from, to).loss = p;
}

void FaultInjector::set_link_delay(common::PeerId from, common::PeerId to,
                                   common::SimTime delay) {
  link(from, to).delay = delay;
}

void FaultInjector::fold(std::vector<std::uint64_t>& words) const {
  words.push_back(stats_.partition_drops);
  words.push_back(stats_.loss_drops);
  words.push_back(stats_.mutation_drops);
  words.push_back(stats_.duplicated);
  words.push_back(stats_.delayed);
}

net::LinkFaultPolicy::Decision FaultInjector::on_submit(
    common::PeerId from, common::PeerId to,
    std::span<const std::byte> payload, common::StreamRng& rng) {
  Decision decision;

  // 1. Seeded mutation — consulted first so the canary's breakage is
  // independent of whatever faults the scenario also runs. The probe is
  // used for classification only (field comparisons, no state absorbed).
  if (mutation_ == Mutation::kDropPullResponses) {
    const auto probe = gossip::probe_frame(payload);
    const bool is_pull_response =
        probe.has_value() && probe->kind == gossip::WireKind::kPullResponse;
    if (is_pull_response) {
      ++stats_.mutation_drops;
      decision.drop = true;
      return decision;
    }
  }

  // 2. Partition: cross-group traffic dies at the switch.
  if (group_[from.value()] != group_[to.value()]) {
    ++stats_.partition_drops;
    decision.drop = true;
    return decision;
  }

  const LinkOverride& over = links_[from.value() * population_ + to.value()];

  // 3. Directional loss override (draws only on lossy links, so installing
  // an override on link A never shifts link B's stream).
  if (over.loss > 0.0 && rng.bernoulli(over.loss)) {
    ++stats_.loss_drops;
    decision.drop = true;
    return decision;
  }

  // 4. Directional fixed extra delay.
  if (over.delay > 0.0) {
    decision.extra_delay += over.delay;
    ++stats_.delayed;
  }

  // 5. Reorder window: with probability p, hold this datagram back by a
  // uniform extra delay so later submissions overtake it.
  if (reorder_p_ > 0.0 && rng.bernoulli(reorder_p_)) {
    decision.extra_delay += rng.uniform01() * reorder_extra_;
    ++stats_.delayed;
  }

  // 6. Duplicate window: fan the datagram out as two copies, each with an
  // independently sampled latency.
  if (dup_p_ > 0.0 && rng.bernoulli(dup_p_)) {
    decision.copies = 2;
    ++stats_.duplicated;
  }

  return decision;
}

}  // namespace updp2p::chaos
