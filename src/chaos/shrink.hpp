// Schedule shrinking — minimize a failing (scenario, seed) pair.
//
// A chaos failure found under a big scripted schedule is rarely about the
// whole schedule. The shrinker re-runs the scenario under the SAME seed
// and mutation with progressively smaller schedules — first cutting the
// phase list to the shortest failing prefix (with a healed settle phase
// appended so the eventual-delivery check still has a fair chance to
// pass), then greedily deleting whole phases, then individual ops — and
// keeps every cut that still fails. Determinism makes this sound: a
// candidate either reproduces the violation exactly or it does not; there
// is no flake dimension.
//
// The minimized scenario serializes (chaos/scenario.hpp round-trip) into
// a script the repro command can replay:
//
//   updp2p-chaos --scenario minimized.chaos --seed 42
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/scenario.hpp"

namespace updp2p::chaos {

struct ShrinkResult {
  Scenario minimized;
  /// False when the full scenario already passes under this seed (nothing
  /// to shrink; `minimized` is then the input scenario).
  bool reproduced = false;
  std::size_t runs = 0;  ///< engine runs spent (bounded by max_runs)
  /// Violations of the final minimized schedule.
  std::vector<std::string> violations;
};

/// Shrinks `scenario` under `seed`. Every candidate runs in its own
/// subdirectory of options.data_root. `max_runs` bounds total engine runs.
[[nodiscard]] ShrinkResult shrink_scenario(const Scenario& scenario,
                                           std::uint64_t seed,
                                           const ChaosOptions& options,
                                           std::size_t max_runs = 200);

/// The command line that replays a (scenario file, seed, mutation) triple.
[[nodiscard]] std::string repro_command(const std::string& scenario_path,
                                        std::uint64_t seed,
                                        Mutation mutation);

}  // namespace updp2p::chaos
