// FaultInjector — the chaos engine's net::LinkFaultPolicy.
//
// Holds the network-facing fault state a scenario phase installs:
// partition groups, directional per-link loss/delay overrides, and
// cluster-wide duplicate/reorder windows, plus an optional seeded
// mutation used by the canary tests to prove the property checker can
// fail. All randomness draws from the per-link chaos StreamRng the switch
// hands in, and the draw ORDER per datagram is fixed (mutation check,
// partition check, override loss, reorder, duplicate), so a given
// (scenario, seed) replays bit-identically.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "net/inproc_transport.hpp"

namespace updp2p::chaos {

/// Seeded protocol mutations: deliberately broken behaviours the property
/// checker must catch. Used by the canary tests and `--mutate`.
enum class Mutation : std::uint8_t {
  kNone = 0,
  /// Silently swallow every pull response: offline recovery (§5 pull
  /// phase) stops working, so peers that missed a push never converge.
  kDropPullResponses,
};

[[nodiscard]] const char* to_string(Mutation mutation) noexcept;
/// nullopt-free lookup: unknown names map to kNone (callers validate).
[[nodiscard]] Mutation mutation_from_string(std::string_view name) noexcept;

struct InjectorStats {
  std::uint64_t partition_drops = 0;
  std::uint64_t loss_drops = 0;      ///< directional override losses
  std::uint64_t mutation_drops = 0;
  std::uint64_t duplicated = 0;      ///< datagrams fanned out as 2 copies
  std::uint64_t delayed = 0;         ///< datagrams given extra delay
};

class FaultInjector final : public net::LinkFaultPolicy {
 public:
  explicit FaultInjector(std::size_t population);

  /// heal: drop partition, link overrides and dup/reorder windows (the
  /// mutation, being part of the run's identity, survives).
  void clear_network_faults();

  /// Installs a partition. Peers absent from every group share one
  /// implicit extra group. Cross-group datagrams are dropped.
  void set_partition(
      const std::vector<std::vector<common::PeerId>>& groups);

  void set_link_loss(common::PeerId from, common::PeerId to, double p);
  void set_link_delay(common::PeerId from, common::PeerId to,
                      common::SimTime delay);
  void set_duplicate(double p) noexcept { dup_p_ = p; }
  void set_reorder(double p, common::SimTime max_extra) noexcept {
    reorder_p_ = p;
    reorder_extra_ = max_extra;
  }
  void set_mutation(Mutation mutation) noexcept { mutation_ = mutation; }

  [[nodiscard]] const InjectorStats& stats() const noexcept { return stats_; }

  /// Folds the injector counters into a digest word stream.
  void fold(std::vector<std::uint64_t>& words) const;

  Decision on_submit(common::PeerId from, common::PeerId to,
                     std::span<const std::byte> payload,
                     common::StreamRng& rng) override;

 private:
  struct LinkOverride {
    double loss = 0.0;
    common::SimTime delay = 0.0;
  };

  [[nodiscard]] LinkOverride& link(common::PeerId from, common::PeerId to) {
    return links_[from.value() * population_ + to.value()];
  }

  std::size_t population_;
  std::vector<int> group_;           ///< per-peer partition group; -1 default
  std::vector<LinkOverride> links_;  ///< dense population² directional table
  double dup_p_ = 0.0;
  double reorder_p_ = 0.0;
  common::SimTime reorder_extra_ = 0.0;
  Mutation mutation_ = Mutation::kNone;
  InjectorStats stats_;
};

}  // namespace updp2p::chaos
