// Builtin chaos scenario corpus.
//
// Each scenario is authored as script text and parsed at load, so the
// corpus doubles as parser coverage. Every scenario ends healed with a
// settle window long enough for the §3/§6 pull machinery to converge —
// the eventual-delivery check assumes a fair final window, not a cluster
// abandoned mid-partition.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "chaos/scenario.hpp"

namespace updp2p::chaos {

/// All builtin scenarios (parsed fresh on every call; cheap).
[[nodiscard]] std::vector<Scenario> builtin_scenarios();

/// Lookup by Scenario::name. nullopt when unknown.
[[nodiscard]] std::optional<Scenario> find_scenario(std::string_view name);

}  // namespace updp2p::chaos
