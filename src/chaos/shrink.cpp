#include "chaos/shrink.hpp"

#include <utility>

namespace updp2p::chaos {

namespace {

/// Every candidate runs with this healed settle window appended, and the
/// shrinker never deletes it: without a guaranteed convergence window,
/// greedy deletion would happily "minimize" any failure down to a
/// schedule that fails only because nothing had time to propagate.
[[nodiscard]] Phase settle_phase(const Scenario& scenario) {
  Phase settle;
  settle.duration = 60.0 * scenario.round;
  Op heal;
  heal.kind = OpKind::kHeal;
  settle.ops.push_back(std::move(heal));
  return settle;
}

class Shrinker {
 public:
  Shrinker(const Scenario& scenario, std::uint64_t seed,
           const ChaosOptions& options, std::size_t max_runs)
      : base_(scenario),
        settle_(settle_phase(scenario)),
        seed_(seed),
        options_(options),
        max_runs_(max_runs) {}

  /// Runs `base_` with `core` as the phase list plus the settle window.
  [[nodiscard]] bool fails_with(const std::vector<Phase>& core) {
    Scenario candidate = base_;
    candidate.phases = core;
    candidate.phases.push_back(settle_);
    return fails(candidate);
  }

  [[nodiscard]] bool fails(const Scenario& candidate) {
    ChaosOptions run_options = options_;
    if (!options_.data_root.empty()) {
      run_options.data_root =
          options_.data_root + "/shrink-" + std::to_string(runs_);
    }
    run_options.keep_trace = false;
    const ChaosReport report = run_scenario(candidate, seed_, run_options);
    ++runs_;
    last_violations_ = report.violations;
    return !report.passed();
  }

  [[nodiscard]] Scenario with_settle(std::vector<Phase> core) const {
    Scenario out = base_;
    out.phases = std::move(core);
    out.phases.push_back(settle_);
    out.name = base_.name + "-min";
    return out;
  }

  [[nodiscard]] bool budget_left() const noexcept {
    return runs_ < max_runs_;
  }
  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
  [[nodiscard]] const std::vector<std::string>& last_violations()
      const noexcept {
    return last_violations_;
  }

 private:
  const Scenario& base_;
  Phase settle_;
  std::uint64_t seed_;
  const ChaosOptions& options_;
  std::size_t max_runs_;
  std::size_t runs_ = 0;
  std::vector<std::string> last_violations_;
};

}  // namespace

ShrinkResult shrink_scenario(const Scenario& scenario, std::uint64_t seed,
                             const ChaosOptions& options,
                             std::size_t max_runs) {
  Shrinker shrinker(scenario, seed, options, max_runs);
  ShrinkResult result;
  result.minimized = scenario;

  if (!shrinker.fails(scenario)) {
    result.runs = shrinker.runs();
    return result;  // nothing to shrink
  }
  result.reproduced = true;
  result.violations = shrinker.last_violations();

  // The settle window must not itself mask the failure; if it does, the
  // verbatim scenario is already the best repro we can offer.
  if (!shrinker.fails_with(scenario.phases)) {
    result.runs = shrinker.runs();
    return result;
  }
  result.violations = shrinker.last_violations();
  std::vector<Phase> core = scenario.phases;

  // 1. Shortest failing prefix.
  for (std::size_t k = 1; k < core.size() && shrinker.budget_left(); ++k) {
    std::vector<Phase> prefix(core.begin(),
                              core.begin() + static_cast<std::ptrdiff_t>(k));
    if (shrinker.fails_with(prefix)) {
      core = std::move(prefix);
      result.violations = shrinker.last_violations();
      break;
    }
  }

  // 2. Greedy deletion to fixpoint: whole phases first, then single ops.
  bool shrunk = true;
  while (shrunk && shrinker.budget_left()) {
    shrunk = false;
    for (std::size_t p = 0;
         p < core.size() && core.size() > 1 && shrinker.budget_left();) {
      std::vector<Phase> candidate = core;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(p));
      if (shrinker.fails_with(candidate)) {
        core = std::move(candidate);
        result.violations = shrinker.last_violations();
        shrunk = true;
      } else {
        ++p;
      }
    }
    for (std::size_t p = 0; p < core.size() && shrinker.budget_left(); ++p) {
      for (std::size_t o = 0;
           o < core[p].ops.size() && shrinker.budget_left();) {
        std::vector<Phase> candidate = core;
        auto& ops = candidate[p].ops;
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(o));
        if (shrinker.fails_with(candidate)) {
          core = std::move(candidate);
          result.violations = shrinker.last_violations();
          shrunk = true;
        } else {
          ++o;
        }
      }
    }
  }

  result.minimized = shrinker.with_settle(std::move(core));
  result.runs = shrinker.runs();
  return result;
}

std::string repro_command(const std::string& scenario_path,
                          std::uint64_t seed, Mutation mutation) {
  std::string command =
      "updp2p-chaos --scenario " + scenario_path + " --seed " +
      std::to_string(seed);
  if (mutation != Mutation::kNone) {
    command += " --mutate ";
    command += to_string(mutation);
  }
  return command;
}

}  // namespace updp2p::chaos
