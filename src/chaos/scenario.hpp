// Chaos scenario scripts — a tiny line-oriented DSL for fault schedules.
//
// A scenario is a cluster header (population, durable peers, protocol
// knobs) followed by phases. Each phase applies its ops at the phase start
// (back-to-back, with no time elapsing between them) and then runs the
// virtual-time cluster for the phase duration. Ops cover the adversarial
// regimes the paper's model implies but the uniform-loss harnesses never
// exercise: partitions, asymmetric per-direction loss/latency, duplicate
// and reorder windows, churn bursts, clock skew, kill/restart with the
// store intact or wiped, and disk faults at the WAL/snapshot write points.
//
// The format round-trips: parse_scenario(to_text(s)) reproduces `s`
// exactly, which is what lets the schedule shrinker emit its minimized
// script as a runnable repro file.
//
// Example:
//
//   # split the cluster while an update is being pushed
//   population 12
//   durable 0-3
//   round 0.5
//   phase 2
//     publish 0 config
//     partition 0-5 | 6-11
//   phase 6
//     heal
//
// Peer sets are `*` (everyone) or comma lists of ids and ranges
// (`1,3,7-9`). Unlisted peers in a `partition` form one implicit extra
// group. Times are seconds of virtual time, probabilities are in [0,1].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace updp2p::chaos {

enum class OpKind : std::uint8_t {
  kPartition,  ///< partition <set> | <set> [| ...]
  kHeal,       ///< heal — clears partition/link overrides/dup/reorder
  kLinkLoss,   ///< linkloss <src-set> <dst-set> <p>   (directional)
  kLinkDelay,  ///< linkdelay <src-set> <dst-set> <seconds> (directional)
  kDuplicate,  ///< dup <p> — per-datagram duplication probability
  kReorder,    ///< reorder <p> <max-extra-seconds>
  kOffline,    ///< offline <set> — protocol-level disconnect (§3)
  kOnline,     ///< online <set>
  kSkew,       ///< skew <set> <factor> — peer clocks run at factor × real
  kKill,       ///< kill <set> [wipe] — destroy runtime (+ store files on wipe)
  kRestart,    ///< restart <set> — new runtime over the surviving store
  kDiskFault,  ///< disk-fault <set> appends|snapshots|torn|all
  kDiskOk,     ///< disk-ok <set>
  kSnapshot,   ///< snapshot <set> — force a snapshot now
  kPublish,    ///< publish <peer> <key>
};

[[nodiscard]] const char* to_string(OpKind kind) noexcept;

/// Which store write point a disk-fault op breaks (store::StoreFaults).
enum class DiskFaultMode : std::uint8_t {
  kAppends,    ///< WAL appends fail (peer degrades to volatile)
  kSnapshots,  ///< snapshot writes fail outright
  kTorn,       ///< snapshot lands but log truncation "crashes"
  kAll,        ///< appends + snapshots
};

struct Op {
  OpKind kind = OpKind::kHeal;
  /// kPartition: explicit groups (unlisted peers form one implicit group).
  std::vector<std::vector<common::PeerId>> groups;
  /// Subject peers (offline/online/skew/kill/restart/disk/snapshot), or
  /// the source set of a link op.
  std::vector<common::PeerId> peers;
  /// Destination set of a link op.
  std::vector<common::PeerId> dst;
  double a = 0.0;  ///< loss/dup/reorder probability, delay seconds, skew factor
  double b = 0.0;  ///< reorder: max extra delay seconds
  bool wipe = false;                           ///< kKill
  DiskFaultMode disk = DiskFaultMode::kAll;    ///< kDiskFault
  common::PeerId peer;                         ///< kPublish
  std::string key;                             ///< kPublish

  friend bool operator==(const Op&, const Op&) = default;
};

struct Phase {
  common::SimTime duration = 1.0;
  std::vector<Op> ops;

  friend bool operator==(const Phase&, const Phase&) = default;
};

struct Scenario {
  std::string name = "scenario";
  std::size_t population = 8;
  /// Peers that run a durable ReplicaStore (engine callers must supply a
  /// data root when non-empty).
  std::vector<common::PeerId> durable;
  common::SimTime round = 0.5;        ///< push-round duration
  common::SimTime tick = 0.05;        ///< timer-wheel tick
  double base_loss = 0.0;             ///< uniform network loss under the faults
  common::SimTime latency_lo = 0.05;  ///< uniform one-way delay bounds;
  common::SimTime latency_hi = 0.05;  ///< equal bounds = constant latency
  double fanout = 0.3;                ///< gossip fanout fraction f_r
  bool acks = true;                   ///< §6 acks (and push retries)
  unsigned retry_attempts = 4;
  common::SimTime retry_initial = 0.2;
  std::uint64_t snapshot_every = 64;  ///< store count trigger
  /// Bootstrap view size per peer (0 = full membership).
  std::size_t view = 0;
  std::vector<Phase> phases;

  [[nodiscard]] common::SimTime total_duration() const noexcept {
    common::SimTime total = 0.0;
    for (const Phase& phase : phases) total += phase.duration;
    return total;
  }
  [[nodiscard]] bool is_durable(common::PeerId id) const noexcept {
    for (const common::PeerId peer : durable) {
      if (peer == id) return true;
    }
    return false;
  }

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Parses a scenario script. On failure returns nullopt and, when `error`
/// is non-null, a "line N: reason" message. Validates peer ids against the
/// population, probability/duration ranges and partition disjointness.
[[nodiscard]] std::optional<Scenario> parse_scenario(std::string_view text,
                                                     std::string* error);

/// Serialises a scenario back to script text. Round-trip exact:
/// parse_scenario(to_text(s)) == s for any parser-accepted `s`.
[[nodiscard]] std::string to_text(const Scenario& scenario);

}  // namespace updp2p::chaos
