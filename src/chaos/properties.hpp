// Convergence property checks for chaos runs.
//
// The tracker watches every peer across the schedule and accumulates
// violations of the protocol's promises under the paper's model:
//
//  * monotone awareness — once a replica knows a version it never
//    un-knows it, unless its store was wiped or it never had one;
//  * recovery digest equality — a durable peer killed with an intact,
//    fault-free store must restart with exactly the content digest it
//    died with (append-before-ack, §"no lost update after ack");
//  * eventual delivery — after the schedule ends (scenarios end healed,
//    with a settle phase), every live online replica knows every
//    successfully published version.
//
// Violations are strings meant for humans AND for the shrinker, which
// only needs "empty or not".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "version/version_id.hpp"

namespace updp2p::gossip {
class ReplicaNode;
}

namespace updp2p::chaos {

class PropertyTracker {
 public:
  explicit PropertyTracker(std::size_t population);

  /// Records a successful publish (publish on a dead/offline peer is a
  /// traced no-op, not a tracked update).
  void note_published(const version::VersionId& id, const std::string& key,
                      common::PeerId publisher);

  /// Re-scans one live peer's awareness of every published version.
  /// Call at phase boundaries and at the end of the run.
  void observe(common::PeerId peer, const gossip::ReplicaNode& node);

  /// The peer lost its durable state (wiped on kill, or it was volatile):
  /// forgetting is now legitimate, so its awareness baseline resets.
  void note_state_lost(common::PeerId peer);

  /// Compares a restarted durable peer's recovered digest against the
  /// digest captured at kill time (when the store was fault-free).
  void check_recovery(common::PeerId peer, const common::Digest128& died_with,
                      const common::Digest128& recovered);

  /// End-of-run eventual-delivery check over the final live online set.
  void check_final(common::PeerId peer, const gossip::ReplicaNode& node);

  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t published_count() const noexcept {
    return published_.size();
  }

 private:
  struct Published {
    version::VersionId id;
    std::string key;
    common::PeerId publisher;
  };

  std::vector<Published> published_;
  /// knew_[peer][version index] — the awareness high-water mark.
  std::vector<std::vector<bool>> knew_;
  std::vector<std::string> violations_;
};

}  // namespace updp2p::chaos
