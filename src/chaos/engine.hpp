// Chaos engine — executes a Scenario over a virtual-time cluster.
//
// The engine builds an InprocNetwork + one PeerRuntime per peer, installs
// a FaultInjector as the network's LinkFaultPolicy, then walks the
// scenario's phases: ops apply back-to-back at each phase start, the
// cluster then runs for the phase duration on a fixed tick grid. Peer
// clocks may run skewed; kill/restart recycles the runtime over the same
// (or wiped) store directory; disk faults flip the shared StoreFaults
// switchboard.
//
// Every run is a pure function of (scenario, seed, mutation): all
// randomness flows through StreamRngs keyed off the run seed, and the
// phase-boundary checkpoints (peer liveness, per-peer content digests,
// network + injector counters) fold into a 128-bit event-trace digest
// that replays bit-identically across runs, machines and sweep thread
// counts. Property violations (properties.hpp) are collected, not thrown
// — the schedule always runs to completion so the shrinker can compare
// outcomes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "chaos/scenario.hpp"
#include "common/hash.hpp"
#include "net/inproc_transport.hpp"

namespace updp2p::chaos {

struct ChaosOptions {
  /// Root directory for durable peers' stores (one subdirectory per peer
  /// per run). Required when the scenario lists durable peers.
  std::string data_root;
  /// Seeded protocol mutation (canary runs); kNone for real checking.
  Mutation mutation = Mutation::kNone;
  /// Keep the human-readable event trace in the report.
  bool keep_trace = true;
};

struct PeerSummary {
  bool alive = true;
  bool online = true;
  bool durable = false;
  unsigned restarts = 0;
  unsigned wipes = 0;
  common::Digest128 state;  ///< final content digest (zero when dead)
};

struct ChaosReport {
  std::string scenario;
  std::uint64_t seed = 0;
  Mutation mutation = Mutation::kNone;
  /// Fold of every phase-boundary checkpoint — the replay identity.
  common::Digest128 trace_digest;
  std::vector<std::string> violations;
  std::vector<std::string> trace;  ///< empty unless ChaosOptions::keep_trace
  std::size_t phases = 0;
  std::size_t published = 0;  ///< successful publish ops
  std::vector<PeerSummary> peers;
  net::InprocNetworkStats network;
  InjectorStats injector;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

/// Runs one scenario under one seed. Deterministic; never throws on
/// property violations (they land in the report).
[[nodiscard]] ChaosReport run_scenario(const Scenario& scenario,
                                       std::uint64_t seed,
                                       const ChaosOptions& options);

/// Runs the scenario under each seed, fanning runs across the shared
/// sweep pool (`threads` workers). Each run gets its own data directory
/// (`data_root/run-<i>`); reports come back in seed order regardless of
/// scheduling — the thread-count-invariance axis the digest tests pin.
[[nodiscard]] std::vector<ChaosReport> run_seed_sweep(
    const Scenario& scenario, std::span<const std::uint64_t> seeds,
    const ChaosOptions& options, unsigned threads);

}  // namespace updp2p::chaos
