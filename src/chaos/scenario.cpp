#include "chaos/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace updp2p::chaos {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] std::vector<std::string_view> split_words(std::string_view s) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) words.push_back(s.substr(start, i - start));
  }
  return words;
}

/// Shortest round-trip decimal for a double (std::to_chars general form).
[[nodiscard]] std::string format_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

/// Parse state shared by the line handlers.
struct Parser {
  Scenario scenario;
  std::string* error = nullptr;
  int line_no = 0;
  bool failed = false;
  bool in_phases = false;

  bool fail(const std::string& reason) {
    if (error != nullptr && !failed) {
      *error = "line " + std::to_string(line_no) + ": " + reason;
    }
    failed = true;
    return false;
  }

  bool parse_double(std::string_view word, double* out) {
    const auto [ptr, ec] =
        std::from_chars(word.data(), word.data() + word.size(), *out);
    if (ec != std::errc() || ptr != word.data() + word.size()) {
      return fail("expected a number, got '" + std::string(word) + "'");
    }
    return true;
  }

  bool parse_u64(std::string_view word, std::uint64_t* out) {
    const auto [ptr, ec] =
        std::from_chars(word.data(), word.data() + word.size(), *out);
    if (ec != std::errc() || ptr != word.data() + word.size()) {
      return fail("expected an integer, got '" + std::string(word) + "'");
    }
    return true;
  }

  bool parse_peer(std::string_view word, common::PeerId* out) {
    std::uint64_t id = 0;
    if (!parse_u64(word, &id)) return false;
    if (id >= scenario.population) {
      return fail("peer " + std::to_string(id) + " outside population " +
                  std::to_string(scenario.population));
    }
    *out = common::PeerId(static_cast<common::PeerId::rep_type>(id));
    return true;
  }

  /// `*` or comma list of ids and inclusive ranges (`1,3,7-9`), returned
  /// sorted and deduplicated.
  bool parse_set(std::string_view word, std::vector<common::PeerId>* out) {
    out->clear();
    if (word == "*") {
      for (std::size_t i = 0; i < scenario.population; ++i) {
        out->emplace_back(static_cast<common::PeerId::rep_type>(i));
      }
      return true;
    }
    std::size_t pos = 0;
    while (pos < word.size()) {
      std::size_t comma = word.find(',', pos);
      if (comma == std::string_view::npos) comma = word.size();
      const std::string_view item = word.substr(pos, comma - pos);
      pos = comma + 1;
      if (item.empty()) return fail("empty entry in peer set");
      const std::size_t dash = item.find('-');
      if (dash == std::string_view::npos) {
        common::PeerId id;
        if (!parse_peer(item, &id)) return false;
        out->push_back(id);
      } else {
        common::PeerId lo;
        common::PeerId hi;
        if (!parse_peer(item.substr(0, dash), &lo)) return false;
        if (!parse_peer(item.substr(dash + 1), &hi)) return false;
        if (hi < lo) return fail("descending range in peer set");
        for (auto v = lo.value(); v <= hi.value(); ++v) {
          out->emplace_back(v);
        }
      }
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
    if (out->empty()) return fail("empty peer set");
    return true;
  }

  bool parse_probability(std::string_view word, double* out) {
    if (!parse_double(word, out)) return false;
    if (*out < 0.0 || *out > 1.0) return fail("probability outside [0,1]");
    return true;
  }

  bool wrong_arity(std::string_view op) {
    return fail("wrong number of arguments for '" + std::string(op) + "'");
  }

  bool header_line(const std::vector<std::string_view>& words);
  bool op_line(std::string_view rest,
               const std::vector<std::string_view>& words);
};

bool Parser::header_line(const std::vector<std::string_view>& words) {
  const std::string_view kw = words[0];
  if (kw == "name") {
    if (words.size() != 2) return wrong_arity(kw);
    scenario.name = std::string(words[1]);
    return true;
  }
  if (kw == "population") {
    std::uint64_t n = 0;
    if (words.size() != 2 || !parse_u64(words[1], &n)) return wrong_arity(kw);
    if (n == 0 || n > 256) return fail("population must be in [1,256]");
    scenario.population = static_cast<std::size_t>(n);
    return true;
  }
  if (kw == "durable") {
    if (words.size() != 2) return wrong_arity(kw);
    if (words[1] == "none") {
      scenario.durable.clear();
      return true;
    }
    return parse_set(words[1], &scenario.durable);
  }
  if (kw == "round" || kw == "tick" || kw == "retry-initial") {
    double v = 0.0;
    if (words.size() != 2 || !parse_double(words[1], &v)) return false;
    if (v <= 0.0) return fail("duration must be positive");
    if (kw == "round") {
      scenario.round = v;
    } else if (kw == "tick") {
      scenario.tick = v;
    } else {
      scenario.retry_initial = v;
    }
    return true;
  }
  if (kw == "loss") {
    if (words.size() != 2) return wrong_arity(kw);
    return parse_probability(words[1], &scenario.base_loss);
  }
  if (kw == "latency") {
    if (words.size() != 3) return wrong_arity(kw);
    if (!parse_double(words[1], &scenario.latency_lo) ||
        !parse_double(words[2], &scenario.latency_hi)) {
      return false;
    }
    if (scenario.latency_lo < 0.0 ||
        scenario.latency_hi < scenario.latency_lo) {
      return fail("latency bounds must satisfy 0 <= lo <= hi");
    }
    return true;
  }
  if (kw == "fanout") {
    if (words.size() != 2) return wrong_arity(kw);
    double v = 0.0;
    if (!parse_double(words[1], &v)) return false;
    if (v <= 0.0 || v > 1.0) return fail("fanout must be in (0,1]");
    scenario.fanout = v;
    return true;
  }
  if (kw == "acks") {
    if (words.size() != 2 || (words[1] != "on" && words[1] != "off")) {
      return fail("acks takes 'on' or 'off'");
    }
    scenario.acks = words[1] == "on";
    return true;
  }
  if (kw == "retry-attempts") {
    std::uint64_t n = 0;
    if (words.size() != 2 || !parse_u64(words[1], &n)) return wrong_arity(kw);
    scenario.retry_attempts = static_cast<unsigned>(n);
    return true;
  }
  if (kw == "snapshot-every") {
    std::uint64_t n = 0;
    if (words.size() != 2 || !parse_u64(words[1], &n)) return wrong_arity(kw);
    scenario.snapshot_every = n;
    return true;
  }
  if (kw == "view") {
    std::uint64_t n = 0;
    if (words.size() != 2 || !parse_u64(words[1], &n)) return wrong_arity(kw);
    scenario.view = static_cast<std::size_t>(n);
    return true;
  }
  return fail("unknown header directive '" + std::string(kw) + "'");
}

bool Parser::op_line(std::string_view rest,
                     const std::vector<std::string_view>& words) {
  Op op;
  const std::string_view kw = words[0];
  if (kw == "partition") {
    op.kind = OpKind::kPartition;
    // Groups are '|'-separated; each group is a peer set.
    std::size_t pos = 0;
    std::vector<bool> seen(scenario.population, false);
    while (pos <= rest.size()) {
      std::size_t bar = rest.find('|', pos);
      if (bar == std::string_view::npos) bar = rest.size();
      const std::string_view group_text = trim(rest.substr(pos, bar - pos));
      pos = bar + 1;
      if (group_text.empty()) return fail("empty partition group");
      std::vector<common::PeerId> group;
      if (!parse_set(group_text, &group)) return false;
      for (const common::PeerId id : group) {
        if (seen[id.value()]) {
          return fail("peer " + std::to_string(id.value()) +
                      " in two partition groups");
        }
        seen[id.value()] = true;
      }
      op.groups.push_back(std::move(group));
      if (bar == rest.size()) break;
    }
    if (op.groups.size() < 2) return fail("partition needs >= 2 groups");
  } else if (kw == "heal") {
    if (words.size() != 1) return wrong_arity(kw);
    op.kind = OpKind::kHeal;
  } else if (kw == "linkloss" || kw == "linkdelay") {
    if (words.size() != 4) return wrong_arity(kw);
    op.kind = kw == "linkloss" ? OpKind::kLinkLoss : OpKind::kLinkDelay;
    if (!parse_set(words[1], &op.peers) || !parse_set(words[2], &op.dst)) {
      return false;
    }
    if (op.kind == OpKind::kLinkLoss) {
      if (!parse_probability(words[3], &op.a)) return false;
    } else {
      if (!parse_double(words[3], &op.a)) return false;
      if (op.a < 0.0) return fail("delay must be non-negative");
    }
  } else if (kw == "dup") {
    if (words.size() != 2) return wrong_arity(kw);
    op.kind = OpKind::kDuplicate;
    if (!parse_probability(words[1], &op.a)) return false;
  } else if (kw == "reorder") {
    if (words.size() != 3) return wrong_arity(kw);
    op.kind = OpKind::kReorder;
    if (!parse_probability(words[1], &op.a)) return false;
    if (!parse_double(words[2], &op.b)) return false;
    if (op.b < 0.0) return fail("reorder extra delay must be non-negative");
  } else if (kw == "offline" || kw == "online" || kw == "restart" ||
             kw == "disk-ok" || kw == "snapshot") {
    if (words.size() != 2) return wrong_arity(kw);
    op.kind = kw == "offline"   ? OpKind::kOffline
              : kw == "online"  ? OpKind::kOnline
              : kw == "restart" ? OpKind::kRestart
              : kw == "disk-ok" ? OpKind::kDiskOk
                                : OpKind::kSnapshot;
    if (!parse_set(words[1], &op.peers)) return false;
  } else if (kw == "skew") {
    if (words.size() != 3) return wrong_arity(kw);
    op.kind = OpKind::kSkew;
    if (!parse_set(words[1], &op.peers)) return false;
    if (!parse_double(words[2], &op.a)) return false;
    if (op.a < 0.0) return fail("skew factor must be non-negative");
  } else if (kw == "kill") {
    if (words.size() != 2 && !(words.size() == 3 && words[2] == "wipe")) {
      return fail("kill takes '<set>' or '<set> wipe'");
    }
    op.kind = OpKind::kKill;
    op.wipe = words.size() == 3;
    if (!parse_set(words[1], &op.peers)) return false;
  } else if (kw == "disk-fault") {
    if (words.size() != 3) return wrong_arity(kw);
    op.kind = OpKind::kDiskFault;
    if (!parse_set(words[1], &op.peers)) return false;
    if (words[2] == "appends") {
      op.disk = DiskFaultMode::kAppends;
    } else if (words[2] == "snapshots") {
      op.disk = DiskFaultMode::kSnapshots;
    } else if (words[2] == "torn") {
      op.disk = DiskFaultMode::kTorn;
    } else if (words[2] == "all") {
      op.disk = DiskFaultMode::kAll;
    } else {
      return fail("disk-fault mode must be appends|snapshots|torn|all");
    }
  } else if (kw == "publish") {
    if (words.size() != 3) return wrong_arity(kw);
    op.kind = OpKind::kPublish;
    if (!parse_peer(words[1], &op.peer)) return false;
    op.key = std::string(words[2]);
  } else {
    return fail("unknown op '" + std::string(kw) + "'");
  }
  scenario.phases.back().ops.push_back(std::move(op));
  return true;
}

[[nodiscard]] std::string format_set(const std::vector<common::PeerId>& set,
                                     std::size_t population) {
  if (set.size() == population) return "*";
  // Compress sorted ids into `a-b` ranges.
  std::string out;
  std::size_t i = 0;
  while (i < set.size()) {
    std::size_t j = i;
    while (j + 1 < set.size() &&
           set[j + 1].value() == set[j].value() + 1) {
      ++j;
    }
    if (!out.empty()) out += ',';
    out += std::to_string(set[i].value());
    if (j > i) {
      out += '-';
      out += std::to_string(set[j].value());
    }
    i = j + 1;
  }
  return out;
}

}  // namespace

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kPartition: return "partition";
    case OpKind::kHeal: return "heal";
    case OpKind::kLinkLoss: return "linkloss";
    case OpKind::kLinkDelay: return "linkdelay";
    case OpKind::kDuplicate: return "dup";
    case OpKind::kReorder: return "reorder";
    case OpKind::kOffline: return "offline";
    case OpKind::kOnline: return "online";
    case OpKind::kSkew: return "skew";
    case OpKind::kKill: return "kill";
    case OpKind::kRestart: return "restart";
    case OpKind::kDiskFault: return "disk-fault";
    case OpKind::kDiskOk: return "disk-ok";
    case OpKind::kSnapshot: return "snapshot";
    case OpKind::kPublish: return "publish";
  }
  return "unknown";
}

std::optional<Scenario> parse_scenario(std::string_view text,
                                       std::string* error) {
  Parser p;
  p.error = error;
  std::size_t pos = 0;
  while (pos <= text.size() && !p.failed) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++p.line_no;
    std::string_view line = raw;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      if (eol == text.size()) break;
      continue;
    }
    const std::vector<std::string_view> words = split_words(line);
    if (words[0] == "phase") {
      double duration = 0.0;
      if (words.size() != 2 || !p.parse_double(words[1], &duration)) {
        p.fail("phase takes one duration argument");
        break;
      }
      if (duration <= 0.0) {
        p.fail("phase duration must be positive");
        break;
      }
      p.in_phases = true;
      p.scenario.phases.push_back(Phase{duration, {}});
    } else if (!p.in_phases) {
      if (!p.header_line(words)) break;
    } else {
      if (!p.op_line(line.substr(words[0].size()), words)) break;
    }
    if (eol == text.size()) break;
  }
  if (p.failed) return std::nullopt;
  if (p.scenario.phases.empty()) {
    if (error != nullptr) *error = "scenario has no phases";
    return std::nullopt;
  }
  for (const common::PeerId id : p.scenario.durable) {
    if (id.value() >= p.scenario.population) {
      if (error != nullptr) *error = "durable peer outside population";
      return std::nullopt;
    }
  }
  return p.scenario;
}

std::string to_text(const Scenario& scenario) {
  std::ostringstream out;
  out << "name " << scenario.name << '\n';
  out << "population " << scenario.population << '\n';
  if (!scenario.durable.empty()) {
    out << "durable " << format_set(scenario.durable, scenario.population)
        << '\n';
  }
  out << "round " << format_double(scenario.round) << '\n';
  out << "tick " << format_double(scenario.tick) << '\n';
  if (scenario.base_loss > 0.0) {
    out << "loss " << format_double(scenario.base_loss) << '\n';
  }
  out << "latency " << format_double(scenario.latency_lo) << ' '
      << format_double(scenario.latency_hi) << '\n';
  out << "fanout " << format_double(scenario.fanout) << '\n';
  out << "acks " << (scenario.acks ? "on" : "off") << '\n';
  out << "retry-attempts " << scenario.retry_attempts << '\n';
  out << "retry-initial " << format_double(scenario.retry_initial) << '\n';
  out << "snapshot-every " << scenario.snapshot_every << '\n';
  if (scenario.view != 0) out << "view " << scenario.view << '\n';
  for (const Phase& phase : scenario.phases) {
    out << "phase " << format_double(phase.duration) << '\n';
    for (const Op& op : phase.ops) {
      out << "  " << to_string(op.kind);
      switch (op.kind) {
        case OpKind::kPartition:
          for (std::size_t g = 0; g < op.groups.size(); ++g) {
            out << (g == 0 ? " " : " | ")
                << format_set(op.groups[g], scenario.population);
          }
          break;
        case OpKind::kHeal:
          break;
        case OpKind::kLinkLoss:
        case OpKind::kLinkDelay:
          out << ' ' << format_set(op.peers, scenario.population) << ' '
              << format_set(op.dst, scenario.population) << ' '
              << format_double(op.a);
          break;
        case OpKind::kDuplicate:
          out << ' ' << format_double(op.a);
          break;
        case OpKind::kReorder:
          out << ' ' << format_double(op.a) << ' ' << format_double(op.b);
          break;
        case OpKind::kOffline:
        case OpKind::kOnline:
        case OpKind::kRestart:
        case OpKind::kDiskOk:
        case OpKind::kSnapshot:
          out << ' ' << format_set(op.peers, scenario.population);
          break;
        case OpKind::kSkew:
          out << ' ' << format_set(op.peers, scenario.population) << ' '
              << format_double(op.a);
          break;
        case OpKind::kKill:
          out << ' ' << format_set(op.peers, scenario.population);
          if (op.wipe) out << " wipe";
          break;
        case OpKind::kDiskFault:
          out << ' ' << format_set(op.peers, scenario.population) << ' '
              << (op.disk == DiskFaultMode::kAppends     ? "appends"
                  : op.disk == DiskFaultMode::kSnapshots ? "snapshots"
                  : op.disk == DiskFaultMode::kTorn      ? "torn"
                                                         : "all");
          break;
        case OpKind::kPublish:
          out << ' ' << op.peer.value() << ' ' << op.key;
          break;
      }
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace updp2p::chaos
