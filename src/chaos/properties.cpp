#include "chaos/properties.hpp"

#include "gossip/node.hpp"

namespace updp2p::chaos {

PropertyTracker::PropertyTracker(std::size_t population) : knew_(population) {}

void PropertyTracker::note_published(const version::VersionId& id,
                                     const std::string& key,
                                     common::PeerId publisher) {
  published_.push_back(Published{id, key, publisher});
}

void PropertyTracker::observe(common::PeerId peer,
                              const gossip::ReplicaNode& node) {
  std::vector<bool>& row = knew_[peer.value()];
  row.resize(published_.size(), false);
  for (std::size_t v = 0; v < published_.size(); ++v) {
    const bool knows = node.knows_version(published_[v].id);
    if (row[v] && !knows) {
      violations_.push_back(
          "monotone awareness: peer " + std::to_string(peer.value()) +
          " forgot version '" + published_[v].key +
          "' without losing its store");
    }
    if (knows) row[v] = true;
  }
}

void PropertyTracker::note_state_lost(common::PeerId peer) {
  knew_[peer.value()].assign(published_.size(), false);
}

void PropertyTracker::check_recovery(common::PeerId peer,
                                     const common::Digest128& died_with,
                                     const common::Digest128& recovered) {
  if (died_with.hi != recovered.hi || died_with.lo != recovered.lo) {
    violations_.push_back(
        "recovery digest: peer " + std::to_string(peer.value()) +
        " died with " + died_with.to_hex() + " but recovered " +
        recovered.to_hex());
  }
}

void PropertyTracker::check_final(common::PeerId peer,
                                  const gossip::ReplicaNode& node) {
  for (const Published& update : published_) {
    if (!node.knows_version(update.id)) {
      violations_.push_back(
          "eventual delivery: peer " + std::to_string(peer.value()) +
          " never learned version '" + update.key + "' published by peer " +
          std::to_string(update.publisher.value()));
    }
  }
}

}  // namespace updp2p::chaos
