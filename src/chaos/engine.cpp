#include "chaos/engine.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>

#include "chaos/properties.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "net/latency.hpp"
#include "runtime/peer_runtime.hpp"
#include "sim/sweep_pool.hpp"

namespace updp2p::chaos {

namespace {

/// Purpose key for each peer's bootstrap view sample (chaos-local stream;
/// distinct from LoopbackCluster's so the two harnesses never collide).
constexpr std::uint64_t kBootstrapPurpose = 0xB007C4;

/// mkdir -p: a data root like "build/chaos-sweep/storm/run-3" must come
/// into existence wholesale, or durable peers would silently fail to open
/// their stores and run volatile — which the monotone-awareness property
/// then (correctly) flags as forgotten state.
void make_dir(const std::string& path) {
  for (std::size_t slash = path.find('/', 1); slash != std::string::npos;
       slash = path.find('/', slash + 1)) {
    (void)::mkdir(path.substr(0, slash).c_str(), 0755);
  }
  if (!path.empty()) (void)::mkdir(path.c_str(), 0755);
}

[[nodiscard]] std::string format_time(common::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

/// One peer's slot in the cluster. The transport/runtime pair is recycled
/// by kill/restart; the store directory and the StoreFaults switchboard
/// persist across those lifetimes, exactly like a disk would.
struct PeerSlot {
  std::unique_ptr<net::InprocTransport> transport;
  std::unique_ptr<runtime::PeerRuntime> runtime;
  double skew = 1.0;              ///< local seconds per global second
  common::SimTime local = 0.0;    ///< skewed local clock (runs while dead)
  bool durable = false;
  std::shared_ptr<store::StoreFaults> faults;
  std::string data_dir;
  unsigned restarts = 0;
  unsigned wipes = 0;
  /// Content digest captured at kill time when the store was intact and
  /// fault-free; restart must recover exactly this.
  std::optional<common::Digest128> killed_digest;

  [[nodiscard]] bool alive() const noexcept { return runtime != nullptr; }
  [[nodiscard]] bool faulted() const noexcept {
    return faults && (faults->appends_failed > 0 ||
                      faults->snapshots_failed > 0 ||
                      faults->snapshots_torn > 0 || faults->fail_appends ||
                      faults->fail_snapshots || faults->torn_snapshots);
  }
};

class Engine {
 public:
  Engine(const Scenario& scenario, std::uint64_t seed,
         const ChaosOptions& options)
      : scenario_(scenario),
        seed_(seed),
        options_(options),
        injector_(scenario.population),
        tracker_(scenario.population) {
    UPDP2P_ENSURE(scenario_.durable.empty() || !options_.data_root.empty(),
                  "scenario has durable peers; ChaosOptions::data_root "
                  "must be set");
    report_.scenario = scenario_.name;
    report_.seed = seed;
    report_.mutation = options_.mutation;
  }

  ChaosReport run();

 private:
  void trace(const std::string& line) {
    if (options_.keep_trace) {
      report_.trace.push_back("t=" + format_time(now_) + " " + line);
    }
  }

  [[nodiscard]] runtime::RuntimeConfig runtime_config(common::PeerId id,
                                                      PeerSlot& slot) const {
    runtime::RuntimeConfig config;
    config.gossip.fanout_fraction = scenario_.fanout;
    config.gossip.estimated_total_replicas = scenario_.population;
    config.gossip.acks.enabled = scenario_.acks;
    config.retry.max_attempts = scenario_.retry_attempts;
    config.retry.initial_timeout = scenario_.retry_initial;
    config.round_duration = scenario_.round;
    config.tick_duration = scenario_.tick;
    config.seed = seed_;
    config.start_time = slot.local;
    if (slot.durable) {
      config.store.data_dir = slot.data_dir;
      config.store.snapshot_every_records = scenario_.snapshot_every;
      config.store.faults = slot.faults;
    }
    (void)id;
    return config;
  }

  [[nodiscard]] std::vector<common::PeerId> bootstrap_view(
      common::PeerId self) const {
    std::vector<common::PeerId> view;
    if (scenario_.view == 0) {
      for (std::size_t j = 0; j < scenario_.population; ++j) {
        if (j != self.value()) {
          view.emplace_back(static_cast<common::PeerId::rep_type>(j));
        }
      }
    } else {
      common::StreamRng rng(seed_, self.value(), kBootstrapPurpose);
      const auto others =
          static_cast<std::uint32_t>(scenario_.population - 1);
      const auto want = static_cast<std::uint32_t>(
          std::min<std::size_t>(scenario_.view, others));
      for (const std::uint32_t pick :
           rng.sample_without_replacement(others, want)) {
        view.emplace_back(pick >= self.value() ? pick + 1 : pick);
      }
    }
    return view;
  }

  void boot_peer(common::PeerId id, PeerSlot& slot) {
    slot.transport = network_->attach(id);
    slot.runtime = std::make_unique<runtime::PeerRuntime>(
        runtime_config(id, slot), *slot.transport);
    // A peer the scenario declares durable must actually have opened its
    // store — otherwise it silently runs volatile and every recovery
    // property downstream reports confusing "forgot state" violations
    // instead of the real problem (an unwritable data root).
    UPDP2P_ENSURE(!slot.durable || slot.runtime->durable(),
                  "chaos: durable peer failed to open its store; is the "
                  "data root writable?");
    slot.runtime->bootstrap(bootstrap_view(id));
  }

  void kill_peer(common::PeerId id, PeerSlot& slot, bool wipe);
  void restart_peer(common::PeerId id, PeerSlot& slot);
  void apply_op(const Op& op);
  void checkpoint(std::size_t phase_index);

  const Scenario& scenario_;
  std::uint64_t seed_;
  const ChaosOptions& options_;
  FaultInjector injector_;
  PropertyTracker tracker_;
  std::unique_ptr<net::InprocNetwork> network_;
  std::vector<PeerSlot> slots_;
  common::SimTime now_ = 0.0;
  std::vector<std::uint64_t> digest_words_;
  ChaosReport report_;
};

void Engine::kill_peer(common::PeerId id, PeerSlot& slot, bool wipe) {
  if (!slot.alive()) {
    trace("kill " + std::to_string(id.value()) + " (already dead, skipped)");
    return;
  }
  // A durable, fault-free, unwiped store must come back bit-identical;
  // anything else legitimately forgets.
  const bool store_intact = slot.durable && !wipe &&
                            slot.runtime->durable() && !slot.faulted();
  if (store_intact) {
    slot.killed_digest = slot.runtime->node().store().content_digest();
  } else {
    slot.killed_digest.reset();
  }
  // Runtime first (it borrows the transport), then the endpoint detaches.
  slot.runtime.reset();
  slot.transport.reset();
  if (wipe) {
    ++slot.wipes;
    (void)std::remove((slot.data_dir + "/wal.log").c_str());
    (void)std::remove((slot.data_dir + "/snapshot.bin").c_str());
  }
  if (wipe || !slot.durable) tracker_.note_state_lost(id);
  trace("kill " + std::to_string(id.value()) + (wipe ? " wipe" : ""));
}

void Engine::restart_peer(common::PeerId id, PeerSlot& slot) {
  if (slot.alive()) {
    trace("restart " + std::to_string(id.value()) +
          " (already alive, skipped)");
    return;
  }
  ++slot.restarts;
  boot_peer(id, slot);
  if (slot.killed_digest) {
    tracker_.check_recovery(id, *slot.killed_digest,
                            slot.runtime->node().store().content_digest());
    slot.killed_digest.reset();
  }
  trace("restart " + std::to_string(id.value()) + " recovered_records=" +
        std::to_string(slot.runtime->stats().wal_replayed));
}

void Engine::apply_op(const Op& op) {
  switch (op.kind) {
    case OpKind::kPartition:
      injector_.set_partition(op.groups);
      trace("partition into " + std::to_string(op.groups.size()) +
            "+ groups");
      break;
    case OpKind::kHeal:
      injector_.clear_network_faults();
      trace("heal");
      break;
    case OpKind::kLinkLoss:
      for (const common::PeerId from : op.peers) {
        for (const common::PeerId to : op.dst) {
          if (from != to) injector_.set_link_loss(from, to, op.a);
        }
      }
      trace("linkloss " + std::to_string(op.peers.size()) + "x" +
            std::to_string(op.dst.size()) + " links");
      break;
    case OpKind::kLinkDelay:
      for (const common::PeerId from : op.peers) {
        for (const common::PeerId to : op.dst) {
          if (from != to) injector_.set_link_delay(from, to, op.a);
        }
      }
      trace("linkdelay " + std::to_string(op.peers.size()) + "x" +
            std::to_string(op.dst.size()) + " links");
      break;
    case OpKind::kDuplicate:
      injector_.set_duplicate(op.a);
      trace("dup window");
      break;
    case OpKind::kReorder:
      injector_.set_reorder(op.a, op.b);
      trace("reorder window");
      break;
    case OpKind::kOffline:
      for (const common::PeerId id : op.peers) {
        PeerSlot& slot = slots_[id.value()];
        if (slot.alive()) slot.runtime->go_offline();
      }
      trace("offline " + std::to_string(op.peers.size()) + " peers");
      break;
    case OpKind::kOnline:
      for (const common::PeerId id : op.peers) {
        PeerSlot& slot = slots_[id.value()];
        if (slot.alive()) slot.runtime->go_online();
      }
      trace("online " + std::to_string(op.peers.size()) + " peers");
      break;
    case OpKind::kSkew:
      for (const common::PeerId id : op.peers) {
        slots_[id.value()].skew = op.a;
      }
      trace("skew x" + std::to_string(op.peers.size()));
      break;
    case OpKind::kKill:
      for (const common::PeerId id : op.peers) {
        kill_peer(id, slots_[id.value()], op.wipe);
      }
      break;
    case OpKind::kRestart:
      for (const common::PeerId id : op.peers) {
        restart_peer(id, slots_[id.value()]);
      }
      break;
    case OpKind::kDiskFault:
      for (const common::PeerId id : op.peers) {
        PeerSlot& slot = slots_[id.value()];
        if (!slot.faults) continue;  // volatile peer: benign no-op
        slot.faults->fail_appends = op.disk == DiskFaultMode::kAppends ||
                                    op.disk == DiskFaultMode::kAll;
        slot.faults->fail_snapshots = op.disk == DiskFaultMode::kSnapshots ||
                                      op.disk == DiskFaultMode::kAll;
        slot.faults->torn_snapshots = op.disk == DiskFaultMode::kTorn;
      }
      trace("disk-fault " + std::to_string(op.peers.size()) + " peers");
      break;
    case OpKind::kDiskOk:
      for (const common::PeerId id : op.peers) {
        PeerSlot& slot = slots_[id.value()];
        if (!slot.faults) continue;
        slot.faults->fail_appends = false;
        slot.faults->fail_snapshots = false;
        slot.faults->torn_snapshots = false;
      }
      trace("disk-ok " + std::to_string(op.peers.size()) + " peers");
      break;
    case OpKind::kSnapshot:
      for (const common::PeerId id : op.peers) {
        PeerSlot& slot = slots_[id.value()];
        if (slot.alive()) (void)slot.runtime->snapshot_now();
      }
      trace("snapshot " + std::to_string(op.peers.size()) + " peers");
      break;
    case OpKind::kPublish: {
      PeerSlot& slot = slots_[op.peer.value()];
      if (!slot.alive() || !slot.runtime->online()) {
        trace("publish " + op.key + " via " +
              std::to_string(op.peer.value()) +
              " skipped (peer dead/offline)");
        break;
      }
      // Deterministic payload: a function of the key and how many
      // publishes preceded it, never of wall time.
      const std::string payload =
          op.key + "#" + std::to_string(report_.published) + "@" +
          std::to_string(seed_);
      const auto id = slot.runtime->publish(op.key, payload);
      if (id) {
        ++report_.published;
        tracker_.note_published(*id, op.key, op.peer);
        trace("publish " + op.key + " via " +
              std::to_string(op.peer.value()) + " -> " + id->to_string());
      } else {
        trace("publish " + op.key + " via " +
              std::to_string(op.peer.value()) + " rejected");
      }
      break;
    }
  }
}

void Engine::checkpoint(std::size_t phase_index) {
  digest_words_.push_back(0xC4A05'0000 + phase_index);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const PeerSlot& slot = slots_[i];
    std::uint64_t flags = 0;
    if (slot.alive()) {
      flags |= 1;
      if (slot.runtime->online()) flags |= 2;
      const common::Digest128& digest =
          slot.runtime->node().store().content_digest();
      digest_words_.push_back(digest.hi);
      digest_words_.push_back(digest.lo);
    } else {
      digest_words_.push_back(0);
      digest_words_.push_back(0);
    }
    flags |= static_cast<std::uint64_t>(slot.restarts) << 8;
    flags |= static_cast<std::uint64_t>(slot.wipes) << 24;
    digest_words_.push_back(flags);
    if (slot.alive()) {
      const runtime::RuntimeStats& stats = slot.runtime->stats();
      digest_words_.push_back(stats.datagrams_out);
      digest_words_.push_back(stats.datagrams_in);
      digest_words_.push_back(stats.retransmits);
      digest_words_.push_back(stats.wal_appends);
    } else {
      for (int k = 0; k < 4; ++k) digest_words_.push_back(0);
    }
  }
  const net::InprocNetworkStats& net_stats = network_->stats();
  digest_words_.push_back(net_stats.datagrams_submitted);
  digest_words_.push_back(net_stats.datagrams_delivered);
  digest_words_.push_back(net_stats.dropped_loss);
  digest_words_.push_back(net_stats.dropped_offline);
  digest_words_.push_back(net_stats.dropped_policy);
  digest_words_.push_back(net_stats.datagrams_duplicated);
  injector_.fold(digest_words_);
}

ChaosReport Engine::run() {
  make_dir(options_.data_root);

  net::InprocNetworkConfig net_config;
  net_config.seed = seed_;
  net_config.loss_probability = scenario_.base_loss;
  if (scenario_.latency_hi > scenario_.latency_lo) {
    net_config.latency = std::make_shared<net::UniformLatency>(
        scenario_.latency_lo, scenario_.latency_hi);
  } else {
    net_config.latency =
        std::make_shared<net::ConstantLatency>(scenario_.latency_lo);
  }
  network_ = std::make_unique<net::InprocNetwork>(net_config);
  network_->set_link_policy(&injector_);
  injector_.set_mutation(options_.mutation);

  slots_.resize(scenario_.population);
  for (std::size_t i = 0; i < scenario_.population; ++i) {
    const common::PeerId id(static_cast<common::PeerId::rep_type>(i));
    PeerSlot& slot = slots_[i];
    slot.durable = scenario_.is_durable(id);
    if (slot.durable) {
      slot.data_dir = options_.data_root + "/peer-" + std::to_string(i);
      slot.faults = std::make_shared<store::StoreFaults>();
      // A run is a pure function of (scenario, seed): leftovers from a
      // previous run over the same data_root would replay into the node
      // (and, same seed, collide with freshly minted version ids).
      (void)std::remove((slot.data_dir + "/wal.log").c_str());
      (void)std::remove((slot.data_dir + "/snapshot.bin").c_str());
    }
    boot_peer(id, slot);
  }

  for (std::size_t p = 0; p < scenario_.phases.size(); ++p) {
    const Phase& phase = scenario_.phases[p];
    trace("--- phase " + std::to_string(p) + " (" +
          format_time(phase.duration) + "s)");
    // Ops fire back-to-back with no time elapsing between them; sequences
    // like `disk-fault torn; snapshot; kill` rely on that atomicity.
    for (const Op& op : phase.ops) apply_op(op);

    const common::SimTime end = now_ + phase.duration;
    while (now_ < end) {
      const common::SimTime next = std::min(now_ + scenario_.tick, end);
      const common::SimTime dt = next - now_;
      network_->advance_to(next);
      for (PeerSlot& slot : slots_) {
        slot.local += slot.skew * dt;  // a dead peer's clock keeps running
        if (slot.alive()) slot.runtime->poll(slot.local);
      }
      now_ = next;
    }

    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const PeerSlot& slot = slots_[i];
      if (slot.alive()) {
        tracker_.observe(common::PeerId(static_cast<common::PeerId::rep_type>(i)),
                         slot.runtime->node());
      }
    }
    checkpoint(p);
  }

  // Eventual delivery over the final live online set.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const PeerSlot& slot = slots_[i];
    if (slot.alive() && slot.runtime->online()) {
      tracker_.check_final(
          common::PeerId(static_cast<common::PeerId::rep_type>(i)),
          slot.runtime->node());
    }
  }

  report_.phases = scenario_.phases.size();
  report_.violations = tracker_.violations();
  report_.trace_digest = common::digest128(digest_words_);
  report_.network = network_->stats();
  report_.injector = injector_.stats();
  report_.peers.reserve(slots_.size());
  for (PeerSlot& slot : slots_) {
    PeerSummary summary;
    summary.alive = slot.alive();
    summary.online = slot.alive() && slot.runtime->online();
    summary.durable = slot.durable;
    summary.restarts = slot.restarts;
    summary.wipes = slot.wipes;
    if (slot.alive()) {
      summary.state = slot.runtime->node().store().content_digest();
    }
    report_.peers.push_back(summary);
  }
  // Teardown order: runtimes and endpoints before the network they borrow.
  for (PeerSlot& slot : slots_) {
    slot.runtime.reset();
    slot.transport.reset();
  }
  network_->set_link_policy(nullptr);
  return std::move(report_);
}

}  // namespace

ChaosReport run_scenario(const Scenario& scenario, std::uint64_t seed,
                         const ChaosOptions& options) {
  Engine engine(scenario, seed, options);
  return engine.run();
}

std::vector<ChaosReport> run_seed_sweep(const Scenario& scenario,
                                        std::span<const std::uint64_t> seeds,
                                        const ChaosOptions& options,
                                        unsigned threads) {
  make_dir(options.data_root);
  std::vector<ChaosReport> reports(seeds.size());
  sim::SweepPool::shared().run(
      static_cast<unsigned>(seeds.size()), threads, [&](unsigned i) {
        ChaosOptions run_options = options;
        if (!options.data_root.empty()) {
          run_options.data_root =
              options.data_root + "/run-" + std::to_string(i);
        }
        reports[i] = run_scenario(scenario, seeds[i], run_options);
      });
  return reports;
}

}  // namespace updp2p::chaos
