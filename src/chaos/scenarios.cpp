#include "chaos/scenarios.hpp"

#include "common/ensure.hpp"

namespace updp2p::chaos {

namespace {

/// Fault schedules over small clusters (8-12 peers; every script keeps
/// rounds short so the whole corpus runs in well under a second of wall
/// time per seed). Durations are in virtual seconds.
constexpr std::string_view kScripts[] = {
    // The paper's headline regime: a clean split while an update floods,
    // a second update born inside the minority side, then heal. Both
    // sides converge through the no-update-timeout pull.
    R"(name partition-heal
population 10
round 0.25
phase 1
  publish 0 alpha
phase 1
  partition 0-4 | 5-9
  publish 5 beta
phase 3
  publish 1 gamma
phase 15
  heal
)",

    // Heavily lossy in one direction only: §6 acks + capped-backoff
    // retries must push updates across the bad direction anyway.
    R"(name asymmetric-loss
population 8
round 0.25
phase 1
  linkloss 0-3 4-7 0.6
  publish 0 alpha
phase 4
  publish 2 beta
phase 15
  heal
)",

    // Duplicate and reorder windows: duplicate-tolerant receipt and
    // version-vector ordering must keep state exact.
    R"(name duplicate-reorder
population 8
round 0.25
phase 1
  dup 0.3
  reorder 0.3 0.4
  publish 0 alpha
phase 3
  publish 4 beta
  publish 6 gamma
phase 15
  heal
)",

    // Churn burst: half the cluster offline through two publishes, then
    // back; reconnect pulls (§3) recover the missed updates.
    R"(name churn-burst
population 10
round 0.25
phase 1
  offline 5-9
  publish 0 alpha
phase 2
  publish 3 beta
phase 1
  online 5-9
phase 20
  heal
)",

    // Skewed clocks: fast and slow peers tick rounds at 2x and 0.5x;
    // convergence must not depend on synchronized round boundaries.
    R"(name clock-skew
population 8
round 0.25
phase 1
  skew 2-3 2
  skew 4-5 0.5
  publish 0 alpha
phase 4
  publish 6 beta
phase 15
  heal
  skew 2-5 1
)",

    // Kill/restart with stores intact: the restarted peers must recover
    // exactly the digest they died with (append-before-ack).
    R"(name kill-restart-durable
population 8
durable 0-3
round 0.25
phase 2
  publish 0 alpha
  publish 1 beta
phase 2
  kill 1-2
  publish 0 gamma
phase 1
  restart 1-2
phase 15
  heal
)",

    // Wiped restart: peer 1 comes back empty and must refill everything
    // through the pull phase, like a fresh §2 joiner.
    R"(name kill-restart-wiped
population 8
durable 0-3
round 0.25
phase 2
  publish 0 alpha
  publish 2 beta
phase 2
  kill 1 wipe
phase 1
  restart 1
phase 15
  heal
)",

    // Broken WAL: appends fail on peer 1, which degrades to volatile but
    // keeps gossiping; once the disk heals the protocol never noticed.
    R"(name disk-fault-appends
population 8
durable 0-3
round 0.25
phase 1
  disk-fault 1 appends
  publish 0 alpha
phase 2
  publish 1 beta
  disk-ok 1
phase 15
  heal
)",

    // Crash in the snapshot/truncate window: the snapshot lands, the
    // stale log survives, the process dies on the spot. Recovery stands
    // on the snapshot, discards the stale tail, and pulls the rest.
    R"(name crash-during-snapshot
population 8
durable 0-1
round 0.25
snapshot-every 1000
phase 2
  publish 0 alpha
  publish 1 beta
phase 1
  disk-fault 0 torn
  snapshot 0
  kill 0
phase 1
  disk-ok 0
  restart 0
phase 15
  heal
)",

    // Everything at once: partition + loss + duplication + churn + a
    // durable crash, then a long healed settle.
    R"(name combined-storm
population 12
durable 0-3
round 0.25
loss 0.05
phase 1
  publish 0 alpha
phase 2
  partition 0-5 | 6-11
  dup 0.2
  publish 6 beta
phase 2
  offline 4-5
  kill 2
  publish 0 gamma
phase 1
  heal
  online 4-5
  restart 2
phase 15
  heal
)",

    // Canary baseline: peers 6-9 miss two publishes while offline and
    // recover purely through the pull phase. Passes clean as-is; under
    // the drop-pull-responses mutation recovery is impossible and the
    // eventual-delivery check MUST fire — proving the checker has teeth.
    R"(name canary-pull-recovery
population 10
round 0.25
phase 1
  offline 6-9
  publish 0 alpha
phase 2
  publish 3 beta
phase 1
  online 6-9
phase 15
  heal
)",
};

}  // namespace

std::vector<Scenario> builtin_scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.reserve(std::size(kScripts));
  for (const std::string_view script : kScripts) {
    std::string error;
    auto scenario = parse_scenario(script, &error);
    UPDP2P_ENSURE(scenario.has_value(),
                  ("builtin chaos scenario failed to parse: " + error).c_str());
    scenarios.push_back(std::move(*scenario));
  }
  return scenarios;
}

std::optional<Scenario> find_scenario(std::string_view name) {
  for (Scenario& scenario : builtin_scenarios()) {
    if (scenario.name == name) return std::move(scenario);
  }
  return std::nullopt;
}

}  // namespace updp2p::chaos
