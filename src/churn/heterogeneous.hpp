// Non-uniform peer availability (paper §8 future work).
//
// "Also the effect of non-uniform online probability of peers needs to be
// explored. In such a scenario a relatively reliable network backbone would
// exist and thus would make possible further performance improvements."
//
// HeterogeneousChurn gives every peer its own (σ_i, p_join_i); the
// backbone() factory builds the paper's scenario: a small fraction of
// highly available peers amid a flaky majority. DiurnalTraceGenerator
// produces deterministic schedules with a day/night availability swing for
// TraceChurn.
#pragma once

#include <memory>
#include <vector>

#include "churn/churn_model.hpp"

namespace updp2p::churn {

/// Per-peer two-state churn: peer i stays online with sigma[i] and rejoins
/// with p_join[i] per round.
class HeterogeneousChurn final : public ChurnModel {
 public:
  struct PeerRates {
    double initial_online_probability = 0.2;
    double sigma = 0.95;
    double p_join = 0.0;
  };

  explicit HeterogeneousChurn(std::vector<PeerRates> rates);

  void reset(common::Rng& rng) override;
  void advance(common::Rng& rng) override;

  [[nodiscard]] const PeerRates& rates(common::PeerId peer) const {
    return rates_.at(peer.value());
  }

  /// Stationary availability of peer i: p_join / (p_join + 1 − σ).
  [[nodiscard]] double stationary_availability(common::PeerId peer) const;

 private:
  std::vector<PeerRates> rates_;
};

/// The §8 backbone scenario: `backbone_fraction` of the population is
/// highly available (σ=backbone_sigma, availability≈backbone_availability);
/// the rest churns like the paper's default flaky peers. Backbone peers get
/// the LOWEST ids (0 .. backbone_count−1) so experiments can address them.
[[nodiscard]] std::unique_ptr<HeterogeneousChurn> make_backbone_churn(
    std::size_t population, double backbone_fraction,
    double backbone_availability, double backbone_sigma,
    double flaky_availability, double flaky_sigma);

/// Deterministic day/night availability schedule for TraceChurn: per-peer
/// phase-shifted square waves whose duty cycle oscillates between
/// `night_availability` and `day_availability` over `period_rounds`.
class DiurnalTraceGenerator {
 public:
  DiurnalTraceGenerator(std::size_t population, common::Round period_rounds,
                        double day_availability, double night_availability);

  /// Generates `rounds` rounds of online sets, deterministic given `seed`.
  [[nodiscard]] std::vector<std::vector<common::PeerId>> generate(
      common::Round rounds, std::uint64_t seed) const;

  /// Availability targeted at round `t` (sinusoidal between night and day).
  [[nodiscard]] double availability_at(common::Round t) const;

 private:
  std::size_t population_;
  common::Round period_;
  double day_;
  double night_;
};

}  // namespace updp2p::churn
