#include "churn/heterogeneous.hpp"

#include <cmath>

#include "common/ensure.hpp"

namespace updp2p::churn {

HeterogeneousChurn::HeterogeneousChurn(std::vector<PeerRates> rates)
    : ChurnModel(rates.size()), rates_(std::move(rates)) {
  UPDP2P_ENSURE(!rates_.empty(), "population must be non-empty");
  for (const auto& r : rates_) {
    UPDP2P_ENSURE(r.sigma >= 0.0 && r.sigma <= 1.0, "sigma in [0,1]");
    UPDP2P_ENSURE(r.p_join >= 0.0 && r.p_join <= 1.0, "p_join in [0,1]");
    UPDP2P_ENSURE(r.initial_online_probability >= 0.0 &&
                      r.initial_online_probability <= 1.0,
                  "initial probability in [0,1]");
  }
}

void HeterogeneousChurn::reset(common::Rng& rng) {
  auto& set = mutable_online();
  for (std::uint32_t i = 0; i < population(); ++i) {
    set.set(common::PeerId(i),
            rng.bernoulli(rates_[i].initial_online_probability));
  }
}

void HeterogeneousChurn::advance(common::Rng& rng) {
  auto& set = mutable_online();
  for (std::uint32_t i = 0; i < population(); ++i) {
    const common::PeerId peer(i);
    const auto& r = rates_[i];
    if (set.is_online(peer)) {
      if (!rng.bernoulli(r.sigma)) set.set(peer, false);
    } else {
      if (rng.bernoulli(r.p_join)) set.set(peer, true);
    }
  }
}

double HeterogeneousChurn::stationary_availability(common::PeerId peer) const {
  const auto& r = rates_.at(peer.value());
  const double leave = 1.0 - r.sigma;
  const double denom = r.p_join + leave;
  return denom == 0.0 ? r.initial_online_probability : r.p_join / denom;
}

namespace {
/// Derives p_join so the stationary availability hits the target given σ:
/// a = p / (p + 1−σ)  =>  p = a(1−σ) / (1−a).
double p_join_for(double availability, double sigma) {
  if (availability >= 1.0) return 1.0;
  return availability * (1.0 - sigma) / (1.0 - availability);
}
}  // namespace

std::unique_ptr<HeterogeneousChurn> make_backbone_churn(
    std::size_t population, double backbone_fraction,
    double backbone_availability, double backbone_sigma,
    double flaky_availability, double flaky_sigma) {
  UPDP2P_ENSURE(backbone_fraction >= 0.0 && backbone_fraction <= 1.0,
                "backbone fraction in [0,1]");
  const auto backbone_count =
      static_cast<std::size_t>(backbone_fraction *
                               static_cast<double>(population) + 0.5);
  std::vector<HeterogeneousChurn::PeerRates> rates(population);
  for (std::size_t i = 0; i < population; ++i) {
    auto& r = rates[i];
    if (i < backbone_count) {
      r.sigma = backbone_sigma;
      r.initial_online_probability = backbone_availability;
      r.p_join = std::min(1.0, p_join_for(backbone_availability,
                                          backbone_sigma));
    } else {
      r.sigma = flaky_sigma;
      r.initial_online_probability = flaky_availability;
      r.p_join = std::min(1.0, p_join_for(flaky_availability, flaky_sigma));
    }
  }
  return std::make_unique<HeterogeneousChurn>(std::move(rates));
}

DiurnalTraceGenerator::DiurnalTraceGenerator(std::size_t population,
                                             common::Round period_rounds,
                                             double day_availability,
                                             double night_availability)
    : population_(population),
      period_(period_rounds),
      day_(day_availability),
      night_(night_availability) {
  UPDP2P_ENSURE(population > 0, "population must be positive");
  UPDP2P_ENSURE(period_rounds > 0, "period must be positive");
  UPDP2P_ENSURE(day_availability >= 0.0 && day_availability <= 1.0 &&
                    night_availability >= 0.0 && night_availability <= 1.0,
                "availabilities in [0,1]");
}

double DiurnalTraceGenerator::availability_at(common::Round t) const {
  const double phase = 2.0 * 3.141592653589793 *
                       static_cast<double>(t % period_) /
                       static_cast<double>(period_);
  // Peaks mid-period ("midday"), troughs at the boundaries.
  const double wave = 0.5 - 0.5 * std::cos(phase);
  return night_ + (day_ - night_) * wave;
}

std::vector<std::vector<common::PeerId>> DiurnalTraceGenerator::generate(
    common::Round rounds, std::uint64_t seed) const {
  // Each peer gets a random "habit offset" so individual sessions are
  // stable (people keep their hours) while aggregate availability follows
  // the diurnal wave.
  common::Rng rng(seed);
  std::vector<double> habit(population_);
  for (auto& h : habit) h = rng.uniform01();

  std::vector<std::vector<common::PeerId>> schedule;
  schedule.reserve(rounds);
  for (common::Round t = 0; t < rounds; ++t) {
    const double availability = availability_at(t);
    std::vector<common::PeerId> online;
    for (std::uint32_t i = 0; i < population_; ++i) {
      // A peer is online whenever the wave exceeds its habit threshold:
      // low-threshold peers are the backbone-ish always-on users.
      if (habit[i] < availability) online.emplace_back(i);
    }
    schedule.push_back(std::move(online));
  }
  return schedule;
}

}  // namespace updp2p::churn
