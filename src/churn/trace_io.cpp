#include "churn/trace_io.hpp"

#include <fstream>
#include <sstream>

namespace updp2p::churn {

void write_trace(std::ostream& out, const TraceSchedule& schedule) {
  for (std::size_t round = 0; round < schedule.size(); ++round) {
    out << round;
    for (const common::PeerId peer : schedule[round]) {
      out << ',' << peer.value();
    }
    out << '\n';
  }
}

std::optional<TraceSchedule> read_trace(std::istream& in,
                                        std::size_t population) {
  TraceSchedule schedule;
  std::string line;
  std::size_t expected_round = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string field;
    if (!std::getline(fields, field, ',')) return std::nullopt;

    // Strict numeric parse of the round number.
    std::size_t round = 0;
    try {
      std::size_t consumed = 0;
      round = std::stoull(field, &consumed);
      if (consumed != field.size()) return std::nullopt;
    } catch (...) {
      return std::nullopt;
    }
    if (round != expected_round) return std::nullopt;  // contiguity
    ++expected_round;

    std::vector<common::PeerId> online;
    while (std::getline(fields, field, ',')) {
      unsigned long long id = 0;
      try {
        std::size_t consumed = 0;
        id = std::stoull(field, &consumed);
        if (consumed != field.size()) return std::nullopt;
      } catch (...) {
        return std::nullopt;
      }
      if (id >= population) return std::nullopt;
      online.emplace_back(static_cast<std::uint32_t>(id));
    }
    schedule.push_back(std::move(online));
  }
  if (schedule.empty()) return std::nullopt;
  return schedule;
}

bool save_trace(const std::string& path, const TraceSchedule& schedule) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_trace(out, schedule);
  return static_cast<bool>(out);
}

std::optional<TraceSchedule> load_trace(const std::string& path,
                                        std::size_t population) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_trace(in, population);
}

}  // namespace updp2p::churn
