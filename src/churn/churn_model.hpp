// Peer availability (churn) processes.
//
// Paper §3: "peers can go offline at any time according to a random process
// that models the behaviour when peers are online", with σ = P(an online
// peer stays online across one push round) and p_j = P(an offline peer comes
// online in a round). §4.1 analyses the push phase with constant σ and
// p_j ≈ 0; the simulator supports the full process so the simplifications
// can be validated (paper §8 future work).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace updp2p::churn {

/// Dense online/offline membership of a population, with O(1) count.
class OnlineSet {
 public:
  explicit OnlineSet(std::size_t population) : online_(population, false) {}

  void set(common::PeerId peer, bool online) noexcept;
  [[nodiscard]] bool is_online(common::PeerId peer) const noexcept {
    return online_[peer.value()];
  }
  [[nodiscard]] std::size_t population() const noexcept { return online_.size(); }
  [[nodiscard]] std::size_t online_count() const noexcept { return count_; }
  [[nodiscard]] double online_fraction() const noexcept {
    return population() == 0
               ? 0.0
               : static_cast<double>(count_) / static_cast<double>(population());
  }
  /// Materialises the ids of all online peers (for metrics/tests).
  [[nodiscard]] std::vector<common::PeerId> online_peers() const;

 private:
  std::vector<bool> online_;
  std::size_t count_ = 0;
};

/// Round-synchronous churn process, matching the analysis model's timebase.
class ChurnModel {
 public:
  virtual ~ChurnModel() = default;

  /// (Re)initialises the round-0 online set.
  virtual void reset(common::Rng& rng) = 0;

  /// Advances the process by one push round.
  virtual void advance(common::Rng& rng) = 0;

  [[nodiscard]] const OnlineSet& online() const noexcept { return online_; }
  [[nodiscard]] bool is_online(common::PeerId peer) const noexcept {
    return online_.is_online(peer);
  }
  [[nodiscard]] std::size_t population() const noexcept {
    return online_.population();
  }
  [[nodiscard]] std::size_t online_count() const noexcept {
    return online_.online_count();
  }

 protected:
  explicit ChurnModel(std::size_t population) : online_(population) {}
  OnlineSet& mutable_online() noexcept { return online_; }

 private:
  OnlineSet online_;
};

/// σ = 1, p_j = 0: a fixed fraction is online for the whole push phase.
/// Exactly the population model behind Fig. 5 (Sigma = 1).
class StaticChurn final : public ChurnModel {
 public:
  StaticChurn(std::size_t population, double online_fraction);

  void reset(common::Rng& rng) override;
  void advance(common::Rng& /*rng*/) override {}

 private:
  double online_fraction_;
};

/// The paper's per-round process: online peers stay with probability σ,
/// offline peers join with probability p_j.
class BernoulliChurn final : public ChurnModel {
 public:
  BernoulliChurn(std::size_t population, double initial_online_fraction,
                 double sigma, double p_join);

  void reset(common::Rng& rng) override;
  void advance(common::Rng& rng) override;

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] double p_join() const noexcept { return p_join_; }
  /// Stationary online fraction p_j / (p_j + (1 - σ)).
  [[nodiscard]] double stationary_fraction() const noexcept;

 private:
  double initial_online_fraction_;
  double sigma_;
  double p_join_;
};

/// Two-state Markov churn parameterised by mean session lengths (in rounds)
/// instead of transition probabilities: E[online session] = 1/(1-σ),
/// E[offline session] = 1/p_j. Convenience wrapper over BernoulliChurn
/// for workload descriptions phrased in session durations.
class SessionChurn final : public ChurnModel {
 public:
  SessionChurn(std::size_t population, double mean_online_rounds,
               double mean_offline_rounds);

  void reset(common::Rng& rng) override;
  void advance(common::Rng& rng) override;

  [[nodiscard]] double availability() const noexcept;

 private:
  double stay_prob_;
  double join_prob_;
};

/// Replays an explicit per-round schedule (deterministic regression tests,
/// catastrophe scenarios like mass disconnections).
class TraceChurn final : public ChurnModel {
 public:
  /// `schedule[r]` lists the peers online in round r; rounds past the end
  /// of the schedule repeat the last entry.
  TraceChurn(std::size_t population,
             std::vector<std::vector<common::PeerId>> schedule);

  void reset(common::Rng& rng) override;
  void advance(common::Rng& rng) override;

  [[nodiscard]] std::size_t current_round() const noexcept { return round_; }

 private:
  void apply_round(std::size_t round);

  std::vector<std::vector<common::PeerId>> schedule_;
  std::size_t round_ = 0;
};

/// Continuous-time alternating-renewal availability for the event-driven
/// simulator: exponential online/offline session durations.
class SessionProcess {
 public:
  SessionProcess(double mean_online_time, double mean_offline_time);

  struct Transition {
    common::SimTime at;
    bool goes_online;
  };

  /// Initial state sampled from the stationary distribution; returns whether
  /// the peer starts online and the time of its first transition.
  [[nodiscard]] std::pair<bool, common::SimTime> start(common::Rng& rng) const;

  /// Next transition after a state change at `now` into state `online`.
  [[nodiscard]] common::SimTime next_transition(common::Rng& rng, bool online,
                                                common::SimTime now) const;

  [[nodiscard]] double availability() const noexcept {
    return mean_online_ / (mean_online_ + mean_offline_);
  }

 private:
  double mean_online_;
  double mean_offline_;
};

}  // namespace updp2p::churn
