#include "churn/churn_model.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace updp2p::churn {

void OnlineSet::set(common::PeerId peer, bool online) noexcept {
  const auto idx = peer.value();
  if (online_[idx] == online) return;
  online_[idx] = online;
  count_ += online ? 1 : std::size_t(-1);
}

std::vector<common::PeerId> OnlineSet::online_peers() const {
  std::vector<common::PeerId> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < online_.size(); ++i) {
    if (online_[i]) out.emplace_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

// --- StaticChurn -----------------------------------------------------------

StaticChurn::StaticChurn(std::size_t population, double online_fraction)
    : ChurnModel(population), online_fraction_(online_fraction) {
  UPDP2P_ENSURE(online_fraction >= 0.0 && online_fraction <= 1.0,
                "online fraction must be in [0,1]");
}

void StaticChurn::reset(common::Rng& rng) {
  auto& set = mutable_online();
  const auto n = static_cast<std::uint32_t>(population());
  const auto k = static_cast<std::uint32_t>(
      online_fraction_ * static_cast<double>(n) + 0.5);
  for (std::uint32_t i = 0; i < n; ++i) set.set(common::PeerId(i), false);
  for (const std::uint32_t idx : rng.sample_without_replacement(n, k)) {
    set.set(common::PeerId(idx), true);
  }
}

// --- BernoulliChurn ---------------------------------------------------------

BernoulliChurn::BernoulliChurn(std::size_t population,
                               double initial_online_fraction, double sigma,
                               double p_join)
    : ChurnModel(population),
      initial_online_fraction_(initial_online_fraction),
      sigma_(sigma),
      p_join_(p_join) {
  UPDP2P_ENSURE(sigma >= 0.0 && sigma <= 1.0, "sigma must be in [0,1]");
  UPDP2P_ENSURE(p_join >= 0.0 && p_join <= 1.0, "p_join must be in [0,1]");
  UPDP2P_ENSURE(initial_online_fraction >= 0.0 && initial_online_fraction <= 1.0,
                "initial online fraction must be in [0,1]");
}

void BernoulliChurn::reset(common::Rng& rng) {
  auto& set = mutable_online();
  const auto n = static_cast<std::uint32_t>(population());
  const auto k = static_cast<std::uint32_t>(
      initial_online_fraction_ * static_cast<double>(n) + 0.5);
  for (std::uint32_t i = 0; i < n; ++i) set.set(common::PeerId(i), false);
  for (const std::uint32_t idx : rng.sample_without_replacement(n, k)) {
    set.set(common::PeerId(idx), true);
  }
}

void BernoulliChurn::advance(common::Rng& rng) {
  auto& set = mutable_online();
  for (std::uint32_t i = 0; i < population(); ++i) {
    const common::PeerId peer(i);
    if (set.is_online(peer)) {
      if (!rng.bernoulli(sigma_)) set.set(peer, false);
    } else {
      if (rng.bernoulli(p_join_)) set.set(peer, true);
    }
  }
}

double BernoulliChurn::stationary_fraction() const noexcept {
  const double leave = 1.0 - sigma_;
  const double denom = p_join_ + leave;
  return denom == 0.0 ? initial_online_fraction_ : p_join_ / denom;
}

// --- SessionChurn ------------------------------------------------------------

SessionChurn::SessionChurn(std::size_t population, double mean_online_rounds,
                           double mean_offline_rounds)
    : ChurnModel(population),
      stay_prob_(1.0 - 1.0 / std::max(1.0, mean_online_rounds)),
      join_prob_(1.0 / std::max(1.0, mean_offline_rounds)) {
  UPDP2P_ENSURE(mean_online_rounds >= 1.0 && mean_offline_rounds >= 1.0,
                "mean session lengths are at least one round");
}

double SessionChurn::availability() const noexcept {
  const double leave = 1.0 - stay_prob_;
  return join_prob_ / (join_prob_ + leave);
}

void SessionChurn::reset(common::Rng& rng) {
  // Start at the stationary distribution.
  auto& set = mutable_online();
  const double avail = availability();
  for (std::uint32_t i = 0; i < population(); ++i) {
    set.set(common::PeerId(i), rng.bernoulli(avail));
  }
}

void SessionChurn::advance(common::Rng& rng) {
  auto& set = mutable_online();
  for (std::uint32_t i = 0; i < population(); ++i) {
    const common::PeerId peer(i);
    if (set.is_online(peer)) {
      if (!rng.bernoulli(stay_prob_)) set.set(peer, false);
    } else {
      if (rng.bernoulli(join_prob_)) set.set(peer, true);
    }
  }
}

// --- TraceChurn ---------------------------------------------------------------

TraceChurn::TraceChurn(std::size_t population,
                       std::vector<std::vector<common::PeerId>> schedule)
    : ChurnModel(population), schedule_(std::move(schedule)) {
  UPDP2P_ENSURE(!schedule_.empty(), "trace schedule must have at least one round");
  for (const auto& round : schedule_) {
    for (const common::PeerId peer : round) {
      UPDP2P_ENSURE(peer.value() < population, "trace peer id out of range");
    }
  }
}

void TraceChurn::apply_round(std::size_t round) {
  const auto& online_list = schedule_[std::min(round, schedule_.size() - 1)];
  auto& set = mutable_online();
  for (std::uint32_t i = 0; i < population(); ++i) {
    set.set(common::PeerId(i), false);
  }
  for (const common::PeerId peer : online_list) set.set(peer, true);
}

void TraceChurn::reset(common::Rng& /*rng*/) {
  round_ = 0;
  apply_round(0);
}

void TraceChurn::advance(common::Rng& /*rng*/) { apply_round(++round_); }

// --- SessionProcess -------------------------------------------------------------

SessionProcess::SessionProcess(double mean_online_time, double mean_offline_time)
    : mean_online_(mean_online_time), mean_offline_(mean_offline_time) {
  UPDP2P_ENSURE(mean_online_time > 0.0 && mean_offline_time > 0.0,
                "mean session times must be positive");
}

std::pair<bool, common::SimTime> SessionProcess::start(common::Rng& rng) const {
  const bool online = rng.bernoulli(availability());
  // Exponential sessions are memoryless, so the residual time in the current
  // state is again exponential with the full mean.
  const double mean = online ? mean_online_ : mean_offline_;
  return {online, rng.exponential(1.0 / mean)};
}

common::SimTime SessionProcess::next_transition(common::Rng& rng, bool online,
                                                common::SimTime now) const {
  const double mean = online ? mean_online_ : mean_offline_;
  return now + rng.exponential(1.0 / mean);
}

}  // namespace updp2p::churn
