// Availability-trace import/export.
//
// Trace-driven churn (TraceChurn) lets experiments replay measured peer
// uptime — e.g. converted Overnet/Skype availability datasets — instead of
// synthetic processes. The interchange format is one CSV line per round:
//
//   round,peer_id[,peer_id...]
//
// Rounds must be contiguous from 0; a round with no online peer is a line
// with just the round number.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace updp2p::churn {

using TraceSchedule = std::vector<std::vector<common::PeerId>>;

/// Serialises a schedule to the CSV interchange format.
void write_trace(std::ostream& out, const TraceSchedule& schedule);

/// Parses a schedule; nullopt on malformed input (non-numeric fields,
/// missing/misordered round numbers, ids ≥ `population`).
[[nodiscard]] std::optional<TraceSchedule> read_trace(std::istream& in,
                                                      std::size_t population);

/// File-based convenience wrappers. Return false / nullopt on I/O errors.
bool save_trace(const std::string& path, const TraceSchedule& schedule);
[[nodiscard]] std::optional<TraceSchedule> load_trace(const std::string& path,
                                                      std::size_t population);

}  // namespace updp2p::churn
