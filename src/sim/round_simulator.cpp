#include "sim/round_simulator.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "common/logging.hpp"
#include "gossip/codec.hpp"

namespace updp2p::sim {

RoundSimulator::RoundSimulator(RoundSimConfig config,
                               std::unique_ptr<churn::ChurnModel> churn)
    : config_(std::move(config)),
      churn_(std::move(churn)),
      rng_(config_.seed),
      bus_(config_.message_loss) {
  UPDP2P_ENSURE(churn_ != nullptr, "a churn model is required");
  UPDP2P_ENSURE(churn_->population() == config_.population,
                "churn population must match simulator population");

  nodes_.reserve(config_.population);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId self(i);
    nodes_.push_back(std::make_unique<gossip::ReplicaNode>(
        self, config_.gossip, rng_.split_for(i)));
  }

  // Bootstrap membership: either the full replica set (analysis
  // assumption) or a random sample of the configured size.
  std::vector<common::PeerId> everyone;
  everyone.reserve(config_.population);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    everyone.emplace_back(i);
  }
  for (auto& node : nodes_) {
    if (config_.initial_view_size == 0 ||
        config_.initial_view_size >= config_.population) {
      node->bootstrap(everyone);
    } else {
      std::vector<common::PeerId> sample;
      sample.reserve(config_.initial_view_size);
      for (const std::uint32_t idx : rng_.sample_without_replacement(
               static_cast<std::uint32_t>(config_.population),
               static_cast<std::uint32_t>(config_.initial_view_size))) {
        sample.emplace_back(idx);
      }
      node->bootstrap(sample);
    }
  }

  churn_->reset(rng_);
  was_online_.resize(config_.population);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    was_online_[i] = churn_->is_online(common::PeerId(i));
  }
}

void RoundSimulator::dispatch(common::PeerId from,
                              std::vector<gossip::OutboundMessage>& out) {
  for (auto& message : out) {
    switch (message.payload.index()) {
      case gossip::kPushIndex: ++round_push_; break;
      case gossip::kPullRequestIndex:
      case gossip::kPullResponseIndex: ++round_pull_; break;
      case gossip::kAckIndex: ++round_ack_; break;
      default: ++round_query_; break;
    }
    std::uint64_t size = message.size_bytes;
    if (config_.serialize_messages) {
      // Full wire round-trip: what a deployment would actually transmit.
      const gossip::WireBytes frame = gossip::encode(message.payload);
      size = frame.size();
      auto decoded = gossip::decode(frame);
      UPDP2P_ENSURE(decoded.has_value(),
                    "own encoder output must always decode");
      message.payload = std::move(*decoded);
    }
    round_bytes_ += size;
    bus_.send(from, message.to, std::move(message.payload), size, round_);
  }
  out.clear();
}

void RoundSimulator::start_tracking(const version::VersionId& id) {
  tracking_ = true;
  tracked_id_ = id;
  aware_.assign(config_.population, 0);
  aware_online_count_ = 0;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    if (nodes_[i]->knows_version(id)) {
      aware_[i] = 1;
      if (churn_->is_online(common::PeerId(i))) ++aware_online_count_;
    }
  }
}

void RoundSimulator::note_awareness(std::uint32_t node_index) {
  if (!tracking_ || aware_[node_index] != 0) return;
  if (!nodes_[node_index]->knows_version(tracked_id_)) return;
  aware_[node_index] = 1;
  // A node only handles messages while online, so the new awareness always
  // counts toward the online-and-aware total.
  ++aware_online_count_;
}

std::size_t RoundSimulator::aware_online(const version::VersionId& id) const {
  if (tracking_ && id == tracked_id_) return aware_online_count_;
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId peer(i);
    if (churn_->is_online(peer) && nodes_[i]->knows_version(id)) ++count;
  }
  return count;
}

double RoundSimulator::aware_fraction(const version::VersionId& id) const {
  const std::size_t online = churn_->online_count();
  return online == 0 ? 0.0
                     : static_cast<double>(aware_online(id)) /
                           static_cast<double>(online);
}

void RoundSimulator::step_round(RunMetrics* metrics) {
  ++round_;
  round_push_ = round_pull_ = round_ack_ = round_query_ = 0;
  round_bytes_ = 0;
  round_duplicates_ = 0;

  // 1. Deliver messages sent last round to peers that are online *now*.
  const auto delivered = bus_.deliver_round(
      [this](common::PeerId to) { return churn_->is_online(to); }, rng_);
  for (const auto& envelope : delivered) {
    const std::uint32_t to = envelope.to.value();
    gossip::ReplicaNode& node = *nodes_[to];
    const std::uint64_t duplicates_before = node.stats().duplicate_pushes;
    node.handle_message(envelope.from, envelope.payload, round_,
                        reactions_scratch_);
    round_duplicates_ += node.stats().duplicate_pushes - duplicates_before;
    note_awareness(to);
    dispatch(envelope.to, reactions_scratch_);
  }

  // 2. Per-round timers for online peers.
  if (config_.round_timers) {
    for (std::uint32_t i = 0; i < config_.population; ++i) {
      const common::PeerId peer(i);
      if (!churn_->is_online(peer)) continue;
      nodes_[i]->on_round_start(round_, reactions_scratch_);
      dispatch(peer, reactions_scratch_);
    }
  }

  // 3. Record metrics for the state reached in this round.
  if (metrics != nullptr) {
    RoundMetrics rm;
    rm.round = round_;
    rm.online = churn_->online_count();
    rm.aware_online = tracking_ ? aware_online_count_ : 0;
    rm.push_messages = round_push_;
    rm.pull_messages = round_pull_;
    rm.ack_messages = round_ack_;
    rm.query_messages = round_query_;
    rm.messages = round_push_ + round_pull_ + round_ack_ + round_query_;
    rm.duplicates = round_duplicates_;
    rm.bytes = round_bytes_;
    metrics->rounds.push_back(rm);
  }

  // 4. Churn transition into the next round; fire reconnect/disconnect
  //    hooks for peers whose state flipped.
  churn_->advance(rng_);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId peer(i);
    const bool online = churn_->is_online(peer);
    if (online == was_online_[i]) continue;
    was_online_[i] = online;
    if (tracking_ && aware_[i] != 0) {
      // Awareness is sticky; only the online side of "online ∧ aware"
      // changes with churn.
      if (online) {
        ++aware_online_count_;
      } else {
        --aware_online_count_;
      }
    }
    if (online) {
      if (config_.reconnect_pull) {
        nodes_[i]->on_reconnect(round_ + 1, reactions_scratch_);
        dispatch(peer, reactions_scratch_);
      }
    } else {
      nodes_[i]->on_disconnect(round_ + 1);
    }
  }
}

RunMetrics RoundSimulator::propagate_update(
    std::optional<common::PeerId> initiator, std::string key,
    std::string payload) {
  // Pick an online initiator when none given.
  common::PeerId publisher = initiator.value_or(common::PeerId::invalid());
  if (!initiator.has_value()) {
    const auto online_peers = churn_->online().online_peers();
    UPDP2P_ENSURE(!online_peers.empty(), "no online peer to publish from");
    publisher = online_peers[rng_.pick_index(online_peers.size())];
  }
  UPDP2P_ENSURE(churn_->is_online(publisher),
                "the initiator must be online to publish");

  RunMetrics metrics;
  metrics.population = config_.population;
  metrics.initial_online = churn_->online_count();

  // Round 0: publish.
  round_push_ = round_pull_ = round_ack_ = round_query_ = 0;
  round_bytes_ = 0;
  auto out =
      nodes_[publisher.value()]->publish(key, std::move(payload), round_);
  const version::VersionedValue written =
      nodes_[publisher.value()]->read(key).value();
  start_tracking(written.id);
  dispatch(publisher, out);

  RoundMetrics round0;
  round0.round = round_;
  round0.online = churn_->online_count();
  round0.aware_online = aware_online_count_;
  round0.push_messages = round_push_;
  round0.messages = round_push_;
  round0.bytes = round_bytes_;
  metrics.rounds.push_back(round0);

  // Subsequent rounds until quiescence.
  common::Round quiet = 0;
  for (common::Round t = 0; t < config_.max_rounds; ++t) {
    step_round(&metrics);
    const RoundMetrics& last = metrics.rounds.back();
    quiet = last.messages == 0 ? quiet + 1 : 0;
    if (quiet >= config_.quiescence_rounds) break;
  }
  return metrics;
}

void RoundSimulator::run_rounds(common::Round rounds) {
  for (common::Round t = 0; t < rounds; ++t) {
    step_round(nullptr);
  }
}

std::unique_ptr<RoundSimulator> make_push_phase_simulator(
    RoundSimConfig config, double initial_online_fraction, double sigma) {
  auto churn = std::make_unique<churn::BernoulliChurn>(
      config.population, initial_online_fraction, sigma, /*p_join=*/0.0);
  return std::make_unique<RoundSimulator>(std::move(config), std::move(churn));
}

}  // namespace updp2p::sim
