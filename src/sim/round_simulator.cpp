#include "sim/round_simulator.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "common/ensure.hpp"
#include "common/logging.hpp"
#include "gossip/codec.hpp"
#include "sim/sweep_pool.hpp"

namespace updp2p::sim {

namespace {
/// Stream-purpose tag for per-(recipient, round) loss draws. Node streams
/// use the default purpose 0, so loss draws can never alias protocol
/// draws. The round is folded into the purpose, giving every (recipient,
/// round) pair its own indexed stream — loss decisions depend only on the
/// canonical position of a message in its recipient's batch, not on which
/// thread processes it.
constexpr std::uint64_t kLossPurpose = 0x6c6f7373;  // "loss"

unsigned resolve_shard_count(unsigned shard_threads, std::size_t population) {
  unsigned count = shard_threads != 0
                       ? shard_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  if (population != 0 && count > population) {
    count = static_cast<unsigned>(population);
  }
  return std::max(1u, count);
}
}  // namespace

RoundSimulator::RoundSimulator(RoundSimConfig config,
                               std::unique_ptr<churn::ChurnModel> churn)
    : config_(std::move(config)),
      churn_(std::move(churn)),
      rng_(config_.seed),
      bus_(resolve_shard_count(config_.shard_threads, config_.population),
           config_.population),
      shard_count_(
          resolve_shard_count(config_.shard_threads, config_.population)),
      shards_(shard_count_) {
  UPDP2P_ENSURE(churn_ != nullptr, "a churn model is required");
  UPDP2P_ENSURE(churn_->population() == config_.population,
                "churn population must match simulator population");
  UPDP2P_ENSURE(config_.message_loss >= 0.0 && config_.message_loss <= 1.0,
                "loss probability must be in [0,1]");

  nodes_.reserve(config_.population);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId self(i);
    // Each node owns the counter-based stream (seed, node_id): its draw
    // sequence is a pure function of the messages it handles, independent
    // of how many draws any other node made.
    nodes_.emplace_back(self, config_.gossip,
                        common::StreamRng(config_.seed, i));
    nodes_.back().use_arena(&shards_[bus_.shard_of(self)].arena);
  }

  // Bootstrap membership: either the full replica set (analysis
  // assumption) or a random sample of the configured size. The full set is
  // built as ONE compressed ChunkedPeerSet and absorbed per node by
  // word-parallel merge — one insert per id per node would dominate
  // construction at 100k+ populations.
  if (config_.initial_view_size == 0 ||
      config_.initial_view_size >= config_.population) {
    common::ChunkedPeerSet everyone;
    for (std::uint32_t i = 0; i < config_.population; ++i) {
      everyone.insert(common::PeerId(i));
    }
    for (auto& node : nodes_) {
      node.bootstrap(everyone);
    }
  } else {
    std::vector<common::PeerId> sample;
    for (auto& node : nodes_) {
      sample.clear();
      sample.reserve(config_.initial_view_size);
      for (const std::uint32_t idx : rng_.sample_without_replacement(
               static_cast<std::uint32_t>(config_.population),
               static_cast<std::uint32_t>(config_.initial_view_size))) {
        sample.emplace_back(idx);
      }
      node.bootstrap(sample);
    }
  }

  churn_->reset(rng_);
  online_.resize(config_.population);
  send_seq_.assign(config_.population, 0);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    online_[i] = churn_->is_online(common::PeerId(i)) ? 1 : 0;
  }
}

void RoundSimulator::dispatch_from(std::size_t shard, common::PeerId from,
                                   std::vector<gossip::OutboundMessage>& out) {
  Shard& sh = shards_[shard];
  std::uint32_t& seq = send_seq_[from.value()];
  for (auto& message : out) {
    switch (message.payload.index()) {
      case gossip::kPushIndex: ++sh.push_messages; break;
      case gossip::kPullRequestIndex:
      case gossip::kPullResponseIndex: ++sh.pull_messages; break;
      case gossip::kAckIndex: ++sh.ack_messages; break;
      default: ++sh.query_messages; break;
    }
    const std::uint64_t size = message.size_bytes;
    gossip::SharedFrame frame;
    if (config_.serialize_messages) {
      // One interned encode per fan-out: a push forwarded to N targets
      // shares a single immutable frame (N-1 cache hits), and recipients
      // lazy-decode it in handle_frame. encoded_size() already priced the
      // message exactly, which the frame must confirm byte for byte.
      frame = sh.arena.frames.intern(message.payload);
      UPDP2P_ENSURE(frame.size_bytes() == size,
                    "encoded_size must equal the encoded frame length");
    }
    sh.bytes += size;
    bus_.send_from_shard(shard, from, message.to,
                         SimPayload{std::move(message.payload),
                                    std::move(frame)},
                         size, round_, seq++);
  }
  out.clear();
}

void RoundSimulator::dispatch(common::PeerId from,
                              std::vector<gossip::OutboundMessage>& out) {
  dispatch_from(bus_.shard_of(from), from, out);
}

// holds(shard): tracking starts from the sequential driver, between rounds
void RoundSimulator::start_tracking(const version::VersionId& id) {
  tracking_ = true;
  tracked_id_ = id;
  aware_.assign(config_.population, 0);
  aware_online_count_ = 0;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    if (nodes_[i].knows_version(id)) {
      aware_[i] = 1;
      if (churn_->is_online(common::PeerId(i))) ++aware_online_count_;
    }
  }
}

void RoundSimulator::note_awareness(std::uint32_t node_index, Shard& shard) {
  if (!tracking_ || aware_[node_index] != 0) return;
  if (!nodes_[node_index].knows_version(tracked_id_)) return;
  aware_[node_index] = 1;
  // A node only handles messages while online, so the new awareness always
  // counts toward the online-and-aware total (summed at the merge step).
  ++shard.new_aware;
}

std::size_t RoundSimulator::aware_online(const version::VersionId& id) const {
  if (tracking_ && id == tracked_id_) return aware_online_count_;
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId peer(i);
    if (churn_->is_online(peer) && nodes_[i].knows_version(id)) ++count;
  }
  return count;
}

double RoundSimulator::aware_fraction(const version::VersionId& id) const {
  const std::size_t online = churn_->online_count();
  return online == 0 ? 0.0
                     : static_cast<double>(aware_online(id)) /
                           static_cast<double>(online);
}

void RoundSimulator::step_shard(unsigned shard) {
  Shard& sh = shards_[shard];
  sh.reset_counters();

  // 1. Deliver this shard's slice of last round's messages, in canonical
  //    (to, from, seq) order.
  bus_.collect_into(shard, sh.batch);
  net::BusStats& bstats = bus_.shard_stats(shard);
  const bool has_filter = static_cast<bool>(link_filter_);
  const double loss = config_.message_loss;
  common::StreamRng loss_rng;
  std::uint32_t loss_recipient = std::numeric_limits<std::uint32_t>::max();
  for (auto& envelope : sh.batch) {
    const std::uint32_t to = envelope.to.value();
    if (online_[to] == 0) {
      ++bstats.messages_to_offline;
      continue;
    }
    if (has_filter && !link_filter_(envelope.from, envelope.to)) {
      // §3: peers across a cut perceive each other as offline, but the
      // loss is attributed separately so partition experiments report
      // honest numbers.
      ++bstats.messages_partitioned;
      continue;
    }
    if (loss > 0.0) {
      if (to != loss_recipient) {
        loss_recipient = to;
        loss_rng =
            common::StreamRng(config_.seed, to, kLossPurpose + round_);
      }
      if (loss_rng.bernoulli(loss)) {
        ++bstats.messages_dropped;
        continue;
      }
    }
    ++bstats.messages_delivered;
    gossip::ReplicaNode& node = nodes_[to];
    const std::uint64_t duplicates_before = node.stats().duplicate_pushes;
    if (envelope.payload.frame) {
      // Wire mode: deliver the shared encoded bytes; the node probes the
      // header, counts duplicates without decoding, and stream-decodes
      // first receipts. The in-memory payload is deliberately unused.
      UPDP2P_ENSURE(node.handle_frame(envelope.from,
                                      envelope.payload.frame.bytes(), round_,
                                      sh.reactions),
                    "own encoder output must always decode");
    } else {
      node.handle_message(envelope.from, envelope.payload.payload, round_,
                          sh.reactions);
    }
    sh.duplicates += node.stats().duplicate_pushes - duplicates_before;
    note_awareness(to, sh);
    dispatch_from(shard, envelope.to, sh.reactions);
  }
  // Drop the batch's payloads now (capacity retained): shared payload
  // buffers are released as soon as every recipient shard is done with
  // them, bounding peak memory to one round's traffic.
  sh.batch.clear();

  // 2. Per-round timers for this shard's online nodes. Shards are
  //    contiguous blocks, so the slice is [begin, end).
  if (config_.round_timers) {
    const std::uint32_t population =
        static_cast<std::uint32_t>(config_.population);
    const auto block = static_cast<std::uint32_t>(
        (config_.population + shard_count_ - 1) / shard_count_);
    const std::uint32_t begin = std::min(shard * block, population);
    const std::uint32_t end = std::min(begin + block, population);
    for (std::uint32_t i = begin; i < end; ++i) {
      if (online_[i] == 0) continue;
      nodes_[i].on_round_start(round_, sh.reactions);
      dispatch_from(shard, common::PeerId(i), sh.reactions);
    }
  }
}

// holds(shard): phases 1-2 fan out via step_shard(shard); every statement
// in this body runs in the sequential gaps before/after the fan-out joins
void RoundSimulator::step_round(RunMetrics* metrics) {
  ++round_;

  // 1+2. Publish last round's sends, then deliver and run timers, one
  //      task per shard. Nested inside a SweepPool task (a sharded run in
  //      a seed sweep) this degrades to an inline sequential loop.
  bus_.begin_round();
  if (shard_count_ == 1) {
    step_shard(0);
  } else {
    SweepPool::shared().run(shard_count_, shard_count_,
                            [this](unsigned shard) { step_shard(shard); });
  }

  // 3. Merge the shard counters (sums — order-free) and record metrics
  //    for the state reached in this round.
  std::uint64_t push = 0, pull = 0, ack = 0, query = 0;
  std::uint64_t bytes = 0, duplicates = 0;
  for (Shard& sh : shards_) {
    push += sh.push_messages;
    pull += sh.pull_messages;
    ack += sh.ack_messages;
    query += sh.query_messages;
    bytes += sh.bytes;
    duplicates += sh.duplicates;
    aware_online_count_ += sh.new_aware;
    sh.new_aware = 0;
  }
  if (metrics != nullptr) {
    RoundMetrics rm;
    rm.round = round_;
    rm.online = churn_->online_count();
    rm.aware_online = tracking_ ? aware_online_count_ : 0;
    rm.push_messages = push;
    rm.pull_messages = pull;
    rm.ack_messages = ack;
    rm.query_messages = query;
    rm.messages = push + pull + ack + query;
    rm.duplicates = duplicates;
    rm.bytes = bytes;
    metrics->rounds.push_back(rm);
  }

  // 4. Churn transition into the next round; fire reconnect/disconnect
  //    hooks for peers whose state flipped. Sequential: the churn model
  //    and hook dispatch share the main rng_ stream.
  churn_->advance(rng_);
  for (std::uint32_t i = 0; i < config_.population; ++i) {
    const common::PeerId peer(i);
    const bool online = churn_->is_online(peer);
    if (online == (online_[i] != 0)) continue;
    online_[i] = online ? 1 : 0;
    if (tracking_ && aware_[i] != 0) {
      // Awareness is sticky; only the online side of "online ∧ aware"
      // changes with churn.
      if (online) {
        ++aware_online_count_;
      } else {
        --aware_online_count_;
      }
    }
    if (online) {
      if (config_.reconnect_pull) {
        nodes_[i].on_reconnect(round_ + 1, reactions_scratch_);
        dispatch(peer, reactions_scratch_);
      }
    } else {
      nodes_[i].on_disconnect(round_ + 1);
    }
  }
}

RunMetrics RoundSimulator::propagate_update(
    std::optional<common::PeerId> initiator, std::string key,
    std::string payload) {
  // Pick an online initiator when none given.
  common::PeerId publisher = initiator.value_or(common::PeerId::invalid());
  if (!initiator.has_value()) {
    const auto online_peers = churn_->online().online_peers();
    UPDP2P_ENSURE(!online_peers.empty(), "no online peer to publish from");
    publisher = online_peers[rng_.pick_index(online_peers.size())];
  }
  UPDP2P_ENSURE(churn_->is_online(publisher),
                "the initiator must be online to publish");

  RunMetrics metrics;
  metrics.population = config_.population;
  metrics.initial_online = churn_->online_count();

  // Round 0: publish.
  for (Shard& sh : shards_) sh.reset_counters();
  auto out =
      nodes_[publisher.value()].publish(key, std::move(payload), round_);
  const version::VersionedValue written =
      nodes_[publisher.value()].read(key).value();
  start_tracking(written.id);
  dispatch(publisher, out);

  RoundMetrics round0;
  round0.round = round_;
  round0.online = churn_->online_count();
  round0.aware_online = aware_online_count_;
  for (const Shard& sh : shards_) round0.push_messages += sh.push_messages;
  for (const Shard& sh : shards_) round0.bytes += sh.bytes;
  round0.messages = round0.push_messages;
  metrics.rounds.push_back(round0);

  // Subsequent rounds until quiescence.
  common::Round quiet = 0;
  for (common::Round t = 0; t < config_.max_rounds; ++t) {
    step_round(&metrics);
    const RoundMetrics& last = metrics.rounds.back();
    quiet = last.messages == 0 ? quiet + 1 : 0;
    if (quiet >= config_.quiescence_rounds) break;
  }
  return metrics;
}

void RoundSimulator::run_rounds(common::Round rounds) {
  for (common::Round t = 0; t < rounds; ++t) {
    step_round(nullptr);
  }
}

std::unique_ptr<RoundSimulator> make_push_phase_simulator(
    RoundSimConfig config, double initial_online_fraction, double sigma) {
  auto churn = std::make_unique<churn::BernoulliChurn>(
      config.population, initial_online_fraction, sigma, /*p_join=*/0.0);
  return std::make_unique<RoundSimulator>(std::move(config), std::move(churn));
}

}  // namespace updp2p::sim
