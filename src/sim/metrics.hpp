// Metrics collected by the simulators, shaped after the paper's evaluation:
// total messages per member of the initial online population (y-axis of
// Figs. 1–5), fraction of online peers aware (x-axis), push rounds used
// (the latency column of Table 2), duplicates, and byte counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace updp2p::sim {

/// Snapshot after one push round.
struct RoundMetrics {
  common::Round round = 0;
  std::size_t online = 0;
  std::size_t aware_online = 0;    ///< online peers holding the update
  std::uint64_t messages = 0;      ///< protocol messages sent this round
  std::uint64_t push_messages = 0;
  std::uint64_t pull_messages = 0; ///< pull requests + responses
  std::uint64_t ack_messages = 0;
  std::uint64_t query_messages = 0;  ///< query requests + replies (§4.4)
  std::uint64_t duplicates = 0;    ///< pushes for already-known versions
  std::uint64_t bytes = 0;

  [[nodiscard]] double aware_fraction() const noexcept {
    return online == 0 ? 0.0
                       : static_cast<double>(aware_online) /
                             static_cast<double>(online);
  }
};

/// Whole-run metrics for one propagated update.
struct RunMetrics {
  std::vector<RoundMetrics> rounds;
  std::size_t initial_online = 0;
  std::size_t population = 0;

  [[nodiscard]] std::uint64_t total_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_push_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_pull_messages() const noexcept;
  [[nodiscard]] std::uint64_t total_duplicates() const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  [[nodiscard]] double final_aware_fraction() const noexcept {
    return rounds.empty() ? 0.0 : rounds.back().aware_fraction();
  }
  /// The paper's headline metric.
  [[nodiscard]] double messages_per_initial_online() const noexcept {
    return initial_online == 0
               ? 0.0
               : static_cast<double>(total_push_messages()) /
                     static_cast<double>(initial_online);
  }
  /// Rounds until the last new peer became aware (latency).
  [[nodiscard]] common::Round rounds_to_quiescence() const noexcept;

  /// (x = F_aware, y = cumulative push messages / R_on(0)) as in the plots.
  [[nodiscard]] common::Series to_series(std::string label) const;
};

/// Averages several stochastic runs into a single summary row.
struct AggregateMetrics {
  common::RunningStats messages_per_initial_online;
  common::RunningStats final_aware_fraction;
  common::RunningStats rounds_to_quiescence;
  common::RunningStats duplicates;
  common::RunningStats pull_messages;

  void add(const RunMetrics& run);
};

}  // namespace updp2p::sim
