#include "sim/metrics.hpp"

namespace updp2p::sim {

std::uint64_t RunMetrics::total_messages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.messages;
  return total;
}

std::uint64_t RunMetrics::total_push_messages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.push_messages;
  return total;
}

std::uint64_t RunMetrics::total_pull_messages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.pull_messages;
  return total;
}

std::uint64_t RunMetrics::total_duplicates() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.duplicates;
  return total;
}

std::uint64_t RunMetrics::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.bytes;
  return total;
}

common::Round RunMetrics::rounds_to_quiescence() const noexcept {
  common::Round last_growth = 0;
  std::size_t previous_aware = 0;
  for (const auto& r : rounds) {
    if (r.aware_online > previous_aware) last_growth = r.round;
    previous_aware = r.aware_online;
  }
  return last_growth;
}

common::Series RunMetrics::to_series(std::string label) const {
  common::Series series;
  series.label = std::move(label);
  std::uint64_t cumulative = 0;
  for (const auto& r : rounds) {
    cumulative += r.push_messages;
    series.push(r.aware_fraction(),
                initial_online == 0
                    ? 0.0
                    : static_cast<double>(cumulative) /
                          static_cast<double>(initial_online));
  }
  return series;
}

void AggregateMetrics::add(const RunMetrics& run) {
  messages_per_initial_online.add(run.messages_per_initial_online());
  final_aware_fraction.add(run.final_aware_fraction());
  rounds_to_quiescence.add(static_cast<double>(run.rounds_to_quiescence()));
  duplicates.add(static_cast<double>(run.total_duplicates()));
  pull_messages.add(static_cast<double>(run.total_pull_messages()));
}

}  // namespace updp2p::sim
