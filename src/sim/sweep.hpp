// Parallel seed sweeps.
//
// Every evaluation in this repository averages independent simulation runs
// over seeds. Each run owns its simulator (no shared mutable state), so a
// sweep is embarrassingly parallel; runs are drained from SweepPool's
// persistent workers via an atomic work-stealing index (no per-run thread
// spawn, no head-of-line blocking) and the per-run metrics are merged
// deterministically (merge order is by seed, not completion order — results
// are independent of scheduling).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ensure.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep_pool.hpp"

namespace updp2p::sim {

/// Runs `body(seed)` for seeds base+1 .. base+runs in parallel and returns
/// the results ordered by seed. `Body` must be a pure function of the seed
/// (it may build and run entire simulators internally).
template <typename Result>
std::vector<Result> sweep_seeds(std::uint64_t base_seed, unsigned runs,
                                const std::function<Result(std::uint64_t)>&
                                    body,
                                unsigned max_threads = 0) {
  UPDP2P_ENSURE(runs > 0, "a sweep needs at least one run");
  std::vector<Result> results(runs);
  SweepPool::shared().run(runs, max_threads, [&](unsigned index) {
    results[index] = body(base_seed + index + 1);
  });
  return results;
}

/// Convenience: sweeps a RunMetrics-producing body and aggregates.
inline AggregateMetrics sweep_aggregate(
    std::uint64_t base_seed, unsigned runs,
    const std::function<RunMetrics(std::uint64_t)>& body,
    unsigned max_threads = 0) {
  AggregateMetrics aggregate;
  for (const auto& metrics :
       sweep_seeds<RunMetrics>(base_seed, runs, body, max_threads)) {
    aggregate.add(metrics);
  }
  return aggregate;
}

}  // namespace updp2p::sim
